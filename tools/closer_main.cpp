//===- closer_main.cpp - Command-line driver --------------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// The `closer` tool: the prototype described in the paper's abstract ("a
// prototype tool for automatically closing open programs"), plus the
// VeriSoft-style explorer as a subcommand.
//
//   closer close <file.mc>              close and print MiniC source
//   closer cfg <file.mc> [proc]         print closed CFG listings
//   closer dot <file.mc> <proc>         Graphviz of a closed procedure
//   closer explore <file.mc> [options]  close (if open) and explore
//   closer naive <file.mc> -D <n>       naive most-general-env closing
//   closer gen-switchapp [options]      emit the case-study application
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgPrinter.h"
#include "closing/Pipeline.h"
#include "explorer/Observability.h"
#include "explorer/Replay.h"
#include "explorer/Search.h"
#include "support/CommandLine.h"
#include "support/CorpusGen.h"
#include "support/Json.h"
#include "switchapp/SwitchApp.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace closer;

namespace {

void usage() {
  std::fprintf(stderr, R"(usage:
  closer close <file.mc>... [--coarse] [--dedup-toss] [--partition]
               [--max-reps N] [--passes LIST] [--print-after PASS]
               [--verify-each] [--stats-json FILE] [--jobs N]
               [--analysis-cache DIR]
      Close the program with its most general environment; print MiniC.
      Runs the pass pipeline parse, sema, lower, verify, close by
      default. --partition inserts the section 7 input-domain
      partitioning as a pre-pass, so partition -> close runs in one
      process over one module (this replaces the old two-step
      `closer partition | closer close` source round-trip). --passes
      takes a comma-separated module-pass list (partition, close,
      dedup-toss, naive-close, interface, verify) replacing the default
      tail. --verify-each re-verifies the module after every pass and
      names the offending pass on failure. --print-after PASS dumps the
      module source to stderr after each run of PASS. --stats-json FILE
      writes a closer-close-stats-v1 artifact: per-pass wall times,
      analysis cache computed/reused counters and all transform stats.
      Several input files compile as one batch sharing the pass registry;
      --jobs N closes them on N worker threads. Output order and bytes
      are identical to closing each file in its own process, and
      --stats-json then writes a closer-close-batch-stats-v1 artifact
      with one per-module stats block per input. --analysis-cache DIR
      persists analysis results keyed by content fingerprints, so
      re-closing an edited corpus recomputes only touched procedures
      (restored entries surface as `reused` in the stats artifact).
  closer cfg <file.mc> [proc]
      Print the closed control-flow graph listing(s).
  closer dot <file.mc> <proc>
      Print Graphviz dot for one closed procedure.
  closer explore <file.mc> [--depth N] [--max-runs N] [--no-por]
                 [--state-cache[=BITS]] [--stop-on-error] [--env-domain N]
                 [--open] [--jobs N] [--checkpoint-interval K]
                 [--exec interp|vm|both] [--stats-json FILE]
                 [--progress[=SECS]] [--time-budget SECS]
      Close (unless --open) and systematically explore the state space.
      --exec selects the transition engine: the tree-walking interpreter
      (default), the direct-threaded bytecode VM (same results, faster),
      or `both` — a differential oracle that runs every transition on
      both engines and aborts on any observable divergence.
      --jobs N > 1 explores disjoint subtrees on N worker threads over
      per-worker work-stealing deques; --jobs 0 uses one worker per
      hardware thread (the resolved count lands in --stats-json).
      --checkpoint-interval K snapshots the system every K states so
      backtracking restores instead of re-executing prefixes (default 8;
      0 = pure stateless search). Results are identical for any K.
      --state-cache[=BITS] prunes revisited states with a bounded
      concurrent fingerprint table of 2^BITS slots (default 20, ~8 MiB).
      Legal with any --jobs count: workers share one table, so a state
      expanded anywhere is pruned everywhere. When the table fills, the
      search keeps going without inserting (sound; reported as
      cache-saturated). Sleep sets are disabled under caching (pruning
      by a path-local sleep set is unsound against a cross-path cache).
      --hash is a deprecated alias for --state-cache.
      --stats-json FILE writes the full run statistics (per-worker
      breakdowns, wall clock, reports, resume prefixes) as JSON.
      --progress[=SECS] prints a progress line to stderr every SECS
      seconds (default 2). --time-budget SECS stops the search
      cooperatively after SECS seconds; an interrupted run (time budget
      or Ctrl-C) still prints partial stats plus resumable `replay:`
      prefixes for the abandoned subtrees.
  closer naive <file.mc> -D <n>
      Close with the naive explicit environment over domain [0,n]; print.
  closer partition <file.mc> [--max-reps N]
      Deprecated alias for `closer close --partition`: simplify
      range-classified inputs (section 7 analysis), close the rest,
      print the result.
  closer replay <file.mc> "<choices>" [--open] [--env-domain N]
      Re-execute a recorded choice sequence (the `replay:` line of an
      explore report) and print the resulting trace.
  closer interface <file.mc>
      Inventory the program's environment interface and how far
      environment data spreads (what a manual stub would have to cover).
  closer gen-switchapp [--lines N] [--trunks N] [--events N] [--variants N]
                       [--bug]
      Emit the synthetic call-processing application source.
  closer gen-corpus [--procs N] [--stmts N] [--seed S] [--tweak K]
      Emit a deterministic open multi-procedure corpus (same flags, same
      bytes). --tweak K appends one pure statement to procedure K — an
      "edited corpus" differing in exactly one procedure, for exercising
      the incremental analysis cache.
)");
}

/// Which flags exist and whether they consume a value — the distinction
/// parseArgs needs to keep positionals after boolean flags (see
/// support/CommandLine.h).
const FlagSpec &closerFlagSpec() {
  static const FlagSpec Spec = {
      // Boolean flags.
      {"--coarse", FlagArity::Bool},
      {"--dedup-toss", FlagArity::Bool},
      {"--partition", FlagArity::Bool},
      {"--verify-each", FlagArity::Bool},
      {"--no-por", FlagArity::Bool},
      {"--hash", FlagArity::Bool},
      {"--stop-on-error", FlagArity::Bool},
      {"--open", FlagArity::Bool},
      {"--bug", FlagArity::Bool},
      // Value-taking flags.
      {"--depth", FlagArity::Value},
      {"--max-runs", FlagArity::Value},
      {"--env-domain", FlagArity::Value},
      {"--jobs", FlagArity::Value},
      {"--checkpoint-interval", FlagArity::Value},
      {"--max-reps", FlagArity::Value},
      {"-D", FlagArity::Value},
      {"--lines", FlagArity::Value},
      {"--trunks", FlagArity::Value},
      {"--events", FlagArity::Value},
      {"--variants", FlagArity::Value},
      {"--stats-json", FlagArity::Value},
      {"--time-budget", FlagArity::Value},
      {"--exec", FlagArity::Value},
      {"--passes", FlagArity::Value},
      {"--print-after", FlagArity::Value},
      {"--analysis-cache", FlagArity::Value},
      {"--procs", FlagArity::Value},
      {"--stmts", FlagArity::Value},
      {"--seed", FlagArity::Value},
      {"--tweak", FlagArity::Value},
      // `--progress` alone uses the default interval; `--progress=0.5`
      // overrides it. It never consumes the next argument.
      {"--progress", FlagArity::OptionalValue},
      // `--state-cache` alone uses the default table size;
      // `--state-cache=24` overrides the bit count.
      {"--state-cache", FlagArity::OptionalValue},
  };
  return Spec;
}

/// Prints the accumulated Args diagnostic (if any); true when clean.
bool argsOk(const Args &A) {
  if (A.Error.empty())
    return true;
  std::fprintf(stderr, "error: %s\n", A.Error.c_str());
  return false;
}

std::string readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path);
    std::exit(1);
  }
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

CloseResult closeFileOrDie(const std::string &Path, const Args &A) {
  ClosingOptions Options;
  Options.Taint.CoarseMode = A.has("--coarse");
  Options.DedupTosses = A.has("--dedup-toss");
  CloseResult R = closeSource(readFile(Path.c_str()), Options);
  if (!R.ok()) {
    std::fprintf(stderr, "%s", R.Diags.str().c_str());
    std::exit(1);
  }
  return R;
}

/// Splits a comma-separated --passes list; empty segments are dropped.
std::vector<std::string> splitPassList(const std::string &List) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : List) {
    if (C == ',') {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Out.push_back(Cur);
  return Out;
}

/// The pipeline knobs every pipeline-backed subcommand shares.
PipelineOptions pipelineOptionsFromArgs(const Args &A) {
  PipelineOptions Opts;
  Opts.Closing.Taint.CoarseMode = A.has("--coarse");
  Opts.Closing.DedupTosses = A.has("--dedup-toss");
  Opts.Partition.MaxRepresentatives =
      static_cast<size_t>(A.intOf("--max-reps", 16));
  Opts.Naive.DomainBound = A.intOf("-D", 1);
  Opts.VerifyEach = A.has("--verify-each");
  Opts.PrintAfter = A.strOf("--print-after", "");
  Opts.Passes = splitPassList(A.strOf("--passes", ""));
  Opts.AnalysisCacheDir = A.strOf("--analysis-cache", "");
  return Opts;
}

/// Runs compile(), dumps --print-after captures to stderr and writes the
/// --stats-json artifact (also for failed runs — the per-pass timings
/// show where the pipeline stopped). Exits on failure.
CompileResult compileFileOrDie(const std::string &Path,
                               const PipelineOptions &Opts, const Args &A) {
  CompileResult R = compile(readFile(Path.c_str()), Opts);
  for (const auto &[Pass, Text] : R.Printed)
    std::fprintf(stderr, "// --- module after pass '%s' ---\n%s",
                 Pass.c_str(), Text.c_str());
  std::string StatsJsonPath = A.strOf("--stats-json", "");
  if (!StatsJsonPath.empty()) {
    std::string Err;
    if (!json::writeJsonFile(StatsJsonPath, compileArtifactToJson(R),
                             &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      std::exit(1);
    }
  }
  if (!R.ok()) {
    std::fprintf(stderr, "%s", R.Diags.str().c_str());
    std::exit(1);
  }
  return R;
}

bool pipelineHasPass(const CompileResult &R, const char *Name) {
  const std::vector<std::string> &P = R.EffectiveOptions.Passes;
  return std::find(P.begin(), P.end(), Name) != P.end();
}

/// Prints one compiled module exactly as the historical single-file
/// `closer close` did: --print-after captures and diagnostics to stderr,
/// the closed source to stdout, the transform summary comments to stderr.
/// Batch mode reports every file through this in input order, so the
/// combined output is byte-identical to closing each file in sequence.
bool reportCloseResult(const CompileResult &R) {
  for (const auto &[Pass, Text] : R.Printed)
    std::fprintf(stderr, "// --- module after pass '%s' ---\n%s",
                 Pass.c_str(), Text.c_str());
  if (!R.ok()) {
    std::fprintf(stderr, "%s", R.Diags.str().c_str());
    return false;
  }
  std::printf("%s", emitModuleSource(*R.M).c_str());
  if (pipelineHasPass(R, "partition"))
    std::fprintf(stderr,
                 "// partitioned %zu input(s) + %zu parameter(s) "
                 "(%zu representatives), %zu left for elimination\n",
                 R.Partition.InputsPartitioned, R.Partition.ParamsPartitioned,
                 R.Partition.RepresentativesTotal,
                 R.Partition.InputsLeftOpen);
  if (pipelineHasPass(R, "close"))
    std::fprintf(stderr,
                 "// closed: %zu -> %zu nodes, %zu toss node(s), "
                 "%zu parameter(s) removed, %zu env call(s) eliminated\n",
                 R.Closing.NodesBefore, R.Closing.NodesAfter,
                 R.Closing.TossNodesInserted, R.Closing.ParamsRemoved,
                 R.Closing.EnvCallsRemoved);
  return true;
}

int cmdClose(const Args &A, bool ForcePartition = false) {
  if (A.Positional.empty()) {
    usage();
    return 1;
  }
  PipelineOptions Opts = pipelineOptionsFromArgs(A);
  if (ForcePartition || A.has("--partition")) {
    if (Opts.Passes.empty())
      Opts.Passes = {"partition", "close"};
    else if (std::find(Opts.Passes.begin(), Opts.Passes.end(),
                       "partition") == Opts.Passes.end())
      Opts.Passes.insert(Opts.Passes.begin(), "partition");
  }
  long JobsArg = A.intOf("--jobs", 1);
  size_t Jobs = JobsArg > 0 ? static_cast<size_t>(JobsArg) : 1;
  std::string StatsJsonPath = A.strOf("--stats-json", "");
  if (!argsOk(A))
    return 1;

  // Batch compile: every positional file runs the same pipeline (one pass
  // registry, one options struct, optionally one shared analysis-cache
  // directory) inside this process. Reads happen up front on the main
  // thread so a missing file dies with the usual diagnostic.
  const std::vector<std::string> &Files = A.Positional;
  std::vector<std::string> Sources;
  Sources.reserve(Files.size());
  for (const std::string &File : Files)
    Sources.push_back(readFile(File.c_str()));

  std::vector<CompileResult> Results(Files.size());
  size_t Workers = std::min(Jobs, Files.size());
  if (Workers <= 1) {
    for (size_t I = 0; I != Files.size(); ++I)
      Results[I] = compile(Sources[I], Opts);
  } else {
    std::atomic<size_t> Next{0};
    std::vector<std::thread> Pool;
    for (size_t W = 0; W != Workers; ++W)
      Pool.emplace_back([&] {
        for (size_t I; (I = Next.fetch_add(1)) < Files.size();)
          Results[I] = compile(Sources[I], Opts);
      });
    for (std::thread &T : Pool)
      T.join();
  }

  // Ordered reporting, independent of completion order.
  bool AnyFailed = false;
  for (const CompileResult &R : Results)
    AnyFailed |= !reportCloseResult(R);

  if (!StatsJsonPath.empty()) {
    json::Value Doc;
    if (Files.size() == 1) {
      Doc = compileArtifactToJson(Results[0]);
    } else {
      Doc = json::Value::object();
      Doc.add("schema", "closer-close-batch-stats-v1");
      Doc.add("jobs", static_cast<uint64_t>(Jobs));
      json::Value Modules = json::Value::array();
      for (size_t I = 0; I != Files.size(); ++I) {
        json::Value Entry = compileArtifactToJson(Results[I]);
        Entry.add("file", Files[I]);
        Modules.push(std::move(Entry));
      }
      Doc.add("modules", std::move(Modules));
    }
    std::string Err;
    if (!json::writeJsonFile(StatsJsonPath, Doc, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
  }
  return AnyFailed ? 1 : 0;
}

int cmdCfg(const Args &A) {
  if (A.Positional.empty()) {
    usage();
    return 1;
  }
  CloseResult R = closeFileOrDie(A.Positional[0], A);
  if (A.Positional.size() > 1) {
    const ProcCfg *Proc = R.Closed->findProc(A.Positional[1]);
    if (!Proc) {
      std::fprintf(stderr, "error: no procedure '%s'\n",
                   A.Positional[1].c_str());
      return 1;
    }
    std::printf("%s", printCfg(*Proc).c_str());
    return 0;
  }
  std::printf("%s", printModule(*R.Closed).c_str());
  return 0;
}

int cmdDot(const Args &A) {
  if (A.Positional.size() < 2) {
    usage();
    return 1;
  }
  CloseResult R = closeFileOrDie(A.Positional[0], A);
  const ProcCfg *Proc = R.Closed->findProc(A.Positional[1]);
  if (!Proc) {
    std::fprintf(stderr, "error: no procedure '%s'\n",
                 A.Positional[1].c_str());
    return 1;
  }
  std::printf("%s", cfgToDot(*Proc).c_str());
  return 0;
}

/// Set by the SIGINT handler; polled by the explorer's monitor thread so a
/// Ctrl-C drains workers and still reports partial results. A second
/// Ctrl-C falls back to the default handler (hard kill).
std::atomic<bool> GInterruptRequested{false};

extern "C" void closerOnSigint(int) {
  GInterruptRequested.store(true, std::memory_order_relaxed);
  std::signal(SIGINT, SIG_DFL);
}

int cmdExplore(const Args &A) {
  if (A.Positional.empty()) {
    usage();
    return 1;
  }
  std::string Source = readFile(A.Positional[0].c_str());

  std::unique_ptr<Module> ToExplore;
  if (A.has("--open")) {
    DiagnosticEngine Diags;
    ToExplore = compileAndVerify(Source, Diags);
    if (!ToExplore) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
  } else {
    CloseResult R = closeFileOrDie(A.Positional[0], A);
    ToExplore = std::move(R.Closed);
    if (R.Stats.EnvCallsRemoved || R.Stats.ParamsRemoved)
      std::fprintf(stderr, "note: program was open; closed automatically\n");
  }

  SearchOptions Opts;
  Opts.MaxDepth = static_cast<size_t>(A.intOf("--depth", 60));
  Opts.MaxRuns = static_cast<uint64_t>(A.intOf("--max-runs", 1000000));
  Opts.StopOnFirstError = A.has("--stop-on-error");
  Opts.Runtime.EnvDomainBound = A.intOf("--env-domain", 1);
  if (A.has("--no-por")) {
    Opts.UsePersistentSets = false;
    Opts.UseSleepSets = false;
  }
  if (A.has("--state-cache")) {
    const std::string *V = A.value("--state-cache");
    long Bits = (V && !V->empty()) ? A.intOf("--state-cache", 0)
                                   : StateCache::DefaultBits;
    Opts.StateCacheBits = Bits > 0 ? static_cast<unsigned>(Bits) : 0;
  }
  if (A.has("--hash")) {
    std::fprintf(stderr, "warning: --hash is deprecated; use "
                         "--state-cache[=BITS]\n");
    Opts.UseStateHashing = true;
  }
  long Jobs = A.intOf("--jobs", 1);
  if (Jobs < 0) {
    std::fprintf(stderr,
                 "error: --jobs must be >= 1, or 0 for one worker per "
                 "hardware thread (got %ld)\n",
                 Jobs);
    return 1;
  }
  // 0 = auto: explore() resolves it to the hardware concurrency and the
  // resolved count is what the stats-json artifact records.
  Opts.Jobs = static_cast<size_t>(Jobs);
  std::string Exec = A.strOf("--exec", "interp");
  if (Exec == "interp") {
    Opts.Exec = ExecMode::Interp;
  } else if (Exec == "vm") {
    Opts.Exec = ExecMode::Vm;
  } else if (Exec == "both") {
    Opts.Exec = ExecMode::Both;
  } else {
    std::fprintf(stderr,
                 "error: unknown --exec mode '%s' (expected interp, vm or "
                 "both)\n",
                 Exec.c_str());
    return 1;
  }
  // The library defaults to the paper's pure stateless search; the CLI
  // defaults to checkpointing on, since the outcome is identical and the
  // restore path is strictly faster.
  long Ckpt = A.intOf("--checkpoint-interval", 8);
  Opts.CheckpointInterval = Ckpt > 0 ? static_cast<size_t>(Ckpt) : 0;

  // Observability & graceful degradation.
  Opts.TimeBudgetSeconds = A.secondsOf("--time-budget", 0);
  if (A.has("--progress")) {
    const std::string *V = A.value("--progress");
    Opts.ProgressIntervalSeconds =
        (V && !V->empty()) ? A.secondsOf("--progress", 2.0) : 2.0;
  }
  std::string StatsJsonPath = A.strOf("--stats-json", "");
  if (!argsOk(A))
    return 1;

  // One centralized options check instead of scattered ad-hoc clamps: all
  // diagnostics are printed, and any error stops the run before it starts.
  bool BadOpts = false;
  for (const Diagnostic &D : Opts.validate()) {
    std::fprintf(stderr, "%s\n", D.str().c_str());
    BadOpts |= D.Kind == DiagKind::Error;
  }
  if (BadOpts)
    return 1;

  Opts.ExternalStop = &GInterruptRequested;
  std::signal(SIGINT, closerOnSigint);

  // explore() selects the backend (sequential, parallel, cached) from the
  // options; with the defaults it runs the plain sequential search.
  SearchResult Result = explore(*ToExplore, Opts);
  const SearchStats &Stats = Result.Stats;
  std::signal(SIGINT, SIG_DFL);

  std::printf("%s\n", Stats.str().c_str());
  if (Stats.VisibleOpsCovered < Stats.VisibleOpsTotal) {
    std::printf("uncovered visible operations:\n");
    for (const auto &[Proc, Node] : Result.Uncovered)
      std::printf("  %s node N%u\n", Proc.c_str(), Node);
  }
  if (Stats.Interrupted) {
    std::printf("interrupted after %.1fs; deepest in-flight prefixes "
                "(resume by hand via `closer explore` / `closer replay`):\n",
                Stats.WallSeconds);
    for (const std::vector<ReplayStep> &P : Result.Resume)
      std::printf("replay: %s\n", replayToString(P).c_str());
  }
  for (const ErrorReport &Rep : Result.Reports)
    std::printf("\n%s", Rep.str().c_str());

  if (!StatsJsonPath.empty()) {
    std::string Err;
    if (!json::writeJsonFile(StatsJsonPath, runArtifactToJson(Result),
                             &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
  }
  return (Stats.Deadlocks || Stats.AssertionViolations ||
          Stats.RuntimeErrors)
             ? 2
             : 0;
}

int cmdNaive(const Args &A) {
  if (A.Positional.empty()) {
    usage();
    return 1;
  }
  PipelineOptions Opts = pipelineOptionsFromArgs(A);
  if (Opts.Passes.empty())
    Opts.Passes = {"naive-close"};
  if (!argsOk(A))
    return 1;
  CompileResult R = compileFileOrDie(A.Positional[0], Opts, A);
  std::printf("%s", emitModuleSource(*R.M).c_str());
  std::fprintf(stderr,
               "// naive closing over [0,%lld]: %zu env input(s), %zu env "
               "output(s), %zu wrapper(s)\n",
               static_cast<long long>(Opts.Naive.DomainBound),
               R.Naive.EnvInputsRewritten, R.Naive.EnvOutputsRewritten,
               R.Naive.WrappersSynthesized);
  return 0;
}

int cmdInterface(const Args &A) {
  if (A.Positional.empty()) {
    usage();
    return 1;
  }
  PipelineOptions Opts = pipelineOptionsFromArgs(A);
  if (Opts.Passes.empty())
    Opts.Passes = {"interface"};
  if (!argsOk(A))
    return 1;
  CompileResult R = compileFileOrDie(A.Positional[0], Opts, A);
  if (!R.Interface) {
    std::fprintf(stderr, "error: pipeline ran no interface pass\n");
    return 1;
  }
  std::printf("%s", R.Interface->str().c_str());
  return R.Interface->isClosed() ? 0 : 3;
}

int cmdReplay(const Args &A) {
  if (A.Positional.size() < 2) {
    usage();
    return 1;
  }
  std::vector<ReplayStep> Steps;
  if (!parseReplay(A.Positional[1], Steps)) {
    std::fprintf(stderr, "error: malformed choice sequence\n");
    return 1;
  }

  std::unique_ptr<Module> Mod;
  if (A.has("--open")) {
    DiagnosticEngine Diags;
    Mod = compileAndVerify(readFile(A.Positional[0].c_str()), Diags);
    if (!Mod) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
  } else {
    CloseResult R = closeFileOrDie(A.Positional[0], A);
    Mod = std::move(R.Closed);
  }

  SystemOptions SysOpts;
  SysOpts.EnvDomainBound = A.intOf("--env-domain", 1);
  if (!argsOk(A))
    return 1;
  ReplayResult R = replayChoices(*Mod, Steps, SysOpts);
  std::printf("%s", traceToString(R.TraceOut).c_str());
  if (!R.Violations.empty())
    std::printf("=> %zu assertion violation(s)\n", R.Violations.size());
  if (R.Error)
    std::printf("=> %s\n", R.Error.str().c_str());
  switch (R.Final) {
  case GlobalStateKind::Deadlock:
    std::printf("=> deadlock\n");
    break;
  case GlobalStateKind::Termination:
    std::printf("=> termination\n");
    break;
  case GlobalStateKind::HasEnabled:
    std::printf("=> transitions still enabled\n");
    break;
  }
  if (!R.Faithful)
    std::printf("warning: choice sequence did not fit this program "
                "exactly\n");
  return 0;
}

int cmdGenCorpus(const Args &A) {
  CorpusConfig Config;
  Config.Procs = static_cast<int>(A.intOf("--procs", 8));
  Config.StmtsPerProc = static_cast<int>(A.intOf("--stmts", 32));
  Config.Seed = static_cast<uint64_t>(A.intOf("--seed", 11));
  Config.TweakProc = static_cast<int>(A.intOf("--tweak", -1));
  if (!argsOk(A))
    return 1;
  std::printf("%s", generateCorpusSource(Config).c_str());
  return 0;
}

int cmdGenSwitchApp(const Args &A) {
  SwitchAppConfig Config;
  Config.NumLines = static_cast<int>(A.intOf("--lines", 3));
  Config.NumTrunks = static_cast<int>(A.intOf("--trunks", 2));
  Config.EventsPerLine = static_cast<int>(A.intOf("--events", 2));
  Config.HandlerVariants = static_cast<int>(A.intOf("--variants", 1));
  Config.SeedTrunkLeakBug = A.has("--bug");
  if (!argsOk(A))
    return 1;
  std::printf("%s", generateSwitchAppSource(Config).c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  std::string Cmd = argv[1];
  Args A = parseArgs(argc, argv, 2, closerFlagSpec());
  if (!A.Error.empty()) {
    std::fprintf(stderr, "error: %s\n", A.Error.c_str());
    usage();
    return 1;
  }
  if (Cmd == "close")
    return cmdClose(A);
  if (Cmd == "cfg")
    return cmdCfg(A);
  if (Cmd == "dot")
    return cmdDot(A);
  if (Cmd == "explore")
    return cmdExplore(A);
  if (Cmd == "naive")
    return cmdNaive(A);
  if (Cmd == "partition") // Deprecated alias for `close --partition`.
    return cmdClose(A, /*ForcePartition=*/true);
  if (Cmd == "replay")
    return cmdReplay(A);
  if (Cmd == "interface")
    return cmdInterface(A);
  if (Cmd == "gen-switchapp")
    return cmdGenSwitchApp(A);
  if (Cmd == "gen-corpus")
    return cmdGenCorpus(A);
  usage();
  return 1;
}
