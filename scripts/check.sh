#!/usr/bin/env bash
# check.sh - the repo's one-stop verification gate.
#
# Runs the tier-1 line (configure, build, full ctest), then validates the
# machine-readable artifacts the tree emits:
#   * the concurrent state-cache suite is re-run explicitly under
#     ThreadSanitizer (the full ctest pass above includes it too; this
#     step makes a silent discovery failure loud);
#   * the work-stealing scheduler suite (Chase–Lev deque, parking lot,
#     steal-equivalence matrix) is re-run explicitly under Tsan, and the
#     steal_grid bench series gates sequential throughput, parallel
#     speedup (multi-core boxes only) and steady-state allocation;
#   * the vm differential suite (bytecode dispatch + checked arithmetic)
#     is re-run explicitly under Asan+UBSan;
#   * any BENCH_*.json benchmark outputs lying around the build tree must
#     parse as JSON arrays of flat records with a "config" field and only
#     finite numbers (a zero-elapsed run must clamp, not emit inf/nan);
#   * a smoke `closer explore --time-budget ... --stats-json` run on the
#     generated switchapp must produce a schema-tagged, well-formed
#     artifact even when the search is cut short;
#   * a cached parallel smoke run (`--state-cache --jobs 4`) must report
#     the cache counters in the stats artifact;
#   * the pass-pipeline suite is re-run explicitly under Asan+UBSan (the
#     module-replacement / in-place-mutation paths are where a dangling
#     cached-analysis pointer would surface);
#   * `closer close --stats-json` runs must produce well-formed
#     closer-close-stats-v1 artifacts: per-pass timings, analysis
#     computed/reused counters (cold close computes each analysis exactly
#     once; partition -> close shows genuine reuse) and the closing stats.
#
# Usage: scripts/check.sh [build-dir]   (default: build)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "== tier-1: configure + build + ctest =="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j
(cd "$BUILD" && ctest --output-on-failure -j)

echo "== tsan state-cache suite =="
# Guard against the suite silently disappearing from discovery: require at
# least one Tsan.StateCache* test to exist and pass (skipped only when the
# whole tree is a Tsan build, where the plain suite already is tsan).
# (no `grep -q`: with pipefail, its early exit would SIGPIPE ctest)
if (cd "$BUILD" && ctest -N -R 'Tsan\.StateCache' | grep 'Tsan\.StateCache' >/dev/null); then
  (cd "$BUILD" && ctest --output-on-failure -R 'Tsan\.StateCache')
else
  echo "warning: no Tsan.StateCache tests discovered (Tsan tree build?)" >&2
fi

echo "== tsan scheduler suite =="
# The work-stealing scheduler layer (Chase–Lev deques, parking lot,
# termination protocol) and the jobs x checkpoint x cache x exec
# equivalence matrix, recompiled under ThreadSanitizer. Same
# silent-disappearance guard as the state-cache gate above.
if (cd "$BUILD" && ctest -N -R 'Tsan\.(ChaseLevDeque|ParkingLot|Scheduler|StealEquivalence)' \
    | grep 'Tsan\.' >/dev/null); then
  (cd "$BUILD" && ctest --output-on-failure \
    -R 'Tsan\.(ChaseLevDeque|ParkingLot|Scheduler|StealEquivalence)')
else
  echo "warning: no Tsan scheduler tests discovered (Tsan tree build?)" >&2
fi

echo "== asan pass-pipeline suite =="
# Same silent-disappearance guard as the tsan gate above.
if (cd "$BUILD" && ctest -N -R 'Asan\.PassPipeline' | grep 'Asan\.PassPipeline' >/dev/null); then
  (cd "$BUILD" && ctest --output-on-failure -R 'Asan\.PassPipeline')
else
  echo "warning: no Asan.PassPipeline tests discovered (sanitizer tree build?)" >&2
fi

echo "== asan+ubsan vm differential suite =="
# The bytecode dispatch loop and its checked-arithmetic handlers (div/mod
# by zero, signed overflow) must run UB-free under instrumentation — this
# is the enforcement of the "deterministic RuntimeError, never UB"
# contract. Same silent-disappearance guard as above.
if (cd "$BUILD" && ctest -N -R 'Asan\.Vm' | grep 'Asan\.Vm' >/dev/null); then
  (cd "$BUILD" && ctest --output-on-failure -R 'Asan\.Vm')
else
  echo "warning: no Asan.Vm tests discovered (sanitizer tree build?)" >&2
fi

echo "== asan+ubsan incremental-cache suite =="
# The analysis-cache suite (deserializing stale/garbled cache blobs into
# analysis structures) and the domain-partition suite (multi-param erase
# compaction) recompiled under Asan+UBSan. Same silent-disappearance guard
# as above.
if (cd "$BUILD" && ctest -N -R 'Asan\.(AnalysisCache|BatchClose|DomainPartition)' \
    | grep 'Asan\.' >/dev/null); then
  (cd "$BUILD" && ctest --output-on-failure \
    -R 'Asan\.(AnalysisCache|BatchClose|DomainPartition)')
else
  echo "warning: no Asan incremental-cache tests discovered (sanitizer tree build?)" >&2
fi

echo "== artifact schema checks =="
PY=python3
command -v "$PY" >/dev/null || PY=python
if ! command -v "$PY" >/dev/null; then
  echo "warning: no python available; skipping JSON validation" >&2
  exit 0
fi

validate_bench() {
  "$PY" - "$1" <<'EOF'
import json, math, sys
path = sys.argv[1]

def reject_nonfinite(tok):
    raise ValueError(f"{path}: non-finite number {tok!r} in JSON")

with open(path) as f:
    data = json.load(f, parse_constant=reject_nonfinite)
assert isinstance(data, list), f"{path}: top level must be an array"
for rec in data:
    assert isinstance(rec, dict), f"{path}: records must be objects"
    assert "config" in rec, f"{path}: record missing 'config'"
    for key, val in rec.items():
        # parse_constant catches Infinity/NaN tokens; an overflowing
        # literal like 1e999 still parses to inf, so re-check the values.
        if isinstance(val, float):
            assert math.isfinite(val), f"{path}: {key} is non-finite ({val})"
print(f"ok: {path} ({len(data)} records)")
EOF
}

found=0
while IFS= read -r bench_json; do
  found=1
  validate_bench "$bench_json"
done < <(find "$BUILD" -maxdepth 2 -name 'BENCH_*.json' | sort)
[ "$found" = 1 ] || echo "note: no BENCH_*.json artifacts in $BUILD (benches not run)"

echo "== closing linearity gate (bench_scaling) =="
# Gates the `close_ns_per_unit` series (alias + defuse + taint + close, ns
# per CFG-node+du-arc — the closing pipeline proper; frontend and emission
# excluded). Two assertions, sized from measured behaviour on this series
# (rationale in bench_scaling.cpp's emitProfile comment):
#   (a) top step N=32768 -> N=131072 within 1.3x: both points are past
#       cache capacity, so a superlinear term cannot hide there — the
#       original defect was still growing at this end of the range;
#   (b) whole N=512 -> N=131072 envelope bounded: the small end sits below
#       the series only because a ~500-stmt module fits in cache between
#       phases (pure parsing shows the same ~1.8x hierarchy step), so the
#       envelope bounds that constant factor without gating the machine.
BENCH_SCALING="$BUILD/bench/bench_scaling"
if [ -x "$BENCH_SCALING" ]; then
  (cd "$BUILD/bench" && ./bench_scaling --json-only >/dev/null)
  validate_bench "$BUILD/bench/BENCH_scaling.json"
  "$PY" - "$BUILD/bench/BENCH_scaling.json" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    rows = {rec["config"]: rec for rec in json.load(f)}
def per_unit(n):
    return rows[f"close_N{n}"]["close_ns_per_unit"]
small, mid, big = per_unit(512), per_unit(32768), per_unit(131072)
step = big / mid
assert step <= 1.30, \
    f"superlinear closing: N=32768 -> N=131072 ns/unit grew {step:.2f}x (> 1.30x)"
envelope = big / small
assert envelope <= 2.25, \
    f"closing cost blow-up: N=512 -> N=131072 ns/unit grew {envelope:.2f}x (> 2.25x)"
print(f"ok: close ns/unit N512={small:.0f} N32768={mid:.0f} N131072={big:.0f} "
      f"(top step {step:.2f}x, envelope {envelope:.2f}x)")
EOF
else
  echo "warning: $BENCH_SCALING not built; skipping linearity gate" >&2
fi

echo "== work-stealing scheduler gate (bench_statespace --steal-only) =="
# The steal_grid series: cached grid at j=1 and j=min(nproc,4). The bench
# binary itself enforces j1-vs-jN tree identity and the zero-steady-state-
# allocation gate (pool_fresh * 50 < states) — a nonzero exit here is one
# of those tripping. On top, gate throughput:
#   (a) j1 must hold the cached-grid anchor (1,120,314 states/sec at PR 4)
#       within a 0.80x noise floor — the scheduler layer must not tax the
#       sequential path;
#   (b) only when the box has real parallelism (nproc > 1): jN must reach
#       0.55 x jobs x j1 — near-linear scaling, with headroom for the
#       shared fingerprint table. A single-core box runs the jN row for
#       the counter plumbing but skips the speedup assertion.
BENCH_SS="$BUILD/bench/bench_statespace"
if [ -x "$BENCH_SS" ]; then
  (cd "$BUILD/bench" && ./bench_statespace --steal-only >/dev/null)
  validate_bench "$BUILD/bench/BENCH_statespace_steal.json"
  NPROC="$(nproc 2>/dev/null || echo 1)"
  "$PY" - "$BUILD/bench/BENCH_statespace_steal.json" "$NPROC" <<'EOF'
import json, sys
path, nproc = sys.argv[1], int(sys.argv[2])
with open(path) as f:
    rows = {rec["config"]: rec for rec in json.load(f)}
j1 = rows["steal_grid_j1"]
jn = next(rows[k] for k in rows if k != "steal_grid_j1")
anchor = 1120314.0  # cached_grid_j1, PR 4 (ROADMAP perf anchors)
assert j1["states_per_sec"] >= 0.80 * anchor, \
    f"steal_grid j1 throughput {j1['states_per_sec']:.0f} below 0.80x the " \
    f"cached-grid anchor ({anchor:.0f})"
if nproc > 1:
    jobs = jn["jobs"]
    speedup = jn["states_per_sec"] / j1["states_per_sec"]
    assert speedup >= 0.55 * jobs, \
        f"steal_grid j{jobs} speedup {speedup:.2f}x below 0.55 x {jobs}"
    print(f"ok: steal_grid j1={j1['states_per_sec']:.0f}/s "
          f"j{jobs} speedup {speedup:.2f}x "
          f"(steals={jn['steals']}, by-worker={jn['steals_by_worker']})")
else:
    print(f"ok: steal_grid j1={j1['states_per_sec']:.0f}/s "
          f"(single core: speedup gate skipped; "
          f"pool_fresh={j1['pool_fresh']}, states={j1['states']})")
EOF
else
  echo "warning: $BENCH_SS not built; skipping scheduler gate" >&2
fi

echo "== explore --stats-json smoke =="
CLOSER="$BUILD/tools/closer"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
"$CLOSER" gen-switchapp --lines 3 --trunks 2 > "$TMP/switchapp.mc"
# Exit 2 means the search reported errors - fine for a smoke run.
rc=0
"$CLOSER" explore "$TMP/switchapp.mc" --depth 30 --max-runs 100000000 \
  --time-budget 1 --jobs 4 --stats-json "$TMP/stats.json" \
  >/dev/null 2>&1 || rc=$?
if [ "$rc" != 0 ] && [ "$rc" != 2 ]; then
  echo "error: explore smoke run exited with $rc" >&2
  exit 1
fi
"$PY" - "$TMP/stats.json" <<'EOF'
import json, math, sys
path = sys.argv[1]

def reject_nonfinite(tok):
    raise ValueError(f"{path}: non-finite number {tok!r} in JSON")

with open(path) as f:
    art = json.load(f, parse_constant=reject_nonfinite)
assert art["schema"] == "closer-explore-stats-v1", art.get("schema")
for key in ("stats", "options", "workers", "reports", "resume"):
    assert key in art, f"missing '{key}'"
for key in ("wall_seconds", "states_per_second", "transitions_per_second"):
    assert math.isfinite(art[key]), f"{key} is non-finite ({art[key]})"
assert art["stats"]["states_visited"] > 0, "empty run"
if art["interrupted"]:
    assert art["resume"], "interrupted run must carry resume prefixes"
print(f"ok: {path} (interrupted={art['interrupted']}, "
      f"states={art['stats']['states_visited']})")
EOF

echo "== explore --state-cache --jobs 4 smoke =="
rc=0
"$CLOSER" explore examples/minic/bounded_buffer.mc --depth 40 \
  --max-runs 100000000 --state-cache=16 --jobs 4 \
  --stats-json "$TMP/cached.json" >/dev/null 2>&1 || rc=$?
if [ "$rc" != 0 ] && [ "$rc" != 2 ]; then
  echo "error: cached explore smoke run exited with $rc" >&2
  exit 1
fi
"$PY" - "$TMP/cached.json" <<'EOF'
import json, sys
path = sys.argv[1]

def reject_nonfinite(tok):
    raise ValueError(f"{path}: non-finite number {tok!r} in JSON")

with open(path) as f:
    art = json.load(f, parse_constant=reject_nonfinite)
assert art["schema"] == "closer-explore-stats-v1", art.get("schema")
stats, options = art["stats"], art["options"]
for key in ("cache_hits", "cache_inserts", "cache_saturated"):
    assert key in stats, f"stats missing '{key}'"
assert options.get("state_cache_bits") == 16, options.get("state_cache_bits")
assert options.get("jobs") == 4, options.get("jobs")
assert stats["cache_inserts"] > 0, "cache never inserted"
assert stats["cache_saturated"] == 0, "smoke run saturated a 2^16 cache"
print(f"ok: {path} (cache_inserts={stats['cache_inserts']}, "
      f"cache_hits={stats['cache_hits']})")
EOF

echo "== close --stats-json smoke (cold close) =="
"$CLOSER" close examples/minic/figure2.mc \
  --stats-json "$TMP/close.json" >/dev/null 2>&1
"$PY" - "$TMP/close.json" <<'EOF'
import json, sys
path = sys.argv[1]

def reject_nonfinite(tok):
    raise ValueError(f"{path}: non-finite number {tok!r} in JSON")

with open(path) as f:
    art = json.load(f, parse_constant=reject_nonfinite)
assert art["schema"] == "closer-close-stats-v1", art.get("schema")
assert art["ok"] is True
for key in ("options", "passes", "analyses", "closing", "partition", "naive"):
    assert key in art, f"missing '{key}'"
names = [p["name"] for p in art["passes"]]
assert names == ["parse", "sema", "lower", "verify", "close"], names
for p in art["passes"]:
    assert isinstance(p["wall_seconds"], (int, float)) and p["wall_seconds"] >= 0
for a in ("alias", "defuse", "envtaint"):
    rec = art["analyses"][a]
    assert "computed" in rec and "reused" in rec, a
# Cold close: each analysis computed exactly once (define-use once per
# procedure), nothing served from a warm cache beforehand.
assert art["analyses"]["alias"]["computed"] == 1, art["analyses"]
assert art["analyses"]["envtaint"]["computed"] == 1, art["analyses"]
assert art["analyses"]["defuse"]["reused"] == 0, art["analyses"]
closing = art["closing"]
for key in ("nodes_before", "nodes_after", "toss_nodes_inserted",
            "params_removed", "env_calls_removed"):
    assert key in closing, f"closing missing '{key}'"
assert closing["nodes_before"] > 0
print(f"ok: {path} (passes={names}, "
      f"defuse_computed={art['analyses']['defuse']['computed']})")
EOF

echo "== close --partition --stats-json smoke (warm cache) =="
"$CLOSER" close examples/minic/resource_manager.mc --partition \
  --verify-each --stats-json "$TMP/partition.json" >/dev/null 2>&1
"$PY" - "$TMP/partition.json" <<'EOF'
import json, sys
path = sys.argv[1]

def reject_nonfinite(tok):
    raise ValueError(f"{path}: non-finite number {tok!r} in JSON")

with open(path) as f:
    art = json.load(f, parse_constant=reject_nonfinite)
assert art["schema"] == "closer-close-stats-v1", art.get("schema")
assert art["ok"] is True
names = [p["name"] for p in art["passes"]]
assert names == ["parse", "sema", "lower", "verify", "partition", "close"], names
assert art["options"]["verify_each"] is True
assert art["partition"]["inputs_partitioned"] + \
       art["partition"]["params_partitioned"] > 0, art["partition"]
# partition warmed the cache; close must have reused, not recomputed.
analyses = art["analyses"]
reused = sum(analyses[a]["reused"] for a in ("alias", "defuse", "envtaint"))
assert reused > 0, analyses
assert analyses["alias"]["computed"] == 1, analyses
print(f"ok: {path} (reused={reused})")
EOF

echo "== incremental close gate (analysis cache) =="
# Cold -> warm -> one-proc edit over a persistent --analysis-cache DIR.
# The warm run must restore everything; the edited run must recompute only
# the touched procedure's def-use graph (plus the interprocedural taint
# fixpoint, which legitimately depends on every procedure) and reuse the
# rest from the cache.
"$CLOSER" gen-corpus --procs 6 --stmts 24 --seed 3 > "$TMP/corpus.mc"
"$CLOSER" gen-corpus --procs 6 --stmts 24 --seed 3 --tweak 2 \
  > "$TMP/corpus_tweaked.mc"
if cmp -s "$TMP/corpus.mc" "$TMP/corpus_tweaked.mc"; then
  echo "error: --tweak produced an identical corpus" >&2
  exit 1
fi
"$CLOSER" close "$TMP/corpus.mc" --analysis-cache "$TMP/acache" \
  --stats-json "$TMP/incr_cold.json" >/dev/null 2>&1
"$CLOSER" close "$TMP/corpus.mc" --analysis-cache "$TMP/acache" \
  --stats-json "$TMP/incr_warm.json" >/dev/null 2>&1
"$CLOSER" close "$TMP/corpus_tweaked.mc" --analysis-cache "$TMP/acache" \
  --stats-json "$TMP/incr_edit.json" >/dev/null 2>&1
"$PY" - "$TMP/incr_cold.json" "$TMP/incr_warm.json" "$TMP/incr_edit.json" <<'EOF'
import json, sys
cold, warm, edit = (json.load(open(p)) for p in sys.argv[1:4])
for art in (cold, warm, edit):
    assert art["schema"] == "closer-close-stats-v1", art.get("schema")
    assert art["ok"] is True
    assert "analysis_cache" in art, "cache enabled but no analysis_cache block"

# Cold: nothing to restore, everything computed, entries persisted.
assert cold["analysis_cache"]["defuse_restored"] == 0, cold["analysis_cache"]
assert cold["analysis_cache"]["entries_saved"] > 0, cold["analysis_cache"]
assert cold["analyses"]["defuse"]["computed"] == 6, cold["analyses"]

# Warm: everything served from the cache, nothing recomputed.
assert warm["analysis_cache"]["alias_restored"] == 1, warm["analysis_cache"]
assert warm["analysis_cache"]["defuse_restored"] == 6, warm["analysis_cache"]
assert warm["analysis_cache"]["taint_restored"] == 1, warm["analysis_cache"]
assert warm["analyses"]["alias"]["computed"] == 0, warm["analyses"]
assert warm["analyses"]["defuse"]["computed"] == 0, warm["analyses"]
assert warm["analyses"]["envtaint"]["computed"] == 0, warm["analyses"]

# One-proc edit: only the touched procedure's def-use graph recomputes;
# the other five restore. Taint is interprocedural, so it recomputes.
assert edit["analysis_cache"]["defuse_restored"] == 5, edit["analysis_cache"]
assert edit["analyses"]["defuse"]["computed"] == 1, edit["analyses"]
assert edit["analyses"]["defuse"]["reused"] == 5, edit["analyses"]
assert edit["analyses"]["envtaint"]["computed"] == 1, edit["analyses"]
print(f"ok: incremental close (warm restored {warm['analysis_cache']['defuse_restored']} "
      f"defuse graphs; one-proc edit recomputed "
      f"{edit['analyses']['defuse']['computed']}, reused "
      f"{edit['analyses']['defuse']['reused']})")
EOF

echo "== all checks passed =="
