//===- Bytecode.h - Register bytecode for closed modules -------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled form a Module is lowered to for fast transition execution.
/// One flat instruction array covers the whole module; per-procedure offset
/// tables map CFG nodes to their compiled entry points so execution can
/// resume from any System state (Frame.PC is a NodeId, and snapshots restore
/// PCs, so the VM must be able to enter at any transition boundary).
///
/// Layout per CFG node:
///  * NodeOffset[n] — the invisible-run entry: a Tick instruction (step
///    accounting identical to the interpreter's per-node count) followed by
///    the node's body, or by AtVisible for visible operations (the
///    interpreter stops *before* a visible op, after charging its step).
///  * BodyOffset[n] — for visible nodes only: the visible operation itself
///    (no Tick: the interpreter's execVisible runs outside step accounting),
///    the trace event append, EndVis (++NumTransitions), then the advance.
///  * RetCont[n] — for call nodes: the return continuation (optional store
///    of the returned value, then the advance). Ret looks this up through
///    the caller frame's PC, which is parked at the call node — exactly the
///    information a restored snapshot preserves.
///
/// Variable references are resolved to slot indices at compile time (via
/// the same buildProcLayouts() the System uses), so steady-state execution
/// performs no string hashing at all. Names that do not resolve statically
/// compile to Fail instructions reproducing the interpreter's error kind,
/// message and location exactly.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_VM_BYTECODE_H
#define CLOSER_VM_BYTECODE_H

#include "cfg/Cfg.h"
#include "runtime/System.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace closer {
namespace vm {

enum class Op : uint8_t {
  Tick,       ///< Per-node step accounting; fails with Divergence at limit.
  AtVisible,  ///< X = NodeId: park at the visible op (sets Frame.PC), stop.
  Halt,       ///< haltProcess (dropped control point / top-level return).
  Jmp,        ///< pc = X.
  Fail,       ///< Raise Fails[X] (statically-diagnosed runtime error).

  LoadImm,     ///< r[A] = Int(Imm).
  LoadUnknown, ///< r[A] = unknown.
  LoadRet,     ///< r[A] = return-value register (set by Ret).
  LoadLocal,   ///< r[A] = frame slot X (scalar).
  LoadGlobal,  ///< r[A] = global slot X (scalar).
  StoreLocal,  ///< frame slot X = r[A].
  StoreGlobal, ///< global slot X = r[A].

  AddrLocal,      ///< r[A] = &frame slot X.
  AddrGlobal,     ///< r[A] = &global slot X.
  AddrElemLocal,  ///< r[A] = &frame slot X [r[B]] (index must be an integer).
  AddrElemGlobal, ///< r[A] = &global slot X [r[B]].
  LoadAt,         ///< r[A] = load through address r[B] (full dynamic checks).
  StoreAt,        ///< store r[B] through address r[A].
  Deref,          ///< r[A] = *r[B] (unknown passes through; else pointer).
  StoreDeref,     ///< *r[A] = r[B] (non-pointer is an error).

  // Binary: r[A] = r[B] op r[C]. Pointer operands (except Eq/Ne) and
  // overflow are errors; unknown propagates.
  Add, Sub, Mul, Div, Mod, Lt, Le, Gt, Ge, And, Or, Eq, Ne,
  // Immediate forms: r[A] = r[B] op Int(Imm). The compiler fuses a literal
  // operand into the consuming instruction (and flips comparisons when the
  // literal is on the left), eliminating the LoadImm dispatch and register
  // write on the hottest eval paths (loop bounds, counters, masks). Checks
  // and error text are identical to the two-register forms.
  AddImm, SubImm, MulImm, DivImm, ModImm,
  LtImm, LeImm, GtImm, GeImm, EqImm, NeImm,
  Neg, ///< r[A] = -r[B].
  Not, ///< r[A] = !r[B].

  BrTruthy, ///< pc = truthy(r[A]) ? X : Imm; unknown condition is an error.
  Switch,   ///< Jump via Tables[X] on integer r[A] (first matching case).
  TossBr,   ///< choose(Toss, Imm), jump via Tables[X].
  TossVal,  ///< r[A] = choose(Toss, r[B]); validates the bound.
  EnvVal,   ///< r[A] = choose(Env, EnvDomainBound); validates the bound.

  CallPre,  ///< X = CallSite: frame-stack limit check.
  CallPush, ///< X = CallSite: push callee frame from r[ArgBase..], jump in.
  Ret,      ///< Pop frame; halt at top level, else resume caller's RetCont.

  // Visible operations; X = VisInfo index.
  SendV,        ///< Push r[A] onto the channel.
  RecvV,        ///< r[A] = pop channel front.
  SemWaitV,     ///< --Count.
  SemSignalV,   ///< ++Count.
  SharedWriteV, ///< Shared = r[A].
  SharedReadV,  ///< r[A] = Shared.
  AssertV,      ///< Record a violation when r[A] is Int(0).
  EventPay,     ///< Append the trace event with payload r[A].
  EventNoPay,   ///< Append the trace event without payload.
  EndVis,       ///< ++NumTransitions (visible op committed).
};

/// One instruction. A/B/C are register operands, X is a slot index, code
/// offset or auxiliary-table index, Imm an immediate. Source locations for
/// error reporting live in a parallel array (CompiledModule::Locs) so the
/// hot instruction stays compact.
struct Instr {
  Op Code;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  int32_t X = 0;
  int64_t Imm = 0;
};

struct JumpCase {
  int64_t Value = 0;
  int32_t Target = -1; ///< Code offset.
};

struct JumpTable {
  std::vector<JumpCase> Cases; ///< In arc order (first match wins).
  int32_t DefaultTarget = -1;  ///< Switch default; unused for TossBr.
};

/// Static description of one visible operation.
struct VisInfo {
  BuiltinKind Kind = BuiltinKind::None;
  int32_t CommIdx = -1;
  std::string Object; ///< Trace event object name; empty for VS_assert.
};

/// Static description of one user-procedure call site.
struct CallSite {
  int32_t CalleeIdx = -1;
  int32_t NArgs = 0;
  int32_t ArgBase = 0;          ///< First argument register.
  NodeId CallNode = InvalidNode; ///< Caller parks here while callee runs.
  NodeId EntryNode = InvalidNode; ///< Callee's CFG entry (new frame's PC).
  int32_t EntryOffset = -1;      ///< Callee's compiled entry.
};

/// A statically-diagnosed runtime error (unresolvable name, malformed toss
/// bound, ...): kind, message and location replicate the interpreter's.
struct FailInfo {
  RunErrorKind Kind = RunErrorKind::None;
  std::string Message;
  SourceLoc Loc;
};

struct CompiledProc {
  std::vector<int32_t> NodeOffset; ///< Per NodeId: invisible-run entry.
  std::vector<int32_t> BodyOffset; ///< Per NodeId: visible body, or -1.
  std::vector<int32_t> RetCont;    ///< Per NodeId: return continuation, or -1.
  std::vector<int64_t> ArraySizes; ///< Per slot; -1 scalar (frame building).
  int32_t RetValSlot = -1;
};

struct CompiledModule {
  std::vector<Instr> Code;
  std::vector<SourceLoc> Locs; ///< Parallel to Code; error attribution.
  std::vector<JumpTable> Tables;
  std::vector<VisInfo> Vis;
  std::vector<CallSite> Calls;
  std::vector<FailInfo> Fails;
  std::vector<CompiledProc> Procs; ///< Parallel to Module.Procs.
  uint32_t MaxRegs = 0;

  /// Summary for pipeline stats and docs.
  size_t instructionCount() const { return Code.size(); }
};

/// Lowers \p Mod to bytecode. The module must be verified; \p Mod must
/// outlive nothing (the compiled form is self-contained except for comm
/// parameters, which the executing System already holds).
std::shared_ptr<const CompiledModule> compileModule(const Module &Mod);

/// Human-readable disassembly (debugging aid; not a stable format).
std::string disassemble(const CompiledModule &CM);

} // namespace vm
} // namespace closer

#endif // CLOSER_VM_BYTECODE_H
