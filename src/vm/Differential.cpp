//===- Differential.cpp - Interpreter-vs-VM differential oracle --------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "vm/Differential.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace closer;
using namespace closer::vm;

namespace {

struct RecordedChoice {
  ChoiceProvider::ChoiceKind Kind;
  int64_t Bound;
  int64_t Value;
};

/// Wraps the real provider, logging every choice for replay into the VM leg.
class RecordingProvider : public ChoiceProvider {
public:
  RecordingProvider(ChoiceProvider &Inner, std::vector<RecordedChoice> &Log)
      : Inner(Inner), Log(Log) {}

  int64_t choose(ChoiceKind Kind, int64_t Bound) override {
    int64_t V = Inner.choose(Kind, Bound);
    Log.push_back({Kind, Bound, V});
    return V;
  }

private:
  ChoiceProvider &Inner;
  std::vector<RecordedChoice> &Log;
};

/// Replays a recorded choice sequence, verifying the consumer asks for the
/// same choices (kind and bound) in the same order. Never touches the real
/// provider: the explorer must observe exactly one choice sequence per
/// transition regardless of engine count.
class ReplayProvider : public ChoiceProvider {
public:
  explicit ReplayProvider(const std::vector<RecordedChoice> &Log) : Log(Log) {}

  int64_t choose(ChoiceKind Kind, int64_t Bound) override {
    if (Next >= Log.size()) {
      Mismatch = "VM requested more choices than the interpreter";
      return 0;
    }
    const RecordedChoice &C = Log[Next++];
    if (C.Kind != Kind || C.Bound != Bound)
      Mismatch = "VM choice request differs from the interpreter's "
                 "(kind or bound)";
    return C.Value;
  }

  bool fullyConsumed() const { return Next == Log.size(); }
  const char *mismatch() const { return Mismatch; }

private:
  const std::vector<RecordedChoice> &Log;
  size_t Next = 0;
  const char *Mismatch = nullptr;
};

bool sameError(const RunError &A, const RunError &B) {
  return A.Kind == B.Kind && A.Process == B.Process && A.Loc == B.Loc &&
         A.Message == B.Message;
}

bool sameViolations(const std::vector<AssertionViolation> &A,
                    const std::vector<AssertionViolation> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    if (A[I].Process != B[I].Process || A[I].Loc != B[I].Loc)
      return false;
  return true;
}

[[noreturn]] void die(int PIdx, bool IsPrefix, const char *What) {
  std::fprintf(stderr,
               "closer: differential oracle: interpreter and VM disagree on "
               "%s of process %d: %s\n",
               IsPrefix ? "the initial prefix" : "a transition", PIdx, What);
  std::abort();
}

} // namespace

ExecResult DifferentialEngine::executeTransition(System &S, int PIdx,
                                                 ChoiceProvider &Provider) {
  return runBoth(S, PIdx, Provider, /*IsPrefix=*/false);
}

ExecResult DifferentialEngine::runPrefix(System &S, int PIdx,
                                         ChoiceProvider &Provider) {
  return runBoth(S, PIdx, Provider, /*IsPrefix=*/true);
}

ExecResult DifferentialEngine::runBoth(System &S, int PIdx,
                                       ChoiceProvider &Provider,
                                       bool IsPrefix) {
  // restore() clears any in-flight error (snapshots normally sit at clean
  // transition boundaries), but reset() can legitimately hand runPrefix a
  // pending argument-binding error — both legs must see it.
  RunError SavedPending = S.PendingError;
  SystemSnapshot Pre = S.snapshot();

  std::vector<RecordedChoice> Log;
  RecordingProvider Rec(Provider, Log);
  ExecResult InterpResult = IsPrefix ? S.interpPrefix(PIdx, Rec)
                                     : S.interpTransition(PIdx, Rec);

  uint64_t InterpFp = S.fingerprint();
  size_t InterpDepth = S.depth();
  Trace InterpTrace = S.trace();
  std::vector<int> InterpEnabled = S.enabledProcesses();
  GlobalStateKind InterpClass = S.classify();

  S.restore(Pre);
  S.PendingError = SavedPending;

  ReplayProvider Rep(Log);
  ExecResult VmResult = IsPrefix ? TheVm.runPrefix(S, PIdx, Rep)
                                 : TheVm.executeTransition(S, PIdx, Rep);

  if (Rep.mismatch())
    die(PIdx, IsPrefix, Rep.mismatch());
  if (!Rep.fullyConsumed())
    die(PIdx, IsPrefix, "VM requested fewer choices than the interpreter");
  if (!sameError(InterpResult.Error, VmResult.Error))
    die(PIdx, IsPrefix, "execution error (kind, process, location or message)");
  if (!sameViolations(InterpResult.Violations, VmResult.Violations))
    die(PIdx, IsPrefix, "assertion violations");
  if (S.depth() != InterpDepth)
    die(PIdx, IsPrefix, "transition count");
  if (!(S.trace() == InterpTrace))
    die(PIdx, IsPrefix, "visible event trace");
  if (S.enabledProcesses() != InterpEnabled)
    die(PIdx, IsPrefix, "enabled process set");
  if (S.classify() != InterpClass)
    die(PIdx, IsPrefix, "global state classification");
  uint64_t VmFp = S.fingerprint();
  if (VmFp != InterpFp) {
    std::fprintf(stderr,
                 "closer: differential oracle: state fingerprints diverge "
                 "(interp %" PRIu64 ", vm %" PRIu64 ")\n",
                 InterpFp, VmFp);
    die(PIdx, IsPrefix, "state fingerprint");
  }
  return VmResult;
}
