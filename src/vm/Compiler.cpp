//===- Compiler.cpp - Module -> bytecode lowering ----------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// Lowers every procedure of a (verified, closed) Module to the register
// bytecode of Bytecode.h. The contract is exact observational equivalence
// with the tree-walking interpreter in System.cpp: the same store writes,
// the same choice-provider call sequence, the same trace events, and the
// same errors (kind, message, source location) in the same order. Every
// deviation is a bug that the differential oracle (--exec=both) flags.
//
// Expression compilation uses a virtual register stack: each subexpression
// nets one register holding its value, so argument lists land contiguously
// and register pressure equals expression depth. Names are resolved at
// compile time against the shared buildProcLayouts() numbering; names the
// interpreter would fail on at runtime compile to Fail instructions with
// the interpreter's exact diagnostics.
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"

#include <cassert>

using namespace closer;
using namespace closer::vm;

namespace {

/// Static resolution of a variable name, mirroring the interpreter's
/// layout-then-globals order.
struct ResolvedSlot {
  enum class K { Local, Global, None } Kind = K::None;
  int32_t Idx = -1;
  int64_t ArraySize = -1;
};

class ProcCompiler {
public:
  ProcCompiler(const Module &Mod, const std::vector<ProcLayout> &Layouts,
               CompiledModule &CM, int ProcIdx)
      : Mod(Mod), Layout(Layouts[ProcIdx]), CM(CM), ProcIdx(ProcIdx),
        Proc(Mod.Procs[ProcIdx]), Out(CM.Procs[ProcIdx]) {}

  void compile() {
    size_t N = Proc.Nodes.size();
    Out.NodeOffset.assign(N, -1);
    Out.BodyOffset.assign(N, -1);
    Out.RetCont.assign(N, -1);
    Out.ArraySizes = Layout.ArraySizes;
    Out.RetValSlot = Layout.RetValSlot;
    for (NodeId Id = 0; Id != N; ++Id)
      compileNode(Id);
    patch();
    if (MaxTop > CM.MaxRegs)
      CM.MaxRegs = MaxTop;
  }

private:
  const Module &Mod;
  const ProcLayout &Layout;
  CompiledModule &CM;
  int ProcIdx;
  const ProcCfg &Proc;
  CompiledProc &Out;

  uint32_t Top = 0, MaxTop = 0;

  struct Fixup {
    int32_t InstrIdx;
    bool IsImm; ///< Patch Imm instead of X.
    NodeId Target;
  };
  struct TableFixup {
    int32_t Table;
    int32_t Case; ///< -1 = default target.
    NodeId Target;
  };
  std::vector<Fixup> Fixups;
  std::vector<TableFixup> TableFixups;

  //===------------------------------------------------------------------===//
  // Emission primitives
  //===------------------------------------------------------------------===//

  int32_t emit(Op Code, uint16_t A = 0, uint16_t B = 0, uint16_t C = 0,
               int32_t X = 0, int64_t Imm = 0, SourceLoc Loc = SourceLoc()) {
    Instr I;
    I.Code = Code;
    I.A = A;
    I.B = B;
    I.C = C;
    I.X = X;
    I.Imm = Imm;
    CM.Code.push_back(I);
    CM.Locs.push_back(Loc);
    return static_cast<int32_t>(CM.Code.size() - 1);
  }

  uint16_t push() {
    assert(Top < 0xffff && "register file overflow");
    uint16_t R = static_cast<uint16_t>(Top++);
    if (Top > MaxTop)
      MaxTop = Top;
    return R;
  }
  void pop(uint32_t N = 1) {
    assert(Top >= N && "register stack underflow");
    Top -= N;
  }

  void emitFail(RunErrorKind Kind, std::string Message, SourceLoc Loc) {
    FailInfo F;
    F.Kind = Kind;
    F.Message = std::move(Message);
    F.Loc = Loc;
    CM.Fails.push_back(std::move(F));
    emit(Op::Fail, 0, 0, 0, static_cast<int32_t>(CM.Fails.size() - 1), 0, Loc);
  }

  void emitJmpTo(NodeId Target) {
    int32_t I = emit(Op::Jmp);
    Fixups.push_back({I, false, Target});
  }

  /// The interpreter's advanceAlways: follow the single Always arc or halt
  /// when the closing transformation dropped every successor.
  void emitAdvance(const CfgNode &Node) {
    if (Node.Arcs.empty()) {
      emit(Op::Halt);
      return;
    }
    emitJmpTo(Node.Arcs[0].Target);
  }

  ResolvedSlot resolveName(const std::string &Name) const {
    ResolvedSlot R;
    auto It = Layout.SlotOf.find(Name);
    if (It != Layout.SlotOf.end()) {
      R.Kind = ResolvedSlot::K::Local;
      R.Idx = static_cast<int32_t>(It->second);
      R.ArraySize = Layout.ArraySizes[It->second];
      return R;
    }
    for (size_t I = 0, E = Mod.Globals.size(); I != E; ++I)
      if (Mod.Globals[I].Name == Name) {
        R.Kind = ResolvedSlot::K::Global;
        R.Idx = static_cast<int32_t>(I);
        R.ArraySize = Mod.Globals[I].ArraySize;
        return R;
      }
    return R;
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  static Op binOp(BinaryOp B) {
    switch (B) {
    case BinaryOp::Add: return Op::Add;
    case BinaryOp::Sub: return Op::Sub;
    case BinaryOp::Mul: return Op::Mul;
    case BinaryOp::Div: return Op::Div;
    case BinaryOp::Mod: return Op::Mod;
    case BinaryOp::Lt:  return Op::Lt;
    case BinaryOp::Le:  return Op::Le;
    case BinaryOp::Gt:  return Op::Gt;
    case BinaryOp::Ge:  return Op::Ge;
    case BinaryOp::And: return Op::And;
    case BinaryOp::Or:  return Op::Or;
    case BinaryOp::Eq:  return Op::Eq;
    case BinaryOp::Ne:  return Op::Ne;
    }
    assert(false && "unhandled binary op");
    return Op::Add;
  }

  /// Immediate form consuming a right-hand literal, or false when the op
  /// has none (And/Or stay two-register; they are rare with literals).
  static bool immOpRhs(BinaryOp B, Op &Out) {
    switch (B) {
    case BinaryOp::Add: Out = Op::AddImm; return true;
    case BinaryOp::Sub: Out = Op::SubImm; return true;
    case BinaryOp::Mul: Out = Op::MulImm; return true;
    case BinaryOp::Div: Out = Op::DivImm; return true;
    case BinaryOp::Mod: Out = Op::ModImm; return true;
    case BinaryOp::Lt:  Out = Op::LtImm;  return true;
    case BinaryOp::Le:  Out = Op::LeImm;  return true;
    case BinaryOp::Gt:  Out = Op::GtImm;  return true;
    case BinaryOp::Ge:  Out = Op::GeImm;  return true;
    case BinaryOp::Eq:  Out = Op::EqImm;  return true;
    case BinaryOp::Ne:  Out = Op::NeImm;  return true;
    default: return false;
    }
  }

  /// Immediate form consuming a left-hand literal: commutative ops keep
  /// their form, comparisons flip (3 < b == b > 3). Sub/Div/Mod have no
  /// reversed form and stay unfused.
  static bool immOpLhs(BinaryOp B, Op &Out) {
    switch (B) {
    case BinaryOp::Add: Out = Op::AddImm; return true;
    case BinaryOp::Mul: Out = Op::MulImm; return true;
    case BinaryOp::Lt:  Out = Op::GtImm;  return true;
    case BinaryOp::Le:  Out = Op::GeImm;  return true;
    case BinaryOp::Gt:  Out = Op::LtImm;  return true;
    case BinaryOp::Ge:  Out = Op::LeImm;  return true;
    case BinaryOp::Eq:  Out = Op::EqImm;  return true;
    case BinaryOp::Ne:  Out = Op::NeImm;  return true;
    default: return false;
    }
  }

  /// Compiles the address of a VarRef/ArrayIndex place (the interpreter's
  /// addressOf): resolution errors fire before the index is evaluated.
  uint16_t compileAddrPlace(const Expr *Place) {
    ResolvedSlot R = resolveName(Place->Name);
    if (R.Kind == ResolvedSlot::K::None) {
      uint16_t Reg = push();
      emitFail(RunErrorKind::BadPointer,
               "address of unknown variable '" + Place->Name + "'",
               Place->Loc);
      return Reg;
    }
    if (Place->Kind == ExprKind::ArrayIndex) {
      uint16_t Idx = compileExpr(Place->Lhs.get());
      emit(R.Kind == ResolvedSlot::K::Local ? Op::AddrElemLocal
                                            : Op::AddrElemGlobal,
           Idx, Idx, 0, R.Idx, 0, Place->Loc);
      return Idx;
    }
    uint16_t Reg = push();
    emit(R.Kind == ResolvedSlot::K::Local ? Op::AddrLocal : Op::AddrGlobal,
         Reg, 0, 0, R.Idx, 0, Place->Loc);
    return Reg;
  }

  /// Compiles \p E into a fresh register (nets exactly one virtual-stack
  /// push), reproducing the interpreter's evaluation and error order.
  uint16_t compileExpr(const Expr *E) {
    switch (E->Kind) {
    case ExprKind::IntLit: {
      uint16_t R = push();
      emit(Op::LoadImm, R, 0, 0, 0, E->IntValue);
      return R;
    }
    case ExprKind::Unknown: {
      uint16_t R = push();
      emit(Op::LoadUnknown, R);
      return R;
    }
    case ExprKind::VarRef: {
      uint16_t R = push();
      ResolvedSlot S = resolveName(E->Name);
      if (S.Kind == ResolvedSlot::K::None) {
        emitFail(RunErrorKind::BadPointer,
                 "reference to unknown variable '" + E->Name + "'",
                 SourceLoc());
      } else if (S.ArraySize >= 0) {
        emitFail(RunErrorKind::BadPointer,
                 "array '" + E->Name + "' used as a scalar", SourceLoc());
      } else {
        emit(S.Kind == ResolvedSlot::K::Local ? Op::LoadLocal
                                              : Op::LoadGlobal,
             R, 0, 0, S.Idx);
      }
      return R;
    }
    case ExprKind::ArrayIndex: {
      uint16_t A = compileAddrPlace(E);
      emit(Op::LoadAt, A, A);
      return A;
    }
    case ExprKind::AddrOf:
      return compileAddrPlace(E->Lhs.get());
    case ExprKind::Deref: {
      uint16_t R = compileExpr(E->Lhs.get());
      emit(Op::Deref, R, R, 0, 0, 0, E->Loc);
      return R;
    }
    case ExprKind::Unary: {
      uint16_t R = compileExpr(E->Lhs.get());
      emit(E->UOp == UnaryOp::Neg ? Op::Neg : Op::Not, R, R, 0, 0, 0,
           E->Loc);
      return R;
    }
    case ExprKind::Binary: {
      // Fuse a literal operand into the instruction. Safe because a
      // literal evaluates without effects or errors, so the remaining
      // operand's evaluation (and the op's check order) is unchanged.
      Op ImmOp;
      if (E->Rhs->Kind == ExprKind::IntLit && immOpRhs(E->BOp, ImmOp)) {
        uint16_t L = compileExpr(E->Lhs.get());
        emit(ImmOp, L, L, 0, 0, E->Rhs->IntValue, E->Loc);
        return L;
      }
      if (E->Lhs->Kind == ExprKind::IntLit && immOpLhs(E->BOp, ImmOp)) {
        uint16_t R = compileExpr(E->Rhs.get());
        emit(ImmOp, R, R, 0, 0, E->Lhs->IntValue, E->Loc);
        return R;
      }
      uint16_t L = compileExpr(E->Lhs.get());
      uint16_t R = compileExpr(E->Rhs.get());
      emit(binOp(E->BOp), L, L, R, 0, 0, E->Loc);
      pop();
      return L;
    }
    case ExprKind::Call: {
      uint16_t R = push();
      emitFail(RunErrorKind::BadPointer,
               "call expression reached the evaluator (lowering bug)",
               E->Loc);
      return R;
    }
    }
    assert(false && "unhandled expression kind");
    return 0;
  }

  /// Compiles a store of register \p Src into lvalue \p Lvalue (nets zero).
  void compileStore(const Expr *Lvalue, uint16_t Src) {
    switch (Lvalue->Kind) {
    case ExprKind::VarRef: {
      ResolvedSlot S = resolveName(Lvalue->Name);
      if (S.Kind == ResolvedSlot::K::None) {
        emitFail(RunErrorKind::BadPointer,
                 "assignment to unknown variable '" + Lvalue->Name + "'",
                 Lvalue->Loc);
        return;
      }
      if (S.ArraySize >= 0) {
        emitFail(RunErrorKind::BadPointer, "cannot assign to whole array",
                 Lvalue->Loc);
        return;
      }
      emit(S.Kind == ResolvedSlot::K::Local ? Op::StoreLocal
                                            : Op::StoreGlobal,
           Src, 0, 0, S.Idx);
      return;
    }
    case ExprKind::ArrayIndex: {
      uint16_t A = compileAddrPlace(Lvalue);
      emit(Op::StoreAt, A, Src);
      pop();
      return;
    }
    case ExprKind::Deref: {
      uint16_t P = compileExpr(Lvalue->Lhs.get());
      emit(Op::StoreDeref, P, Src, 0, 0, 0, Lvalue->Loc);
      pop();
      return;
    }
    default:
      emitFail(RunErrorKind::BadPointer, "invalid assignment target",
               Lvalue->Loc);
    }
  }

  //===------------------------------------------------------------------===//
  // Nodes
  //===------------------------------------------------------------------===//

  int32_t addVisInfo(const CfgNode &Node) {
    VisInfo V;
    V.Kind = Node.Builtin;
    if (builtinInfo(Node.Builtin).TakesObject && !Node.Args.empty()) {
      V.Object = Node.Args[0]->Name;
      V.CommIdx = Mod.commIndex(V.Object);
      assert(V.CommIdx >= 0 && "verified module");
    }
    CM.Vis.push_back(std::move(V));
    return static_cast<int32_t>(CM.Vis.size() - 1);
  }

  void compileVisibleBody(NodeId Id, const CfgNode &Node) {
    Out.BodyOffset[Id] = static_cast<int32_t>(CM.Code.size());
    int32_t VI = addVisInfo(Node);
    switch (Node.Builtin) {
    case BuiltinKind::Send: {
      uint16_t R = compileExpr(Node.Args[1].get());
      emit(Op::SendV, R, 0, 0, VI);
      emit(Op::EventPay, R, 0, 0, VI);
      pop();
      break;
    }
    case BuiltinKind::Recv: {
      uint16_t R = push();
      emit(Op::RecvV, R, 0, 0, VI);
      if (Node.Target)
        compileStore(Node.Target.get(), R);
      emit(Op::EventPay, R, 0, 0, VI);
      pop();
      break;
    }
    case BuiltinKind::SemWait:
      emit(Op::SemWaitV, 0, 0, 0, VI);
      emit(Op::EventNoPay, 0, 0, 0, VI);
      break;
    case BuiltinKind::SemSignal:
      emit(Op::SemSignalV, 0, 0, 0, VI);
      emit(Op::EventNoPay, 0, 0, 0, VI);
      break;
    case BuiltinKind::SharedWrite: {
      uint16_t R = compileExpr(Node.Args[1].get());
      emit(Op::SharedWriteV, R, 0, 0, VI);
      emit(Op::EventPay, R, 0, 0, VI);
      pop();
      break;
    }
    case BuiltinKind::SharedRead: {
      uint16_t R = push();
      emit(Op::SharedReadV, R, 0, 0, VI);
      if (Node.Target)
        compileStore(Node.Target.get(), R);
      emit(Op::EventPay, R, 0, 0, VI);
      pop();
      break;
    }
    case BuiltinKind::VsAssert: {
      uint16_t R = compileExpr(Node.Args[0].get());
      emit(Op::AssertV, R, 0, 0, VI, 0, Node.Loc);
      emit(Op::EventPay, R, 0, 0, VI);
      pop();
      break;
    }
    case BuiltinKind::Halt:
      // Never enabled, so the body is unreachable; park defensively.
      emit(Op::Halt);
      return;
    default:
      assert(false && "not a visible operation");
    }
    emit(Op::EndVis);
    emitAdvance(Node);
  }

  void compileCall(NodeId Id, const CfgNode &Node) {
    switch (Node.Builtin) {
    case BuiltinKind::VsToss: {
      uint16_t B = compileExpr(Node.Args[0].get());
      emit(Op::TossVal, B, B, 0, 0, 0, Node.Loc);
      if (Node.Target)
        compileStore(Node.Target.get(), B);
      pop();
      emitAdvance(Node);
      return;
    }
    case BuiltinKind::EnvInput: {
      uint16_t R = push();
      emit(Op::EnvVal, R, 0, 0, 0, 0, Node.Loc);
      if (Node.Target)
        compileStore(Node.Target.get(), R);
      pop();
      emitAdvance(Node);
      return;
    }
    case BuiltinKind::EnvOutput: {
      uint16_t R = compileExpr(Node.Args[0].get());
      (void)R;
      pop();
      emitAdvance(Node);
      return;
    }
    case BuiltinKind::None: {
      int CalleeIdx = Mod.procIndex(Node.Callee);
      assert(CalleeIdx >= 0 && "verified module");
      CallSite CS;
      CS.CalleeIdx = CalleeIdx;
      CS.NArgs = static_cast<int32_t>(Node.Args.size());
      CS.ArgBase = static_cast<int32_t>(Top);
      CS.CallNode = Id;
      CS.EntryNode = Mod.Procs[CalleeIdx].Entry;
      CM.Calls.push_back(CS);
      int32_t CSIdx = static_cast<int32_t>(CM.Calls.size() - 1);
      emit(Op::CallPre, 0, 0, 0, CSIdx, 0, Node.Loc);
      for (const ExprPtr &Arg : Node.Args)
        compileExpr(Arg.get());
      emit(Op::CallPush, 0, 0, 0, CSIdx);
      pop(static_cast<uint32_t>(Node.Args.size()));
      // Return continuation: the Ret handler resumes here through the
      // caller frame's PC (parked at this call node).
      Out.RetCont[Id] = static_cast<int32_t>(CM.Code.size());
      if (Node.Target) {
        uint16_t R = push();
        emit(Op::LoadRet, R);
        compileStore(Node.Target.get(), R);
        pop();
      }
      emitAdvance(Node);
      return;
    }
    default:
      assert(false && "visible builtins handled by compileVisibleBody");
    }
  }

  void compileNode(NodeId Id) {
    const CfgNode &Node = Proc.Nodes[Id];
    Out.NodeOffset[Id] = static_cast<int32_t>(CM.Code.size());
    emit(Op::Tick);
    assert(Top == 0 && "register stack must be empty between nodes");

    switch (Node.Kind) {
    case CfgNodeKind::Start:
      emitAdvance(Node);
      break;

    case CfgNodeKind::Assign: {
      uint16_t R = compileExpr(Node.Value.get());
      compileStore(Node.Target.get(), R);
      pop();
      emitAdvance(Node);
      break;
    }

    case CfgNodeKind::Branch: {
      uint16_t R = compileExpr(Node.Value.get());
      int32_t I = emit(Op::BrTruthy, R, 0, 0, -1, -1, Node.Loc);
      Fixups.push_back({I, false, Node.Arcs[0].Target});
      Fixups.push_back({I, true, Node.Arcs[1].Target});
      pop();
      break;
    }

    case CfgNodeKind::Switch: {
      uint16_t R = compileExpr(Node.Value.get());
      JumpTable T;
      int32_t TIdx = static_cast<int32_t>(CM.Tables.size());
      for (const CfgArc &Arc : Node.Arcs) {
        if (Arc.Kind == ArcKind::CaseEq) {
          TableFixups.push_back(
              {TIdx, static_cast<int32_t>(T.Cases.size()), Arc.Target});
          T.Cases.push_back({Arc.Value, -1});
        } else if (Arc.Kind == ArcKind::CaseDefault) {
          TableFixups.push_back({TIdx, -1, Arc.Target});
        }
      }
      CM.Tables.push_back(std::move(T));
      emit(Op::Switch, R, 0, 0, TIdx, 0, Node.Loc);
      pop();
      break;
    }

    case CfgNodeKind::TossBranch: {
      if (Node.TossBound < 0) {
        emitFail(RunErrorKind::BadTossBound,
                 "toss branch bound must be a nonnegative integer", Node.Loc);
        break;
      }
      JumpTable T;
      int32_t TIdx = static_cast<int32_t>(CM.Tables.size());
      for (const CfgArc &Arc : Node.Arcs) {
        TableFixups.push_back(
            {TIdx, static_cast<int32_t>(T.Cases.size()), Arc.Target});
        T.Cases.push_back({Arc.Value, -1});
      }
      CM.Tables.push_back(std::move(T));
      emit(Op::TossBr, 0, 0, 0, TIdx, Node.TossBound, Node.Loc);
      break;
    }

    case CfgNodeKind::Return:
      emit(Op::Ret);
      break;

    case CfgNodeKind::Call:
      if (Node.isVisibleOp()) {
        emit(Op::AtVisible, 0, 0, 0, static_cast<int32_t>(Id));
        compileVisibleBody(Id, Node);
      } else {
        compileCall(Id, Node);
      }
      break;
    }
    assert(Top == 0 && "register stack must drain at node end");
  }

  void patch() {
    for (const Fixup &F : Fixups) {
      int32_t Offset = Out.NodeOffset[F.Target];
      assert(Offset >= 0 && "jump to unemitted node");
      if (F.IsImm)
        CM.Code[F.InstrIdx].Imm = Offset;
      else
        CM.Code[F.InstrIdx].X = Offset;
    }
    for (const TableFixup &F : TableFixups) {
      int32_t Offset = Out.NodeOffset[F.Target];
      assert(Offset >= 0 && "jump to unemitted node");
      if (F.Case < 0)
        CM.Tables[F.Table].DefaultTarget = Offset;
      else
        CM.Tables[F.Table].Cases[F.Case].Target = Offset;
    }
  }
};

} // namespace

std::shared_ptr<const CompiledModule> vm::compileModule(const Module &Mod) {
  auto CM = std::make_shared<CompiledModule>();
  std::vector<ProcLayout> Layouts = buildProcLayouts(Mod);
  CM->Procs.resize(Mod.Procs.size());
  for (size_t P = 0, E = Mod.Procs.size(); P != E; ++P)
    ProcCompiler(Mod, Layouts, *CM, static_cast<int>(P)).compile();
  if (CM->MaxRegs == 0)
    CM->MaxRegs = 1;
  // Resolve cross-procedure call entries now that every offset is known.
  for (CallSite &CS : CM->Calls)
    CS.EntryOffset = CM->Procs[CS.CalleeIdx].NodeOffset[CS.EntryNode];
  return CM;
}

std::string vm::disassemble(const CompiledModule &CM) {
  static const char *Names[] = {
      "tick",   "at_visible", "halt",      "jmp",       "fail",
      "limm",   "lunk",       "lret",      "lloc",      "lglob",
      "sloc",   "sglob",      "aloc",      "aglob",     "aeloc",
      "aeglob", "ldat",       "stat",      "deref",     "stderef",
      "add",    "sub",        "mul",       "div",       "mod",
      "lt",     "le",         "gt",        "ge",        "and",
      "or",     "eq",         "ne",        "addi",      "subi",
      "muli",   "divi",       "modi",      "lti",       "lei",
      "gti",    "gei",        "eqi",       "nei",       "neg",
      "not",
      "br",     "switch",     "tossbr",    "tossval",   "envval",
      "callpre", "callpush",  "ret",       "send",      "recv",
      "semwait", "semsignal", "shwrite",   "shread",    "assert",
      "evpay",  "evnopay",    "endvis"};
  std::string S;
  for (size_t I = 0, E = CM.Code.size(); I != E; ++I) {
    const Instr &In = CM.Code[I];
    S += std::to_string(I) + ": " + Names[static_cast<size_t>(In.Code)] +
         " a=" + std::to_string(In.A) + " b=" + std::to_string(In.B) +
         " c=" + std::to_string(In.C) + " x=" + std::to_string(In.X) +
         " imm=" + std::to_string(In.Imm) + "\n";
  }
  return S;
}
