//===- Vm.h - Direct-threaded bytecode executor ----------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode execution engine. A Vm holds a shared immutable
/// CompiledModule plus its own scratch register file, so one compiled
/// module serves any number of explorers (one Vm per worker thread) while
/// all state lives in the System being driven — snapshots, restore, state
/// caching and fingerprints work unchanged.
///
/// Dispatch is direct-threaded (computed goto) under GNU-compatible
/// compilers, with a portable switch fallback (compile with
/// -DCLOSER_VM_NO_THREADING to force it, e.g. to compare dispatch costs).
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_VM_VM_H
#define CLOSER_VM_VM_H

#include "vm/Bytecode.h"

#include <memory>
#include <vector>

namespace closer {
namespace vm {

class Vm : public ExecEngine {
public:
  explicit Vm(std::shared_ptr<const CompiledModule> Code);

  ExecResult executeTransition(System &S, int P,
                               ChoiceProvider &Provider) override;
  ExecResult runPrefix(System &S, int P, ChoiceProvider &Provider) override;

  const CompiledModule &code() const { return *Code; }

private:
  /// The dispatch loop: executes from code offset \p Entry until the
  /// process parks at a visible operation, halts, or raises an error.
  void run(System &S, int PIdx, ChoiceProvider &Provider, ExecResult &Result,
           int32_t Entry);

  std::shared_ptr<const CompiledModule> Code;
  std::vector<Value> Regs; ///< Scratch register file (MaxRegs wide).
  Value RetVal;            ///< Return-value register (Ret -> LoadRet).
};

} // namespace vm
} // namespace closer

#endif // CLOSER_VM_VM_H
