//===- Differential.h - Interpreter-vs-VM differential oracle --*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ExecEngine that runs every transition on BOTH engines and cross-checks
/// them (--exec=both). Protocol per transition (and per reset prefix):
///
///   1. snapshot the System;
///   2. run the tree-walking interpreter, recording every choice the
///      provider hands out;
///   3. capture the observables: state fingerprint, depth, event trace,
///      enabled set, global-state classification, and the ExecResult
///      (error kind/message/location, assertion violations);
///   4. restore the snapshot and replay the recorded choice sequence into
///      the bytecode VM (the replay also verifies the VM asks for exactly
///      the same choices, in the same order, with the same bounds);
///   5. compare every observable. Any divergence is a lowering or VM bug:
///      report it on stderr and abort.
///
/// The VM leg runs second so the System is left in the VM-produced state —
/// the oracle catches any drift on the very next transition even if a
/// mismatch somehow escaped the direct comparison.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_VM_DIFFERENTIAL_H
#define CLOSER_VM_DIFFERENTIAL_H

#include "vm/Vm.h"

#include <memory>

namespace closer {
namespace vm {

class DifferentialEngine : public ExecEngine {
public:
  explicit DifferentialEngine(std::shared_ptr<const CompiledModule> Code)
      : TheVm(std::move(Code)) {}

  ExecResult executeTransition(System &S, int P,
                               ChoiceProvider &Provider) override;
  ExecResult runPrefix(System &S, int P, ChoiceProvider &Provider) override;

private:
  ExecResult runBoth(System &S, int P, ChoiceProvider &Provider,
                     bool IsPrefix);

  Vm TheVm;
};

} // namespace vm
} // namespace closer

#endif // CLOSER_VM_DIFFERENTIAL_H
