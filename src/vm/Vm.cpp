//===- Vm.cpp - Direct-threaded bytecode executor -----------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// The execution loop. Everything observable — store writes, choice-provider
// calls, trace events, NumTransitions, errors (kind, message, location) —
// must match the tree-walking interpreter exactly; the differential oracle
// (--exec=both) enforces this on every transition it runs. Keep any change
// here in lockstep with System.cpp's runInvisible/execVisible/eval.
//
// Dispatch is direct-threaded via computed goto (GNU C extension): every
// handler ends by jumping straight to the next handler through a label
// table indexed by opcode, which lets the branch predictor key on the
// current opcode instead of a single shared dispatch branch. A portable
// switch-in-loop fallback covers other compilers (and can be forced with
// -DCLOSER_VM_NO_THREADING to measure the dispatch difference).
//
//===----------------------------------------------------------------------===//

#include "vm/Vm.h"

#include "runtime/Arith.h"

#include <cassert>

using namespace closer;
using namespace closer::vm;

Vm::Vm(std::shared_ptr<const CompiledModule> C) : Code(std::move(C)) {
  assert(Code && "Vm requires a compiled module");
  Regs.assign(Code->MaxRegs, Value());
}

ExecResult Vm::executeTransition(System &S, int PIdx,
                                 ChoiceProvider &Provider) {
  assert(S.processEnabled(PIdx) && "executing a disabled transition");
  ExecResult Result;
  S.CurrentProcess = PIdx;
  System::ProcessRT &P = S.Processes[PIdx];
  const System::Frame &F = P.Frames.back();
  int32_t Entry = Code->Procs[F.ProcIdx].BodyOffset[F.PC];
  assert(Entry >= 0 && "enabled process not parked at a visible operation");
  run(S, PIdx, Provider, Result, Entry);
  return Result;
}

ExecResult Vm::runPrefix(System &S, int PIdx, ChoiceProvider &Provider) {
  ExecResult Result;
  S.CurrentProcess = PIdx;
  System::ProcessRT &P = S.Processes[PIdx];
  // reset() can diagnose a bad argument binding before the prefix runs;
  // the interpreter's runInvisible consumes that pending error first.
  if (S.PendingError) {
    Result.Error = S.PendingError;
    S.PendingError = RunError();
    S.haltProcess(P);
    return Result;
  }
  if (P.Status == System::ProcStatus::Halted)
    return Result;
  const System::Frame &F = P.Frames.back();
  int32_t Entry = Code->Procs[F.ProcIdx].NodeOffset[F.PC];
  assert(Entry >= 0 && "frame parked at an uncompiled node");
  run(S, PIdx, Provider, Result, Entry);
  return Result;
}

#if defined(__GNUC__) && !defined(CLOSER_VM_NO_THREADING)
#define CLOSER_VM_CGOTO 1
#else
#define CLOSER_VM_CGOTO 0
#endif

// Source location of the instruction in flight (parallel Locs array).
#define VM_LOC() (CM.Locs[static_cast<size_t>(I - CodeArr)])

#if CLOSER_VM_CGOTO
#define VM_CASE(op) L_##op
#define VM_DISPATCH()                                                          \
  do {                                                                         \
    I = &CodeArr[pc++];                                                        \
    goto *Labels[static_cast<size_t>(I->Code)];                                \
  } while (0)
#else
#define VM_CASE(op) case Op::op
#define VM_DISPATCH() goto vm_dispatch
#endif

// Shared prologue of the arithmetic/comparison binaries (everything except
// Eq/Ne): pointer operands are an error, unknown taints the result. The
// interpreter checks pointers before unknowns; keep that order.
#define VM_ARITH_BEGIN()                                                       \
  const Value &VL = Rg[I->B];                                                  \
  const Value &VR = Rg[I->C];                                                  \
  if (VL.isPointer() || VR.isPointer()) {                                      \
    S.fail(RunErrorKind::BadPointer, VM_LOC(), "arithmetic on a pointer");     \
    goto done;                                                                 \
  }                                                                            \
  if (VL.isUnknown() || VR.isUnknown()) {                                      \
    Rg[I->A] = Value::makeUnknown();                                           \
    VM_DISPATCH();                                                             \
  }

#define VM_CHECKED_BIN(CHECKED, OPNAME)                                        \
  do {                                                                         \
    VM_ARITH_BEGIN();                                                          \
    int64_t Out;                                                               \
    if (!CHECKED(VL.asInt(), VR.asInt(), Out)) {                               \
      S.fail(RunErrorKind::IntegerOverflow, VM_LOC(),                          \
             "signed integer overflow in '" OPNAME "'");                       \
      goto done;                                                               \
    }                                                                          \
    Rg[I->A] = Value::makeInt(Out);                                            \
    VM_DISPATCH();                                                             \
  } while (0)

#define VM_COMPARE_BIN(CMPOP)                                                  \
  do {                                                                         \
    VM_ARITH_BEGIN();                                                          \
    Rg[I->A] = Value::makeInt(VL.asInt() CMPOP VR.asInt());                    \
    VM_DISPATCH();                                                             \
  } while (0)

// Immediate-form prologue: one register operand, the literal side can be
// neither a pointer nor unknown, so the checks collapse to the register.
// Check order (pointer, then unknown) matches the two-register forms.
#define VM_ARITH_IMM_BEGIN()                                                   \
  const Value &V = Rg[I->B];                                                   \
  if (V.isPointer()) {                                                         \
    S.fail(RunErrorKind::BadPointer, VM_LOC(), "arithmetic on a pointer");     \
    goto done;                                                                 \
  }                                                                            \
  if (V.isUnknown()) {                                                         \
    Rg[I->A] = Value::makeUnknown();                                           \
    VM_DISPATCH();                                                             \
  }

#define VM_CHECKED_IMM(CHECKED, OPNAME)                                        \
  do {                                                                         \
    VM_ARITH_IMM_BEGIN();                                                      \
    int64_t Out;                                                               \
    if (!CHECKED(V.asInt(), I->Imm, Out)) {                                    \
      S.fail(RunErrorKind::IntegerOverflow, VM_LOC(),                          \
             "signed integer overflow in '" OPNAME "'");                       \
      goto done;                                                               \
    }                                                                          \
    Rg[I->A] = Value::makeInt(Out);                                            \
    VM_DISPATCH();                                                             \
  } while (0)

#define VM_COMPARE_IMM(CMPOP)                                                  \
  do {                                                                         \
    VM_ARITH_IMM_BEGIN();                                                      \
    Rg[I->A] = Value::makeInt(V.asInt() CMPOP I->Imm);                         \
    VM_DISPATCH();                                                             \
  } while (0)

void Vm::run(System &S, int PIdx, ChoiceProvider &Provider, ExecResult &Result,
             int32_t Entry) {
  const CompiledModule &CM = *Code;
  const Instr *CodeArr = CM.Code.data();
  Value *Rg = Regs.data();
  System::ProcessRT &P = S.Processes[PIdx];
  // Refetched after CallPush/Ret; vectors holding frames are not resized
  // between those points (only push_back/pop_back on P.Frames).
  System::Frame *F = &P.Frames.back();
  const CompiledProc *CP = &CM.Procs[F->ProcIdx];
  size_t Steps = 0;
  int32_t pc = Entry;
  const Instr *I = nullptr;

#if CLOSER_VM_CGOTO
  // Must list every label in exact Op declaration order.
  static const void *const Labels[] = {
      &&L_Tick, &&L_AtVisible, &&L_Halt, &&L_Jmp, &&L_Fail,
      &&L_LoadImm, &&L_LoadUnknown, &&L_LoadRet, &&L_LoadLocal,
      &&L_LoadGlobal, &&L_StoreLocal, &&L_StoreGlobal,
      &&L_AddrLocal, &&L_AddrGlobal, &&L_AddrElemLocal, &&L_AddrElemGlobal,
      &&L_LoadAt, &&L_StoreAt, &&L_Deref, &&L_StoreDeref,
      &&L_Add, &&L_Sub, &&L_Mul, &&L_Div, &&L_Mod,
      &&L_Lt, &&L_Le, &&L_Gt, &&L_Ge, &&L_And, &&L_Or, &&L_Eq, &&L_Ne,
      &&L_AddImm, &&L_SubImm, &&L_MulImm, &&L_DivImm, &&L_ModImm,
      &&L_LtImm, &&L_LeImm, &&L_GtImm, &&L_GeImm, &&L_EqImm, &&L_NeImm,
      &&L_Neg, &&L_Not,
      &&L_BrTruthy, &&L_Switch, &&L_TossBr, &&L_TossVal, &&L_EnvVal,
      &&L_CallPre, &&L_CallPush, &&L_Ret,
      &&L_SendV, &&L_RecvV, &&L_SemWaitV, &&L_SemSignalV,
      &&L_SharedWriteV, &&L_SharedReadV, &&L_AssertV,
      &&L_EventPay, &&L_EventNoPay, &&L_EndVis,
  };
  static_assert(sizeof(Labels) / sizeof(Labels[0]) ==
                    static_cast<size_t>(Op::EndVis) + 1,
                "label table must cover every opcode");
  VM_DISPATCH();
#else
vm_dispatch:
  I = &CodeArr[pc++];
  switch (I->Code) {
#endif

  VM_CASE(Tick): {
    if (++Steps > S.Options.InvisibleStepLimit) {
      S.fail(RunErrorKind::Divergence, SourceLoc(),
             "invisible step limit exceeded (divergence)");
      goto done;
    }
    VM_DISPATCH();
  }

  VM_CASE(AtVisible): {
    // Transition boundary: park just before the visible operation. The
    // frame PC is only materialized here (and at CallPush) — straight-line
    // compiled code never maintains it.
    F->PC = static_cast<NodeId>(I->X);
    P.Status = System::ProcStatus::AtVisible;
    goto done;
  }

  VM_CASE(Halt): {
    S.haltProcess(P);
    goto done;
  }

  VM_CASE(Jmp): {
    pc = I->X;
    VM_DISPATCH();
  }

  VM_CASE(Fail): {
    const FailInfo &FI = CM.Fails[static_cast<size_t>(I->X)];
    S.fail(FI.Kind, FI.Loc, FI.Message);
    goto done;
  }

  VM_CASE(LoadImm): {
    Rg[I->A] = Value::makeInt(I->Imm);
    VM_DISPATCH();
  }

  VM_CASE(LoadUnknown): {
    Rg[I->A] = Value::makeUnknown();
    VM_DISPATCH();
  }

  VM_CASE(LoadRet): {
    Rg[I->A] = RetVal;
    VM_DISPATCH();
  }

  VM_CASE(LoadLocal): {
    Rg[I->A] = F->Slots[static_cast<size_t>(I->X)].Scalar;
    VM_DISPATCH();
  }

  VM_CASE(LoadGlobal): {
    Rg[I->A] = P.Globals[static_cast<size_t>(I->X)].Scalar;
    VM_DISPATCH();
  }

  VM_CASE(StoreLocal): {
    F->Slots[static_cast<size_t>(I->X)].Scalar = Rg[I->A];
    VM_DISPATCH();
  }

  VM_CASE(StoreGlobal): {
    P.Globals[static_cast<size_t>(I->X)].Scalar = Rg[I->A];
    VM_DISPATCH();
  }

  VM_CASE(AddrLocal): {
    Address Ad;
    Ad.Sp = Address::Space::Frame;
    Ad.FrameIndex = static_cast<uint32_t>(P.Frames.size() - 1);
    Ad.SlotIndex = static_cast<uint32_t>(I->X);
    Rg[I->A] = Value::makePointer(Ad);
    VM_DISPATCH();
  }

  VM_CASE(AddrGlobal): {
    Address Ad;
    Ad.Sp = Address::Space::Global;
    Ad.SlotIndex = static_cast<uint32_t>(I->X);
    Rg[I->A] = Value::makePointer(Ad);
    VM_DISPATCH();
  }

  VM_CASE(AddrElemLocal): {
    const Value &Idx = Rg[I->B];
    if (!Idx.isInt()) {
      S.fail(RunErrorKind::UnknownInControl, VM_LOC(),
             "array index is not an integer");
      goto done;
    }
    Address Ad;
    Ad.Sp = Address::Space::Frame;
    Ad.FrameIndex = static_cast<uint32_t>(P.Frames.size() - 1);
    Ad.SlotIndex = static_cast<uint32_t>(I->X);
    // The interpreter truncates the index to 32 bits when forming the
    // address; bounds checking happens at the access.
    Ad.ElemIndex = static_cast<int32_t>(Idx.asInt());
    Rg[I->A] = Value::makePointer(Ad);
    VM_DISPATCH();
  }

  VM_CASE(AddrElemGlobal): {
    const Value &Idx = Rg[I->B];
    if (!Idx.isInt()) {
      S.fail(RunErrorKind::UnknownInControl, VM_LOC(),
             "array index is not an integer");
      goto done;
    }
    Address Ad;
    Ad.Sp = Address::Space::Global;
    Ad.SlotIndex = static_cast<uint32_t>(I->X);
    Ad.ElemIndex = static_cast<int32_t>(Idx.asInt());
    Rg[I->A] = Value::makePointer(Ad);
    VM_DISPATCH();
  }

  VM_CASE(LoadAt): {
    Value V = S.loadAddress(P, Rg[I->B].asPointer());
    if (S.PendingError)
      goto done;
    Rg[I->A] = V;
    VM_DISPATCH();
  }

  VM_CASE(StoreAt): {
    S.storeAddress(P, Rg[I->A].asPointer(), Rg[I->B]);
    if (S.PendingError)
      goto done;
    VM_DISPATCH();
  }

  VM_CASE(Deref): {
    const Value &Ptr = Rg[I->B];
    if (Ptr.isUnknown()) {
      Rg[I->A] = Value::makeUnknown();
      VM_DISPATCH();
    }
    if (!Ptr.isPointer()) {
      S.fail(RunErrorKind::BadPointer, VM_LOC(),
             "dereference of a non-pointer value");
      goto done;
    }
    Value V = S.loadAddress(P, Ptr.asPointer());
    if (S.PendingError)
      goto done;
    Rg[I->A] = V;
    VM_DISPATCH();
  }

  VM_CASE(StoreDeref): {
    const Value &Ptr = Rg[I->A];
    if (!Ptr.isPointer()) {
      S.fail(RunErrorKind::BadPointer, VM_LOC(),
             "store through a non-pointer value");
      goto done;
    }
    S.storeAddress(P, Ptr.asPointer(), Rg[I->B]);
    if (S.PendingError)
      goto done;
    VM_DISPATCH();
  }

  VM_CASE(Add): { VM_CHECKED_BIN(checkedAdd, "+"); }
  VM_CASE(Sub): { VM_CHECKED_BIN(checkedSub, "-"); }
  VM_CASE(Mul): { VM_CHECKED_BIN(checkedMul, "*"); }

  VM_CASE(Div): {
    VM_ARITH_BEGIN();
    if (VR.asInt() == 0) {
      S.fail(RunErrorKind::DivisionByZero, VM_LOC(), "division by zero");
      goto done;
    }
    int64_t Out;
    if (!checkedDiv(VL.asInt(), VR.asInt(), Out)) {
      S.fail(RunErrorKind::IntegerOverflow, VM_LOC(),
             "signed integer overflow in '/'");
      goto done;
    }
    Rg[I->A] = Value::makeInt(Out);
    VM_DISPATCH();
  }

  VM_CASE(Mod): {
    VM_ARITH_BEGIN();
    if (VR.asInt() == 0) {
      S.fail(RunErrorKind::DivisionByZero, VM_LOC(), "modulo by zero");
      goto done;
    }
    int64_t Out;
    if (!checkedMod(VL.asInt(), VR.asInt(), Out)) {
      S.fail(RunErrorKind::IntegerOverflow, VM_LOC(),
             "signed integer overflow in '%'");
      goto done;
    }
    Rg[I->A] = Value::makeInt(Out);
    VM_DISPATCH();
  }

  VM_CASE(Lt): { VM_COMPARE_BIN(<); }
  VM_CASE(Le): { VM_COMPARE_BIN(<=); }
  VM_CASE(Gt): { VM_COMPARE_BIN(>); }
  VM_CASE(Ge): { VM_COMPARE_BIN(>=); }

  VM_CASE(And): {
    VM_ARITH_BEGIN();
    Rg[I->A] = Value::makeInt((VL.asInt() != 0 && VR.asInt() != 0) ? 1 : 0);
    VM_DISPATCH();
  }

  VM_CASE(Or): {
    VM_ARITH_BEGIN();
    Rg[I->A] = Value::makeInt((VL.asInt() != 0 || VR.asInt() != 0) ? 1 : 0);
    VM_DISPATCH();
  }

  VM_CASE(Eq): {
    // Structural equality is the only legal pointer binary; unknown taints.
    const Value &VL = Rg[I->B];
    const Value &VR = Rg[I->C];
    if (VL.isUnknown() || VR.isUnknown()) {
      Rg[I->A] = Value::makeUnknown();
      VM_DISPATCH();
    }
    Rg[I->A] = Value::makeInt(VL == VR ? 1 : 0);
    VM_DISPATCH();
  }

  VM_CASE(Ne): {
    const Value &VL = Rg[I->B];
    const Value &VR = Rg[I->C];
    if (VL.isUnknown() || VR.isUnknown()) {
      Rg[I->A] = Value::makeUnknown();
      VM_DISPATCH();
    }
    Rg[I->A] = Value::makeInt(VL == VR ? 0 : 1);
    VM_DISPATCH();
  }

  VM_CASE(AddImm): { VM_CHECKED_IMM(checkedAdd, "+"); }
  VM_CASE(SubImm): { VM_CHECKED_IMM(checkedSub, "-"); }
  VM_CASE(MulImm): { VM_CHECKED_IMM(checkedMul, "*"); }

  VM_CASE(DivImm): {
    VM_ARITH_IMM_BEGIN();
    if (I->Imm == 0) {
      S.fail(RunErrorKind::DivisionByZero, VM_LOC(), "division by zero");
      goto done;
    }
    int64_t Out;
    if (!checkedDiv(V.asInt(), I->Imm, Out)) {
      S.fail(RunErrorKind::IntegerOverflow, VM_LOC(),
             "signed integer overflow in '/'");
      goto done;
    }
    Rg[I->A] = Value::makeInt(Out);
    VM_DISPATCH();
  }

  VM_CASE(ModImm): {
    VM_ARITH_IMM_BEGIN();
    if (I->Imm == 0) {
      S.fail(RunErrorKind::DivisionByZero, VM_LOC(), "modulo by zero");
      goto done;
    }
    int64_t Out;
    if (!checkedMod(V.asInt(), I->Imm, Out)) {
      S.fail(RunErrorKind::IntegerOverflow, VM_LOC(),
             "signed integer overflow in '%'");
      goto done;
    }
    Rg[I->A] = Value::makeInt(Out);
    VM_DISPATCH();
  }

  VM_CASE(LtImm): { VM_COMPARE_IMM(<); }
  VM_CASE(LeImm): { VM_COMPARE_IMM(<=); }
  VM_CASE(GtImm): { VM_COMPARE_IMM(>); }
  VM_CASE(GeImm): { VM_COMPARE_IMM(>=); }

  VM_CASE(EqImm): {
    // Structural equality against Int(Imm): unknown taints, a pointer
    // compares unequal (kind mismatch), exactly like the Eq opcode.
    const Value &V = Rg[I->B];
    if (V.isUnknown()) {
      Rg[I->A] = Value::makeUnknown();
      VM_DISPATCH();
    }
    Rg[I->A] = Value::makeInt(V.isInt() && V.asInt() == I->Imm ? 1 : 0);
    VM_DISPATCH();
  }

  VM_CASE(NeImm): {
    const Value &V = Rg[I->B];
    if (V.isUnknown()) {
      Rg[I->A] = Value::makeUnknown();
      VM_DISPATCH();
    }
    Rg[I->A] = Value::makeInt(V.isInt() && V.asInt() == I->Imm ? 0 : 1);
    VM_DISPATCH();
  }

  VM_CASE(Neg): {
    // Unary checks unknown before pointer (the interpreter's order).
    const Value &V = Rg[I->B];
    if (V.isUnknown()) {
      Rg[I->A] = Value::makeUnknown();
      VM_DISPATCH();
    }
    if (V.isPointer()) {
      S.fail(RunErrorKind::BadPointer, VM_LOC(), "arithmetic on a pointer");
      goto done;
    }
    int64_t Out;
    if (!checkedNeg(V.asInt(), Out)) {
      S.fail(RunErrorKind::IntegerOverflow, VM_LOC(),
             "signed integer overflow in unary '-'");
      goto done;
    }
    Rg[I->A] = Value::makeInt(Out);
    VM_DISPATCH();
  }

  VM_CASE(Not): {
    const Value &V = Rg[I->B];
    if (V.isUnknown()) {
      Rg[I->A] = Value::makeUnknown();
      VM_DISPATCH();
    }
    if (V.isPointer()) {
      S.fail(RunErrorKind::BadPointer, VM_LOC(), "arithmetic on a pointer");
      goto done;
    }
    Rg[I->A] = Value::makeInt(V.asInt() == 0 ? 1 : 0);
    VM_DISPATCH();
  }

  VM_CASE(BrTruthy): {
    const Value &C = Rg[I->A];
    if (C.isUnknown()) {
      S.fail(RunErrorKind::UnknownInControl, VM_LOC(),
             "control flow depends on an unknown value (module not closed?)");
      goto done;
    }
    bool Taken = C.isPointer() || C.asInt() != 0;
    pc = Taken ? I->X : static_cast<int32_t>(I->Imm);
    VM_DISPATCH();
  }

  VM_CASE(Switch): {
    const Value &V = Rg[I->A];
    if (!V.isInt()) {
      S.fail(RunErrorKind::UnknownInControl, VM_LOC(),
             "switch on a non-integer value");
      goto done;
    }
    const JumpTable &T = CM.Tables[static_cast<size_t>(I->X)];
    int32_t Target = T.DefaultTarget;
    for (const JumpCase &JC : T.Cases)
      if (JC.Value == V.asInt()) {
        Target = JC.Target;
        break;
      }
    assert(Target >= 0 && "switch must have a default arc");
    pc = Target;
    VM_DISPATCH();
  }

  VM_CASE(TossBr): {
    int64_t Choice =
        Provider.choose(ChoiceProvider::ChoiceKind::Toss, I->Imm);
    assert(Choice >= 0 && Choice <= I->Imm && "bad toss choice");
    const JumpTable &T = CM.Tables[static_cast<size_t>(I->X)];
    int32_t Target = -1;
    for (const JumpCase &JC : T.Cases)
      if (JC.Value == Choice) {
        Target = JC.Target;
        break;
      }
    assert(Target >= 0 && "toss arcs cover all outcomes");
    pc = Target;
    VM_DISPATCH();
  }

  VM_CASE(TossVal): {
    const Value &Bound = Rg[I->B];
    if (!Bound.isInt() || Bound.asInt() < 0) {
      S.fail(RunErrorKind::BadTossBound, VM_LOC(),
             "VS_toss bound must be a nonnegative integer");
      goto done;
    }
    Rg[I->A] = Value::makeInt(
        Provider.choose(ChoiceProvider::ChoiceKind::Toss, Bound.asInt()));
    VM_DISPATCH();
  }

  VM_CASE(EnvVal): {
    if (S.Options.EnvDomainBound < 0) {
      S.fail(RunErrorKind::BadTossBound, VM_LOC(),
             "environment domain bound must be a nonnegative integer");
      goto done;
    }
    Rg[I->A] = Value::makeInt(Provider.choose(ChoiceProvider::ChoiceKind::Env,
                                              S.Options.EnvDomainBound));
    VM_DISPATCH();
  }

  VM_CASE(CallPre): {
    // The stack limit fires before argument evaluation, like the
    // interpreter's Call handler.
    if (P.Frames.size() >= S.Options.StackLimit) {
      S.fail(RunErrorKind::StackOverflow, VM_LOC(),
             "frame stack limit exceeded");
      goto done;
    }
    VM_DISPATCH();
  }

  VM_CASE(CallPush): {
    const CallSite &CS = CM.Calls[static_cast<size_t>(I->X)];
    const CompiledProc &Callee = CM.Procs[static_cast<size_t>(CS.CalleeIdx)];
    System::Frame NF;
    NF.ProcIdx = CS.CalleeIdx;
    NF.PC = CS.EntryNode;
    NF.Slots.resize(Callee.ArraySizes.size());
    for (size_t SlotIdx = 0, SE = Callee.ArraySizes.size(); SlotIdx != SE;
         ++SlotIdx) {
      System::Slot &Sl = NF.Slots[SlotIdx];
      if (Callee.ArraySizes[SlotIdx] >= 0) {
        Sl.IsArray = true;
        Sl.Elems.assign(static_cast<size_t>(Callee.ArraySizes[SlotIdx]),
                        Value::makeInt(0));
      } else {
        Sl.Scalar = Value::makeInt(0);
      }
    }
    for (int32_t A = 0; A != CS.NArgs; ++A)
      NF.Slots[static_cast<size_t>(A)].Scalar =
          Rg[static_cast<size_t>(CS.ArgBase + A)];
    F->PC = CS.CallNode; // Park the caller; Ret resumes through RetCont.
    P.Frames.push_back(std::move(NF));
    F = &P.Frames.back();
    CP = &CM.Procs[F->ProcIdx];
    pc = CS.EntryOffset;
    VM_DISPATCH();
  }

  VM_CASE(Ret): {
    Value RV = Value::makeInt(0);
    if (CP->RetValSlot >= 0)
      RV = F->Slots[static_cast<size_t>(CP->RetValSlot)].Scalar;
    P.Frames.pop_back();
    if (P.Frames.empty()) {
      // Top-level termination: blocking forever (paper §4 assumption).
      S.haltProcess(P);
      goto done;
    }
    F = &P.Frames.back();
    CP = &CM.Procs[F->ProcIdx];
    RetVal = RV;
    pc = CP->RetCont[F->PC];
    assert(pc >= 0 && "caller not parked at a call node");
    VM_DISPATCH();
  }

  VM_CASE(SendV): {
    S.Comms[static_cast<size_t>(CM.Vis[static_cast<size_t>(I->X)].CommIdx)]
        .Items.push_back(Rg[I->A]);
    VM_DISPATCH();
  }

  VM_CASE(RecvV): {
    auto &Items =
        S.Comms[static_cast<size_t>(CM.Vis[static_cast<size_t>(I->X)].CommIdx)]
            .Items;
    assert(!Items.empty() && "recv on empty channel");
    Rg[I->A] = Items.front();
    Items.pop_front();
    VM_DISPATCH();
  }

  VM_CASE(SemWaitV): {
    auto &Comm =
        S.Comms[static_cast<size_t>(CM.Vis[static_cast<size_t>(I->X)].CommIdx)];
    assert(Comm.Count > 0 && "wait on zero semaphore");
    --Comm.Count;
    VM_DISPATCH();
  }

  VM_CASE(SemSignalV): {
    ++S.Comms[static_cast<size_t>(CM.Vis[static_cast<size_t>(I->X)].CommIdx)]
          .Count;
    VM_DISPATCH();
  }

  VM_CASE(SharedWriteV): {
    S.Comms[static_cast<size_t>(CM.Vis[static_cast<size_t>(I->X)].CommIdx)]
        .Shared = Rg[I->A];
    VM_DISPATCH();
  }

  VM_CASE(SharedReadV): {
    Rg[I->A] =
        S.Comms[static_cast<size_t>(CM.Vis[static_cast<size_t>(I->X)].CommIdx)]
            .Shared;
    VM_DISPATCH();
  }

  VM_CASE(AssertV): {
    // An unknown assertion argument means the assertion was not preserved
    // by the transformation (Theorem 7); it never fires.
    const Value &V = Rg[I->A];
    if (V.isInt() && V.asInt() == 0)
      Result.Violations.push_back({PIdx, VM_LOC()});
    VM_DISPATCH();
  }

  VM_CASE(EventPay): {
    const VisInfo &VI = CM.Vis[static_cast<size_t>(I->X)];
    VisibleEvent E;
    E.ProcessIndex = PIdx;
    E.Op = VI.Kind;
    E.Object = VI.Object;
    E.Payload = Rg[I->A];
    E.HasPayload = true;
    S.EventTrace.push_back(std::move(E));
    VM_DISPATCH();
  }

  VM_CASE(EventNoPay): {
    const VisInfo &VI = CM.Vis[static_cast<size_t>(I->X)];
    VisibleEvent E;
    E.ProcessIndex = PIdx;
    E.Op = VI.Kind;
    E.Object = VI.Object;
    S.EventTrace.push_back(std::move(E));
    VM_DISPATCH();
  }

  VM_CASE(EndVis): {
    ++S.NumTransitions;
    VM_DISPATCH();
  }

#if !CLOSER_VM_CGOTO
  }
  assert(false && "unhandled opcode");
#endif

done:
  // The interpreter's error epilogue: first error wins, the process halts.
  if (S.PendingError) {
    Result.Error = S.PendingError;
    S.PendingError = RunError();
    S.haltProcess(P);
  }
}
