//===- CorpusGen.cpp - Synthetic multi-procedure corpus generator -----------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "support/CorpusGen.h"

#include "support/Random.h"

using namespace closer;

std::string closer::generateCorpusSource(const CorpusConfig &Config) {
  Rng R(Config.Seed);
  size_t Procs = Config.Procs > 0 ? static_cast<size_t>(Config.Procs) : 1;
  size_t Stmts =
      Config.StmtsPerProc > 0 ? static_cast<size_t>(Config.StmtsPerProc) : 1;

  std::string S;
  S += "chan bus[8];\n";
  for (size_t G = 0; G != 8; ++G)
    S += "var g" + std::to_string(G) + " = 0;\n";
  for (size_t P = 0; P != Procs; ++P) {
    S += "proc p" + std::to_string(P) + "(x) {\n";
    for (int V = 0; V != 6; ++V)
      S += "  var v" + std::to_string(V) + " = " + std::to_string(V) + ";\n";
    auto Var = [&] { return "v" + std::to_string(R.below(6)); };
    for (size_t I = 0; I != Stmts; ++I) {
      switch (R.below(10)) {
      case 0:
        S += "  " + Var() + " = env_input();\n";
        break;
      case 1: {
        std::string A = Var();
        S += "  if (" + A + " < " + Var() + ")\n    " + A + " = " + A +
             " + 1;\n";
        break;
      }
      case 2:
        S += "  send(bus, " + Var() + ");\n";
        break;
      case 3:
        // Cross-procedure call (only backward, so the call graph is
        // acyclic and every callee exists by the time it parses).
        if (P > 0) {
          S += "  p" + std::to_string(R.below(P)) + "(" + Var() + ");\n";
          break;
        }
        [[fallthrough]];
      case 4:
        S += "  g" + std::to_string(R.below(8)) + " = " + Var() + ";\n";
        break;
      default:
        S += "  " + Var() + " = " + Var() + " * 3 + " +
             std::to_string(R.below(100)) + ";\n";
        break;
      }
    }
    // The "edit": pure local arithmetic, so the tweaked corpus has the
    // same variables and points-to facts (none) — only this procedure's
    // fingerprint changes.
    if (static_cast<int>(P) == Config.TweakProc)
      S += "  v0 = v0 * 3 + 1;\n";
    S += "}\n";
  }
  // Environment-instantiated processes keep the corpus open (env-bound
  // parameters are taint sources).
  for (size_t P = 0; P < Procs; P += 4)
    S += "process m" + std::to_string(P) + " = p" + std::to_string(P) +
         "(env);\n";
  return S;
}
