//===- CommandLine.cpp - Flag-spec-aware argument parsing -------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

using namespace closer;

void Args::fail(const std::string &Message) const {
  if (Error.empty())
    Error = Message;
}

bool Args::has(const std::string &Flag) const {
  for (const auto &[Name, _] : Flags)
    if (Name == Flag)
      return true;
  return false;
}

const std::string *Args::value(const std::string &Flag) const {
  for (const auto &[Name, Val] : Flags)
    if (Name == Flag)
      return &Val;
  return nullptr;
}

bool closer::parseLong(const std::string &Text, long &Out) {
  if (Text.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long V = std::strtol(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0' || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

bool closer::parseDouble(const std::string &Text, double &Out) {
  if (Text.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Text.c_str(), &End);
  if (End == Text.c_str() || *End != '\0' || errno == ERANGE ||
      !std::isfinite(V))
    return false;
  Out = V;
  return true;
}

long Args::intOf(const std::string &Flag, long Default) const {
  const std::string *V = value(Flag);
  if (!V)
    return Default;
  long Out;
  if (!parseLong(*V, Out)) {
    fail("invalid value '" + *V + "' for " + Flag +
         " (expected an integer)");
    return Default;
  }
  return Out;
}

double Args::secondsOf(const std::string &Flag, double Default) const {
  const std::string *V = value(Flag);
  if (!V)
    return Default;
  double Out;
  if (!parseDouble(*V, Out) || Out < 0) {
    fail("invalid value '" + *V + "' for " + Flag +
         " (expected a non-negative number)");
    return Default;
  }
  return Out;
}

std::string Args::strOf(const std::string &Flag,
                        const std::string &Default) const {
  const std::string *V = value(Flag);
  return V ? *V : Default;
}

Args closer::parseArgs(int Argc, const char *const *Argv, int From,
                       const FlagSpec &Spec) {
  Args A;
  for (int I = From; I < Argc; ++I) {
    std::string S = Argv[I];
    if (S.size() < 2 || S[0] != '-') {
      A.Positional.push_back(std::move(S));
      continue;
    }
    std::string Name = S;
    std::string Inline;
    bool HasInline = false;
    if (size_t Eq = S.find('='); Eq != std::string::npos) {
      Name = S.substr(0, Eq);
      Inline = S.substr(Eq + 1);
      HasInline = true;
    }
    auto It = Spec.find(Name);
    if (It == Spec.end()) {
      A.fail("unknown option '" + Name + "'");
      return A;
    }
    switch (It->second) {
    case FlagArity::Bool:
      if (HasInline) {
        A.fail("option '" + Name + "' takes no value");
        return A;
      }
      A.Flags.emplace_back(std::move(Name), "");
      break;
    case FlagArity::Value:
      if (HasInline) {
        A.Flags.emplace_back(std::move(Name), std::move(Inline));
      } else if (I + 1 < Argc) {
        A.Flags.emplace_back(std::move(Name), Argv[++I]);
      } else {
        A.fail("option '" + Name + "' requires a value");
        return A;
      }
      break;
    case FlagArity::OptionalValue:
      A.Flags.emplace_back(std::move(Name),
                           HasInline ? std::move(Inline) : std::string());
      break;
    }
  }
  return A;
}
