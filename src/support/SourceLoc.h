//===- SourceLoc.h - Source locations for diagnostics ---------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight 1-based line/column source positions attached to tokens, AST
/// nodes and CFG nodes so that analyses and the closing transformation can
/// report where things came from.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_SUPPORT_SOURCELOC_H
#define CLOSER_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace closer {

/// A position in a MiniC source buffer. Line and column are 1-based; the
/// default-constructed location is "unknown" (line 0).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  constexpr SourceLoc() = default;
  constexpr SourceLoc(uint32_t Line, uint32_t Column)
      : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.Line == B.Line && A.Column == B.Column;
  }

  /// Renders "line:col", or "<unknown>" for an invalid location.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

} // namespace closer

#endif // CLOSER_SUPPORT_SOURCELOC_H
