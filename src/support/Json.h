//===- Json.h - Minimal ordered JSON document writer -----------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON *writer* shared by the run-artifact emitter
/// (`closer explore --stats-json`) and the benchmark outputs
/// (`bench/BenchUtil.h`). Build a tree of `json::Value`s and serialize it
/// compactly or pretty-printed; object members keep insertion order so the
/// emitted artifacts are deterministic and diffable across runs.
///
/// Deliberately write-only: the repo emits machine-readable artifacts for
/// *other* tools (scripts/check.sh, perf tracking) to consume; nothing in
/// the pipeline needs to parse JSON back.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_SUPPORT_JSON_H
#define CLOSER_SUPPORT_JSON_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace closer {
namespace json {

class Value {
public:
  enum class Kind { Null, Bool, Int, Uint, Double, String, Array, Object };

  Value() = default;
  Value(bool B) : K(Kind::Bool), BoolV(B) {}
  Value(int V) : K(Kind::Int), IntV(V) {}
  Value(int64_t V) : K(Kind::Int), IntV(V) {}
  Value(uint64_t V) : K(Kind::Uint), UintV(V) {}
  Value(double V) : K(Kind::Double), DoubleV(V) {}
  Value(const char *S) : K(Kind::String), StringV(S) {}
  Value(std::string S) : K(Kind::String), StringV(std::move(S)) {}

  static Value object() {
    Value V;
    V.K = Kind::Object;
    return V;
  }
  static Value array() {
    Value V;
    V.K = Kind::Array;
    return V;
  }

  Kind kind() const { return K; }

  /// Appends an object member (insertion order is serialization order).
  Value &add(std::string Key, Value V) {
    Members.emplace_back(std::move(Key), std::move(V));
    return *this;
  }

  /// Appends an array element.
  Value &push(Value V) {
    Elems.push_back(std::move(V));
    return *this;
  }

  size_t size() const {
    return K == Kind::Object ? Members.size() : Elems.size();
  }

  /// JSON string-escapes \p S (quotes, backslashes, control characters).
  static std::string escape(const std::string &S) {
    std::string Out;
    Out.reserve(S.size());
    for (unsigned char C : S) {
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\b':
        Out += "\\b";
        break;
      case '\f':
        Out += "\\f";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\r':
        Out += "\\r";
        break;
      case '\t':
        Out += "\\t";
        break;
      default:
        if (C < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Out += Buf;
        } else {
          Out += static_cast<char>(C);
        }
      }
    }
    return Out;
  }

  /// Serializes the value. \p Pretty uses two-space indentation; compact
  /// mode matches the historical bench format (`"key": value` pairs
  /// separated by `, ` on one line).
  std::string str(bool Pretty = false) const {
    std::string Out;
    write(Out, Pretty, 0);
    if (Pretty)
      Out += '\n';
    return Out;
  }

private:
  void indent(std::string &Out, int Depth) const {
    Out.append(static_cast<size_t>(Depth) * 2, ' ');
  }

  void write(std::string &Out, bool Pretty, int Depth) const {
    switch (K) {
    case Kind::Null:
      Out += "null";
      break;
    case Kind::Bool:
      Out += BoolV ? "true" : "false";
      break;
    case Kind::Int:
      Out += std::to_string(IntV);
      break;
    case Kind::Uint:
      Out += std::to_string(UintV);
      break;
    case Kind::Double:
      if (!std::isfinite(DoubleV)) {
        Out += "null"; // JSON has no inf/nan.
      } else {
        char Buf[64];
        std::snprintf(Buf, sizeof(Buf), "%.9g", DoubleV);
        Out += Buf;
      }
      break;
    case Kind::String:
      Out += '"';
      Out += escape(StringV);
      Out += '"';
      break;
    case Kind::Array:
      if (Elems.empty()) {
        Out += "[]";
        break;
      }
      Out += '[';
      for (size_t I = 0; I != Elems.size(); ++I) {
        if (I)
          Out += Pretty ? "," : ", ";
        if (Pretty) {
          Out += '\n';
          indent(Out, Depth + 1);
        }
        Elems[I].write(Out, Pretty, Depth + 1);
      }
      if (Pretty) {
        Out += '\n';
        indent(Out, Depth);
      }
      Out += ']';
      break;
    case Kind::Object:
      if (Members.empty()) {
        Out += "{}";
        break;
      }
      Out += '{';
      for (size_t I = 0; I != Members.size(); ++I) {
        if (I)
          Out += Pretty ? "," : ", ";
        if (Pretty) {
          Out += '\n';
          indent(Out, Depth + 1);
        }
        Out += '"';
        Out += escape(Members[I].first);
        Out += "\": ";
        Members[I].second.write(Out, Pretty, Depth + 1);
      }
      if (Pretty) {
        Out += '\n';
        indent(Out, Depth);
      }
      Out += '}';
      break;
    }
  }

  Kind K = Kind::Null;
  bool BoolV = false;
  int64_t IntV = 0;
  uint64_t UintV = 0;
  double DoubleV = 0;
  std::string StringV;
  std::vector<std::pair<std::string, Value>> Members;
  std::vector<Value> Elems;
};

/// Writes \p V pretty-printed to \p Path; on failure returns false and, when
/// \p Err is non-null, stores a diagnostic there.
inline bool writeJsonFile(const std::string &Path, const Value &V,
                          std::string *Err = nullptr) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    if (Err)
      *Err = "cannot write '" + Path + "'";
    return false;
  }
  std::string Text = V.str(/*Pretty=*/true);
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  Ok &= std::fclose(F) == 0;
  if (!Ok && Err)
    *Err = "short write to '" + Path + "'";
  return Ok;
}

} // namespace json
} // namespace closer

#endif // CLOSER_SUPPORT_JSON_H
