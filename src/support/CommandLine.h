//===- CommandLine.h - Flag-spec-aware argument parsing --------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line parsing for the `closer` driver, factored out of the tool
/// so it can be unit-tested. The parser is told which flags are boolean and
/// which take a value — without that distinction, any positional argument
/// following a boolean flag would be swallowed as the flag's value (the bug
/// that made `closer explore --stop-on-error prog.mc` die with the usage
/// text). Numeric accessors validate strictly: `--depth foo` and
/// `--max-runs 1e6` are diagnosed instead of silently becoming 0 and 1.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_SUPPORT_COMMANDLINE_H
#define CLOSER_SUPPORT_COMMANDLINE_H

#include <map>
#include <string>
#include <vector>

namespace closer {

/// How many operands a flag consumes.
enum class FlagArity {
  Bool,          ///< Standalone flag; `--flag=V` is rejected.
  Value,         ///< `--flag V` or `--flag=V`; missing V is rejected.
  OptionalValue, ///< Standalone or `--flag=V` (never consumes the next arg).
};

/// Flag name (including leading dashes) -> arity.
using FlagSpec = std::map<std::string, FlagArity>;

/// Parsed command line. `Error` is empty when parsing and every accessor
/// call so far succeeded; accessors record the *first* failure and return
/// their default, so drivers can build a whole option struct and check
/// once.
struct Args {
  std::vector<std::string> Positional;
  /// (flag, raw value) in appearance order; "" for flags without a value.
  std::vector<std::pair<std::string, std::string>> Flags;
  mutable std::string Error;

  bool has(const std::string &Flag) const;

  /// Raw value of the first occurrence of \p Flag, or nullptr.
  const std::string *value(const std::string &Flag) const;

  /// Strict base-10 integer value of \p Flag: rejects empty, non-numeric
  /// and trailing-garbage values ("foo", "1e6", "12x") as well as
  /// overflow, recording a diagnostic in Error.
  long intOf(const std::string &Flag, long Default) const;

  /// Strict finite, non-negative decimal value of \p Flag (e.g. seconds).
  double secondsOf(const std::string &Flag, double Default) const;

  std::string strOf(const std::string &Flag,
                    const std::string &Default) const;

  /// Records \p Message as the first diagnostic (later failures keep it).
  void fail(const std::string &Message) const;
};

/// Parses Argv[From..Argc) against \p Spec. Unknown flags, boolean flags
/// given a `=value`, and value flags missing their value all produce a
/// non-empty Args::Error.
Args parseArgs(int Argc, const char *const *Argv, int From,
               const FlagSpec &Spec);

/// Strict helpers used by the accessors; return false on any malformation.
bool parseLong(const std::string &Text, long &Out);
bool parseDouble(const std::string &Text, double &Out);

} // namespace closer

#endif // CLOSER_SUPPORT_COMMANDLINE_H
