//===- Random.h - Deterministic PRNG for tests and workloads ---*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, seedable xorshift64* generator used by the property-test program
/// generator and the benchmark workload generators. Deterministic across
/// platforms, unlike std::mt19937's distributions.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_SUPPORT_RANDOM_H
#define CLOSER_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace closer {

/// xorshift64* PRNG. Never yields the all-zero state; seed 0 is remapped.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545f4914f6cdd1dull;
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// True with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) {
    assert(Den != 0 && Num <= Den && "bad probability");
    return below(Den) < Num;
  }

private:
  uint64_t State;
};

} // namespace closer

#endif // CLOSER_SUPPORT_RANDOM_H
