//===- Arena.h - Bump allocation and object recycling ----------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation primitives for the search hot path. A saturated exploration
/// expands millions of states per second; every one of them used to pay
/// for fresh heap vectors (candidate lists, sleep sets, snapshots,
/// footprint bitsets). The three tools here make those allocations a
/// warmup-only cost:
///
///  * Arena — a monotonic bump allocator (a std::pmr::memory_resource, so
///    pmr containers such as ObjSet's word vector can sit directly on it)
///    with counters for the bytes and blocks it requested from the global
///    heap. Per worker, never shared across threads.
///  * ObjectPool<T> — a freelist of whole objects (System snapshots): a
///    recycled object keeps its internal buffers, so copy-assigning new
///    content into it reuses capacity element-wise instead of allocating.
///  * VectorPool<T> — the same idea specialized to std::vector<T>
///    (Decision candidate/sleep vectors, checkpoint sleep sets).
///
/// All three count their misses (fresh upstream allocations). The bench
/// gate asserts that on a steady-state search the miss counters are
/// bounded by the DFS-stack high-water mark — O(depth), not O(states) —
/// i.e. the per-expanded-state global allocation count rounds to zero.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_SUPPORT_ARENA_H
#define CLOSER_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <utility>
#include <vector>

namespace closer {
namespace support {

/// Monotonic bump-pointer allocator. do_deallocate is a no-op: memory is
/// reclaimed only by destroying (or reset()ing) the arena, which is the
/// right lifetime for per-worker scratch whose high-water size is bounded
/// by the module (footprint bitsets) or the search depth. Single-threaded
/// by design — each worker owns its own arena.
class Arena : public std::pmr::memory_resource {
public:
  explicit Arena(size_t FirstBlockBytes = 4096)
      : NextBlockBytes(FirstBlockBytes ? FirstBlockBytes : 4096) {}

  /// Total bytes requested from the global heap over the arena's lifetime.
  /// Grows only while the working set grows: a steady-state search stops
  /// moving this counter entirely.
  uint64_t bytesFromUpstream() const { return UpstreamBytes; }
  /// Number of blocks fetched from the global heap.
  uint64_t blocksFromUpstream() const { return Blocks.size(); }

  /// Rewinds every block to empty without releasing it; subsequent
  /// allocations reuse the existing storage. Callers must ensure no live
  /// object still points into the arena.
  void reset() {
    for (Block &B : Blocks)
      B.Used = 0;
    Current = 0;
  }

private:
  struct Block {
    std::unique_ptr<char[]> Mem;
    size_t Size = 0;
    size_t Used = 0;
  };

  void *do_allocate(size_t Bytes, size_t Align) override {
    // Try the current block first, then any later (reset) block.
    for (; Current < Blocks.size(); ++Current) {
      Block &B = Blocks[Current];
      size_t Base = reinterpret_cast<size_t>(B.Mem.get()) + B.Used;
      size_t Pad = (Align - Base % Align) % Align;
      if (B.Used + Pad + Bytes <= B.Size) {
        void *P = B.Mem.get() + B.Used + Pad;
        B.Used += Pad + Bytes;
        return P;
      }
    }
    // Geometric growth, and never smaller than the request (plus worst-case
    // alignment padding).
    size_t Want = Bytes + Align;
    while (NextBlockBytes < Want)
      NextBlockBytes *= 2;
    Block B;
    B.Size = NextBlockBytes;
    B.Mem = std::make_unique<char[]>(B.Size);
    UpstreamBytes += B.Size;
    NextBlockBytes *= 2;
    Blocks.push_back(std::move(B));
    Current = Blocks.size() - 1;
    return do_allocate(Bytes, Align);
  }

  void do_deallocate(void *, size_t, size_t) override {
    // Monotonic: individual frees are no-ops.
  }

  bool do_is_equal(const std::pmr::memory_resource &O) const noexcept override {
    return this == &O;
  }

  std::vector<Block> Blocks;
  size_t Current = 0;
  size_t NextBlockBytes;
  uint64_t UpstreamBytes = 0;
};

/// Freelist of whole objects. acquire() pops a recycled object (its
/// internal buffers intact) or default-constructs a fresh one; release()
/// returns an object to the list. The point is capacity recycling:
/// copy-assigning new content into a recycled object (e.g. a
/// SystemSnapshot's process/comm vectors) reuses its element storage
/// instead of allocating, so a pool hit costs zero heap traffic.
template <typename T> class ObjectPool {
public:
  T acquire() {
    if (Free.empty()) {
      ++FreshCount;
      return T();
    }
    T Out = std::move(Free.back());
    Free.pop_back();
    return Out;
  }

  void release(T Obj) { Free.push_back(std::move(Obj)); }

  /// Objects default-constructed because the freelist was empty — the
  /// pool-miss count the steady-state-allocation gate is built on.
  uint64_t fresh() const { return FreshCount; }
  size_t idle() const { return Free.size(); }

private:
  std::vector<T> Free;
  uint64_t FreshCount = 0;
};

/// ObjectPool specialized to vectors: acquire() additionally clears the
/// recycled vector (keeping its capacity), which is what every user wants.
template <typename T> class VectorPool {
public:
  std::vector<T> acquire() {
    if (Free.empty()) {
      ++FreshCount;
      return {};
    }
    std::vector<T> Out = std::move(Free.back());
    Free.pop_back();
    Out.clear();
    return Out;
  }

  void release(std::vector<T> V) { Free.push_back(std::move(V)); }

  uint64_t fresh() const { return FreshCount; }
  size_t idle() const { return Free.size(); }

private:
  std::vector<std::vector<T>> Free;
  uint64_t FreshCount = 0;
};

} // namespace support
} // namespace closer

#endif // CLOSER_SUPPORT_ARENA_H
