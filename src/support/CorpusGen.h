//===- CorpusGen.h - Synthetic multi-procedure corpus generator -*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic generator of open multi-procedure MiniC programs: P
/// procedures of S statements each, mixing environment inputs, tainted and
/// untainted arithmetic, global writes, channel sends and cross-procedure
/// calls. Shared by `closer gen-corpus`, the scaling benchmark and the
/// incremental-closing tests (which need two corpora differing in exactly
/// one procedure — see CorpusConfig::TweakProc).
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_SUPPORT_CORPUSGEN_H
#define CLOSER_SUPPORT_CORPUSGEN_H

#include <cstdint>
#include <string>

namespace closer {

struct CorpusConfig {
  int Procs = 8;         ///< Number of procedures p0..p{N-1}.
  int StmtsPerProc = 32; ///< Generated statements per procedure body.
  uint64_t Seed = 11;    ///< PRNG seed; same config -> same bytes.
  /// When in [0, Procs), append one extra (pure, pointer-free) statement
  /// to that procedure's body: the result differs from the untweaked
  /// corpus in exactly one procedure, which is how the incremental
  /// analysis-cache gate produces an "edited corpus".
  int TweakProc = -1;
};

/// Emits the corpus as MiniC source.
std::string generateCorpusSource(const CorpusConfig &Config);

} // namespace closer

#endif // CLOSER_SUPPORT_CORPUSGEN_H
