//===- Diagnostics.h - Error and warning collection ------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A diagnostic engine shared by the lexer, parser, semantic analysis and the
/// closing transformation. The library never throws; fallible phases report
/// through a DiagnosticEngine and return a failure indication, and callers
/// inspect the accumulated diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_SUPPORT_DIAGNOSTICS_H
#define CLOSER_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace closer {

/// Severity of a single diagnostic.
enum class DiagKind {
  Error,
  Warning,
  Note,
};

/// One reported problem: severity, optional location, message text.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  /// Renders "error: 3:7: message" style text (no trailing newline).
  std::string str() const;
};

/// Accumulates diagnostics across compilation phases.
///
/// Phases append with error()/warning()/note(); drivers check hasErrors()
/// after each phase and stop on failure.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics rendered one per line; empty string when clean.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace closer

#endif // CLOSER_SUPPORT_DIAGNOSTICS_H
