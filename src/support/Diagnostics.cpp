//===- Diagnostics.cpp - Error and warning collection ---------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace closer;

static const char *kindText(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Out = kindText(Kind);
  Out += ": ";
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
