//===- StateCache.h - Concurrent bounded fingerprint table -----*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity concurrent set of 64-bit state fingerprints, the shared
/// visited-store behind `closer explore --state-cache [--jobs N]`.
///
/// Design:
///  * one power-of-two slot array, logically split into shards; a
///    fingerprint's shard is chosen by its high bits and probing never
///    leaves the shard, so concurrent inserts to different shards touch
///    disjoint cache lines;
///  * slots are lock-free: an empty slot is claimed with a single
///    compare-and-swap, so readers and writers never block and the table
///    is safe to consult from every ParallelExplorer worker;
///  * capacity is a hard bound (`--state-cache=BITS` => 2^BITS slots, 8
///    bytes each). When a shard's probe window is full the insert reports
///    Saturated and the caller keeps searching without pruning — a sound
///    over-approximation (states may be re-explored, never skipped), the
///    standard hashing-ablation compromise from VeriSoft-era tools.
///
/// All atomics are relaxed: a slot's value is the entire payload, so no
/// other memory needs to be published alongside it. The worst a racing
/// reader can observe is "not present yet", which only costs a duplicate
/// exploration attempt that the winning inserter's entry then cuts short.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_EXPLORER_STATECACHE_H
#define CLOSER_EXPLORER_STATECACHE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace closer {

class StateCache {
public:
  /// Outcome of insert(): the fingerprint was stored for the first time,
  /// was already stored, or could not be stored because its probe window
  /// is full (the caller must then treat the state as unseen).
  enum class Insert { Inserted, Present, Saturated };

  static constexpr unsigned MinBits = 4;
  static constexpr unsigned MaxBits = 30;
  /// 2^20 slots = 8 MiB, the `--state-cache` default.
  static constexpr unsigned DefaultBits = 20;

  /// Builds a table of 2^Bits slots. Bits outside [MinBits, MaxBits] are
  /// clamped (SearchOptions::validate() rejects them before a CLI run gets
  /// here).
  explicit StateCache(unsigned Bits);

  StateCache(const StateCache &) = delete;
  StateCache &operator=(const StateCache &) = delete;

  /// Inserts \p Fp if absent. Safe to call concurrently from any number of
  /// threads; for a given fingerprint, exactly one caller ever observes
  /// Inserted.
  Insert insert(uint64_t Fp);

  /// Whether \p Fp is currently stored (no side effects).
  bool contains(uint64_t Fp) const;

  uint64_t capacity() const { return SlotCount; }
  /// Stored fingerprints (exact once concurrent inserts have quiesced).
  uint64_t entries() const;
  unsigned shardCount() const { return Shards; }

private:
  /// The stored form of a fingerprint. The finalizer spreads entropy into
  /// the high bits (which pick the shard) and the low bits (which pick the
  /// slot), so the table does not depend on the caller's hash quality —
  /// sequential or low-entropy fingerprints would otherwise pile into one
  /// shard and saturate it while the rest sit empty. A result of 0 is
  /// remapped so 0 can mean "empty slot".
  static uint64_t key(uint64_t Fp) {
    uint64_t K = Fp;
    K ^= K >> 30;
    K *= 0xbf58476d1ce4e5b9ull;
    K ^= K >> 27;
    K *= 0x94d049bb133111ebull;
    K ^= K >> 31;
    return K ? K : 0x9e3779b97f4a7c15ull;
  }

  std::unique_ptr<std::atomic<uint64_t>[]> Slots;
  uint64_t SlotCount = 0;
  /// Number of shards (power of two) and slots per shard.
  unsigned Shards = 1;
  uint64_t ShardSlots = 0;
  uint64_t ShardMask = 0;
  /// Probes before giving up; bounds worst-case insert cost and defines
  /// the saturation point of a nearly-full shard.
  uint64_t ProbeLimit = 0;
  /// Per-shard entry counters, relaxed; padded to a cache line so workers
  /// inserting into different shards do not false-share.
  struct alignas(64) ShardCount {
    std::atomic<uint64_t> N{0};
  };
  std::unique_ptr<ShardCount[]> Fill;
};

} // namespace closer

#endif // CLOSER_EXPLORER_STATECACHE_H
