//===- Replay.h - Deterministic scenario replay ----------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VeriSoft "combines aspects of debugging and replay tools for concurrent
/// systems with ... state-space exploration" (§1): because the runtime is
/// deterministic given the choice sequence, any path — in particular any
/// error report — can be replayed exactly. The explorer attaches the
/// choice sequence to every report; replayChoices re-executes it.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_EXPLORER_REPLAY_H
#define CLOSER_EXPLORER_REPLAY_H

#include "runtime/System.h"

#include <string>
#include <vector>

namespace closer {

/// One recorded choice along a path.
struct ReplayStep {
  enum class Kind { Sched, Toss, Env };
  Kind K = Kind::Sched;
  int64_t Value = 0; ///< Process index (Sched) or chosen value (Toss/Env).
};

/// Renders "s0 t1 e0 s1 ..." — a compact, human-pasteable form.
std::string replayToString(const std::vector<ReplayStep> &Steps);

/// Parses the replayToString format; returns false on malformed input.
bool parseReplay(const std::string &Text, std::vector<ReplayStep> &Out);

/// Outcome of replaying a choice sequence.
struct ReplayResult {
  Trace TraceOut;
  std::vector<AssertionViolation> Violations;
  RunError Error;
  GlobalStateKind Final = GlobalStateKind::HasEnabled;
  /// True when the sequence was consumed exactly (no missing or surplus
  /// choices) — a faithful reproduction.
  bool Faithful = true;
};

/// Re-executes \p Mod under \p Steps.
ReplayResult replayChoices(const Module &Mod,
                           const std::vector<ReplayStep> &Steps,
                           SystemOptions Options = {});

} // namespace closer

#endif // CLOSER_EXPLORER_REPLAY_H
