//===- Footprints.h - Static communication-object footprints ---*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// For every control point (procedure, node) of a module, the set of
/// communication objects any execution continuing from that point may ever
/// operate on. This is the static input the partial-order reduction uses to
/// build persistent sets ([God96]): two processes whose remaining
/// footprints are disjoint can never interact again, so their transitions
/// commute.
///
/// Computed as a backward fixpoint over the interprocedural control flow:
/// footprint(n) = ownObject(n) ∪ ⋃_succ footprint(succ) ∪ footprint(callee
/// entry) for call nodes. Call nodes conservatively include their
/// continuation (the callee returns into it).
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_EXPLORER_FOOTPRINTS_H
#define CLOSER_EXPLORER_FOOTPRINTS_H

#include "cfg/Cfg.h"

#include <algorithm>
#include <cstdint>
#include <memory_resource>
#include <vector>

namespace closer {

/// A set of communication-object indices, packed as bits. All operations
/// size-normalize: sets sized for different object counts (in particular a
/// default-constructed, zero-word set) combine as if the shorter one were
/// padded with zeros, instead of reading or writing out of bounds.
///
/// The word storage is pmr so per-state scratch sets can sit on a worker's
/// bump arena (the explorer's per-transition footprint queries). Copy
/// construction deliberately does NOT propagate the resource (pmr's
/// select_on_container_copy_construction default), so a persistent copy of
/// an arena-backed scratch set lands on the global heap — safe to outlive
/// the arena.
class ObjSet {
public:
  ObjSet() = default;
  explicit ObjSet(std::pmr::memory_resource *MR) : Words(MR) {}
  explicit ObjSet(size_t NumObjects,
                  std::pmr::memory_resource *MR =
                      std::pmr::get_default_resource())
      : Words((NumObjects + 63) / 64, 0, MR) {}

  void set(size_t Index) {
    size_t W = Index / 64;
    if (W >= Words.size())
      Words.resize(W + 1, 0);
    Words[W] |= 1ull << (Index % 64);
  }
  bool test(size_t Index) const {
    size_t W = Index / 64;
    return W < Words.size() && ((Words[W] >> (Index % 64)) & 1);
  }

  /// Union-in; returns true when this set grew.
  bool unionWith(const ObjSet &Other) {
    if (Words.size() < Other.Words.size())
      Words.resize(Other.Words.size(), 0);
    bool Grew = false;
    for (size_t I = 0, E = Other.Words.size(); I != E; ++I) {
      uint64_t Before = Words[I];
      Words[I] |= Other.Words[I];
      Grew |= Words[I] != Before;
    }
    return Grew;
  }

  bool intersects(const ObjSet &Other) const {
    size_t E = std::min(Words.size(), Other.Words.size());
    for (size_t I = 0; I != E; ++I)
      if (Words[I] & Other.Words[I])
        return true;
    return false;
  }

  bool empty() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  /// Clears all bits, keeping the word storage (capacity-reusing reset for
  /// pooled/arena scratch sets).
  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Content equality: trailing zero words are not distinguishing, so sets
  /// sized for different object counts can still compare equal.
  friend bool operator==(const ObjSet &A, const ObjSet &B) {
    size_t E = std::min(A.Words.size(), B.Words.size());
    for (size_t I = 0; I != E; ++I)
      if (A.Words[I] != B.Words[I])
        return false;
    const std::pmr::vector<uint64_t> &Longer =
        A.Words.size() >= B.Words.size() ? A.Words : B.Words;
    for (size_t I = E; I != Longer.size(); ++I)
      if (Longer[I])
        return false;
    return true;
  }

private:
  std::pmr::vector<uint64_t> Words;
};

class FootprintAnalysis {
public:
  explicit FootprintAnalysis(const Module &Mod);

  /// Objects possibly operated on from (\p ProcIdx, \p Node) onward within
  /// the same frame and below.
  const ObjSet &objectsFrom(int ProcIdx, NodeId Node) const {
    return PerNode[ProcIdx][Node];
  }

  /// Footprint of a whole process given its frame stack (outermost first):
  /// the union over frames, since outer frames resume after inner ones
  /// return.
  ObjSet processFootprint(
      const std::vector<std::pair<int, NodeId>> &Frames) const;

  /// Capacity-reusing form: clears \p Out and unions the frame footprints
  /// into it. \p Out keeps whatever memory resource it was built with.
  void processFootprintInto(const std::vector<std::pair<int, NodeId>> &Frames,
                            ObjSet &Out) const;

  size_t objectCount() const { return NumObjects; }

private:
  size_t NumObjects;
  std::vector<std::vector<ObjSet>> PerNode; ///< [proc][node].
};

} // namespace closer

#endif // CLOSER_EXPLORER_FOOTPRINTS_H
