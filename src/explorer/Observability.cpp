//===- Observability.cpp - Machine-readable run artifacts -------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "explorer/Observability.h"

#include "explorer/Replay.h"

#include <cmath>

using namespace closer;

namespace {

/// A rate that is always a finite JSON number: zero or denormal-tiny
/// elapsed times (sub-microsecond runs) must not leak inf/nan into the
/// artifact — scripts/check.sh rejects non-finite numbers.
double finiteRate(uint64_t Count, double Seconds) {
  double R = Seconds > 0 ? static_cast<double>(Count) / Seconds : 0.0;
  return std::isfinite(R) ? R : 0.0;
}

} // namespace

json::Value closer::statsToJson(const SearchStats &S) {
  json::Value O = json::Value::object();
  O.add("runs", S.Runs);
  O.add("states_visited", S.StatesVisited);
  O.add("tree_transitions", S.TreeTransitions);
  O.add("transitions", S.Transitions);
  O.add("transitions_replayed", S.TransitionsReplayed);
  O.add("transitions_restored", S.TransitionsRestored);
  O.add("deadlocks", S.Deadlocks);
  O.add("terminations", S.Terminations);
  O.add("assertion_violations", S.AssertionViolations);
  O.add("divergences", S.Divergences);
  O.add("runtime_errors", S.RuntimeErrors);
  O.add("depth_limit_hits", S.DepthLimitHits);
  O.add("sleep_set_prunes", S.SleepSetPrunes);
  O.add("hash_prunes", S.HashPrunes);
  O.add("cache_hits", S.CacheHits);
  O.add("cache_inserts", S.CacheInserts);
  O.add("cache_saturated", S.CacheSaturated);
  O.add("reports_dropped", S.ReportsDropped);
  O.add("steals", S.Steals);
  O.add("wakeups", S.Wakeups);
  O.add("arena_bytes", S.ArenaBytes);
  O.add("pool_fresh", S.PoolFresh);
  O.add("visible_ops_covered", S.VisibleOpsCovered);
  O.add("visible_ops_total", S.VisibleOpsTotal);
  O.add("completed", S.Completed);
  O.add("interrupted", S.Interrupted);
  O.add("wall_seconds", S.WallSeconds);
  return O;
}

json::Value closer::optionsToJson(const SearchOptions &Opts) {
  json::Value O = json::Value::object();
  O.add("jobs", static_cast<uint64_t>(Opts.Jobs));
  O.add("max_depth", static_cast<uint64_t>(Opts.MaxDepth));
  O.add("max_runs", Opts.MaxRuns);
  O.add("max_states", Opts.MaxStates);
  O.add("checkpoint_interval", static_cast<uint64_t>(Opts.CheckpointInterval));
  O.add("persistent_sets", Opts.UsePersistentSets);
  O.add("sleep_sets", Opts.UseSleepSets);
  O.add("state_hashing", Opts.UseStateHashing);
  O.add("state_cache_bits",
        static_cast<uint64_t>(Opts.effectiveStateCacheBits()));
  O.add("stop_on_first_error", Opts.StopOnFirstError);
  O.add("env_domain_bound", Opts.Runtime.EnvDomainBound);
  O.add("time_budget_seconds", Opts.TimeBudgetSeconds);
  return O;
}

json::Value closer::runArtifactToJson(const SearchResult &R) {
  const SearchStats &S = R.Stats;
  json::Value Root = json::Value::object();
  Root.add("schema", statsJsonSchema());
  Root.add("interrupted", S.Interrupted);
  Root.add("completed", S.Completed);
  Root.add("wall_seconds", S.WallSeconds);
  Root.add("states_per_second", finiteRate(S.StatesVisited, S.WallSeconds));
  Root.add("transitions_per_second",
           finiteRate(S.Transitions, S.WallSeconds));
  Root.add("options", optionsToJson(R.Options));
  Root.add("stats", statsToJson(S));

  json::Value Workers = json::Value::array();
  for (const SearchStats &W : R.Workers)
    Workers.push(statsToJson(W));
  Root.add("workers", std::move(Workers));

  json::Value Reports = json::Value::array();
  for (const ErrorReport &Rep : R.Reports) {
    json::Value O = json::Value::object();
    const char *Kind = "";
    switch (Rep.Kind) {
    case ErrorReport::Type::Deadlock:
      Kind = "deadlock";
      break;
    case ErrorReport::Type::AssertionViolation:
      Kind = "assertion-violation";
      break;
    case ErrorReport::Type::RuntimeError:
      Kind = "runtime-error";
      break;
    case ErrorReport::Type::Divergence:
      Kind = "divergence";
      break;
    }
    O.add("kind", Kind);
    O.add("depth", static_cast<uint64_t>(Rep.Depth));
    O.add("process", static_cast<int64_t>(Rep.Process));
    O.add("state_fingerprint", Rep.StateFp);
    O.add("replay", replayToString(Rep.Choices));
    Reports.push(std::move(O));
  }
  Root.add("reports", std::move(Reports));

  json::Value Resume = json::Value::array();
  for (const std::vector<ReplayStep> &P : R.Resume)
    Resume.push(replayToString(P));
  Root.add("resume", std::move(Resume));
  return Root;
}
