//===- Search.cpp - VeriSoft-style stateless state-space search ------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "explorer/Search.h"

#include "vm/Differential.h"
#include "vm/Vm.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>
#include <unordered_set>

using namespace closer;

std::string SearchStats::str() const {
  std::string Out;
  Out += "runs=" + std::to_string(Runs);
  Out += " states=" + std::to_string(StatesVisited);
  Out += " tree-transitions=" + std::to_string(TreeTransitions);
  Out += " transitions=" + std::to_string(Transitions);
  Out += " transitions-replayed=" + std::to_string(TransitionsReplayed);
  Out += " transitions-restored=" + std::to_string(TransitionsRestored);
  Out += " deadlocks=" + std::to_string(Deadlocks);
  Out += " terminations=" + std::to_string(Terminations);
  Out += " assertion-violations=" + std::to_string(AssertionViolations);
  Out += " divergences=" + std::to_string(Divergences);
  Out += " runtime-errors=" + std::to_string(RuntimeErrors);
  Out += " depth-limit-hits=" + std::to_string(DepthLimitHits);
  Out += " sleep-prunes=" + std::to_string(SleepSetPrunes);
  Out += " hash-prunes=" + std::to_string(HashPrunes);
  if (CacheInserts || CacheHits || CacheSaturated) {
    Out += " cache-hits=" + std::to_string(CacheHits);
    Out += " cache-inserts=" + std::to_string(CacheInserts);
    Out += " cache-saturated=" + std::to_string(CacheSaturated);
  }
  if (Steals || Wakeups) {
    Out += " steals=" + std::to_string(Steals);
    Out += " wakeups=" + std::to_string(Wakeups);
  }
  if (ArenaBytes || PoolFresh) {
    Out += " arena-bytes=" + std::to_string(ArenaBytes);
    Out += " pool-fresh=" + std::to_string(PoolFresh);
  }
  if (ReportsDropped)
    Out += " reports-dropped=" + std::to_string(ReportsDropped);
  if (VisibleOpsTotal)
    Out += " visible-op-coverage=" + std::to_string(VisibleOpsCovered) +
           "/" + std::to_string(VisibleOpsTotal);
  Out += Completed      ? " (complete)"
         : Interrupted  ? " (interrupted)"
                        : " (budget exhausted)";
  return Out;
}

std::vector<Diagnostic> SearchOptions::validate() const {
  std::vector<Diagnostic> Out;
  auto Error = [&Out](std::string Msg) {
    Out.push_back({DiagKind::Error, SourceLoc(), std::move(Msg)});
  };
  auto Warning = [&Out](std::string Msg) {
    Out.push_back({DiagKind::Warning, SourceLoc(), std::move(Msg)});
  };

  // Suspiciously huge values are negative CLI arguments wrapped through an
  // unsigned conversion; reject rather than search forever.
  constexpr uint64_t Absurd = uint64_t{1} << 40;
  if (MaxDepth == 0 || MaxDepth > Absurd)
    Error("search depth must be between 1 and 2^40 (was a negative value "
          "passed?)");
  if (Jobs > 1024)
    Error("jobs must be between 1 and 1024, or 0 for one per hardware "
          "thread");
  if (SplitDepth > Absurd)
    Error("split depth is out of range (was a negative value passed?)");
  if (CheckpointInterval > Absurd)
    Error("checkpoint interval must be >= 1, or 0 to disable checkpointing "
          "(was a negative value passed?)");
  if (StateCacheBits &&
      (StateCacheBits < StateCache::MinBits ||
       StateCacheBits > StateCache::MaxBits))
    Error("state cache size must be between 2^" +
          std::to_string(StateCache::MinBits) + " and 2^" +
          std::to_string(StateCache::MaxBits) + " slots (got 2^" +
          std::to_string(StateCacheBits) + ")");
  if (ProgressIntervalSeconds < 0)
    Error("progress interval must be >= 0 seconds");
  if (TimeBudgetSeconds < 0)
    Error("time budget must be >= 0 seconds");
  if (MaxReports == 0)
    Error("max reports must be >= 1");

  if (stateCacheEnabled() && UseSleepSets)
    Warning("state caching disables sleep sets: pruning by a path-dependent "
            "sleep set is unsound against a cross-path visited cache");
  return Out;
}

std::string ErrorReport::str() const {
  std::string Out;
  switch (Kind) {
  case Type::Deadlock:
    Out = "deadlock";
    break;
  case Type::AssertionViolation:
    Out = "assertion violation in process " + std::to_string(Process);
    if (Loc.isValid())
      Out += " at " + Loc.str();
    break;
  case Type::RuntimeError:
    Out = "runtime error: " + Error.str();
    break;
  case Type::Divergence:
    Out = "divergence: " + Error.str();
    break;
  }
  Out += " (depth " + std::to_string(Depth) + ")\n";
  Out += traceToString(TraceToError);
  if (!Choices.empty())
    Out += "replay: " + replayToString(Choices) + "\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// PathProvider
//===----------------------------------------------------------------------===//

/// Feeds recorded toss/env decisions back during replay and appends fresh
/// ones (always choosing 0 first) when execution passes the recorded
/// frontier. When the explorer carries a work-item seed prefix
/// (ParallelExplorer), decisions past the recorded path follow that prefix
/// instead of defaulting to 0, rebuilding the donor's Decision records.
class Explorer::PathProvider : public ChoiceProvider {
public:
  PathProvider(Explorer &E, size_t FreshFrom, bool &FreshMode)
      : E(E), FreshFrom(FreshFrom), FreshMode(FreshMode) {}

  int64_t choose(ChoiceKind Kind, int64_t Bound) override {
    Decision::Kind DK = Kind == ChoiceKind::Toss ? Decision::Kind::Toss
                                                 : Decision::Kind::Env;
    // The runtime reports negative bounds as errors before any branching
    // can depend on the outcome; never record a range that would wrap.
    if (Bound < 0)
      Bound = 0;
    if (E.Cursor < E.Path.size()) {
      Decision &D = E.Path[E.Cursor];
      assert(D.K == DK && D.Bound == Bound &&
             "replay diverged from recorded choices (nondeterminism leak)");
      if (E.Cursor >= FreshFrom)
        FreshMode = true;
      ++E.Cursor;
      return static_cast<int64_t>(D.Chosen);
    }
    Decision D;
    D.K = DK;
    D.Bound = Bound;
    D.Chosen = 0;
    if (E.SeedCursor < E.SeedPrefix.size()) {
      const ReplayStep &S = E.SeedPrefix[E.SeedCursor];
      assert(((DK == Decision::Kind::Toss && S.K == ReplayStep::Kind::Toss) ||
              (DK == Decision::Kind::Env && S.K == ReplayStep::Kind::Env)) &&
             S.Value >= 0 && S.Value <= Bound &&
             "work-item prefix diverged from the donor's execution");
      D.Chosen = static_cast<size_t>(S.Value);
      ++E.SeedCursor;
    }
    int64_t Out = static_cast<int64_t>(D.Chosen);
    if (E.Cursor >= FreshFrom)
      FreshMode = true;
    E.Path.push_back(std::move(D));
    ++E.Cursor;
    return Out;
  }

private:
  Explorer &E;
  size_t FreshFrom;
  bool &FreshMode;
};

//===----------------------------------------------------------------------===//
// Explorer
//===----------------------------------------------------------------------===//

Explorer::Explorer(const Module &Mod, SearchOptions Options)
    : Mod(Mod), Options(Options), Footprints(Mod),
      Sys(Mod, Options.Runtime) {
  if (this->Options.Exec != ExecMode::Interp) {
    // explore() normally pre-compiles once for all workers; a directly
    // constructed Explorer compiles its own copy so correctness never
    // depends on the caller (or the optional lower-bytecode pass).
    if (!this->Options.VmCode)
      this->Options.VmCode = vm::compileModule(Mod);
    if (this->Options.Exec == ExecMode::Vm)
      Engine = std::make_unique<vm::Vm>(this->Options.VmCode);
    else
      Engine = std::make_unique<vm::DifferentialEngine>(this->Options.VmCode);
    Sys.setEngine(Engine.get());
  }
}

void Explorer::report(ErrorReport R) {
  if (Reports.size() < Options.MaxReports) {
    Reports.push_back(std::move(R));
    if (Shared)
      Shared->Reports.fetch_add(1, std::memory_order_relaxed);
  } else {
    ++Stats.ReportsDropped;
  }
}

/// The choices consumed so far in the current run, in replayable form.
std::vector<ReplayStep> Explorer::currentChoices() const {
  std::vector<ReplayStep> Out;
  for (size_t I = 0; I < Cursor && I < Path.size(); ++I) {
    const Decision &D = Path[I];
    ReplayStep S;
    switch (D.K) {
    case Decision::Kind::Sched:
      S.K = ReplayStep::Kind::Sched;
      S.Value = D.Procs[D.Chosen];
      break;
    case Decision::Kind::Toss:
      S.K = ReplayStep::Kind::Toss;
      S.Value = static_cast<int64_t>(D.Chosen);
      break;
    case Decision::Kind::Env:
      S.K = ReplayStep::Kind::Env;
      S.Value = static_cast<int64_t>(D.Chosen);
      break;
    }
    Out.push_back(S);
  }
  return Out;
}

/// Persistent-set computation: processes are partitioned into components of
/// the "remaining footprints intersect" relation; any single component is a
/// persistent set (no outside process can ever interact with it again).
/// The component with the fewest enabled members is chosen. Runs once per
/// expanded state, entirely on member scratch: the footprint bitsets live
/// on the per-explorer arena and the index vectors keep their capacity
/// across calls, so the steady state allocates nothing here.
void Explorer::schedCandidatesInto(const std::vector<int> &Enabled,
                                   const std::vector<int> &Sleep,
                                   const std::vector<int> & /*SleepObjs*/,
                                   std::vector<int> &Out) {
  Out.clear();
  if (Options.UsePersistentSets && Sys.processCount() > 1) {
    int N = Sys.processCount();
    if (FpBuf.size() != static_cast<size_t>(N)) {
      FpBuf.clear();
      FpBuf.reserve(static_cast<size_t>(N));
      for (int P = 0; P != N; ++P)
        FpBuf.emplace_back(Footprints.objectCount(), &FpArena);
    }
    for (int P = 0; P != N; ++P) {
      Sys.frameStackInto(P, FrameBuf);
      Footprints.processFootprintInto(FrameBuf, FpBuf[P]);
    }

    CompBuf.resize(static_cast<size_t>(N));
    std::iota(CompBuf.begin(), CompBuf.end(), 0);
    auto Find = [this](int X) {
      while (CompBuf[X] != X) {
        CompBuf[X] = CompBuf[CompBuf[X]];
        X = CompBuf[X];
      }
      return X;
    };
    for (int A = 0; A != N; ++A)
      for (int B = A + 1; B != N; ++B)
        if (FpBuf[A].intersects(FpBuf[B])) {
          int Ra = Find(A), Rb = Find(B);
          if (Ra != Rb)
            CompBuf[Rb] = Ra;
        }

    // Pick the component with the fewest enabled processes (ties: the one
    // containing the smallest process id) — a deterministic choice made
    // independently of the sleep set, as the classic combination requires.
    // Enabled is ascending, so the first member of a component's
    // restriction to Enabled is also its smallest.
    int BestRoot = -1;
    size_t BestCount = 0;
    int BestFront = 0;
    for (int Seed : Enabled) {
      int Root = Find(Seed);
      size_t Count = 0;
      int Front = -1;
      for (int Q : Enabled)
        if (Find(Q) == Root) {
          if (Front < 0)
            Front = Q;
          ++Count;
        }
      if (BestRoot < 0 || Count < BestCount ||
          (Count == BestCount && Front < BestFront)) {
        BestRoot = Root;
        BestCount = Count;
        BestFront = Front;
      }
    }
    for (int Q : Enabled)
      if (Find(Q) == BestRoot)
        Out.push_back(Q);
  } else {
    Out.assign(Enabled.begin(), Enabled.end());
  }

  if (Options.UseSleepSets)
    Out.erase(std::remove_if(Out.begin(), Out.end(),
                             [&Sleep](int P) {
                               return std::find(Sleep.begin(), Sleep.end(),
                                                P) != Sleep.end();
                             }),
              Out.end());
}

void Explorer::syncAllocStats() {
  Stats.ArenaBytes = FpArena.bytesFromUpstream();
  Stats.PoolFresh = IntPool.fresh() + SnapPool.fresh();
}

void Explorer::beginSubtree(std::vector<ReplayStep> Prefix, size_t FreshFrom,
                            SystemSnapshot Snap, size_t SnapCursor,
                            std::vector<int> SnapSleep) {
  assert(SnapCursor < Prefix.size() &&
         "snapshot must sit strictly inside the work-item prefix");
  beginSubtree(std::move(Prefix), FreshFrom);
  // Placeholder decisions for the snapshot-covered head: Cursor starts at
  // SnapCursor on every run of this item, so these are never executed or
  // backtracked (they sit below Floor) — they only have to serialize
  // correctly, which needs exactly one option carrying the seed value.
  for (size_t I = 0; I < SnapCursor; ++I) {
    const ReplayStep &S = SeedPrefix[I];
    Decision D;
    switch (S.K) {
    case ReplayStep::Kind::Sched:
      D.K = Decision::Kind::Sched;
      D.Procs = {static_cast<int>(S.Value)};
      D.Chosen = 0;
      break;
    case ReplayStep::Kind::Toss:
      D.K = Decision::Kind::Toss;
      D.Bound = S.Value;
      D.Chosen = static_cast<size_t>(S.Value);
      break;
    case ReplayStep::Kind::Env:
      D.K = Decision::Kind::Env;
      D.Bound = S.Value;
      D.Chosen = static_cast<size_t>(S.Value);
      break;
    }
    Path.push_back(std::move(D));
  }
  SeedCursor = SnapCursor;
  SeedSnap.Cursor = SnapCursor;
  SeedSnap.Sleep = std::move(SnapSleep);
  SeedSnap.Snap = std::move(Snap);
  SeedSnapValid = true;
}

bool Explorer::runOnce() {
  Cursor = 0;
  const bool Seeding = SeedCursor < SeedPrefix.size();
  // On a work item's first run the whole initial segment was executed (and
  // counted) by the donor; freshness starts at the item's SeedFresh index.
  bool FreshMode = Path.empty() && !Seeding;
  size_t FreshFrom = 0;
  if (Seeding) {
    FreshFrom = SeedFresh;
  } else if (!Path.empty()) {
    // FreshFrom: index of the first decision not yet fully explored — the
    // decision backtrack() just incremented, i.e. the last one in Path.
    FreshFrom = Path.size() - 1;
  }
  PathProvider Provider(*this, FreshFrom, FreshMode);

  // Sleep-set scratch: member buffers so the per-state vectors keep their
  // capacity across paths (and runs).
  std::vector<int> &CurSleep = SleepCurBuf;
  std::vector<int> &NewSleep = SleepNextBuf;
  CurSleep.clear();

  auto HandleExec = [&](const ExecResult &R) {
    if (FreshMode) {
      for (const AssertionViolation &V : R.Violations) {
        ++Stats.AssertionViolations;
        ErrorReport Rep;
        Rep.Kind = ErrorReport::Type::AssertionViolation;
        Rep.Depth = Sys.depth();
        Rep.TraceToError = Sys.trace();
        Rep.Choices = currentChoices();
        Rep.Loc = V.Loc;
        Rep.Process = V.Process;
        Rep.StateFp = Sys.fingerprint();
        report(std::move(Rep));
        if (Options.StopOnFirstError)
          requestStop();
      }
      if (R.Error) {
        ErrorReport Rep;
        Rep.Depth = Sys.depth();
        Rep.TraceToError = Sys.trace();
        Rep.Choices = currentChoices();
        Rep.Error = R.Error;
        Rep.Process = R.Error.Process;
        Rep.StateFp = Sys.fingerprint();
        if (R.Error.Kind == RunErrorKind::Divergence) {
          ++Stats.Divergences;
          Rep.Kind = ErrorReport::Type::Divergence;
        } else {
          ++Stats.RuntimeErrors;
          Rep.Kind = ErrorReport::Type::RuntimeError;
        }
        report(std::move(Rep));
        if (Options.StopOnFirstError)
          requestStop();
      }
    }
  };

  // Checkpointed backtracking: drop snapshots that point past the surviving
  // path, then restore the deepest remaining one instead of re-executing
  // the prefix from the initial state. A checkpoint captures the state
  // *before* decision Ckpts.back().Cursor executes, so the replay below
  // resumes there and runs only the suffix. Checkpoints never sit at cursor
  // 0, so a fresh path (which must report initialization errors) always
  // takes the reset branch.
  while (!Ckpts.empty() && Ckpts.back().Cursor >= Path.size()) {
    releaseCheckpoint(Ckpts.back());
    Ckpts.pop_back();
  }
  if (!Ckpts.empty()) {
    const Checkpoint &C = Ckpts.back();
    Sys.restore(C.Snap);
    Cursor = C.Cursor;
    CurSleep = C.Sleep;
    Stats.TransitionsRestored += C.Snap.depth();
  } else if (SeedSnapValid) {
    // Work-item snapshot: the donor already executed (and its checkpoint
    // captured) everything before SeedSnap.Cursor. Initialization errors
    // were the root run's to report, so no HandleExec here — same as a
    // regular checkpoint restore.
    Sys.restore(SeedSnap.Snap);
    Cursor = SeedSnap.Cursor;
    CurSleep = SeedSnap.Sleep;
    Stats.TransitionsRestored += SeedSnap.Snap.depth();
  } else {
    ExecResult Init = Sys.reset(Provider);
    HandleExec(Init);
  }
  if (stopRequested())
    return false;

  auto RecordLeafTrace = [&] {
    if (!TraceSink || TraceSink->size() >= TraceSinkCap)
      return;
    TraceSink->push_back(Sys.trace());
  };

  for (;;) {
    // Another worker may have hit the global budget or found the first
    // error; bail out before executing the next step.
    if (stopRequested()) {
      StopFlag = true;
      return false;
    }
    bool AtPathEnd = Cursor >= Path.size();
    Sys.enabledProcessesInto(EnabledBuf);
    const std::vector<int> &Enabled = EnabledBuf;

    if (AtPathEnd && SeedCursor < SeedPrefix.size()) {
      // Work-item prefix reconstruction: rebuild the scheduling Decision
      // (candidate list and sleep set, both deterministic functions of the
      // path so far) the donor had here, without recounting its stats.
      const ReplayStep &S = SeedPrefix[SeedCursor];
      assert(S.K == ReplayStep::Kind::Sched &&
             "work-item prefix diverged: expected a scheduling step");
      Decision D;
      D.K = Decision::Kind::Sched;
      D.Procs = IntPool.acquire();
      schedCandidatesInto(Enabled, CurSleep, {}, D.Procs);
      D.Sleep = IntPool.acquire();
      D.Sleep.assign(CurSleep.begin(), CurSleep.end());
      auto It = std::find(D.Procs.begin(), D.Procs.end(),
                          static_cast<int>(S.Value));
      assert(It != D.Procs.end() &&
             "work-item prefix diverged: process not a candidate");
      D.Chosen = static_cast<size_t>(It - D.Procs.begin());
      ++SeedCursor;
      Path.push_back(std::move(D));
    } else if (AtPathEnd) {
      FreshMode = true;
      if (FrontierSink && Path.size() >= FrontierDepth) {
        // Seeding cut: hand this whole subtree to a worker. The node is
        // deliberately left uncounted — its owner counts it (and
        // classifies it as a leaf if it is one).
        FrontierSink->push_back(currentChoices());
        return true;
      }
      ++Stats.StatesVisited;
      uint64_t TotalStates = Stats.StatesVisited;
      if (Shared) {
        TotalStates =
            Shared->StatesVisited.fetch_add(1, std::memory_order_relaxed) +
            1;
        // Progress-only depth high-water mark; a lost CAS race just delays
        // the update to the next deeper state.
        uint64_t D = static_cast<uint64_t>(Sys.depth());
        uint64_t Cur = Shared->MaxDepthSeen.load(std::memory_order_relaxed);
        while (D > Cur && !Shared->MaxDepthSeen.compare_exchange_weak(
                              Cur, D, std::memory_order_relaxed)) {
        }
      }
      if (Options.MaxStates && TotalStates >= Options.MaxStates) {
        requestStop();
        return false;
      }
      if (Cache) {
        // The cache consult happens only at fresh arrivals — replayed
        // prefixes and checkpoint-restored suffixes never touch it, so
        // backtracking cannot re-insert (or self-prune on) states it
        // merely passes through again.
        switch (Cache->insert(Sys.fingerprint())) {
        case StateCache::Insert::Present:
          ++Stats.HashPrunes;
          ++Stats.CacheHits;
          if (Shared)
            Shared->CacheHits.fetch_add(1, std::memory_order_relaxed);
          RecordLeafTrace();
          return true;
        case StateCache::Insert::Inserted:
          ++Stats.CacheInserts;
          if (Shared)
            Shared->CacheInserts.fetch_add(1, std::memory_order_relaxed);
          break;
        case StateCache::Insert::Saturated:
          // Table full: keep exploring without pruning (sound, possibly
          // redundant). Never treat saturation as "seen".
          ++Stats.CacheSaturated;
          if (Shared)
            Shared->CacheSaturated.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
      if (Enabled.empty()) {
        if (Sys.classify() == GlobalStateKind::Deadlock) {
          ++Stats.Deadlocks;
          ErrorReport Rep;
          Rep.Kind = ErrorReport::Type::Deadlock;
          Rep.Depth = Sys.depth();
          Rep.TraceToError = Sys.trace();
          Rep.Choices = currentChoices();
          Rep.StateFp = Sys.fingerprint();
          report(std::move(Rep));
          if (Options.StopOnFirstError && Options.DeadlockIsError)
            requestStop();
        } else {
          ++Stats.Terminations;
        }
        RecordLeafTrace();
        return !StopFlag;
      }
      if (Sys.depth() >= Options.MaxDepth) {
        ++Stats.DepthLimitHits;
        RecordLeafTrace();
        return true;
      }
      schedCandidatesInto(Enabled, CurSleep, {}, CandBuf);
      if (CandBuf.empty()) {
        ++Stats.SleepSetPrunes;
        RecordLeafTrace();
        return true;
      }
      Decision D;
      D.K = Decision::Kind::Sched;
      D.Procs = IntPool.acquire();
      D.Procs.assign(CandBuf.begin(), CandBuf.end());
      D.Sleep = IntPool.acquire();
      D.Sleep.assign(CurSleep.begin(), CurSleep.end());
      D.Chosen = 0;
      Path.push_back(std::move(D));
    } else if (Enabled.empty() || Sys.depth() >= Options.MaxDepth) {
      // A replay should never end early (execution is deterministic given
      // the recorded choices); be defensive rather than crash.
      assert(false && "replay diverged: path continues past a leaf");
      return true;
    }

    maybeCheckpoint(CurSleep);

    Decision &D = Path[Cursor];
    assert(D.K == Decision::Kind::Sched && "expected a scheduling decision");
    if (Cursor >= FreshFrom)
      FreshMode = true;
    ++Cursor;
    int Chosen = D.Procs[D.Chosen];

    // Sleep-set propagation: processes already covered stay asleep across
    // independent transitions; earlier siblings of this decision go to
    // sleep in this subtree.
    NewSleep.clear();
    int ChosenObj = Sys.currentVisibleObject(Chosen);
    auto Independent = [&](int Q) {
      int QObj = Sys.currentVisibleObject(Q);
      return QObj < 0 || ChosenObj < 0 || QObj != ChosenObj;
    };
    for (int Q : D.Sleep)
      if (Q != Chosen && Independent(Q))
        NewSleep.push_back(Q);
    for (size_t S = 0; S < D.Chosen; ++S) {
      int Q = D.Procs[S];
      if (Q != Chosen && Independent(Q) &&
          std::find(NewSleep.begin(), NewSleep.end(), Q) == NewSleep.end())
        NewSleep.push_back(Q);
    }

    if (Options.TrackCoverage) {
      Sys.frameStackInto(Chosen, FrameBuf);
      if (!FrameBuf.empty())
        CoveredOps.insert(
            (static_cast<uint64_t>(FrameBuf.back().first) << 32) |
            FrameBuf.back().second);
    }
    ExecResult R = Sys.executeTransition(Chosen, Provider);
    ++Stats.Transitions;
    if (Shared)
      Shared->Transitions.fetch_add(1, std::memory_order_relaxed);
    if (FreshMode)
      ++Stats.TreeTransitions;
    else
      ++Stats.TransitionsReplayed;
    HandleExec(R);
    if (stopRequested())
      return false;
    CurSleep.swap(NewSleep);
  }
}

void Explorer::maybeCheckpoint(const std::vector<int> &CurSleep) {
  const size_t K = Options.CheckpointInterval;
  if (K == 0)
    return;
  // Interval rule: one snapshot every K global states along the path. A
  // worker with a pinned prefix (Floor > 0) additionally snapshots right
  // after its prefix replay, so the prefix is re-executed at most once per
  // work item instead of once per leaf.
  const size_t LastDepth = Ckpts.empty() ? 0 : Ckpts.back().Snap.depth();
  const bool Due = Sys.depth() >= LastDepth + K;
  const bool ForcePrefix = Floor > 0 && Cursor >= Floor && Ckpts.empty();
  if (!Due && !ForcePrefix)
    return;
  Checkpoint C;
  C.Cursor = Cursor;
  C.Sleep = IntPool.acquire();
  C.Sleep.assign(CurSleep.begin(), CurSleep.end());
  // Light flavor: checkpoints live and die on this explorer's own DFS
  // path, so the O(depth) event trace is rewound by truncation instead of
  // being copied in and out (donateOne materializes a full copy on the
  // rare occasion a checkpoint leaves this path inside a work item).
  // Snapshotting into a pooled snapshot reuses its buffers element-wise.
  C.Snap = SnapPool.acquire();
  Sys.snapshotLightInto(C.Snap);
  Ckpts.push_back(std::move(C));
}

void Explorer::releaseDecision(Decision &D) {
  if (D.K == Decision::Kind::Sched) {
    IntPool.release(std::move(D.Procs));
    IntPool.release(std::move(D.Sleep));
  }
}

void Explorer::releaseCheckpoint(Checkpoint &C) {
  IntPool.release(std::move(C.Sleep));
  SnapPool.release(std::move(C.Snap));
}

void Explorer::clearPath() {
  for (Decision &D : Path)
    releaseDecision(D);
  Path.clear();
}

void Explorer::clearCkpts() {
  for (Checkpoint &C : Ckpts)
    releaseCheckpoint(C);
  Ckpts.clear();
}

bool Explorer::backtrack() {
  // Decisions below Floor belong to the work item's pinned prefix (Floor
  // is 0 for a plain sequential search); options donated to other workers
  // are excluded from re-exploration.
  while (Path.size() > Floor) {
    Decision &D = Path.back();
    if (D.Chosen + 1 < D.ownedOptionEnd()) {
      ++D.Chosen;
      return true;
    }
    releaseDecision(D);
    Path.pop_back();
  }
  return false;
}

SearchStats Explorer::run() {
  // Re-invocation starts from a clean slate: stats, reports, caches, and
  // any parallel work-item state left by a previous use of this explorer.
  // An externally attached cache (ParallelExplorer's shared table) is the
  // attacher's to manage; only a privately owned one is rebuilt here.
  Stats = SearchStats();
  Reports.clear();
  if (Cache == OwnedCache.get()) {
    if (Options.stateCacheEnabled()) {
      OwnedCache =
          std::make_unique<StateCache>(Options.effectiveStateCacheBits());
      Cache = OwnedCache.get();
    } else {
      OwnedCache.reset();
      Cache = nullptr;
    }
  }
  CoveredOps.clear();
  clearPath();
  Cursor = 0;
  clearCkpts();
  StopFlag = false;
  LastInFlight.clear();
  Floor = 0;
  SeedPrefix.clear();
  SeedCursor = 0;
  SeedFresh = 0;
  SeedSnapValid = false;
  SeedSnap = Checkpoint();

  for (;;) {
    bool Continue = runOnce();
    ++Stats.Runs;
    if (!Continue || StopFlag) {
      if (stopRequested())
        LastInFlight = currentChoices();
      break;
    }
    if (Options.MaxRuns && Stats.Runs >= Options.MaxRuns)
      break;
    if (!backtrack()) {
      Stats.Completed = true;
      break;
    }
  }

  if (Options.TrackCoverage) {
    for (const ProcCfg &Proc : Mod.Procs)
      for (const CfgNode &Node : Proc.Nodes)
        Stats.VisibleOpsTotal += Node.isVisibleOp();
    Stats.VisibleOpsCovered = CoveredOps.size();
  }
  syncAllocStats();
  return Stats;
}

std::vector<std::pair<std::string, NodeId>>
Explorer::uncoveredVisibleOps() const {
  std::vector<std::pair<std::string, NodeId>> Out;
  for (size_t P = 0, E = Mod.Procs.size(); P != E; ++P) {
    const ProcCfg &Proc = Mod.Procs[P];
    for (size_t I = 0, N = Proc.Nodes.size(); I != N; ++I) {
      if (!Proc.Nodes[I].isVisibleOp())
        continue;
      uint64_t Key = (static_cast<uint64_t>(P) << 32) | I;
      if (!CoveredOps.count(Key))
        Out.push_back({Proc.Name, static_cast<NodeId>(I)});
    }
  }
  return Out;
}

std::vector<Trace> Explorer::collectTraces(size_t MaxTraces) {
  std::vector<Trace> Sink;
  TraceSink = &Sink;
  TraceSinkCap = MaxTraces * 4; // Collect with headroom, dedup below.
  run();
  TraceSink = nullptr;

  std::vector<Trace> Unique;
  std::unordered_set<std::string> Seen;
  for (Trace &T : Sink) {
    std::string Key = traceToString(T);
    if (Seen.insert(std::move(Key)).second) {
      Unique.push_back(std::move(T));
      if (Unique.size() >= MaxTraces)
        break;
    }
  }
  return Unique;
}
