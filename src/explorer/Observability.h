//===- Observability.h - Machine-readable run artifacts --------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explorer's diagnostic surface, in machine-readable form. VeriSoft's
/// §6 case study was usable because the tool reported what happened during
/// search (states, transitions, reductions, errors); this module turns a
/// closer::explore() result into a JSON artifact (`closer explore
/// --stats-json FILE`) that downstream tooling — scripts/check.sh, perf
/// tracking, dashboards — can consume without scraping the human-readable
/// line:
///
///  * every SearchStats field, snake-cased, field-for-field;
///  * per-worker breakdowns (seeding pass first, then one per worker);
///  * wall clock / states-per-second and the *effective* search options
///    (after explore()'s normalization — what actually ran);
///  * error reports as (kind, depth, process, state fingerprint, replay)
///    records;
///  * for interrupted runs, the resume prefixes of the abandoned subtrees.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_EXPLORER_OBSERVABILITY_H
#define CLOSER_EXPLORER_OBSERVABILITY_H

#include "explorer/Search.h"
#include "support/Json.h"

#include <string>

namespace closer {

/// Current value of the artifact's "schema" discriminator field.
inline const char *statsJsonSchema() { return "closer-explore-stats-v1"; }

/// Every SearchStats field as an ordered JSON object (snake_case keys).
json::Value statsToJson(const SearchStats &S);

/// The search options that shaped a run, for artifact self-description.
json::Value optionsToJson(const SearchOptions &Opts);

/// The full run artifact of an explore() result. Options come from
/// R.Options — the normalized set the search actually used.
json::Value runArtifactToJson(const SearchResult &R);

} // namespace closer

#endif // CLOSER_EXPLORER_OBSERVABILITY_H
