//===- Search.h - VeriSoft-style stateless state-space search --*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Systematic exploration of a closed system's global state space in the
/// style of VeriSoft [God97]:
///
///  * the search is *stateless*: no visited state is stored; alternative
///    paths are explored by re-executing the system from its initial state
///    under a recorded sequence of choices (scheduling choices at global
///    states, VS_toss outcomes, and — when driving a still-open module —
///    environment choices over a finite domain);
///  * depth-bounded DFS guarantees complete coverage of the state space up
///    to the bound;
///  * partial-order reduction: persistent sets derived from static
///    communication footprints (processes whose remaining footprints are
///    disjoint can never interact) plus sleep sets, as in [God96];
///  * deadlocks, assertion violations, divergences and runtime errors are
///    reported with their full visible trace.
///
/// A state-caching mode (store fingerprints, prune revisits) is provided as
/// an ablation of the stateless design; see explorer/StateCache.h.
///
/// The stable entry point for running a search is closer::explore(), which
/// selects sequential, parallel, or cached execution from the options.
/// Explorer (below) and ParallelExplorer (ParallelSearch.h) are the
/// implementation underneath it.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_EXPLORER_SEARCH_H
#define CLOSER_EXPLORER_SEARCH_H

#include "explorer/Footprints.h"
#include "explorer/Replay.h"
#include "explorer/StateCache.h"
#include "runtime/System.h"
#include "support/Arena.h"
#include "support/Diagnostics.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace closer {

class ParallelExplorer;

namespace vm {
struct CompiledModule;
} // namespace vm

/// Which transition-execution engine the search drives the System with.
/// All modes produce bit-identical tree-shaped statistics and reports; only
/// throughput differs (and Both pays for two executions per transition).
enum class ExecMode {
  Interp, ///< The tree-walking interpreter (the default).
  Vm,     ///< The direct-threaded bytecode VM.
  Both,   ///< Differential oracle: run both, abort on any divergence.
};

struct SearchOptions {
  /// Maximum transitions along one path (the paper's "complete coverage of
  /// the state space up to some depth").
  size_t MaxDepth = 60;
  /// Hard budget on replays (0 = unlimited).
  uint64_t MaxRuns = 0;
  /// Hard budget on fresh tree states (0 = unlimited).
  uint64_t MaxStates = 0;
  bool UsePersistentSets = true;
  bool UseSleepSets = true;
  /// Ablation: store state fingerprints and prune revisits. Deprecated
  /// spelling of StateCacheBits = StateCache::DefaultBits; kept so
  /// existing callers (and the CLI's `--hash` alias) keep working.
  bool UseStateHashing = false;
  /// State caching: log2 of the fingerprint-cache slot count (0 = off
  /// unless UseStateHashing asks for the default size). The cache is a
  /// bounded concurrent table (explorer/StateCache.h) shared across all
  /// workers, so `--state-cache` composes with `--jobs N`. Sleep sets are
  /// disabled whenever caching is on: their path-dependent pruning is
  /// unsound against a cross-path visited set (a slept-on state could be
  /// cache-pruned everywhere else and never get explored at all).
  unsigned StateCacheBits = 0;
  bool StopOnFirstError = false;
  /// Treat deadlocks as errors for StopOnFirstError purposes.
  bool DeadlockIsError = true;
  /// Maximum error reports retained.
  size_t MaxReports = 64;
  /// Track which visible operations (CFG call sites) the search exercised
  /// — a test-adequacy metric for the paper's "lightweight testing
  /// platform" use (§6).
  bool TrackCoverage = true;
  /// Worker threads for ParallelExplorer (1 = plain sequential search;
  /// 0 = auto: explore() resolves it to the hardware concurrency and
  /// records the resolved count in SearchResult::Options).
  size_t Jobs = 1;
  /// Number of decisions the sequential seeding pass expands before
  /// handing subtrees to workers (0 = derive from Jobs). Only read by
  /// ParallelExplorer.
  size_t SplitDepth = 0;
  /// Keep a System snapshot every this many global states along the DFS
  /// stack and, on backtrack, restore the nearest one instead of
  /// re-executing the whole choice prefix (0 = pure stateless search, the
  /// paper's baseline). Any value yields bit-identical tree-shaped stats;
  /// only Transitions/TransitionsReplayed/TransitionsRestored move.
  size_t CheckpointInterval = 0;
  //===--------------------------------------------------------------------===//
  // Observability & graceful degradation (read by ParallelExplorer)
  //===--------------------------------------------------------------------===//
  /// Print a progress line to stderr every this many seconds (0 = off).
  /// Driven by a monitor thread over lock-free counter snapshots; workers
  /// never block or synchronize for it.
  double ProgressIntervalSeconds = 0;
  /// Cooperative wall-clock budget: after this many seconds the run stop
  /// flag is raised, workers drain, and partial results (stats, reports,
  /// in-flight resume prefixes) are still delivered (0 = unlimited).
  double TimeBudgetSeconds = 0;
  /// External cooperative-stop flag (e.g. set by a SIGINT handler); polled
  /// by the monitor thread. Never written by the search.
  const std::atomic<bool> *ExternalStop = nullptr;
  /// Transition-execution engine (interpreter, bytecode VM, or the
  /// interpreter-vs-VM differential oracle).
  ExecMode Exec = ExecMode::Interp;
  /// Pre-compiled bytecode for Vm/Both modes. explore() compiles the module
  /// once and shares the immutable result across the seeder and all
  /// workers; left null with Exec == Interp. An Explorer constructed
  /// directly with a null VmCode compiles its own copy.
  std::shared_ptr<const vm::CompiledModule> VmCode;
  SystemOptions Runtime;

  /// The fingerprint-cache size in effect: StateCacheBits if set, the
  /// default size when the deprecated UseStateHashing flag asks for
  /// caching, 0 when caching is off.
  unsigned effectiveStateCacheBits() const {
    if (StateCacheBits)
      return StateCacheBits;
    return UseStateHashing ? StateCache::DefaultBits : 0;
  }
  bool stateCacheEnabled() const { return effectiveStateCacheBits() != 0; }

  /// Centralized option validation: every constraint the explorers assume
  /// (previously scattered as ad-hoc checks across the CLI and the
  /// explorers). The CLI prints any errors and exits 1 before a search
  /// starts; explore() merely clamps, so library callers who skip
  /// validation still get a defined (if adjusted) run. Warnings describe
  /// adjustments explore() applies automatically (e.g. sleep sets off
  /// under caching).
  std::vector<Diagnostic> validate() const;
};

/// State shared between the workers of a ParallelExplorer run: the global
/// MaxRuns/MaxStates budgets and the StopOnFirstError stop flag keep their
/// sequential meaning by living in atomics every worker consults.
struct SharedSearchControl {
  std::atomic<uint64_t> StatesVisited{0};
  std::atomic<uint64_t> Runs{0};
  std::atomic<bool> Stop{false};
  // Observability counters, maintained with relaxed increments on the
  // worker hot path and snapshotted (racily, by design) by the progress
  // monitor; they steer nothing, so staleness is harmless.
  std::atomic<uint64_t> Transitions{0};
  /// Reports retained by any worker; duplicates are not yet deduplicated
  /// here, so this may exceed the final merged report count.
  std::atomic<uint64_t> Reports{0};
  /// Deepest global state reached by any worker so far.
  std::atomic<uint64_t> MaxDepthSeen{0};
  // State-cache traffic (zero when caching is off); progress-only, like
  // Transitions/Reports above.
  std::atomic<uint64_t> CacheHits{0};
  std::atomic<uint64_t> CacheInserts{0};
  std::atomic<uint64_t> CacheSaturated{0};

  void resetCounters() {
    StatesVisited.store(0);
    Runs.store(0);
    Stop.store(false);
    Transitions.store(0);
    Reports.store(0);
    MaxDepthSeen.store(0);
    CacheHits.store(0);
    CacheInserts.store(0);
    CacheSaturated.store(0);
  }
};

struct SearchStats {
  uint64_t Runs = 0;             ///< Completed path replays.
  uint64_t Transitions = 0;      ///< Transitions executed, incl. replays.
  uint64_t TreeTransitions = 0;  ///< Distinct search-tree edges.
  /// Prefix transitions re-executed during replay (the stateless-search
  /// overhead checkpointing attacks); Transitions = TreeTransitions +
  /// TransitionsReplayed.
  uint64_t TransitionsReplayed = 0;
  /// Prefix transitions skipped by restoring a checkpoint instead of
  /// re-executing them (0 in pure stateless mode).
  uint64_t TransitionsRestored = 0;
  uint64_t StatesVisited = 0;    ///< Distinct tree nodes (global states).
  uint64_t Deadlocks = 0;
  uint64_t Terminations = 0;
  uint64_t AssertionViolations = 0;
  uint64_t Divergences = 0;
  uint64_t RuntimeErrors = 0;
  uint64_t DepthLimitHits = 0;
  uint64_t SleepSetPrunes = 0;
  /// Arrivals pruned because the state's fingerprint was already cached.
  /// Legacy name; always equal to CacheHits.
  uint64_t HashPrunes = 0;
  /// State-cache traffic (all zero when caching is off). CacheHits counts
  /// pruned revisits, CacheInserts first-time stores, CacheSaturated fresh
  /// arrivals the full cache declined to store (searched anyway: the
  /// saturation policy is "stop inserting, keep searching").
  uint64_t CacheHits = 0;
  uint64_t CacheInserts = 0;
  uint64_t CacheSaturated = 0;
  /// Error reports discarded because MaxReports was already reached.
  uint64_t ReportsDropped = 0;
  /// Visible-operation call sites executed at least once / total in the
  /// module (0/0 when coverage tracking is off).
  uint64_t VisibleOpsCovered = 0;
  uint64_t VisibleOpsTotal = 0;
  // Scheduler and allocator traffic (all zero for sequential, non-pooled
  // runs). Not tree-shaped: these vary run to run with thread timing, so
  // str() prints them only when nonzero and the equivalence tests exclude
  // them.
  /// Work items this worker stole from another worker's deque.
  uint64_t Steals = 0;
  /// Targeted wakeups this worker received while parked.
  uint64_t Wakeups = 0;
  /// Bytes the worker's footprint arena drew from the global heap.
  uint64_t ArenaBytes = 0;
  /// Pool misses (fresh allocations) across the worker's object pools —
  /// bounded by the DFS-stack high-water mark, not the state count.
  uint64_t PoolFresh = 0;
  bool Completed = false; ///< Search exhausted the (bounded) tree.
  /// Stop came from outside the search itself — the wall-clock budget or
  /// an external flag (SIGINT) — rather than from completion or a
  /// MaxRuns/MaxStates/StopOnFirstError condition. Partial results are
  /// still valid; resume prefixes identify the abandoned subtrees.
  bool Interrupted = false;
  /// Wall-clock duration of the run (not part of str(): tree-shaped output
  /// stays bit-identical across machines and runs).
  double WallSeconds = 0;

  std::string str() const;
};

/// One reported problem, with the visible trace that leads to it and the
/// choice sequence that reproduces it (see explorer/Replay.h).
struct ErrorReport {
  enum class Type { Deadlock, AssertionViolation, RuntimeError, Divergence };
  Type Kind;
  size_t Depth = 0;
  Trace TraceToError;
  std::vector<ReplayStep> Choices; ///< Feed to replayChoices to reproduce.
  RunError Error;    ///< RuntimeError / Divergence details.
  SourceLoc Loc;     ///< Assertion location.
  int Process = -1;
  /// Fingerprint of the erroneous global state. Under state caching, where
  /// the same state can be reached freshly along different paths by
  /// different workers, reports are deduplicated by state identity (this
  /// field plus the error details) rather than by choice sequence.
  uint64_t StateFp = 0;

  std::string str() const;
};

/// Everything a finished search produced, as returned by closer::explore().
struct SearchResult {
  /// The options the search actually ran with, after explore()'s
  /// normalizations (sleep sets off under caching, Jobs clamped) — what a
  /// run artifact should record as its self-description.
  SearchOptions Options;
  SearchStats Stats;
  std::vector<ErrorReport> Reports;
  /// Per-part statistics: element 0 is the seeding pass (or the single
  /// explorer of a sequential run), then one entry per worker thread.
  std::vector<SearchStats> Workers;
  /// For interrupted runs: replayable choice prefixes of the abandoned
  /// subtrees, deepest first. Empty for completed runs.
  std::vector<std::vector<ReplayStep>> Resume;
  /// Visible-operation call sites the search never exercised.
  std::vector<std::pair<std::string, NodeId>> Uncovered;
};

/// The unified search entry point: closes over every execution mode.
/// Selects sequential (Jobs <= 1), work-sharing parallel (Jobs > 1), and
/// cached (stateCacheEnabled()) execution from \p Options, including the
/// combination `--state-cache --jobs N` (one concurrent fingerprint table
/// shared by all workers). Normalizations applied (see
/// SearchOptions::validate() for the corresponding warnings): sleep sets
/// are disabled when caching is on; Jobs == 0 runs sequentially.
///
/// All tools and tests should call this instead of constructing Explorer /
/// ParallelExplorer directly.
SearchResult explore(const Module &Mod, const SearchOptions &Options);

class Explorer {
public:
  Explorer(const Module &Mod, SearchOptions Options = {});

  /// Runs the exploration to completion (or budget exhaustion).
  SearchStats run();

  const std::vector<ErrorReport> &reports() const { return Reports; }

  /// Statistics of the most recent run()/collectTraces() invocation.
  const SearchStats &stats() const { return Stats; }

  /// Visible-operation call sites never exercised by the last run, as
  /// (procedure name, node id) pairs — the blind spots of the search.
  std::vector<std::pair<std::string, NodeId>> uncoveredVisibleOps() const;

  /// Convenience: all distinct visible traces of leaves reached, capped at
  /// \p MaxTraces. Used by the trace-inclusion property tests.
  std::vector<Trace> collectTraces(size_t MaxTraces);

private:
  struct Decision {
    enum class Kind { Sched, Toss, Env };
    Kind K = Kind::Sched;
    // Sched:
    std::vector<int> Procs; ///< Candidate processes, in exploration order.
    std::vector<int> Sleep; ///< Sleep set on entry (process indices).
    std::vector<int> SleepObjs; ///< Their pending objects at entry.
    // Toss/Env:
    int64_t Bound = 0;
    size_t Chosen = 0;
    /// Trailing options handed to another worker by ParallelExplorer's
    /// work sharing; backtrack() must not re-explore them.
    uint32_t DonatedTail = 0;

    size_t optionCount() const {
      if (K == Kind::Sched)
        return Procs.size();
      // A negative bound is a runtime error (the System reports it before
      // any choice is recorded); never let it wrap into a huge count.
      return Bound < 0 ? 1 : static_cast<size_t>(Bound) + 1;
    }
    /// Options still owned by this explorer (donated ones excluded).
    size_t ownedOptionEnd() const { return optionCount() - DonatedTail; }
  };

  class PathProvider;

  /// A snapshot of the System just before executing decision Path[Cursor],
  /// with the sleep set in force at that point. Stays valid while the
  /// decision survives backtracking (Cursor < Path.size()) — the decision's
  /// Chosen branch may change underneath it, since the snapshot captures
  /// the state *before* the choice is acted on.
  struct Checkpoint {
    size_t Cursor = 0;
    std::vector<int> Sleep;
    SystemSnapshot Snap;
  };

  /// Executes one full path following (and extending) Path. Returns false
  /// when the global stop condition triggered.
  bool runOnce();
  bool backtrack();
  /// Snapshots the state before executing Path[Cursor] when the checkpoint
  /// interval (or a worker's pinned prefix) calls for it.
  void maybeCheckpoint(const std::vector<int> &CurSleep);
  std::vector<ReplayStep> currentChoices() const;
  /// Persistent-set candidate selection; overwrites \p Out (which is pool
  /// or scratch storage on the hot path).
  void schedCandidatesInto(const std::vector<int> &Enabled,
                           const std::vector<int> &Sleep,
                           const std::vector<int> &SleepObjs,
                           std::vector<int> &Out);
  /// Copies the allocator counters (arena bytes, pool misses) into Stats.
  /// Called at the end of run() and by ParallelExplorer after each worker
  /// finishes.
  void syncAllocStats();
  // Pool recycling for path/checkpoint storage; popping without releasing
  // is only a missed reuse, never a leak.
  void releaseDecision(Decision &D);
  void releaseCheckpoint(Checkpoint &C);
  void clearPath();
  void clearCkpts();
  void report(ErrorReport R);
  bool stopRequested() const {
    return StopFlag ||
           (Shared && Shared->Stop.load(std::memory_order_acquire));
  }
  /// Stops this explorer and, when coordinated, every sibling worker.
  void requestStop() {
    StopFlag = true;
    if (Shared)
      Shared->Stop.store(true, std::memory_order_release);
  }
  /// ParallelExplorer: prepare this explorer to exhaust the subtree under
  /// \p Prefix. The prefix decisions are reconstructed (candidates and
  /// sleep sets recomputed) during the first runOnce() without recounting
  /// stats; decisions at index >= \p FreshFrom count as fresh. backtrack()
  /// then never pops below the prefix. Stats/Reports accumulate across
  /// successive subtrees.
  void beginSubtree(std::vector<ReplayStep> Prefix, size_t FreshFrom) {
    clearPath();
    Cursor = 0;
    clearCkpts(); // Snapshots index into the abandoned path.
    LastInFlight.clear();
    Floor = Prefix.size();
    SeedPrefix = std::move(Prefix);
    SeedCursor = 0;
    SeedFresh = FreshFrom;
    SeedSnapValid = false;
    SeedSnap = Checkpoint();
  }
  /// Like beginSubtree(), but the work item ships the donor's checkpoint
  /// covering Prefix[0, SnapCursor): the first runOnce() restores \p Snap
  /// with \p SnapSleep in force and replays only the prefix tail. The
  /// covered head is materialized as placeholder decisions (single-option,
  /// never executed) so currentChoices() and donation prefixes still
  /// serialize the full path from the root.
  void beginSubtree(std::vector<ReplayStep> Prefix, size_t FreshFrom,
                    SystemSnapshot Snap, size_t SnapCursor,
                    std::vector<int> SnapSleep);

  const Module &Mod;
  SearchOptions Options;
  FootprintAnalysis Footprints;
  System Sys;
  /// The engine installed into Sys for Vm/Both modes (null for Interp).
  /// Owned here: each explorer needs its own register file even when the
  /// compiled code is shared.
  std::unique_ptr<ExecEngine> Engine;
  std::vector<Decision> Path;
  size_t Cursor = 0;
  /// Checkpoints along the current path, shallowest first (strictly
  /// increasing Cursor). Empty when CheckpointInterval is 0.
  std::vector<Checkpoint> Ckpts;
  SearchStats Stats;
  std::vector<ErrorReport> Reports;
  /// Visited-state fingerprint cache consulted at fresh arrivals. Either
  /// owned (sequential caching: run() builds a private table) or attached
  /// by ParallelExplorer (one table shared across all workers). Null when
  /// caching is off.
  StateCache *Cache = nullptr;
  std::unique_ptr<StateCache> OwnedCache;
  /// Covered visible sites, packed as ProcIdx * 2^32 + NodeId.
  std::unordered_set<uint64_t> CoveredOps;
  bool StopFlag = false;
  std::vector<Trace> *TraceSink = nullptr;
  size_t TraceSinkCap = 0;
  /// The choice prefix that was in flight when a cooperative stop cut the
  /// current runOnce() short — the deepest abandoned path, replayable by
  /// hand to resume the search (empty when the run ended normally).
  std::vector<ReplayStep> LastInFlight;

  // Parallel-mode state, driven by ParallelExplorer (see ParallelSearch.h).
  /// Decisions [0, Floor) are a pinned work-item prefix; backtrack() stops
  /// there instead of at the root.
  size_t Floor = 0;
  /// Choice prefix still to be reconstructed into Path on the next
  /// runOnce(), and the cursor walking it.
  std::vector<ReplayStep> SeedPrefix;
  size_t SeedCursor = 0;
  /// First prefix index whose execution counts as fresh (seeded items:
  /// prefix length — nothing; donated items: the donated sibling step).
  size_t SeedFresh = 0;
  /// Work-item snapshot (see the snapshot beginSubtree overload): restored
  /// whenever no regular checkpoint survives, so with CheckpointInterval 0
  /// every path of the item still starts at SeedSnap.Cursor instead of the
  /// initial state. Cursor/Sleep/Snap reuse the Checkpoint layout.
  bool SeedSnapValid = false;
  Checkpoint SeedSnap;
  /// Seeding mode: instead of descending past FrontierDepth decisions,
  /// emit the choice prefix here and treat the node as an artificial leaf.
  /// The frontier node itself is left uncounted for its future owner.
  std::vector<std::vector<ReplayStep>> *FrontierSink = nullptr;
  size_t FrontierDepth = 0;
  /// Shared budgets/stop flag when part of a parallel run.
  SharedSearchControl *Shared = nullptr;

  // Hot-path allocation recycling (support/Arena.h). All per-explorer and
  // single-threaded: in a parallel run each worker's Explorer owns its own
  // arena and pools, so the steady state touches no shared allocator at
  // all. Pool misses are bounded by the DFS-stack high-water mark; the
  // arena stops growing once the deepest path has been visited.
  /// Recycles Decision::Procs/Sleep/SleepObjs and Checkpoint::Sleep.
  support::VectorPool<int> IntPool;
  /// Recycles checkpoint snapshots: restoring content into a pooled
  /// snapshot reuses its process/comm/trace buffers.
  support::ObjectPool<SystemSnapshot> SnapPool;
  /// Backs the per-transition footprint scratch bitsets (FpBuf).
  support::Arena FpArena;
  // Per-transition scratch, reused across every state expansion.
  std::vector<int> EnabledBuf;
  std::vector<std::pair<int, NodeId>> FrameBuf;
  /// One footprint per process, words on FpArena; sized once per run.
  std::vector<ObjSet> FpBuf;
  /// Union-find and selection scratch for schedCandidatesInto.
  std::vector<int> CompBuf;
  std::vector<int> BestMembersBuf;
  /// Current/next sleep-set scratch for the runOnce descent loop.
  std::vector<int> SleepCurBuf;
  std::vector<int> SleepObjsCurBuf;
  std::vector<int> SleepNextBuf;
  std::vector<int> SleepObjsNextBuf;
  std::vector<int> CandBuf;

  friend class ParallelExplorer;
};

} // namespace closer

#endif // CLOSER_EXPLORER_SEARCH_H
