//===- Footprints.cpp - Static communication-object footprints -------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "explorer/Footprints.h"

using namespace closer;

FootprintAnalysis::FootprintAnalysis(const Module &Mod)
    : NumObjects(Mod.Comms.size()) {
  PerNode.resize(Mod.Procs.size());
  for (size_t P = 0, E = Mod.Procs.size(); P != E; ++P)
    PerNode[P].assign(Mod.Procs[P].Nodes.size(), ObjSet(NumObjects));

  // Round-robin to a global fixpoint; footprints only grow and are bounded
  // by the object count, so this terminates quickly.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t P = 0, PE = Mod.Procs.size(); P != PE; ++P) {
      const ProcCfg &Proc = Mod.Procs[P];
      // Reverse order converges faster on forward-shaped graphs.
      for (size_t R = Proc.Nodes.size(); R != 0; --R) {
        NodeId Id = static_cast<NodeId>(R - 1);
        const CfgNode &Node = Proc.Nodes[Id];
        ObjSet &F = PerNode[P][Id];

        if (Node.Kind == CfgNodeKind::Call) {
          if (Node.Builtin == BuiltinKind::None) {
            int Callee = Mod.procIndex(Node.Callee);
            if (Callee >= 0)
              Changed |= F.unionWith(
                  PerNode[Callee][Mod.Procs[Callee].Entry]);
          } else if (builtinInfo(Node.Builtin).TakesObject) {
            int Obj = Mod.commIndex(Node.Args[0]->Name);
            if (Obj >= 0 && !F.test(static_cast<size_t>(Obj))) {
              F.set(static_cast<size_t>(Obj));
              Changed = true;
            }
          }
        }
        for (const CfgArc &Arc : Node.Arcs)
          Changed |= F.unionWith(PerNode[P][Arc.Target]);
      }
    }
  }
}

ObjSet FootprintAnalysis::processFootprint(
    const std::vector<std::pair<int, NodeId>> &Frames) const {
  ObjSet Result(NumObjects);
  processFootprintInto(Frames, Result);
  return Result;
}

void FootprintAnalysis::processFootprintInto(
    const std::vector<std::pair<int, NodeId>> &Frames, ObjSet &Out) const {
  Out.clear();
  for (const auto &[ProcIdx, Node] : Frames)
    Out.unionWith(objectsFrom(ProcIdx, Node));
}
