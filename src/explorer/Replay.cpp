//===- Replay.cpp - Deterministic scenario replay ----------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "explorer/Replay.h"

#include <sstream>

using namespace closer;

std::string closer::replayToString(const std::vector<ReplayStep> &Steps) {
  std::string Out;
  for (const ReplayStep &S : Steps) {
    if (!Out.empty())
      Out += ' ';
    switch (S.K) {
    case ReplayStep::Kind::Sched:
      Out += 's';
      break;
    case ReplayStep::Kind::Toss:
      Out += 't';
      break;
    case ReplayStep::Kind::Env:
      Out += 'e';
      break;
    }
    Out += std::to_string(S.Value);
  }
  return Out;
}

bool closer::parseReplay(const std::string &Text,
                         std::vector<ReplayStep> &Out) {
  Out.clear();
  std::istringstream In(Text);
  std::string Token;
  while (In >> Token) {
    if (Token.size() < 2)
      return false;
    ReplayStep Step;
    switch (Token[0]) {
    case 's':
      Step.K = ReplayStep::Kind::Sched;
      break;
    case 't':
      Step.K = ReplayStep::Kind::Toss;
      break;
    case 'e':
      Step.K = ReplayStep::Kind::Env;
      break;
    default:
      return false;
    }
    char *End = nullptr;
    Step.Value = std::strtoll(Token.c_str() + 1, &End, 10);
    if (!End || *End != '\0')
      return false;
    Out.push_back(Step);
  }
  return true;
}

namespace {

/// Feeds recorded toss/env choices; falls back to 0 (and marks the run
/// unfaithful) when the recording runs dry or disagrees in kind.
class StepProvider : public ChoiceProvider {
public:
  StepProvider(const std::vector<ReplayStep> &Steps, size_t &Cursor,
               bool &Faithful)
      : Steps(Steps), Cursor(Cursor), Faithful(Faithful) {}

  int64_t choose(ChoiceKind Kind, int64_t Bound) override {
    ReplayStep::Kind Want = Kind == ChoiceKind::Toss ? ReplayStep::Kind::Toss
                                                     : ReplayStep::Kind::Env;
    if (Cursor >= Steps.size() || Steps[Cursor].K != Want) {
      Faithful = false;
      return 0;
    }
    int64_t V = Steps[Cursor++].Value;
    if (V < 0 || V > Bound) {
      Faithful = false;
      return 0;
    }
    return V;
  }

private:
  const std::vector<ReplayStep> &Steps;
  size_t &Cursor;
  bool &Faithful;
};

} // namespace

ReplayResult closer::replayChoices(const Module &Mod,
                                   const std::vector<ReplayStep> &Steps,
                                   SystemOptions Options) {
  ReplayResult Result;
  size_t Cursor = 0;
  StepProvider Provider(Steps, Cursor, Result.Faithful);

  System Sys(Mod, Options);
  ExecResult Init = Sys.reset(Provider);
  Result.Violations = Init.Violations;
  if (!Init.ok()) {
    Result.Error = Init.Error;
    Result.TraceOut = Sys.trace();
    Result.Final = Sys.classify();
    return Result;
  }

  while (Cursor < Steps.size()) {
    const ReplayStep &Step = Steps[Cursor];
    if (Step.K != ReplayStep::Kind::Sched) {
      // A toss/env step at scheduling position: recording out of sync.
      Result.Faithful = false;
      break;
    }
    int P = static_cast<int>(Step.Value);
    if (P < 0 || P >= Sys.processCount() || !Sys.processEnabled(P)) {
      Result.Faithful = false;
      break;
    }
    ++Cursor;
    ExecResult R = Sys.executeTransition(P, Provider);
    Result.Violations.insert(Result.Violations.end(), R.Violations.begin(),
                             R.Violations.end());
    if (!R.ok()) {
      Result.Error = R.Error;
      break;
    }
  }
  if (Cursor != Steps.size())
    Result.Faithful = false;

  Result.TraceOut = Sys.trace();
  Result.Final = Sys.classify();
  return Result;
}
