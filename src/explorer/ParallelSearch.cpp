//===- ParallelSearch.cpp - Work-sharing parallel stateless search ---------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "explorer/ParallelSearch.h"

#include "vm/Bytecode.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <unordered_set>

using namespace closer;

//===----------------------------------------------------------------------===//
// Monitor
//===----------------------------------------------------------------------===//

/// Observability sidecar thread: periodically snapshots the lock-free
/// counters in SharedSearchControl for `--progress` lines, and raises the
/// cooperative stop flag when the wall-clock budget expires or an external
/// stop flag (SIGINT) is set. Workers are never blocked by it — they only
/// ever see relaxed atomic loads/stores.
class ParallelExplorer::Monitor {
public:
  Monitor(const SearchOptions &Opts, SharedSearchControl &Control,
          ExploreScheduler *Sched)
      : Opts(Opts), Control(Control), Sched(Sched) {}

  ~Monitor() { stop(); }

  /// Whether these options need a monitor thread at all.
  static bool wanted(const SearchOptions &Opts) {
    return Opts.ProgressIntervalSeconds > 0 || Opts.TimeBudgetSeconds > 0 ||
           Opts.ExternalStop != nullptr;
  }

  void start() {
    if (!wanted(Opts) || T.joinable())
      return;
    Begin = std::chrono::steady_clock::now();
    T = std::thread([this] { loop(); });
  }

  void stop() {
    if (!T.joinable())
      return;
    {
      std::lock_guard<std::mutex> Lock(M);
      Done = true;
    }
    // Exactly one waiter exists — the monitor thread itself — so a
    // targeted wakeup is all that is needed (no broadcast anywhere on the
    // shutdown path).
    CV.notify_one();
    T.join();
  }

  /// True when this monitor raised the stop flag (budget or external).
  bool interrupted() const {
    return Interrupted.load(std::memory_order_acquire);
  }

private:
  void triggerStop() {
    Interrupted.store(true, std::memory_order_release);
    Control.Stop.store(true, std::memory_order_release);
    if (Sched)
      Sched->requestStop(); // Targeted unparks; workers observe Stop.
  }

  void emitProgress(double Elapsed, double Dt, uint64_t States,
                    uint64_t Trans, uint64_t LastStates, uint64_t LastTrans) {
    if (Dt <= 0)
      Dt = 1;
    // Cache traffic is appended only for cached runs, pre-formatted so the
    // line below still goes out in one fprintf call (concurrent report
    // printing cannot shear it).
    char CacheBuf[128] = "";
    if (Opts.stateCacheEnabled())
      std::snprintf(
          CacheBuf, sizeof(CacheBuf),
          " cache-hits=%llu cache-inserts=%llu cache-saturated=%llu",
          static_cast<unsigned long long>(
              Control.CacheHits.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              Control.CacheInserts.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              Control.CacheSaturated.load(std::memory_order_relaxed)));
    std::fprintf(
        stderr,
        "progress: t=%.1fs states=%llu states/s=%.0f transitions=%llu "
        "trans/s=%.0f depth=%llu frontier=%zu runs=%llu reports=%llu%s\n",
        Elapsed, static_cast<unsigned long long>(States),
        static_cast<double>(States - LastStates) / Dt,
        static_cast<unsigned long long>(Trans),
        static_cast<double>(Trans - LastTrans) / Dt,
        static_cast<unsigned long long>(
            Control.MaxDepthSeen.load(std::memory_order_relaxed)),
        Sched ? Sched->queuedHint() : static_cast<size_t>(0),
        static_cast<unsigned long long>(
            Control.Runs.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            Control.Reports.load(std::memory_order_relaxed)),
        CacheBuf);
  }

  void loop() {
    // Poll fast enough that budgets and Ctrl-C feel immediate even when
    // the progress interval is long (or progress is off).
    double PollS = 0.05;
    if (Opts.ProgressIntervalSeconds > 0)
      PollS = std::min(PollS, Opts.ProgressIntervalSeconds / 2);
    const auto Poll = std::chrono::duration<double>(std::max(PollS, 0.001));

    double NextProgress = Opts.ProgressIntervalSeconds;
    double LastElapsed = 0;
    uint64_t LastStates = 0, LastTrans = 0;

    std::unique_lock<std::mutex> Lock(M);
    for (;;) {
      if (CV.wait_for(Lock, Poll, [this] { return Done; }))
        return;
      double Elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - Begin)
                           .count();
      if (!interrupted()) {
        if (Opts.ExternalStop &&
            Opts.ExternalStop->load(std::memory_order_relaxed))
          triggerStop();
        else if (Opts.TimeBudgetSeconds > 0 &&
                 Elapsed >= Opts.TimeBudgetSeconds)
          triggerStop();
      }
      if (Opts.ProgressIntervalSeconds > 0 && Elapsed >= NextProgress) {
        uint64_t States = Control.StatesVisited.load(std::memory_order_relaxed);
        uint64_t Trans = Control.Transitions.load(std::memory_order_relaxed);
        emitProgress(Elapsed, Elapsed - LastElapsed, States, Trans,
                     LastStates, LastTrans);
        LastStates = States;
        LastTrans = Trans;
        LastElapsed = Elapsed;
        NextProgress = Elapsed + Opts.ProgressIntervalSeconds;
      }
    }
  }

  const SearchOptions &Opts;
  SharedSearchControl &Control;
  ExploreScheduler *Sched;
  std::chrono::steady_clock::time_point Begin;
  std::thread T;
  std::mutex M;
  std::condition_variable CV;
  bool Done = false;
  std::atomic<bool> Interrupted{false};
};

//===----------------------------------------------------------------------===//
// ParallelExplorer
//===----------------------------------------------------------------------===//

ParallelExplorer::ParallelExplorer(const Module &Mod, SearchOptions Options)
    : Mod(Mod), Options(std::move(Options)) {
  // Soundness, not a preference: a sleep set summarizes what *this path*
  // already covered, but a shared visited cache prunes across paths. A
  // state skipped here because of the sleep set would be cache-pruned at
  // its other arrivals and never explored at all.
  if (this->Options.stateCacheEnabled())
    this->Options.UseSleepSets = false;
}

ParallelExplorer::~ParallelExplorer() = default;

/// The replay step that selects option \p Option of decision \p D.
ReplayStep ParallelExplorer::stepFor(const Explorer::Decision &D,
                                     size_t Option) {
  ReplayStep S;
  switch (D.K) {
  case Explorer::Decision::Kind::Sched:
    S.K = ReplayStep::Kind::Sched;
    S.Value = D.Procs[Option];
    break;
  case Explorer::Decision::Kind::Toss:
    S.K = ReplayStep::Kind::Toss;
    S.Value = static_cast<int64_t>(Option);
    break;
  case Explorer::Decision::Kind::Env:
    S.K = ReplayStep::Kind::Env;
    S.Value = static_cast<int64_t>(Option);
    break;
  }
  return S;
}

namespace {

uint64_t reportKey(const ErrorReport &R) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  Mix(static_cast<uint64_t>(R.Kind));
  for (const ReplayStep &S : R.Choices) {
    Mix(static_cast<uint64_t>(S.K) + 1);
    Mix(static_cast<uint64_t>(S.Value) + 0x9e3779b9ull);
  }
  return H;
}

/// Report identity under state caching: the same erroneous state can be
/// reached freshly along different choice sequences (by different workers,
/// or sequentially before its fingerprint lands in the cache), so reports
/// deduplicate by the state and the error details instead of by path.
uint64_t stateReportKey(const ErrorReport &R) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  Mix(static_cast<uint64_t>(R.Kind));
  Mix(R.StateFp);
  Mix(static_cast<uint64_t>(R.Error.Kind));
  Mix(static_cast<uint64_t>(R.Process) + 0x9e3779b9ull);
  Mix(static_cast<uint64_t>(R.Loc.Line) << 32 |
      static_cast<uint64_t>(R.Loc.Column));
  return H;
}

void accumulate(SearchStats &Into, const SearchStats &From) {
  Into.Runs += From.Runs;
  Into.Transitions += From.Transitions;
  Into.TreeTransitions += From.TreeTransitions;
  Into.TransitionsReplayed += From.TransitionsReplayed;
  Into.TransitionsRestored += From.TransitionsRestored;
  Into.StatesVisited += From.StatesVisited;
  Into.Deadlocks += From.Deadlocks;
  Into.Terminations += From.Terminations;
  Into.AssertionViolations += From.AssertionViolations;
  Into.Divergences += From.Divergences;
  Into.RuntimeErrors += From.RuntimeErrors;
  Into.DepthLimitHits += From.DepthLimitHits;
  Into.SleepSetPrunes += From.SleepSetPrunes;
  Into.HashPrunes += From.HashPrunes;
  Into.CacheHits += From.CacheHits;
  Into.CacheInserts += From.CacheInserts;
  Into.CacheSaturated += From.CacheSaturated;
  Into.ReportsDropped += From.ReportsDropped;
  Into.Steals += From.Steals;
  Into.Wakeups += From.Wakeups;
  Into.ArenaBytes += From.ArenaBytes;
  Into.PoolFresh += From.PoolFresh;
}

} // namespace

bool ParallelExplorer::donateOne(Explorer &Ex, ExploreScheduler &Sched,
                                 int W) {
  // Donate from the highest (closest to the work-item root) decision with
  // untried siblings: that is the largest parcel of remaining work, which
  // is what keeps skewed trees balanced. The donated option is taken from
  // the tail of the sibling range so the donor's own left-to-right DFS
  // order is unaffected.
  for (size_t I = Ex.Floor; I < Ex.Path.size(); ++I) {
    Explorer::Decision &D = Ex.Path[I];
    size_t End = D.ownedOptionEnd();
    if (D.Chosen + 1 >= End)
      continue;
    WorkItem Item;
    Item.FreshFrom = I;
    Item.Prefix.reserve(I + 1);
    for (size_t J = 0; J != I; ++J)
      Item.Prefix.push_back(stepFor(Ex.Path[J], Ex.Path[J].Chosen));
    Item.Prefix.push_back(stepFor(D, End - 1));
    // Ship the deepest checkpoint at or below the donation point: its
    // snapshot is the state before Path[Cursor] with the current choices
    // [0, Cursor), which are exactly the prefix steps just serialized
    // (Cursor <= I, and backtracking can only have changed choices at or
    // above the checkpoint's own cursor, which pops it first). The
    // receiver then replays Prefix[Cursor..] instead of the whole prefix.
    for (auto It = Ex.Ckpts.rbegin(); It != Ex.Ckpts.rend(); ++It) {
      if (It->Cursor > I)
        continue;
      if (It->Cursor > 0) {
        Item.HasSnap = true;
        Item.SnapCursor = It->Cursor;
        Item.SnapSleep = It->Sleep;
        // Checkpoints are trace-light; the receiver's trace is unrelated
        // to ours, so ship a full copy (valid here for the same reason the
        // checkpoint itself is: the prefix it covers is still in force).
        Item.Snap = Ex.Sys.materializeTrace(It->Snap);
      }
      break;
    }
    ++D.DonatedTail;
    // The parcel goes to the donor's own deque (a thief steals it from the
    // top) and exactly one parked worker is woken. A donation racing a
    // stop still lands on the deque: workers exit without claiming it, and
    // drainRemaining() hands it to the resume-prefix collector — the
    // subtree is reported as abandoned, never silently lost.
    Sched.donate(W, std::move(Item));
    return true;
  }
  return false;
}

void ParallelExplorer::driveExplorer(Explorer &Ex, ExploreScheduler *Sched,
                                     int W) {
  // Donation throttling is demand-driven (Scheduler::wantDonation): a
  // parcel is shed only while more workers are parked than parcels are
  // queued. This supersedes the fixed DonateBackoff counter the old shared
  // work queue needed — that constant existed because every donation paid
  // a mutex round-trip and a broadcast wakeup, so donors had to ration
  // blindly. A donation now costs one lock-free deque push and at most one
  // targeted unpark, and the throttle reacts to actual demand: zero
  // donations while everyone is busy, immediate ones when a sibling
  // starves, with no tuning knob to mis-set.
  for (;;) {
    bool Continue = Ex.runOnce();
    ++Ex.Stats.Runs;
    uint64_t TotalRuns = Control.Runs.fetch_add(1, std::memory_order_relaxed) + 1;
    if (Options.MaxRuns && TotalRuns >= Options.MaxRuns)
      Ex.requestStop();
    if (!Continue || Ex.stopRequested()) {
      // A cooperative stop cut this path short; remember the in-flight
      // choice prefix so an interrupted run can name its abandoned
      // subtrees (`replay:` resume lines).
      if (Ex.stopRequested())
        Ex.LastInFlight = Ex.currentChoices();
      return;
    }
    if (!Ex.backtrack())
      return;
    if (Sched && Sched->wantDonation())
      donateOne(Ex, *Sched, W);
  }
}

void ParallelExplorer::workerMain(Explorer &Ex, ExploreScheduler &Sched,
                                  int W) {
  WorkItem Item;
  while (Sched.next(W, Item)) {
    if (Item.HasSnap)
      Ex.beginSubtree(std::move(Item.Prefix), Item.FreshFrom,
                      std::move(Item.Snap), Item.SnapCursor,
                      std::move(Item.SnapSleep));
    else
      Ex.beginSubtree(std::move(Item.Prefix), Item.FreshFrom);
    driveExplorer(Ex, &Sched, W);
    // The parcel is retired whether its subtree was exhausted or abandoned
    // under a stop; the last retirement declares the run drained.
    Sched.finishItem();
    if (Ex.stopRequested()) {
      Sched.requestStop();
      break;
    }
  }
  // Scheduler traffic and allocator counters become part of this worker's
  // stats (and of the merged totals). Both are owner-written, so reading
  // them on the worker's own thread is race-free.
  const sched::WorkerCounters &C = Sched.counters(W);
  Ex.Stats.Steals = C.Steals;
  Ex.Stats.Wakeups = C.Wakeups;
  Ex.syncAllocStats();
}

void ParallelExplorer::mergeResults(const std::vector<Explorer *> &Parts) {
  Stats = SearchStats();
  Reports.clear();
  Covered.clear();
  PerWorker.clear();

  // Under caching the same erroneous state can be freshly reached along
  // different paths before its fingerprint lands in the table, so dedup by
  // state identity; otherwise the choice sequence is the identity.
  const bool ByState = Options.stateCacheEnabled();
  std::unordered_set<uint64_t> SeenReports;
  for (Explorer *Ex : Parts) {
    PerWorker.push_back(Ex->Stats);
    accumulate(Stats, Ex->Stats);
    Covered.insert(Ex->CoveredOps.begin(), Ex->CoveredOps.end());
    for (ErrorReport &R : Ex->Reports) {
      uint64_t Key = ByState ? stateReportKey(R) : reportKey(R);
      if (!SeenReports.insert(Key).second)
        continue; // Same error reported twice — keep one.
      Reports.push_back(std::move(R));
    }
  }

  // Deterministic report order regardless of worker scheduling: shallow
  // errors first, ties broken by the replayable choice sequence.
  std::sort(Reports.begin(), Reports.end(),
            [](const ErrorReport &A, const ErrorReport &B) {
              if (A.Depth != B.Depth)
                return A.Depth < B.Depth;
              return replayToString(A.Choices) < replayToString(B.Choices);
            });
  if (Reports.size() > Options.MaxReports) {
    Stats.ReportsDropped += Reports.size() - Options.MaxReports;
    Reports.resize(Options.MaxReports);
  }

  if (Options.TrackCoverage) {
    for (const ProcCfg &Proc : Mod.Procs)
      for (const CfgNode &Node : Proc.Nodes)
        Stats.VisibleOpsTotal += Node.isVisibleOp();
    Stats.VisibleOpsCovered = Covered.size();
  }
}

void ParallelExplorer::collectResume(
    std::vector<std::vector<ReplayStep>> InFlight,
    std::vector<WorkItem> Unclaimed) {
  Resume.clear();
  std::unordered_set<std::string> Seen;
  auto Add = [&](std::vector<ReplayStep> P) {
    if (P.empty())
      return;
    if (!Seen.insert(replayToString(P)).second)
      return;
    Resume.push_back(std::move(P));
  };
  for (std::vector<ReplayStep> &P : InFlight)
    Add(std::move(P));
  for (WorkItem &I : Unclaimed)
    Add(std::move(I.Prefix));
  // Deepest abandoned path first; ties broken by the replay string so the
  // order is independent of worker scheduling.
  std::sort(Resume.begin(), Resume.end(),
            [](const std::vector<ReplayStep> &A,
               const std::vector<ReplayStep> &B) {
              if (A.size() != B.size())
                return A.size() > B.size();
              return replayToString(A) < replayToString(B);
            });
}

SearchStats ParallelExplorer::run() {
  const auto Begin = std::chrono::steady_clock::now();
  auto Elapsed = [&Begin] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Begin)
        .count();
  };
  Resume.clear();

  // One shared fingerprint table per run: every explorer (the sequential
  // one, the seeder, and all workers) consults the same cache, so a state
  // expanded anywhere is pruned everywhere. Rebuilt fresh each run —
  // stale fingerprints from a previous run would prune unsoundly.
  Cache.reset();
  if (Options.stateCacheEnabled())
    Cache = std::make_unique<StateCache>(Options.effectiveStateCacheBits());

  if (Options.Jobs <= 1) {
    Explorer Ex(Mod, Options);
    Ex.Cache = Cache.get();
    // Observability (progress counters, budgets, SIGINT) rides on the
    // shared-control atomics; attach them only when asked for, so an
    // unobserved sequential run keeps its atomic-free hot path.
    const bool Observed = Monitor::wanted(Options);
    Monitor Mon(Options, Control, nullptr);
    if (Observed) {
      Control.resetCounters();
      Ex.Shared = &Control;
      Mon.start();
    }
    Ex.run();
    Mon.stop();
    std::vector<Explorer *> Parts{&Ex};
    mergeResults(Parts);
    Stats.Completed = Ex.stats().Completed;
    // mergeResults re-derives coverage; keep the sequential run's numbers.
    Stats.VisibleOpsTotal = Ex.stats().VisibleOpsTotal;
    Stats.VisibleOpsCovered = Ex.stats().VisibleOpsCovered;
    Stats.Interrupted = Mon.interrupted() && !Stats.Completed;
    Stats.WallSeconds = Elapsed();
    if (!Stats.Completed)
      collectResume({Ex.LastInFlight}, {});
    return Stats;
  }

  Control.resetCounters();

  const int Jobs = static_cast<int>(Options.Jobs);
  // The scheduler and monitor exist for the whole run — including the
  // sequential seeding phase, which a time budget or Ctrl-C must also be
  // able to interrupt.
  ExploreScheduler Sched(Jobs);
  Monitor Mon(Options, Control, &Sched);
  Mon.start();

  // Phase 1 — sequential seeding: expand the tree to the split depth,
  // collecting the frontier prefixes. The seeder owns (counts, reports)
  // everything strictly above the frontier; each frontier node and its
  // subtree belong to the worker that claims the prefix.
  size_t SplitDepth = Options.SplitDepth;
  if (SplitDepth == 0) {
    SplitDepth = 3;
    for (size_t J = 1; J < Options.Jobs; J <<= 1)
      ++SplitDepth;
  }

  std::vector<std::vector<ReplayStep>> Frontier;
  Explorer Seeder(Mod, Options);
  Seeder.Cache = Cache.get();
  Seeder.Shared = &Control;
  Seeder.FrontierSink = &Frontier;
  Seeder.FrontierDepth = SplitDepth;
  driveExplorer(Seeder, nullptr, 0);
  Seeder.FrontierSink = nullptr;
  Seeder.syncAllocStats();

  // Phase 2 — parallel subtree exhaustion with work stealing. The frontier
  // is dealt round-robin across the per-worker deques before any worker
  // thread starts, so everyone begins with local work and stealing only
  // kicks in once the initial shares go uneven.
  {
    int Target = 0;
    for (std::vector<ReplayStep> &Prefix : Frontier) {
      WorkItem Item;
      Item.FreshFrom = Prefix.size(); // Replay of the prefix is never fresh.
      Item.Prefix = std::move(Prefix);
      Sched.seed(Target, std::move(Item));
      Target = (Target + 1) % Jobs;
    }
  }

  std::vector<std::unique_ptr<Explorer>> Workers;
  Workers.reserve(static_cast<size_t>(Jobs));
  for (int W = 0; W != Jobs; ++W) {
    Workers.push_back(std::make_unique<Explorer>(Mod, Options));
    Workers.back()->Cache = Cache.get();
    Workers.back()->Shared = &Control;
  }

  if (Control.Stop.load(std::memory_order_acquire))
    Sched.requestStop(); // Budget/first error already hit while seeding.

  {
    std::vector<std::thread> Threads;
    Threads.reserve(static_cast<size_t>(Jobs));
    for (int W = 0; W != Jobs; ++W)
      Threads.emplace_back(
          [this, &Sched, W, Ex = Workers[static_cast<size_t>(W)].get()] {
            workerMain(*Ex, Sched, W);
          });
    for (std::thread &T : Threads)
      T.join();
  }

  Mon.stop();

  std::vector<Explorer *> Parts;
  Parts.push_back(&Seeder);
  for (std::unique_ptr<Explorer> &W : Workers)
    Parts.push_back(W.get());
  mergeResults(Parts);
  Stats.Completed = !Control.Stop.load(std::memory_order_acquire);
  Stats.Interrupted = Mon.interrupted() && !Stats.Completed;
  Stats.WallSeconds = Elapsed();
  if (!Stats.Completed) {
    std::vector<std::vector<ReplayStep>> InFlight;
    for (Explorer *Ex : Parts)
      InFlight.push_back(std::move(Ex->LastInFlight));
    collectResume(std::move(InFlight), Sched.drainRemaining());
  }
  return Stats;
}

//===----------------------------------------------------------------------===//
// closer::explore — the one search entry point
//===----------------------------------------------------------------------===//

SearchResult closer::explore(const Module &Mod, const SearchOptions &Options) {
  SearchOptions Opts = Options;
  // Normalize before constructing the backend so the options recorded in
  // the result describe the search that actually ran. Jobs == 0 means one
  // worker per hardware thread; the resolved count lands in
  // SearchResult::Options (and from there in the stats-json artifact).
  if (Opts.Jobs == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    Opts.Jobs = HW ? HW : 1;
    if (Opts.Jobs > 1024)
      Opts.Jobs = 1024; // validate()'s ceiling; absurd HW reports exist.
  }
  if (Opts.stateCacheEnabled()) {
    Opts.UseSleepSets = false; // Unsound with a cross-path visited cache.
    // Fold the deprecated boolean alias into the explicit bit count.
    Opts.StateCacheBits = Opts.effectiveStateCacheBits();
    Opts.UseStateHashing = true;
  }
  // Compile the bytecode once; the seeder and every worker share the
  // immutable module while owning their own register files.
  if (Opts.Exec != ExecMode::Interp && !Opts.VmCode)
    Opts.VmCode = vm::compileModule(Mod);

  ParallelExplorer Ex(Mod, Opts);
  SearchResult R;
  R.Options = std::move(Opts);
  R.Stats = Ex.run();
  R.Reports = Ex.reports();
  R.Workers = Ex.workerStats();
  R.Resume = Ex.resumePrefixes();
  R.Uncovered = Ex.uncoveredVisibleOps();
  return R;
}

std::vector<std::pair<std::string, NodeId>>
ParallelExplorer::uncoveredVisibleOps() const {
  std::vector<std::pair<std::string, NodeId>> Out;
  for (size_t P = 0, E = Mod.Procs.size(); P != E; ++P) {
    const ProcCfg &Proc = Mod.Procs[P];
    for (size_t I = 0, N = Proc.Nodes.size(); I != N; ++I) {
      if (!Proc.Nodes[I].isVisibleOp())
        continue;
      uint64_t Key = (static_cast<uint64_t>(P) << 32) | I;
      if (!Covered.count(Key))
        Out.push_back({Proc.Name, static_cast<NodeId>(I)});
    }
  }
  return Out;
}
