//===- ParallelSearch.h - Work-sharing parallel stateless search -*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel VeriSoft-style search. Stateless exploration is embarrassingly
/// parallel: a recorded choice prefix fully determines the subtree below
/// it, so disjoint prefixes can be exhausted by independent workers, each
/// owning a private System replaying from the initial state.
///
///  * a sequential seeding pass expands the search tree to a split depth
///    and seeds the frontier prefixes round-robin across per-worker
///    work-stealing deques (sched/Scheduler.h);
///  * N workers claim prefixes — own deque first, then stealing — and run
///    the ordinary bounded DFS below them, pinned so backtracking never
///    escapes the claimed subtree;
///  * an idle worker parks on a wait node after its steal sweep fails;
///    busy workers donate the highest unexplored sibling prefix of their
///    current path whenever more workers are parked than parcels are
///    queued, each donation waking exactly one sleeper, so load stays
///    balanced on skewed trees without broadcast wakeups;
///  * the MaxRuns/MaxStates budgets and the StopOnFirstError stop flag
///    live in shared atomics consulted at every replay step;
///  * per-worker SearchStats are merged at exit, and ErrorReports are
///    deduplicated by a hash of their choice sequence (by the erroneous
///    state's fingerprint under state caching, where distinct paths can
///    report the same state);
///  * under state caching, all workers share one concurrent fingerprint
///    table (explorer/StateCache.h), so a state expanded by any worker is
///    pruned everywhere else.
///
/// Without caching, the result is bit-identical to the sequential
/// Explorer's on every tree-shaped statistic (states, tree transitions,
/// leaf classification) and reports the same error set, independent of
/// worker scheduling, because the work items partition the search tree
/// exactly. Under caching, the *report set* stays deterministic for
/// truncation-free runs while visit order and replay-effort stats may
/// vary; see docs/ALGORITHM.md "Concurrent state caching".
///
/// This class is an implementation detail of closer::explore() (Search.h):
/// construct it directly only in tests that exercise the backend itself.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_EXPLORER_PARALLELSEARCH_H
#define CLOSER_EXPLORER_PARALLELSEARCH_H

#include "explorer/Search.h"
#include "sched/Scheduler.h"

#include <memory>
#include <vector>

namespace closer {

class ParallelExplorer {
public:
  ParallelExplorer(const Module &Mod, SearchOptions Options = {});
  ~ParallelExplorer();

  /// Runs the exploration to completion (or budget exhaustion) on
  /// Options.Jobs worker threads. Jobs <= 1 runs the sequential Explorer.
  /// State caching is legal with any job count: the workers share one
  /// concurrent fingerprint table.
  SearchStats run();

  const std::vector<ErrorReport> &reports() const { return Reports; }
  const SearchStats &stats() const { return Stats; }

  /// Per-part statistics of the last run: element 0 is the seeding pass
  /// (or the single explorer of a sequential run), then one entry per
  /// worker thread. Summing them reproduces stats() up to the
  /// merge-derived fields (coverage, Completed/Interrupted/WallSeconds).
  const std::vector<SearchStats> &workerStats() const { return PerWorker; }

  /// When the last run was stopped cooperatively (time budget, SIGINT, or
  /// a hard budget), the choice prefixes of the abandoned subtrees:
  /// every worker's deepest in-flight path plus the unclaimed work items,
  /// deepest first. Each is replayable (`closer replay`) and names a
  /// subtree a by-hand resumption would still have to explore. Empty for
  /// completed runs.
  const std::vector<std::vector<ReplayStep>> &resumePrefixes() const {
    return Resume;
  }

  /// Visible-operation call sites never exercised by the last run, merged
  /// over all workers.
  std::vector<std::pair<std::string, NodeId>> uncoveredVisibleOps() const;

private:
  /// A claimed unit of work: explore the whole subtree under Prefix.
  /// Decisions at index >= FreshFrom have not been executed by any other
  /// worker and count as fresh for stats/report purposes.
  ///
  /// When the donor held a checkpoint at or below the donation point, a
  /// copy rides along (HasSnap): the receiver restores Snap and replays
  /// only Prefix[SnapCursor..] instead of re-executing the whole prefix
  /// from the initial state. Without it, a work item donated at depth d
  /// costs d replayed transitions before any fresh exploration starts,
  /// which dominates the wall clock of deep, donation-heavy runs.
  struct WorkItem {
    std::vector<ReplayStep> Prefix;
    size_t FreshFrom = 0;
    bool HasSnap = false;
    /// Number of leading Prefix steps Snap already covers; Snap is the
    /// state *before* Prefix[SnapCursor] executes, with SnapSleep the
    /// sleep set in force there (empty when sleep sets are off).
    size_t SnapCursor = 0;
    std::vector<int> SnapSleep;
    SystemSnapshot Snap;
  };

  /// The scheduler instantiation this explorer runs on: per-worker
  /// Chase–Lev deques of WorkItems plus a parking lot for idle workers.
  using ExploreScheduler = sched::Scheduler<WorkItem>;

  class Monitor;

  /// Exhausts the explorer's current (sub)tree: runOnce/backtrack loop
  /// with shared-budget accounting, donating work while workers starve.
  /// \p Sched is null for the sequential seeding pass; \p W is the calling
  /// worker's scheduler index.
  void driveExplorer(Explorer &Ex, ExploreScheduler *Sched, int W);
  void workerMain(Explorer &Ex, ExploreScheduler &Sched, int W);
  /// Moves one unexplored sibling subtree from Ex's path to worker \p W's
  /// deque (whence an idle worker steals it).
  static bool donateOne(Explorer &Ex, ExploreScheduler &Sched, int W);
  /// The replay step selecting option \p Option of decision \p D.
  static ReplayStep stepFor(const Explorer::Decision &D, size_t Option);
  void mergeResults(const std::vector<Explorer *> &Parts);

  /// Gathers the abandoned-subtree prefixes of a cooperatively stopped
  /// run into Resume (deepest first, deduplicated).
  void collectResume(std::vector<std::vector<ReplayStep>> InFlight,
                     std::vector<WorkItem> Unclaimed);

  const Module &Mod;
  SearchOptions Options;
  SharedSearchControl Control;
  SearchStats Stats;
  std::vector<ErrorReport> Reports;
  std::vector<SearchStats> PerWorker;
  std::vector<std::vector<ReplayStep>> Resume;
  std::unordered_set<uint64_t> Covered; ///< Union of worker coverage sets.
  /// The shared visited-state table when caching is on (rebuilt per run).
  std::unique_ptr<StateCache> Cache;
};

} // namespace closer

#endif // CLOSER_EXPLORER_PARALLELSEARCH_H
