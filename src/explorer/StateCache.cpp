//===- StateCache.cpp - Concurrent bounded fingerprint table ----------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "explorer/StateCache.h"

#include <algorithm>

using namespace closer;

StateCache::StateCache(unsigned Bits) {
  Bits = std::min(std::max(Bits, MinBits), MaxBits);
  SlotCount = uint64_t{1} << Bits;

  // Shard so that (a) concurrent inserts usually land in different shards
  // and (b) a shard still holds enough slots that linear probing behaves.
  // 64 shards saturate any realistic worker count; tiny tables degenerate
  // to a single shard.
  unsigned ShardBits = Bits >= 10 ? 6 : (Bits > MinBits ? Bits - MinBits : 0);
  Shards = 1u << ShardBits;
  ShardSlots = SlotCount >> ShardBits;
  ShardMask = ShardSlots - 1;
  // A generous window: long enough that saturation only triggers when the
  // shard really is nearly full, short enough to bound the cost of probing
  // a full shard.
  ProbeLimit = std::min<uint64_t>(ShardSlots, 64);

  Slots = std::make_unique<std::atomic<uint64_t>[]>(SlotCount);
  for (uint64_t I = 0; I != SlotCount; ++I)
    Slots[I].store(0, std::memory_order_relaxed);
  Fill = std::make_unique<ShardCount[]>(Shards);
}

StateCache::Insert StateCache::insert(uint64_t Fp) {
  const uint64_t K = key(Fp);
  // High bits pick the shard, low bits the slot within it: fingerprints
  // are FNV-mixed already, so both selections are well distributed and
  // independent of each other.
  const uint64_t Shard = (K >> (64 - 6)) & (Shards - 1);
  std::atomic<uint64_t> *Base = Slots.get() + Shard * ShardSlots;

  for (uint64_t I = 0; I != ProbeLimit; ++I) {
    std::atomic<uint64_t> &Slot = Base[(K + I) & ShardMask];
    uint64_t V = Slot.load(std::memory_order_relaxed);
    if (V == K)
      return Insert::Present;
    if (V == 0) {
      uint64_t Expected = 0;
      if (Slot.compare_exchange_strong(Expected, K,
                                       std::memory_order_relaxed)) {
        Fill[Shard].N.fetch_add(1, std::memory_order_relaxed);
        return Insert::Inserted;
      }
      if (Expected == K)
        return Insert::Present; // Lost the race to an equal fingerprint.
      // A different fingerprint claimed the slot first; keep probing.
    }
  }
  // Probe window exhausted: the shard is (locally) full. The caller treats
  // the state as unseen and keeps searching — over-approximation is sound.
  return Insert::Saturated;
}

bool StateCache::contains(uint64_t Fp) const {
  const uint64_t K = key(Fp);
  const uint64_t Shard = (K >> (64 - 6)) & (Shards - 1);
  const std::atomic<uint64_t> *Base = Slots.get() + Shard * ShardSlots;
  for (uint64_t I = 0; I != ProbeLimit; ++I) {
    uint64_t V = Base[(K + I) & ShardMask].load(std::memory_order_relaxed);
    if (V == K)
      return true;
    if (V == 0)
      return false;
  }
  return false;
}

uint64_t StateCache::entries() const {
  uint64_t Total = 0;
  for (unsigned S = 0; S != Shards; ++S)
    Total += Fill[S].N.load(std::memory_order_relaxed);
  return Total;
}
