//===- Value.h - Runtime values and addresses ------------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values of MiniC processes. A value is an integer, an address
/// (into the executing process's own memory — processes share no memory,
/// only communication objects), or the distinguished *unknown* value left
/// behind where the closing transformation eliminated environment data.
///
/// Unknown obeys a one-point taint lattice: arithmetic and comparisons
/// involving unknown yield unknown; branching on unknown is a checked
/// runtime error (a correctly closed program never does it — Lemma 5);
/// asserting unknown passes (such assertions are "not preserved",
/// Theorem 7).
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_RUNTIME_VALUE_H
#define CLOSER_RUNTIME_VALUE_H

#include <cstdint>
#include <string>

namespace closer {

/// Where an address points inside one process: a global slot or a slot of
/// some stack frame.
struct Address {
  enum class Space : uint8_t { Global, Frame };
  Space Sp = Space::Global;
  uint32_t FrameIndex = 0; ///< Depth in the frame stack (Space::Frame).
  uint32_t SlotIndex = 0;
  int32_t ElemIndex = -1; ///< >= 0 when pointing into an array.

  friend bool operator==(const Address &A, const Address &B) {
    return A.Sp == B.Sp && A.FrameIndex == B.FrameIndex &&
           A.SlotIndex == B.SlotIndex && A.ElemIndex == B.ElemIndex;
  }
};

class Value {
public:
  enum class Kind : uint8_t { Int, Unknown, Pointer };

  Value() : K(Kind::Int), Int(0) {}

  static Value makeInt(int64_t V) {
    Value Result;
    Result.K = Kind::Int;
    Result.Int = V;
    return Result;
  }
  static Value makeUnknown() {
    Value Result;
    Result.K = Kind::Unknown;
    return Result;
  }
  static Value makePointer(Address A) {
    Value Result;
    Result.K = Kind::Pointer;
    Result.Addr = A;
    return Result;
  }

  Kind kind() const { return K; }
  bool isInt() const { return K == Kind::Int; }
  bool isUnknown() const { return K == Kind::Unknown; }
  bool isPointer() const { return K == Kind::Pointer; }

  int64_t asInt() const { return Int; }
  const Address &asPointer() const { return Addr; }

  /// Structural equality (used by trace comparison and state hashing).
  friend bool operator==(const Value &A, const Value &B) {
    if (A.K != B.K)
      return false;
    switch (A.K) {
    case Kind::Int:
      return A.Int == B.Int;
    case Kind::Unknown:
      return true;
    case Kind::Pointer:
      return A.Addr == B.Addr;
    }
    return false;
  }

  /// Renders "42", "'even'", "unknown" or "&[frame f slot s]".
  std::string str() const;

private:
  Kind K;
  int64_t Int = 0;
  Address Addr;
};

} // namespace closer

#endif // CLOSER_RUNTIME_VALUE_H
