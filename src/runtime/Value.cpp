//===- Value.cpp - Runtime values and addresses -----------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "runtime/Value.h"

#include "lang/Lexer.h"

using namespace closer;

std::string Value::str() const {
  switch (K) {
  case Kind::Int: {
    const AtomTable &Atoms = AtomTable::global();
    if (Atoms.isAtom(Int))
      return "'" + Atoms.spelling(Int) + "'";
    return std::to_string(Int);
  }
  case Kind::Unknown:
    return "unknown";
  case Kind::Pointer: {
    std::string Out = "&[";
    Out += Addr.Sp == Address::Space::Global ? "global" : "frame ";
    if (Addr.Sp == Address::Space::Frame)
      Out += std::to_string(Addr.FrameIndex);
    Out += " slot " + std::to_string(Addr.SlotIndex);
    if (Addr.ElemIndex >= 0)
      Out += "[" + std::to_string(Addr.ElemIndex) + "]";
    return Out + "]";
  }
  }
  return "<bad-value>";
}
