//===- System.h - Concurrent-system runtime --------------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable semantics of the paper's §2 framework. A System instance
/// holds a set of processes (each an interpreter over its procedure CFGs,
/// with private globals and a private frame stack — processes share no
/// memory) and the communication objects they synchronize through.
///
/// Execution follows the paper's transition model: a *process transition*
/// is one visible operation followed by the finite sequence of invisible
/// operations up to (but excluding) the next visible operation. The system
/// is in a *global state* when every process is stopped at a visible
/// operation (or halted). An external scheduler — the explorer — selects
/// which enabled process executes its next transition, exactly like
/// VeriSoft's scheduler process.
///
/// Nondeterminism (VS_toss, and environment choices when executing a
/// still-open module) is routed through a ChoiceProvider so the explorer
/// can enumerate and replay choice sequences; the runtime itself is
/// deterministic given the provider.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_RUNTIME_SYSTEM_H
#define CLOSER_RUNTIME_SYSTEM_H

#include "cfg/Cfg.h"
#include "runtime/Trace.h"
#include "runtime/Value.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace closer {

/// Supplies nondeterministic choices to the runtime.
class ChoiceProvider {
public:
  enum class ChoiceKind {
    Toss, ///< VS_toss(n) or a TossBranch outcome.
    Env,  ///< env_input() or an `env` process argument (open modules only).
  };

  virtual ~ChoiceProvider() = default;

  /// Returns a value in [0, Bound]. Bound >= 0.
  virtual int64_t choose(ChoiceKind Kind, int64_t Bound) = 0;
};

/// A ChoiceProvider that always picks 0 (the deterministic "first path").
class ZeroChoiceProvider : public ChoiceProvider {
public:
  int64_t choose(ChoiceKind, int64_t) override { return 0; }
};

struct SystemOptions {
  /// Environment inputs range over [0, EnvDomainBound] when executing an
  /// open module directly (this *is* the most general environment
  /// restricted to a finite domain — the naive-closing baseline).
  int64_t EnvDomainBound = 1;
  /// Invisible operations allowed per transition before the runtime
  /// reports a divergence (VeriSoft's timeout, made deterministic).
  size_t InvisibleStepLimit = 100000;
  /// Maximum frame-stack depth per process.
  size_t StackLimit = 256;
};

enum class RunErrorKind {
  None,
  DivisionByZero,
  IntegerOverflow,  ///< Signed 64-bit overflow in +, -, *, unary -, or
                    ///< INT64_MIN / -1 (and % -1): a deterministic error,
                    ///< never C++ UB. Shared by interpreter and VM.
  BadPointer,       ///< Dereference of a non-pointer or dangling address.
  IndexOutOfBounds,
  UnknownInControl, ///< Branch/index depends on an unknown value: the
                    ///< module was not properly closed.
  Divergence,       ///< Invisible step limit exceeded.
  StackOverflow,
  BadTossBound,
};

struct RunError {
  RunErrorKind Kind = RunErrorKind::None;
  int Process = -1;
  SourceLoc Loc;
  std::string Message;

  explicit operator bool() const { return Kind != RunErrorKind::None; }
  std::string str() const;
};

/// An executed VS_assert whose expression evaluated to zero.
struct AssertionViolation {
  int Process = -1;
  SourceLoc Loc;
};

/// Result of running one process transition (or the initialization run).
struct ExecResult {
  RunError Error;
  std::vector<AssertionViolation> Violations;
  bool ok() const { return !Error; }
};

/// Classification of a global state.
enum class GlobalStateKind {
  HasEnabled,  ///< At least one transition can execute.
  Termination, ///< Every process halted (ran to completion).
  Deadlock,    ///< No transition enabled but some process still waits.
};

/// Name -> slot index resolution, precomputed per procedure: parameters
/// first (in order), then locals (in order). Shared between the System's
/// interpreter and the bytecode compiler so slot indices can never diverge
/// between engines.
struct ProcLayout {
  std::unordered_map<std::string, uint32_t> SlotOf;
  std::vector<int64_t> ArraySizes; ///< Per slot; -1 scalar.
  int RetValSlot = -1;
};

/// Builds the per-procedure layouts for \p Mod (parallel to Mod.Procs).
/// The single source of truth for slot numbering.
std::vector<ProcLayout> buildProcLayouts(const Module &Mod);

class System;
class SystemSnapshot;

namespace vm {
class Vm;
class DifferentialEngine;
} // namespace vm

/// A pluggable transition-execution engine. The System owns the state
/// (stores, frames, communication objects, trace); an engine is only an
/// alternative way of running the code against that state. The default
/// (no engine installed) is the built-in tree-walking interpreter; the
/// bytecode VM and the interpreter-vs-VM differential oracle implement
/// this interface. Engines must be observationally identical to the
/// interpreter: same state deltas, same choice-provider call sequence,
/// same errors (kind, message, location), same trace events.
class ExecEngine {
public:
  virtual ~ExecEngine() = default;

  /// Executes one process transition of \p P (must be enabled): the
  /// visible operation plus the invisible run to the next visible op.
  virtual ExecResult executeTransition(System &S, int P,
                                       ChoiceProvider &Provider) = 0;

  /// Runs process \p P's invisible prefix to its first visible operation
  /// (the per-process half of reset()).
  virtual ExecResult runPrefix(System &S, int P, ChoiceProvider &Provider) = 0;
};

class System {
public:
  /// Binds the runtime to \p Mod (kept by reference; must outlive the
  /// System) and performs the initial reset with a ZeroChoiceProvider.
  explicit System(const Module &Mod, SystemOptions Options = {});

  /// Reinitializes to the initial global state s0: processes are created
  /// and each runs its invisible prefix to its first visible operation.
  /// Choices made during the prefix come from \p Provider.
  ExecResult reset(ChoiceProvider &Provider);

  int processCount() const { return static_cast<int>(Processes.size()); }

  /// True when process \p P is stopped at a visible operation that is
  /// currently enabled.
  bool processEnabled(int P) const;

  /// Indices of all enabled processes.
  std::vector<int> enabledProcesses() const;

  /// Overwrites \p Out with the enabled-process indices. The hot-path form:
  /// a recycled vector keeps its capacity, so a steady-state search never
  /// allocates here.
  void enabledProcessesInto(std::vector<int> &Out) const;

  GlobalStateKind classify() const;

  /// Executes one process transition of \p P (which must be enabled):
  /// the visible operation plus the invisible run to the next visible
  /// operation. Dispatches to the installed engine, or the built-in
  /// interpreter when none is set.
  ExecResult executeTransition(int P, ChoiceProvider &Provider);

  /// Installs a pluggable execution engine (nullptr restores the built-in
  /// tree-walking interpreter). Not owned; must outlive this System.
  void setEngine(ExecEngine *E) { Engine = E; }
  ExecEngine *engine() const { return Engine; }

  /// Always runs the built-in interpreter, regardless of the installed
  /// engine. The differential oracle uses these to compare engines.
  ExecResult interpTransition(int P, ChoiceProvider &Provider);
  ExecResult interpPrefix(int P, ChoiceProvider &Provider);

  /// Visible events executed since the last reset.
  const Trace &trace() const { return EventTrace; }

  /// Number of transitions executed since the last reset (search depth).
  size_t depth() const { return NumTransitions; }

  //===--------------------------------------------------------------------===//
  // Checkpointing
  //===--------------------------------------------------------------------===//

  /// Captures the full dynamic state (per-process frames/slots/PCs,
  /// communication objects, trace, transition count) as a value. Intended
  /// to be taken at transition boundaries (no execution in flight), where
  /// it is an exact substitute for re-executing the choice prefix that led
  /// here: restore() followed by the same transitions is indistinguishable
  /// from a fresh reset-and-replay, including fingerprints and traces.
  SystemSnapshot snapshot() const;

  /// Like snapshot(), but records only the event trace's length instead of
  /// copying it: O(state) instead of O(depth). Restoring such a snapshot
  /// truncates the live trace, which is only correct while this System
  /// stays on the DFS path the snapshot was taken on (see SystemSnapshot).
  SystemSnapshot snapshotLight() const;

  /// Completes a snapshotLight() result into a full, shippable snapshot by
  /// copying the first TraceLen events of the current trace. Only valid
  /// while the light snapshot is restorable here (same-path requirement):
  /// then the live trace's prefix is exactly the trace at capture time.
  SystemSnapshot materializeTrace(const SystemSnapshot &Light) const;

  /// In-place variants of the three capture operations above. They
  /// overwrite \p S instead of building a fresh snapshot, so a pooled
  /// (recycled) snapshot's process/comm/trace buffers are reused by
  /// element-wise copy assignment — the steady-state checkpointing path
  /// allocates nothing. Semantically identical to the by-value forms.
  void snapshotInto(SystemSnapshot &S) const;
  void snapshotLightInto(SystemSnapshot &S) const;
  void materializeTraceInto(const SystemSnapshot &Light,
                            SystemSnapshot &Out) const;

  /// Restores the state captured by snapshot(). The snapshot must come
  /// from a System bound to the same Module (any instance for full
  /// snapshots; the capturing instance, still on the capture path, for
  /// light ones).
  void restore(const SystemSnapshot &S);

  //===--------------------------------------------------------------------===//
  // Introspection for the explorer
  //===--------------------------------------------------------------------===//

  /// Index into Module.Comms of the object process \p P's pending visible
  /// operation touches, or -1 (VS_assert, halt, or halted process).
  int currentVisibleObject(int P) const;

  /// The builtin of process \p P's pending visible operation, or None when
  /// halted.
  BuiltinKind currentVisibleOp(int P) const;

  /// The frame stack of process \p P as (procedure index, node id) pairs,
  /// outermost first — the input to the static footprint analysis.
  std::vector<std::pair<int, NodeId>> frameStack(int P) const;

  /// Overwrites \p Out with process \p P's frame stack (capacity-reusing
  /// hot-path form of frameStack()).
  void frameStackInto(int P, std::vector<std::pair<int, NodeId>> &Out) const;

  /// 64-bit FNV-1a fingerprint of the full global state (process control
  /// points, stores, communication objects). Used by the state-hashing
  /// ablation.
  uint64_t fingerprint() const;

  const Module &module() const { return Mod; }

private:
  struct Slot {
    bool IsArray = false;
    Value Scalar;
    std::vector<Value> Elems;
  };

  struct Frame {
    int ProcIdx = -1;
    NodeId PC = 0;
    std::vector<Slot> Slots;
  };

  enum class ProcStatus { AtVisible, Halted };

  struct ProcessRT {
    ProcStatus Status = ProcStatus::Halted;
    std::vector<Slot> Globals;
    std::vector<Frame> Frames;
  };

  struct CommState {
    CommKind Kind;
    std::deque<Value> Items; ///< Channel contents.
    int64_t Count = 0;       ///< Semaphore count.
    Value Shared;            ///< Shared-variable value.
  };

  // Evaluation. On error, sets PendingError and returns a zero value;
  // callers bail out when PendingError is set.
  Value eval(ProcessRT &P, const Expr *E);
  Value loadVar(ProcessRT &P, const Expr *E);
  Slot *resolveSlotSlow(ProcessRT &P, const std::string &Name,
                        Frame **OwnerFrame);
  Slot *resolveSlot(ProcessRT &P, const Expr *E, Frame **OwnerFrame);
  Value loadAddress(ProcessRT &P, const Address &A);
  void storeAddress(ProcessRT &P, const Address &A, Value V);
  bool addressOf(ProcessRT &P, const Expr *Place, Address &Out);
  void store(ProcessRT &P, const Expr *Lvalue, Value V);
  bool truthy(ProcessRT &P, const Value &V, SourceLoc Loc);

  // Control flow.
  void advanceAlways(ProcessRT &P);
  void haltProcess(ProcessRT &P) {
    P.Status = ProcStatus::Halted;
    P.Frames.clear();
  }
  ExecResult runInvisible(int PIdx, ChoiceProvider &Provider);
  void execVisible(int PIdx, ChoiceProvider &Provider, ExecResult &Result);

  void fail(RunErrorKind Kind, SourceLoc Loc, const std::string &Message);

  const CfgNode &currentNode(const ProcessRT &P) const {
    const Frame &F = P.Frames.back();
    return Mod.Procs[F.ProcIdx].Nodes[F.PC];
  }

  // Steady-state interpretation must not hash strings: variable references
  // and communication-object operands are resolved once, at construction,
  // into pointer-keyed caches (an Expr always executes with its owning
  // procedure's frame on top, so the resolution is unambiguous).
  void buildResolutionCaches();
  void cacheExprTree(int ProcIdx, const Expr *E);
  /// Communication-object index of a visible Call node (-1 if unknown).
  int commOf(const CfgNode &Node) const {
    auto It = CommIdxCache.find(&Node);
    return It != CommIdxCache.end() ? It->second
                                    : Mod.commIndex(Node.Args[0]->Name);
  }

  const Module &Mod;
  SystemOptions Options;
  std::vector<ProcLayout> Layouts; ///< Parallel to Mod.Procs.
  /// VarRef/ArrayIndex expression -> slot code: >= 0 is a frame slot index
  /// of the owning procedure's layout; < 0 encodes global slot ~code.
  std::unordered_map<const Expr *, int32_t> VarSlotCache;
  /// Visible/comm Call node -> index into Mod.Comms.
  std::unordered_map<const CfgNode *, int> CommIdxCache;
  std::vector<ProcessRT> Processes;
  std::vector<CommState> Comms; ///< Parallel to Mod.Comms.
  Trace EventTrace;
  size_t NumTransitions = 0;
  RunError PendingError;
  int CurrentProcess = -1; ///< During execution, for error attribution.
  ExecEngine *Engine = nullptr; ///< Not owned; null = interpreter.

  friend class SystemSnapshot;
  // The bytecode VM executes compiled transitions against this state
  // directly (same stores, same error protocol) instead of duplicating it.
  friend class vm::Vm;
  // The oracle re-runs transitions on both engines from a snapshot; it must
  // preserve PendingError across the restore between the two legs.
  friend class vm::DifferentialEngine;
};

/// A value-type copy of a System's full dynamic state, produced by
/// System::snapshot() and consumed by System::restore(). Cheap to copy and
/// assign; the explorer keeps a small stack of these along its DFS path so
/// backtracking can restore a prefix instead of re-executing it.
///
/// Two flavors differ only in how the event trace is captured:
///  * snapshot() stores a full copy — restorable into any System built
///    from the same Module (work items ship these across workers);
///  * snapshotLight() stores just the trace length. Restoring one
///    truncates the live trace to that length, which is only correct when
///    the System is on the same DFS path the snapshot was taken on (the
///    trace is append-only along a path, so the prefix is still intact).
///    This keeps per-checkpoint cost O(state) instead of O(depth) — on
///    deep paths the trace dwarfs the rest of the state.
class SystemSnapshot {
public:
  SystemSnapshot() = default;

  /// Transition count at capture time (the search depth restore() rewinds
  /// to) — what a checkpointed search saves per restore.
  size_t depth() const { return NumTransitions; }

private:
  friend class System;
  std::vector<System::ProcessRT> Processes;
  std::vector<System::CommState> Comms;
  Trace EventTrace;
  size_t TraceLen = 0;
  bool HasTrace = true;
  size_t NumTransitions = 0;
};

} // namespace closer

#endif // CLOSER_RUNTIME_SYSTEM_H
