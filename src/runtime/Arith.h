//===- Arith.h - Checked MiniC integer arithmetic --------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checked 64-bit arithmetic shared by the tree-walking evaluator and the
/// bytecode VM. MiniC integers are 64-bit two's complement, and any
/// operation whose mathematical result does not fit is a deterministic
/// IntegerOverflow runtime error — never C++ undefined behavior. Keeping
/// the checks in one header is what lets the differential oracle demand
/// bit-identical error reports from both engines.
///
/// Each helper returns true on success and writes the result to \p Out;
/// it returns false (leaving \p Out untouched) when the operation would
/// overflow. Division and modulo assume the caller already rejected a zero
/// divisor; the only remaining trap is INT64_MIN / -1 (and INT64_MIN % -1,
/// which C++ also leaves undefined because it is computed via the same
/// division).
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_RUNTIME_ARITH_H
#define CLOSER_RUNTIME_ARITH_H

#include <cstdint>

namespace closer {

inline bool checkedAdd(int64_t A, int64_t B, int64_t &Out) {
#if defined(__GNUC__) || defined(__clang__)
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    return false;
  Out = R;
  return true;
#else
  if ((B > 0 && A > INT64_MAX - B) || (B < 0 && A < INT64_MIN - B))
    return false;
  Out = A + B;
  return true;
#endif
}

inline bool checkedSub(int64_t A, int64_t B, int64_t &Out) {
#if defined(__GNUC__) || defined(__clang__)
  int64_t R;
  if (__builtin_sub_overflow(A, B, &R))
    return false;
  Out = R;
  return true;
#else
  if ((B < 0 && A > INT64_MAX + B) || (B > 0 && A < INT64_MIN + B))
    return false;
  Out = A - B;
  return true;
#endif
}

inline bool checkedMul(int64_t A, int64_t B, int64_t &Out) {
#if defined(__GNUC__) || defined(__clang__)
  int64_t R;
  if (__builtin_mul_overflow(A, B, &R))
    return false;
  Out = R;
  return true;
#else
  if (A != 0 && B != 0) {
    if (A == -1 && B == INT64_MIN)
      return false;
    if (B == -1 && A == INT64_MIN)
      return false;
    int64_t R = A * B; // Unsafe pre-check form for non-GNU compilers.
    if (R / B != A)
      return false;
    Out = R;
    return true;
  }
  Out = 0;
  return true;
#endif
}

inline bool checkedNeg(int64_t A, int64_t &Out) {
  if (A == INT64_MIN)
    return false;
  Out = -A;
  return true;
}

/// \pre B != 0.
inline bool checkedDiv(int64_t A, int64_t B, int64_t &Out) {
  if (A == INT64_MIN && B == -1)
    return false;
  Out = A / B;
  return true;
}

/// \pre B != 0.
inline bool checkedMod(int64_t A, int64_t B, int64_t &Out) {
  if (A == INT64_MIN && B == -1)
    return false;
  Out = A % B;
  return true;
}

} // namespace closer

#endif // CLOSER_RUNTIME_ARITH_H
