//===- Trace.h - Visible-operation traces ----------------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sequences of visible operations, the observable behavior Theorem 6
/// relates between S x E_S and S'. Events carry their payload value; an
/// unknown payload in the closed system matches any concrete payload of the
/// open system (only environment-independent values are preserved).
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_RUNTIME_TRACE_H
#define CLOSER_RUNTIME_TRACE_H

#include "lang/Builtins.h"
#include "runtime/Value.h"

#include <string>
#include <vector>

namespace closer {

/// One executed visible operation.
struct VisibleEvent {
  int ProcessIndex = 0;
  BuiltinKind Op = BuiltinKind::None;
  std::string Object;  ///< Communication object name; empty for VS_assert.
  Value Payload;       ///< Sent/received/written/read/asserted value;
                       ///< Int(0) for semaphore operations.
  bool HasPayload = false;

  std::string str() const;

  /// Exact equality.
  friend bool operator==(const VisibleEvent &A, const VisibleEvent &B) {
    return A.ProcessIndex == B.ProcessIndex && A.Op == B.Op &&
           A.Object == B.Object && A.HasPayload == B.HasPayload &&
           (!A.HasPayload || A.Payload == B.Payload);
  }
};

/// True when closed-system event \p General subsumes open-system event
/// \p Concrete: identical up to payloads, where an unknown payload in
/// \p General matches anything (Theorem 6's preservation relation).
bool eventSubsumes(const VisibleEvent &General, const VisibleEvent &Concrete);

using Trace = std::vector<VisibleEvent>;

/// Lexicographic subsumption over whole traces.
bool traceSubsumes(const Trace &General, const Trace &Concrete);

/// Renders a trace one event per line.
std::string traceToString(const Trace &T);

} // namespace closer

#endif // CLOSER_RUNTIME_TRACE_H
