//===- System.cpp - Concurrent-system runtime --------------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "runtime/System.h"

#include "runtime/Arith.h"

#include <cassert>

using namespace closer;

std::string RunError::str() const {
  if (Kind == RunErrorKind::None)
    return "no error";
  std::string Out = "process " + std::to_string(Process) + ": " + Message;
  if (Loc.isValid())
    Out += " at " + Loc.str();
  return Out;
}

//===----------------------------------------------------------------------===//
// Construction and reset
//===----------------------------------------------------------------------===//

std::vector<ProcLayout> closer::buildProcLayouts(const Module &Mod) {
  std::vector<ProcLayout> Layouts(Mod.Procs.size());
  for (size_t P = 0, E = Mod.Procs.size(); P != E; ++P) {
    const ProcCfg &Proc = Mod.Procs[P];
    ProcLayout &L = Layouts[P];
    uint32_t Index = 0;
    for (const std::string &Param : Proc.Params) {
      L.SlotOf.emplace(Param, Index++);
      L.ArraySizes.push_back(-1);
    }
    for (const LocalVar &Local : Proc.Locals) {
      if (Local.Name == retValName())
        L.RetValSlot = static_cast<int>(Index);
      L.SlotOf.emplace(Local.Name, Index++);
      L.ArraySizes.push_back(Local.ArraySize);
    }
  }
  return Layouts;
}

System::System(const Module &Mod, SystemOptions Options)
    : Mod(Mod), Options(Options) {
  Layouts = buildProcLayouts(Mod);
  buildResolutionCaches();
  ZeroChoiceProvider Zero;
  reset(Zero);
}

//===----------------------------------------------------------------------===//
// Resolution caches
//===----------------------------------------------------------------------===//

void System::cacheExprTree(int ProcIdx, const Expr *E) {
  if (!E)
    return;
  if (E->Kind == ExprKind::VarRef || E->Kind == ExprKind::ArrayIndex) {
    const ProcLayout &L = Layouts[static_cast<size_t>(ProcIdx)];
    auto It = L.SlotOf.find(E->Name);
    if (It != L.SlotOf.end()) {
      VarSlotCache.emplace(E, static_cast<int32_t>(It->second));
    } else {
      for (size_t I = 0, N = Mod.Globals.size(); I != N; ++I)
        if (Mod.Globals[I].Name == E->Name) {
          VarSlotCache.emplace(E, ~static_cast<int32_t>(I));
          break;
        }
      // Unresolvable names stay out of the cache; execution reports them
      // through the slow path exactly as before.
    }
  }
  cacheExprTree(ProcIdx, E->Lhs.get());
  cacheExprTree(ProcIdx, E->Rhs.get());
  for (const ExprPtr &Arg : E->Args)
    cacheExprTree(ProcIdx, Arg.get());
}

void System::buildResolutionCaches() {
  for (size_t P = 0, E = Mod.Procs.size(); P != E; ++P) {
    int ProcIdx = static_cast<int>(P);
    for (const CfgNode &Node : Mod.Procs[P].Nodes) {
      cacheExprTree(ProcIdx, Node.Target.get());
      cacheExprTree(ProcIdx, Node.Value.get());
      for (const ExprPtr &Arg : Node.Args)
        cacheExprTree(ProcIdx, Arg.get());
      if (Node.Kind == CfgNodeKind::Call &&
          builtinInfo(Node.Builtin).TakesObject && !Node.Args.empty()) {
        int Obj = Mod.commIndex(Node.Args[0]->Name);
        if (Obj >= 0)
          CommIdxCache.emplace(&Node, Obj);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Checkpointing
//===----------------------------------------------------------------------===//

SystemSnapshot System::snapshot() const {
  SystemSnapshot S;
  snapshotInto(S);
  return S;
}

SystemSnapshot System::snapshotLight() const {
  SystemSnapshot S;
  snapshotLightInto(S);
  return S;
}

SystemSnapshot System::materializeTrace(const SystemSnapshot &Light) const {
  SystemSnapshot S;
  materializeTraceInto(Light, S);
  return S;
}

void System::snapshotInto(SystemSnapshot &S) const {
  // Copy-assignment into a recycled snapshot reuses the nested vectors'
  // capacity element-wise; this is the whole point of the Into form.
  S.Processes = Processes;
  S.Comms = Comms;
  S.EventTrace = EventTrace;
  S.TraceLen = EventTrace.size();
  S.HasTrace = true;
  S.NumTransitions = NumTransitions;
}

void System::snapshotLightInto(SystemSnapshot &S) const {
  S.Processes = Processes;
  S.Comms = Comms;
  S.EventTrace.clear(); // Keeps capacity; a light snapshot carries no trace.
  S.TraceLen = EventTrace.size();
  S.HasTrace = false;
  S.NumTransitions = NumTransitions;
}

void System::materializeTraceInto(const SystemSnapshot &Light,
                                  SystemSnapshot &Out) const {
  Out.Processes = Light.Processes;
  Out.Comms = Light.Comms;
  Out.TraceLen = Light.TraceLen;
  Out.NumTransitions = Light.NumTransitions;
  if (Light.HasTrace) {
    Out.EventTrace = Light.EventTrace;
  } else {
    assert(EventTrace.size() >= Light.TraceLen &&
           "light snapshot outlived its capture path");
    Out.EventTrace.assign(EventTrace.begin(),
                          EventTrace.begin() +
                              static_cast<ptrdiff_t>(Light.TraceLen));
  }
  Out.HasTrace = true;
}

void System::restore(const SystemSnapshot &S) {
  Processes = S.Processes;
  Comms = S.Comms;
  if (S.HasTrace) {
    EventTrace = S.EventTrace;
  } else {
    // Same-path contract (see SystemSnapshot): the live trace still starts
    // with the events that were in place at capture time, so rewinding is
    // a truncation — no copy of the O(depth) prefix needed.
    assert(EventTrace.size() >= S.TraceLen &&
           "light snapshot restored off its capture path");
    EventTrace.resize(S.TraceLen);
  }
  NumTransitions = S.NumTransitions;
  // Snapshots are taken at transition boundaries, where no error is in
  // flight and no process is mid-execution.
  PendingError = RunError();
  CurrentProcess = -1;
}

ExecResult System::reset(ChoiceProvider &Provider) {
  EventTrace.clear();
  NumTransitions = 0;
  PendingError = RunError();

  Comms.clear();
  for (const CommDecl &Decl : Mod.Comms) {
    CommState S;
    S.Kind = Decl.Kind;
    switch (Decl.Kind) {
    case CommKind::Channel:
      break;
    case CommKind::Semaphore:
      S.Count = Decl.Param;
      break;
    case CommKind::SharedVar:
      S.Shared = Value::makeInt(Decl.Param);
      break;
    }
    Comms.push_back(std::move(S));
  }

  Processes.clear();
  ExecResult Result;
  for (const ProcessDecl &Inst : Mod.Processes) {
    int ProcIdx = Mod.procIndex(Inst.ProcName);
    assert(ProcIdx >= 0 && "verified module");
    const ProcCfg &Proc = Mod.Procs[ProcIdx];
    const ProcLayout &L = Layouts[ProcIdx];

    ProcessRT P;
    P.Status = ProcStatus::AtVisible; // Provisional; fixed by runInvisible.
    P.Globals.reserve(Mod.Globals.size());
    for (const GlobalDecl &G : Mod.Globals) {
      Slot S;
      if (G.ArraySize >= 0) {
        S.IsArray = true;
        S.Elems.assign(static_cast<size_t>(G.ArraySize), Value::makeInt(0));
      } else {
        S.Scalar = Value::makeInt(G.Init);
      }
      P.Globals.push_back(std::move(S));
    }

    Frame F;
    F.ProcIdx = ProcIdx;
    F.PC = Proc.Entry;
    F.Slots.resize(L.ArraySizes.size());
    for (size_t SlotIdx = 0, SE = L.ArraySizes.size(); SlotIdx != SE;
         ++SlotIdx) {
      Slot &S = F.Slots[SlotIdx];
      if (L.ArraySizes[SlotIdx] >= 0) {
        S.IsArray = true;
        S.Elems.assign(static_cast<size_t>(L.ArraySizes[SlotIdx]),
                       Value::makeInt(0));
      } else {
        S.Scalar = Value::makeInt(0);
      }
    }
    // Bind process arguments: constants, or environment choices when the
    // module is still open. A negative environment domain (bad --env-domain
    // configuration) is reported rather than handed to the explorer, where
    // it would wrap into a huge option count.
    for (size_t A = 0, AE = Inst.Args.size(); A != AE; ++A) {
      int64_t V = Inst.Args[A].Value;
      if (Inst.Args[A].IsEnv) {
        if (Options.EnvDomainBound < 0)
          fail(RunErrorKind::BadTossBound, SourceLoc(),
               "environment domain bound must be a nonnegative integer");
        V = PendingError ? 0
                         : Provider.choose(ChoiceProvider::ChoiceKind::Env,
                                           Options.EnvDomainBound);
      }
      F.Slots[A].Scalar = Value::makeInt(V);
    }
    P.Frames.push_back(std::move(F));
    Processes.push_back(std::move(P));
  }

  // Run every process's invisible prefix to its first visible operation,
  // reaching the initial global state s0.
  for (int PIdx = 0, E = processCount(); PIdx != E; ++PIdx) {
    ExecResult R = Engine ? Engine->runPrefix(*this, PIdx, Provider)
                          : runInvisible(PIdx, Provider);
    Result.Violations.insert(Result.Violations.end(), R.Violations.begin(),
                             R.Violations.end());
    if (!R.ok()) {
      Result.Error = R.Error;
      break;
    }
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Errors
//===----------------------------------------------------------------------===//

void System::fail(RunErrorKind Kind, SourceLoc Loc,
                  const std::string &Message) {
  if (PendingError)
    return; // Keep the first error.
  PendingError.Kind = Kind;
  PendingError.Process = CurrentProcess;
  PendingError.Loc = Loc;
  PendingError.Message = Message;
}

//===----------------------------------------------------------------------===//
// Store access
//===----------------------------------------------------------------------===//

System::Slot *System::resolveSlotSlow(ProcessRT &P, const std::string &Name,
                                      Frame **OwnerFrame) {
  Frame &F = P.Frames.back();
  const ProcLayout &L = Layouts[F.ProcIdx];
  auto It = L.SlotOf.find(Name);
  if (It != L.SlotOf.end()) {
    if (OwnerFrame)
      *OwnerFrame = &F;
    return &F.Slots[It->second];
  }
  int GlobalIdx = -1;
  for (size_t I = 0, E = Mod.Globals.size(); I != E; ++I)
    if (Mod.Globals[I].Name == Name) {
      GlobalIdx = static_cast<int>(I);
      break;
    }
  if (GlobalIdx < 0)
    return nullptr;
  if (OwnerFrame)
    *OwnerFrame = nullptr;
  return &P.Globals[GlobalIdx];
}

System::Slot *System::resolveSlot(ProcessRT &P, const Expr *E,
                                  Frame **OwnerFrame) {
  auto It = VarSlotCache.find(E);
  if (It == VarSlotCache.end())
    return resolveSlotSlow(P, E->Name, OwnerFrame);
  int32_t Code = It->second;
  if (Code >= 0) {
    Frame &F = P.Frames.back();
    if (OwnerFrame)
      *OwnerFrame = &F;
    return &F.Slots[static_cast<size_t>(Code)];
  }
  if (OwnerFrame)
    *OwnerFrame = nullptr;
  return &P.Globals[static_cast<size_t>(~Code)];
}

Value System::loadVar(ProcessRT &P, const Expr *E) {
  Slot *S = resolveSlot(P, E, nullptr);
  if (!S) {
    fail(RunErrorKind::BadPointer, SourceLoc(),
         "reference to unknown variable '" + E->Name + "'");
    return Value::makeInt(0);
  }
  if (S->IsArray) {
    fail(RunErrorKind::BadPointer, SourceLoc(),
         "array '" + E->Name + "' used as a scalar");
    return Value::makeInt(0);
  }
  return S->Scalar;
}

bool System::addressOf(ProcessRT &P, const Expr *Place, Address &Out) {
  // Locate the slot and encode its position.
  auto Cached = VarSlotCache.find(Place);
  if (Cached != VarSlotCache.end()) {
    int32_t Code = Cached->second;
    if (Code >= 0) {
      Out.Sp = Address::Space::Frame;
      Out.FrameIndex = static_cast<uint32_t>(P.Frames.size() - 1);
      Out.SlotIndex = static_cast<uint32_t>(Code);
    } else {
      Out.Sp = Address::Space::Global;
      Out.SlotIndex = static_cast<uint32_t>(~Code);
    }
  } else {
    Frame &F = P.Frames.back();
    const ProcLayout &L = Layouts[F.ProcIdx];
    auto It = L.SlotOf.find(Place->Name);
    if (It != L.SlotOf.end()) {
      Out.Sp = Address::Space::Frame;
      Out.FrameIndex = static_cast<uint32_t>(P.Frames.size() - 1);
      Out.SlotIndex = It->second;
    } else {
      int GlobalIdx = -1;
      for (size_t I = 0, E = Mod.Globals.size(); I != E; ++I)
        if (Mod.Globals[I].Name == Place->Name) {
          GlobalIdx = static_cast<int>(I);
          break;
        }
      if (GlobalIdx < 0) {
        fail(RunErrorKind::BadPointer, Place->Loc,
             "address of unknown variable '" + Place->Name + "'");
        return false;
      }
      Out.Sp = Address::Space::Global;
      Out.SlotIndex = static_cast<uint32_t>(GlobalIdx);
    }
  }
  Out.ElemIndex = -1;
  if (Place->Kind == ExprKind::ArrayIndex) {
    Value Idx = eval(P, Place->Lhs.get());
    if (PendingError)
      return false;
    if (!Idx.isInt()) {
      fail(RunErrorKind::UnknownInControl, Place->Loc,
           "array index is not an integer");
      return false;
    }
    Out.ElemIndex = static_cast<int32_t>(Idx.asInt());
  }
  return true;
}

Value System::loadAddress(ProcessRT &P, const Address &A) {
  Slot *S = nullptr;
  if (A.Sp == Address::Space::Global) {
    if (A.SlotIndex >= P.Globals.size()) {
      fail(RunErrorKind::BadPointer, SourceLoc(), "bad global address");
      return Value::makeInt(0);
    }
    S = &P.Globals[A.SlotIndex];
  } else {
    if (A.FrameIndex >= P.Frames.size()) {
      fail(RunErrorKind::BadPointer, SourceLoc(),
           "dangling pointer into a popped frame");
      return Value::makeInt(0);
    }
    Frame &F = P.Frames[A.FrameIndex];
    if (A.SlotIndex >= F.Slots.size()) {
      fail(RunErrorKind::BadPointer, SourceLoc(), "bad frame address");
      return Value::makeInt(0);
    }
    S = &F.Slots[A.SlotIndex];
  }
  if (S->IsArray) {
    if (A.ElemIndex < 0 ||
        static_cast<size_t>(A.ElemIndex) >= S->Elems.size()) {
      fail(RunErrorKind::IndexOutOfBounds, SourceLoc(),
           "array index out of bounds through pointer");
      return Value::makeInt(0);
    }
    return S->Elems[static_cast<size_t>(A.ElemIndex)];
  }
  if (A.ElemIndex > 0) {
    fail(RunErrorKind::BadPointer, SourceLoc(), "element access on scalar");
    return Value::makeInt(0);
  }
  return S->Scalar;
}

void System::storeAddress(ProcessRT &P, const Address &A, Value V) {
  Slot *S = nullptr;
  if (A.Sp == Address::Space::Global) {
    if (A.SlotIndex >= P.Globals.size()) {
      fail(RunErrorKind::BadPointer, SourceLoc(), "bad global address");
      return;
    }
    S = &P.Globals[A.SlotIndex];
  } else {
    if (A.FrameIndex >= P.Frames.size()) {
      fail(RunErrorKind::BadPointer, SourceLoc(),
           "dangling pointer into a popped frame");
      return;
    }
    Frame &F = P.Frames[A.FrameIndex];
    if (A.SlotIndex >= F.Slots.size()) {
      fail(RunErrorKind::BadPointer, SourceLoc(), "bad frame address");
      return;
    }
    S = &F.Slots[A.SlotIndex];
  }
  if (S->IsArray) {
    if (A.ElemIndex < 0 ||
        static_cast<size_t>(A.ElemIndex) >= S->Elems.size()) {
      fail(RunErrorKind::IndexOutOfBounds, SourceLoc(),
           "array index out of bounds through pointer");
      return;
    }
    S->Elems[static_cast<size_t>(A.ElemIndex)] = V;
    return;
  }
  S->Scalar = V;
}

void System::store(ProcessRT &P, const Expr *Lvalue, Value V) {
  switch (Lvalue->Kind) {
  case ExprKind::VarRef: {
    Slot *S = resolveSlot(P, Lvalue, nullptr);
    if (!S) {
      fail(RunErrorKind::BadPointer, Lvalue->Loc,
           "assignment to unknown variable '" + Lvalue->Name + "'");
      return;
    }
    if (S->IsArray) {
      fail(RunErrorKind::BadPointer, Lvalue->Loc,
           "cannot assign to whole array");
      return;
    }
    S->Scalar = V;
    return;
  }
  case ExprKind::ArrayIndex: {
    Address A;
    if (!addressOf(P, Lvalue, A))
      return;
    storeAddress(P, A, V);
    return;
  }
  case ExprKind::Deref: {
    Value Ptr = eval(P, Lvalue->Lhs.get());
    if (PendingError)
      return;
    if (!Ptr.isPointer()) {
      fail(RunErrorKind::BadPointer, Lvalue->Loc,
           "store through a non-pointer value");
      return;
    }
    storeAddress(P, Ptr.asPointer(), V);
    return;
  }
  default:
    fail(RunErrorKind::BadPointer, Lvalue->Loc, "invalid assignment target");
  }
}

//===----------------------------------------------------------------------===//
// Expression evaluation
//===----------------------------------------------------------------------===//

bool System::truthy(ProcessRT &, const Value &V, SourceLoc Loc) {
  if (V.isUnknown()) {
    fail(RunErrorKind::UnknownInControl, Loc,
         "control flow depends on an unknown value (module not closed?)");
    return false;
  }
  if (V.isPointer())
    return true;
  return V.asInt() != 0;
}

Value System::eval(ProcessRT &P, const Expr *E) {
  if (PendingError)
    return Value::makeInt(0);
  switch (E->Kind) {
  case ExprKind::IntLit:
    return Value::makeInt(E->IntValue);
  case ExprKind::Unknown:
    return Value::makeUnknown();
  case ExprKind::VarRef:
    return loadVar(P, E);
  case ExprKind::ArrayIndex: {
    Address A;
    if (!addressOf(P, E, A))
      return Value::makeInt(0);
    return loadAddress(P, A);
  }
  case ExprKind::AddrOf: {
    Address A;
    if (!addressOf(P, E->Lhs.get(), A))
      return Value::makeInt(0);
    return Value::makePointer(A);
  }
  case ExprKind::Deref: {
    Value Ptr = eval(P, E->Lhs.get());
    if (PendingError)
      return Value::makeInt(0);
    if (Ptr.isUnknown())
      return Value::makeUnknown();
    if (!Ptr.isPointer()) {
      fail(RunErrorKind::BadPointer, E->Loc,
           "dereference of a non-pointer value");
      return Value::makeInt(0);
    }
    return loadAddress(P, Ptr.asPointer());
  }
  case ExprKind::Unary: {
    Value V = eval(P, E->Lhs.get());
    if (PendingError)
      return Value::makeInt(0);
    if (V.isUnknown())
      return Value::makeUnknown();
    if (V.isPointer()) {
      fail(RunErrorKind::BadPointer, E->Loc, "arithmetic on a pointer");
      return Value::makeInt(0);
    }
    if (E->UOp == UnaryOp::Neg) {
      int64_t Out;
      if (!checkedNeg(V.asInt(), Out)) {
        fail(RunErrorKind::IntegerOverflow, E->Loc,
             "signed integer overflow in unary '-'");
        return Value::makeInt(0);
      }
      return Value::makeInt(Out);
    }
    return Value::makeInt(V.asInt() == 0 ? 1 : 0);
  }
  case ExprKind::Binary: {
    Value L = eval(P, E->Lhs.get());
    Value R = eval(P, E->Rhs.get());
    if (PendingError)
      return Value::makeInt(0);
    // Pointer equality is the only legal pointer operation.
    if (E->BOp == BinaryOp::Eq || E->BOp == BinaryOp::Ne) {
      if (L.isUnknown() || R.isUnknown())
        return Value::makeUnknown();
      bool Equal = L == R;
      return Value::makeInt((E->BOp == BinaryOp::Eq) == Equal ? 1 : 0);
    }
    if (L.isPointer() || R.isPointer()) {
      fail(RunErrorKind::BadPointer, E->Loc, "arithmetic on a pointer");
      return Value::makeInt(0);
    }
    if (L.isUnknown() || R.isUnknown())
      return Value::makeUnknown();
    int64_t A = L.asInt(), B = R.asInt(), Out;
    switch (E->BOp) {
    case BinaryOp::Add:
      if (!checkedAdd(A, B, Out)) {
        fail(RunErrorKind::IntegerOverflow, E->Loc,
             "signed integer overflow in '+'");
        return Value::makeInt(0);
      }
      return Value::makeInt(Out);
    case BinaryOp::Sub:
      if (!checkedSub(A, B, Out)) {
        fail(RunErrorKind::IntegerOverflow, E->Loc,
             "signed integer overflow in '-'");
        return Value::makeInt(0);
      }
      return Value::makeInt(Out);
    case BinaryOp::Mul:
      if (!checkedMul(A, B, Out)) {
        fail(RunErrorKind::IntegerOverflow, E->Loc,
             "signed integer overflow in '*'");
        return Value::makeInt(0);
      }
      return Value::makeInt(Out);
    case BinaryOp::Div:
      if (B == 0) {
        fail(RunErrorKind::DivisionByZero, E->Loc, "division by zero");
        return Value::makeInt(0);
      }
      if (!checkedDiv(A, B, Out)) {
        fail(RunErrorKind::IntegerOverflow, E->Loc,
             "signed integer overflow in '/'");
        return Value::makeInt(0);
      }
      return Value::makeInt(Out);
    case BinaryOp::Mod:
      if (B == 0) {
        fail(RunErrorKind::DivisionByZero, E->Loc, "modulo by zero");
        return Value::makeInt(0);
      }
      if (!checkedMod(A, B, Out)) {
        fail(RunErrorKind::IntegerOverflow, E->Loc,
             "signed integer overflow in '%'");
        return Value::makeInt(0);
      }
      return Value::makeInt(Out);
    case BinaryOp::Lt:
      return Value::makeInt(A < B);
    case BinaryOp::Le:
      return Value::makeInt(A <= B);
    case BinaryOp::Gt:
      return Value::makeInt(A > B);
    case BinaryOp::Ge:
      return Value::makeInt(A >= B);
    case BinaryOp::And:
      return Value::makeInt((A != 0 && B != 0) ? 1 : 0);
    case BinaryOp::Or:
      return Value::makeInt((A != 0 || B != 0) ? 1 : 0);
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      break; // Handled above.
    }
    return Value::makeInt(0);
  }
  case ExprKind::Call:
    fail(RunErrorKind::BadPointer, E->Loc,
         "call expression reached the evaluator (lowering bug)");
    return Value::makeInt(0);
  }
  return Value::makeInt(0);
}

//===----------------------------------------------------------------------===//
// Control flow
//===----------------------------------------------------------------------===//

/// Follows the single Always arc of the current node, or halts the process
/// when the closing transformation dropped it (|succ(a)| == 0: the original
/// program diverged invisibly here).
void System::advanceAlways(ProcessRT &P) {
  Frame &F = P.Frames.back();
  const CfgNode &Node = Mod.Procs[F.ProcIdx].Nodes[F.PC];
  if (Node.Arcs.empty()) {
    haltProcess(P);
    return;
  }
  F.PC = Node.Arcs[0].Target;
}

ExecResult System::runInvisible(int PIdx, ChoiceProvider &Provider) {
  ExecResult Result;
  ProcessRT &P = Processes[PIdx];
  CurrentProcess = PIdx;
  size_t Steps = 0;

  while (P.Status != ProcStatus::Halted) {
    if (PendingError)
      break;
    if (++Steps > Options.InvisibleStepLimit) {
      fail(RunErrorKind::Divergence, SourceLoc(),
           "invisible step limit exceeded (divergence)");
      break;
    }
    Frame &F = P.Frames.back();
    const ProcCfg &Proc = Mod.Procs[F.ProcIdx];
    const CfgNode &Node = Proc.Nodes[F.PC];

    switch (Node.Kind) {
    case CfgNodeKind::Start:
      advanceAlways(P);
      break;

    case CfgNodeKind::Assign: {
      Value V = eval(P, Node.Value.get());
      if (PendingError)
        break;
      store(P, Node.Target.get(), V);
      if (PendingError)
        break;
      advanceAlways(P);
      break;
    }

    case CfgNodeKind::Branch: {
      Value C = eval(P, Node.Value.get());
      if (PendingError)
        break;
      bool Taken = truthy(P, C, Node.Loc);
      if (PendingError)
        break;
      F.PC = Node.Arcs[Taken ? 0 : 1].Target;
      break;
    }

    case CfgNodeKind::Switch: {
      Value V = eval(P, Node.Value.get());
      if (PendingError)
        break;
      if (!V.isInt()) {
        fail(RunErrorKind::UnknownInControl, Node.Loc,
             "switch on a non-integer value");
        break;
      }
      NodeId Target = InvalidNode;
      NodeId DefaultTarget = InvalidNode;
      for (const CfgArc &Arc : Node.Arcs) {
        if (Arc.Kind == ArcKind::CaseEq && Arc.Value == V.asInt()) {
          Target = Arc.Target;
          break;
        }
        if (Arc.Kind == ArcKind::CaseDefault)
          DefaultTarget = Arc.Target;
      }
      F.PC = Target != InvalidNode ? Target : DefaultTarget;
      assert(F.PC != InvalidNode && "switch must have a default arc");
      break;
    }

    case CfgNodeKind::TossBranch: {
      if (Node.TossBound < 0) {
        // A malformed (or corrupted) closed program; report it instead of
        // letting the explorer enumerate a wrapped-around option range.
        fail(RunErrorKind::BadTossBound, Node.Loc,
             "toss branch bound must be a nonnegative integer");
        break;
      }
      int64_t Choice = Provider.choose(ChoiceProvider::ChoiceKind::Toss,
                                       Node.TossBound);
      assert(Choice >= 0 && Choice <= Node.TossBound && "bad toss choice");
      NodeId Target = InvalidNode;
      for (const CfgArc &Arc : Node.Arcs)
        if (Arc.Value == Choice) {
          Target = Arc.Target;
          break;
        }
      assert(Target != InvalidNode && "toss arcs cover all outcomes");
      F.PC = Target;
      break;
    }

    case CfgNodeKind::Return: {
      Value RetVal = Value::makeInt(0);
      const ProcLayout &L = Layouts[F.ProcIdx];
      if (L.RetValSlot >= 0)
        RetVal = F.Slots[static_cast<size_t>(L.RetValSlot)].Scalar;
      P.Frames.pop_back();
      if (P.Frames.empty()) {
        // Top-level termination: blocking forever (paper §4 assumption).
        haltProcess(P);
        break;
      }
      Frame &Caller = P.Frames.back();
      const CfgNode &CallNode =
          Mod.Procs[Caller.ProcIdx].Nodes[Caller.PC];
      assert(CallNode.Kind == CfgNodeKind::Call && "caller not at a call");
      if (CallNode.Target) {
        store(P, CallNode.Target.get(), RetVal);
        if (PendingError)
          break;
      }
      advanceAlways(P);
      break;
    }

    case CfgNodeKind::Call: {
      if (Node.isVisibleOp()) {
        // Transition boundary: stop just before the visible operation.
        P.Status = ProcStatus::AtVisible;
        return Result;
      }
      switch (Node.Builtin) {
      case BuiltinKind::VsToss: {
        Value Bound = eval(P, Node.Args[0].get());
        if (PendingError)
          break;
        if (!Bound.isInt() || Bound.asInt() < 0) {
          fail(RunErrorKind::BadTossBound, Node.Loc,
               "VS_toss bound must be a nonnegative integer");
          break;
        }
        int64_t V = Provider.choose(ChoiceProvider::ChoiceKind::Toss,
                                    Bound.asInt());
        if (Node.Target) {
          store(P, Node.Target.get(), Value::makeInt(V));
          if (PendingError)
            break;
        }
        advanceAlways(P);
        break;
      }
      case BuiltinKind::EnvInput: {
        if (Options.EnvDomainBound < 0) {
          fail(RunErrorKind::BadTossBound, Node.Loc,
               "environment domain bound must be a nonnegative integer");
          break;
        }
        int64_t V = Provider.choose(ChoiceProvider::ChoiceKind::Env,
                                    Options.EnvDomainBound);
        if (Node.Target) {
          store(P, Node.Target.get(), Value::makeInt(V));
          if (PendingError)
            break;
        }
        advanceAlways(P);
        break;
      }
      case BuiltinKind::EnvOutput: {
        // The most general environment accepts any output.
        (void)eval(P, Node.Args[0].get());
        if (PendingError)
          break;
        advanceAlways(P);
        break;
      }
      case BuiltinKind::None: {
        // User procedure call: push a frame.
        if (P.Frames.size() >= Options.StackLimit) {
          fail(RunErrorKind::StackOverflow, Node.Loc,
               "frame stack limit exceeded");
          break;
        }
        int CalleeIdx = Mod.procIndex(Node.Callee);
        assert(CalleeIdx >= 0 && "verified module");
        const ProcCfg &Callee = Mod.Procs[CalleeIdx];
        const ProcLayout &CalleeLayout = Layouts[CalleeIdx];

        Frame NewFrame;
        NewFrame.ProcIdx = CalleeIdx;
        NewFrame.PC = Callee.Entry;
        NewFrame.Slots.resize(CalleeLayout.ArraySizes.size());
        for (size_t SlotIdx = 0, SE = CalleeLayout.ArraySizes.size();
             SlotIdx != SE; ++SlotIdx) {
          Slot &S = NewFrame.Slots[SlotIdx];
          if (CalleeLayout.ArraySizes[SlotIdx] >= 0) {
            S.IsArray = true;
            S.Elems.assign(
                static_cast<size_t>(CalleeLayout.ArraySizes[SlotIdx]),
                Value::makeInt(0));
          } else {
            S.Scalar = Value::makeInt(0);
          }
        }
        for (size_t A = 0, AE = Node.Args.size(); A != AE; ++A) {
          Value V = eval(P, Node.Args[A].get());
          if (PendingError)
            break;
          NewFrame.Slots[A].Scalar = V;
        }
        if (PendingError)
          break;
        P.Frames.push_back(std::move(NewFrame));
        break;
      }
      default:
        assert(false && "visible builtins handled above");
      }
      break;
    }
    }
  }

  if (PendingError) {
    Result.Error = PendingError;
    PendingError = RunError();
    haltProcess(P);
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Visible operations
//===----------------------------------------------------------------------===//

int System::currentVisibleObject(int P) const {
  const ProcessRT &Proc = Processes[P];
  if (Proc.Status != ProcStatus::AtVisible)
    return -1;
  const CfgNode &Node = currentNode(Proc);
  if (!builtinInfo(Node.Builtin).TakesObject)
    return -1;
  return commOf(Node);
}

BuiltinKind System::currentVisibleOp(int P) const {
  const ProcessRT &Proc = Processes[P];
  if (Proc.Status != ProcStatus::AtVisible)
    return BuiltinKind::None;
  return currentNode(Proc).Builtin;
}

bool System::processEnabled(int P) const {
  const ProcessRT &Proc = Processes[P];
  if (Proc.Status != ProcStatus::AtVisible)
    return false;
  const CfgNode &Node = currentNode(Proc);
  switch (Node.Builtin) {
  case BuiltinKind::Send: {
    int Obj = commOf(Node);
    return static_cast<int64_t>(Comms[Obj].Items.size()) <
           Mod.Comms[Obj].Param;
  }
  case BuiltinKind::Recv: {
    int Obj = commOf(Node);
    return !Comms[Obj].Items.empty();
  }
  case BuiltinKind::SemWait: {
    int Obj = commOf(Node);
    return Comms[Obj].Count > 0;
  }
  case BuiltinKind::SemSignal:
  case BuiltinKind::SharedWrite:
  case BuiltinKind::SharedRead:
  case BuiltinKind::VsAssert:
    return true;
  case BuiltinKind::Halt:
    return false;
  default:
    assert(false && "process stopped at a non-visible operation");
    return false;
  }
}

std::vector<int> System::enabledProcesses() const {
  std::vector<int> Result;
  enabledProcessesInto(Result);
  return Result;
}

void System::enabledProcessesInto(std::vector<int> &Out) const {
  Out.clear();
  for (int P = 0, E = processCount(); P != E; ++P)
    if (processEnabled(P))
      Out.push_back(P);
}

GlobalStateKind System::classify() const {
  bool AnyWaiting = false;
  for (int P = 0, E = processCount(); P != E; ++P) {
    if (processEnabled(P))
      return GlobalStateKind::HasEnabled;
    const ProcessRT &Proc = Processes[P];
    // A process parked at halt() or finished counts as terminated; one
    // blocked on a communication operation makes the state a deadlock.
    if (Proc.Status == ProcStatus::AtVisible &&
        currentNode(Proc).Builtin != BuiltinKind::Halt)
      AnyWaiting = true;
  }
  return AnyWaiting ? GlobalStateKind::Deadlock : GlobalStateKind::Termination;
}

void System::execVisible(int PIdx, ChoiceProvider &, ExecResult &Result) {
  ProcessRT &P = Processes[PIdx];
  const CfgNode &Node = currentNode(P);

  VisibleEvent Event;
  Event.ProcessIndex = PIdx;
  Event.Op = Node.Builtin;
  if (builtinInfo(Node.Builtin).TakesObject)
    Event.Object = Node.Args[0]->Name;

  switch (Node.Builtin) {
  case BuiltinKind::Send: {
    int Obj = commOf(Node);
    Value V = eval(P, Node.Args[1].get());
    if (PendingError)
      break;
    Comms[Obj].Items.push_back(V);
    Event.Payload = V;
    Event.HasPayload = true;
    break;
  }
  case BuiltinKind::Recv: {
    int Obj = commOf(Node);
    assert(!Comms[Obj].Items.empty() && "recv on empty channel");
    Value V = Comms[Obj].Items.front();
    Comms[Obj].Items.pop_front();
    if (Node.Target)
      store(P, Node.Target.get(), V);
    Event.Payload = V;
    Event.HasPayload = true;
    break;
  }
  case BuiltinKind::SemWait: {
    int Obj = commOf(Node);
    assert(Comms[Obj].Count > 0 && "wait on zero semaphore");
    --Comms[Obj].Count;
    break;
  }
  case BuiltinKind::SemSignal: {
    int Obj = commOf(Node);
    ++Comms[Obj].Count;
    break;
  }
  case BuiltinKind::SharedWrite: {
    int Obj = commOf(Node);
    Value V = eval(P, Node.Args[1].get());
    if (PendingError)
      break;
    Comms[Obj].Shared = V;
    Event.Payload = V;
    Event.HasPayload = true;
    break;
  }
  case BuiltinKind::SharedRead: {
    int Obj = commOf(Node);
    Value V = Comms[Obj].Shared;
    if (Node.Target)
      store(P, Node.Target.get(), V);
    Event.Payload = V;
    Event.HasPayload = true;
    break;
  }
  case BuiltinKind::VsAssert: {
    Value V = eval(P, Node.Args[0].get());
    if (PendingError)
      break;
    // An unknown assertion argument means the assertion was not preserved
    // by the transformation (Theorem 7); it never fires.
    if (V.isInt() && V.asInt() == 0)
      Result.Violations.push_back({PIdx, Node.Loc});
    Event.Payload = V;
    Event.HasPayload = true;
    break;
  }
  default:
    assert(false && "not a visible operation");
  }

  if (!PendingError)
    EventTrace.push_back(std::move(Event));
}

ExecResult System::executeTransition(int PIdx, ChoiceProvider &Provider) {
  if (Engine)
    return Engine->executeTransition(*this, PIdx, Provider);
  return interpTransition(PIdx, Provider);
}

ExecResult System::interpPrefix(int PIdx, ChoiceProvider &Provider) {
  return runInvisible(PIdx, Provider);
}

ExecResult System::interpTransition(int PIdx, ChoiceProvider &Provider) {
  assert(processEnabled(PIdx) && "executing a disabled transition");
  ExecResult Result;
  CurrentProcess = PIdx;
  ProcessRT &P = Processes[PIdx];

  execVisible(PIdx, Provider, Result);
  if (PendingError) {
    Result.Error = PendingError;
    PendingError = RunError();
    haltProcess(P);
    return Result;
  }
  advanceAlways(P);
  ++NumTransitions;

  ExecResult Tail = runInvisible(PIdx, Provider);
  Result.Violations.insert(Result.Violations.end(), Tail.Violations.begin(),
                           Tail.Violations.end());
  if (!Tail.ok())
    Result.Error = Tail.Error;
  return Result;
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

std::vector<std::pair<int, NodeId>> System::frameStack(int P) const {
  std::vector<std::pair<int, NodeId>> Out;
  frameStackInto(P, Out);
  return Out;
}

void System::frameStackInto(int P,
                            std::vector<std::pair<int, NodeId>> &Out) const {
  Out.clear();
  for (const Frame &F : Processes[P].Frames)
    Out.push_back({F.ProcIdx, F.PC});
}

namespace {

struct Fnv1a {
  uint64_t H = 1469598103934665603ull;
  void mix(uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  }
  void mixValue(const Value &V) {
    mix(static_cast<uint64_t>(V.kind()));
    switch (V.kind()) {
    case Value::Kind::Int:
      mix(static_cast<uint64_t>(V.asInt()));
      break;
    case Value::Kind::Unknown:
      break;
    case Value::Kind::Pointer: {
      const Address &A = V.asPointer();
      mix(static_cast<uint64_t>(A.Sp));
      mix(A.FrameIndex);
      mix(A.SlotIndex);
      mix(static_cast<uint64_t>(static_cast<int64_t>(A.ElemIndex)));
      break;
    }
    }
  }
};

} // namespace

uint64_t System::fingerprint() const {
  Fnv1a H;
  for (const ProcessRT &P : Processes) {
    H.mix(static_cast<uint64_t>(P.Status));
    for (const Slot &S : P.Globals) {
      if (S.IsArray)
        for (const Value &V : S.Elems)
          H.mixValue(V);
      else
        H.mixValue(S.Scalar);
    }
    for (const Frame &F : P.Frames) {
      H.mix(static_cast<uint64_t>(F.ProcIdx));
      H.mix(F.PC);
      for (const Slot &S : F.Slots) {
        if (S.IsArray)
          for (const Value &V : S.Elems)
            H.mixValue(V);
        else
          H.mixValue(S.Scalar);
      }
    }
  }
  for (const CommState &C : Comms) {
    H.mix(static_cast<uint64_t>(C.Kind));
    H.mix(static_cast<uint64_t>(C.Count));
    H.mixValue(C.Shared);
    H.mix(C.Items.size());
    for (const Value &V : C.Items)
      H.mixValue(V);
  }
  return H.H;
}
