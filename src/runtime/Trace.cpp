//===- Trace.cpp - Visible-operation traces ---------------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "runtime/Trace.h"

using namespace closer;

std::string VisibleEvent::str() const {
  std::string Out = "P" + std::to_string(ProcessIndex) + ":";
  Out += builtinInfo(Op).Name;
  if (!Object.empty())
    Out += "(" + Object + ")";
  if (HasPayload)
    Out += "=" + Payload.str();
  return Out;
}

bool closer::eventSubsumes(const VisibleEvent &General,
                           const VisibleEvent &Concrete) {
  if (General.ProcessIndex != Concrete.ProcessIndex ||
      General.Op != Concrete.Op || General.Object != Concrete.Object ||
      General.HasPayload != Concrete.HasPayload)
    return false;
  if (!General.HasPayload)
    return true;
  if (General.Payload.isUnknown())
    return true;
  return General.Payload == Concrete.Payload;
}

bool closer::traceSubsumes(const Trace &General, const Trace &Concrete) {
  if (General.size() != Concrete.size())
    return false;
  for (size_t I = 0, E = General.size(); I != E; ++I)
    if (!eventSubsumes(General[I], Concrete[I]))
      return false;
  return true;
}

std::string closer::traceToString(const Trace &T) {
  std::string Out;
  for (const VisibleEvent &E : T) {
    Out += E.str();
    Out += '\n';
  }
  return Out;
}
