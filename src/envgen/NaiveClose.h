//===- NaiveClose.h - Naive most-general-environment closing ---*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline the paper argues against (§3): closing an open system by
/// pairing it with an explicit most general environment E_S that supplies
/// *every possible input value* — here restricted to the finite domain
/// [0, DomainBound], since the unrestricted environment is infinitely
/// branching and not executable at all.
///
/// Concretely the rewrite keeps all of S's logic and materializes E_S's
/// choices in place:
///
///  * `x = env_input()`            becomes `x = VS_toss(DomainBound)`;
///  * `env_output(e)`              becomes a sink assignment (E_S accepts
///                                 any output);
///  * `process P = f(env, ...)`    gains a wrapper procedure that tosses
///                                 the environment-provided arguments.
///
/// The result is closed and explorable, but its state space grows with the
/// input domain — experiment E3 quantifies the contrast with the paper's
/// transformation, whose state space is domain-independent.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_ENVGEN_NAIVECLOSE_H
#define CLOSER_ENVGEN_NAIVECLOSE_H

#include "cfg/Cfg.h"

namespace closer {

struct NaiveCloseOptions {
  /// Environment inputs range over [0, DomainBound].
  int64_t DomainBound = 1;
};

/// Statistics for one naive closing run.
struct NaiveCloseStats {
  size_t EnvInputsRewritten = 0;
  size_t EnvOutputsRewritten = 0;
  size_t WrappersSynthesized = 0;
};

/// Returns the naive closed form of \p Mod.
Module naiveCloseModule(const Module &Mod, const NaiveCloseOptions &Options,
                        NaiveCloseStats *Stats = nullptr);

} // namespace closer

#endif // CLOSER_ENVGEN_NAIVECLOSE_H
