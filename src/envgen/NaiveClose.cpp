//===- NaiveClose.cpp - Naive most-general-environment closing -------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "envgen/NaiveClose.h"

#include <cassert>
#include <string>

using namespace closer;

/// Name of the sink local absorbing env_output payloads.
static const char *envSinkName() { return "__envsink"; }

Module closer::naiveCloseModule(const Module &Mod,
                                const NaiveCloseOptions &Options,
                                NaiveCloseStats *Stats) {
  NaiveCloseStats Local;
  NaiveCloseStats &S = Stats ? *Stats : Local;

  Module Out = Mod.clone();

  // Rewrite env_input / env_output nodes in place.
  for (ProcCfg &Proc : Out.Procs) {
    bool NeedsSink = false;
    for (CfgNode &Node : Proc.Nodes) {
      if (Node.Kind != CfgNodeKind::Call)
        continue;
      if (Node.Builtin == BuiltinKind::EnvInput) {
        Node.Builtin = BuiltinKind::VsToss;
        Node.Callee = "VS_toss";
        Node.Args.clear();
        Node.Args.push_back(Expr::intLit(Options.DomainBound, Node.Loc));
        ++S.EnvInputsRewritten;
        continue;
      }
      if (Node.Builtin == BuiltinKind::EnvOutput) {
        // E_S accepts any output: turn the emission into a sink assignment
        // so the payload expression is still evaluated.
        CfgNode Replacement;
        Replacement.Kind = CfgNodeKind::Assign;
        Replacement.Loc = Node.Loc;
        Replacement.Target = Expr::varRef(envSinkName(), Node.Loc);
        Replacement.Value = Node.Args[0]->clone();
        Replacement.Arcs = Node.Arcs;
        Node = std::move(Replacement);
        NeedsSink = true;
        ++S.EnvOutputsRewritten;
      }
    }
    if (NeedsSink && !Proc.isLocal(envSinkName()))
      Proc.Locals.push_back({envSinkName(), -1});
  }

  // Wrap processes that receive environment-provided arguments.
  for (ProcessDecl &Inst : Out.Processes) {
    bool HasEnvArg = false;
    for (const ProcessArg &Arg : Inst.Args)
      HasEnvArg |= Arg.IsEnv;
    if (!HasEnvArg)
      continue;

    [[maybe_unused]] const ProcCfg *Target = Out.findProc(Inst.ProcName);
    assert(Target && "verified module");

    ProcCfg Wrapper;
    Wrapper.Name = "__env_" + Inst.Name;
    // Locals a0..aN hold the argument values.
    for (size_t A = 0, AE = Inst.Args.size(); A != AE; ++A)
      Wrapper.Locals.push_back({"a" + std::to_string(A), -1});

    CfgNode Start;
    Start.Kind = CfgNodeKind::Start;
    Start.Arcs.push_back({ArcKind::Always, 0, 1});
    Wrapper.Nodes.push_back(std::move(Start));

    NodeId Next = 1;
    for (size_t A = 0, AE = Inst.Args.size(); A != AE; ++A) {
      CfgNode Init;
      Init.Loc = Inst.Loc;
      Init.Target = Expr::varRef("a" + std::to_string(A));
      if (Inst.Args[A].IsEnv) {
        Init.Kind = CfgNodeKind::Call;
        Init.Callee = "VS_toss";
        Init.Builtin = BuiltinKind::VsToss;
        Init.Args.push_back(Expr::intLit(Options.DomainBound));
      } else {
        Init.Kind = CfgNodeKind::Assign;
        Init.Value = Expr::intLit(Inst.Args[A].Value);
      }
      Init.Arcs.push_back({ArcKind::Always, 0, Next + 1});
      Wrapper.Nodes.push_back(std::move(Init));
      ++Next;
    }

    CfgNode CallNode;
    CallNode.Kind = CfgNodeKind::Call;
    CallNode.Loc = Inst.Loc;
    CallNode.Callee = Inst.ProcName;
    CallNode.Builtin = BuiltinKind::None;
    for (size_t A = 0, AE = Inst.Args.size(); A != AE; ++A)
      CallNode.Args.push_back(Expr::varRef("a" + std::to_string(A)));
    CallNode.Arcs.push_back({ArcKind::Always, 0, Next + 1});
    Wrapper.Nodes.push_back(std::move(CallNode));

    CfgNode Ret;
    Ret.Kind = CfgNodeKind::Return;
    Wrapper.Nodes.push_back(std::move(Ret));

    Out.Procs.push_back(std::move(Wrapper));
    Inst.ProcName = Out.Procs.back().Name;
    Inst.Args.clear();
    ++S.WrappersSynthesized;
  }

  return Out;
}
