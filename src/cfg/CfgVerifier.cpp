//===- CfgVerifier.cpp - Structural CFG invariants --------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgVerifier.h"

#include <set>
#include <string>

using namespace closer;

namespace {

class ProcVerifier {
public:
  ProcVerifier(const Module &Mod, const ProcCfg &Proc, DiagnosticEngine &Diags)
      : Mod(Mod), Proc(Proc), Diags(Diags) {}

  bool run() {
    unsigned ErrorsBefore = Diags.errorCount();
    if (Proc.Nodes.empty()) {
      error(SourceLoc(), "procedure has no nodes");
      return false;
    }
    if (Proc.Entry != 0 || Proc.Nodes[0].Kind != CfgNodeKind::Start)
      error(SourceLoc(), "entry must be a Start node at index 0");
    for (size_t I = 0, E = Proc.Nodes.size(); I != E; ++I) {
      if (I != 0 && Proc.Nodes[I].Kind == CfgNodeKind::Start)
        error(Proc.Nodes[I].Loc, "multiple Start nodes");
      verifyNode(static_cast<NodeId>(I));
    }
    return Diags.errorCount() == ErrorsBefore;
  }

private:
  void error(SourceLoc Loc, const std::string &Message) {
    Diags.error(Loc, "[cfg:" + Proc.Name + "] " + Message);
  }

  void verifyArcsShape(const CfgNode &Node, NodeId Id) {
    for (const CfgArc &Arc : Node.Arcs)
      if (Arc.Target >= Proc.Nodes.size())
        error(Node.Loc,
              "node " + std::to_string(Id) + " has an out-of-range arc");

    switch (Node.Kind) {
    case CfgNodeKind::Start:
    case CfgNodeKind::Assign:
    case CfgNodeKind::Call:
      if (Node.Arcs.size() > 1 ||
          (Node.Arcs.size() == 1 && Node.Arcs[0].Kind != ArcKind::Always))
        error(Node.Loc, "node " + std::to_string(Id) +
                            " must have at most one Always arc");
      return;
    case CfgNodeKind::Branch: {
      if (Node.Arcs.size() != 2 || Node.Arcs[0].Kind != ArcKind::IfTrue ||
          Node.Arcs[1].Kind != ArcKind::IfFalse)
        error(Node.Loc, "branch node " + std::to_string(Id) +
                            " must have exactly IfTrue then IfFalse arcs");
      return;
    }
    case CfgNodeKind::Switch: {
      std::set<int64_t> Seen;
      unsigned Defaults = 0;
      for (const CfgArc &Arc : Node.Arcs) {
        if (Arc.Kind == ArcKind::CaseEq) {
          if (!Seen.insert(Arc.Value).second)
            error(Node.Loc, "switch node " + std::to_string(Id) +
                                " has duplicate case arcs");
        } else if (Arc.Kind == ArcKind::CaseDefault) {
          ++Defaults;
        } else {
          error(Node.Loc, "switch node " + std::to_string(Id) +
                              " has a non-case arc");
        }
      }
      if (Defaults != 1)
        error(Node.Loc, "switch node " + std::to_string(Id) +
                            " must have exactly one default arc");
      return;
    }
    case CfgNodeKind::TossBranch: {
      if (Node.TossBound < 0) {
        error(Node.Loc, "toss node " + std::to_string(Id) +
                            " has a negative bound");
        return;
      }
      std::set<int64_t> Seen;
      for (const CfgArc &Arc : Node.Arcs) {
        if (Arc.Kind != ArcKind::TossEq) {
          error(Node.Loc, "toss node " + std::to_string(Id) +
                              " has a non-TossEq arc");
          continue;
        }
        if (Arc.Value < 0 || Arc.Value > Node.TossBound ||
            !Seen.insert(Arc.Value).second)
          error(Node.Loc, "toss node " + std::to_string(Id) +
                              " has out-of-range or duplicate outcomes");
      }
      if (static_cast<int64_t>(Seen.size()) != Node.TossBound + 1)
        error(Node.Loc, "toss node " + std::to_string(Id) +
                            " does not cover all outcomes");
      return;
    }
    case CfgNodeKind::Return:
      if (!Node.Arcs.empty())
        error(Node.Loc, "return node " + std::to_string(Id) +
                            " must have no out-arcs");
      return;
    }
  }

  bool isKnownVar(const std::string &Name) const {
    return Proc.isParam(Name) || Proc.isLocal(Name) ||
           Mod.findGlobal(Name) != nullptr;
  }

  void verifyExpr(const Expr *E, NodeId Id, bool IsObjectArg = false) {
    if (!E)
      return;
    switch (E->Kind) {
    case ExprKind::IntLit:
    case ExprKind::Unknown:
      return;
    case ExprKind::VarRef:
      if (IsObjectArg) {
        if (!Mod.findComm(E->Name))
          error(E->Loc, "node " + std::to_string(Id) + ": '" + E->Name +
                            "' is not a communication object");
        return;
      }
      if (!isKnownVar(E->Name))
        error(E->Loc, "node " + std::to_string(Id) +
                          ": unknown variable '" + E->Name + "'");
      return;
    case ExprKind::ArrayIndex:
      if (!isKnownVar(E->Name))
        error(E->Loc, "node " + std::to_string(Id) + ": unknown array '" +
                          E->Name + "'");
      verifyExpr(E->Lhs.get(), Id);
      return;
    case ExprKind::Unary:
    case ExprKind::Deref:
    case ExprKind::AddrOf:
      verifyExpr(E->Lhs.get(), Id);
      return;
    case ExprKind::Binary:
      verifyExpr(E->Lhs.get(), Id);
      verifyExpr(E->Rhs.get(), Id);
      return;
    case ExprKind::Call:
      error(E->Loc, "node " + std::to_string(Id) +
                        ": call expressions must be lowered to Call nodes");
      return;
    }
  }

  void verifyNode(NodeId Id) {
    const CfgNode &Node = Proc.Nodes[Id];
    verifyArcsShape(Node, Id);

    switch (Node.Kind) {
    case CfgNodeKind::Start:
      if (Node.Target || Node.Value || !Node.Args.empty())
        error(Node.Loc, "start node must not use or define variables");
      return;
    case CfgNodeKind::Assign:
      if (!Node.Target || !Node.Value) {
        error(Node.Loc, "assign node " + std::to_string(Id) +
                            " missing target or value");
        return;
      }
      verifyExpr(Node.Target.get(), Id);
      verifyExpr(Node.Value.get(), Id);
      return;
    case CfgNodeKind::Branch:
    case CfgNodeKind::Switch:
      if (!Node.Value) {
        error(Node.Loc, "conditional node " + std::to_string(Id) +
                            " missing its condition");
        return;
      }
      verifyExpr(Node.Value.get(), Id);
      if (Node.Target)
        error(Node.Loc, "conditional nodes must not define variables");
      return;
    case CfgNodeKind::Call:
      verifyCall(Node, Id);
      return;
    case CfgNodeKind::TossBranch:
      if (Node.Target || Node.Value || !Node.Args.empty())
        error(Node.Loc, "toss node " + std::to_string(Id) +
                            " must not reference variables");
      return;
    case CfgNodeKind::Return:
      if (Node.Target || Node.Value)
        error(Node.Loc, "return node must not use or define variables");
      return;
    }
  }

  void verifyCall(const CfgNode &Node, NodeId Id) {
    if (Node.Target)
      verifyExpr(Node.Target.get(), Id);

    if (Node.Builtin == BuiltinKind::None) {
      const ProcCfg *Callee = Mod.findProc(Node.Callee);
      if (!Callee) {
        error(Node.Loc, "node " + std::to_string(Id) +
                            ": call to unknown procedure '" + Node.Callee +
                            "'");
        return;
      }
      if (Callee->Params.size() != Node.Args.size())
        error(Node.Loc, "node " + std::to_string(Id) + ": call to '" +
                            Node.Callee + "' has wrong arity");
      for (const ExprPtr &Arg : Node.Args)
        verifyExpr(Arg.get(), Id);
      return;
    }

    const BuiltinInfo &Info = builtinInfo(Node.Builtin);
    if (Node.Args.size() != Info.Arity) {
      error(Node.Loc, "node " + std::to_string(Id) + ": builtin '" +
                          Info.Name + "' has wrong arity");
      return;
    }
    if (Node.Target && !Info.HasResult)
      error(Node.Loc, "node " + std::to_string(Id) + ": builtin '" +
                          Info.Name + "' produces no result");
    unsigned FirstValueArg = 0;
    if (Info.TakesObject) {
      FirstValueArg = 1;
      const Expr *Obj = Node.Args[0].get();
      if (Obj->Kind != ExprKind::VarRef) {
        error(Obj->Loc, "node " + std::to_string(Id) +
                            ": object argument must be a name");
      } else {
        const CommDecl *Comm = Mod.findComm(Obj->Name);
        if (!Comm)
          error(Obj->Loc, "node " + std::to_string(Id) + ": '" + Obj->Name +
                              "' is not a communication object");
        else if (Comm->Kind != Info.ObjectKind)
          error(Obj->Loc, "node " + std::to_string(Id) + ": '" + Obj->Name +
                              "' has the wrong object kind for '" +
                              Info.Name + "'");
      }
    }
    for (unsigned I = FirstValueArg, E = Node.Args.size(); I != E; ++I)
      verifyExpr(Node.Args[I].get(), Id);
  }

  const Module &Mod;
  const ProcCfg &Proc;
  DiagnosticEngine &Diags;
};

} // namespace

bool closer::verifyProc(const Module &Mod, const ProcCfg &Proc,
                        DiagnosticEngine &Diags) {
  ProcVerifier V(Mod, Proc, Diags);
  return V.run();
}

bool closer::verifyModule(const Module &Mod, DiagnosticEngine &Diags) {
  unsigned ErrorsBefore = Diags.errorCount();
  for (const ProcCfg &Proc : Mod.Procs)
    verifyProc(Mod, Proc, Diags);
  for (const ProcessDecl &P : Mod.Processes) {
    const ProcCfg *Proc = Mod.findProc(P.ProcName);
    if (!Proc) {
      Diags.error(P.Loc, "[cfg] process '" + P.Name +
                             "' references unknown procedure '" + P.ProcName +
                             "'");
      continue;
    }
    if (Proc->Params.size() != P.Args.size())
      Diags.error(P.Loc, "[cfg] process '" + P.Name +
                             "' has wrong argument count for '" + P.ProcName +
                             "'");
  }
  if (Mod.Processes.empty())
    Diags.warning(SourceLoc(), "[cfg] module declares no processes");
  return Diags.errorCount() == ErrorsBefore;
}
