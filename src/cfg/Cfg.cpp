//===- Cfg.cpp - Control-flow graph IR -------------------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include <cassert>

using namespace closer;

void closer::pruneUnreachableNodes(ProcCfg &Proc) {
  std::vector<bool> Reachable(Proc.Nodes.size(), false);
  std::vector<NodeId> Work = {Proc.Entry};
  Reachable[Proc.Entry] = true;
  while (!Work.empty()) {
    NodeId Id = Work.back();
    Work.pop_back();
    for (const CfgArc &Arc : Proc.Nodes[Id].Arcs) {
      assert(Arc.Target != InvalidNode && "dangling arc while pruning");
      if (!Reachable[Arc.Target]) {
        Reachable[Arc.Target] = true;
        Work.push_back(Arc.Target);
      }
    }
  }
  std::vector<NodeId> Remap(Proc.Nodes.size(), InvalidNode);
  std::vector<CfgNode> Kept;
  for (size_t I = 0, E = Proc.Nodes.size(); I != E; ++I) {
    if (!Reachable[I])
      continue;
    Remap[I] = static_cast<NodeId>(Kept.size());
    Kept.push_back(std::move(Proc.Nodes[I]));
  }
  for (CfgNode &Node : Kept)
    for (CfgArc &Arc : Node.Arcs)
      Arc.Target = Remap[Arc.Target];
  Proc.Nodes = std::move(Kept);
  Proc.Entry = Remap[Proc.Entry];
  assert(Proc.Entry == 0 && "entry must remain node 0");
}

CfgNode CfgNode::clone() const {
  CfgNode Copy;
  Copy.Kind = Kind;
  Copy.Loc = Loc;
  if (Target)
    Copy.Target = Target->clone();
  if (Value)
    Copy.Value = Value->clone();
  Copy.Callee = Callee;
  Copy.Builtin = Builtin;
  Copy.Args.reserve(Args.size());
  for (const ExprPtr &Arg : Args)
    Copy.Args.push_back(Arg->clone());
  Copy.TossBound = TossBound;
  Copy.Arcs = Arcs;
  return Copy;
}

bool ProcCfg::isParam(const std::string &VarName) const {
  for (const std::string &P : Params)
    if (P == VarName)
      return true;
  return false;
}

bool ProcCfg::isLocal(const std::string &VarName) const {
  for (const LocalVar &L : Locals)
    if (L.Name == VarName)
      return true;
  return false;
}

int ProcCfg::paramIndex(const std::string &VarName) const {
  for (size_t I = 0, E = Params.size(); I != E; ++I)
    if (Params[I] == VarName)
      return static_cast<int>(I);
  return -1;
}

ProcCfg ProcCfg::clone() const {
  ProcCfg Copy;
  Copy.Name = Name;
  Copy.Params = Params;
  Copy.Locals = Locals;
  Copy.Entry = Entry;
  Copy.Nodes.reserve(Nodes.size());
  for (const CfgNode &N : Nodes)
    Copy.Nodes.push_back(N.clone());
  return Copy;
}

const ProcCfg *Module::findProc(const std::string &Name) const {
  for (const ProcCfg &P : Procs)
    if (P.Name == Name)
      return &P;
  return nullptr;
}

ProcCfg *Module::findProc(const std::string &Name) {
  for (ProcCfg &P : Procs)
    if (P.Name == Name)
      return &P;
  return nullptr;
}

int Module::procIndex(const std::string &Name) const {
  for (size_t I = 0, E = Procs.size(); I != E; ++I)
    if (Procs[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

const CommDecl *Module::findComm(const std::string &Name) const {
  for (const CommDecl &C : Comms)
    if (C.Name == Name)
      return &C;
  return nullptr;
}

int Module::commIndex(const std::string &Name) const {
  for (size_t I = 0, E = Comms.size(); I != E; ++I)
    if (Comms[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

const GlobalDecl *Module::findGlobal(const std::string &Name) const {
  for (const GlobalDecl &G : Globals)
    if (G.Name == Name)
      return &G;
  return nullptr;
}

size_t Module::totalNodes() const {
  size_t Total = 0;
  for (const ProcCfg &P : Procs)
    Total += P.Nodes.size();
  return Total;
}

Module Module::clone() const {
  Module Copy;
  Copy.Comms = Comms;
  Copy.Globals = Globals;
  Copy.Processes = Processes;
  Copy.Procs.reserve(Procs.size());
  for (const ProcCfg &P : Procs)
    Copy.Procs.push_back(P.clone());
  return Copy;
}
