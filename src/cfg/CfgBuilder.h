//===- CfgBuilder.h - AST to control-flow graph lowering -------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a semantically-checked MiniC Program into a cfg::Module. Lowering
/// decisions:
///
///  * all local declarations are hoisted into the frame layout; their
///    initializers become Assign nodes in place;
///  * `return e` becomes `__retval = e; return` so that Return nodes use no
///    variables (the paper's assumption on termination statements);
///  * switch arms do not fall through (each arm implicitly breaks);
///  * a missing `for` condition is the constant 1;
///  * unreachable nodes are pruned after construction; the entry Start node
///    is always node 0.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_CFG_CFGBUILDER_H
#define CLOSER_CFG_CFGBUILDER_H

#include "cfg/Cfg.h"
#include "support/Diagnostics.h"

#include <memory>

namespace closer {

/// Lowers \p Prog (which must have passed checkProgram) to CFG form.
/// Returns nullptr and reports via \p Diags on internal lowering failures.
std::unique_ptr<Module> buildModule(const Program &Prog,
                                    DiagnosticEngine &Diags);

/// Convenience: parse + sema + lower in one call. Returns nullptr on any
/// error (details in \p Diags).
std::unique_ptr<Module> compileMiniC(const std::string &Source,
                                     DiagnosticEngine &Diags);

} // namespace closer

#endif // CLOSER_CFG_CFGBUILDER_H
