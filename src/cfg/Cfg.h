//===- Cfg.h - Control-flow graph IR ---------------------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control-flow-graph representation of MiniC procedures, matching the
/// paper's §4 model: each procedure is a graph G_j = (N_j, A_j) whose nodes
/// are statements and whose arcs are labeled with mutually exclusive,
/// exhaustive boolean guards. This IR is what the closing transformation
/// consumes and produces, and what the runtime executes; it is therefore
/// fully self-contained (it owns clones of all expression trees).
///
/// Node kinds: Start (defines/uses nothing), Assign, Branch (if), Switch,
/// Call (user procedures and builtins, including all visible operations),
/// Return (termination), and TossBranch — the nondeterministic conditional
/// "testing the value of VS_toss(k)" that Step 4 of the paper's algorithm
/// introduces.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_CFG_CFG_H
#define CLOSER_CFG_CFG_H

#include "lang/Ast.h"
#include "lang/Builtins.h"

#include <cstdint>
#include <string>
#include <vector>

namespace closer {

/// Index of a node within its procedure's node vector.
using NodeId = uint32_t;
constexpr NodeId InvalidNode = ~static_cast<NodeId>(0);

enum class CfgNodeKind {
  Start,      ///< Unique procedure entry; uses and defines nothing.
  Assign,     ///< Target = Value (Value is a non-call expression).
  Branch,     ///< Two-way conditional on Value.
  Switch,     ///< Multi-way conditional on Value.
  Call,       ///< Procedure or builtin call; optional result Target.
  TossBranch, ///< Conditional on a fresh VS_toss(TossBound) outcome.
  Return,     ///< Termination statement; no out-arcs, uses nothing
              ///< (return values are lowered to an assignment of the
              ///< distinguished local __retval before the Return node).
};

enum class ArcKind {
  Always,      ///< Unconditional fallthrough.
  IfTrue,      ///< Branch condition nonzero.
  IfFalse,     ///< Branch condition zero.
  CaseEq,      ///< Switch scrutinee equals Value.
  CaseDefault, ///< Switch scrutinee matches no CaseEq arc.
  TossEq,      ///< TossBranch outcome equals Value.
};

/// One labeled control-flow arc.
struct CfgArc {
  ArcKind Kind = ArcKind::Always;
  int64_t Value = 0; ///< CaseEq / TossEq payload.
  NodeId Target = InvalidNode;
};

struct CfgNode {
  CfgNodeKind Kind = CfgNodeKind::Start;
  SourceLoc Loc;

  ExprPtr Target; ///< Assign / Call result lvalue (VarRef, ArrayIndex or
                  ///< Deref expression), or null.
  ExprPtr Value;  ///< Assign RHS; Branch condition; Switch scrutinee.

  std::string Callee;                        ///< Call: procedure name.
  BuiltinKind Builtin = BuiltinKind::None;   ///< Call: builtin classifier.
  std::vector<ExprPtr> Args;                 ///< Call arguments.

  int64_t TossBound = 0; ///< TossBranch: outcomes range over [0, TossBound].

  std::vector<CfgArc> Arcs;

  CfgNode() = default;
  CfgNode(CfgNode &&) = default;
  CfgNode &operator=(CfgNode &&) = default;

  /// Deep copy (expression trees cloned).
  CfgNode clone() const;

  /// True for Call nodes whose operation is visible in the paper's sense
  /// (communication-object builtins and VS_assert). Calls to user
  /// procedures are not themselves visible operations.
  bool isVisibleOp() const {
    return Kind == CfgNodeKind::Call && Builtin != BuiltinKind::None &&
           builtinInfo(Builtin).IsVisible;
  }
};

/// A local variable slot of a procedure frame.
struct LocalVar {
  std::string Name;
  int64_t ArraySize = -1; ///< >= 0 for arrays.
};

/// A procedure lowered to its control-flow graph.
struct ProcCfg {
  std::string Name;
  std::vector<std::string> Params;
  std::vector<LocalVar> Locals; ///< Hoisted declarations, in source order.
  std::vector<CfgNode> Nodes;   ///< Nodes[Entry] is the Start node.
  NodeId Entry = 0;

  const CfgNode &node(NodeId Id) const { return Nodes[Id]; }
  CfgNode &node(NodeId Id) { return Nodes[Id]; }
  size_t size() const { return Nodes.size(); }

  /// True when \p Name is a parameter of this procedure.
  bool isParam(const std::string &VarName) const;
  /// True when \p Name is a declared local (including __retval).
  bool isLocal(const std::string &VarName) const;
  /// Returns the index of parameter \p VarName or -1.
  int paramIndex(const std::string &VarName) const;

  ProcCfg clone() const;
};

/// A whole program lowered to CFG form: the unit the closing transformation
/// maps to a new Module and the unit the runtime executes.
struct Module {
  std::vector<CommDecl> Comms;
  std::vector<GlobalDecl> Globals;
  std::vector<ProcCfg> Procs;
  std::vector<ProcessDecl> Processes;

  const ProcCfg *findProc(const std::string &Name) const;
  ProcCfg *findProc(const std::string &Name);
  int procIndex(const std::string &Name) const;
  const CommDecl *findComm(const std::string &Name) const;
  int commIndex(const std::string &Name) const;
  const GlobalDecl *findGlobal(const std::string &Name) const;

  /// Total node count across all procedures (the size measure used by the
  /// linearity experiment E4).
  size_t totalNodes() const;

  Module clone() const;
};

/// Name of the distinguished local carrying a procedure's return value.
inline const char *retValName() { return "__retval"; }

/// Removes nodes unreachable from the entry and compacts node ids. The
/// entry must be node 0 and remains node 0. All arcs must be bound.
void pruneUnreachableNodes(ProcCfg &Proc);

} // namespace closer

#endif // CLOSER_CFG_CFG_H
