//===- CfgPrinter.cpp - CFG listings, dot dumps, source emission -----------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgPrinter.h"

#include "lang/PrettyPrinter.h"

#include <cassert>
#include <string>

using namespace closer;

namespace {

std::string nodeLabel(NodeId Id) { return "N" + std::to_string(Id); }

std::string arcText(const CfgArc &Arc) {
  switch (Arc.Kind) {
  case ArcKind::Always:
    return "-> " + nodeLabel(Arc.Target);
  case ArcKind::IfTrue:
    return "true -> " + nodeLabel(Arc.Target);
  case ArcKind::IfFalse:
    return "false -> " + nodeLabel(Arc.Target);
  case ArcKind::CaseEq:
    return "case " + std::to_string(Arc.Value) + " -> " +
           nodeLabel(Arc.Target);
  case ArcKind::CaseDefault:
    return "default -> " + nodeLabel(Arc.Target);
  case ArcKind::TossEq:
    return "toss==" + std::to_string(Arc.Value) + " -> " +
           nodeLabel(Arc.Target);
  }
  return "?";
}

std::string nodeText(const CfgNode &Node) {
  switch (Node.Kind) {
  case CfgNodeKind::Start:
    return "start";
  case CfgNodeKind::Assign:
    return printExpr(Node.Target.get()) + " = " + printExpr(Node.Value.get());
  case CfgNodeKind::Branch:
    return "branch (" + printExpr(Node.Value.get()) + ")";
  case CfgNodeKind::Switch:
    return "switch (" + printExpr(Node.Value.get()) + ")";
  case CfgNodeKind::Call: {
    std::string Out;
    if (Node.Target)
      Out += printExpr(Node.Target.get()) + " = ";
    Out += Node.Callee + "(";
    for (size_t I = 0, E = Node.Args.size(); I != E; ++I) {
      if (I)
        Out += ", ";
      Out += printExpr(Node.Args[I].get());
    }
    return Out + ")";
  }
  case CfgNodeKind::TossBranch:
    return "toss-branch VS_toss(" + std::to_string(Node.TossBound) + ")";
  case CfgNodeKind::Return:
    return "return";
  }
  return "<bad-node>";
}

} // namespace

std::string closer::printCfg(const ProcCfg &Proc) {
  std::string Out = "proc " + Proc.Name + "(";
  for (size_t I = 0, E = Proc.Params.size(); I != E; ++I) {
    if (I)
      Out += ", ";
    Out += Proc.Params[I];
  }
  Out += ")\n";
  for (size_t I = 0, E = Proc.Nodes.size(); I != E; ++I) {
    const CfgNode &Node = Proc.Nodes[I];
    Out += "  " + nodeLabel(static_cast<NodeId>(I)) + ": " + nodeText(Node);
    if (!Node.Arcs.empty()) {
      Out += "  [";
      for (size_t A = 0, AE = Node.Arcs.size(); A != AE; ++A) {
        if (A)
          Out += "; ";
        Out += arcText(Node.Arcs[A]);
      }
      Out += "]";
    }
    Out += "\n";
  }
  return Out;
}

std::string closer::printModule(const Module &Mod) {
  std::string Out;
  for (const CommDecl &C : Mod.Comms) {
    switch (C.Kind) {
    case CommKind::Channel:
      Out += "chan " + C.Name + "[" + std::to_string(C.Param) + "]\n";
      break;
    case CommKind::Semaphore:
      Out += "sem " + C.Name + "(" + std::to_string(C.Param) + ")\n";
      break;
    case CommKind::SharedVar:
      Out += "shared " + C.Name + " = " + std::to_string(C.Param) + "\n";
      break;
    }
  }
  for (const GlobalDecl &G : Mod.Globals)
    Out += "var " + G.Name +
           (G.ArraySize >= 0 ? "[" + std::to_string(G.ArraySize) + "]" : "") +
           "\n";
  for (const ProcCfg &P : Mod.Procs)
    Out += printCfg(P);
  for (const ProcessDecl &P : Mod.Processes) {
    Out += "process " + P.Name + " = " + P.ProcName + "(";
    for (size_t I = 0, E = P.Args.size(); I != E; ++I) {
      if (I)
        Out += ", ";
      Out += P.Args[I].IsEnv ? "env" : std::to_string(P.Args[I].Value);
    }
    Out += ")\n";
  }
  return Out;
}

std::string closer::cfgToDot(const ProcCfg &Proc) {
  std::string Out = "digraph \"" + Proc.Name + "\" {\n";
  Out += "  node [shape=box, fontname=\"monospace\"];\n";
  for (size_t I = 0, E = Proc.Nodes.size(); I != E; ++I) {
    const CfgNode &Node = Proc.Nodes[I];
    std::string Label = nodeText(Node);
    // Escape quotes for dot.
    std::string Escaped;
    for (char C : Label) {
      if (C == '"')
        Escaped += '\\';
      Escaped += C;
    }
    Out += "  " + nodeLabel(static_cast<NodeId>(I)) + " [label=\"" + Escaped +
           "\"";
    if (Node.Kind == CfgNodeKind::TossBranch)
      Out += ", style=dashed";
    Out += "];\n";
    for (const CfgArc &Arc : Node.Arcs) {
      Out += "  " + nodeLabel(static_cast<NodeId>(I)) + " -> " +
             nodeLabel(Arc.Target);
      switch (Arc.Kind) {
      case ArcKind::Always:
        break;
      case ArcKind::IfTrue:
        Out += " [label=\"T\"]";
        break;
      case ArcKind::IfFalse:
        Out += " [label=\"F\"]";
        break;
      case ArcKind::CaseEq:
        Out += " [label=\"=" + std::to_string(Arc.Value) + "\"]";
        break;
      case ArcKind::CaseDefault:
        Out += " [label=\"dflt\"]";
        break;
      case ArcKind::TossEq:
        Out += " [label=\"toss=" + std::to_string(Arc.Value) + "\"]";
        break;
      }
      Out += ";\n";
    }
  }
  return Out + "}\n";
}

//===----------------------------------------------------------------------===//
// Source emission (goto normal form)
//===----------------------------------------------------------------------===//

namespace {

std::string gotoLabel(NodeId Id) { return "__N" + std::to_string(Id); }

std::string gotoText(NodeId Target) {
  if (Target == InvalidNode)
    return "halt();"; // Successor eliminated by closing: park forever.
  return "goto " + gotoLabel(Target) + ";";
}

void emitProcSource(const ProcCfg &Proc, std::string &Out) {
  Out += "proc " + Proc.Name + "(";
  for (size_t I = 0, E = Proc.Params.size(); I != E; ++I) {
    if (I)
      Out += ", ";
    Out += Proc.Params[I];
  }
  Out += ") {\n";
  for (const LocalVar &L : Proc.Locals) {
    Out += "  var " + L.Name;
    if (L.ArraySize >= 0)
      Out += "[" + std::to_string(L.ArraySize) + "]";
    Out += ";\n";
  }
  // Fresh temporaries for TossBranch nodes.
  for (size_t I = 0, E = Proc.Nodes.size(); I != E; ++I)
    if (Proc.Nodes[I].Kind == CfgNodeKind::TossBranch)
      Out += "  var __toss" + std::to_string(I) + ";\n";

  auto AlwaysSucc = [](const CfgNode &Node) -> NodeId {
    return Node.Arcs.empty() ? InvalidNode : Node.Arcs[0].Target;
  };

  for (size_t I = 0, E = Proc.Nodes.size(); I != E; ++I) {
    const CfgNode &Node = Proc.Nodes[I];
    std::string Line = "  " + gotoLabel(static_cast<NodeId>(I)) + ": ";
    switch (Node.Kind) {
    case CfgNodeKind::Start:
      Line += gotoText(AlwaysSucc(Node));
      break;
    case CfgNodeKind::Assign:
      Line += printExpr(Node.Target.get()) + " = " +
              printExpr(Node.Value.get()) + "; " + gotoText(AlwaysSucc(Node));
      break;
    case CfgNodeKind::Call: {
      std::string CallText;
      if (Node.Target)
        CallText += printExpr(Node.Target.get()) + " = ";
      CallText += Node.Callee + "(";
      for (size_t A = 0, AE = Node.Args.size(); A != AE; ++A) {
        if (A)
          CallText += ", ";
        CallText += printExpr(Node.Args[A].get());
      }
      CallText += ")";
      Line += CallText + "; " + gotoText(AlwaysSucc(Node));
      break;
    }
    case CfgNodeKind::Branch: {
      assert(Node.Arcs.size() == 2 && "verified branch shape");
      Line += "if (" + printExpr(Node.Value.get()) + ") " +
              gotoText(Node.Arcs[0].Target) + " " +
              gotoText(Node.Arcs[1].Target);
      break;
    }
    case CfgNodeKind::Switch: {
      Line += "switch (" + printExpr(Node.Value.get()) + ") {";
      for (const CfgArc &Arc : Node.Arcs) {
        if (Arc.Kind == ArcKind::CaseEq)
          Line += " case " + std::to_string(Arc.Value) + ": " +
                  gotoText(Arc.Target);
        else
          Line += " default: " + gotoText(Arc.Target);
      }
      Line += " }";
      break;
    }
    case CfgNodeKind::TossBranch: {
      std::string Tmp = "__toss" + std::to_string(I);
      Line += Tmp + " = VS_toss(" + std::to_string(Node.TossBound) + ");";
      // The last outcome is the fallthrough; the others test explicitly.
      for (size_t A = 0, AE = Node.Arcs.size(); A != AE; ++A) {
        const CfgArc &Arc = Node.Arcs[A];
        if (A + 1 == AE) {
          Line += " " + gotoText(Arc.Target);
        } else {
          Line += " if (" + Tmp + " == " + std::to_string(Arc.Value) + ") " +
                  gotoText(Arc.Target);
        }
      }
      break;
    }
    case CfgNodeKind::Return:
      Line += "return;";
      break;
    }
    Out += Line + "\n";
  }
  Out += "}\n\n";
}

} // namespace

std::string closer::emitModuleSource(const Module &Mod) {
  std::string Out;
  for (const CommDecl &C : Mod.Comms) {
    switch (C.Kind) {
    case CommKind::Channel:
      Out += "chan " + C.Name + "[" + std::to_string(C.Param) + "];\n";
      break;
    case CommKind::Semaphore:
      Out += "sem " + C.Name + "(" + std::to_string(C.Param) + ");\n";
      break;
    case CommKind::SharedVar:
      Out += "shared " + C.Name + " = " + std::to_string(C.Param) + ";\n";
      break;
    }
  }
  for (const GlobalDecl &G : Mod.Globals) {
    Out += "var " + G.Name;
    if (G.ArraySize >= 0)
      Out += "[" + std::to_string(G.ArraySize) + "]";
    else if (G.Init)
      Out += " = " + std::to_string(G.Init);
    Out += ";\n";
  }
  Out += "\n";
  for (const ProcCfg &P : Mod.Procs)
    emitProcSource(P, Out);
  for (const ProcessDecl &P : Mod.Processes) {
    Out += "process " + P.Name + " = " + P.ProcName + "(";
    for (size_t I = 0, E = P.Args.size(); I != E; ++I) {
      if (I)
        Out += ", ";
      Out += P.Args[I].IsEnv ? "env" : std::to_string(P.Args[I].Value);
    }
    Out += ");\n";
  }
  return Out;
}
