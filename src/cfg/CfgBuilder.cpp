//===- CfgBuilder.cpp - AST to control-flow graph lowering -----------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"

#include "lang/Parser.h"
#include "lang/Sema.h"

#include <cassert>
#include <unordered_map>
#include <utility>

using namespace closer;

namespace {

/// A dangling out-arc awaiting its target.
struct ArcRef {
  NodeId Node;
  size_t ArcIndex;
};

class ProcBuilder {
public:
  ProcBuilder(const Program &Prog, const ProcDecl &Decl) : Prog(Prog) {
    Result.Name = Decl.Name;
    for (const ParamDecl &P : Decl.Params)
      Result.Params.push_back(P.Name);

    // The Start node; uses and defines nothing (paper §4).
    CfgNode Start;
    Start.Kind = CfgNodeKind::Start;
    Start.Loc = Decl.Loc;
    Start.Arcs.push_back({ArcKind::Always, 0, InvalidNode});
    Result.Nodes.push_back(std::move(Start));
    Pending.push_back({0, 0});

    buildStmt(Decl.Body.get());
    finish();
  }

  ProcCfg take() { return std::move(Result); }

private:
  //===--------------------------------------------------------------------===//
  // Graph assembly helpers
  //===--------------------------------------------------------------------===//

  void patchArcs(const std::vector<ArcRef> &Arcs, NodeId Target) {
    for (const ArcRef &Ref : Arcs) {
      CfgArc &Arc = Result.Nodes[Ref.Node].Arcs[Ref.ArcIndex];
      assert(Arc.Target == InvalidNode && "patching an already-bound arc");
      Arc.Target = Target;
    }
  }

  /// Appends \p Node, binding all pending incoming arcs and waiting labels
  /// to it. Returns the new node's id; Pending is cleared.
  NodeId emit(CfgNode Node) {
    NodeId Id = static_cast<NodeId>(Result.Nodes.size());
    Result.Nodes.push_back(std::move(Node));
    patchArcs(Pending, Id);
    Pending.clear();
    for (const std::string &Label : PendingLabels) {
      BoundLabels[Label] = Id;
      auto It = LabelWaiters.find(Label);
      if (It != LabelWaiters.end()) {
        patchArcs(It->second, Id);
        LabelWaiters.erase(It);
      }
    }
    PendingLabels.clear();
    return Id;
  }

  /// Makes arc \p ArcIndex of node \p Id the (sole) pending successor slot.
  void setPending(NodeId Id, size_t ArcIndex) {
    Pending.clear();
    Pending.push_back({Id, ArcIndex});
  }

  void declareLocal(const std::string &Name, int64_t ArraySize) {
    if (!Result.isLocal(Name))
      Result.Locals.push_back({Name, ArraySize});
  }

  //===--------------------------------------------------------------------===//
  // Statement lowering
  //===--------------------------------------------------------------------===//

  void buildStmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->Kind) {
    case StmtKind::Block:
      for (const StmtPtr &Sub : S->Body)
        buildStmt(Sub.get());
      return;
    case StmtKind::Empty:
      return;
    case StmtKind::VarDecl: {
      declareLocal(S->Name, S->ArraySize);
      if (S->Cond)
        emitAssign(Expr::varRef(S->Name, S->Loc), S->Cond.get(), S->Loc);
      return;
    }
    case StmtKind::Assign:
      emitAssign(S->Target->clone(), S->Value.get(), S->Loc);
      return;
    case StmtKind::ExprCall:
      emitCall(nullptr, S->Value.get(), S->Loc);
      return;
    case StmtKind::If:
      buildIf(S);
      return;
    case StmtKind::While:
      buildWhile(S);
      return;
    case StmtKind::For:
      buildFor(S);
      return;
    case StmtKind::Switch:
      buildSwitch(S);
      return;
    case StmtKind::Return:
      buildReturn(S);
      return;
    case StmtKind::Break:
      assert(!BreakStack.empty() && "sema guarantees break is inside a loop");
      BreakStack.back().insert(BreakStack.back().end(), Pending.begin(),
                               Pending.end());
      Pending.clear();
      return;
    case StmtKind::Continue:
      assert(!ContinueStack.empty() &&
             "sema guarantees continue is inside a loop");
      ContinueStack.back().insert(ContinueStack.back().end(), Pending.begin(),
                                  Pending.end());
      Pending.clear();
      return;
    case StmtKind::Goto: {
      auto It = BoundLabels.find(S->Name);
      if (It != BoundLabels.end()) {
        patchArcs(Pending, It->second);
      } else {
        auto &Waiters = LabelWaiters[S->Name];
        Waiters.insert(Waiters.end(), Pending.begin(), Pending.end());
      }
      Pending.clear();
      return;
    }
    case StmtKind::Label:
      PendingLabels.push_back(S->Name);
      buildStmt(S->ThenBody.get());
      return;
    }
  }

  /// Lowers `Target = Value` where Value may be a call expression.
  void emitAssign(ExprPtr Target, const Expr *Value, SourceLoc Loc) {
    if (Value->Kind == ExprKind::Call) {
      emitCall(std::move(Target), Value, Loc);
      return;
    }
    CfgNode Node;
    Node.Kind = CfgNodeKind::Assign;
    Node.Loc = Loc;
    Node.Target = std::move(Target);
    Node.Value = Value->clone();
    Node.Arcs.push_back({ArcKind::Always, 0, InvalidNode});
    NodeId Id = emit(std::move(Node));
    setPending(Id, 0);
  }

  void emitCall(ExprPtr Target, const Expr *Call, SourceLoc Loc) {
    assert(Call->Kind == ExprKind::Call && "emitCall requires a call expr");
    CfgNode Node;
    Node.Kind = CfgNodeKind::Call;
    Node.Loc = Loc;
    Node.Target = std::move(Target);
    Node.Callee = Call->Name;
    Node.Builtin = lookupBuiltin(Call->Name).Kind;
    for (const ExprPtr &Arg : Call->Args)
      Node.Args.push_back(Arg->clone());
    Node.Arcs.push_back({ArcKind::Always, 0, InvalidNode});
    NodeId Id = emit(std::move(Node));
    setPending(Id, 0);
  }

  void buildIf(const Stmt *S) {
    CfgNode Node;
    Node.Kind = CfgNodeKind::Branch;
    Node.Loc = S->Loc;
    Node.Value = S->Cond->clone();
    Node.Arcs.push_back({ArcKind::IfTrue, 0, InvalidNode});
    Node.Arcs.push_back({ArcKind::IfFalse, 0, InvalidNode});
    NodeId BranchId = emit(std::move(Node));

    setPending(BranchId, 0);
    buildStmt(S->ThenBody.get());
    std::vector<ArcRef> AfterThen = std::move(Pending);

    setPending(BranchId, 1);
    if (S->ElseBody)
      buildStmt(S->ElseBody.get());
    // Join.
    Pending.insert(Pending.end(), AfterThen.begin(), AfterThen.end());
  }

  void buildWhile(const Stmt *S) {
    CfgNode Node;
    Node.Kind = CfgNodeKind::Branch;
    Node.Loc = S->Loc;
    Node.Value = S->Cond->clone();
    Node.Arcs.push_back({ArcKind::IfTrue, 0, InvalidNode});
    Node.Arcs.push_back({ArcKind::IfFalse, 0, InvalidNode});
    NodeId CondId = emit(std::move(Node));

    BreakStack.emplace_back();
    ContinueStack.emplace_back();
    setPending(CondId, 0);
    buildStmt(S->ThenBody.get());
    // Back edges: body fallthrough and continues return to the condition.
    Pending.insert(Pending.end(), ContinueStack.back().begin(),
                   ContinueStack.back().end());
    patchArcs(Pending, CondId);
    Pending.clear();

    std::vector<ArcRef> Breaks = std::move(BreakStack.back());
    BreakStack.pop_back();
    ContinueStack.pop_back();

    setPending(CondId, 1);
    Pending.insert(Pending.end(), Breaks.begin(), Breaks.end());
  }

  void buildFor(const Stmt *S) {
    if (S->InitStmt)
      buildStmt(S->InitStmt.get());

    CfgNode Node;
    Node.Kind = CfgNodeKind::Branch;
    Node.Loc = S->Loc;
    Node.Value = S->Cond ? S->Cond->clone() : Expr::intLit(1, S->Loc);
    Node.Arcs.push_back({ArcKind::IfTrue, 0, InvalidNode});
    Node.Arcs.push_back({ArcKind::IfFalse, 0, InvalidNode});
    NodeId CondId = emit(std::move(Node));

    BreakStack.emplace_back();
    ContinueStack.emplace_back();
    setPending(CondId, 0);
    buildStmt(S->ThenBody.get());

    // The step runs after the body and after every continue.
    Pending.insert(Pending.end(), ContinueStack.back().begin(),
                   ContinueStack.back().end());
    if (S->StepStmt)
      buildStmt(S->StepStmt.get());
    patchArcs(Pending, CondId);
    Pending.clear();

    std::vector<ArcRef> Breaks = std::move(BreakStack.back());
    BreakStack.pop_back();
    ContinueStack.pop_back();

    setPending(CondId, 1);
    Pending.insert(Pending.end(), Breaks.begin(), Breaks.end());
  }

  void buildSwitch(const Stmt *S) {
    CfgNode Node;
    Node.Kind = CfgNodeKind::Switch;
    Node.Loc = S->Loc;
    Node.Value = S->Cond->clone();
    for (const SwitchCase &Arm : S->Cases)
      Node.Arcs.push_back({ArcKind::CaseEq, Arm.Value, InvalidNode});
    Node.Arcs.push_back({ArcKind::CaseDefault, 0, InvalidNode});
    NodeId SwitchId = emit(std::move(Node));

    std::vector<ArcRef> Exits;
    BreakStack.emplace_back();
    for (size_t I = 0, E = S->Cases.size(); I != E; ++I) {
      setPending(SwitchId, I);
      for (const StmtPtr &Sub : S->Cases[I].Body)
        buildStmt(Sub.get());
      Exits.insert(Exits.end(), Pending.begin(), Pending.end());
      Pending.clear();
    }
    setPending(SwitchId, S->Cases.size()); // CaseDefault arc.
    if (S->HasDefault)
      for (const StmtPtr &Sub : S->DefaultBody)
        buildStmt(Sub.get());
    Exits.insert(Exits.end(), Pending.begin(), Pending.end());

    Exits.insert(Exits.end(), BreakStack.back().begin(),
                 BreakStack.back().end());
    BreakStack.pop_back();
    Pending = std::move(Exits);
  }

  void buildReturn(const Stmt *S) {
    if (S->Cond) {
      declareLocal(retValName(), -1);
      emitAssign(Expr::varRef(retValName(), S->Loc), S->Cond.get(), S->Loc);
    }
    CfgNode Node;
    Node.Kind = CfgNodeKind::Return;
    Node.Loc = S->Loc;
    emit(std::move(Node));
    // Return has no out-arcs; whatever follows is unreachable until a label
    // binds it.
  }

  /// Terminates the procedure: any remaining fallthrough (and degenerate
  /// label-only cycles) reach an implicit Return, then unreachable nodes
  /// are pruned.
  void finish() {
    if (!Pending.empty() || !PendingLabels.empty() || !LabelWaiters.empty()) {
      CfgNode Node;
      Node.Kind = CfgNodeKind::Return;
      NodeId Id = emit(std::move(Node));
      // Degenerate `L: goto L;` cycles never bind their label; normalize
      // them to termination rather than leaving dangling arcs.
      for (auto &[Label, Waiters] : LabelWaiters)
        patchArcs(Waiters, Id);
      LabelWaiters.clear();
    }
    pruneUnreachableNodes(Result);
  }

  const Program &Prog;
  ProcCfg Result;
  std::vector<ArcRef> Pending;
  std::vector<std::vector<ArcRef>> BreakStack;
  std::vector<std::vector<ArcRef>> ContinueStack;
  std::vector<std::string> PendingLabels;
  std::unordered_map<std::string, NodeId> BoundLabels;
  std::unordered_map<std::string, std::vector<ArcRef>> LabelWaiters;
};

} // namespace

std::unique_ptr<Module> closer::buildModule(const Program &Prog,
                                            DiagnosticEngine &Diags) {
  auto Mod = std::make_unique<Module>();
  Mod->Comms = Prog.Comms;
  Mod->Globals = Prog.Globals;
  Mod->Processes = Prog.Processes;
  for (const ProcDecl &P : Prog.Procs) {
    ProcBuilder Builder(Prog, P);
    Mod->Procs.push_back(Builder.take());
  }
  if (Diags.hasErrors())
    return nullptr;
  return Mod;
}

std::unique_ptr<Module> closer::compileMiniC(const std::string &Source,
                                             DiagnosticEngine &Diags) {
  std::unique_ptr<Program> Prog = parseMiniC(Source, Diags);
  if (!Prog)
    return nullptr;
  if (!checkProgram(*Prog, Diags))
    return nullptr;
  return buildModule(*Prog, Diags);
}
