//===- CfgVerifier.h - Structural CFG invariants ---------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the structural invariants every cfg::Module must satisfy — both
/// freshly lowered modules and modules produced by the closing
/// transformation:
///
///  * node 0 is the unique Start node; arcs target valid nodes;
///  * per-node arc shape: Branch has exactly {IfTrue, IfFalse}; Switch has
///    distinct CaseEq arcs plus exactly one CaseDefault; TossBranch covers
///    TossEq 0..TossBound exactly once each; Start/Assign/Call have at most
///    one Always arc (zero is legal only after closing drops successors);
///    Return has none — so every node's arc labels are mutually exclusive
///    and exhaustive or deliberately empty, the paper's §4 assumption;
///  * Call nodes reference existing procedures/builtins with correct arity
///    and result-ness; object arguments name objects of the right kind;
///  * every referenced variable is a parameter, local or global.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_CFG_CFGVERIFIER_H
#define CLOSER_CFG_CFGVERIFIER_H

#include "cfg/Cfg.h"
#include "support/Diagnostics.h"

namespace closer {

/// Verifies one procedure against \p Mod. Returns true when well-formed.
bool verifyProc(const Module &Mod, const ProcCfg &Proc,
                DiagnosticEngine &Diags);

/// Verifies the whole module (all procedures plus process bindings).
bool verifyModule(const Module &Mod, DiagnosticEngine &Diags);

} // namespace closer

#endif // CLOSER_CFG_CFGVERIFIER_H
