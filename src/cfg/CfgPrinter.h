//===- CfgPrinter.h - CFG listings, dot dumps, source emission -*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three renderings of CFG modules:
///
///  * a textual listing (one node per line) used by golden tests and the
///    Figure 2/3 benchmark output;
///  * Graphviz dot, for visual inspection;
///  * MiniC source in label/goto normal form. Emitted source reparses and
///    recompiles to a trace-equivalent module, which is how closed programs
///    are persisted (the paper's transformation is source-to-source).
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_CFG_CFGPRINTER_H
#define CLOSER_CFG_CFGPRINTER_H

#include "cfg/Cfg.h"

#include <string>

namespace closer {

/// One-line-per-node listing of \p Proc.
std::string printCfg(const ProcCfg &Proc);

/// Listing of every procedure in \p Mod plus its declarations.
std::string printModule(const Module &Mod);

/// Graphviz digraph of \p Proc.
std::string cfgToDot(const ProcCfg &Proc);

/// Emits \p Mod as parseable MiniC source in goto normal form.
std::string emitModuleSource(const Module &Mod);

} // namespace closer

#endif // CLOSER_CFG_CFGPRINTER_H
