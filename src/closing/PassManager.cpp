//===- PassManager.cpp - Pass pipeline for the closing side -----------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "closing/PassManager.h"

#include "cfg/CfgBuilder.h"
#include "cfg/CfgPrinter.h"
#include "cfg/CfgVerifier.h"
#include "lang/Ast.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "vm/Bytecode.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

using namespace closer;

//===----------------------------------------------------------------------===//
// PipelineOptions
//===----------------------------------------------------------------------===//

std::vector<std::string> PipelineOptions::expandedPasses() const {
  if (!Passes.empty() && Passes.front() == "parse")
    return Passes;
  std::vector<std::string> Full = {"parse", "sema", "lower", "verify"};
  if (Passes.empty())
    Full.push_back("close");
  else
    Full.insert(Full.end(), Passes.begin(), Passes.end());
  return Full;
}

std::vector<Diagnostic> PipelineOptions::validate() const {
  std::vector<Diagnostic> Out;
  auto Error = [&Out](std::string Msg) {
    Out.push_back({DiagKind::Error, SourceLoc(), std::move(Msg)});
  };

  const std::vector<std::string> Full = expandedPasses();
  // Hash the registry once; the former per-name std::find over the full
  // list was linear in the registry per lookup.
  static const std::unordered_set<std::string> KnownSet(
      knownPassNames().begin(), knownPassNames().end());
  for (const std::string &Name : Full)
    if (!KnownSet.count(Name))
      Error("unknown pass '" + Name + "' (known: parse, sema, lower, verify, "
            "partition, close, dedup-toss, naive-close, interface, "
            "lower-bytecode)");
  if (!Out.empty())
    return Out;

  // Transform passes mutate the module, so scheduling one twice is almost
  // always a mistyped --passes list — and running it anyway would silently
  // re-transform and double-count stats. Read-only / snapshot passes
  // (verify, interface, lower-bytecode) may legitimately repeat.
  static const std::unordered_set<std::string> TransformPasses = {
      "partition", "close", "dedup-toss", "naive-close"};
  std::unordered_set<std::string> SeenTransforms;
  for (const std::string &Name : Full)
    if (TransformPasses.count(Name) && !SeenTransforms.insert(Name).second)
      Error("duplicate pass '" + Name +
            "' in --passes (transform passes run at most once per pipeline)");
  if (!Out.empty())
    return Out;

  // The frontend passes build state later passes depend on; they only make
  // sense once each, in their canonical prefix positions. ("verify" is a
  // module pass and may appear anywhere after "lower".)
  static const char *Frontend[] = {"parse", "sema", "lower"};
  for (size_t I = 0; I != 3; ++I) {
    size_t Count = std::count(Full.begin(), Full.end(), Frontend[I]);
    if (Count != 1 || Full[I] != Frontend[I]) {
      Error("pipeline must begin with 'parse, sema, lower' exactly once "
            "each; got '" + Full[std::min(I, Full.size() - 1)] +
            "' at position " + std::to_string(I));
      break;
    }
  }

  if (!PrintAfter.empty() &&
      std::find(Full.begin(), Full.end(), PrintAfter) == Full.end())
    Error("--print-after names pass '" + PrintAfter +
          "' which is not in the pipeline");

  if (std::find(Full.begin(), Full.end(), "naive-close") != Full.end() &&
      Naive.DomainBound < 0)
    Error("naive-close domain bound must be non-negative");

  return Out;
}

//===----------------------------------------------------------------------===//
// CompilationContext
//===----------------------------------------------------------------------===//

CompilationContext::CompilationContext(std::string SourceText,
                                       PipelineOptions Options)
    : Source(std::move(SourceText)), Opts(std::move(Options)) {}

CompilationContext::~CompilationContext() = default;

void CompilationContext::replaceModule(std::unique_ptr<Module> NewM) {
  // Rebind while the old module is still alive: the manager's cached
  // analyses hold pointers into it.
  if (AM)
    AM->rebind(*NewM);
  if (RetainedOpen)
    M = std::move(NewM); // Old intermediate module dies here.
  else {
    RetainedOpen = std::move(M);
    M = std::move(NewM);
  }
}

//===----------------------------------------------------------------------===//
// Pass implementations
//===----------------------------------------------------------------------===//

Pass::~Pass() = default;

namespace {

/// Shared precondition check for passes needing a lowered module.
bool requireModule(CompilationContext &Ctx, const char *PassName) {
  if (Ctx.M)
    return true;
  Ctx.Diags.error(SourceLoc(), std::string("pass '") + PassName +
                                   "' requires a lowered module (run "
                                   "parse, sema, lower first)");
  return false;
}

class ParsePass : public Pass {
public:
  const char *name() const override { return "parse"; }
  bool run(CompilationContext &Ctx) override {
    Ctx.AST = parseMiniC(Ctx.Source, Ctx.Diags);
    return Ctx.AST != nullptr && !Ctx.Diags.hasErrors();
  }
};

class SemaPass : public Pass {
public:
  const char *name() const override { return "sema"; }
  bool run(CompilationContext &Ctx) override {
    if (!Ctx.AST) {
      Ctx.Diags.error(SourceLoc(), "pass 'sema' requires a parsed program");
      return false;
    }
    return checkProgram(*Ctx.AST, Ctx.Diags);
  }
};

class LowerPass : public Pass {
public:
  const char *name() const override { return "lower"; }
  bool run(CompilationContext &Ctx) override {
    if (!Ctx.AST) {
      Ctx.Diags.error(SourceLoc(), "pass 'lower' requires a checked program");
      return false;
    }
    Ctx.M = buildModule(*Ctx.AST, Ctx.Diags);
    if (!Ctx.M)
      return false;
    Ctx.AM = std::make_unique<AnalysisManager>(*Ctx.M);
    if (!Ctx.Opts.AnalysisCacheDir.empty()) {
      // Prefill the fresh manager from the on-disk cache; later passes see
      // hits as Reused, exactly as with the in-process cache.
      Ctx.CacheStats.Enabled = true;
      AnalysisCache(Ctx.Opts.AnalysisCacheDir)
          .restore(*Ctx.AM, Ctx.Opts.Closing.Taint, Ctx.CacheStats);
    }
    return true;
  }
};

class VerifyPass : public Pass {
public:
  const char *name() const override { return "verify"; }
  bool run(CompilationContext &Ctx) override {
    if (!requireModule(Ctx, name()))
      return false;
    return verifyModule(*Ctx.M, Ctx.Diags);
  }
};

class PartitionPass : public Pass {
public:
  const char *name() const override { return "partition"; }
  bool run(CompilationContext &Ctx) override {
    if (!requireModule(Ctx, name()))
      return false;
    partitionInputsInPlace(*Ctx.M, *Ctx.AM, Ctx.Opts.Partition,
                           &Ctx.Partition);
    return true;
  }
};

class ClosePass : public Pass {
public:
  const char *name() const override { return "close"; }
  bool run(CompilationContext &Ctx) override {
    if (!requireModule(Ctx, name()))
      return false;
    const EnvAnalysis &Analysis = Ctx.AM->getEnvTaint(Ctx.Opts.Closing.Taint);
    // Persist now, while every analysis is still materialized — the
    // closing transform replaces the module, which rebinds the manager and
    // drops them all.
    if (!Ctx.Opts.AnalysisCacheDir.empty())
      AnalysisCache(Ctx.Opts.AnalysisCacheDir)
          .save(*Ctx.AM, Ctx.Opts.Closing.Taint, Ctx.CacheStats);
    auto Closed = std::make_unique<Module>(
        closeModule(*Ctx.M, Analysis, Ctx.Opts.Closing, &Ctx.Closing));
    if (!verifyModule(*Closed, Ctx.Diags)) {
      Ctx.Diags.error(SourceLoc(),
                      "internal error: closed module failed verification");
      return false;
    }
    Ctx.replaceModule(std::move(Closed));
    return true;
  }
};

class DedupTossPass : public Pass {
public:
  const char *name() const override { return "dedup-toss"; }
  bool run(CompilationContext &Ctx) override {
    if (!requireModule(Ctx, name()))
      return false;
    std::vector<size_t> Changed;
    Ctx.Closing.TossNodesDeduped += dedupTossBranches(*Ctx.M, &Changed);
    // Merging toss nodes rewires arcs but touches no variable, so the
    // points-to facts of the rewritten procedures are intact.
    for (size_t ProcIdx : Changed)
      Ctx.AM->invalidateProc(ProcIdx, /*AliasPreserved=*/true);
    return true;
  }
};

class NaiveClosePass : public Pass {
public:
  const char *name() const override { return "naive-close"; }
  bool run(CompilationContext &Ctx) override {
    if (!requireModule(Ctx, name()))
      return false;
    auto Closed = std::make_unique<Module>(
        naiveCloseModule(*Ctx.M, Ctx.Opts.Naive, &Ctx.Naive));
    if (!verifyModule(*Closed, Ctx.Diags)) {
      Ctx.Diags.error(
          SourceLoc(),
          "internal error: naively closed module failed verification");
      return false;
    }
    Ctx.replaceModule(std::move(Closed));
    return true;
  }
};

class LowerBytecodePass : public Pass {
public:
  const char *name() const override { return "lower-bytecode"; }
  bool run(CompilationContext &Ctx) override {
    if (!requireModule(Ctx, name()))
      return false;
    // Compiles the module as it stands at this pipeline position; callers
    // wanting the closed program executed should schedule this after
    // close/dedup-toss. The explorer also self-compiles when handed no
    // bytecode, so this pass is an inspection/caching aid, never a
    // correctness requirement.
    Ctx.Bytecode = vm::compileModule(*Ctx.M);
    return true;
  }
};

class InterfacePass : public Pass {
public:
  const char *name() const override { return "interface"; }
  bool run(CompilationContext &Ctx) override {
    if (!requireModule(Ctx, name()))
      return false;
    Ctx.Interface =
        buildInterfaceReport(*Ctx.M, Ctx.AM->getEnvTaint(Ctx.Opts.Closing.Taint));
    return true;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// PassPipeline
//===----------------------------------------------------------------------===//

void PassPipeline::add(std::unique_ptr<Pass> P) {
  Passes.push_back(std::move(P));
}

bool PassPipeline::run(CompilationContext &Ctx) {
  for (const std::unique_ptr<Pass> &P : Passes) {
    auto Start = std::chrono::steady_clock::now();
    bool Ok = P->run(Ctx);
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;
    Stats.push_back({P->name(), Elapsed.count()});
    if (!Ok) {
      if (!Ctx.Diags.hasErrors())
        Ctx.Diags.error(SourceLoc(),
                        std::string("pass '") + P->name() + "' failed");
      return false;
    }
    if (Ctx.Opts.VerifyEach && Ctx.M && !verifyModule(*Ctx.M, Ctx.Diags)) {
      Ctx.Diags.error(SourceLoc(),
                      std::string("module verification failed after pass '") +
                          P->name() + "'");
      return false;
    }
    if (Ctx.M && !Ctx.Opts.PrintAfter.empty() &&
        Ctx.Opts.PrintAfter == P->name())
      Printed.emplace_back(P->name(), emitModuleSource(*Ctx.M));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

const std::vector<std::string> &closer::knownPassNames() {
  static const std::vector<std::string> Names = {
      "parse",      "sema",       "lower",       "verify",    "partition",
      "close",      "dedup-toss", "naive-close", "interface", "lower-bytecode"};
  return Names;
}

std::unique_ptr<Pass> closer::createPass(const std::string &Name) {
  if (Name == "parse")
    return std::make_unique<ParsePass>();
  if (Name == "sema")
    return std::make_unique<SemaPass>();
  if (Name == "lower")
    return std::make_unique<LowerPass>();
  if (Name == "verify")
    return std::make_unique<VerifyPass>();
  if (Name == "partition")
    return std::make_unique<PartitionPass>();
  if (Name == "close")
    return std::make_unique<ClosePass>();
  if (Name == "dedup-toss")
    return std::make_unique<DedupTossPass>();
  if (Name == "naive-close")
    return std::make_unique<NaiveClosePass>();
  if (Name == "interface")
    return std::make_unique<InterfacePass>();
  if (Name == "lower-bytecode")
    return std::make_unique<LowerBytecodePass>();
  return nullptr;
}
