//===- DomainPartition.h - Input-domain partitioning (§7) ------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The improvement the paper sketches as future work in §7: "Consider a
/// resource-management system that receives 32-bit integers ... but whose
/// visible behavior only depends on which of a small set of ranges each
/// request falls into. Our transformation would completely eliminate the
/// open interface ... However, one could hope for a static analysis that
/// would determine the appropriate partitioning of the input domain, and,
/// if it is small enough, simplify the interface instead of eliminating
/// it."
///
/// This pass implements that analysis for the decidable fragment where it
/// is exact: an environment input (an `env_input()` result or an `env`
/// process argument) is *partitionable* when its value flows only into
/// two-way branches comparing it against compile-time constants — no
/// arithmetic, no escaping into sends/calls/stores, no aliasing. The
/// comparisons against constants {c1 < c2 < ...} induce a finite partition
/// of the integers whose classes are fully covered by the representative
/// set {ci - 1, ci, ci + 1}; the input is then replaced by a
/// nondeterministic choice among the representatives.
///
/// Unlike the Figure 1 transformation, the branches survive with their real
/// conditions — the closed program keeps the input-classification logic,
/// trading a slightly larger branching factor for exactness (no spurious
/// toss combinations). Inputs that fail the eligibility check are left
/// untouched for the standard closing transformation to eliminate.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_CLOSING_DOMAINPARTITION_H
#define CLOSER_CLOSING_DOMAINPARTITION_H

#include "cfg/Cfg.h"

#include <cstddef>

namespace closer {

class AnalysisManager;

struct PartitionOptions {
  /// Inputs whose representative set exceeds this are left open ("if it is
  /// small enough", §7).
  size_t MaxRepresentatives = 16;
};

struct PartitionStats {
  size_t InputsPartitioned = 0; ///< env_input sites rewritten.
  size_t ParamsPartitioned = 0; ///< env process arguments rewritten.
  size_t InputsLeftOpen = 0;    ///< Ineligible sites (closing handles them).
  size_t RepresentativesTotal = 0;
};

/// Rewrites every partitionable environment input of \p Mod into a
/// nondeterministic choice over its partition representatives. The result
/// may still be open (ineligible inputs remain); compose with closeModule
/// for a fully closed program:
///
/// \code
///   Module Simplified = partitionInputs(Open);
///   Module Closed = closeModule(Simplified);
/// \endcode
Module partitionInputs(const Module &Mod, const PartitionOptions &Options = {},
                       PartitionStats *Stats = nullptr);

/// In-place, cached-analysis variant used by the pass pipeline: rewrites
/// \p Mod directly, pulling alias and define-use results from \p AM and
/// invalidating (per procedure, alias-preserved — the eligibility rules
/// exclude address-taken variables, so no points-to fact changes) exactly
/// the procedures it rewrites. Procedures left untouched keep their cached
/// analyses for downstream passes to reuse. Returns true when anything
/// changed. \p AM must be bound to \p Mod.
bool partitionInputsInPlace(Module &Mod, AnalysisManager &AM,
                            const PartitionOptions &Options = {},
                            PartitionStats *Stats = nullptr);

} // namespace closer

#endif // CLOSER_CLOSING_DOMAINPARTITION_H
