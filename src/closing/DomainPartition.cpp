//===- DomainPartition.cpp - Input-domain partitioning (§7) -----------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "closing/DomainPartition.h"

#include "dataflow/AnalysisManager.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace closer;

namespace {

/// True when \p E is exactly `Var cmp IntLit` or `IntLit cmp Var` for the
/// given variable. Collects the constant into \p Constants.
bool isConstComparison(const Expr *E, const std::string &Var,
                       std::set<int64_t> &Constants) {
  if (!E || E->Kind != ExprKind::Binary)
    return false;
  switch (E->BOp) {
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    break;
  default:
    return false;
  }
  const Expr *L = E->Lhs.get();
  const Expr *R = E->Rhs.get();
  if (L->Kind == ExprKind::VarRef && L->Name == Var &&
      R->Kind == ExprKind::IntLit) {
    Constants.insert(R->IntValue);
    return true;
  }
  if (R->Kind == ExprKind::VarRef && R->Name == Var &&
      L->Kind == ExprKind::IntLit) {
    Constants.insert(L->IntValue);
    return true;
  }
  return false;
}

/// True when any expression in \p Proc takes the address of \p Var.
bool isAddressTaken(const ProcCfg &Proc, const std::string &Var) {
  std::vector<const Expr *> Stack;
  for (const CfgNode &Node : Proc.Nodes) {
    Stack.push_back(Node.Target.get());
    Stack.push_back(Node.Value.get());
    for (const ExprPtr &Arg : Node.Args)
      Stack.push_back(Arg.get());
  }
  while (!Stack.empty()) {
    const Expr *E = Stack.back();
    Stack.pop_back();
    if (!E)
      continue;
    if (E->Kind == ExprKind::AddrOf && E->Lhs->Kind == ExprKind::VarRef &&
        E->Lhs->Name == Var)
      return true;
    Stack.push_back(E->Lhs.get());
    Stack.push_back(E->Rhs.get());
    for (const ExprPtr &Arg : E->Args)
      Stack.push_back(Arg.get());
  }
  return false;
}

/// Representatives covering every class of the partition induced by
/// comparisons against \p Constants: each threshold, plus both neighbors.
std::vector<int64_t> representatives(const std::set<int64_t> &Constants) {
  std::set<int64_t> Reps;
  for (int64_t C : Constants) {
    Reps.insert(C - 1);
    Reps.insert(C);
    Reps.insert(C + 1);
  }
  return {Reps.begin(), Reps.end()};
}

/// Checks that every define-use successor of a definition of \p Var is an
/// eligible constant comparison; collects the thresholds.
bool usesAreEligible(const ProcCfg &Proc, DuArcRange Uses,
                     const std::string &Var, std::set<int64_t> &Constants) {
  for (const auto &[UseNode, UseVar] : Uses) {
    if (*UseVar != Var)
      continue;
    const CfgNode &M = Proc.Nodes[UseNode];
    if (M.Kind != CfgNodeKind::Branch)
      return false;
    if (!isConstComparison(M.Value.get(), Var, Constants))
      return false;
  }
  return true;
}

/// Splices a nondeterministic choice over \p Reps assigning \p Var before
/// continuing to \p Succ (InvalidNode = halt). The choice is materialized
/// as a TossBranch plus one Assign per representative, appended to
/// \p Proc. Returns the TossBranch id.
NodeId spliceChoice(ProcCfg &Proc, const std::string &Var,
                    const std::vector<int64_t> &Reps, NodeId Succ,
                    SourceLoc Loc) {
  CfgNode Toss;
  Toss.Kind = CfgNodeKind::TossBranch;
  Toss.Loc = Loc;
  Toss.TossBound = static_cast<int64_t>(Reps.size()) - 1;
  NodeId TossId = static_cast<NodeId>(Proc.Nodes.size());
  Proc.Nodes.push_back(std::move(Toss));

  for (size_t I = 0, E = Reps.size(); I != E; ++I) {
    CfgNode Assign;
    Assign.Kind = CfgNodeKind::Assign;
    Assign.Loc = Loc;
    Assign.Target = Expr::varRef(Var, Loc);
    Assign.Value = Expr::intLit(Reps[I], Loc);
    if (Succ != InvalidNode)
      Assign.Arcs.push_back({ArcKind::Always, 0, Succ});
    NodeId AssignId = static_cast<NodeId>(Proc.Nodes.size());
    Proc.Nodes.push_back(std::move(Assign));
    Proc.Nodes[TossId].Arcs.push_back(
        {ArcKind::TossEq, static_cast<int64_t>(I), AssignId});
  }
  return TossId;
}

} // namespace

bool closer::partitionInputsInPlace(Module &Mod, AnalysisManager &AM,
                                    const PartitionOptions &Options,
                                    PartitionStats *Stats) {
  PartitionStats Local;
  PartitionStats &S = Stats ? *Stats : Local;
  assert(&AM.module() == &Mod && "manager must be bound to the module");
  bool AnyChanged = false;

  // Which procedures are called internally (their parameters are not pure
  // environment interfaces even if a process also instantiates them)?
  std::set<std::string> InternallyCalled;
  for (const ProcCfg &Proc : Mod.Procs)
    for (const CfgNode &Node : Proc.Nodes)
      if (Node.Kind == CfgNodeKind::Call && Node.Builtin == BuiltinKind::None)
        InternallyCalled.insert(Node.Callee);

  for (size_t PI = 0, PE = Mod.Procs.size(); PI != PE; ++PI) {
    ProcCfg &Proc = Mod.Procs[PI];
    // The define-use graph of the pristine procedure. Requested eagerly so
    // a partition pre-pass warms the cache for every procedure, changed or
    // not.
    const ProcDataflow *DF = &AM.getDefUse(PI);
    bool ProcChanged = false;

    // --- env_input() sites -----------------------------------------------
    size_t OriginalCount = Proc.Nodes.size();
    for (size_t I = 0; I != OriginalCount; ++I) {
      CfgNode &Node = Proc.Nodes[I];
      if (Node.Kind != CfgNodeKind::Call ||
          Node.Builtin != BuiltinKind::EnvInput)
        continue;
      if (!Node.Target || Node.Target->Kind != ExprKind::VarRef) {
        ++S.InputsLeftOpen;
        continue;
      }
      std::string Var = Node.Target->Name;
      if (isAddressTaken(Proc, Var) || Mod.findGlobal(Var)) {
        ++S.InputsLeftOpen;
        continue;
      }
      std::set<int64_t> Constants;
      if (!usesAreEligible(Proc, DF->duSuccessors(static_cast<NodeId>(I)),
                           Var, Constants) ||
          Constants.empty()) {
        ++S.InputsLeftOpen;
        continue;
      }
      std::vector<int64_t> Reps = representatives(Constants);
      if (Reps.size() > Options.MaxRepresentatives) {
        ++S.InputsLeftOpen;
        continue;
      }

      // Rewrite: the env_input node becomes the nondeterministic choice.
      NodeId Succ =
          Node.Arcs.empty() ? InvalidNode : Node.Arcs[0].Target;
      SourceLoc Loc = Node.Loc;
      NodeId TossId = spliceChoice(Proc, Var, Reps, Succ, Loc);
      // Redirect the original node into a skip to the choice (turn it into
      // a trivial assign so ids stay stable).
      CfgNode &Orig = Proc.Nodes[I]; // Re-index: vector may have grown.
      Orig.Kind = CfgNodeKind::Assign;
      Orig.Builtin = BuiltinKind::None;
      Orig.Callee.clear();
      Orig.Args.clear();
      Orig.Target = Expr::varRef(Var, Loc);
      Orig.Value = Expr::intLit(0, Loc);
      Orig.Arcs.clear();
      Orig.Arcs.push_back({ArcKind::Always, 0, TossId});
      ProcChanged = true;
      ++S.InputsPartitioned;
      S.RepresentativesTotal += Reps.size();
    }

    if (ProcChanged) {
      AM.invalidateProc(PI, /*AliasPreserved=*/true);
      AnyChanged = true;
    }

    // --- env process arguments -------------------------------------------
    if (InternallyCalled.count(Proc.Name))
      continue;
    // All instantiations must agree that a parameter is environment-bound.
    std::vector<int> EnvBound(Proc.Params.size(), -1); // -1 unseen, 1 env,
                                                       // 0 mixed/const.
    for (const ProcessDecl &Inst : Mod.Processes) {
      if (Inst.ProcName != Proc.Name)
        continue;
      for (size_t P = 0; P < Proc.Params.size() && P < Inst.Args.size();
           ++P) {
        int Kind = Inst.Args[P].IsEnv ? 1 : 0;
        if (EnvBound[P] == -1)
          EnvBound[P] = Kind;
        else if (EnvBound[P] != Kind)
          EnvBound[P] = 0;
      }
    }

    // Fresh define-use facts after the env_input rewrites above (a cache
    // hit when nothing changed).
    DF = &AM.getDefUse(PI);
    // Parameters partitioned this scan, by original index (ascending).
    // Erasing from Params / Inst.Args mid-loop shifts every later index,
    // which historically removed the wrong slot once a procedure had two
    // partitionable parameters; instead the scan only records indices and
    // a single compaction pass below erases them back-to-front.
    std::vector<size_t> DroppedParams;
    for (size_t P = 0; P != Proc.Params.size(); ++P) {
      if (EnvBound[P] != 1)
        continue;
      const std::string &Var = Proc.Params[P];
      if (isAddressTaken(Proc, Var))
        continue;
      // Every use reached by the entry value must be an eligible
      // comparison.
      std::set<int64_t> Constants;
      bool Eligible = true;
      for (size_t I = 0, E = Proc.Nodes.size(); I != E && Eligible; ++I) {
        if (!DF->uses(static_cast<NodeId>(I)).count(Var))
          continue;
        if (!DF->paramEntryReaches(static_cast<NodeId>(I), Var))
          continue;
        const CfgNode &M = Proc.Nodes[I];
        if (M.Kind != CfgNodeKind::Branch ||
            !isConstComparison(M.Value.get(), Var, Constants))
          Eligible = false;
      }
      if (!Eligible || Constants.empty()) {
        ++S.InputsLeftOpen;
        continue;
      }
      std::vector<int64_t> Reps = representatives(Constants);
      if (Reps.size() > Options.MaxRepresentatives) {
        ++S.InputsLeftOpen;
        continue;
      }

      // Splice the choice between Start and its successor; the parameter
      // becomes an ordinary (initialized) local bound by the choice.
      NodeId StartSucc = Proc.Nodes[Proc.Entry].Arcs.empty()
                             ? InvalidNode
                             : Proc.Nodes[Proc.Entry].Arcs[0].Target;
      NodeId TossId = spliceChoice(Proc, Var, Reps, StartSucc, SourceLoc());
      Proc.Nodes[Proc.Entry].Arcs.clear();
      Proc.Nodes[Proc.Entry].Arcs.push_back({ArcKind::Always, 0, TossId});

      // Keep storage as a local; the signature slot goes away in the
      // compaction pass after the scan. The CFG grew, so later parameters
      // must be judged against recomputed define-use facts. (The old
      // two-step driver kept consulting the stale pre-splice graph here,
      // indexing past its node vectors when a procedure had a second
      // partitionable parameter.)
      Proc.Locals.push_back({Var, -1});
      DroppedParams.push_back(P);
      AM.invalidateProc(PI, /*AliasPreserved=*/true);
      DF = &AM.getDefUse(PI);
      AnyChanged = true;
      ++S.ParamsPartitioned;
      S.RepresentativesTotal += Reps.size();
    }

    // Single compaction pass: erase partitioned slots from the signature
    // and every instantiation back-to-front, so each recorded index is
    // still the slot it was recorded against.
    for (size_t K = DroppedParams.size(); K != 0; --K) {
      size_t P = DroppedParams[K - 1];
      Proc.Params.erase(Proc.Params.begin() + static_cast<long>(P));
      for (ProcessDecl &Inst : Mod.Processes) {
        if (Inst.ProcName != Proc.Name)
          continue;
        if (P < Inst.Args.size())
          Inst.Args.erase(Inst.Args.begin() + static_cast<long>(P));
      }
    }
    if (!DroppedParams.empty())
      AM.invalidateProc(PI, /*AliasPreserved=*/true);
  }

  return AnyChanged;
}

Module closer::partitionInputs(const Module &Mod,
                               const PartitionOptions &Options,
                               PartitionStats *Stats) {
  Module Out = Mod.clone();
  AnalysisManager AM(Out);
  partitionInputsInPlace(Out, AM, Options, Stats);
  return Out;
}
