//===- Pipeline.h - One-call closing pipeline ------------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public facades of the closing side.
///
/// closer::compile() mirrors closer::explore(): source text plus a
/// PipelineOptions in, a CompileResult out — the final module, every stat
/// the executed passes produced, per-pass wall times and the analysis
/// cache counters, ready to serialize as a `closer-close-stats-v1` JSON
/// artifact:
///
/// \code
///   closer::PipelineOptions Opts;
///   Opts.Passes = {"partition", "close", "dedup-toss"};
///   closer::CompileResult R = closer::compile(SourceText, Opts);
///   if (!R.ok()) { report R.Diags; }
///   json::writeJsonFile(Path, closer::compileArtifactToJson(R));
/// \endcode
///
/// closer::closeSource() is the historical single-purpose wrapper (parse,
/// check, lower, analyze, close), now a thin shim over compile():
///
/// \code
///   closer::CloseResult R = closer::closeSource(SourceText);
///   if (!R.ok()) { report R.Diags; }
///   run VeriSoft-style exploration on *R.Closed, or persist
///   closer::emitModuleSource(*R.Closed).
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_CLOSING_PIPELINE_H
#define CLOSER_CLOSING_PIPELINE_H

#include "closing/PassManager.h"
#include "support/Json.h"

#include <memory>
#include <string>

namespace closer {

/// Everything produced by one compile() pipeline run.
struct CompileResult {
  DiagnosticEngine Diags;
  /// The module before the first wholesale transform (the open program),
  /// when a transform ran; null for pipelines that never replace the
  /// module. On a mid-pipeline failure this holds the last good module.
  std::unique_ptr<Module> Open;
  /// The final module; null when the pipeline aborted.
  std::unique_ptr<Module> M;

  // Stats from whichever passes ran (zero-initialized otherwise).
  ClosingStats Closing;
  PartitionStats Partition;
  NaiveCloseStats Naive;
  std::optional<InterfaceReport> Interface;
  /// Bytecode compiled by the optional lower-bytecode pass (null when the
  /// pass did not run). Feed into SearchOptions::VmCode to explore with
  /// the VM without recompiling.
  std::shared_ptr<const vm::CompiledModule> Bytecode;

  /// Wall time of every executed pass, in execution order.
  std::vector<PassStat> Passes;
  /// Computed/Reused counters of the cached analyses.
  AnalysisStats Analyses;
  /// On-disk analysis cache traffic (Enabled only when
  /// PipelineOptions::AnalysisCacheDir was set).
  AnalysisCacheStats Cache;
  /// (pass name, module source) captures from PrintAfter.
  std::vector<std::pair<std::string, std::string>> Printed;

  /// Options as actually executed (Passes expanded to the full pipeline).
  PipelineOptions EffectiveOptions;
  double WallSeconds = 0;

  bool ok() const { return M != nullptr && !Diags.hasErrors(); }
};

/// Runs the pass pipeline described by \p Options over \p Source. Never
/// throws; inspect CompileResult::ok() and Diags.
CompileResult compile(const std::string &Source,
                      const PipelineOptions &Options = {});

/// Schema tag of the compile-stats artifact.
inline const char *closeStatsJsonSchema() { return "closer-close-stats-v1"; }

/// Renders \p R as a `closer-close-stats-v1` document: effective options,
/// per-pass wall times, analysis cache counters and the per-transform
/// stats blocks.
json::Value compileArtifactToJson(const CompileResult &R);

/// Everything produced by one closing run.
struct CloseResult {
  DiagnosticEngine Diags;
  std::unique_ptr<Module> Open;   ///< The compiled open module.
  std::unique_ptr<Module> Closed; ///< The transformed closed module.
  ClosingStats Stats;

  bool ok() const { return Closed != nullptr && !Diags.hasErrors(); }
};

/// Parses, checks, lowers, analyzes and closes \p Source.
CloseResult closeSource(const std::string &Source,
                        const ClosingOptions &Options = {});

/// Compiles \p Source and returns the (possibly open) module, or nullptr
/// with diagnostics in \p Diags. Verifies the lowered module.
std::unique_ptr<Module> compileAndVerify(const std::string &Source,
                                         DiagnosticEngine &Diags);

} // namespace closer

#endif // CLOSER_CLOSING_PIPELINE_H
