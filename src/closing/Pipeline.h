//===- Pipeline.h - One-call closing pipeline ------------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public facade: MiniC source in, closed program out. This is the
/// entry point examples and downstream users call:
///
/// \code
///   closer::CloseResult R = closer::closeSource(SourceText);
///   if (!R.ok()) { report R.Diags; }
///   run VeriSoft-style exploration on *R.Closed, or persist
///   closer::emitModuleSource(*R.Closed).
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_CLOSING_PIPELINE_H
#define CLOSER_CLOSING_PIPELINE_H

#include "closing/ClosingTransform.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace closer {

/// Everything produced by one closing run.
struct CloseResult {
  DiagnosticEngine Diags;
  std::unique_ptr<Module> Open;   ///< The compiled open module.
  std::unique_ptr<Module> Closed; ///< The transformed closed module.
  ClosingStats Stats;

  bool ok() const { return Closed != nullptr && !Diags.hasErrors(); }
};

/// Parses, checks, lowers, analyzes and closes \p Source.
CloseResult closeSource(const std::string &Source,
                        const ClosingOptions &Options = {});

/// Compiles \p Source and returns the (possibly open) module, or nullptr
/// with diagnostics in \p Diags. Verifies the lowered module.
std::unique_ptr<Module> compileAndVerify(const std::string &Source,
                                         DiagnosticEngine &Diags);

} // namespace closer

#endif // CLOSER_CLOSING_PIPELINE_H
