//===- ClosingTransform.h - The paper's closing algorithm ------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The primary contribution of the paper: the algorithm of Figure 1, which
/// transforms an open program into a closed nondeterministic one.
///
/// Per procedure G_j, given V_I(n) from the environment-input analysis
/// (dataflow/EnvTaint.h implements Step 2):
///
///  * Step 3 marks the nodes preserved in G'_j: the start node, termination
///    statements, procedure calls, and the assignment/conditional
///    statements not in N_I;
///  * Step 4 reconstructs the control flow: for each arc a out of a marked
///    node, succ(a) is the set of marked nodes reachable through unmarked
///    nodes only; |succ(a)| = 0 drops the arc (this is where divergences of
///    the original program are lost), = 1 links directly, > 1 introduces a
///    conditional on VS_toss(|succ(a)|-1);
///  * Step 5 removes the parameters defined by E_S (they become
///    uninitialized locals so untainted residual writes still have
///    storage) and the matching arguments at every call site and process
///    instantiation. Environment-dependent payloads of visible operations
///    are replaced by the distinguished `unknown` literal — the value
///    cannot affect enabledness (paper §2 assumption) and every use of it
///    downstream has itself been eliminated.
///
/// `env_input()` / `env_output()` interface operations are never marked:
/// the transformation eliminates the interface altogether (§3).
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_CLOSING_CLOSINGTRANSFORM_H
#define CLOSER_CLOSING_CLOSINGTRANSFORM_H

#include "cfg/Cfg.h"
#include "dataflow/EnvTaint.h"

#include <cstdint>

namespace closer {

/// Transformation knobs (ablation switches for experiment E8).
struct ClosingOptions {
  TaintOptions Taint;
  /// Merge TossBranch nodes with identical successor sets within a
  /// procedure (the redundant-toss elimination the paper's §5/§7 sketches
  /// as future work).
  bool DedupTosses = false;
};

/// Counters describing one closing run.
struct ClosingStats {
  size_t NodesBefore = 0;
  size_t NodesAfter = 0;
  size_t TossNodesInserted = 0;
  size_t ArcsDropped = 0;       ///< |succ(a)| == 0 cases.
  size_t ParamsRemoved = 0;     ///< Step 5 Point 1.
  size_t ArgsRemoved = 0;       ///< Step 5 Point 2.
  size_t PayloadsSanitized = 0; ///< Visible-op arguments replaced by unknown.
  size_t EnvCallsRemoved = 0;   ///< env_input/env_output nodes eliminated.
  size_t NodesEliminated = 0;   ///< Unmarked assignment/conditional nodes.
  size_t TossNodesDeduped = 0;  ///< Removed by the standalone dedup pass.
};

/// Closes \p Mod with its most general environment: returns the transformed
/// module S'. \p Analysis must have been computed on \p Mod.
Module closeModule(const Module &Mod, const EnvAnalysis &Analysis,
                   const ClosingOptions &Options = {},
                   ClosingStats *Stats = nullptr);

/// Convenience overload running the analysis internally.
Module closeModule(const Module &Mod, const ClosingOptions &Options = {},
                   ClosingStats *Stats = nullptr);

/// Step 3 of Figure 1, exposed for tests: is node \p N of procedure
/// \p ProcIdx preserved in the transformed graph?
bool isMarkedNode(const Module &Mod, const EnvAnalysis &Analysis,
                  size_t ProcIdx, NodeId N);

/// Standalone form of the §5/§7 redundant-toss elimination, applicable to
/// any module (ClosingOptions::DedupTosses performs the same merge inline
/// during closing): TossBranch nodes of a procedure with identical bound
/// and successor arcs are merged, iterated to a fixpoint so chains of
/// tosses collapse too, and unreachable nodes are pruned. Returns the
/// number of toss nodes removed.
size_t dedupTossBranches(ProcCfg &Proc);

/// Whole-module variant; when \p ChangedProcs is non-null it receives the
/// indices of the procedures that were rewritten (for per-procedure
/// analysis invalidation).
size_t dedupTossBranches(Module &Mod,
                         std::vector<size_t> *ChangedProcs = nullptr);

} // namespace closer

#endif // CLOSER_CLOSING_CLOSINGTRANSFORM_H
