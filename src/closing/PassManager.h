//===- PassManager.h - Pass pipeline for the closing side ------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LLVM-style pass manager over which the whole closing side is
/// expressed: the frontend (parse / sema / lower), the CFG verifier, the
/// Figure 1 closing transformation, the §7 input-domain partitioning, the
/// redundant-toss elimination, the §3 naive baseline and the interface
/// inventory are all uniform passes run by one PassPipeline against one
/// CompilationContext.
///
/// The context owns the module *and* an AnalysisManager, so a pipeline such
/// as `partition → close` shares cached alias / define-use / taint results
/// across passes instead of recomputing them per entry point — previously
/// `closer partition | closer close` round-tripped through source text
/// twice and re-ran every analysis from scratch each time.
///
/// Contracts passes rely on:
///
///  * Transform passes that touch only some procedures mutate
///    `Module::Procs[i]` in place and call
///    `AnalysisManager::invalidateProc`; the Procs vector is never resized,
///    so cached per-procedure analyses of untouched procedures stay valid.
///  * Transform passes that rebuild the module wholesale (close,
///    naive-close) go through `CompilationContext::replaceModule`, which
///    rebinds the analysis manager *before* the old module dies.
///  * A pass returning false aborts the pipeline; it must have explained
///    why through Ctx.Diags.
///
/// Most callers want the closer::compile() facade in closing/Pipeline.h
/// rather than this header; PassManager.h is for composing custom
/// pipelines and for tests that poke individual passes.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_CLOSING_PASSMANAGER_H
#define CLOSER_CLOSING_PASSMANAGER_H

#include "closing/ClosingTransform.h"
#include "closing/DomainPartition.h"
#include "closing/InterfaceReport.h"
#include "dataflow/AnalysisCache.h"
#include "dataflow/AnalysisManager.h"
#include "envgen/NaiveClose.h"
#include "support/Diagnostics.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace closer {

struct Program;

namespace vm {
struct CompiledModule;
} // namespace vm

/// Options steering one pipeline run. The per-transform option structs are
/// reused verbatim from the standalone entry points.
struct PipelineOptions {
  /// Module-pass tail of the pipeline (run after parse/sema/lower/verify).
  /// Empty means the default pipeline, {"close"}. A list starting with
  /// "parse" is taken as the complete pipeline, frontend included.
  std::vector<std::string> Passes;

  /// Run the CFG verifier after every pass (once a module exists) and
  /// abort naming the offending pass on failure.
  bool VerifyEach = false;

  /// Capture emitModuleSource() after each run of the named pass.
  std::string PrintAfter;

  /// Directory of the on-disk analysis cache (dataflow/AnalysisCache.h).
  /// Empty disables persistence. When set, the lower pass restores every
  /// matching entry into the AnalysisManager and the close pass saves the
  /// materialized results back, so re-closing an edited corpus recomputes
  /// only the touched procedures.
  std::string AnalysisCacheDir;

  ClosingOptions Closing;
  PartitionOptions Partition;
  NaiveCloseOptions Naive;

  /// The pipeline this run will actually execute: Passes with the frontend
  /// prefix (parse, sema, lower, verify) prepended unless already explicit,
  /// and the default tail substituted when Passes is empty.
  std::vector<std::string> expandedPasses() const;

  /// Structural validation of the expanded pipeline (unknown pass names,
  /// frontend passes out of position, PrintAfter naming an absent pass,
  /// nonsensical option values). Errors in the result abort compile().
  std::vector<Diagnostic> validate() const;
};

/// Wall time of one executed pass.
struct PassStat {
  std::string Name;
  double WallSeconds = 0;
};

/// All state a pipeline run threads through its passes.
class CompilationContext {
public:
  CompilationContext(std::string SourceText, PipelineOptions Options);
  ~CompilationContext();

  std::string Source;
  PipelineOptions Opts;
  DiagnosticEngine Diags;

  /// Set by the parse pass.
  std::unique_ptr<Program> AST;
  /// Set by the lower pass; replaced by wholesale transforms.
  std::unique_ptr<Module> M;
  /// Created by the lower pass, bound to *M from then on.
  std::unique_ptr<AnalysisManager> AM;
  /// The module as it was before the first wholesale transform — the
  /// "open" program a caller may want alongside the closed result.
  std::unique_ptr<Module> RetainedOpen;

  // Result-stat slots, filled by the passes that run.
  ClosingStats Closing;
  PartitionStats Partition;
  NaiveCloseStats Naive;
  std::optional<InterfaceReport> Interface;
  /// Restore/save traffic of the analysis cache (Enabled only when
  /// Opts.AnalysisCacheDir is set).
  AnalysisCacheStats CacheStats;
  /// Set by the lower-bytecode pass: the current module compiled to the
  /// vm/ register bytecode (shareable across any number of VM instances).
  /// Note the pass snapshots the module at its position in the pipeline;
  /// run it after the transforms whose output should be executed.
  std::shared_ptr<const vm::CompiledModule> Bytecode;

  /// Installs \p NewM as the context's module: rebinds the analysis
  /// manager first (cached analyses reference the old module), then
  /// retains the old module in RetainedOpen if nothing is retained yet.
  void replaceModule(std::unique_ptr<Module> NewM);
};

/// One unit of work over a CompilationContext.
class Pass {
public:
  virtual ~Pass();

  /// Stable name used in --passes lists, --print-after, stats and
  /// verify-each diagnostics.
  virtual const char *name() const = 0;

  /// Runs the pass. Returning false aborts the pipeline; the pass must
  /// have reported the reason through Ctx.Diags.
  virtual bool run(CompilationContext &Ctx) = 0;
};

/// Runs a sequence of passes, recording per-pass wall time, optionally
/// verifying the module between passes and capturing printed module
/// source after requested passes.
class PassPipeline {
public:
  void add(std::unique_ptr<Pass> P);

  /// Runs every pass in order against \p Ctx; stops at the first failure.
  /// VerifyEach / PrintAfter behavior comes from Ctx.Opts.
  bool run(CompilationContext &Ctx);

  /// Wall time of each pass that ran, in execution order.
  const std::vector<PassStat> &stats() const { return Stats; }

  /// (pass name, module source) captures from --print-after.
  const std::vector<std::pair<std::string, std::string>> &printed() const {
    return Printed;
  }

private:
  std::vector<std::unique_ptr<Pass>> Passes;
  std::vector<PassStat> Stats;
  std::vector<std::pair<std::string, std::string>> Printed;
};

/// Instantiates the pass registered under \p Name (see knownPassNames());
/// null for an unknown name.
std::unique_ptr<Pass> createPass(const std::string &Name);

/// Every name createPass() accepts, in canonical pipeline order:
/// parse, sema, lower, verify, partition, close, dedup-toss, naive-close,
/// interface, lower-bytecode.
const std::vector<std::string> &knownPassNames();

} // namespace closer

#endif // CLOSER_CLOSING_PASSMANAGER_H
