//===- Pipeline.cpp - One-call closing pipeline -----------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "closing/Pipeline.h"

#include "cfg/CfgBuilder.h"
#include "cfg/CfgVerifier.h"
#include "vm/Bytecode.h"

#include <chrono>

using namespace closer;

std::unique_ptr<Module> closer::compileAndVerify(const std::string &Source,
                                                 DiagnosticEngine &Diags) {
  std::unique_ptr<Module> Mod = compileMiniC(Source, Diags);
  if (!Mod)
    return nullptr;
  if (!verifyModule(*Mod, Diags))
    return nullptr;
  return Mod;
}

CompileResult closer::compile(const std::string &Source,
                              const PipelineOptions &Options) {
  CompileResult R;
  R.EffectiveOptions = Options;
  R.EffectiveOptions.Passes = Options.expandedPasses();

  for (const Diagnostic &D : R.EffectiveOptions.validate()) {
    switch (D.Kind) {
    case DiagKind::Error:
      R.Diags.error(D.Loc, D.Message);
      break;
    case DiagKind::Warning:
      R.Diags.warning(D.Loc, D.Message);
      break;
    case DiagKind::Note:
      R.Diags.note(D.Loc, D.Message);
      break;
    }
  }
  if (R.Diags.hasErrors())
    return R;

  CompilationContext Ctx(Source, R.EffectiveOptions);
  PassPipeline Pipeline;
  for (const std::string &Name : R.EffectiveOptions.Passes)
    Pipeline.add(createPass(Name)); // validate() vetted every name.

  auto Start = std::chrono::steady_clock::now();
  bool Ok = Pipeline.run(Ctx);
  std::chrono::duration<double> Elapsed =
      std::chrono::steady_clock::now() - Start;
  R.WallSeconds = Elapsed.count();

  R.Diags = std::move(Ctx.Diags);
  R.Passes = Pipeline.stats();
  R.Printed = Pipeline.printed();
  if (Ctx.AM)
    R.Analyses = Ctx.AM->stats();
  R.Cache = Ctx.CacheStats;
  R.Closing = Ctx.Closing;
  R.Partition = Ctx.Partition;
  R.Naive = Ctx.Naive;
  R.Interface = std::move(Ctx.Interface);
  R.Bytecode = std::move(Ctx.Bytecode);
  R.Open = std::move(Ctx.RetainedOpen);
  if (Ok)
    R.M = std::move(Ctx.M);
  else if (!R.Open)
    R.Open = std::move(Ctx.M); // Last good module, for post-mortems.
  return R;
}

CloseResult closer::closeSource(const std::string &Source,
                                const ClosingOptions &Options) {
  PipelineOptions PO;
  PO.Closing = Options;
  CompileResult CR = compile(Source, PO);

  CloseResult Result;
  Result.Diags = std::move(CR.Diags);
  Result.Stats = CR.Closing;
  Result.Open = std::move(CR.Open);
  Result.Closed = std::move(CR.M);
  return Result;
}

json::Value closer::compileArtifactToJson(const CompileResult &R) {
  json::Value Root = json::Value::object();
  Root.add("schema", closeStatsJsonSchema());
  Root.add("ok", R.ok());
  Root.add("wall_seconds", R.WallSeconds);

  const PipelineOptions &O = R.EffectiveOptions;
  json::Value Opts = json::Value::object();
  json::Value PassList = json::Value::array();
  for (const std::string &Name : O.Passes)
    PassList.push(Name);
  Opts.add("passes", std::move(PassList));
  Opts.add("verify_each", O.VerifyEach);
  Opts.add("print_after", O.PrintAfter);
  Opts.add("coarse_taint", O.Closing.Taint.CoarseMode);
  Opts.add("dedup_tosses", O.Closing.DedupTosses);
  Opts.add("max_representatives",
           static_cast<uint64_t>(O.Partition.MaxRepresentatives));
  Opts.add("naive_domain_bound", O.Naive.DomainBound);
  Opts.add("analysis_cache_dir", O.AnalysisCacheDir);
  Root.add("options", std::move(Opts));

  json::Value Passes = json::Value::array();
  for (const PassStat &P : R.Passes) {
    json::Value Entry = json::Value::object();
    Entry.add("name", P.Name);
    Entry.add("wall_seconds", P.WallSeconds);
    Passes.push(std::move(Entry));
  }
  Root.add("passes", std::move(Passes));

  auto CounterToJson = [](const AnalysisCounter &C) {
    json::Value V = json::Value::object();
    V.add("computed", C.Computed);
    V.add("reused", C.Reused);
    return V;
  };
  json::Value Analyses = json::Value::object();
  Analyses.add("alias", CounterToJson(R.Analyses.Alias));
  Analyses.add("defuse", CounterToJson(R.Analyses.DefUse));
  Analyses.add("envtaint", CounterToJson(R.Analyses.EnvTaint));
  Root.add("analyses", std::move(Analyses));

  if (R.Cache.Enabled) {
    json::Value Cache = json::Value::object();
    Cache.add("alias_restored", R.Cache.AliasRestored);
    Cache.add("defuse_restored", R.Cache.DefUseRestored);
    Cache.add("taint_restored", R.Cache.TaintRestored);
    Cache.add("entries_saved", R.Cache.EntriesSaved);
    Root.add("analysis_cache", std::move(Cache));
  }

  json::Value Closing = json::Value::object();
  Closing.add("nodes_before", static_cast<uint64_t>(R.Closing.NodesBefore));
  Closing.add("nodes_after", static_cast<uint64_t>(R.Closing.NodesAfter));
  Closing.add("toss_nodes_inserted",
              static_cast<uint64_t>(R.Closing.TossNodesInserted));
  Closing.add("toss_nodes_deduped",
              static_cast<uint64_t>(R.Closing.TossNodesDeduped));
  Closing.add("arcs_dropped", static_cast<uint64_t>(R.Closing.ArcsDropped));
  Closing.add("params_removed",
              static_cast<uint64_t>(R.Closing.ParamsRemoved));
  Closing.add("args_removed", static_cast<uint64_t>(R.Closing.ArgsRemoved));
  Closing.add("payloads_sanitized",
              static_cast<uint64_t>(R.Closing.PayloadsSanitized));
  Closing.add("env_calls_removed",
              static_cast<uint64_t>(R.Closing.EnvCallsRemoved));
  Closing.add("nodes_eliminated",
              static_cast<uint64_t>(R.Closing.NodesEliminated));
  Root.add("closing", std::move(Closing));

  json::Value Partition = json::Value::object();
  Partition.add("inputs_partitioned",
                static_cast<uint64_t>(R.Partition.InputsPartitioned));
  Partition.add("params_partitioned",
                static_cast<uint64_t>(R.Partition.ParamsPartitioned));
  Partition.add("inputs_left_open",
                static_cast<uint64_t>(R.Partition.InputsLeftOpen));
  Partition.add("representatives_total",
                static_cast<uint64_t>(R.Partition.RepresentativesTotal));
  Root.add("partition", std::move(Partition));

  json::Value Naive = json::Value::object();
  Naive.add("env_inputs_rewritten",
            static_cast<uint64_t>(R.Naive.EnvInputsRewritten));
  Naive.add("env_outputs_rewritten",
            static_cast<uint64_t>(R.Naive.EnvOutputsRewritten));
  Naive.add("wrappers_synthesized",
            static_cast<uint64_t>(R.Naive.WrappersSynthesized));
  Root.add("naive", std::move(Naive));

  if (R.Interface)
    Root.add("interface_closed", R.Interface->isClosed());

  if (R.Bytecode) {
    json::Value Bc = json::Value::object();
    Bc.add("instructions", static_cast<uint64_t>(R.Bytecode->Code.size()));
    Bc.add("max_regs", static_cast<uint64_t>(R.Bytecode->MaxRegs));
    Bc.add("procedures", static_cast<uint64_t>(R.Bytecode->Procs.size()));
    Root.add("bytecode", std::move(Bc));
  }

  return Root;
}
