//===- Pipeline.cpp - One-call closing pipeline -----------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "closing/Pipeline.h"

#include "cfg/CfgBuilder.h"
#include "cfg/CfgVerifier.h"

using namespace closer;

std::unique_ptr<Module> closer::compileAndVerify(const std::string &Source,
                                                 DiagnosticEngine &Diags) {
  std::unique_ptr<Module> Mod = compileMiniC(Source, Diags);
  if (!Mod)
    return nullptr;
  if (!verifyModule(*Mod, Diags))
    return nullptr;
  return Mod;
}

CloseResult closer::closeSource(const std::string &Source,
                                const ClosingOptions &Options) {
  CloseResult Result;
  Result.Open = compileAndVerify(Source, Result.Diags);
  if (!Result.Open)
    return Result;
  Module Closed = closeModule(*Result.Open, Options, &Result.Stats);
  if (!verifyModule(Closed, Result.Diags)) {
    Result.Diags.error(SourceLoc(),
                       "internal error: closed module failed verification");
    return Result;
  }
  Result.Closed = std::make_unique<Module>(std::move(Closed));
  return Result;
}
