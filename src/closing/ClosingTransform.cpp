//===- ClosingTransform.cpp - The paper's closing algorithm ----------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "closing/ClosingTransform.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>

using namespace closer;

bool closer::isMarkedNode(const Module &Mod, const EnvAnalysis &Analysis,
                          size_t ProcIdx, NodeId N) {
  const CfgNode &Node = Mod.Procs[ProcIdx].Nodes[N];
  const ProcTaint &PT = Analysis.taint().Procs[ProcIdx];
  switch (Node.Kind) {
  case CfgNodeKind::Start:
  case CfgNodeKind::Return:
  case CfgNodeKind::TossBranch:
    return true;
  case CfgNodeKind::Assign:
  case CfgNodeKind::Branch:
  case CfgNodeKind::Switch:
    // Step 3 point 4: assignment and conditional statements survive only
    // when they do not use environment-dependent values.
    return !PT.InNI[N];
  case CfgNodeKind::Call:
    switch (Node.Builtin) {
    case BuiltinKind::EnvInput:
    case BuiltinKind::EnvOutput:
      // The open interface itself: always eliminated (§3: "eliminate the
      // interface altogether").
      return false;
    case BuiltinKind::VsToss:
      // VS_toss is an invisible operation; a toss whose bound depends on
      // the environment is eliminated like any other tainted assignment
      // (its result variable is tracked as environment-defined).
      return !PT.InNI[N];
    default:
      // All procedure calls — including every visible operation — are
      // preserved (Step 3 point 3).
      return true;
    }
  }
  return true;
}

namespace {

/// succ(a): the set of marked nodes reachable from arc \p Arc through
/// unmarked nodes exclusively, in ascending node-id order (a deterministic
/// order keeps transformed programs reproducible).
std::vector<NodeId> succSet(const ProcCfg &Proc,
                            const std::vector<bool> &Marked,
                            const CfgArc &Arc) {
  std::set<NodeId> Result;
  std::set<NodeId> VisitedUnmarked;
  std::vector<NodeId> Work = {Arc.Target};
  while (!Work.empty()) {
    NodeId Id = Work.back();
    Work.pop_back();
    if (Marked[Id]) {
      Result.insert(Id);
      continue;
    }
    if (!VisitedUnmarked.insert(Id).second)
      continue; // Cycle through unmarked nodes: divergence not preserved.
    for (const CfgArc &Next : Proc.Nodes[Id].Arcs)
      Work.push_back(Next.Target);
  }
  return {Result.begin(), Result.end()};
}

/// Hash index over procedure names, built once per closeModule call so
/// sanitizeNode does not pay a linear Module::procIndex scan per call node
/// (quadratic on many-procedure corpora).
using ProcIndexMap = std::unordered_map<std::string, int>;

int lookupProc(const ProcIndexMap &Map, const std::string &Name) {
  auto It = Map.find(Name);
  return It == Map.end() ? -1 : It->second;
}

class ProcCloser {
public:
  ProcCloser(const Module &Mod, const EnvAnalysis &Analysis, size_t ProcIdx,
             const ClosingOptions &Options, ClosingStats &Stats,
             const ProcIndexMap &ProcIdxByName)
      : Mod(Mod), Analysis(Analysis), ProcIdx(ProcIdx), Options(Options),
        Stats(Stats), ProcIdxByName(ProcIdxByName), Proc(Mod.Procs[ProcIdx]),
        PT(Analysis.taint().Procs[ProcIdx]) {}

  ProcCfg run() {
    ProcCfg Out;
    Out.Name = Proc.Name;
    buildSignature(Out);
    markNodes();
    createMarkedNodes(Out);
    wireArcs(Out);
    pruneUnreachableNodes(Out);
    return Out;
  }

private:
  /// Step 5 point 1: parameters defined by E_S are removed from the
  /// signature; they remain as locals so residual untainted writes keep
  /// their storage.
  void buildSignature(ProcCfg &Out) {
    for (size_t I = 0, E = Proc.Params.size(); I != E; ++I) {
      if (PT.TaintedParams[I]) {
        ++Stats.ParamsRemoved;
        Out.Locals.push_back({Proc.Params[I], -1});
      } else {
        Out.Params.push_back(Proc.Params[I]);
      }
    }
    Out.Locals.insert(Out.Locals.end(), Proc.Locals.begin(),
                      Proc.Locals.end());
  }

  void markNodes() {
    Marked.assign(Proc.Nodes.size(), false);
    for (size_t I = 0, E = Proc.Nodes.size(); I != E; ++I) {
      Marked[I] = isMarkedNode(Mod, Analysis, ProcIdx, static_cast<NodeId>(I));
      if (!Marked[I]) {
        const CfgNode &Node = Proc.Nodes[I];
        if (Node.Kind == CfgNodeKind::Call &&
            (Node.Builtin == BuiltinKind::EnvInput ||
             Node.Builtin == BuiltinKind::EnvOutput))
          ++Stats.EnvCallsRemoved;
        else
          ++Stats.NodesEliminated;
      }
    }
  }

  /// Clones every marked node (payload sanitized per Step 5) into \p Out,
  /// recording the id mapping. Arcs are wired in a second pass.
  void createMarkedNodes(ProcCfg &Out) {
    NewId.assign(Proc.Nodes.size(), InvalidNode);
    for (size_t I = 0, E = Proc.Nodes.size(); I != E; ++I) {
      if (!Marked[I])
        continue;
      CfgNode Clone = Proc.Nodes[I].clone();
      Clone.Arcs.clear();
      sanitizeNode(Clone, static_cast<NodeId>(I));
      NewId[I] = static_cast<NodeId>(Out.Nodes.size());
      Out.Nodes.push_back(std::move(Clone));
    }
    assert(NewId[Proc.Entry] == 0 && "start node must map to entry");
  }

  /// Step 5 point 2 plus payload sanitization for visible operations.
  void sanitizeNode(CfgNode &Node, NodeId OrigId) {
    if (Node.Kind != CfgNodeKind::Call)
      return;

    if (Node.Builtin == BuiltinKind::None) {
      // User procedure: drop arguments whose parameter Step 5 removed.
      int CalleeIdx = lookupProc(ProcIdxByName, Node.Callee);
      if (CalleeIdx < 0)
        return;
      const ProcTaint &Callee = Analysis.taint().Procs[CalleeIdx];
      std::vector<ExprPtr> Kept;
      for (size_t A = 0, AE = Node.Args.size(); A != AE; ++A) {
        if (A < Callee.TaintedParams.size() && Callee.TaintedParams[A]) {
          ++Stats.ArgsRemoved;
          continue;
        }
        Kept.push_back(std::move(Node.Args[A]));
      }
      Node.Args = std::move(Kept);
      return;
    }

    // Builtin: replace environment-dependent value arguments with the
    // distinguished `unknown` placeholder. The object argument (if any) is
    // never data.
    const BuiltinInfo &Info = builtinInfo(Node.Builtin);
    unsigned FirstValueArg = Info.TakesObject ? 1 : 0;
    for (size_t A = FirstValueArg, AE = Node.Args.size(); A != AE; ++A) {
      const Expr *Arg = Node.Args[A].get();
      if (Arg->Kind == ExprKind::Unknown)
        continue; // Already sanitized (idempotence).
      if (Analysis.taint().exprTainted(Mod, Analysis.alias(), ProcIdx, OrigId,
                                       Arg, &Analysis.exprUsesCache())) {
        Node.Args[A] = Expr::unknown(Arg->Loc);
        ++Stats.PayloadsSanitized;
      }
    }
  }

  /// Step 4: reconstruct control flow, inserting VS_toss conditionals where
  /// the eliminated region had several marked continuations.
  void wireArcs(ProcCfg &Out) {
    // Optional memoization of toss nodes by successor set (E8 ablation).
    std::map<std::vector<NodeId>, NodeId> TossMemo;

    for (size_t I = 0, E = Proc.Nodes.size(); I != E; ++I) {
      if (!Marked[I])
        continue;
      for (const CfgArc &Arc : Proc.Nodes[I].Arcs) {
        std::vector<NodeId> Succ = succSet(Proc, Marked, Arc);
        if (Succ.empty()) {
          // Point 2.1: the region beyond this arc diverges without ever
          // reaching a preserved statement; drop the arc.
          ++Stats.ArcsDropped;
          continue;
        }
        if (Succ.size() == 1) {
          // Index Out.Nodes afresh: toss insertion below may reallocate.
          Out.Nodes[NewId[I]].Arcs.push_back(
              {Arc.Kind, Arc.Value, NewId[Succ[0]]});
          continue;
        }
        // Point 2.3: conditional on VS_toss(|succ(a)| - 1).
        NodeId TossId = InvalidNode;
        if (Options.DedupTosses) {
          auto It = TossMemo.find(Succ);
          if (It != TossMemo.end())
            TossId = It->second;
        }
        if (TossId == InvalidNode) {
          CfgNode Toss;
          Toss.Kind = CfgNodeKind::TossBranch;
          Toss.Loc = Proc.Nodes[I].Loc;
          Toss.TossBound = static_cast<int64_t>(Succ.size()) - 1;
          for (size_t S = 0, SE = Succ.size(); S != SE; ++S)
            Toss.Arcs.push_back({ArcKind::TossEq, static_cast<int64_t>(S),
                                 NewId[Succ[S]]});
          TossId = static_cast<NodeId>(Out.Nodes.size());
          Out.Nodes.push_back(std::move(Toss));
          ++Stats.TossNodesInserted;
          if (Options.DedupTosses)
            TossMemo.emplace(Succ, TossId);
        }
        // NewNode reference may be stale after push_back; reindex.
        Out.Nodes[NewId[I]].Arcs.push_back({Arc.Kind, Arc.Value, TossId});
      }
    }
  }

  const Module &Mod;
  const EnvAnalysis &Analysis;
  size_t ProcIdx;
  const ClosingOptions &Options;
  ClosingStats &Stats;
  const ProcIndexMap &ProcIdxByName;
  const ProcCfg &Proc;
  const ProcTaint &PT;
  std::vector<bool> Marked;
  std::vector<NodeId> NewId;
};

} // namespace

Module closer::closeModule(const Module &Mod, const EnvAnalysis &Analysis,
                           const ClosingOptions &Options,
                           ClosingStats *Stats) {
  ClosingStats Local;
  ClosingStats &S = Stats ? *Stats : Local;
  S.NodesBefore = Mod.totalNodes();

  Module Out;
  Out.Comms = Mod.Comms;
  Out.Globals = Mod.Globals;

  ProcIndexMap ProcIdxByName;
  for (size_t P = 0, E = Mod.Procs.size(); P != E; ++P)
    ProcIdxByName.emplace(Mod.Procs[P].Name, static_cast<int>(P));

  for (size_t P = 0, E = Mod.Procs.size(); P != E; ++P) {
    ProcCloser Closer(Mod, Analysis, P, Options, S, ProcIdxByName);
    Out.Procs.push_back(Closer.run());
  }

  // Step 5 for process instantiations: drop the arguments bound to removed
  // top-level parameters (this also drops the `env` markers, making the
  // instantiations closed).
  for (const ProcessDecl &Inst : Mod.Processes) {
    ProcessDecl NewInst = Inst;
    int ProcIdx = lookupProc(ProcIdxByName, Inst.ProcName);
    if (ProcIdx >= 0) {
      const ProcTaint &PT = Analysis.taint().Procs[ProcIdx];
      NewInst.Args.clear();
      for (size_t A = 0, AE = Inst.Args.size(); A != AE; ++A) {
        if (A < PT.TaintedParams.size() && PT.TaintedParams[A])
          continue;
        NewInst.Args.push_back(Inst.Args[A]);
      }
    }
    Out.Processes.push_back(std::move(NewInst));
  }

  S.NodesAfter = Out.totalNodes();
  return Out;
}

Module closer::closeModule(const Module &Mod, const ClosingOptions &Options,
                           ClosingStats *Stats) {
  EnvAnalysis Analysis(Mod, Options.Taint);
  return closeModule(Mod, Analysis, Options, Stats);
}

size_t closer::dedupTossBranches(ProcCfg &Proc) {
  size_t Removed = 0;
  // Merging one toss into another can make a third toss (whose arcs were
  // redirected) newly identical to a fourth; iterate to a fixpoint.
  for (;;) {
    // Key: bound plus the full labeled arc vector.
    std::map<std::pair<int64_t, std::vector<std::tuple<ArcKind, int64_t,
                                                       NodeId>>>,
             NodeId>
        Seen;
    std::map<NodeId, NodeId> Remap;
    for (size_t I = 0, E = Proc.Nodes.size(); I != E; ++I) {
      const CfgNode &Node = Proc.Nodes[I];
      if (Node.Kind != CfgNodeKind::TossBranch)
        continue;
      std::vector<std::tuple<ArcKind, int64_t, NodeId>> Arcs;
      Arcs.reserve(Node.Arcs.size());
      for (const CfgArc &Arc : Node.Arcs)
        Arcs.emplace_back(Arc.Kind, Arc.Value, Arc.Target);
      auto [It, Inserted] = Seen.try_emplace(
          {Node.TossBound, std::move(Arcs)}, static_cast<NodeId>(I));
      if (!Inserted)
        Remap.emplace(static_cast<NodeId>(I), It->second);
    }
    if (Remap.empty())
      break;
    for (CfgNode &Node : Proc.Nodes)
      for (CfgArc &Arc : Node.Arcs) {
        auto It = Remap.find(Arc.Target);
        if (It != Remap.end())
          Arc.Target = It->second;
      }
    Removed += Remap.size();
  }
  if (Removed)
    pruneUnreachableNodes(Proc);
  return Removed;
}

size_t closer::dedupTossBranches(Module &Mod,
                                 std::vector<size_t> *ChangedProcs) {
  size_t Removed = 0;
  for (size_t P = 0, E = Mod.Procs.size(); P != E; ++P) {
    size_t N = dedupTossBranches(Mod.Procs[P]);
    if (N && ChangedProcs)
      ChangedProcs->push_back(P);
    Removed += N;
  }
  return Removed;
}
