//===- InterfaceReport.h - Environment-interface inventory -----*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structured inventory of an open program's environment interface: what
/// I_S and O_S actually are, where environment data enters, and how far it
/// spreads. The paper's §6 platform is as much about *understanding* large
/// reactive code ("a lightweight testing and reverse-engineering platform")
/// as about verifying it; this report is the understanding half — it tells
/// a developer what they would have to stub manually, before deciding what
/// to close automatically.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_CLOSING_INTERFACEREPORT_H
#define CLOSER_CLOSING_INTERFACEREPORT_H

#include "dataflow/EnvTaint.h"

#include <string>
#include <vector>

namespace closer {

/// One place where environment data enters or leaves the system.
struct InterfacePoint {
  enum class Kind {
    EnvArg,        ///< `env` process argument.
    EnvInputCall,  ///< x = env_input().
    EnvOutputCall, ///< env_output(e).
  };
  Kind K = Kind::EnvInputCall;
  std::string Proc;    ///< Procedure (or process for EnvArg).
  std::string Detail;  ///< Variable / parameter / process name.
  SourceLoc Loc;
};

struct InterfaceReport {
  std::vector<InterfacePoint> Points;

  // Spread of environment data through the system:
  std::vector<std::string> TaintedChannels;
  std::vector<std::string> TaintedShared;
  std::vector<std::string> TaintedGlobals;
  /// "proc(paramName)" entries for parameters bound to env data.
  std::vector<std::string> TaintedParams;
  /// Procedures whose return value is environment-dependent.
  std::vector<std::string> TaintedReturns;

  size_t TotalNodes = 0;
  size_t NodesDependentOnEnv = 0; ///< |N_I| summed over procedures.

  bool isClosed() const { return Points.empty() && NodesDependentOnEnv == 0; }

  /// Human-readable rendering.
  std::string str() const;
};

/// Builds the inventory for \p Mod using a fresh environment analysis.
InterfaceReport buildInterfaceReport(const Module &Mod);

/// Builds the inventory reusing an existing analysis of \p Mod.
InterfaceReport buildInterfaceReport(const Module &Mod,
                                     const EnvAnalysis &Analysis);

} // namespace closer

#endif // CLOSER_CLOSING_INTERFACEREPORT_H
