//===- InterfaceReport.cpp - Environment-interface inventory ----------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "closing/InterfaceReport.h"

using namespace closer;

std::string InterfaceReport::str() const {
  std::string Out;
  Out += "environment interface\n";
  Out += "=====================\n";
  if (Points.empty()) {
    Out += "  (none: the program is closed)\n";
  } else {
    for (const InterfacePoint &P : Points) {
      Out += "  ";
      switch (P.K) {
      case InterfacePoint::Kind::EnvArg:
        Out += "env argument  ";
        break;
      case InterfacePoint::Kind::EnvInputCall:
        Out += "env_input     ";
        break;
      case InterfacePoint::Kind::EnvOutputCall:
        Out += "env_output    ";
        break;
      }
      Out += P.Proc;
      if (!P.Detail.empty())
        Out += " (" + P.Detail + ")";
      if (P.Loc.isValid())
        Out += " at " + P.Loc.str();
      Out += "\n";
    }
  }

  auto Section = [&Out](const char *Title,
                        const std::vector<std::string> &Items) {
    if (Items.empty())
      return;
    Out += std::string(Title) + ":";
    for (const std::string &I : Items)
      Out += " " + I;
    Out += "\n";
  };
  Out += "\nenvironment-data spread\n";
  Out += "=======================\n";
  Section("  tainted channels", TaintedChannels);
  Section("  tainted shared vars", TaintedShared);
  Section("  tainted globals", TaintedGlobals);
  Section("  tainted parameters", TaintedParams);
  Section("  tainted returns", TaintedReturns);
  Out += "  statements dependent on the environment: " +
         std::to_string(NodesDependentOnEnv) + " of " +
         std::to_string(TotalNodes) + "\n";
  return Out;
}

InterfaceReport closer::buildInterfaceReport(const Module &Mod) {
  EnvAnalysis Analysis(Mod);
  return buildInterfaceReport(Mod, Analysis);
}

InterfaceReport closer::buildInterfaceReport(const Module &Mod,
                                             const EnvAnalysis &Analysis) {
  InterfaceReport Report;
  const TaintResult &Taint = Analysis.taint();

  for (const ProcessDecl &Inst : Mod.Processes) {
    const ProcCfg *Proc = Mod.findProc(Inst.ProcName);
    for (size_t A = 0, E = Inst.Args.size(); A != E; ++A) {
      if (!Inst.Args[A].IsEnv)
        continue;
      InterfacePoint P;
      P.K = InterfacePoint::Kind::EnvArg;
      P.Proc = Inst.Name;
      if (Proc && A < Proc->Params.size())
        P.Detail = Inst.ProcName + "::" + Proc->Params[A];
      P.Loc = Inst.Loc;
      Report.Points.push_back(std::move(P));
    }
  }

  for (size_t ProcIdx = 0, E = Mod.Procs.size(); ProcIdx != E; ++ProcIdx) {
    const ProcCfg &Proc = Mod.Procs[ProcIdx];
    Report.TotalNodes += Proc.Nodes.size();
    const ProcTaint &PT = Taint.Procs[ProcIdx];
    for (size_t I = 0, N = Proc.Nodes.size(); I != N; ++I) {
      if (PT.InNI[I])
        ++Report.NodesDependentOnEnv;
      const CfgNode &Node = Proc.Nodes[I];
      if (Node.Kind != CfgNodeKind::Call)
        continue;
      if (Node.Builtin == BuiltinKind::EnvInput) {
        InterfacePoint P;
        P.K = InterfacePoint::Kind::EnvInputCall;
        P.Proc = Proc.Name;
        if (Node.Target && Node.Target->Kind == ExprKind::VarRef)
          P.Detail = Node.Target->Name;
        P.Loc = Node.Loc;
        Report.Points.push_back(std::move(P));
      } else if (Node.Builtin == BuiltinKind::EnvOutput) {
        InterfacePoint P;
        P.K = InterfacePoint::Kind::EnvOutputCall;
        P.Proc = Proc.Name;
        P.Loc = Node.Loc;
        Report.Points.push_back(std::move(P));
      }
    }
    for (size_t A = 0, PE = Proc.Params.size(); A != PE; ++A)
      if (PT.TaintedParams[A])
        Report.TaintedParams.push_back(Proc.Name + "(" + Proc.Params[A] +
                                       ")");
    if (PT.TaintedReturn)
      Report.TaintedReturns.push_back(Proc.Name);
  }

  Report.TaintedChannels.assign(Taint.TaintedChannels.begin(),
                                Taint.TaintedChannels.end());
  Report.TaintedShared.assign(Taint.TaintedShared.begin(),
                              Taint.TaintedShared.end());
  Report.TaintedGlobals.assign(Taint.TaintedGlobals.begin(),
                               Taint.TaintedGlobals.end());
  return Report;
}
