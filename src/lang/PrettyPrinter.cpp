//===- PrettyPrinter.cpp - MiniC source emission ---------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "lang/PrettyPrinter.h"

#include "lang/Lexer.h"

#include <cassert>
#include <string>

using namespace closer;

namespace {

/// Binding strength used to decide parenthesization; higher binds tighter.
int precedence(const Expr *E) {
  switch (E->Kind) {
  case ExprKind::Binary:
    switch (E->BOp) {
    case BinaryOp::Or:
      return 1;
    case BinaryOp::And:
      return 2;
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      return 3;
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      return 4;
    case BinaryOp::Add:
    case BinaryOp::Sub:
      return 5;
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod:
      return 6;
    }
    return 0;
  case ExprKind::Unary:
  case ExprKind::Deref:
  case ExprKind::AddrOf:
    return 7;
  default:
    return 8; // Primaries never need parens.
  }
}

const char *binaryOpText(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}

std::string printSub(const Expr *Parent, const Expr *Child) {
  std::string Text = printExpr(Child);
  if (precedence(Child) < precedence(Parent))
    return "(" + Text + ")";
  return Text;
}

std::string indentText(unsigned Indent) {
  return std::string(2 * Indent, ' ');
}

std::string printIntLit(int64_t Value) {
  const AtomTable &Atoms = AtomTable::global();
  if (Atoms.isAtom(Value))
    return "'" + Atoms.spelling(Value) + "'";
  return std::to_string(Value);
}

} // namespace

std::string closer::printExpr(const Expr *E) {
  assert(E && "printing a null expression");
  switch (E->Kind) {
  case ExprKind::IntLit:
    return printIntLit(E->IntValue);
  case ExprKind::Unknown:
    return "unknown";
  case ExprKind::VarRef:
    return E->Name;
  case ExprKind::ArrayIndex:
    return E->Name + "[" + printExpr(E->Lhs.get()) + "]";
  case ExprKind::Unary:
    return std::string(E->UOp == UnaryOp::Neg ? "-" : "!") +
           printSub(E, E->Lhs.get());
  case ExprKind::Deref:
    return "*" + printSub(E, E->Lhs.get());
  case ExprKind::AddrOf:
    return "&" + printExpr(E->Lhs.get());
  case ExprKind::Binary: {
    std::string Lhs = printSub(E, E->Lhs.get());
    std::string Rhs = printExpr(E->Rhs.get());
    // Right operand needs parens at equal precedence (left associativity).
    if (precedence(E->Rhs.get()) <= precedence(E))
      Rhs = "(" + Rhs + ")";
    return Lhs + " " + binaryOpText(E->BOp) + " " + Rhs;
  }
  case ExprKind::Call: {
    std::string Out = E->Name + "(";
    for (size_t I = 0, N = E->Args.size(); I != N; ++I) {
      if (I)
        Out += ", ";
      Out += printExpr(E->Args[I].get());
    }
    return Out + ")";
  }
  }
  return "<bad-expr>";
}

std::string closer::printStmt(const Stmt *S, unsigned Indent) {
  if (!S)
    return "";
  std::string Pad = indentText(Indent);
  switch (S->Kind) {
  case StmtKind::VarDecl: {
    std::string Out = Pad + "var " + S->Name;
    if (S->ArraySize >= 0)
      Out += "[" + std::to_string(S->ArraySize) + "]";
    if (S->Cond)
      Out += " = " + printExpr(S->Cond.get());
    return Out + ";\n";
  }
  case StmtKind::Assign:
    return Pad + printExpr(S->Target.get()) + " = " +
           printExpr(S->Value.get()) + ";\n";
  case StmtKind::ExprCall:
    return Pad + printExpr(S->Value.get()) + ";\n";
  case StmtKind::If: {
    std::string Out =
        Pad + "if (" + printExpr(S->Cond.get()) + ")\n";
    Out += printStmt(S->ThenBody.get(),
                     S->ThenBody->Kind == StmtKind::Block ? Indent
                                                          : Indent + 1);
    if (S->ElseBody) {
      Out += Pad + "else\n";
      Out += printStmt(S->ElseBody.get(),
                       S->ElseBody->Kind == StmtKind::Block ? Indent
                                                            : Indent + 1);
    }
    return Out;
  }
  case StmtKind::While: {
    std::string Out = Pad + "while (" + printExpr(S->Cond.get()) + ")\n";
    Out += printStmt(S->ThenBody.get(),
                     S->ThenBody->Kind == StmtKind::Block ? Indent
                                                          : Indent + 1);
    return Out;
  }
  case StmtKind::For: {
    std::string Init, Step;
    if (S->InitStmt) {
      Init = printStmt(S->InitStmt.get(), 0);
      // Strip trailing ";\n" back to an inline clause.
      while (!Init.empty() && (Init.back() == '\n' || Init.back() == ';'))
        Init.pop_back();
    }
    if (S->StepStmt) {
      Step = printStmt(S->StepStmt.get(), 0);
      while (!Step.empty() && (Step.back() == '\n' || Step.back() == ';'))
        Step.pop_back();
    }
    std::string Out = Pad + "for (" + Init + "; " +
                      (S->Cond ? printExpr(S->Cond.get()) : "") + "; " + Step +
                      ")\n";
    Out += printStmt(S->ThenBody.get(),
                     S->ThenBody->Kind == StmtKind::Block ? Indent
                                                          : Indent + 1);
    return Out;
  }
  case StmtKind::Switch: {
    std::string Out = Pad + "switch (" + printExpr(S->Cond.get()) + ") {\n";
    for (const SwitchCase &Arm : S->Cases) {
      Out += indentText(Indent) + "case " + printIntLit(Arm.Value) + ":\n";
      for (const StmtPtr &Sub : Arm.Body)
        Out += printStmt(Sub.get(), Indent + 1);
    }
    if (S->HasDefault) {
      Out += indentText(Indent) + "default:\n";
      for (const StmtPtr &Sub : S->DefaultBody)
        Out += printStmt(Sub.get(), Indent + 1);
    }
    return Out + Pad + "}\n";
  }
  case StmtKind::Return:
    if (S->Cond)
      return Pad + "return " + printExpr(S->Cond.get()) + ";\n";
    return Pad + "return;\n";
  case StmtKind::Break:
    return Pad + "break;\n";
  case StmtKind::Continue:
    return Pad + "continue;\n";
  case StmtKind::Goto:
    return Pad + "goto " + S->Name + ";\n";
  case StmtKind::Label:
    return Pad + S->Name + ":\n" + printStmt(S->ThenBody.get(), Indent);
  case StmtKind::Block: {
    std::string Out = Pad + "{\n";
    for (const StmtPtr &Sub : S->Body)
      Out += printStmt(Sub.get(), Indent + 1);
    return Out + Pad + "}\n";
  }
  case StmtKind::Empty:
    return Pad + ";\n";
  }
  return Pad + "<bad-stmt>\n";
}

std::string closer::printProgram(const Program &Prog) {
  std::string Out;
  for (const CommDecl &C : Prog.Comms) {
    switch (C.Kind) {
    case CommKind::Channel:
      Out += "chan " + C.Name + "[" + std::to_string(C.Param) + "];\n";
      break;
    case CommKind::Semaphore:
      Out += "sem " + C.Name + "(" + std::to_string(C.Param) + ");\n";
      break;
    case CommKind::SharedVar:
      Out += "shared " + C.Name +
             (C.Param ? " = " + std::to_string(C.Param) : "") + ";\n";
      break;
    }
  }
  for (const GlobalDecl &G : Prog.Globals) {
    Out += "var " + G.Name;
    if (G.ArraySize >= 0)
      Out += "[" + std::to_string(G.ArraySize) + "]";
    if (G.Init)
      Out += " = " + std::to_string(G.Init);
    Out += ";\n";
  }
  if (!Out.empty())
    Out += "\n";
  for (const ProcDecl &P : Prog.Procs) {
    Out += "proc " + P.Name + "(";
    for (size_t I = 0, N = P.Params.size(); I != N; ++I) {
      if (I)
        Out += ", ";
      Out += P.Params[I].Name;
    }
    Out += ")\n";
    Out += printStmt(P.Body.get(), 0);
    Out += "\n";
  }
  for (const ProcessDecl &P : Prog.Processes) {
    Out += "process " + P.Name + " = " + P.ProcName + "(";
    for (size_t I = 0, N = P.Args.size(); I != N; ++I) {
      if (I)
        Out += ", ";
      Out += P.Args[I].IsEnv ? "env" : printIntLit(P.Args[I].Value);
    }
    Out += ");\n";
  }
  return Out;
}
