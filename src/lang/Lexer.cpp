//===- Lexer.cpp - MiniC lexer --------------------------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cassert>
#include <cctype>
#include <unordered_map>
#include <utility>

using namespace closer;

//===----------------------------------------------------------------------===//
// AtomTable
//===----------------------------------------------------------------------===//

int64_t AtomTable::intern(const std::string &Spelling) {
  for (size_t I = 0, E = Spellings.size(); I != E; ++I)
    if (Spellings[I] == Spelling)
      return FirstAtomId + static_cast<int64_t>(I);
  Spellings.push_back(Spelling);
  return FirstAtomId + static_cast<int64_t>(Spellings.size() - 1);
}

std::string AtomTable::spelling(int64_t Id) const {
  if (!isAtom(Id))
    return "";
  return Spellings[static_cast<size_t>(Id - FirstAtomId)];
}

bool AtomTable::isAtom(int64_t Id) const {
  return Id >= FirstAtomId &&
         Id < FirstAtomId + static_cast<int64_t>(Spellings.size());
}

AtomTable &AtomTable::global() {
  static AtomTable Table;
  return Table;
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

const char *closer::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Invalid:
    return "invalid token";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwProc:
    return "'proc'";
  case TokenKind::KwProcess:
    return "'process'";
  case TokenKind::KwChan:
    return "'chan'";
  case TokenKind::KwSem:
    return "'sem'";
  case TokenKind::KwShared:
    return "'shared'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwSwitch:
    return "'switch'";
  case TokenKind::KwCase:
    return "'case'";
  case TokenKind::KwDefault:
    return "'default'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwGoto:
    return "'goto'";
  case TokenKind::KwEnv:
    return "'env'";
  case TokenKind::KwUnknown:
    return "'unknown'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::BangEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  }
  return "unknown";
}

static TokenKind keywordKind(const std::string &Text) {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"var", TokenKind::KwVar},           {"proc", TokenKind::KwProc},
      {"process", TokenKind::KwProcess},   {"chan", TokenKind::KwChan},
      {"sem", TokenKind::KwSem},           {"shared", TokenKind::KwShared},
      {"if", TokenKind::KwIf},             {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},       {"for", TokenKind::KwFor},
      {"switch", TokenKind::KwSwitch},     {"case", TokenKind::KwCase},
      {"default", TokenKind::KwDefault},   {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},       {"continue", TokenKind::KwContinue},
      {"goto", TokenKind::KwGoto},         {"env", TokenKind::KwEnv},
      {"unknown", TokenKind::KwUnknown},
  };
  auto It = Keywords.find(Text);
  return It == Keywords.end() ? TokenKind::Identifier : It->second;
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags, AtomTable &Atoms)
    : Buffer(std::move(Source)), Diags(Diags), Atoms(Atoms) {}

char Lexer::peek(unsigned Ahead) const {
  size_t Index = Pos + Ahead;
  return Index < Buffer.size() ? Buffer[Index] : '\0';
}

char Lexer::advance() {
  assert(!atEnd() && "advancing past end of buffer");
  char C = Buffer[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = currentLoc();
      advance();
      advance();
      bool Closed = false;
      while (!atEnd()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc, std::string Text) {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Loc = Loc;
  Tok.Text = std::move(Text);
  return Tok;
}

Token Lexer::lexToken() {
  skipWhitespaceAndComments();
  SourceLoc Loc = currentLoc();
  if (atEnd())
    return makeToken(TokenKind::Eof, Loc);

  char C = advance();

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t Value = C - '0';
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      Value = Value * 10 + (advance() - '0');
    Token Tok = makeToken(TokenKind::IntLiteral, Loc);
    Tok.IntValue = Value;
    return Tok;
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text(1, C);
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      Text += advance();
    TokenKind Kind = keywordKind(Text);
    Token Tok = makeToken(Kind, Loc, std::move(Text));
    return Tok;
  }

  // Atoms: 'even', or "even". Both lex to an interned integer literal so the
  // rest of the pipeline sees plain integers (rendered back in traces).
  if (C == '\'' || C == '"') {
    char Quote = C;
    std::string Text;
    while (!atEnd() && peek() != Quote && peek() != '\n')
      Text += advance();
    if (atEnd() || peek() != Quote) {
      Diags.error(Loc, "unterminated atom literal");
      return makeToken(TokenKind::Invalid, Loc);
    }
    advance(); // Closing quote.
    Token Tok = makeToken(TokenKind::IntLiteral, Loc, Text);
    Tok.IntValue = Atoms.intern(Text);
    return Tok;
  }

  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Loc);
  case ')':
    return makeToken(TokenKind::RParen, Loc);
  case '{':
    return makeToken(TokenKind::LBrace, Loc);
  case '}':
    return makeToken(TokenKind::RBrace, Loc);
  case '[':
    return makeToken(TokenKind::LBracket, Loc);
  case ']':
    return makeToken(TokenKind::RBracket, Loc);
  case ',':
    return makeToken(TokenKind::Comma, Loc);
  case ';':
    return makeToken(TokenKind::Semicolon, Loc);
  case ':':
    return makeToken(TokenKind::Colon, Loc);
  case '+':
    return makeToken(TokenKind::Plus, Loc);
  case '-':
    return makeToken(TokenKind::Minus, Loc);
  case '*':
    return makeToken(TokenKind::Star, Loc);
  case '/':
    return makeToken(TokenKind::Slash, Loc);
  case '%':
    return makeToken(TokenKind::Percent, Loc);
  case '=':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::EqEq, Loc);
    }
    return makeToken(TokenKind::Assign, Loc);
  case '!':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::BangEq, Loc);
    }
    return makeToken(TokenKind::Bang, Loc);
  case '<':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::LessEq, Loc);
    }
    return makeToken(TokenKind::Less, Loc);
  case '>':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::GreaterEq, Loc);
    }
    return makeToken(TokenKind::Greater, Loc);
  case '&':
    if (peek() == '&') {
      advance();
      return makeToken(TokenKind::AmpAmp, Loc);
    }
    return makeToken(TokenKind::Amp, Loc);
  case '|':
    if (peek() == '|') {
      advance();
      return makeToken(TokenKind::PipePipe, Loc);
    }
    Diags.error(Loc, "expected '||', found single '|'");
    return makeToken(TokenKind::Invalid, Loc);
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return makeToken(TokenKind::Invalid, Loc);
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token Tok = lexToken();
    bool IsEof = Tok.is(TokenKind::Eof);
    if (!Tok.is(TokenKind::Invalid))
      Tokens.push_back(std::move(Tok));
    if (IsEof)
      break;
  }
  return Tokens;
}
