//===- Token.h - MiniC token definitions -----------------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the MiniC lexer. MiniC is the small imperative
/// language (a C subset with pointers, arrays, procedures and communication
/// builtins) on which the closing transformation operates.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_LANG_TOKEN_H
#define CLOSER_LANG_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace closer {

enum class TokenKind {
  // Sentinels.
  Eof,
  Invalid,

  // Literals and identifiers.
  IntLiteral,
  StringLiteral,
  Identifier,

  // Keywords.
  KwVar,
  KwProc,
  KwProcess,
  KwChan,
  KwSem,
  KwShared,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwSwitch,
  KwCase,
  KwDefault,
  KwReturn,
  KwBreak,
  KwContinue,
  KwGoto,
  KwEnv,
  KwUnknown,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,

  // Operators.
  Assign,     // =
  Plus,       // +
  Minus,      // -
  Star,       // *
  Slash,      // /
  Percent,    // %
  Amp,        // &
  Bang,       // !
  EqEq,       // ==
  BangEq,     // !=
  Less,       // <
  LessEq,     // <=
  Greater,    // >
  GreaterEq,  // >=
  AmpAmp,     // &&
  PipePipe,   // ||
};

/// Returns a human-readable spelling for diagnostics ("'=='", "identifier").
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Text holds the identifier spelling or string-literal
/// contents (without quotes); IntValue holds the value of an IntLiteral.
struct Token {
  TokenKind Kind = TokenKind::Invalid;
  SourceLoc Loc;
  std::string Text;
  int64_t IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace closer

#endif // CLOSER_LANG_TOKEN_H
