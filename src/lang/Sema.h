//===- Sema.h - MiniC semantic analysis ------------------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic validation for MiniC programs. MiniC is untyped at the value
/// level (everything is an integer or an address), so "sema" enforces the
/// structural discipline the paper's framework assumes:
///
///  * names: procedures/comm objects/globals unique; one namespace per
///    procedure (no shadowing — every variable name denotes a single memory
///    location per activation, which keeps the define-use analysis per-name
///    sound);
///  * communication objects are only touched through their builtins, and
///    each builtin's object argument names an object of the right kind;
///  * calls appear only in statement position or as the entire right-hand
///    side of an assignment (the paper's statement taxonomy);
///  * builtins are used with correct arity and result-ness;
///  * break/continue appear inside loops; goto targets exist; labels are
///    unique per procedure;
///  * process declarations reference existing procedures with matching
///    arity; recursion is permitted.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_LANG_SEMA_H
#define CLOSER_LANG_SEMA_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

namespace closer {

/// Validates \p Prog, reporting problems to \p Diags.
/// \returns true when the program is semantically well-formed.
bool checkProgram(const Program &Prog, DiagnosticEngine &Diags);

} // namespace closer

#endif // CLOSER_LANG_SEMA_H
