//===- PrettyPrinter.h - MiniC source emission -----------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders MiniC ASTs (and individual expressions) back to source text. The
/// output reparses to an equivalent program; round-tripping is covered by
/// the parser tests. Atom-valued integer literals are rendered back in
/// quoted form when the atom table knows their spelling.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_LANG_PRETTYPRINTER_H
#define CLOSER_LANG_PRETTYPRINTER_H

#include "lang/Ast.h"

#include <string>

namespace closer {

/// Renders an expression as source text, parenthesized as needed.
std::string printExpr(const Expr *E);

/// Renders a statement subtree with \p Indent leading double-space units.
std::string printStmt(const Stmt *S, unsigned Indent = 0);

/// Renders a whole program.
std::string printProgram(const Program &Prog);

} // namespace closer

#endif // CLOSER_LANG_PRETTYPRINTER_H
