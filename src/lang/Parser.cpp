//===- Parser.cpp - MiniC recursive-descent parser -------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"

#include <cassert>
#include <string>
#include <utility>

using namespace closer;

Parser::Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() &&
         this->Tokens.back().is(TokenKind::Eof) &&
         "token stream must be Eof-terminated");
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    return Tokens.back(); // Eof.
  return Tokens[Index];
}

Token Parser::consume() {
  Token Tok = current();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return Tok;
}

bool Parser::match(TokenKind Kind) {
  if (!check(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (match(Kind))
    return true;
  Diags.error(current().Loc, std::string("expected ") + tokenKindName(Kind) +
                                 " " + Context + ", found " +
                                 tokenKindName(current().Kind));
  return false;
}

/// Skips tokens until a likely declaration/statement boundary so one syntax
/// error does not cascade.
void Parser::skipToSync() {
  while (!check(TokenKind::Eof)) {
    if (match(TokenKind::Semicolon))
      return;
    switch (current().Kind) {
    case TokenKind::RBrace:
    case TokenKind::KwProc:
    case TokenKind::KwProcess:
    case TokenKind::KwChan:
    case TokenKind::KwSem:
    case TokenKind::KwShared:
      return;
    default:
      consume();
    }
  }
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> Parser::parseProgram() {
  auto Prog = std::make_unique<Program>();
  while (!check(TokenKind::Eof)) {
    unsigned ErrorsBefore = Diags.errorCount();
    parseTopDecl(*Prog);
    if (Diags.errorCount() > ErrorsBefore)
      skipToSync();
  }
  return Prog;
}

void Parser::parseTopDecl(Program &Prog) {
  switch (current().Kind) {
  case TokenKind::KwChan:
    parseChanDecl(Prog);
    return;
  case TokenKind::KwSem:
    parseSemDecl(Prog);
    return;
  case TokenKind::KwShared:
    parseSharedDecl(Prog);
    return;
  case TokenKind::KwVar:
    parseGlobalDecl(Prog);
    return;
  case TokenKind::KwProc:
    parseProcDecl(Prog);
    return;
  case TokenKind::KwProcess:
    parseProcessDecl(Prog);
    return;
  default:
    Diags.error(current().Loc,
                std::string("expected a top-level declaration, found ") +
                    tokenKindName(current().Kind));
    consume();
  }
}

int64_t Parser::parseConstInt(const char *Context) {
  bool Negate = match(TokenKind::Minus);
  if (!check(TokenKind::IntLiteral)) {
    Diags.error(current().Loc,
                std::string("expected integer constant ") + Context);
    return 0;
  }
  int64_t Value = consume().IntValue;
  return Negate ? -Value : Value;
}

void Parser::parseChanDecl(Program &Prog) {
  CommDecl Decl;
  Decl.Kind = CommKind::Channel;
  Decl.Loc = consume().Loc; // 'chan'
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected channel name");
    return;
  }
  Decl.Name = consume().Text;
  if (!expect(TokenKind::LBracket, "before channel capacity"))
    return;
  Decl.Param = parseConstInt("as channel capacity");
  if (Decl.Param < 1) {
    Diags.error(Decl.Loc, "channel capacity must be >= 1");
    Decl.Param = 1;
  }
  expect(TokenKind::RBracket, "after channel capacity");
  expect(TokenKind::Semicolon, "after channel declaration");
  Prog.Comms.push_back(std::move(Decl));
}

void Parser::parseSemDecl(Program &Prog) {
  CommDecl Decl;
  Decl.Kind = CommKind::Semaphore;
  Decl.Loc = consume().Loc; // 'sem'
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected semaphore name");
    return;
  }
  Decl.Name = consume().Text;
  if (!expect(TokenKind::LParen, "before semaphore initial count"))
    return;
  Decl.Param = parseConstInt("as semaphore initial count");
  if (Decl.Param < 0) {
    Diags.error(Decl.Loc, "semaphore initial count must be >= 0");
    Decl.Param = 0;
  }
  expect(TokenKind::RParen, "after semaphore initial count");
  expect(TokenKind::Semicolon, "after semaphore declaration");
  Prog.Comms.push_back(std::move(Decl));
}

void Parser::parseSharedDecl(Program &Prog) {
  CommDecl Decl;
  Decl.Kind = CommKind::SharedVar;
  Decl.Loc = consume().Loc; // 'shared'
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected shared variable name");
    return;
  }
  Decl.Name = consume().Text;
  if (match(TokenKind::Assign))
    Decl.Param = parseConstInt("as shared variable initial value");
  expect(TokenKind::Semicolon, "after shared variable declaration");
  Prog.Comms.push_back(std::move(Decl));
}

void Parser::parseGlobalDecl(Program &Prog) {
  GlobalDecl Decl;
  Decl.Loc = consume().Loc; // 'var'
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected global variable name");
    return;
  }
  Decl.Name = consume().Text;
  if (match(TokenKind::LBracket)) {
    Decl.ArraySize = parseConstInt("as array size");
    if (Decl.ArraySize < 1) {
      Diags.error(Decl.Loc, "array size must be >= 1");
      Decl.ArraySize = 1;
    }
    expect(TokenKind::RBracket, "after array size");
  }
  if (match(TokenKind::Assign)) {
    if (Decl.ArraySize >= 0)
      Diags.error(current().Loc, "array globals cannot have initializers");
    Decl.Init = parseConstInt("as global initializer");
  }
  expect(TokenKind::Semicolon, "after global declaration");
  Prog.Globals.push_back(std::move(Decl));
}

void Parser::parseProcDecl(Program &Prog) {
  ProcDecl Decl;
  Decl.Loc = consume().Loc; // 'proc'
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected procedure name");
    return;
  }
  Decl.Name = consume().Text;
  if (!expect(TokenKind::LParen, "after procedure name"))
    return;
  if (!check(TokenKind::RParen)) {
    do {
      if (!check(TokenKind::Identifier)) {
        Diags.error(current().Loc, "expected parameter name");
        break;
      }
      Token Tok = consume();
      Decl.Params.push_back({Tok.Text, Tok.Loc});
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after parameter list");
  if (!check(TokenKind::LBrace)) {
    Diags.error(current().Loc, "expected procedure body");
    return;
  }
  Decl.Body = parseBlock();
  Prog.Procs.push_back(std::move(Decl));
}

void Parser::parseProcessDecl(Program &Prog) {
  ProcessDecl Decl;
  Decl.Loc = consume().Loc; // 'process'
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected process name");
    return;
  }
  Decl.Name = consume().Text;
  if (!expect(TokenKind::Assign, "after process name"))
    return;
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected procedure name in process binding");
    return;
  }
  Decl.ProcName = consume().Text;
  if (!expect(TokenKind::LParen, "after procedure name"))
    return;
  if (!check(TokenKind::RParen)) {
    do {
      ProcessArg Arg;
      Arg.Loc = current().Loc;
      if (match(TokenKind::KwEnv)) {
        Arg.IsEnv = true;
      } else {
        Arg.Value = parseConstInt("as process argument");
      }
      Decl.Args.push_back(Arg);
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after process arguments");
  expect(TokenKind::Semicolon, "after process declaration");
  Prog.Processes.push_back(std::move(Decl));
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Parser::parseBlock() {
  auto Block = std::make_unique<Stmt>(StmtKind::Block, current().Loc);
  expect(TokenKind::LBrace, "to open block");
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    unsigned ErrorsBefore = Diags.errorCount();
    if (StmtPtr S = parseStmt())
      Block->Body.push_back(std::move(S));
    if (Diags.errorCount() > ErrorsBefore)
      skipToSync();
  }
  expect(TokenKind::RBrace, "to close block");
  return Block;
}

StmtPtr Parser::parseStmt() {
  switch (current().Kind) {
  case TokenKind::KwVar:
    return parseVarDeclStmt();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwSwitch:
    return parseSwitch();
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwBreak: {
    auto S = std::make_unique<Stmt>(StmtKind::Break, consume().Loc);
    expect(TokenKind::Semicolon, "after 'break'");
    return S;
  }
  case TokenKind::KwContinue: {
    auto S = std::make_unique<Stmt>(StmtKind::Continue, consume().Loc);
    expect(TokenKind::Semicolon, "after 'continue'");
    return S;
  }
  case TokenKind::KwGoto: {
    auto S = std::make_unique<Stmt>(StmtKind::Goto, consume().Loc);
    if (check(TokenKind::Identifier))
      S->Name = consume().Text;
    else
      Diags.error(current().Loc, "expected label after 'goto'");
    expect(TokenKind::Semicolon, "after goto target");
    return S;
  }
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::Semicolon:
    return std::make_unique<Stmt>(StmtKind::Empty, consume().Loc);
  case TokenKind::Identifier:
    // Label?  "name : stmt"
    if (peek(1).is(TokenKind::Colon)) {
      auto S = std::make_unique<Stmt>(StmtKind::Label, current().Loc);
      S->Name = consume().Text;
      consume(); // ':'
      S->ThenBody = parseStmt();
      return S;
    }
    return parseSimpleStmt(/*ExpectSemicolon=*/true);
  case TokenKind::Star:
    return parseSimpleStmt(/*ExpectSemicolon=*/true);
  default:
    Diags.error(current().Loc, std::string("expected a statement, found ") +
                                   tokenKindName(current().Kind));
    consume();
    return nullptr;
  }
}

StmtPtr Parser::parseVarDeclStmt() {
  auto S = std::make_unique<Stmt>(StmtKind::VarDecl, consume().Loc); // 'var'
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected variable name after 'var'");
    return nullptr;
  }
  S->Name = consume().Text;
  if (match(TokenKind::LBracket)) {
    S->ArraySize = parseConstInt("as array size");
    if (S->ArraySize < 1) {
      Diags.error(S->Loc, "array size must be >= 1");
      S->ArraySize = 1;
    }
    expect(TokenKind::RBracket, "after array size");
  }
  if (match(TokenKind::Assign)) {
    if (S->ArraySize >= 0)
      Diags.error(current().Loc, "array variables cannot have initializers");
    S->Cond = parseExpr();
  }
  expect(TokenKind::Semicolon, "after variable declaration");
  return S;
}

StmtPtr Parser::parseIf() {
  auto S = std::make_unique<Stmt>(StmtKind::If, consume().Loc); // 'if'
  expect(TokenKind::LParen, "after 'if'");
  S->Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  S->ThenBody = parseStmt();
  if (match(TokenKind::KwElse))
    S->ElseBody = parseStmt();
  return S;
}

StmtPtr Parser::parseWhile() {
  auto S = std::make_unique<Stmt>(StmtKind::While, consume().Loc); // 'while'
  expect(TokenKind::LParen, "after 'while'");
  S->Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  S->ThenBody = parseStmt();
  return S;
}

StmtPtr Parser::parseFor() {
  auto S = std::make_unique<Stmt>(StmtKind::For, consume().Loc); // 'for'
  expect(TokenKind::LParen, "after 'for'");
  if (!check(TokenKind::Semicolon)) {
    if (check(TokenKind::KwVar))
      S->InitStmt = parseVarDeclStmt(); // Consumes its ';'.
    else
      S->InitStmt = parseSimpleStmt(/*ExpectSemicolon=*/true);
  } else {
    consume();
  }
  if (!check(TokenKind::Semicolon))
    S->Cond = parseExpr();
  expect(TokenKind::Semicolon, "after for condition");
  if (!check(TokenKind::RParen))
    S->StepStmt = parseSimpleStmt(/*ExpectSemicolon=*/false);
  expect(TokenKind::RParen, "after for clauses");
  S->ThenBody = parseStmt();
  return S;
}

StmtPtr Parser::parseSwitch() {
  auto S = std::make_unique<Stmt>(StmtKind::Switch, consume().Loc); // 'switch'
  expect(TokenKind::LParen, "after 'switch'");
  S->Cond = parseExpr();
  expect(TokenKind::RParen, "after switch scrutinee");
  expect(TokenKind::LBrace, "to open switch body");
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    if (match(TokenKind::KwCase)) {
      SwitchCase Arm;
      Arm.Loc = current().Loc;
      Arm.Value = parseConstInt("as case value");
      expect(TokenKind::Colon, "after case value");
      while (!check(TokenKind::KwCase) && !check(TokenKind::KwDefault) &&
             !check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
        if (StmtPtr Sub = parseStmt())
          Arm.Body.push_back(std::move(Sub));
        else
          break;
      }
      S->Cases.push_back(std::move(Arm));
      continue;
    }
    if (match(TokenKind::KwDefault)) {
      expect(TokenKind::Colon, "after 'default'");
      if (S->HasDefault)
        Diags.error(current().Loc, "duplicate default arm in switch");
      S->HasDefault = true;
      while (!check(TokenKind::KwCase) && !check(TokenKind::KwDefault) &&
             !check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
        if (StmtPtr Sub = parseStmt())
          S->DefaultBody.push_back(std::move(Sub));
        else
          break;
      }
      continue;
    }
    Diags.error(current().Loc, "expected 'case' or 'default' in switch body");
    skipToSync();
    break;
  }
  expect(TokenKind::RBrace, "to close switch body");
  return S;
}

StmtPtr Parser::parseReturn() {
  auto S = std::make_unique<Stmt>(StmtKind::Return, consume().Loc); // 'return'
  if (!check(TokenKind::Semicolon))
    S->Cond = parseExpr();
  expect(TokenKind::Semicolon, "after return statement");
  return S;
}

StmtPtr Parser::parseSimpleStmt(bool ExpectSemicolon) {
  return parseAssignOrCall(ExpectSemicolon);
}

/// Parses `lvalue = expr ;`, `*expr = expr ;`, `name[e] = expr ;` or
/// `name(args) ;`.
StmtPtr Parser::parseAssignOrCall(bool ExpectSemicolon) {
  SourceLoc Loc = current().Loc;

  // Call statement: name(...)
  if (check(TokenKind::Identifier) && peek(1).is(TokenKind::LParen)) {
    std::string Callee = consume().Text;
    consume(); // '('
    std::vector<ExprPtr> Args;
    if (!check(TokenKind::RParen)) {
      do {
        Args.push_back(parseExpr());
      } while (match(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "after call arguments");
    auto S = std::make_unique<Stmt>(StmtKind::ExprCall, Loc);
    S->Value = Expr::call(std::move(Callee), std::move(Args), Loc);
    if (ExpectSemicolon)
      expect(TokenKind::Semicolon, "after call statement");
    return S;
  }

  // Assignment: parse the lvalue.
  ExprPtr Target;
  if (match(TokenKind::Star)) {
    Target = Expr::deref(parseUnary(), Loc);
  } else if (check(TokenKind::Identifier)) {
    std::string Name = consume().Text;
    if (match(TokenKind::LBracket)) {
      ExprPtr Index = parseExpr();
      expect(TokenKind::RBracket, "after array index");
      Target = Expr::arrayIndex(std::move(Name), std::move(Index), Loc);
    } else {
      Target = Expr::varRef(std::move(Name), Loc);
    }
  } else {
    Diags.error(Loc, std::string("expected an assignment or call, found ") +
                         tokenKindName(current().Kind));
    return nullptr;
  }

  if (!expect(TokenKind::Assign, "in assignment"))
    return nullptr;

  // The RHS is either a call (user proc / builtin with result) or an
  // ordinary expression; parseExpr handles both since Call is an Expr.
  ExprPtr Value = parseExpr();

  auto S = std::make_unique<Stmt>(StmtKind::Assign, Loc);
  S->Target = std::move(Target);
  S->Value = std::move(Value);
  if (ExpectSemicolon)
    expect(TokenKind::Semicolon, "after assignment");
  return S;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() { return parseOr(); }

ExprPtr Parser::parseOr() {
  ExprPtr Lhs = parseAnd();
  while (check(TokenKind::PipePipe)) {
    SourceLoc Loc = consume().Loc;
    Lhs = Expr::binary(BinaryOp::Or, std::move(Lhs), parseAnd(), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseAnd() {
  ExprPtr Lhs = parseEquality();
  while (check(TokenKind::AmpAmp)) {
    SourceLoc Loc = consume().Loc;
    Lhs = Expr::binary(BinaryOp::And, std::move(Lhs), parseEquality(), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseEquality() {
  ExprPtr Lhs = parseRelational();
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::EqEq))
      Op = BinaryOp::Eq;
    else if (check(TokenKind::BangEq))
      Op = BinaryOp::Ne;
    else
      return Lhs;
    SourceLoc Loc = consume().Loc;
    Lhs = Expr::binary(Op, std::move(Lhs), parseRelational(), Loc);
  }
}

ExprPtr Parser::parseRelational() {
  ExprPtr Lhs = parseAdditive();
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::Less))
      Op = BinaryOp::Lt;
    else if (check(TokenKind::LessEq))
      Op = BinaryOp::Le;
    else if (check(TokenKind::Greater))
      Op = BinaryOp::Gt;
    else if (check(TokenKind::GreaterEq))
      Op = BinaryOp::Ge;
    else
      return Lhs;
    SourceLoc Loc = consume().Loc;
    Lhs = Expr::binary(Op, std::move(Lhs), parseAdditive(), Loc);
  }
}

ExprPtr Parser::parseAdditive() {
  ExprPtr Lhs = parseMultiplicative();
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::Plus))
      Op = BinaryOp::Add;
    else if (check(TokenKind::Minus))
      Op = BinaryOp::Sub;
    else
      return Lhs;
    SourceLoc Loc = consume().Loc;
    Lhs = Expr::binary(Op, std::move(Lhs), parseMultiplicative(), Loc);
  }
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr Lhs = parseUnary();
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::Star))
      Op = BinaryOp::Mul;
    else if (check(TokenKind::Slash))
      Op = BinaryOp::Div;
    else if (check(TokenKind::Percent))
      Op = BinaryOp::Mod;
    else
      return Lhs;
    SourceLoc Loc = consume().Loc;
    Lhs = Expr::binary(Op, std::move(Lhs), parseUnary(), Loc);
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = current().Loc;
  if (match(TokenKind::Minus))
    return Expr::unary(UnaryOp::Neg, parseUnary(), Loc);
  if (match(TokenKind::Bang))
    return Expr::unary(UnaryOp::Not, parseUnary(), Loc);
  if (match(TokenKind::Star))
    return Expr::deref(parseUnary(), Loc);
  if (match(TokenKind::Amp)) {
    ExprPtr Place = parsePrimary();
    if (Place && Place->Kind != ExprKind::VarRef &&
        Place->Kind != ExprKind::ArrayIndex) {
      Diags.error(Loc, "'&' requires a variable or array element");
      return Expr::intLit(0, Loc);
    }
    if (!Place)
      return Expr::intLit(0, Loc);
    return Expr::addrOf(std::move(Place), Loc);
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = current().Loc;
  if (check(TokenKind::IntLiteral))
    return Expr::intLit(consume().IntValue, Loc);
  if (match(TokenKind::KwUnknown))
    return Expr::unknown(Loc);
  if (match(TokenKind::LParen)) {
    ExprPtr Sub = parseExpr();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return Sub;
  }
  if (check(TokenKind::Identifier)) {
    std::string Name = consume().Text;
    if (match(TokenKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!check(TokenKind::RParen)) {
        do {
          Args.push_back(parseExpr());
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after call arguments");
      return Expr::call(std::move(Name), std::move(Args), Loc);
    }
    if (match(TokenKind::LBracket)) {
      ExprPtr Index = parseExpr();
      expect(TokenKind::RBracket, "after array index");
      return Expr::arrayIndex(std::move(Name), std::move(Index), Loc);
    }
    return Expr::varRef(std::move(Name), Loc);
  }
  Diags.error(Loc, std::string("expected an expression, found ") +
                       tokenKindName(current().Kind));
  consume();
  return Expr::intLit(0, Loc);
}

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> closer::parseMiniC(const std::string &Source,
                                            DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags.hasErrors())
    return nullptr;
  Parser P(std::move(Tokens), Diags);
  std::unique_ptr<Program> Prog = P.parseProgram();
  if (Diags.hasErrors())
    return nullptr;
  return Prog;
}
