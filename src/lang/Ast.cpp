//===- Ast.cpp - MiniC abstract syntax ------------------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "lang/Ast.h"

#include <cassert>

using namespace closer;

ExprPtr Expr::clone() const {
  auto Copy = std::make_unique<Expr>(Kind, Loc);
  Copy->IntValue = IntValue;
  Copy->Name = Name;
  Copy->UOp = UOp;
  Copy->BOp = BOp;
  if (Lhs)
    Copy->Lhs = Lhs->clone();
  if (Rhs)
    Copy->Rhs = Rhs->clone();
  Copy->Args.reserve(Args.size());
  for (const ExprPtr &Arg : Args)
    Copy->Args.push_back(Arg->clone());
  return Copy;
}

ExprPtr Expr::unknown(SourceLoc Loc) {
  return std::make_unique<Expr>(ExprKind::Unknown, Loc);
}

ExprPtr Expr::intLit(int64_t Value, SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::IntLit, Loc);
  E->IntValue = Value;
  return E;
}

ExprPtr Expr::varRef(std::string Name, SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::VarRef, Loc);
  E->Name = std::move(Name);
  return E;
}

ExprPtr Expr::arrayIndex(std::string Name, ExprPtr Index, SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::ArrayIndex, Loc);
  E->Name = std::move(Name);
  E->Lhs = std::move(Index);
  return E;
}

ExprPtr Expr::unary(UnaryOp Op, ExprPtr Sub, SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::Unary, Loc);
  E->UOp = Op;
  E->Lhs = std::move(Sub);
  return E;
}

ExprPtr Expr::binary(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs, SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::Binary, Loc);
  E->BOp = Op;
  E->Lhs = std::move(Lhs);
  E->Rhs = std::move(Rhs);
  return E;
}

ExprPtr Expr::addrOf(ExprPtr Place, SourceLoc Loc) {
  assert(Place && (Place->Kind == ExprKind::VarRef ||
                   Place->Kind == ExprKind::ArrayIndex) &&
         "address-of requires a variable or array element");
  auto E = std::make_unique<Expr>(ExprKind::AddrOf, Loc);
  E->Lhs = std::move(Place);
  return E;
}

ExprPtr Expr::deref(ExprPtr Pointer, SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::Deref, Loc);
  E->Lhs = std::move(Pointer);
  return E;
}

ExprPtr Expr::call(std::string Callee, std::vector<ExprPtr> Args,
                   SourceLoc Loc) {
  auto E = std::make_unique<Expr>(ExprKind::Call, Loc);
  E->Name = std::move(Callee);
  E->Args = std::move(Args);
  return E;
}

bool Expr::equals(const Expr *A, const Expr *B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  if (A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case ExprKind::IntLit:
    return A->IntValue == B->IntValue;
  case ExprKind::Unknown:
    return true;
  case ExprKind::VarRef:
    return A->Name == B->Name;
  case ExprKind::ArrayIndex:
    return A->Name == B->Name && equals(A->Lhs.get(), B->Lhs.get());
  case ExprKind::Unary:
    return A->UOp == B->UOp && equals(A->Lhs.get(), B->Lhs.get());
  case ExprKind::Binary:
    return A->BOp == B->BOp && equals(A->Lhs.get(), B->Lhs.get()) &&
           equals(A->Rhs.get(), B->Rhs.get());
  case ExprKind::AddrOf:
  case ExprKind::Deref:
    return equals(A->Lhs.get(), B->Lhs.get());
  case ExprKind::Call: {
    if (A->Name != B->Name || A->Args.size() != B->Args.size())
      return false;
    for (size_t I = 0, E = A->Args.size(); I != E; ++I)
      if (!equals(A->Args[I].get(), B->Args[I].get()))
        return false;
    return true;
  }
  }
  return false;
}

const ProcDecl *Program::findProc(const std::string &Name) const {
  for (const ProcDecl &P : Procs)
    if (P.Name == Name)
      return &P;
  return nullptr;
}
