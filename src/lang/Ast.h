//===- Ast.h - MiniC abstract syntax ---------------------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for MiniC, the imperative source language the closing
/// transformation operates on. The shape follows the paper's §4 programming
/// language assumptions: programs are collections of procedures made of
/// assignment statements, conditional statements (if/switch/while/for),
/// procedure-call statements and termination statements, over variables that
/// include identifiers, pointers and array elements.
///
/// Expressions and statements are single structs discriminated by a kind
/// enum (no RTTI). Ownership is by unique_ptr; Expr supports deep clone()
/// because the control-flow graph IR owns copies of expression trees.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_LANG_AST_H
#define CLOSER_LANG_AST_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace closer {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  IntLit,     ///< 42 or an interned atom like 'even'
  Unknown,    ///< The distinguished placeholder the closing transformation
              ///< substitutes for an eliminated environment-dependent value
              ///< (spelled `unknown` in source). Evaluates to the runtime's
              ///< unknown value; using it in arithmetic or branching is a
              ///< checked error.
  VarRef,     ///< x
  ArrayIndex, ///< a[e]
  Unary,      ///< -e, !e
  Binary,     ///< e1 op e2
  AddrOf,     ///< &x or &a[e]
  Deref,      ///< *e
  Call,       ///< f(e...) — user procedure or builtin; restricted by sema to
              ///< statement position or the whole right-hand side of an
              ///< assignment, matching the paper's statement taxonomy
};

enum class UnaryOp { Neg, Not };

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And, ///< Logical; MiniC evaluates both sides (no short-circuit) so that
       ///< conditional statements never hide control flow inside expressions.
  Or,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind Kind;
  SourceLoc Loc;

  int64_t IntValue = 0; ///< IntLit.
  std::string Name;     ///< VarRef / ArrayIndex array / Call callee.
  UnaryOp UOp = UnaryOp::Neg;
  BinaryOp BOp = BinaryOp::Add;
  ExprPtr Lhs; ///< Unary operand, ArrayIndex index, AddrOf place, Deref
               ///< pointer, Binary left.
  ExprPtr Rhs; ///< Binary right.
  std::vector<ExprPtr> Args; ///< Call arguments.

  explicit Expr(ExprKind Kind, SourceLoc Loc = SourceLoc())
      : Kind(Kind), Loc(Loc) {}

  /// Deep copy (the CFG IR owns clones of AST expression trees).
  ExprPtr clone() const;

  // Factories.
  static ExprPtr unknown(SourceLoc Loc = SourceLoc());
  static ExprPtr intLit(int64_t Value, SourceLoc Loc = SourceLoc());
  static ExprPtr varRef(std::string Name, SourceLoc Loc = SourceLoc());
  static ExprPtr arrayIndex(std::string Name, ExprPtr Index,
                            SourceLoc Loc = SourceLoc());
  static ExprPtr unary(UnaryOp Op, ExprPtr Sub, SourceLoc Loc = SourceLoc());
  static ExprPtr binary(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs,
                        SourceLoc Loc = SourceLoc());
  static ExprPtr addrOf(ExprPtr Place, SourceLoc Loc = SourceLoc());
  static ExprPtr deref(ExprPtr Pointer, SourceLoc Loc = SourceLoc());
  static ExprPtr call(std::string Callee, std::vector<ExprPtr> Args,
                      SourceLoc Loc = SourceLoc());

  /// Structural equality (used by tests comparing transformed programs).
  static bool equals(const Expr *A, const Expr *B);
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  VarDecl,  ///< var x; / var x = e; / var a[N];
  Assign,   ///< lvalue = expr; (expr may be a Call)
  If,       ///< if (c) A else B
  While,    ///< while (c) A
  For,      ///< for (InitStmt; c; StepStmt) A
  Switch,   ///< switch (e) { case k: ...; default: ... }
  ExprCall, ///< f(args);  — call in statement position
  Return,   ///< return; / return e;
  Break,
  Continue,
  Goto,  ///< goto L;
  Label, ///< L: stmt
  Block, ///< { ... }
  Empty, ///< ;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// One `case k:` arm of a switch.
struct SwitchCase {
  int64_t Value = 0;
  SourceLoc Loc;
  std::vector<StmtPtr> Body;
};

struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;

  std::string Name;       ///< VarDecl/Goto/Label name.
  int64_t ArraySize = -1; ///< VarDecl: >= 0 when declaring an array.
  ExprPtr Cond;           ///< If/While/For/Switch condition or scrutinee;
                          ///< Return value; VarDecl initializer.
  ExprPtr Target;         ///< Assign lvalue.
  ExprPtr Value;          ///< Assign RHS; ExprCall call expression.
  StmtPtr ThenBody;       ///< If then; While/For body; Label inner statement.
  StmtPtr ElseBody;       ///< If else.
  StmtPtr InitStmt;       ///< For initializer.
  StmtPtr StepStmt;       ///< For step.
  std::vector<StmtPtr> Body;        ///< Block statements.
  std::vector<SwitchCase> Cases;    ///< Switch arms.
  bool HasDefault = false;          ///< Switch has a default arm.
  std::vector<StmtPtr> DefaultBody; ///< Switch default arm.

  explicit Stmt(StmtKind Kind, SourceLoc Loc = SourceLoc())
      : Kind(Kind), Loc(Loc) {}
};

//===----------------------------------------------------------------------===//
// Top-level declarations
//===----------------------------------------------------------------------===//

/// The three communication-object kinds of the paper's framework (§2):
/// FIFO buffers, semaphores, and shared variables. Enabledness of operations
/// depends only on the operation history, never on stored values.
enum class CommKind {
  Channel,   ///< FIFO buffer; Param = capacity (>= 1).
  Semaphore, ///< Counting semaphore; Param = initial count (>= 0).
  SharedVar, ///< Shared variable; Param = initial value.
};

struct CommDecl {
  CommKind Kind;
  std::string Name;
  int64_t Param = 0;
  SourceLoc Loc;
};

/// A per-process global variable (processes do not share memory; each
/// process owns a private copy, as with separate UNIX address spaces).
struct GlobalDecl {
  std::string Name;
  int64_t ArraySize = -1; ///< >= 0 when this is an array.
  int64_t Init = 0;
  SourceLoc Loc;
};

struct ParamDecl {
  std::string Name;
  SourceLoc Loc;
};

struct ProcDecl {
  std::string Name;
  std::vector<ParamDecl> Params;
  StmtPtr Body; ///< Always a Block.
  SourceLoc Loc;
};

/// An actual argument of a `process` instantiation: either a compile-time
/// constant or the keyword `env`, declaring that the environment provides
/// the value (this is how a program is "open" at the top level).
struct ProcessArg {
  bool IsEnv = false;
  int64_t Value = 0;
  SourceLoc Loc;
};

struct ProcessDecl {
  std::string Name;
  std::string ProcName;
  std::vector<ProcessArg> Args;
  SourceLoc Loc;
};

/// A parsed MiniC compilation unit.
struct Program {
  std::vector<CommDecl> Comms;
  std::vector<GlobalDecl> Globals;
  std::vector<ProcDecl> Procs;
  std::vector<ProcessDecl> Processes;

  /// Returns the procedure named \p Name, or nullptr.
  const ProcDecl *findProc(const std::string &Name) const;
};

} // namespace closer

#endif // CLOSER_LANG_AST_H
