//===- Builtins.h - MiniC builtin operations -------------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The builtin operations of MiniC. Three families:
///
///  * Visible operations on communication objects (send/recv on FIFO
///    channels, sem_wait/sem_signal on semaphores, read/write on shared
///    variables) plus VS_assert. Per the paper's framework, visible
///    operations are the only potentially-blocking operations and their
///    enabledness depends exclusively on the operation history of the
///    object, never on data values.
///
///  * VS_toss(n): the invisible nondeterministic operation returning a value
///    in [0, n]; the scheduler explores each outcome.
///
///  * The open interface: env_input() produces a value supplied by the
///    environment E_S; env_output(e) hands a value to the environment.
///    These are what the closing transformation eliminates.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_LANG_BUILTINS_H
#define CLOSER_LANG_BUILTINS_H

#include "lang/Ast.h"

#include <string>

namespace closer {

enum class BuiltinKind {
  None, ///< Not a builtin (a user procedure).
  Send,
  Recv,
  SemWait,
  SemSignal,
  SharedWrite,
  SharedRead,
  VsToss,
  VsAssert,
  EnvInput,
  EnvOutput,
  Halt, ///< Visible, never enabled: parks the process forever. Also models
        ///< control points whose every successor was eliminated by the
        ///< closing transformation (invisible divergence in the original).
};

/// Static description of one builtin.
struct BuiltinInfo {
  BuiltinKind Kind = BuiltinKind::None;
  const char *Name = "";
  unsigned Arity = 0;
  bool HasResult = false;   ///< May appear as an assignment RHS.
  bool IsVisible = false;   ///< Operation on a communication object (or
                            ///< VS_assert); defines a process transition
                            ///< boundary and may block.
  bool TakesObject = false; ///< First argument names a communication object.
  CommKind ObjectKind = CommKind::Channel; ///< Valid when TakesObject.
};

/// Looks up \p Name; returns the BuiltinKind::None entry if not a builtin.
const BuiltinInfo &lookupBuiltin(const std::string &Name);

/// Returns the descriptor for \p Kind. \p Kind must not be None.
const BuiltinInfo &builtinInfo(BuiltinKind Kind);

/// True if \p Name collides with a builtin (user procedures must not).
inline bool isBuiltinName(const std::string &Name) {
  return lookupBuiltin(Name).Kind != BuiltinKind::None;
}

} // namespace closer

#endif // CLOSER_LANG_BUILTINS_H
