//===- Lexer.h - MiniC lexer -----------------------------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniC. Supports // and /* */ comments, decimal
/// integer literals, single-quoted atom literals (e.g. 'even', used as
/// symbolic message payloads exactly as in the paper's Figures 2 and 3;
/// lexed as interned nonnegative integers) and double-quoted strings which
/// are equivalent to atoms.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_LANG_LEXER_H
#define CLOSER_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace closer {

/// Maps atom spellings ('even', 'odd', ...) to small stable integers so that
/// symbolic payloads can flow through the integer-valued runtime. The table
/// is global to a compilation: the same spelling always lexes to the same
/// value, and values can be rendered back for traces.
class AtomTable {
public:
  /// Returns the unique id for \p Spelling, interning it if new. Ids start
  /// at 1000000 so they cannot collide with small program constants.
  int64_t intern(const std::string &Spelling);

  /// Returns the spelling for \p Id, or empty if \p Id is not an atom.
  std::string spelling(int64_t Id) const;

  /// True if \p Id falls in the atom id range and is interned.
  bool isAtom(int64_t Id) const;

  /// The process-wide table used by the default pipeline.
  static AtomTable &global();

  static constexpr int64_t FirstAtomId = 1000000;

private:
  std::vector<std::string> Spellings;
};

/// Lexes a full MiniC buffer into a token vector (terminated by Eof).
/// Errors are reported to the DiagnosticEngine; lexing continues after
/// errors so the parser can report more problems in one pass.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags,
        AtomTable &Atoms = AtomTable::global());

  /// Lexes the whole buffer. The result always ends with an Eof token.
  std::vector<Token> lexAll();

private:
  Token lexToken();
  Token makeToken(TokenKind Kind, SourceLoc Loc, std::string Text = "");
  void skipWhitespaceAndComments();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Buffer.size(); }
  SourceLoc currentLoc() const { return SourceLoc(Line, Column); }

  std::string Buffer;
  DiagnosticEngine &Diags;
  AtomTable &Atoms;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace closer

#endif // CLOSER_LANG_LEXER_H
