//===- Parser.h - MiniC recursive-descent parser ---------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniC. Grammar sketch:
///
/// \code
///   program    := topDecl*
///   topDecl    := "chan" ID "[" INT "]" ";"
///               | "sem" ID "(" INT ")" ";"
///               | "shared" ID ("=" INT)? ";"
///               | "var" ID ("[" INT "]")? ("=" INT)? ";"
///               | "proc" ID "(" (ID ("," ID)*)? ")" block
///               | "process" ID "=" ID "(" (processArg,*)? ")" ";"
///   processArg := "env" | ("-")? INT
///   stmt       := "var" ID ("[" INT "]")? ("=" expr)? ";"
///               | lvalue "=" expr ";"
///               | "if" "(" expr ")" stmt ("else" stmt)?
///               | "while" "(" expr ")" stmt
///               | "for" "(" simpleStmt? ";" expr? ";" simpleStmt? ")" stmt
///               | "switch" "(" expr ")" "{" caseArm* defaultArm? "}"
///               | ID "(" args ")" ";"
///               | "return" expr? ";" | "break" ";" | "continue" ";"
///               | "goto" ID ";" | ID ":" stmt | block | ";"
///   expr       := or-expr with C precedence; unary - ! * &; primaries:
///                 INT, atom, ID, ID[expr], ID(args), (expr)
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_LANG_PARSER_H
#define CLOSER_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <memory>
#include <vector>

namespace closer {

/// Parses a token stream into a Program. On error, diagnostics are emitted
/// and parsing recovers at statement/declaration boundaries; the caller must
/// check Diags.hasErrors() before trusting the result.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  /// Parses a whole compilation unit.
  std::unique_ptr<Program> parseProgram();

private:
  // Token stream helpers.
  const Token &peek(unsigned Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token consume();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool match(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void skipToSync();

  // Declarations.
  void parseTopDecl(Program &Prog);
  void parseChanDecl(Program &Prog);
  void parseSemDecl(Program &Prog);
  void parseSharedDecl(Program &Prog);
  void parseGlobalDecl(Program &Prog);
  void parseProcDecl(Program &Prog);
  void parseProcessDecl(Program &Prog);

  // Statements.
  StmtPtr parseStmt();
  StmtPtr parseBlock();
  StmtPtr parseVarDeclStmt();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseFor();
  StmtPtr parseSwitch();
  StmtPtr parseReturn();
  StmtPtr parseSimpleStmt(bool ExpectSemicolon);
  StmtPtr parseAssignOrCall(bool ExpectSemicolon);

  // Expressions (precedence climbing).
  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseEquality();
  ExprPtr parseRelational();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();

  /// Parses an optionally negated integer literal; reports and returns 0 on
  /// failure.
  int64_t parseConstInt(const char *Context);

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

/// Convenience entry point: lex + parse \p Source. Returns nullptr when the
/// source has lexical or syntactic errors (details in \p Diags).
std::unique_ptr<Program> parseMiniC(const std::string &Source,
                                    DiagnosticEngine &Diags);

} // namespace closer

#endif // CLOSER_LANG_PARSER_H
