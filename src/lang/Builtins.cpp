//===- Builtins.cpp - MiniC builtin operations ----------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "lang/Builtins.h"

#include <cassert>

using namespace closer;

// Indexed by BuiltinKind; keep in sync with the enum order.
static const BuiltinInfo Builtins[] = {
    {BuiltinKind::None, "", 0, false, false, false, CommKind::Channel},
    {BuiltinKind::Send, "send", 2, false, true, true, CommKind::Channel},
    {BuiltinKind::Recv, "recv", 1, true, true, true, CommKind::Channel},
    {BuiltinKind::SemWait, "sem_wait", 1, false, true, true,
     CommKind::Semaphore},
    {BuiltinKind::SemSignal, "sem_signal", 1, false, true, true,
     CommKind::Semaphore},
    {BuiltinKind::SharedWrite, "write", 2, false, true, true,
     CommKind::SharedVar},
    {BuiltinKind::SharedRead, "read", 1, true, true, true,
     CommKind::SharedVar},
    {BuiltinKind::VsToss, "VS_toss", 1, true, false, false, CommKind::Channel},
    {BuiltinKind::VsAssert, "VS_assert", 1, false, true, false,
     CommKind::Channel},
    {BuiltinKind::EnvInput, "env_input", 0, true, false, false,
     CommKind::Channel},
    {BuiltinKind::EnvOutput, "env_output", 1, false, false, false,
     CommKind::Channel},
    {BuiltinKind::Halt, "halt", 0, false, true, false, CommKind::Channel},
};

const BuiltinInfo &closer::lookupBuiltin(const std::string &Name) {
  for (const BuiltinInfo &Info : Builtins)
    if (Info.Kind != BuiltinKind::None && Name == Info.Name)
      return Info;
  return Builtins[0];
}

const BuiltinInfo &closer::builtinInfo(BuiltinKind Kind) {
  assert(Kind != BuiltinKind::None && "no descriptor for None");
  const BuiltinInfo &Info = Builtins[static_cast<unsigned>(Kind)];
  assert(Info.Kind == Kind && "builtin table out of sync with enum");
  return Info;
}
