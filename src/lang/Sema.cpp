//===- Sema.cpp - MiniC semantic analysis ----------------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include "lang/Builtins.h"

#include <string>
#include <unordered_map>
#include <unordered_set>

using namespace closer;

namespace {

/// Walks one procedure body checking scoping and call discipline.
class ProcChecker {
public:
  ProcChecker(const Program &Prog, const ProcDecl &Proc,
              DiagnosticEngine &Diags)
      : Prog(Prog), Proc(Proc), Diags(Diags) {}

  void run() {
    for (const ParamDecl &P : Proc.Params)
      declare(P.Name, P.Loc, /*IsArray=*/false);
    collectLabels(Proc.Body.get());
    checkStmt(Proc.Body.get());
  }

private:
  struct VarInfo {
    bool IsArray = false;
  };

  void declare(const std::string &Name, SourceLoc Loc, bool IsArray) {
    if (isBuiltinName(Name)) {
      Diags.error(Loc, "'" + Name + "' is a builtin name");
      return;
    }
    if (findComm(Name)) {
      Diags.error(Loc, "'" + Name + "' is a communication object");
      return;
    }
    // Shadowing a global is rejected: every name must denote a single
    // memory location per activation so the define-use analysis can be
    // keyed by name.
    for (const GlobalDecl &G : Prog.Globals)
      if (G.Name == Name) {
        Diags.error(Loc, "redeclaration of global '" + Name +
                             "' as a local in procedure '" + Proc.Name +
                             "'");
        return;
      }
    if (!Vars.emplace(Name, VarInfo{IsArray}).second)
      Diags.error(Loc, "redeclaration of '" + Name + "' in procedure '" +
                           Proc.Name + "'");
  }

  const CommDecl *findComm(const std::string &Name) const {
    for (const CommDecl &C : Prog.Comms)
      if (C.Name == Name)
        return &C;
    return nullptr;
  }

  const VarInfo *findVar(const std::string &Name) {
    auto It = Vars.find(Name);
    if (It != Vars.end())
      return &It->second;
    for (const GlobalDecl &G : Prog.Globals)
      if (G.Name == Name) {
        auto [Slot, Inserted] = Vars.emplace(Name, VarInfo{G.ArraySize >= 0});
        (void)Inserted;
        return &Slot->second;
      }
    return nullptr;
  }

  void collectLabels(const Stmt *S) {
    if (!S)
      return;
    switch (S->Kind) {
    case StmtKind::Label:
      if (!Labels.insert(S->Name).second)
        Diags.error(S->Loc, "duplicate label '" + S->Name + "'");
      collectLabels(S->ThenBody.get());
      break;
    case StmtKind::Block:
      for (const StmtPtr &Sub : S->Body)
        collectLabels(Sub.get());
      break;
    case StmtKind::If:
      collectLabels(S->ThenBody.get());
      collectLabels(S->ElseBody.get());
      break;
    case StmtKind::While:
      collectLabels(S->ThenBody.get());
      break;
    case StmtKind::For:
      collectLabels(S->InitStmt.get());
      collectLabels(S->StepStmt.get());
      collectLabels(S->ThenBody.get());
      break;
    case StmtKind::Switch:
      for (const SwitchCase &Arm : S->Cases)
        for (const StmtPtr &Sub : Arm.Body)
          collectLabels(Sub.get());
      for (const StmtPtr &Sub : S->DefaultBody)
        collectLabels(Sub.get());
      break;
    default:
      break;
    }
  }

  /// Checks an expression in value position. \p AllowCall permits a Call at
  /// the top level (assignment RHS); nested calls are always rejected.
  void checkExpr(const Expr *E, bool AllowCall) {
    if (!E)
      return;
    switch (E->Kind) {
    case ExprKind::IntLit:
    case ExprKind::Unknown:
      return;
    case ExprKind::VarRef: {
      if (const CommDecl *Comm = findComm(E->Name)) {
        Diags.error(E->Loc, "communication object '" + Comm->Name +
                                "' can only be used via its builtins");
        return;
      }
      const VarInfo *Info = findVar(E->Name);
      if (!Info) {
        Diags.error(E->Loc, "use of undeclared variable '" + E->Name + "'");
        return;
      }
      if (Info->IsArray)
        Diags.error(E->Loc,
                    "array '" + E->Name + "' must be used with an index");
      return;
    }
    case ExprKind::ArrayIndex: {
      const VarInfo *Info = findVar(E->Name);
      if (!Info) {
        Diags.error(E->Loc, "use of undeclared array '" + E->Name + "'");
      } else if (!Info->IsArray) {
        Diags.error(E->Loc, "'" + E->Name + "' is not an array");
      }
      checkExpr(E->Lhs.get(), /*AllowCall=*/false);
      return;
    }
    case ExprKind::Unary:
    case ExprKind::Deref:
      checkExpr(E->Lhs.get(), /*AllowCall=*/false);
      return;
    case ExprKind::AddrOf: {
      const Expr *Place = E->Lhs.get();
      if (Place->Kind == ExprKind::VarRef) {
        if (findComm(Place->Name)) {
          Diags.error(E->Loc, "cannot take the address of a communication "
                              "object");
          return;
        }
        if (!findVar(Place->Name))
          Diags.error(Place->Loc,
                      "use of undeclared variable '" + Place->Name + "'");
        return;
      }
      checkExpr(Place, /*AllowCall=*/false);
      return;
    }
    case ExprKind::Binary:
      checkExpr(E->Lhs.get(), /*AllowCall=*/false);
      checkExpr(E->Rhs.get(), /*AllowCall=*/false);
      return;
    case ExprKind::Call:
      if (!AllowCall) {
        Diags.error(E->Loc, "calls may only appear as a whole statement or "
                            "as the entire right-hand side of an assignment");
        return;
      }
      checkCall(E, /*InExprPosition=*/true);
      return;
    }
  }

  /// Checks a call in statement position (\p InExprPosition false) or as an
  /// assignment RHS (\p InExprPosition true).
  void checkCall(const Expr *Call, bool InExprPosition) {
    const BuiltinInfo &Info = lookupBuiltin(Call->Name);
    if (Info.Kind == BuiltinKind::None) {
      const ProcDecl *Callee = Prog.findProc(Call->Name);
      if (!Callee) {
        Diags.error(Call->Loc,
                    "call to undefined procedure '" + Call->Name + "'");
        return;
      }
      if (Callee->Params.size() != Call->Args.size())
        Diags.error(Call->Loc, "procedure '" + Call->Name + "' expects " +
                                   std::to_string(Callee->Params.size()) +
                                   " argument(s), got " +
                                   std::to_string(Call->Args.size()));
      for (const ExprPtr &Arg : Call->Args)
        checkExpr(Arg.get(), /*AllowCall=*/false);
      return;
    }

    if (Call->Args.size() != Info.Arity) {
      Diags.error(Call->Loc, std::string("builtin '") + Info.Name +
                                 "' expects " + std::to_string(Info.Arity) +
                                 " argument(s), got " +
                                 std::to_string(Call->Args.size()));
      return;
    }
    if (InExprPosition && !Info.HasResult) {
      Diags.error(Call->Loc, std::string("builtin '") + Info.Name +
                                 "' produces no value");
      return;
    }
    if (!InExprPosition && Info.HasResult)
      Diags.warning(Call->Loc, std::string("result of builtin '") +
                                   Info.Name + "' is discarded");

    unsigned FirstValueArg = 0;
    if (Info.TakesObject) {
      FirstValueArg = 1;
      const Expr *ObjArg = Call->Args[0].get();
      if (ObjArg->Kind != ExprKind::VarRef) {
        Diags.error(ObjArg->Loc, std::string("first argument of '") +
                                     Info.Name +
                                     "' must name a communication object");
      } else {
        const CommDecl *Comm = findComm(ObjArg->Name);
        if (!Comm) {
          Diags.error(ObjArg->Loc, "'" + ObjArg->Name +
                                       "' is not a communication object");
        } else if (Comm->Kind != Info.ObjectKind) {
          Diags.error(ObjArg->Loc, "'" + ObjArg->Name +
                                       "' has the wrong communication-object "
                                       "kind for '" +
                                       Info.Name + "'");
        }
      }
    }
    for (unsigned I = FirstValueArg, E = Call->Args.size(); I != E; ++I)
      checkExpr(Call->Args[I].get(), /*AllowCall=*/false);
  }

  void checkLValue(const Expr *Target) {
    switch (Target->Kind) {
    case ExprKind::VarRef: {
      if (findComm(Target->Name)) {
        Diags.error(Target->Loc,
                    "cannot assign to communication object '" + Target->Name +
                        "'; use its builtins");
        return;
      }
      const VarInfo *Info = findVar(Target->Name);
      if (!Info) {
        Diags.error(Target->Loc,
                    "assignment to undeclared variable '" + Target->Name +
                        "'");
        return;
      }
      if (Info->IsArray)
        Diags.error(Target->Loc, "cannot assign to whole array '" +
                                     Target->Name + "'");
      return;
    }
    case ExprKind::ArrayIndex:
      checkExpr(Target, /*AllowCall=*/false);
      return;
    case ExprKind::Deref:
      checkExpr(Target->Lhs.get(), /*AllowCall=*/false);
      return;
    default:
      Diags.error(Target->Loc, "invalid assignment target");
    }
  }

  void checkStmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->Kind) {
    case StmtKind::VarDecl:
      declare(S->Name, S->Loc, S->ArraySize >= 0);
      checkExpr(S->Cond.get(), /*AllowCall=*/true);
      return;
    case StmtKind::Assign:
      checkLValue(S->Target.get());
      checkExpr(S->Value.get(), /*AllowCall=*/true);
      return;
    case StmtKind::ExprCall:
      checkCall(S->Value.get(), /*InExprPosition=*/false);
      return;
    case StmtKind::If:
      checkExpr(S->Cond.get(), /*AllowCall=*/false);
      checkStmt(S->ThenBody.get());
      checkStmt(S->ElseBody.get());
      return;
    case StmtKind::While:
      checkExpr(S->Cond.get(), /*AllowCall=*/false);
      ++LoopDepth;
      checkStmt(S->ThenBody.get());
      --LoopDepth;
      return;
    case StmtKind::For:
      checkStmt(S->InitStmt.get());
      checkExpr(S->Cond.get(), /*AllowCall=*/false);
      checkStmt(S->StepStmt.get());
      ++LoopDepth;
      checkStmt(S->ThenBody.get());
      --LoopDepth;
      return;
    case StmtKind::Switch: {
      checkExpr(S->Cond.get(), /*AllowCall=*/false);
      std::unordered_set<int64_t> Seen;
      for (const SwitchCase &Arm : S->Cases) {
        if (!Seen.insert(Arm.Value).second)
          Diags.error(Arm.Loc, "duplicate case value " +
                                   std::to_string(Arm.Value));
        ++LoopDepth; // `break` is permitted inside switch arms.
        for (const StmtPtr &Sub : Arm.Body)
          checkStmt(Sub.get());
        --LoopDepth;
      }
      ++LoopDepth;
      for (const StmtPtr &Sub : S->DefaultBody)
        checkStmt(Sub.get());
      --LoopDepth;
      return;
    }
    case StmtKind::Return:
      // `return f(x);` is sugar for `__retval = f(x); return;`, so a call
      // may form the entire returned expression.
      checkExpr(S->Cond.get(), /*AllowCall=*/true);
      return;
    case StmtKind::Break:
      if (LoopDepth == 0)
        Diags.error(S->Loc, "'break' outside of a loop or switch");
      return;
    case StmtKind::Continue:
      if (LoopDepth == 0)
        Diags.error(S->Loc, "'continue' outside of a loop");
      return;
    case StmtKind::Goto:
      if (!Labels.count(S->Name))
        Diags.error(S->Loc, "goto to undefined label '" + S->Name + "'");
      return;
    case StmtKind::Label:
      checkStmt(S->ThenBody.get());
      return;
    case StmtKind::Block:
      for (const StmtPtr &Sub : S->Body)
        checkStmt(Sub.get());
      return;
    case StmtKind::Empty:
      return;
    }
  }

  const Program &Prog;
  const ProcDecl &Proc;
  DiagnosticEngine &Diags;
  std::unordered_map<std::string, VarInfo> Vars;
  std::unordered_set<std::string> Labels;
  unsigned LoopDepth = 0;
};

} // namespace

bool closer::checkProgram(const Program &Prog, DiagnosticEngine &Diags) {
  unsigned ErrorsBefore = Diags.errorCount();

  // Top-level name uniqueness across all namespaces.
  std::unordered_map<std::string, SourceLoc> TopNames;
  auto DeclareTop = [&](const std::string &Name, SourceLoc Loc,
                        const char *What) {
    if (isBuiltinName(Name)) {
      Diags.error(Loc, std::string(What) + " '" + Name +
                           "' collides with a builtin");
      return;
    }
    auto [It, Inserted] = TopNames.emplace(Name, Loc);
    if (!Inserted)
      Diags.error(Loc, std::string("redefinition of '") + Name +
                           "' (previous at " + It->second.str() + ")");
  };

  for (const CommDecl &C : Prog.Comms)
    DeclareTop(C.Name, C.Loc, "communication object");
  for (const GlobalDecl &G : Prog.Globals)
    DeclareTop(G.Name, G.Loc, "global");
  for (const ProcDecl &P : Prog.Procs)
    DeclareTop(P.Name, P.Loc, "procedure");

  std::unordered_set<std::string> ProcessNames;
  for (const ProcessDecl &P : Prog.Processes) {
    if (!ProcessNames.insert(P.Name).second)
      Diags.error(P.Loc, "duplicate process name '" + P.Name + "'");
    const ProcDecl *Callee = Prog.findProc(P.ProcName);
    if (!Callee) {
      Diags.error(P.Loc, "process '" + P.Name +
                             "' references undefined procedure '" +
                             P.ProcName + "'");
      continue;
    }
    if (Callee->Params.size() != P.Args.size())
      Diags.error(P.Loc, "process '" + P.Name + "' passes " +
                             std::to_string(P.Args.size()) +
                             " argument(s) but procedure '" + P.ProcName +
                             "' expects " +
                             std::to_string(Callee->Params.size()));
  }

  for (const ProcDecl &P : Prog.Procs) {
    ProcChecker Checker(Prog, P, Diags);
    Checker.run();
  }

  return Diags.errorCount() == ErrorsBefore;
}
