//===- SwitchApp.cpp - Synthetic call-processing application ----------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// Message encoding on the control channel `msgs`: KIND * 100 + LINE.
//   kind 1: origination request       kind 2: call release
//   kind 9: line handler finished     (line ids are 0-based)
// Optional servers get dedicated channels; 999 is their done marker.
//
//===----------------------------------------------------------------------===//

#include "switchapp/SwitchApp.h"

using namespace closer;

namespace {

std::string itoa(long long V) { return std::to_string(V); }

} // namespace

std::string closer::generateSwitchAppSource(const SwitchAppConfig &Config) {
  const int Lines = Config.NumLines;
  const int Trunks = Config.NumTrunks;
  const int Events = Config.EventsPerLine;
  // Generous queue capacity: handlers never block on their control sends,
  // so every external-event schedule can drain.
  const int MsgCap = Lines * (Events + 1) + 1;

  std::string S;
  S += "// Synthetic call-processing application (5ESS-style case study).\n";
  S += "// lines=" + itoa(Lines) + " trunks=" + itoa(Trunks) +
       " events/line=" + itoa(Events) + "\n\n";

  S += "chan msgs[" + itoa(MsgCap) + "];\n";
  if (Config.WithRegistration)
    S += "chan regs[" + itoa(MsgCap) + "];\n";
  if (Config.WithHandoff)
    S += "chan hoffs[" + itoa(MsgCap) + "];\n";
  if (Config.WithForwarding)
    S += "chan fwd_ctl[" + itoa(MsgCap) + "];\n";
  S += "sem trunks(" + itoa(Trunks) + ");\n";
  S += "shared gauge = 0;\n";
  S += "\n";

  //===------------------------------------------------------------------===//
  // Line handler: the open boundary. External events and dialed digits
  // arrive from the environment; tones go back out. One variant per
  // subscriber class; the variant index adds class-specific (untainted)
  // accounting code so code size scales with the variant count.
  //===------------------------------------------------------------------===//
  const int Variants = Config.HandlerVariants < 1 ? 1 : Config.HandlerVariants;
  for (int V = 0; V != Variants; ++V) {
    std::string Suffix = Variants == 1 ? "" : "_v" + itoa(V);
    S += "proc line_handler" + Suffix + "(line) {\n";
    S += "  var ev;\n";
    S += "  var digits;\n";
    S += "  var k;\n";
    S += "  var usage = 0;\n";
    S += "  for (k = 0; k < " + itoa(Events) + "; k = k + 1) {\n";
    S += "    ev = env_input();\n";
    S += "    switch (ev % 4) {\n";
    S += "    case 0:\n";
    S += "      // Origination: collect digits, notify the router.\n";
    S += "      digits = env_input();\n";
    if (Config.WithForwarding)
      S += "      send(fwd_ctl, 300 + line);\n";
    S += "      send(msgs, 100 + line);\n";
    S += "      env_output(digits);\n";
    S += "    case 1:\n";
    S += "      // Subscriber hangs up.\n";
    S += "      send(msgs, 200 + line);\n";
    if (Config.WithRegistration) {
      S += "    case 2:\n";
      S += "      // Location registration (or roaming re-registration).\n";
      S += "      send(regs, line);\n";
    }
    if (Config.WithHandoff) {
      S += "    case 3:\n";
      S += "      // Radio handoff between cells.\n";
      S += "      send(hoffs, line);\n";
    }
    S += "    default:\n";
    S += "      // Idle tick: nothing observable.\n";
    S += "      env_output(0);\n";
    S += "    }\n";
    // Class-specific usage accounting (untainted, preserved by closing).
    for (int Acc = 0; Acc <= V % 4; ++Acc)
      S += "    usage = usage + " + itoa(Acc + 1) + ";\n";
    S += "    VS_assert(usage <= " + itoa((V % 4 + 1) * (V % 4 + 2) / 2 *
                                          Events) +
         ");\n";
    S += "  }\n";
    S += "  send(msgs, 900 + line);\n";
    if (Config.WithRegistration)
      S += "  send(regs, 999);\n";
    if (Config.WithHandoff)
      S += "  send(hoffs, 999);\n";
    if (Config.WithForwarding)
      S += "  send(fwd_ctl, 999);\n";
    S += "}\n\n";
  }

  //===------------------------------------------------------------------===//
  // Call router: allocates trunks to originations, releases them on
  // hangups, and checks the active-call gauge invariant.
  //===------------------------------------------------------------------===//
  S += "proc router() {\n";
  S += "  var m;\n";
  S += "  var kind;\n";
  S += "  var done = 0;\n";
  S += "  var active = 0;\n";
  S += "  while (done < " + itoa(Lines) + ") {\n";
  S += "    m = recv(msgs);\n";
  S += "    kind = m / 100;\n";
  S += "    switch (kind) {\n";
  S += "    case 1:\n";
  S += "      if (active < " + itoa(Trunks) + ") {\n";
  S += "        sem_wait(trunks);\n";
  S += "        active = active + 1;\n";
  S += "        VS_assert(active <= " + itoa(Trunks) + ");\n";
  S += "        write(gauge, active);\n";
  S += "      }\n";
  S += "    case 2:\n";
  S += "      if (active > 0) {\n";
  S += "        sem_signal(trunks);\n";
  S += "        active = active - 1;\n";
  S += "        write(gauge, active);\n";
  S += "      }\n";
  S += "      VS_assert(active >= 0);\n";
  S += "    case 9:\n";
  S += "      done = done + 1;\n";
  S += "    default:\n";
  S += "      ;\n";
  S += "    }\n";
  S += "  }\n";
  S += "  // Shutdown: release trunks still held by unreleased calls so\n";
  S += "  // the auxiliary servers cannot starve after the router exits.\n";
  S += "  while (active > 0) {\n";
  S += "    sem_signal(trunks);\n";
  S += "    active = active - 1;\n";
  S += "  }\n";
  S += "}\n\n";

  //===------------------------------------------------------------------===//
  // Registration server: per-line registration flags plus a population
  // counter with an asserted invariant.
  //===------------------------------------------------------------------===//
  if (Config.WithRegistration) {
    S += "var regd[" + itoa(Lines) + "];\n\n";
    S += "proc registration() {\n";
    S += "  var l;\n";
    S += "  var count = 0;\n";
    S += "  var done = 0;\n";
    S += "  while (done < " + itoa(Lines) + ") {\n";
    S += "    l = recv(regs);\n";
    S += "    if (l == 999) {\n";
    S += "      done = done + 1;\n";
    S += "    } else {\n";
    S += "      if (regd[l] == 1) {\n";
    S += "        regd[l] = 0;\n";
    S += "        count = count - 1;\n";
    S += "      } else {\n";
    S += "        regd[l] = 1;\n";
    S += "        count = count + 1;\n";
    S += "      }\n";
    S += "      VS_assert(count >= 0);\n";
    S += "      VS_assert(count <= " + itoa(Lines) + ");\n";
    S += "    }\n";
    S += "  }\n";
    S += "}\n\n";
  }

  //===------------------------------------------------------------------===//
  // Handoff controller: briefly double-holds a trunk while re-homing a
  // call. The seeded defect forgets the release on every other handoff.
  //===------------------------------------------------------------------===//
  if (Config.WithHandoff) {
    S += "proc handoff() {\n";
    S += "  var l;\n";
    S += "  var done = 0;\n";
    S += "  var flips = 0;\n";
    S += "  while (done < " + itoa(Lines) + ") {\n";
    S += "    l = recv(hoffs);\n";
    S += "    if (l == 999) {\n";
    S += "      done = done + 1;\n";
    S += "    } else {\n";
    S += "      sem_wait(trunks);\n";
    S += "      flips = flips + 1;\n";
    if (Config.SeedTrunkLeakBug) {
      S += "      if (flips % 2 == 0)\n";
      S += "        sem_signal(trunks);\n";
      S += "      // BUG: odd-numbered handoffs leak the trunk.\n";
    } else {
      S += "      sem_signal(trunks);\n";
    }
    S += "    }\n";
    S += "  }\n";
    S += "}\n\n";
  }

  //===------------------------------------------------------------------===//
  // Forwarding agent: consults environment data (the dialed-digit
  // analysis) to decide whether to re-route through a trunk. After
  // closing, that decision becomes a VS_toss.
  //===------------------------------------------------------------------===//
  if (Config.WithForwarding) {
    S += "proc forwarder() {\n";
    S += "  var r;\n";
    S += "  var decision;\n";
    S += "  var done = 0;\n";
    S += "  while (done < " + itoa(Lines) + ") {\n";
    S += "    r = recv(fwd_ctl);\n";
    S += "    if (r == 999) {\n";
    S += "      done = done + 1;\n";
    S += "    } else {\n";
    S += "      decision = env_input();\n";
    S += "      if (decision % 2 == 1) {\n";
    S += "        sem_wait(trunks);\n";
    S += "        sem_signal(trunks);\n";
    S += "      }\n";
    S += "    }\n";
    S += "  }\n";
    S += "}\n\n";
  }

  for (int L = 0; L != Lines; ++L) {
    std::string Suffix = Variants == 1 ? "" : "_v" + itoa(L % Variants);
    S += "process line" + itoa(L) + " = line_handler" + Suffix + "(" +
         itoa(L) + ");\n";
  }
  S += "process rtr = router();\n";
  if (Config.WithRegistration)
    S += "process regsrv = registration();\n";
  if (Config.WithHandoff)
    S += "process hoffctl = handoff();\n";
  if (Config.WithForwarding)
    S += "process fwd = forwarder();\n";
  return S;
}
