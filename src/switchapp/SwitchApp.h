//===- SwitchApp.h - Synthetic call-processing application -----*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parameterized generator of MiniC source for a telephone
/// call-processing application in the style of the paper's §6 case study
/// (the Lucent 5ESS application providing "originations, terminations,
/// location registration, hand over, roaming, and call forwarding"). The
/// real application is proprietary; this synthetic substitute exercises the
/// same code path: a multi-process reactive program, open at its
/// environment interface (external telephony events and dialed digits
/// arrive via env_input; tones/announcements leave via env_output), with
/// process families communicating over FIFO channels, semaphores guarding
/// trunk resources, and internal sanity assertions on resource counters.
///
/// Process families generated:
///  * one *line handler* per subscriber line: reads external events,
///    classifies them (origination / registration / handoff / release) and
///    forwards protocol messages to the servers;
///  * a *call router*: matches originations with trunk resources, tracks
///    the active-call gauge, asserts it stays within bounds;
///  * a *registration server* (optional): tracks registered lines;
///  * a *handoff controller* (optional): re-homes calls between trunks;
///  * a *forwarding agent* (optional): consults dialed digits (environment
///    data!) to decide re-routing — after closing, this decision becomes a
///    VS_toss.
///
/// A seedable trunk-leak bug (the handoff controller forgets to release a
/// trunk on one path) makes the closed system deadlock — the kind of
/// cross-process defect the paper's platform is meant to surface.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_SWITCHAPP_SWITCHAPP_H
#define CLOSER_SWITCHAPP_SWITCHAPP_H

#include <string>

namespace closer {

struct SwitchAppConfig {
  int NumLines = 3;      ///< Line-handler processes.
  int NumTrunks = 2;     ///< Trunk semaphore capacity.
  int EventsPerLine = 2; ///< External events each handler consumes.
  /// Number of distinct line-handler procedure variants (the 5ESS serves
  /// different subscriber classes with different feature code); lines are
  /// assigned round-robin. Scales the amount of *code* to close, not just
  /// the process count.
  int HandlerVariants = 1;
  bool WithRegistration = true;
  bool WithHandoff = true;
  bool WithForwarding = true;
  /// Seeds the trunk-leak bug in the handoff controller.
  bool SeedTrunkLeakBug = false;
};

/// Generates the MiniC source of the application.
std::string generateSwitchAppSource(const SwitchAppConfig &Config);

} // namespace closer

#endif // CLOSER_SWITCHAPP_SWITCHAPP_H
