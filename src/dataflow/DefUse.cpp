//===- DefUse.cpp - Reaching definitions and define-use graphs -------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "dataflow/DefUse.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

using namespace closer;

void ExprUses::merge(const ExprUses &Other) {
  Plain.insert(Other.Plain.begin(), Other.Plain.end());
  Cross.insert(Other.Cross.begin(), Other.Cross.end());
  UsesUnknown |= Other.UsesUnknown;
}

namespace {

void collectInto(const Module &Mod, const ProcCfg &Proc,
                 const AliasAnalysis &Alias, const Expr *E, ExprUses &Out) {
  if (!E)
    return;
  switch (E->Kind) {
  case ExprKind::IntLit:
    return;
  case ExprKind::Unknown:
    Out.UsesUnknown = true;
    return;
  case ExprKind::VarRef:
    Out.Plain.insert(E->Name);
    return;
  case ExprKind::ArrayIndex:
    Out.Plain.insert(E->Name);
    collectInto(Mod, Proc, Alias, E->Lhs.get(), Out);
    return;
  case ExprKind::AddrOf:
    // Taking an address reads nothing except an array index expression.
    if (E->Lhs->Kind == ExprKind::ArrayIndex)
      collectInto(Mod, Proc, Alias, E->Lhs->Lhs.get(), Out);
    return;
  case ExprKind::Deref: {
    // Reads the pointer expression and everything it may point to.
    collectInto(Mod, Proc, Alias, E->Lhs.get(), Out);
    for (const std::string &Qual : Alias.derefTargets(Proc, E->Lhs.get())) {
      if (isGlobalQual(Qual) || ownerProc(Qual) == Proc.Name)
        Out.Plain.insert(plainName(Qual));
      else
        Out.Cross.insert(Qual);
    }
    return;
  }
  case ExprKind::Unary:
    collectInto(Mod, Proc, Alias, E->Lhs.get(), Out);
    return;
  case ExprKind::Binary:
    collectInto(Mod, Proc, Alias, E->Lhs.get(), Out);
    collectInto(Mod, Proc, Alias, E->Rhs.get(), Out);
    return;
  case ExprKind::Call:
    assert(false && "call expressions are lowered to Call nodes");
    return;
  }
}

} // namespace

ExprUses closer::collectExprUses(const Module &Mod, const ProcCfg &Proc,
                                 const AliasAnalysis &Alias, const Expr *E) {
  ExprUses Out;
  collectInto(Mod, Proc, Alias, E, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// ProcDataflow
//===----------------------------------------------------------------------===//

ProcDataflow::ProcDataflow(const Module &Mod, const ProcCfg &Proc,
                           const AliasAnalysis &Alias)
    : Proc(Proc) {
  size_t N = Proc.Nodes.size();
  Uses.resize(N);
  CrossUses.resize(N);
  NodeUsesUnknown.assign(N, false);
  Defs.resize(N);
  CrossDefs.resize(N);
  DuSucc.resize(N);
  DuPred.resize(N);
  EntryReaching.resize(N);
  computeUsesDefs(Mod, Alias);
  computeReachingDefs();
}

void ProcDataflow::computeUsesDefs(const Module &Mod,
                                   const AliasAnalysis &Alias) {
  for (size_t I = 0, N = Proc.Nodes.size(); I != N; ++I) {
    const CfgNode &Node = Proc.Nodes[I];
    ExprUses U;

    // Value / condition expression.
    if (Node.Value)
      collectInto(Mod, Proc, Alias, Node.Value.get(), U);

    // Call arguments. The object argument of an object builtin is a name,
    // not a data read.
    unsigned FirstValueArg = 0;
    if (Node.Kind == CfgNodeKind::Call && Node.Builtin != BuiltinKind::None &&
        builtinInfo(Node.Builtin).TakesObject)
      FirstValueArg = 1;
    for (size_t A = FirstValueArg, AE = Node.Args.size(); A != AE; ++A)
      collectInto(Mod, Proc, Alias, Node.Args[A].get(), U);

    // Target lvalue reads: index expressions and dereferenced pointers.
    if (Node.Target) {
      const Expr *T = Node.Target.get();
      switch (T->Kind) {
      case ExprKind::VarRef:
        break;
      case ExprKind::ArrayIndex:
        collectInto(Mod, Proc, Alias, T->Lhs.get(), U);
        break;
      case ExprKind::Deref:
        collectInto(Mod, Proc, Alias, T->Lhs.get(), U);
        // Note: the *pointed-to* cells are written, not read; they are
        // handled as definitions below. Remove them from the read set the
        // Deref collector would have added.
        break;
      default:
        break;
      }
    }

    // Definitions.
    if (Node.Target) {
      const Expr *T = Node.Target.get();
      switch (T->Kind) {
      case ExprKind::VarRef:
        Defs[I].push_back({T->Name, /*Strong=*/true});
        break;
      case ExprKind::ArrayIndex:
        Defs[I].push_back({T->Name, /*Strong=*/false});
        break;
      case ExprKind::Deref: {
        for (const std::string &Qual :
             Alias.derefTargets(Proc, T->Lhs.get())) {
          if (isGlobalQual(Qual) || ownerProc(Qual) == Proc.Name)
            Defs[I].push_back({plainName(Qual), /*Strong=*/false});
          else
            CrossDefs[I].insert(Qual);
        }
        break;
      }
      default:
        break;
      }
    }

    // A deref TARGET also appears in U via the generic collector when the
    // lvalue pointer expression mentions the pointed-to variables; that is
    // acceptable over-approximation (a weak def keeps old values live, so
    // treating the cell as also-read is sound for taint purposes).
    Uses[I] = std::move(U.Plain);
    CrossUses[I] = std::move(U.Cross);
    NodeUsesUnknown[I] = U.UsesUnknown;
  }
}

void ProcDataflow::computeReachingDefs() {
  // Definition sites are (node, var); the entry contributes a pseudo-def
  // for every parameter (its environment-bindable incoming value) and every
  // global (its value as left by other code).
  constexpr NodeId EntryDef = InvalidNode;
  using DefSite = std::pair<NodeId, std::string>;
  size_t N = Proc.Nodes.size();

  std::vector<std::set<DefSite>> In(N), Out(N);

  // Predecessor lists.
  std::vector<std::vector<NodeId>> Preds(N);
  for (size_t I = 0; I != N; ++I)
    for (const CfgArc &Arc : Proc.Nodes[I].Arcs)
      Preds[Arc.Target].push_back(static_cast<NodeId>(I));

  std::set<DefSite> EntrySet;
  for (const std::string &P : Proc.Params)
    EntrySet.insert({EntryDef, P});
  // Globals: pseudo-def at entry so later uses get a def-use source that
  // the taint analysis can interpret flow-insensitively.

  auto Transfer = [&](NodeId Id, const std::set<DefSite> &InSet) {
    std::set<DefSite> Result;
    // Kill strong defs.
    std::set<std::string> Killed;
    for (const VarDef &D : Defs[Id])
      if (D.Strong)
        Killed.insert(D.Name);
    for (const DefSite &Site : InSet)
      if (!Killed.count(Site.second))
        Result.insert(Site);
    for (const VarDef &D : Defs[Id])
      Result.insert({Id, D.Name});
    return Result;
  };

  // Worklist iteration (forward, may). Seeding every node once guarantees
  // each node's Out is computed at least once even in unreachable corners.
  std::vector<bool> InWork(N, true);
  std::vector<NodeId> Work;
  for (size_t I = N; I != 0; --I)
    Work.push_back(static_cast<NodeId>(I - 1));
  while (!Work.empty()) {
    NodeId Id = Work.back();
    Work.pop_back();
    InWork[Id] = false;

    std::set<DefSite> NewIn =
        (Id == Proc.Entry) ? EntrySet : std::set<DefSite>();
    for (NodeId Pred : Preds[Id])
      NewIn.insert(Out[Pred].begin(), Out[Pred].end());
    std::set<DefSite> NewOut = Transfer(Id, NewIn);
    bool Changed = NewOut != Out[Id];
    In[Id] = std::move(NewIn);
    Out[Id] = std::move(NewOut);
    if (!Changed)
      continue;
    for (const CfgArc &Arc : Proc.Nodes[Id].Arcs) {
      if (!InWork[Arc.Target]) {
        InWork[Arc.Target] = true;
        Work.push_back(Arc.Target);
      }
    }
  }

  // Materialize define-use arcs.
  for (size_t I = 0; I != N; ++I) {
    for (const DefSite &Site : In[I]) {
      if (!Uses[I].count(Site.second))
        continue;
      if (Site.first == EntryDef) {
        EntryReaching[I].insert(Site.second);
        continue;
      }
      DuSucc[Site.first].push_back({static_cast<NodeId>(I), Site.second});
      DuPred[I].push_back({Site.first, Site.second});
      ++NumArcs;
    }
  }
}

bool ProcDataflow::paramEntryReaches(NodeId N, const std::string &Var) const {
  return EntryReaching[N].count(Var) != 0;
}
