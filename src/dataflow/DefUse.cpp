//===- DefUse.cpp - Reaching definitions and define-use graphs -------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "dataflow/DefUse.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>
#include <unordered_map>

using namespace closer;

void ExprUses::merge(const ExprUses &Other) {
  Plain.insert(Other.Plain.begin(), Other.Plain.end());
  Cross.insert(Other.Cross.begin(), Other.Cross.end());
  UsesUnknown |= Other.UsesUnknown;
}

namespace {

void collectInto(const Module &Mod, const ProcCfg &Proc,
                 const AliasAnalysis &Alias, const Expr *E, ExprUses &Out) {
  if (!E)
    return;
  switch (E->Kind) {
  case ExprKind::IntLit:
    return;
  case ExprKind::Unknown:
    Out.UsesUnknown = true;
    return;
  case ExprKind::VarRef:
    Out.Plain.insert(E->Name);
    return;
  case ExprKind::ArrayIndex:
    Out.Plain.insert(E->Name);
    collectInto(Mod, Proc, Alias, E->Lhs.get(), Out);
    return;
  case ExprKind::AddrOf:
    // Taking an address reads nothing except an array index expression.
    if (E->Lhs->Kind == ExprKind::ArrayIndex)
      collectInto(Mod, Proc, Alias, E->Lhs->Lhs.get(), Out);
    return;
  case ExprKind::Deref: {
    // Reads the pointer expression and everything it may point to.
    collectInto(Mod, Proc, Alias, E->Lhs.get(), Out);
    for (const std::string &Qual : Alias.derefTargets(Proc, E->Lhs.get())) {
      if (isGlobalQual(Qual) || ownerProc(Qual) == Proc.Name)
        Out.Plain.insert(plainName(Qual));
      else
        Out.Cross.insert(Qual);
    }
    return;
  }
  case ExprKind::Unary:
    collectInto(Mod, Proc, Alias, E->Lhs.get(), Out);
    return;
  case ExprKind::Binary:
    collectInto(Mod, Proc, Alias, E->Lhs.get(), Out);
    collectInto(Mod, Proc, Alias, E->Rhs.get(), Out);
    return;
  case ExprKind::Call:
    assert(false && "call expressions are lowered to Call nodes");
    return;
  }
}

} // namespace

ExprUses closer::collectExprUses(const Module &Mod, const ProcCfg &Proc,
                                 const AliasAnalysis &Alias, const Expr *E) {
  ExprUses Out;
  collectInto(Mod, Proc, Alias, E, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// ProcDataflow
//===----------------------------------------------------------------------===//

ProcDataflow::ProcDataflow(const Module &Mod, const ProcCfg &Proc,
                           const AliasAnalysis &Alias)
    : Proc(Proc) {
  size_t N = Proc.Nodes.size();
  Uses.resize(N);
  CrossUses.resize(N);
  NodeUsesUnknown.assign(N, false);
  Defs.resize(N);
  CrossDefs.resize(N);
  EntryReaching.resize(N);
  computeUsesDefs(Mod, Alias);
  computeReachingDefs();
}

void ProcDataflow::computeUsesDefs(const Module &Mod,
                                   const AliasAnalysis &Alias) {
  for (size_t I = 0, N = Proc.Nodes.size(); I != N; ++I) {
    const CfgNode &Node = Proc.Nodes[I];
    ExprUses U;

    // Value / condition expression.
    if (Node.Value)
      collectInto(Mod, Proc, Alias, Node.Value.get(), U);

    // Call arguments. The object argument of an object builtin is a name,
    // not a data read.
    unsigned FirstValueArg = 0;
    if (Node.Kind == CfgNodeKind::Call && Node.Builtin != BuiltinKind::None &&
        builtinInfo(Node.Builtin).TakesObject)
      FirstValueArg = 1;
    for (size_t A = FirstValueArg, AE = Node.Args.size(); A != AE; ++A)
      collectInto(Mod, Proc, Alias, Node.Args[A].get(), U);

    // Target lvalue reads: index expressions and dereferenced pointers.
    if (Node.Target) {
      const Expr *T = Node.Target.get();
      switch (T->Kind) {
      case ExprKind::VarRef:
        break;
      case ExprKind::ArrayIndex:
        collectInto(Mod, Proc, Alias, T->Lhs.get(), U);
        break;
      case ExprKind::Deref:
        collectInto(Mod, Proc, Alias, T->Lhs.get(), U);
        // Note: the *pointed-to* cells are written, not read; they are
        // handled as definitions below. Remove them from the read set the
        // Deref collector would have added.
        break;
      default:
        break;
      }
    }

    // Definitions.
    if (Node.Target) {
      const Expr *T = Node.Target.get();
      switch (T->Kind) {
      case ExprKind::VarRef:
        Defs[I].push_back({T->Name, /*Strong=*/true});
        break;
      case ExprKind::ArrayIndex:
        Defs[I].push_back({T->Name, /*Strong=*/false});
        break;
      case ExprKind::Deref: {
        for (const std::string &Qual :
             Alias.derefTargets(Proc, T->Lhs.get())) {
          if (isGlobalQual(Qual) || ownerProc(Qual) == Proc.Name)
            Defs[I].push_back({plainName(Qual), /*Strong=*/false});
          else
            CrossDefs[I].insert(Qual);
        }
        break;
      }
      default:
        break;
      }
    }

    // A deref TARGET also appears in U via the generic collector when the
    // lvalue pointer expression mentions the pointed-to variables; that is
    // acceptable over-approximation (a weak def keeps old values live, so
    // treating the cell as also-read is sound for taint purposes).
    Uses[I] = std::move(U.Plain);
    CrossUses[I] = std::move(U.Cross);
    NodeUsesUnknown[I] = U.UsesUnknown;
  }
}

namespace {

/// Flat (offset, length) slices over one shared pool — the reaching sets of
/// all nodes live in two contiguous arrays instead of one heap allocation
/// per node. Slices are immutable; an update appends the new set at the
/// pool tail and repoints the slice (the abandoned slot is never reused —
/// total churn is bounded by the few fixpoint passes, so the pool stays
/// within a small constant of the final footprint).
struct SlicePool {
  std::vector<uint64_t> Data;
  std::vector<size_t> Off;
  std::vector<uint32_t> Len;

  /// \p CapacityHint pre-sizes the data array: pool growth reallocation
  /// memcpys the whole pool, which is free while it fits in cache but
  /// dominates the solve at 10^5 nodes. The hint need not be exact — the
  /// vector still grows if it is exceeded.
  SlicePool(size_t N, size_t CapacityHint) : Off(N, 0), Len(N, 0) {
    Data.reserve(CapacityHint);
  }

  const uint64_t *begin(size_t I) const { return Data.data() + Off[I]; }
  const uint64_t *end(size_t I) const { return begin(I) + Len[I]; }
  bool equals(size_t I, const std::vector<uint64_t> &V) const {
    return Len[I] == V.size() && std::equal(V.begin(), V.end(), begin(I));
  }
  void assign(size_t I, const std::vector<uint64_t> &V) {
    Off[I] = Data.size();
    Len[I] = static_cast<uint32_t>(V.size());
    Data.insert(Data.end(), V.begin(), V.end());
  }
};

/// Sorted-unique merge of two sorted ranges into \p Dst (appended).
void mergeUnique(const uint64_t *A, const uint64_t *AE, const uint64_t *B,
                 const uint64_t *BE, std::vector<uint64_t> &Dst) {
  while (A != AE && B != BE) {
    uint64_t V = *A < *B ? *A : *B;
    if (*A == V)
      ++A;
    if (B != BE && *B == V)
      ++B;
    Dst.push_back(V);
  }
  Dst.insert(Dst.end(), A, AE);
  Dst.insert(Dst.end(), B, BE);
}

} // namespace

void ProcDataflow::computeReachingDefs() {
  // Definition sites are (node, var); the entry contributes a pseudo-def
  // for every parameter (its environment-bindable incoming value).
  //
  // The solver is allocation-free in its hot loop: def-site variables are
  // interned to dense ids (only parameters and defined variables can appear
  // as reaching definitions), a site is packed into one uint64
  // ((node + 1) << 32 | var-id, with node + 1 == 0 encoding the entry
  // pseudo-def), and all per-node data lives in flat CSR arrays / slice
  // pools rather than one container per node. The per-node-container
  // layout was the superlinear-looking term in the scaling benchmark:
  // hundreds of thousands of scattered small allocations put every access
  // behind a TLB miss once the procedure outgrew the fast cache levels,
  // so ns/unit crept up with size even though the operation count is
  // linear. Flat arrays keep the access pattern sequential and the
  // footprint minimal, which is what holds ns/unit flat to ~1M nodes.
  size_t N = Proc.Nodes.size();

  auto internVar = [&](const std::string &Name) {
    return DefVarId.try_emplace(Name, static_cast<uint32_t>(DefVarId.size()))
        .first->second;
  };
  auto packSite = [](uint64_t NodePlus1, uint32_t Var) {
    return NodePlus1 << 32 | Var;
  };
  auto sortUnique = [](auto &Vec) {
    std::sort(Vec.begin(), Vec.end());
    Vec.erase(std::unique(Vec.begin(), Vec.end()), Vec.end());
  };

  for (const std::string &P : Proc.Params)
    internVar(P);

  // Own def sites and strong kills, CSR over nodes (one reused scratch
  // buffer, two flat arrays — not 2N vectors).
  std::vector<size_t> DefOff(N + 1, 0), KillOff(N + 1, 0);
  std::vector<uint64_t> DefDat;
  std::vector<uint32_t> KillDat;
  {
    std::vector<uint64_t> TmpDefs;
    std::vector<uint32_t> TmpKills;
    for (size_t I = 0; I != N; ++I) {
      TmpDefs.clear();
      TmpKills.clear();
      for (const VarDef &D : Defs[I]) {
        uint32_t V = internVar(D.Name);
        TmpDefs.push_back(packSite(I + 1, V));
        if (D.Strong)
          TmpKills.push_back(V);
      }
      sortUnique(TmpDefs);
      sortUnique(TmpKills);
      DefDat.insert(DefDat.end(), TmpDefs.begin(), TmpDefs.end());
      KillDat.insert(KillDat.end(), TmpKills.begin(), TmpKills.end());
      DefOff[I + 1] = DefDat.size();
      KillOff[I + 1] = KillDat.size();
    }
  }
  std::vector<const std::string *> VarName(DefVarId.size());
  for (const auto &KV : DefVarId)
    VarName[KV.second] = &KV.first;

  // Predecessor lists, CSR (count, prefix-sum, fill).
  std::vector<size_t> PredOff(N + 2, 0);
  for (size_t I = 0; I != N; ++I)
    for (const CfgArc &Arc : Proc.Nodes[I].Arcs)
      ++PredOff[Arc.Target + 2];
  for (size_t I = 2; I != N + 2; ++I)
    PredOff[I] += PredOff[I - 1];
  std::vector<NodeId> PredDat(PredOff[N + 1]);
  for (size_t I = 0; I != N; ++I)
    for (const CfgArc &Arc : Proc.Nodes[I].Arcs)
      PredDat[PredOff[Arc.Target + 1]++] = static_cast<NodeId>(I);

  std::vector<uint64_t> EntrySet;
  for (const std::string &P : Proc.Params)
    EntrySet.push_back(packSite(0, DefVarId[P]));
  sortUnique(EntrySet);

  // Only Out sets are stored; In is rebuilt per node by joining the final
  // predecessor Outs once the fixpoint is reached. Dropping the In pool
  // halves the solver's streamed bytes, which is what it is bound by once
  // the pools outgrow the cache — the ns/unit cost at N~10^5 tracks the
  // number of pool bytes written, not the operation count.
  // Capacity hint: every node's Out holds at most all def-site variables,
  // but in practice it holds roughly the live-variable count; 8 sites per
  // node covers typical programs without overcommitting memory.
  SlicePool Out(N, N * 8 + EntrySet.size() + 64);
  std::vector<uint64_t> NewIn, NewOut, MergeTmp;

  // Join: sorted-unique union of predecessor Outs (plus the entry
  // pseudo-defs), built by pairwise merges — no sort in the hot loop.
  auto joinPreds = [&](NodeId Id, std::vector<uint64_t> &Dst) {
    Dst.clear();
    if (Id == Proc.Entry)
      Dst.insert(Dst.end(), EntrySet.begin(), EntrySet.end());
    for (size_t P = PredOff[Id], PE = PredOff[Id + 1]; P != PE; ++P) {
      NodeId Pred = PredDat[P];
      if (Dst.empty()) {
        Dst.insert(Dst.end(), Out.begin(Pred), Out.end(Pred));
        continue;
      }
      MergeTmp.clear();
      mergeUnique(Dst.data(), Dst.data() + Dst.size(), Out.begin(Pred),
                  Out.end(Pred), MergeTmp);
      std::swap(Dst, MergeTmp);
    }
  };

  // Worklist iteration (forward, may). Seeding every node once guarantees
  // each node's Out is computed at least once even in unreachable corners.
  std::vector<char> InWork(N, 1);
  std::vector<NodeId> Work;
  for (size_t I = N; I != 0; --I)
    Work.push_back(static_cast<NodeId>(I - 1));
  while (!Work.empty()) {
    NodeId Id = Work.back();
    Work.pop_back();
    InWork[Id] = false;

    joinPreds(Id, NewIn);

    // Transfer: kill strong defs, merge own definitions (both sorted, so
    // filter + merge keeps NewOut sorted without re-sorting).
    NewOut.clear();
    const uint32_t *KB = KillDat.data() + KillOff[Id];
    const uint32_t *KE = KillDat.data() + KillOff[Id + 1];
    MergeTmp.clear();
    for (uint64_t Site : NewIn)
      if (!std::binary_search(KB, KE, static_cast<uint32_t>(Site)))
        MergeTmp.push_back(Site);
    mergeUnique(MergeTmp.data(), MergeTmp.data() + MergeTmp.size(),
                DefDat.data() + DefOff[Id], DefDat.data() + DefOff[Id + 1],
                NewOut);

    if (Out.equals(Id, NewOut))
      continue;
    Out.assign(Id, NewOut);
    for (const CfgArc &Arc : Proc.Nodes[Id].Arcs) {
      if (!InWork[Arc.Target]) {
        InWork[Arc.Target] = true;
        Work.push_back(Arc.Target);
      }
    }
  }

  // Materialize define-use arcs. Each node's In set is rebuilt here from
  // the converged Outs; it is sorted by (node + 1, var), so entry
  // pseudo-defs come first in var-id order and EntryReaching stays sorted
  // for the binary search in paramEntryReaches. Arcs are emitted into one
  // flat buffer first, then counting-sorted into the CSR arrays.
  struct FlatArc {
    NodeId From;
    NodeId To;
    uint32_t Var;
  };
  std::vector<FlatArc> Arcs;
  Arcs.reserve(N);
  std::vector<uint32_t> UseIds;
  for (size_t I = 0; I != N; ++I) {
    UseIds.clear();
    for (const std::string &U : Uses[I]) {
      auto It = DefVarId.find(U);
      if (It != DefVarId.end())
        UseIds.push_back(It->second);
    }
    std::sort(UseIds.begin(), UseIds.end());
    if (UseIds.empty())
      continue;
    joinPreds(static_cast<NodeId>(I), NewIn);
    for (uint64_t Site : NewIn) {
      uint32_t V = static_cast<uint32_t>(Site);
      if (!std::binary_search(UseIds.begin(), UseIds.end(), V))
        continue;
      uint64_t FromPlus1 = Site >> 32;
      if (FromPlus1 == 0) {
        EntryReaching[I].push_back(V);
        continue;
      }
      Arcs.push_back({static_cast<NodeId>(FromPlus1 - 1),
                      static_cast<NodeId>(I), V});
    }
  }
  // Counting-sort the flat buffer into both CSR directions. Flat order is
  // (use node, In-site order), so per-defining-node arcs in DuSuccDat
  // arrive with ascending use node and each node's DuPredDat slice
  // preserves In-site order — the same arc order the former per-node
  // vector construction produced.
  DuSuccOff.assign(N + 1, 0);
  DuPredOff.assign(N + 1, 0);
  for (const FlatArc &A : Arcs) {
    ++DuSuccOff[A.From + 1];
    ++DuPredOff[A.To + 1];
  }
  for (size_t I = 1; I != N + 1; ++I) {
    DuSuccOff[I] += DuSuccOff[I - 1];
    DuPredOff[I] += DuPredOff[I - 1];
  }
  DuSuccDat.resize(Arcs.size());
  DuPredDat.resize(Arcs.size());
  {
    std::vector<size_t> SuccAt(DuSuccOff.begin(), DuSuccOff.end() - 1);
    std::vector<size_t> PredAt(DuPredOff.begin(), DuPredOff.end() - 1);
    for (const FlatArc &A : Arcs) {
      DuSuccDat[SuccAt[A.From]++] = {A.To, VarName[A.Var]};
      DuPredDat[PredAt[A.To]++] = {A.From, VarName[A.Var]};
    }
  }
  NumArcs = Arcs.size();
}

//===----------------------------------------------------------------------===//
// Serialization (analysis cache)
//===----------------------------------------------------------------------===//

// Variable names (plain or qualified "p::x") never contain whitespace, so a
// whitespace-separated token stream round-trips everything. DuPred and
// NumArcs are derived from DuSucc on load.

std::string ProcDataflow::serialize() const {
  std::ostringstream Out;
  size_t N = Proc.Nodes.size();
  Out << "du-v1\nnodes " << N << "\n";

  // Interned def-site variables, in id order (ids index EntryReaching).
  std::vector<const std::string *> VarName(DefVarId.size());
  for (const auto &KV : DefVarId)
    VarName[KV.second] = &KV.first;
  Out << "vars " << VarName.size();
  for (const std::string *Name : VarName)
    Out << " " << *Name;
  Out << "\n";

  auto EmitSet = [&Out](const char *Tag, const std::set<std::string> &S) {
    Out << " " << Tag << " " << S.size();
    for (const std::string &Name : S)
      Out << " " << Name;
    Out << "\n";
  };
  for (size_t I = 0; I != N; ++I) {
    Out << "node " << I << "\n";
    EmitSet("uses", Uses[I]);
    EmitSet("xuses", CrossUses[I]);
    Out << " unk " << (NodeUsesUnknown[I] ? 1 : 0) << "\n";
    Out << " defs " << Defs[I].size();
    for (const VarDef &D : Defs[I])
      Out << " " << D.Name << " " << (D.Strong ? 1 : 0);
    Out << "\n";
    EmitSet("xdefs", CrossDefs[I]);
    DuArcRange Succ = duSuccessors(static_cast<NodeId>(I));
    Out << " succ " << Succ.size();
    for (const DuArc &A : Succ)
      Out << " " << A.Node << " " << *A.Var;
    Out << "\n";
    Out << " entry " << EntryReaching[I].size();
    for (uint32_t V : EntryReaching[I])
      Out << " " << V;
    Out << "\n";
  }
  return Out.str();
}

std::unique_ptr<ProcDataflow>
ProcDataflow::deserialize(const ProcCfg &Proc, const std::string &Blob) {
  std::istringstream In(Blob);
  std::string Tag, Word;
  size_t N = 0, NVars = 0;
  if (!(In >> Tag) || Tag != "du-v1")
    return nullptr;
  if (!(In >> Word >> N) || Word != "nodes" || N != Proc.Nodes.size())
    return nullptr;

  std::unique_ptr<ProcDataflow> DF(new ProcDataflow(Proc, RestoreTag{}));
  if (!(In >> Word >> NVars) || Word != "vars")
    return nullptr;
  for (size_t V = 0; V != NVars; ++V) {
    std::string Name;
    if (!(In >> Name))
      return nullptr;
    if (!DF->DefVarId.emplace(Name, static_cast<uint32_t>(V)).second)
      return nullptr;
  }

  DF->Uses.resize(N);
  DF->CrossUses.resize(N);
  DF->NodeUsesUnknown.assign(N, false);
  DF->Defs.resize(N);
  DF->CrossDefs.resize(N);
  DF->DuSuccOff.assign(N + 1, 0);
  DF->EntryReaching.resize(N);

  auto ReadSet = [&In](const char *Expect, std::set<std::string> &S) {
    std::string W, Name;
    size_t Count = 0;
    if (!(In >> W >> Count) || W != Expect)
      return false;
    for (size_t K = 0; K != Count; ++K) {
      if (!(In >> Name))
        return false;
      S.insert(Name);
    }
    return true;
  };
  for (size_t I = 0; I != N; ++I) {
    size_t Id = 0, Count = 0;
    int Flag = 0;
    if (!(In >> Word >> Id) || Word != "node" || Id != I)
      return nullptr;
    if (!ReadSet("uses", DF->Uses[I]) || !ReadSet("xuses", DF->CrossUses[I]))
      return nullptr;
    if (!(In >> Word >> Flag) || Word != "unk")
      return nullptr;
    DF->NodeUsesUnknown[I] = Flag != 0;
    if (!(In >> Word >> Count) || Word != "defs")
      return nullptr;
    for (size_t K = 0; K != Count; ++K) {
      std::string Name;
      if (!(In >> Name >> Flag))
        return nullptr;
      DF->Defs[I].push_back({Name, Flag != 0});
    }
    if (!ReadSet("xdefs", DF->CrossDefs[I]))
      return nullptr;
    if (!(In >> Word >> Count) || Word != "succ")
      return nullptr;
    for (size_t K = 0; K != Count; ++K) {
      size_t To = 0;
      std::string Var;
      if (!(In >> To >> Var) || To >= N)
        return nullptr;
      // Arc labels are def-site variables, so they must appear in the
      // interned table read above; anything else is a corrupt blob. The
      // stored pointer aliases the table key (stable under rehash).
      auto VarIt = DF->DefVarId.find(Var);
      if (VarIt == DF->DefVarId.end())
        return nullptr;
      DF->DuSuccDat.push_back({static_cast<NodeId>(To), &VarIt->first});
    }
    DF->DuSuccOff[I + 1] = DF->DuSuccDat.size();
    if (!(In >> Word >> Count) || Word != "entry")
      return nullptr;
    for (size_t K = 0; K != Count; ++K) {
      uint32_t V = 0;
      if (!(In >> V) || V >= NVars)
        return nullptr;
      DF->EntryReaching[I].push_back(V);
    }
  }

  // Derived state: the predecessor CSR (counting sort over the successor
  // arcs) and the arc count.
  DF->NumArcs = DF->DuSuccDat.size();
  DF->DuPredOff.assign(N + 1, 0);
  for (const DuArc &A : DF->DuSuccDat)
    ++DF->DuPredOff[A.Node + 1];
  for (size_t I = 1; I != N + 1; ++I)
    DF->DuPredOff[I] += DF->DuPredOff[I - 1];
  DF->DuPredDat.resize(DF->NumArcs);
  {
    std::vector<size_t> At(DF->DuPredOff.begin(), DF->DuPredOff.end() - 1);
    for (size_t I = 0; I != N; ++I)
      for (const DuArc &A : DF->duSuccessors(static_cast<NodeId>(I)))
        DF->DuPredDat[At[A.Node]++] = {static_cast<NodeId>(I), A.Var};
  }
  return DF;
}

bool ProcDataflow::paramEntryReaches(NodeId N, const std::string &Var) const {
  auto It = DefVarId.find(Var);
  if (It == DefVarId.end())
    return false;
  return std::binary_search(EntryReaching[N].begin(), EntryReaching[N].end(),
                            It->second);
}
