//===- AnalysisCache.cpp - On-disk persistence of analysis results ----------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "dataflow/AnalysisCache.h"

#include "cfg/CfgPrinter.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include <unistd.h>

using namespace closer;

namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// Fingerprints
//===----------------------------------------------------------------------===//

namespace {

/// FNV-1a, the same mixing the runtime's state hasher uses.
struct Fnv1a {
  uint64_t H = 0xcbf29ce484222325ull;
  void mix(const std::string &S) {
    for (unsigned char C : S) {
      H ^= C;
      H *= 1099511628211ull;
    }
    H ^= 0xff; // Separator, so field boundaries matter.
    H *= 1099511628211ull;
  }
  void mix(uint64_t V) { mix(std::to_string(V)); }
};

std::string hex(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

} // namespace

uint64_t closer::fingerprintProc(const ProcCfg &Proc) {
  Fnv1a H;
  H.mix("closer-proc-fp-v1");
  H.mix(Proc.Name);
  H.mix(Proc.Params.size());
  for (const std::string &P : Proc.Params)
    H.mix(P);
  H.mix(Proc.Locals.size());
  for (const LocalVar &L : Proc.Locals) {
    H.mix(L.Name);
    H.mix(static_cast<uint64_t>(L.ArraySize));
  }
  H.mix(static_cast<uint64_t>(Proc.Entry));
  H.mix(printCfg(Proc));
  return H.H;
}

uint64_t closer::fingerprintModule(const Module &Mod) {
  Fnv1a H;
  H.mix("closer-analysis-cache-v1");
  // printModule covers declarations (channels, globals, processes) and the
  // full listing of every procedure.
  H.mix(printModule(Mod));
  return H.H;
}

//===----------------------------------------------------------------------===//
// Taint (de)serialization — TaintResult is a plain aggregate, so it lives
// here rather than as a member of EnvAnalysis.
//===----------------------------------------------------------------------===//

namespace {

void emitBits(std::ostringstream &Out, const char *Tag,
              const std::vector<bool> &Bits) {
  Out << " " << Tag << " ";
  if (Bits.empty())
    Out << "-";
  else
    for (bool B : Bits)
      Out << (B ? '1' : '0');
  Out << "\n";
}

bool readBits(std::istringstream &In, const char *Expect, size_t Size,
              std::vector<bool> &Bits) {
  std::string Word, Str;
  if (!(In >> Word >> Str) || Word != Expect)
    return false;
  if (Str == "-")
    return Size == 0;
  if (Str.size() != Size)
    return false;
  Bits.resize(Size);
  for (size_t I = 0; I != Size; ++I)
    Bits[I] = Str[I] == '1';
  return true;
}

void emitNames(std::ostringstream &Out, const char *Tag,
               const std::set<std::string> &Names) {
  Out << Tag << " " << Names.size();
  for (const std::string &Name : Names)
    Out << " " << Name;
  Out << "\n";
}

bool readNames(std::istringstream &In, const char *Expect,
               std::set<std::string> &Names) {
  std::string Word, Name;
  size_t Count = 0;
  if (!(In >> Word >> Count) || Word != Expect)
    return false;
  for (size_t I = 0; I != Count; ++I) {
    if (!(In >> Name))
      return false;
    Names.insert(Name);
  }
  return true;
}

std::string serializeTaint(const TaintResult &T) {
  std::ostringstream Out;
  Out << "taint-v1\nprocs " << T.Procs.size() << "\n";
  for (size_t P = 0; P != T.Procs.size(); ++P) {
    const ProcTaint &PT = T.Procs[P];
    Out << "proc " << P << " nodes " << PT.InNI.size() << " ret "
        << (PT.TaintedReturn ? 1 : 0) << "\n";
    emitBits(Out, "inni", PT.InNI);
    emitBits(Out, "envsrc", PT.EnvSource);
    emitBits(Out, "tparams", PT.TaintedParams);
    size_t NonEmpty = 0;
    for (const std::set<std::string> &S : PT.VI)
      NonEmpty += !S.empty();
    Out << " vi " << NonEmpty << "\n";
    for (size_t N = 0; N != PT.VI.size(); ++N) {
      if (PT.VI[N].empty())
        continue;
      Out << "  " << N << " " << PT.VI[N].size();
      for (const std::string &Name : PT.VI[N])
        Out << " " << Name;
      Out << "\n";
    }
  }
  emitNames(Out, "globals", T.TaintedGlobals);
  emitNames(Out, "channels", T.TaintedChannels);
  emitNames(Out, "shared", T.TaintedShared);
  emitNames(Out, "xwritten", T.CrossWritten);
  emitNames(Out, "evertainted", T.EverTainted);
  return Out.str();
}

/// Rebuilds a TaintResult shaped for \p Mod; false on any mismatch.
bool deserializeTaint(const Module &Mod, const std::string &Blob,
                      TaintResult &T) {
  std::istringstream In(Blob);
  std::string Tag, Word;
  size_t NProcs = 0;
  if (!(In >> Tag) || Tag != "taint-v1")
    return false;
  if (!(In >> Word >> NProcs) || Word != "procs" ||
      NProcs != Mod.Procs.size())
    return false;
  T.Procs.resize(NProcs);
  for (size_t P = 0; P != NProcs; ++P) {
    ProcTaint &PT = T.Procs[P];
    size_t Id = 0, NNodes = 0, NVi = 0;
    int Ret = 0;
    if (!(In >> Word >> Id) || Word != "proc" || Id != P)
      return false;
    if (!(In >> Word >> NNodes) || Word != "nodes" ||
        NNodes != Mod.Procs[P].Nodes.size())
      return false;
    if (!(In >> Word >> Ret) || Word != "ret")
      return false;
    PT.TaintedReturn = Ret != 0;
    if (!readBits(In, "inni", NNodes, PT.InNI) ||
        !readBits(In, "envsrc", NNodes, PT.EnvSource) ||
        !readBits(In, "tparams", Mod.Procs[P].Params.size(),
                  PT.TaintedParams))
      return false;
    PT.VI.resize(NNodes);
    if (!(In >> Word >> NVi) || Word != "vi")
      return false;
    for (size_t K = 0; K != NVi; ++K) {
      size_t Node = 0, Count = 0;
      if (!(In >> Node >> Count) || Node >= NNodes)
        return false;
      for (size_t V = 0; V != Count; ++V) {
        std::string Name;
        if (!(In >> Name))
          return false;
        PT.VI[Node].insert(Name);
      }
    }
  }
  return readNames(In, "globals", T.TaintedGlobals) &&
         readNames(In, "channels", T.TaintedChannels) &&
         readNames(In, "shared", T.TaintedShared) &&
         readNames(In, "xwritten", T.CrossWritten) &&
         readNames(In, "evertainted", T.EverTainted);
}

//===----------------------------------------------------------------------===//
// Directory plumbing
//===----------------------------------------------------------------------===//

std::string aliasFile(uint64_t ModFp) { return "alias_" + hex(ModFp); }
std::string duFile(uint64_t ProcFp, uint64_t AliasRfp) {
  return "du_" + hex(ProcFp) + "_" + hex(AliasRfp);
}
std::string taintFile(uint64_t ModFp, const TaintOptions &Opts) {
  return "taint_" + hex(ModFp) + (Opts.CoarseMode ? "_coarse" : "_fine");
}

bool readWholeFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

/// Write-to-temp plus atomic rename; concurrent writers of the same entry
/// (batch-mode workers) race benignly — both write identical bytes.
bool writeFileAtomic(const std::string &Dir, const std::string &Name,
                     const std::string &Data) {
  static std::atomic<uint64_t> Counter{0};
  std::string Tmp = Dir + "/.tmp_" + std::to_string(::getpid()) + "_" +
                    std::to_string(Counter.fetch_add(1)) + "_" + Name;
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out << Data;
    if (!Out.good())
      return false;
  }
  std::error_code Ec;
  fs::rename(Tmp, Dir + "/" + Name, Ec);
  if (Ec) {
    fs::remove(Tmp, Ec);
    return false;
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// AnalysisCache
//===----------------------------------------------------------------------===//

AnalysisCache::AnalysisCache(std::string CacheDir) : Dir(std::move(CacheDir)) {
  if (Dir.empty())
    return;
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec || !fs::is_directory(Dir, Ec))
    Dir.clear(); // Degrade to a disabled cache.
}

void AnalysisCache::restore(AnalysisManager &AM, const TaintOptions &TaintOpts,
                            AnalysisCacheStats &Stats) {
  if (Dir.empty())
    return;
  const Module &Mod = AM.module();

  // One directory listing up front; all hit/miss decisions run against it.
  std::unordered_set<std::string> Listing;
  {
    std::error_code Ec;
    for (const fs::directory_entry &E : fs::directory_iterator(Dir, Ec))
      Listing.insert(E.path().filename().string());
  }
  if (Listing.empty())
    return;

  uint64_t ModFp = fingerprintModule(Mod);
  std::vector<uint64_t> ProcFps;
  ProcFps.reserve(Mod.Procs.size());
  for (const ProcCfg &Proc : Mod.Procs)
    ProcFps.push_back(fingerprintProc(Proc));

  // Alias: exact module hit restores it outright. On a miss, per-procedure
  // define-use entries may still apply (same procedures inside an edited
  // module), but they are keyed by the alias *result* fingerprint — so
  // compute the alias analysis now (a genuine Computed) if any candidate
  // exists.
  uint64_t AliasRfp = 0;
  bool HaveAliasRfp = false;
  std::string Blob;
  if (Listing.count(aliasFile(ModFp)) &&
      readWholeFile(Dir + "/" + aliasFile(ModFp), Blob)) {
    if (std::unique_ptr<AliasAnalysis> A =
            AliasAnalysis::deserialize(Mod, Blob)) {
      AliasRfp = A->resultFingerprint();
      HaveAliasRfp = true;
      AM.preloadAlias(std::move(A));
      Stats.AliasRestored = 1;
    }
  }
  if (!HaveAliasRfp) {
    bool AnyDuCandidate = false;
    for (uint64_t Fp : ProcFps) {
      std::string Prefix = "du_" + hex(Fp) + "_";
      for (const std::string &Name : Listing)
        if (Name.compare(0, Prefix.size(), Prefix) == 0) {
          AnyDuCandidate = true;
          break;
        }
      if (AnyDuCandidate)
        break;
    }
    if (!AnyDuCandidate)
      return; // Nothing in the cache applies to this module.
    AliasRfp = AM.getAlias().resultFingerprint();
    HaveAliasRfp = true;
  }

  for (size_t I = 0; I != ProcFps.size(); ++I) {
    std::string Name = duFile(ProcFps[I], AliasRfp);
    if (!Listing.count(Name) || !readWholeFile(Dir + "/" + Name, Blob))
      continue;
    if (std::unique_ptr<ProcDataflow> DF =
            ProcDataflow::deserialize(Mod.Procs[I], Blob)) {
      AM.preloadDefUse(I, std::move(DF));
      ++Stats.DefUseRestored;
    }
  }

  // The taint fixpoint borrows the alias and every define-use graph, so it
  // is only installable when all of them restored (a taint entry for this
  // exact module fingerprint implies they were all saved together).
  if (Stats.AliasRestored && Stats.DefUseRestored == Mod.Procs.size() &&
      Listing.count(taintFile(ModFp, TaintOpts)) &&
      readWholeFile(Dir + "/" + taintFile(ModFp, TaintOpts), Blob)) {
    TaintResult T;
    if (deserializeTaint(Mod, Blob, T) &&
        AM.preloadEnvTaint(std::move(T), TaintOpts))
      Stats.TaintRestored = 1;
  }
}

void AnalysisCache::save(AnalysisManager &AM, const TaintOptions &TaintOpts,
                         AnalysisCacheStats &Stats) {
  if (Dir.empty())
    return;
  const AliasAnalysis *Alias = AM.cachedAlias();
  if (!Alias)
    return; // Without alias facts nothing else was computed either.
  const Module &Mod = AM.module();
  uint64_t ModFp = fingerprintModule(Mod);
  uint64_t AliasRfp = Alias->resultFingerprint();

  auto SaveEntry = [&](const std::string &Name, const std::string &Data) {
    std::error_code Ec;
    if (fs::exists(Dir + "/" + Name, Ec))
      return;
    if (writeFileAtomic(Dir, Name, Data))
      ++Stats.EntriesSaved;
  };
  SaveEntry(aliasFile(ModFp), Alias->serialize());
  for (size_t I = 0, E = Mod.Procs.size(); I != E; ++I)
    if (const ProcDataflow *DF = AM.cachedDefUse(I))
      SaveEntry(duFile(fingerprintProc(Mod.Procs[I]), AliasRfp),
                DF->serialize());
  if (const EnvAnalysis *Taint = AM.cachedEnvTaint(TaintOpts))
    SaveEntry(taintFile(ModFp, TaintOpts), serializeTaint(Taint->taint()));
}
