//===- EnvTaint.h - Environment-input (taint) analysis ---------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Step 2 of the paper's closing algorithm (Figure 1), extended to whole
/// programs. For every procedure it computes:
///
///  * N_Es — nodes that use the value of a variable defined by the
///    environment E_S;
///  * N_I  — nodes reachable from N_Es by define-use arcs;
///  * V_I(n) — for each node, the used variables that are defined by E_S or
///    label a define-use arc from an N_I node (Lemma 1's sound
///    over-approximation of functional dependence on the environment).
///
/// The paper assumes "for each input i in I_j it is possible to determine
/// whether i is also in I_S ... manual, or automatic in the form of an
/// interprocedural analysis on top of our intraprocedural analysis". This
/// is the automatic form: a fixpoint over the call graph and the
/// communication topology that infers
///
///  * which parameters may be bound to environment data (env process
///    arguments; tainted call arguments),
///  * which returned values are environment-dependent,
///  * which globals, channels and shared variables may carry environment
///    data (a send of a tainted payload taints every receive on that
///    channel — without this the transformed program would not be closed),
///  * which variables may be written environment data through pointers
///    from other procedures (consulted flow-insensitively, the
///    "interprocedural issues" conservatism of §5).
///
/// The environment's sources are: `env` process arguments, `env_input()`
/// calls, and the `unknown` literal (present only in already-closed code).
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_DATAFLOW_ENVTAINT_H
#define CLOSER_DATAFLOW_ENVTAINT_H

#include "cfg/Cfg.h"
#include "dataflow/AliasAnalysis.h"
#include "dataflow/DefUse.h"

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace closer {

/// Analysis knobs (ablations for experiment E8).
struct TaintOptions {
  /// Coarse mode: once a procedure sees any environment input, every
  /// variable it defines is treated as environment-defined (no define-use
  /// flow sensitivity). Sound but far less precise; quantifies what the
  /// paper's define-use analysis buys.
  bool CoarseMode = false;
};

/// Per-procedure taint facts (parallel to Module::Procs).
struct ProcTaint {
  std::vector<bool> InNI;      ///< n ∈ N_I.
  std::vector<bool> EnvSource; ///< the definition performed by n carries
                               ///< environment data (env_input, tainted
                               ///< recv/read, tainted-return call).
  std::vector<std::set<std::string>> VI; ///< V_I(n).
  std::vector<bool> TaintedParams;
  bool TaintedReturn = false;
};

/// Whole-module taint facts.
struct TaintResult {
  std::vector<ProcTaint> Procs;
  std::set<std::string> TaintedGlobals;
  std::set<std::string> TaintedChannels;
  std::set<std::string> TaintedShared;
  /// Qualified variables that may be *written* environment data through a
  /// pointer from another procedure (flow-insensitive).
  std::set<std::string> CrossWritten;
  /// Qualified variables that may *hold* environment data at some point
  /// (consulted by cross-procedure pointer reads).
  std::set<std::string> EverTainted;

  /// Memo for the variable sets an expression reads. The sets depend only
  /// on the module and the alias facts — not on the taint state — so one
  /// cache stays valid across every fixpoint round and across the closing
  /// transform, and expression pointers are stable for the module's
  /// lifetime.
  using ExprUsesCache = std::unordered_map<const Expr *, ExprUses>;

  /// True when an argument expression of node \p N in procedure \p ProcIdx
  /// is environment-dependent. \p Cache, when provided, memoizes the
  /// expression walk (the dominant cost on large modules).
  bool exprTainted(const Module &Mod, const AliasAnalysis &Alias,
                   size_t ProcIdx, NodeId N, const Expr *E,
                   ExprUsesCache *Cache = nullptr) const;
};

/// The analysis pipeline shared by closing and clients: alias analysis,
/// per-procedure define-use graphs, and the taint fixpoint.
class EnvAnalysis {
public:
  explicit EnvAnalysis(const Module &Mod, TaintOptions Options = {});

  /// Borrowing constructor for cached-analysis clients (the pass manager's
  /// AnalysisManager): runs only the taint fixpoint on top of an alias
  /// analysis and per-procedure define-use graphs owned by the caller.
  /// \p Dataflows must be parallel to Mod.Procs, and \p Alias and every
  /// dataflow must have been computed on \p Mod and outlive this object.
  EnvAnalysis(const Module &Mod, const AliasAnalysis &Alias,
              std::vector<const ProcDataflow *> Dataflows,
              TaintOptions Options = {});

  /// Rehydrating constructor for the analysis cache: installs a previously
  /// computed TaintResult instead of running the fixpoint. The caller
  /// certifies (by fingerprint keying) that \p Restored was computed on an
  /// identical module with identical options; \p Alias and \p Dataflows
  /// obey the borrowing constructor's contract.
  EnvAnalysis(const Module &Mod, const AliasAnalysis &Alias,
              std::vector<const ProcDataflow *> Dataflows,
              TaintResult Restored);

  const Module &module() const { return Mod; }
  const AliasAnalysis &alias() const { return *AliasPtr; }
  const ProcDataflow &dataflow(size_t ProcIdx) const {
    return *DataflowPtrs[ProcIdx];
  }
  const TaintResult &taint() const { return Result; }

  /// The expression-uses memo populated during the fixpoint. Clients that
  /// query exprTainted after the analysis (the closing transform sanitizes
  /// the same argument expressions the export loop classified) pass it to
  /// reuse the walks. Mutable-by-design: it is a pure function memo.
  TaintResult::ExprUsesCache &exprUsesCache() const { return ExprCache; }

  /// True when the module has no environment interface left (every
  /// procedure's N_I is empty and there are no env_input/env_output nodes
  /// or env process arguments) — Lemma 5's closedness criterion.
  bool moduleIsClosed() const;

private:
  void runFixpoint(TaintOptions Options);

  const Module &Mod;
  mutable TaintResult::ExprUsesCache ExprCache;
  /// Owned storage (classic constructor); empty in borrowed mode.
  std::unique_ptr<AliasAnalysis> OwnedAlias;
  std::vector<std::unique_ptr<ProcDataflow>> OwnedDataflows;
  /// What the analysis actually consults (owned or borrowed).
  const AliasAnalysis *AliasPtr = nullptr;
  std::vector<const ProcDataflow *> DataflowPtrs;
  TaintResult Result;
};

} // namespace closer

#endif // CLOSER_DATAFLOW_ENVTAINT_H
