//===- AliasAnalysis.cpp - Steensgaard-style may-alias analysis ------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "dataflow/AliasAnalysis.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_set>

using namespace closer;

std::string closer::qualifyVar(const Module &Mod, const ProcCfg &Proc,
                               const std::string &Name) {
  if (Proc.isParam(Name) || Proc.isLocal(Name))
    return Proc.Name + "::" + Name;
  if (Mod.findGlobal(Name))
    return "::" + Name;
  // Unknown names (should not happen on verified modules) are treated as
  // procedure-scoped so they cannot contaminate globals.
  return Proc.Name + "::" + Name;
}

std::string closer::plainName(const std::string &Qual) {
  size_t Pos = Qual.rfind("::");
  assert(Pos != std::string::npos && "not a qualified name");
  return Qual.substr(Pos + 2);
}

std::string closer::ownerProc(const std::string &Qual) {
  size_t Pos = Qual.rfind("::");
  assert(Pos != std::string::npos && "not a qualified name");
  return Qual.substr(0, Pos);
}

//===----------------------------------------------------------------------===//
// Union-find plumbing
//===----------------------------------------------------------------------===//

AliasAnalysis::Cell AliasAnalysis::cellOf(const std::string &Qual) {
  auto It = VarCells.find(Qual);
  if (It != VarCells.end())
    return It->second;
  Cell C = static_cast<Cell>(Parent.size());
  Parent.push_back(C);
  Pointee.push_back(-1);
  CellNames.push_back(Qual);
  VarCells.emplace(Qual, C);
  return C;
}

AliasAnalysis::Cell AliasAnalysis::find(Cell C) const {
  while (Parent[C] != C) {
    Parent[C] = Parent[Parent[C]]; // Path halving.
    C = Parent[C];
  }
  return C;
}

/// Unifies two cells, recursively merging their pointees (Steensgaard's
/// "join" on location types). Returns the representative.
AliasAnalysis::Cell AliasAnalysis::unite(Cell A, Cell B) {
  A = find(A);
  B = find(B);
  if (A == B)
    return A;
  Parent[B] = A;
  Cell PtA = Pointee[A];
  Cell PtB = Pointee[B];
  if (PtA >= 0 && PtB >= 0) {
    Pointee[A] = -2; // Guard against pathological cycles during recursion.
    Pointee[A] = unite(PtA, PtB);
  } else if (PtB >= 0) {
    Pointee[A] = PtB;
  }
  return A;
}

AliasAnalysis::Cell AliasAnalysis::getPointee(Cell C) {
  C = find(C);
  if (Pointee[C] < 0) {
    Cell Anon = static_cast<Cell>(Parent.size());
    Parent.push_back(Anon);
    Pointee.push_back(-1);
    CellNames.push_back("");
    Pointee[C] = Anon;
  }
  return find(Pointee[C]);
}

/// `Target = Source` as a value copy: whatever Source may point to, Target
/// may point to as well (unification makes this symmetric, which is what
/// buys near-linear time at some precision cost).
void AliasAnalysis::joinAsValue(Cell Target, Cell Source) {
  unite(getPointee(Target), getPointee(Source));
}

//===----------------------------------------------------------------------===//
// Constraint generation
//===----------------------------------------------------------------------===//

AliasAnalysis::Cell AliasAnalysis::lvalueCell(const ProcCfg &Proc,
                                              const Expr *Lvalue) {
  switch (Lvalue->Kind) {
  case ExprKind::VarRef:
    return cellOf(qualifyVar(Mod, Proc, Lvalue->Name));
  case ExprKind::ArrayIndex:
    // Arrays are collapsed: a[i] shares the cell of a.
    return cellOf(qualifyVar(Mod, Proc, Lvalue->Name));
  case ExprKind::Deref: {
    // The cell written by *e is the pointee of e's value.
    Cell Tmp = static_cast<Cell>(Parent.size());
    Parent.push_back(Tmp);
    Pointee.push_back(-1);
    CellNames.push_back("");
    flowExprInto(Proc, Tmp, Lvalue->Lhs.get());
    return getPointee(Tmp);
  }
  default:
    assert(false && "invalid lvalue expression");
    return cellOf("::__invalid");
  }
}

/// Records the effect of evaluating \p E into the cell \p Target.
void AliasAnalysis::flowExprInto(const ProcCfg &Proc, Cell Target,
                                 const Expr *E) {
  if (!E)
    return;
  switch (E->Kind) {
  case ExprKind::IntLit:
  case ExprKind::Unknown:
    return;
  case ExprKind::VarRef:
  case ExprKind::ArrayIndex:
    joinAsValue(Target, cellOf(qualifyVar(Mod, Proc, E->Name)));
    if (E->Kind == ExprKind::ArrayIndex)
      flowExprInto(Proc, Target, E->Lhs.get()); // Index arithmetic.
    return;
  case ExprKind::AddrOf: {
    const Expr *Place = E->Lhs.get();
    Cell PlaceCell = cellOf(qualifyVar(Mod, Proc, Place->Name));
    unite(getPointee(Target), PlaceCell);
    if (Place->Kind == ExprKind::ArrayIndex)
      flowExprInto(Proc, Target, Place->Lhs.get());
    return;
  }
  case ExprKind::Deref: {
    Cell Tmp = static_cast<Cell>(Parent.size());
    Parent.push_back(Tmp);
    Pointee.push_back(-1);
    CellNames.push_back("");
    flowExprInto(Proc, Tmp, E->Lhs.get());
    joinAsValue(Target, getPointee(Tmp));
    return;
  }
  case ExprKind::Unary:
    flowExprInto(Proc, Target, E->Lhs.get());
    return;
  case ExprKind::Binary:
    // Conservative: pointer arithmetic flows both operands.
    flowExprInto(Proc, Target, E->Lhs.get());
    flowExprInto(Proc, Target, E->Rhs.get());
    return;
  case ExprKind::Call:
    assert(false && "call expressions are lowered to Call nodes");
    return;
  }
}

static bool exprHasPointerOp(const Expr *E) {
  if (!E)
    return false;
  if (E->Kind == ExprKind::AddrOf || E->Kind == ExprKind::Deref)
    return true;
  if (exprHasPointerOp(E->Lhs.get()) || exprHasPointerOp(E->Rhs.get()))
    return true;
  for (const ExprPtr &Arg : E->Args)
    if (exprHasPointerOp(Arg.get()))
      return true;
  return false;
}

void AliasAnalysis::processProc(const Module &M, const ProcCfg &Proc) {
  bool HasPointers = false;
  for (const CfgNode &Node : Proc.Nodes) {
    HasPointers |= exprHasPointerOp(Node.Target.get());
    HasPointers |= exprHasPointerOp(Node.Value.get());
    for (const ExprPtr &Arg : Node.Args)
      HasPointers |= exprHasPointerOp(Arg.get());

    switch (Node.Kind) {
    case CfgNodeKind::Assign: {
      Cell Target = lvalueCell(Proc, Node.Target.get());
      flowExprInto(Proc, Target, Node.Value.get());
      break;
    }
    case CfgNodeKind::Call: {
      if (Node.Builtin == BuiltinKind::None) {
        const ProcCfg *Callee = M.findProc(Node.Callee);
        if (Callee) {
          // Parameter binding: param := arg (context-insensitive).
          for (size_t I = 0, E = std::min(Node.Args.size(),
                                          Callee->Params.size());
               I != E; ++I) {
            Cell ParamCell =
                cellOf(Callee->Name + "::" + Callee->Params[I]);
            flowExprInto(Proc, ParamCell, Node.Args[I].get());
          }
          // Result binding: target := callee __retval.
          if (Node.Target && Callee->isLocal(retValName())) {
            Cell Target = lvalueCell(Proc, Node.Target.get());
            joinAsValue(Target,
                        cellOf(Callee->Name + "::" + retValName()));
          }
        }
      } else if (Node.Target) {
        // Builtin results are plain data; sema forbids address-of in
        // builtin arguments, so nothing can flow.
        lvalueCell(Proc, Node.Target.get());
      }
      break;
    }
    default:
      break;
    }
  }
  ProcHasPointers[Proc.Name] = HasPointers;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

AliasAnalysis::AliasAnalysis(const Module &Mod) : Mod(Mod) {
  for (const ProcCfg &Proc : Mod.Procs)
    processProc(Mod, Proc);
  // Build representative -> named members index.
  for (const auto &[Qual, Cell] : VarCells)
    Members[find(Cell)].push_back(Qual);
  for (auto &[Rep, Names] : Members)
    std::sort(Names.begin(), Names.end());
}

std::vector<std::string>
AliasAnalysis::pointsTo(const ProcCfg &Proc, const std::string &PtrVar) const {
  auto It = VarCells.find(qualifyVar(Mod, Proc, PtrVar));
  if (It == VarCells.end())
    return {};
  Cell Rep = find(It->second);
  Cell Pt = Pointee[Rep];
  if (Pt < 0)
    return {};
  auto MemberIt = Members.find(find(Pt));
  if (MemberIt == Members.end())
    return {};
  return MemberIt->second;
}

std::vector<std::string> AliasAnalysis::derefTargets(const ProcCfg &Proc,
                                                     const Expr *E) const {
  std::vector<std::string> Out;
  if (!E)
    return Out;
  // Collect every variable mentioned in E and union their points-to sets.
  std::vector<const Expr *> Stack = {E};
  while (!Stack.empty()) {
    const Expr *Cur = Stack.back();
    Stack.pop_back();
    if (!Cur)
      continue;
    if (Cur->Kind == ExprKind::VarRef || Cur->Kind == ExprKind::ArrayIndex) {
      std::vector<std::string> Pts = pointsTo(Proc, Cur->Name);
      Out.insert(Out.end(), Pts.begin(), Pts.end());
    }
    Stack.push_back(Cur->Lhs.get());
    Stack.push_back(Cur->Rhs.get());
    for (const ExprPtr &Arg : Cur->Args)
      Stack.push_back(Arg.get());
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

bool AliasAnalysis::procUsesPointers(const ProcCfg &Proc) const {
  auto It = ProcHasPointers.find(Proc.Name);
  return It != ProcHasPointers.end() && It->second;
}

//===----------------------------------------------------------------------===//
// Serialization (analysis cache)
//===----------------------------------------------------------------------===//

// Cell names are qualified variable names ("f::x", "::g") and never contain
// whitespace, so a whitespace-separated token stream round-trips them;
// anonymous cells serialize as "-".

std::string AliasAnalysis::serialize() const {
  std::ostringstream Out;
  Out << "alias-v1\n";
  Out << "cells " << Parent.size() << "\n";
  for (size_t C = 0; C != Parent.size(); ++C)
    Out << (CellNames[C].empty() ? "-" : CellNames[C]) << " "
        << find(static_cast<Cell>(C)) << " " << Pointee[C] << "\n";
  Out << "prochasptr " << ProcHasPointers.size() << "\n";
  // Sorted for deterministic bytes (unordered_map iteration order is not).
  std::vector<const std::string *> ProcNames;
  ProcNames.reserve(ProcHasPointers.size());
  for (const auto &KV : ProcHasPointers)
    ProcNames.push_back(&KV.first);
  std::sort(ProcNames.begin(), ProcNames.end(),
            [](const std::string *A, const std::string *B) { return *A < *B; });
  for (const std::string *Name : ProcNames)
    Out << *Name << " " << (ProcHasPointers.at(*Name) ? 1 : 0) << "\n";
  return Out.str();
}

std::unique_ptr<AliasAnalysis>
AliasAnalysis::deserialize(const Module &Mod, const std::string &Blob) {
  std::istringstream In(Blob);
  std::string Tag, Word;
  size_t NCells = 0;
  if (!(In >> Tag) || Tag != "alias-v1")
    return nullptr;
  if (!(In >> Word >> NCells) || Word != "cells")
    return nullptr;

  std::unique_ptr<AliasAnalysis> A(new AliasAnalysis(Mod, RestoreTag{}));
  A->Parent.resize(NCells);
  A->Pointee.resize(NCells);
  A->CellNames.resize(NCells);
  for (size_t C = 0; C != NCells; ++C) {
    std::string Name;
    long long Par = 0, Pt = 0;
    if (!(In >> Name >> Par >> Pt))
      return nullptr;
    if (Par < 0 || static_cast<size_t>(Par) >= NCells || Pt < -1 ||
        Pt >= static_cast<long long>(NCells))
      return nullptr;
    A->CellNames[C] = Name == "-" ? std::string() : Name;
    A->Parent[C] = static_cast<Cell>(Par);
    A->Pointee[C] = static_cast<Cell>(Pt);
    if (!A->CellNames[C].empty())
      A->VarCells.emplace(A->CellNames[C], static_cast<Cell>(C));
  }
  size_t NProcs = 0;
  if (!(In >> Word >> NProcs) || Word != "prochasptr")
    return nullptr;
  for (size_t I = 0; I != NProcs; ++I) {
    std::string Name;
    int Flag = 0;
    if (!(In >> Name >> Flag))
      return nullptr;
    A->ProcHasPointers[Name] = Flag != 0;
  }
  // Rebuild the representative -> members index exactly as the analyzing
  // constructor does.
  for (const auto &[Qual, Cell] : A->VarCells)
    A->Members[A->find(Cell)].push_back(Qual);
  for (auto &[Rep, Names] : A->Members)
    std::sort(Names.begin(), Names.end());
  return A;
}

uint64_t AliasAnalysis::resultFingerprint() const {
  // FNV-1a over a canonical rendering of the solved facts.
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](const std::string &S) {
    for (unsigned char C : S) {
      H ^= C;
      H *= 1099511628211ull;
    }
    H ^= '\n';
    H *= 1099511628211ull;
  };
  Mix("alias-fp-v1");

  // Canonical class names: the smallest member of each named class
  // (Members lists are sorted), "@k" for anonymous pointee classes in
  // discovery order below. Both are independent of cell numbering.
  std::unordered_map<Cell, const std::string *> RootName;
  for (const auto &KV : Members)
    RootName.emplace(find(KV.first), &KV.second.front());

  std::vector<const std::string *> Quals;
  Quals.reserve(VarCells.size());
  for (const auto &KV : VarCells)
    Quals.push_back(&KV.first);
  std::sort(Quals.begin(), Quals.end(),
            [](const std::string *A, const std::string *B) { return *A < *B; });

  std::vector<Cell> Order; ///< Class roots in canonical discovery order.
  std::unordered_set<Cell> Seen;
  for (const std::string *Qual : Quals) {
    Cell Root = find(VarCells.at(*Qual));
    Mix(*Qual + "=" + *RootName.at(Root));
    if (Seen.insert(Root).second)
      Order.push_back(Root);
  }

  // Pointee edges, chasing through anonymous classes (Order grows as they
  // are discovered; each root is visited once).
  std::vector<std::string> AnonNames;
  // Reserve up front: RootName keeps pointers into AnonNames, which must
  // not reallocate. At most one anonymous class per cell exists.
  AnonNames.reserve(Parent.size());
  for (size_t I = 0; I != Order.size(); ++I) {
    Cell Root = Order[I];
    Cell Pt = Pointee[Root];
    if (Pt < 0)
      continue;
    Cell PtRoot = find(Pt);
    auto It = RootName.find(PtRoot);
    if (It == RootName.end()) {
      AnonNames.push_back("@" + std::to_string(AnonNames.size()));
      It = RootName.emplace(PtRoot, &AnonNames.back()).first;
      Order.push_back(PtRoot);
    }
    Mix(*RootName.at(Root) + ">" + *It->second);
  }
  return H;
}
