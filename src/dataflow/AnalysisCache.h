//===- AnalysisCache.h - On-disk persistence of analysis results -*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persists AnalysisManager results across processes so re-closing an
/// edited corpus recomputes only what the edit touched. Entries are keyed
/// by content fingerprints:
///
///  * alias_<module-fp>          — the module-wide Steensgaard analysis;
///  * du_<proc-fp>_<alias-rfp>   — one procedure's define-use graph, keyed
///    by the procedure's own fingerprint *and* the alias RESULT
///    fingerprint (AliasAnalysis::resultFingerprint), so editing one
///    procedure still restores every untouched procedure's graph as long
///    as the points-to facts are unchanged;
///  * taint_<module-fp>_<mode>   — the environment-taint fixpoint (the
///    mode suffix separates coarse from fine results).
///
/// restore() prefills an AnalysisManager via its preload hooks (which do
/// not touch the Computed/Reused counters), so the pipeline's later get*()
/// calls surface as Reused in the `closer-close-stats-v1` artifact — the
/// observable the incremental gate in scripts/check.sh asserts on.
///
/// Writes go through a temporary file plus atomic rename, so any number of
/// `closer close --jobs N` workers may share one cache directory.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_DATAFLOW_ANALYSISCACHE_H
#define CLOSER_DATAFLOW_ANALYSISCACHE_H

#include "dataflow/AnalysisManager.h"

#include <cstdint>
#include <string>

namespace closer {

/// FNV-1a fingerprint of one procedure: its name, signature (params,
/// locals with array sizes), entry node and full CFG listing.
uint64_t fingerprintProc(const ProcCfg &Proc);

/// FNV-1a fingerprint of the whole module (declarations plus every
/// procedure listing), salted with the cache schema version.
uint64_t fingerprintModule(const Module &Mod);

/// What one pipeline run restored from / saved to the cache; surfaced in
/// the stats artifact next to the Computed/Reused counters.
struct AnalysisCacheStats {
  bool Enabled = false;        ///< A cache directory was configured.
  uint64_t AliasRestored = 0;  ///< 0 or 1.
  uint64_t DefUseRestored = 0; ///< Procedures restored.
  uint64_t TaintRestored = 0;  ///< 0 or 1.
  uint64_t EntriesSaved = 0;   ///< Files written by save().
};

class AnalysisCache {
public:
  /// Binds (and creates, if needed) the cache directory. An uncreatable
  /// directory degrades to a disabled cache: restore() and save() become
  /// no-ops rather than errors — the cache is an accelerator, never a
  /// correctness requirement.
  explicit AnalysisCache(std::string Dir);

  /// Prefills \p AM with every entry matching the bound module. When the
  /// alias entry misses but per-procedure entries may still apply (an
  /// edited module), the alias analysis is computed through AM (counted as
  /// Computed, which it is) to key the define-use lookups. The taint
  /// fixpoint is only restored when alias and every procedure's define-use
  /// were, since EnvAnalysis borrows them.
  void restore(AnalysisManager &AM, const TaintOptions &TaintOpts,
               AnalysisCacheStats &Stats);

  /// Writes every materialized result of \p AM not already present in the
  /// cache. Call while the analyses are still cached (before a transform
  /// rebinds the manager).
  void save(AnalysisManager &AM, const TaintOptions &TaintOpts,
            AnalysisCacheStats &Stats);

private:
  std::string Dir; ///< Empty when disabled.
};

} // namespace closer

#endif // CLOSER_DATAFLOW_ANALYSISCACHE_H
