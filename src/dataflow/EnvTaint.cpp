//===- EnvTaint.cpp - Environment-input (taint) analysis -------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "dataflow/EnvTaint.h"

#include <cassert>
#include <deque>

using namespace closer;

//===----------------------------------------------------------------------===//
// TaintResult helpers
//===----------------------------------------------------------------------===//

bool TaintResult::exprTainted(const Module &Mod, const AliasAnalysis &Alias,
                              size_t ProcIdx, NodeId N, const Expr *E) const {
  if (!E)
    return false;
  ExprUses U = collectExprUses(Mod, Mod.Procs[ProcIdx], Alias, E);
  if (U.UsesUnknown)
    return true;
  const std::set<std::string> &Vi = Procs[ProcIdx].VI[N];
  for (const std::string &V : U.Plain)
    if (Vi.count(V))
      return true;
  for (const std::string &Q : U.Cross)
    if (EverTainted.count(Q))
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// EnvAnalysis
//===----------------------------------------------------------------------===//

EnvAnalysis::EnvAnalysis(const Module &Mod, TaintOptions Options) : Mod(Mod) {
  OwnedAlias = std::make_unique<AliasAnalysis>(Mod);
  AliasPtr = OwnedAlias.get();
  OwnedDataflows.reserve(Mod.Procs.size());
  DataflowPtrs.reserve(Mod.Procs.size());
  for (const ProcCfg &Proc : Mod.Procs) {
    OwnedDataflows.push_back(
        std::make_unique<ProcDataflow>(Mod, Proc, *AliasPtr));
    DataflowPtrs.push_back(OwnedDataflows.back().get());
  }
  runFixpoint(Options);
}

EnvAnalysis::EnvAnalysis(const Module &Mod, const AliasAnalysis &Alias,
                         std::vector<const ProcDataflow *> Dataflows,
                         TaintOptions Options)
    : Mod(Mod), AliasPtr(&Alias), DataflowPtrs(std::move(Dataflows)) {
  assert(DataflowPtrs.size() == Mod.Procs.size() &&
         "one dataflow per procedure");
  runFixpoint(Options);
}

namespace {

/// Size snapshot of all monotone sets, for fixpoint detection.
struct Footprint {
  size_t Globals, Channels, Shared, CrossWritten, EverTainted, Params;
  unsigned Returns;

  bool operator==(const Footprint &O) const = default;
};

Footprint footprint(const TaintResult &R) {
  size_t Params = 0;
  unsigned Returns = 0;
  for (const ProcTaint &P : R.Procs) {
    for (bool B : P.TaintedParams)
      Params += B;
    Returns += P.TaintedReturn;
  }
  return {R.TaintedGlobals.size(), R.TaintedChannels.size(),
          R.TaintedShared.size(), R.CrossWritten.size(),
          R.EverTainted.size(),   Params,
          Returns};
}

} // namespace

void EnvAnalysis::runFixpoint(TaintOptions Options) {
  size_t NumProcs = Mod.Procs.size();
  Result.Procs.resize(NumProcs);
  for (size_t P = 0; P != NumProcs; ++P) {
    const ProcCfg &Proc = Mod.Procs[P];
    Result.Procs[P].TaintedParams.assign(Proc.Params.size(), false);
    Result.Procs[P].InNI.assign(Proc.Nodes.size(), false);
    Result.Procs[P].EnvSource.assign(Proc.Nodes.size(), false);
    Result.Procs[P].VI.assign(Proc.Nodes.size(), {});
  }

  // Seed: `env` process arguments bind environment values to top-level
  // parameters.
  for (const ProcessDecl &Inst : Mod.Processes) {
    int ProcIdx = Mod.procIndex(Inst.ProcName);
    if (ProcIdx < 0)
      continue;
    for (size_t I = 0,
                E = std::min(Inst.Args.size(),
                             Result.Procs[ProcIdx].TaintedParams.size());
         I != E; ++I)
      if (Inst.Args[I].IsEnv)
        Result.Procs[ProcIdx].TaintedParams[I] = true;
  }

  Footprint Prev = footprint(Result);
  for (;;) {
    for (size_t P = 0; P != NumProcs; ++P) {
      const ProcCfg &Proc = Mod.Procs[P];
      const ProcDataflow &DF = *DataflowPtrs[P];
      ProcTaint &PT = Result.Procs[P];
      size_t N = Proc.Nodes.size();

      // --- Identify env-definition sources and seed uses -----------------
      std::fill(PT.EnvSource.begin(), PT.EnvSource.end(), false);
      std::vector<bool> Seed(N, false);
      for (size_t I = 0; I != N; ++I) {
        const CfgNode &Node = Proc.Nodes[I];
        if (Node.Kind == CfgNodeKind::Call) {
          switch (Node.Builtin) {
          case BuiltinKind::EnvInput:
            PT.EnvSource[I] = true;
            break;
          case BuiltinKind::Recv:
            if (!Node.Args.empty() &&
                Result.TaintedChannels.count(Node.Args[0]->Name))
              PT.EnvSource[I] = true;
            break;
          case BuiltinKind::SharedRead:
            if (!Node.Args.empty() &&
                Result.TaintedShared.count(Node.Args[0]->Name))
              PT.EnvSource[I] = true;
            break;
          case BuiltinKind::None: {
            int CalleeIdx = Mod.procIndex(Node.Callee);
            if (Node.Target && CalleeIdx >= 0 &&
                Result.Procs[CalleeIdx].TaintedReturn)
              PT.EnvSource[I] = true;
            break;
          }
          default:
            break;
          }
        }

        // Does this node read an environment-defined value?
        if (DF.usesUnknown(I)) {
          Seed[I] = true;
          continue;
        }
        for (const std::string &V : DF.uses(I)) {
          if (Mod.findGlobal(V)) {
            if (Result.TaintedGlobals.count(V)) {
              Seed[I] = true;
              break;
            }
            continue;
          }
          std::string Qual = Proc.Name + "::" + V;
          if (Result.CrossWritten.count(Qual)) {
            Seed[I] = true;
            break;
          }
          int ParamIdx = Proc.paramIndex(V);
          if (ParamIdx >= 0 && PT.TaintedParams[ParamIdx] &&
              DF.paramEntryReaches(static_cast<NodeId>(I), V)) {
            Seed[I] = true;
            break;
          }
          if (Options.CoarseMode && Result.EverTainted.count(Qual)) {
            Seed[I] = true;
            break;
          }
        }
        if (!Seed[I]) {
          for (const std::string &Q : DF.crossUses(I))
            if (Result.EverTainted.count(Q)) {
              Seed[I] = true;
              break;
            }
        }
      }

      // --- Propagate over define-use arcs: N_I --------------------------
      std::fill(PT.InNI.begin(), PT.InNI.end(), false);
      std::deque<NodeId> Work;
      for (size_t I = 0; I != N; ++I) {
        if (Seed[I]) {
          PT.InNI[I] = true;
          Work.push_back(static_cast<NodeId>(I));
        }
      }
      // Definitions performed by env sources taint their users.
      for (size_t I = 0; I != N; ++I) {
        if (!PT.EnvSource[I])
          continue;
        for (const auto &[To, Var] : DF.duSuccessors(static_cast<NodeId>(I)))
          if (!PT.InNI[To]) {
            PT.InNI[To] = true;
            Work.push_back(To);
          }
      }
      while (!Work.empty()) {
        NodeId Id = Work.front();
        Work.pop_front();
        for (const auto &[To, Var] : DF.duSuccessors(Id)) {
          if (!PT.InNI[To]) {
            PT.InNI[To] = true;
            Work.push_back(To);
          }
        }
      }

      // --- V_I(n) --------------------------------------------------------
      for (size_t I = 0; I != N; ++I) {
        PT.VI[I].clear();
        if (!PT.InNI[I])
          continue;
        for (const std::string &V : DF.uses(I)) {
          bool Tainted = false;
          if (Mod.findGlobal(V)) {
            Tainted = Result.TaintedGlobals.count(V) != 0;
          } else {
            std::string Qual = Proc.Name + "::" + V;
            int ParamIdx = Proc.paramIndex(V);
            Tainted =
                Result.CrossWritten.count(Qual) ||
                (ParamIdx >= 0 && PT.TaintedParams[ParamIdx] &&
                 DF.paramEntryReaches(static_cast<NodeId>(I), V)) ||
                (Options.CoarseMode && Result.EverTainted.count(Qual));
          }
          if (!Tainted) {
            for (const auto &[From, Var] :
                 DF.duPredecessors(static_cast<NodeId>(I))) {
              if (Var == V && (PT.InNI[From] || PT.EnvSource[From])) {
                Tainted = true;
                break;
              }
            }
          }
          if (Tainted)
            PT.VI[I].insert(V);
        }
      }

      // --- Export summaries ----------------------------------------------
      for (size_t I = 0; I != N; ++I) {
        const CfgNode &Node = Proc.Nodes[I];
        bool NodeTainted = PT.InNI[I] || PT.EnvSource[I];

        // Tainted definitions flow into the cross-procedure sets.
        if (NodeTainted || (Options.CoarseMode && PT.InNI[I])) {
          for (const VarDef &D : DF.defs(static_cast<NodeId>(I))) {
            if (Mod.findGlobal(D.Name))
              Result.TaintedGlobals.insert(D.Name);
            else
              Result.EverTainted.insert(Proc.Name + "::" + D.Name);
            if (D.Name == retValName())
              PT.TaintedReturn = true;
          }
        }
        if (NodeTainted) {
          for (const std::string &Q : DF.crossDefs(static_cast<NodeId>(I))) {
            Result.CrossWritten.insert(Q);
            Result.EverTainted.insert(Q);
          }
        }

        if (Node.Kind != CfgNodeKind::Call)
          continue;
        switch (Node.Builtin) {
        case BuiltinKind::None: {
          int CalleeIdx = Mod.procIndex(Node.Callee);
          if (CalleeIdx < 0)
            break;
          ProcTaint &Callee = Result.Procs[CalleeIdx];
          for (size_t A = 0,
                      AE = std::min(Node.Args.size(),
                                    Callee.TaintedParams.size());
               A != AE; ++A) {
            if (Result.exprTainted(Mod, *AliasPtr, P, static_cast<NodeId>(I),
                                   Node.Args[A].get()))
              Callee.TaintedParams[A] = true;
          }
          break;
        }
        case BuiltinKind::Send:
          if (Node.Args.size() == 2 &&
              Result.exprTainted(Mod, *AliasPtr, P, static_cast<NodeId>(I),
                                 Node.Args[1].get()))
            Result.TaintedChannels.insert(Node.Args[0]->Name);
          break;
        case BuiltinKind::SharedWrite:
          if (Node.Args.size() == 2 &&
              Result.exprTainted(Mod, *AliasPtr, P, static_cast<NodeId>(I),
                                 Node.Args[1].get()))
            Result.TaintedShared.insert(Node.Args[0]->Name);
          break;
        default:
          break;
        }
      }

      // Exported parameter taint also marks values as ever-tainted for
      // cross-procedure pointer reads.
      for (size_t A = 0, AE = Proc.Params.size(); A != AE; ++A)
        if (PT.TaintedParams[A])
          Result.EverTainted.insert(Proc.Name + "::" + Proc.Params[A]);
    }

    Footprint Now = footprint(Result);
    if (Now == Prev)
      break;
    Prev = Now;
  }
}

bool EnvAnalysis::moduleIsClosed() const {
  for (const ProcessDecl &Inst : Mod.Processes)
    for (const ProcessArg &Arg : Inst.Args)
      if (Arg.IsEnv)
        return false;
  for (size_t P = 0, E = Mod.Procs.size(); P != E; ++P) {
    const ProcCfg &Proc = Mod.Procs[P];
    for (size_t I = 0, N = Proc.Nodes.size(); I != N; ++I) {
      const CfgNode &Node = Proc.Nodes[I];
      if (Node.Kind == CfgNodeKind::Call &&
          (Node.Builtin == BuiltinKind::EnvInput ||
           Node.Builtin == BuiltinKind::EnvOutput))
        return false;
      if (!Result.Procs[P].InNI[I])
        continue;
      // A visible-operation builtin may legitimately carry the residual
      // `unknown` placeholder in a closed program (the payload was
      // eliminated but the operation is preserved); anything else in N_I
      // means environment data still influences the program.
      bool ResidualOk = Node.Kind == CfgNodeKind::Call &&
                        Node.Builtin != BuiltinKind::None &&
                        Node.Builtin != BuiltinKind::VsToss &&
                        builtinInfo(Node.Builtin).IsVisible;
      if (!ResidualOk)
        return false;
    }
  }
  return true;
}
