//===- EnvTaint.cpp - Environment-input (taint) analysis -------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "dataflow/EnvTaint.h"

#include <cassert>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace closer;

//===----------------------------------------------------------------------===//
// TaintResult helpers
//===----------------------------------------------------------------------===//

bool TaintResult::exprTainted(const Module &Mod, const AliasAnalysis &Alias,
                              size_t ProcIdx, NodeId N, const Expr *E,
                              ExprUsesCache *Cache) const {
  if (!E)
    return false;
  // Fast paths for the trivial shapes (exactly the leaf cases of the
  // expression-uses collector): almost every argument in real programs is
  // a literal or a plain variable, and skipping the set materialization
  // for them is what keeps the export loop allocation-free at scale.
  switch (E->Kind) {
  case ExprKind::IntLit:
    return false;
  case ExprKind::Unknown:
    return true;
  case ExprKind::VarRef:
    return Procs[ProcIdx].VI[N].count(E->Name) != 0;
  default:
    break;
  }
  const ExprUses *U;
  ExprUses Scratch;
  if (Cache) {
    auto [It, Fresh] = Cache->try_emplace(E);
    if (Fresh)
      It->second = collectExprUses(Mod, Mod.Procs[ProcIdx], Alias, E);
    U = &It->second;
  } else {
    Scratch = collectExprUses(Mod, Mod.Procs[ProcIdx], Alias, E);
    U = &Scratch;
  }
  if (U->UsesUnknown)
    return true;
  const std::set<std::string> &Vi = Procs[ProcIdx].VI[N];
  for (const std::string &V : U->Plain)
    if (Vi.count(V))
      return true;
  for (const std::string &Q : U->Cross)
    if (EverTainted.count(Q))
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// EnvAnalysis
//===----------------------------------------------------------------------===//

EnvAnalysis::EnvAnalysis(const Module &Mod, TaintOptions Options) : Mod(Mod) {
  OwnedAlias = std::make_unique<AliasAnalysis>(Mod);
  AliasPtr = OwnedAlias.get();
  OwnedDataflows.reserve(Mod.Procs.size());
  DataflowPtrs.reserve(Mod.Procs.size());
  for (const ProcCfg &Proc : Mod.Procs) {
    OwnedDataflows.push_back(
        std::make_unique<ProcDataflow>(Mod, Proc, *AliasPtr));
    DataflowPtrs.push_back(OwnedDataflows.back().get());
  }
  runFixpoint(Options);
}

EnvAnalysis::EnvAnalysis(const Module &Mod, const AliasAnalysis &Alias,
                         std::vector<const ProcDataflow *> Dataflows,
                         TaintOptions Options)
    : Mod(Mod), AliasPtr(&Alias), DataflowPtrs(std::move(Dataflows)) {
  assert(DataflowPtrs.size() == Mod.Procs.size() &&
         "one dataflow per procedure");
  runFixpoint(Options);
}

EnvAnalysis::EnvAnalysis(const Module &Mod, const AliasAnalysis &Alias,
                         std::vector<const ProcDataflow *> Dataflows,
                         TaintResult Restored)
    : Mod(Mod), AliasPtr(&Alias), DataflowPtrs(std::move(Dataflows)),
      Result(std::move(Restored)) {
  assert(DataflowPtrs.size() == Mod.Procs.size() &&
         "one dataflow per procedure");
  assert(Result.Procs.size() == Mod.Procs.size() &&
         "restored result must cover every procedure");
}

namespace {

/// Size snapshot of all monotone sets, for fixpoint detection.
struct Footprint {
  size_t Globals, Channels, Shared, CrossWritten, EverTainted, Params;
  unsigned Returns;

  bool operator==(const Footprint &O) const = default;
};

Footprint footprint(const TaintResult &R) {
  size_t Params = 0;
  unsigned Returns = 0;
  for (const ProcTaint &P : R.Procs) {
    for (bool B : P.TaintedParams)
      Params += B;
    Returns += P.TaintedReturn;
  }
  return {R.TaintedGlobals.size(), R.TaintedChannels.size(),
          R.TaintedShared.size(), R.CrossWritten.size(),
          R.EverTainted.size(),   Params,
          Returns};
}

} // namespace

void EnvAnalysis::runFixpoint(TaintOptions Options) {
  size_t NumProcs = Mod.Procs.size();

  // Name lookups run once per node per fixpoint round; the Module's own
  // findGlobal/procIndex are linear scans, which turns the fixpoint
  // quadratic on many-procedure corpora. Build hash indices once — the
  // module is not mutated while the analysis runs.
  std::unordered_map<std::string, int> ProcIdxByName;
  for (size_t P = 0; P != NumProcs; ++P)
    ProcIdxByName.emplace(Mod.Procs[P].Name, static_cast<int>(P));
  auto procIndex = [&](const std::string &Name) {
    auto It = ProcIdxByName.find(Name);
    return It == ProcIdxByName.end() ? -1 : It->second;
  };
  std::unordered_set<std::string> GlobalNames;
  for (const GlobalDecl &G : Mod.Globals)
    GlobalNames.insert(G.Name);
  auto isGlobal = [&](const std::string &Name) {
    return GlobalNames.count(Name) != 0;
  };
  Result.Procs.resize(NumProcs);
  for (size_t P = 0; P != NumProcs; ++P) {
    const ProcCfg &Proc = Mod.Procs[P];
    Result.Procs[P].TaintedParams.assign(Proc.Params.size(), false);
    Result.Procs[P].InNI.assign(Proc.Nodes.size(), false);
    Result.Procs[P].EnvSource.assign(Proc.Nodes.size(), false);
    Result.Procs[P].VI.assign(Proc.Nodes.size(), {});
  }

  // Seed: `env` process arguments bind environment values to top-level
  // parameters.
  for (const ProcessDecl &Inst : Mod.Processes) {
    int ProcIdx = procIndex(Inst.ProcName);
    if (ProcIdx < 0)
      continue;
    for (size_t I = 0,
                E = std::min(Inst.Args.size(),
                             Result.Procs[ProcIdx].TaintedParams.size());
         I != E; ++I)
      if (Inst.Args[I].IsEnv)
        Result.Procs[ProcIdx].TaintedParams[I] = true;
  }

  // The member expression-uses memo: rounds after the first (and the
  // closing transform afterwards) hit the cache instead of re-walking
  // every argument expression.
  ExprCache.clear();

  Footprint Prev = footprint(Result);
  for (;;) {
    for (size_t P = 0; P != NumProcs; ++P) {
      const ProcCfg &Proc = Mod.Procs[P];
      const ProcDataflow &DF = *DataflowPtrs[P];
      ProcTaint &PT = Result.Procs[P];
      size_t N = Proc.Nodes.size();
      // Reused qualified-name buffer: the seed and V_I loops look up
      // "proc::var" for every use of every node on every fixpoint round,
      // and building that string fresh each time allocates millions of
      // temporaries on large modules.
      std::string Qual = Proc.Name + "::";
      const size_t QualPrefix = Qual.size();
      auto qualify = [&](const std::string &V) -> const std::string & {
        Qual.resize(QualPrefix);
        Qual += V;
        return Qual;
      };

      // --- Identify env-definition sources and seed uses -----------------
      std::fill(PT.EnvSource.begin(), PT.EnvSource.end(), false);
      std::vector<bool> Seed(N, false);
      for (size_t I = 0; I != N; ++I) {
        const CfgNode &Node = Proc.Nodes[I];
        if (Node.Kind == CfgNodeKind::Call) {
          switch (Node.Builtin) {
          case BuiltinKind::EnvInput:
            PT.EnvSource[I] = true;
            break;
          case BuiltinKind::Recv:
            if (!Node.Args.empty() &&
                Result.TaintedChannels.count(Node.Args[0]->Name))
              PT.EnvSource[I] = true;
            break;
          case BuiltinKind::SharedRead:
            if (!Node.Args.empty() &&
                Result.TaintedShared.count(Node.Args[0]->Name))
              PT.EnvSource[I] = true;
            break;
          case BuiltinKind::None: {
            int CalleeIdx = procIndex(Node.Callee);
            if (Node.Target && CalleeIdx >= 0 &&
                Result.Procs[CalleeIdx].TaintedReturn)
              PT.EnvSource[I] = true;
            break;
          }
          default:
            break;
          }
        }

        // Does this node read an environment-defined value?
        if (DF.usesUnknown(I)) {
          Seed[I] = true;
          continue;
        }
        for (const std::string &V : DF.uses(I)) {
          if (isGlobal(V)) {
            if (Result.TaintedGlobals.count(V)) {
              Seed[I] = true;
              break;
            }
            continue;
          }
          qualify(V);
          if (Result.CrossWritten.count(Qual)) {
            Seed[I] = true;
            break;
          }
          int ParamIdx = Proc.paramIndex(V);
          if (ParamIdx >= 0 && PT.TaintedParams[ParamIdx] &&
              DF.paramEntryReaches(static_cast<NodeId>(I), V)) {
            Seed[I] = true;
            break;
          }
          if (Options.CoarseMode && Result.EverTainted.count(Qual)) {
            Seed[I] = true;
            break;
          }
        }
        if (!Seed[I]) {
          for (const std::string &Q : DF.crossUses(I))
            if (Result.EverTainted.count(Q)) {
              Seed[I] = true;
              break;
            }
        }
      }

      // --- Propagate over define-use arcs: N_I --------------------------
      std::fill(PT.InNI.begin(), PT.InNI.end(), false);
      std::deque<NodeId> Work;
      for (size_t I = 0; I != N; ++I) {
        if (Seed[I]) {
          PT.InNI[I] = true;
          Work.push_back(static_cast<NodeId>(I));
        }
      }
      // Definitions performed by env sources taint their users.
      for (size_t I = 0; I != N; ++I) {
        if (!PT.EnvSource[I])
          continue;
        for (const auto &[To, Var] : DF.duSuccessors(static_cast<NodeId>(I)))
          if (!PT.InNI[To]) {
            PT.InNI[To] = true;
            Work.push_back(To);
          }
      }
      while (!Work.empty()) {
        NodeId Id = Work.front();
        Work.pop_front();
        for (const auto &[To, Var] : DF.duSuccessors(Id)) {
          if (!PT.InNI[To]) {
            PT.InNI[To] = true;
            Work.push_back(To);
          }
        }
      }

      // --- V_I(n) --------------------------------------------------------
      for (size_t I = 0; I != N; ++I) {
        PT.VI[I].clear();
        if (!PT.InNI[I])
          continue;
        for (const std::string &V : DF.uses(I)) {
          bool Tainted = false;
          if (isGlobal(V)) {
            Tainted = Result.TaintedGlobals.count(V) != 0;
          } else {
            qualify(V);
            int ParamIdx = Proc.paramIndex(V);
            Tainted =
                Result.CrossWritten.count(Qual) ||
                (ParamIdx >= 0 && PT.TaintedParams[ParamIdx] &&
                 DF.paramEntryReaches(static_cast<NodeId>(I), V)) ||
                (Options.CoarseMode && Result.EverTainted.count(Qual));
          }
          if (!Tainted) {
            for (const auto &[From, Var] :
                 DF.duPredecessors(static_cast<NodeId>(I))) {
              if (*Var == V && (PT.InNI[From] || PT.EnvSource[From])) {
                Tainted = true;
                break;
              }
            }
          }
          if (Tainted)
            PT.VI[I].insert(V);
        }
      }

      // --- Export summaries ----------------------------------------------
      for (size_t I = 0; I != N; ++I) {
        const CfgNode &Node = Proc.Nodes[I];
        bool NodeTainted = PT.InNI[I] || PT.EnvSource[I];

        // Tainted definitions flow into the cross-procedure sets.
        if (NodeTainted || (Options.CoarseMode && PT.InNI[I])) {
          for (const VarDef &D : DF.defs(static_cast<NodeId>(I))) {
            if (isGlobal(D.Name))
              Result.TaintedGlobals.insert(D.Name);
            else
              Result.EverTainted.insert(qualify(D.Name));
            if (D.Name == retValName())
              PT.TaintedReturn = true;
          }
        }
        if (NodeTainted) {
          for (const std::string &Q : DF.crossDefs(static_cast<NodeId>(I))) {
            Result.CrossWritten.insert(Q);
            Result.EverTainted.insert(Q);
          }
        }

        if (Node.Kind != CfgNodeKind::Call)
          continue;
        switch (Node.Builtin) {
        case BuiltinKind::None: {
          int CalleeIdx = procIndex(Node.Callee);
          if (CalleeIdx < 0)
            break;
          ProcTaint &Callee = Result.Procs[CalleeIdx];
          for (size_t A = 0,
                      AE = std::min(Node.Args.size(),
                                    Callee.TaintedParams.size());
               A != AE; ++A) {
            if (Result.exprTainted(Mod, *AliasPtr, P, static_cast<NodeId>(I),
                                   Node.Args[A].get(), &ExprCache))
              Callee.TaintedParams[A] = true;
          }
          break;
        }
        case BuiltinKind::Send:
          if (Node.Args.size() == 2 &&
              Result.exprTainted(Mod, *AliasPtr, P, static_cast<NodeId>(I),
                                 Node.Args[1].get(), &ExprCache))
            Result.TaintedChannels.insert(Node.Args[0]->Name);
          break;
        case BuiltinKind::SharedWrite:
          if (Node.Args.size() == 2 &&
              Result.exprTainted(Mod, *AliasPtr, P, static_cast<NodeId>(I),
                                 Node.Args[1].get(), &ExprCache))
            Result.TaintedShared.insert(Node.Args[0]->Name);
          break;
        default:
          break;
        }
      }

      // Exported parameter taint also marks values as ever-tainted for
      // cross-procedure pointer reads.
      for (size_t A = 0, AE = Proc.Params.size(); A != AE; ++A)
        if (PT.TaintedParams[A])
          Result.EverTainted.insert(Proc.Name + "::" + Proc.Params[A]);
    }

    Footprint Now = footprint(Result);
    if (Now == Prev)
      break;
    Prev = Now;
  }
}

bool EnvAnalysis::moduleIsClosed() const {
  for (const ProcessDecl &Inst : Mod.Processes)
    for (const ProcessArg &Arg : Inst.Args)
      if (Arg.IsEnv)
        return false;
  for (size_t P = 0, E = Mod.Procs.size(); P != E; ++P) {
    const ProcCfg &Proc = Mod.Procs[P];
    for (size_t I = 0, N = Proc.Nodes.size(); I != N; ++I) {
      const CfgNode &Node = Proc.Nodes[I];
      if (Node.Kind == CfgNodeKind::Call &&
          (Node.Builtin == BuiltinKind::EnvInput ||
           Node.Builtin == BuiltinKind::EnvOutput))
        return false;
      if (!Result.Procs[P].InNI[I])
        continue;
      // A visible-operation builtin may legitimately carry the residual
      // `unknown` placeholder in a closed program (the payload was
      // eliminated but the operation is preserved); anything else in N_I
      // means environment data still influences the program.
      bool ResidualOk = Node.Kind == CfgNodeKind::Call &&
                        Node.Builtin != BuiltinKind::None &&
                        Node.Builtin != BuiltinKind::VsToss &&
                        builtinInfo(Node.Builtin).IsVisible;
      if (!ResidualOk)
        return false;
    }
  }
  return true;
}
