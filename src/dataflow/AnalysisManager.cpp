//===- AnalysisManager.cpp - Cached dataflow analyses -----------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "dataflow/AnalysisManager.h"

#include <cassert>

using namespace closer;

AnalysisManager::AnalysisManager(const Module &Mod) : M(&Mod) {
  DefUse.resize(Mod.Procs.size());
}

const AliasAnalysis &AnalysisManager::ensureAlias() {
  if (!Alias) {
    Alias = std::make_unique<AliasAnalysis>(*M);
    ++Stats.Alias.Computed;
  }
  return *Alias;
}

const AliasAnalysis &AnalysisManager::getAlias() {
  if (Alias)
    ++Stats.Alias.Reused;
  return ensureAlias();
}

const ProcDataflow &AnalysisManager::getDefUse(size_t ProcIdx) {
  assert(ProcIdx < DefUse.size() && "procedure index out of range");
  if (DefUse[ProcIdx]) {
    ++Stats.DefUse.Reused;
  } else {
    const AliasAnalysis &A = ensureAlias();
    DefUse[ProcIdx] =
        std::make_unique<ProcDataflow>(*M, M->Procs[ProcIdx], A);
    ++Stats.DefUse.Computed;
  }
  return *DefUse[ProcIdx];
}

const EnvAnalysis &AnalysisManager::getEnvTaint(const TaintOptions &Options) {
  if (Taint && TaintOpts.CoarseMode == Options.CoarseMode) {
    ++Stats.EnvTaint.Reused;
    return *Taint;
  }
  std::vector<const ProcDataflow *> Dataflows;
  Dataflows.reserve(M->Procs.size());
  for (size_t I = 0, E = M->Procs.size(); I != E; ++I)
    Dataflows.push_back(&getDefUse(I));
  Taint = std::make_unique<EnvAnalysis>(*M, getAlias(), std::move(Dataflows),
                                        Options);
  TaintOpts = Options;
  ++Stats.EnvTaint.Computed;
  return *Taint;
}

void AnalysisManager::preloadAlias(std::unique_ptr<AliasAnalysis> A) {
  Alias = std::move(A);
}

void AnalysisManager::preloadDefUse(size_t ProcIdx,
                                    std::unique_ptr<ProcDataflow> DF) {
  assert(ProcIdx < DefUse.size() && "procedure index out of range");
  DefUse[ProcIdx] = std::move(DF);
}

bool AnalysisManager::preloadEnvTaint(TaintResult Restored,
                                      const TaintOptions &Options) {
  if (!Alias)
    return false;
  std::vector<const ProcDataflow *> Dataflows;
  Dataflows.reserve(DefUse.size());
  for (const std::unique_ptr<ProcDataflow> &DF : DefUse) {
    if (!DF)
      return false;
    Dataflows.push_back(DF.get());
  }
  Taint = std::make_unique<EnvAnalysis>(*M, *Alias, std::move(Dataflows),
                                        std::move(Restored));
  TaintOpts = Options;
  return true;
}

void AnalysisManager::invalidateProc(size_t ProcIdx, bool AliasPreserved) {
  // The taint fixpoint spans the whole module and borrows the dropped
  // define-use graph; it never survives a CFG mutation.
  Taint.reset();
  if (ProcIdx < DefUse.size())
    DefUse[ProcIdx].reset();
  if (!AliasPreserved) {
    // Every define-use graph was computed against the now-stale points-to
    // facts.
    Alias.reset();
    for (auto &DF : DefUse)
      DF.reset();
  }
}

void AnalysisManager::invalidateAll() {
  Taint.reset();
  Alias.reset();
  for (auto &DF : DefUse)
    DF.reset();
}

void AnalysisManager::rebind(const Module &NewMod) {
  invalidateAll();
  M = &NewMod;
  DefUse.clear();
  DefUse.resize(NewMod.Procs.size());
}
