//===- AliasAnalysis.h - Steensgaard-style may-alias analysis --*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flow- and context-insensitive unification-based (Steensgaard) may-alias
/// analysis over a whole cfg::Module. The paper's define-use computation
/// "requires a may-alias analysis" (§4, citing [CWZ90, Lan91, Deu94,
/// Ruf95]); this is the conservative solution it plugs in.
///
/// Abstract locations are named variables; arrays are collapsed to a single
/// location. Procedure calls unify parameter and argument cells
/// (context-insensitively), so pointers passed down the call chain resolve
/// to the caller variables they may reference.
///
/// Variables are identified by qualified name: "::g" for a global g and
/// "f::x" for variable x of procedure f.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_DATAFLOW_ALIASANALYSIS_H
#define CLOSER_DATAFLOW_ALIASANALYSIS_H

#include "cfg/Cfg.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace closer {

/// Builds the qualified name of a variable relative to \p Proc: globals get
/// "::name", procedure-scoped variables "proc::name".
std::string qualifyVar(const Module &Mod, const ProcCfg &Proc,
                       const std::string &Name);

/// True if \p Qual names a global ("::g").
inline bool isGlobalQual(const std::string &Qual) {
  return Qual.size() >= 2 && Qual[0] == ':' && Qual[1] == ':';
}

/// Strips the qualifier, returning the plain variable name.
std::string plainName(const std::string &Qual);

/// Returns the owning procedure name of \p Qual, or "" for globals.
std::string ownerProc(const std::string &Qual);

class AliasAnalysis {
public:
  /// Runs the analysis over \p Mod.
  explicit AliasAnalysis(const Module &Mod);

  /// Serializes the solved analysis (union-find cells, pointee edges,
  /// per-procedure pointer flags) as a self-describing text blob for the
  /// on-disk analysis cache.
  std::string serialize() const;

  /// Rebuilds an analysis from a serialize() blob. Returns null on any
  /// structural mismatch; the caller guarantees (by fingerprint keying)
  /// that \p Mod is the module the blob was computed on.
  static std::unique_ptr<AliasAnalysis> deserialize(const Module &Mod,
                                                    const std::string &Blob);

  /// A fingerprint of the *solved facts* — alias classes canonicalized by
  /// their lexicographically smallest member and pointee edges between the
  /// canonical class names — independent of union order, path compression
  /// and cell numbering. Two modules with equal result fingerprints have
  /// byte-identical pointsTo()/derefTargets() answers for shared variable
  /// names, which is what keys the define-use entries of the analysis
  /// cache.
  uint64_t resultFingerprint() const;

  /// Qualified names of the variables `*p` may reference when \p PtrVar is
  /// evaluated inside \p Proc. Empty when \p PtrVar provably never holds an
  /// address.
  std::vector<std::string> pointsTo(const ProcCfg &Proc,
                                    const std::string &PtrVar) const;

  /// Union of pointsTo over every variable referenced by \p E (conservative
  /// dereference targets of an arbitrary pointer expression in \p Proc).
  std::vector<std::string> derefTargets(const ProcCfg &Proc,
                                        const Expr *E) const;

  /// True when \p Proc contains no pointer operations at all — lets clients
  /// skip alias queries entirely on pointer-free code.
  bool procUsesPointers(const ProcCfg &Proc) const;

private:
  using Cell = int;

  /// Deserialization shell: binds the module, leaves the state empty for
  /// deserialize() to fill in.
  struct RestoreTag {};
  AliasAnalysis(const Module &Mod, RestoreTag) : Mod(Mod) {}

  Cell cellOf(const std::string &Qual);
  Cell find(Cell C) const;
  Cell unite(Cell A, Cell B);
  Cell getPointee(Cell C);
  void joinAsValue(Cell Target, Cell Source);
  void flowExprInto(const ProcCfg &Proc, Cell Target, const Expr *E);
  Cell lvalueCell(const ProcCfg &Proc, const Expr *Lvalue);
  void processProc(const Module &Mod, const ProcCfg &Proc);

  const Module &Mod;
  std::unordered_map<std::string, Cell> VarCells;
  std::vector<std::string> CellNames; ///< "" for anonymous cells.
  mutable std::vector<Cell> Parent;
  std::vector<Cell> Pointee; ///< Per representative; -1 when absent.
  std::unordered_map<std::string, bool> ProcHasPointers;
  /// Representative -> member variable names (built after solving).
  std::unordered_map<Cell, std::vector<std::string>> Members;
};

} // namespace closer

#endif // CLOSER_DATAFLOW_ALIASANALYSIS_H
