//===- AnalysisManager.h - Cached dataflow analyses ------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lazily computed, explicitly invalidated caches for the three analyses the
/// closing side runs — may-alias (module-wide), define-use (per procedure)
/// and the environment-taint fixpoint (module-wide) — so a pipeline such as
/// `partition → close` computes each analysis once and the later passes
/// reuse the cached results instead of recomputing them from scratch.
///
/// Invalidation is the transform pass's responsibility and is deliberately
/// coarse but per-procedure where it can be:
///
///  * invalidateProc(I, AliasPreserved=true) — pass rewrote procedure I
///    without changing any points-to fact (e.g. input-domain partitioning,
///    whose eligibility rules exclude address-taken variables). Drops the
///    procedure's define-use graph and the module-wide taint; the alias
///    analysis and every other procedure's define-use survive.
///  * invalidateProc(I, AliasPreserved=false) — conservative variant: also
///    drops the alias analysis and with it every define-use graph (they
///    were computed against the dropped alias facts).
///  * rebind(NewModule) — the pass replaced the module wholesale (the
///    closing transformation rebuilds every procedure); everything is
///    dropped and the manager re-targets the new module.
///
/// Every get*() call bumps a per-analysis Computed or Reused counter; the
/// pass pipeline surfaces them in its stats artifact, which is how the
/// cache's payoff is asserted in tests and scripts/check.sh.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_DATAFLOW_ANALYSISMANAGER_H
#define CLOSER_DATAFLOW_ANALYSISMANAGER_H

#include "dataflow/EnvTaint.h"

#include <memory>
#include <vector>

namespace closer {

/// How often one analysis was computed from scratch vs served from cache.
struct AnalysisCounter {
  uint64_t Computed = 0;
  uint64_t Reused = 0;
};

/// Counters for all cached analyses. DefUse counts once per procedure; the
/// module-wide analyses count once per module-level (re)computation.
struct AnalysisStats {
  AnalysisCounter Alias;
  AnalysisCounter DefUse;
  AnalysisCounter EnvTaint;
};

class AnalysisManager {
public:
  explicit AnalysisManager(const Module &Mod);

  const Module &module() const { return *M; }

  /// The module-wide Steensgaard may-alias analysis.
  const AliasAnalysis &getAlias();

  /// The define-use graph of procedure \p ProcIdx (computes the alias
  /// analysis first if needed).
  const ProcDataflow &getDefUse(size_t ProcIdx);

  /// The whole-module environment-taint fixpoint, built on top of the
  /// cached alias and define-use results. A cached result is reused only
  /// when \p Options match the ones it was computed with.
  const EnvAnalysis &getEnvTaint(const TaintOptions &Options = {});

  /// Cache-restore hooks (dataflow/AnalysisCache.h): install results that
  /// an earlier process computed on an identical module, without touching
  /// the Computed/Reused counters — a later get*() then counts as a reuse,
  /// which is exactly the payoff the cache claims. The caller certifies
  /// validity by fingerprint keying.
  void preloadAlias(std::unique_ptr<AliasAnalysis> A);
  void preloadDefUse(size_t ProcIdx, std::unique_ptr<ProcDataflow> DF);

  /// Installs a restored taint fixpoint over the already-materialized
  /// alias and define-use results; returns false (and installs nothing)
  /// when any of those are missing.
  bool preloadEnvTaint(TaintResult Restored, const TaintOptions &Options);

  /// Cache-save accessors: the currently materialized results, if any,
  /// without computing or counting anything.
  const AliasAnalysis *cachedAlias() const { return Alias.get(); }
  const ProcDataflow *cachedDefUse(size_t ProcIdx) const {
    return ProcIdx < DefUse.size() ? DefUse[ProcIdx].get() : nullptr;
  }
  const EnvAnalysis *cachedEnvTaint(const TaintOptions &Options) const {
    return Taint && TaintOpts.CoarseMode == Options.CoarseMode ? Taint.get()
                                                               : nullptr;
  }

  /// A transform pass rewrote procedure \p ProcIdx in place (the ProcCfg
  /// object was assigned to; no other procedure moved). \p AliasPreserved
  /// asserts that no points-to fact changed.
  void invalidateProc(size_t ProcIdx, bool AliasPreserved);

  /// Drops every cached analysis.
  void invalidateAll();

  /// The module was replaced wholesale (all cached analyses reference the
  /// old object); drop everything and re-target \p NewMod. Call this
  /// *before* destroying the old module.
  void rebind(const Module &NewMod);

  const AnalysisStats &stats() const { return Stats; }

private:
  /// Materializes the alias analysis without touching the Reused counter;
  /// used for internal dependencies (getDefUse) so a cold per-procedure
  /// request does not inflate the alias reuse count N-1 times per module.
  const AliasAnalysis &ensureAlias();

  const Module *M;
  std::unique_ptr<AliasAnalysis> Alias;
  std::vector<std::unique_ptr<ProcDataflow>> DefUse; ///< Null = not cached.
  std::unique_ptr<EnvAnalysis> Taint;
  TaintOptions TaintOpts; ///< Options Taint was computed with.
  AnalysisStats Stats;
};

} // namespace closer

#endif // CLOSER_DATAFLOW_ANALYSISMANAGER_H
