//===- DefUse.h - Reaching definitions and define-use graphs ---*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-procedure define-use graphs exactly as the paper defines them (§4):
/// the define-use graph G~_j = (N_j, A~_j) has an arc (n, n') labeled v when
/// n defines variable v, n' uses v, and some control-flow path from n to n'
/// does not redefine v. Built from classic reaching definitions over the
/// CFG, with may-definitions (array elements, pointer dereferences via the
/// may-alias analysis) as weak (non-killing) definitions.
///
/// Each node also exposes:
///  * uses(n)      — plain names of same-procedure/global variables read;
///  * crossUses(n) — qualified names of other procedures' variables read
///                   through pointers;
///  * defs(n)      — written variables with strong/weak classification;
///  * crossDefs(n) — qualified names written in other procedures' frames;
///  * usesUnknown(n) — the node reads the distinguished `unknown` literal;
///  * paramEntryReaches(n, v) — the incoming (environment-bindable) value
///                   of parameter v may still be live at n.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_DATAFLOW_DEFUSE_H
#define CLOSER_DATAFLOW_DEFUSE_H

#include "cfg/Cfg.h"
#include "dataflow/AliasAnalysis.h"

#include <set>
#include <string>
#include <vector>

namespace closer {

/// Collects the variables an expression reads, expanding dereferences via
/// the alias analysis. Used both for building define-use graphs and for
/// deciding argument taint during the closing transformation.
struct ExprUses {
  std::set<std::string> Plain; ///< Same-procedure locals/params + globals.
  std::set<std::string> Cross; ///< Qualified names from other procedures.
  bool UsesUnknown = false;

  void merge(const ExprUses &Other);
};

/// Variables read by \p E evaluated inside \p Proc.
ExprUses collectExprUses(const Module &Mod, const ProcCfg &Proc,
                         const AliasAnalysis &Alias, const Expr *E);

/// One definition performed by a node.
struct VarDef {
  std::string Name;  ///< Plain name (same-proc or global).
  bool Strong = false; ///< Kills previous definitions of Name.
};

/// The define-use graph of one procedure.
class ProcDataflow {
public:
  ProcDataflow(const Module &Mod, const ProcCfg &Proc,
               const AliasAnalysis &Alias);

  const ProcCfg &proc() const { return Proc; }

  const std::set<std::string> &uses(NodeId N) const { return Uses[N]; }
  const std::set<std::string> &crossUses(NodeId N) const {
    return CrossUses[N];
  }
  bool usesUnknown(NodeId N) const { return NodeUsesUnknown[N]; }
  const std::vector<VarDef> &defs(NodeId N) const { return Defs[N]; }
  const std::set<std::string> &crossDefs(NodeId N) const {
    return CrossDefs[N];
  }

  /// Define-use arcs out of \p N: (successor use node, variable).
  const std::vector<std::pair<NodeId, std::string>> &
  duSuccessors(NodeId N) const {
    return DuSucc[N];
  }

  /// Define-use arcs into \p N: (defining node, variable).
  const std::vector<std::pair<NodeId, std::string>> &
  duPredecessors(NodeId N) const {
    return DuPred[N];
  }

  /// True when the value parameter \p Var received at entry may reach the
  /// use at node \p N (no intervening strong definition on some path).
  bool paramEntryReaches(NodeId N, const std::string &Var) const;

  /// Total number of define-use arcs (size measure for the linearity
  /// experiment).
  size_t arcCount() const { return NumArcs; }

private:
  void computeUsesDefs(const Module &Mod, const AliasAnalysis &Alias);
  void computeReachingDefs();

  const ProcCfg &Proc;
  std::vector<std::set<std::string>> Uses;
  std::vector<std::set<std::string>> CrossUses;
  std::vector<bool> NodeUsesUnknown;
  std::vector<std::vector<VarDef>> Defs;
  std::vector<std::set<std::string>> CrossDefs;
  std::vector<std::vector<std::pair<NodeId, std::string>>> DuSucc;
  std::vector<std::vector<std::pair<NodeId, std::string>>> DuPred;
  std::vector<std::set<std::string>> EntryReaching; ///< Per node: params
                                                    ///< whose entry value
                                                    ///< reaches the node and
                                                    ///< is used there.
  size_t NumArcs = 0;
};

} // namespace closer

#endif // CLOSER_DATAFLOW_DEFUSE_H
