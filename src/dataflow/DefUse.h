//===- DefUse.h - Reaching definitions and define-use graphs ---*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-procedure define-use graphs exactly as the paper defines them (§4):
/// the define-use graph G~_j = (N_j, A~_j) has an arc (n, n') labeled v when
/// n defines variable v, n' uses v, and some control-flow path from n to n'
/// does not redefine v. Built from classic reaching definitions over the
/// CFG, with may-definitions (array elements, pointer dereferences via the
/// may-alias analysis) as weak (non-killing) definitions.
///
/// Each node also exposes:
///  * uses(n)      — plain names of same-procedure/global variables read;
///  * crossUses(n) — qualified names of other procedures' variables read
///                   through pointers;
///  * defs(n)      — written variables with strong/weak classification;
///  * crossDefs(n) — qualified names written in other procedures' frames;
///  * usesUnknown(n) — the node reads the distinguished `unknown` literal;
///  * paramEntryReaches(n, v) — the incoming (environment-bindable) value
///                   of parameter v may still be live at n.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_DATAFLOW_DEFUSE_H
#define CLOSER_DATAFLOW_DEFUSE_H

#include "cfg/Cfg.h"
#include "dataflow/AliasAnalysis.h"

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace closer {

/// Collects the variables an expression reads, expanding dereferences via
/// the alias analysis. Used both for building define-use graphs and for
/// deciding argument taint during the closing transformation.
struct ExprUses {
  std::set<std::string> Plain; ///< Same-procedure locals/params + globals.
  std::set<std::string> Cross; ///< Qualified names from other procedures.
  bool UsesUnknown = false;

  void merge(const ExprUses &Other);
};

/// Variables read by \p E evaluated inside \p Proc.
ExprUses collectExprUses(const Module &Mod, const ProcCfg &Proc,
                         const AliasAnalysis &Alias, const Expr *E);

/// One definition performed by a node.
struct VarDef {
  std::string Name;  ///< Plain name (same-proc or global).
  bool Strong = false; ///< Kills previous definitions of Name.
};

/// One endpoint of a define-use arc: the node on the far side and the arc's
/// variable label. \c Var points into the owning ProcDataflow's interned
/// def-site name table and stays valid for the analysis' lifetime.
struct DuArc {
  NodeId Node;
  const std::string *Var;
};

/// Contiguous, read-only view over one node's define-use arcs (a slice of
/// the analysis-owned CSR arc array).
class DuArcRange {
public:
  DuArcRange(const DuArc *B, const DuArc *E) : B(B), E(E) {}
  const DuArc *begin() const { return B; }
  const DuArc *end() const { return E; }
  size_t size() const { return static_cast<size_t>(E - B); }
  bool empty() const { return B == E; }
  const DuArc &operator[](size_t I) const { return B[I]; }

private:
  const DuArc *B;
  const DuArc *E;
};

/// The define-use graph of one procedure.
class ProcDataflow {
public:
  ProcDataflow(const Module &Mod, const ProcCfg &Proc,
               const AliasAnalysis &Alias);

  /// Serializes the computed graph (use/def sets, define-use arcs, entry
  /// reachability) as a text blob for the on-disk analysis cache.
  std::string serialize() const;

  /// Rebuilds a dataflow from a serialize() blob. Returns null on any
  /// structural mismatch (e.g. node count differs from \p Proc); the
  /// caller guarantees by fingerprint keying that \p Proc and the alias
  /// facts match the blob.
  static std::unique_ptr<ProcDataflow> deserialize(const ProcCfg &Proc,
                                                   const std::string &Blob);

  const ProcCfg &proc() const { return Proc; }

  const std::set<std::string> &uses(NodeId N) const { return Uses[N]; }
  const std::set<std::string> &crossUses(NodeId N) const {
    return CrossUses[N];
  }
  bool usesUnknown(NodeId N) const { return NodeUsesUnknown[N]; }
  const std::vector<VarDef> &defs(NodeId N) const { return Defs[N]; }
  const std::set<std::string> &crossDefs(NodeId N) const {
    return CrossDefs[N];
  }

  /// Define-use arcs out of \p N: (successor use node, variable).
  DuArcRange duSuccessors(NodeId N) const {
    return {DuSuccDat.data() + DuSuccOff[N], DuSuccDat.data() + DuSuccOff[N + 1]};
  }

  /// Define-use arcs into \p N: (defining node, variable).
  DuArcRange duPredecessors(NodeId N) const {
    return {DuPredDat.data() + DuPredOff[N], DuPredDat.data() + DuPredOff[N + 1]};
  }

  /// True when the value parameter \p Var received at entry may reach the
  /// use at node \p N (no intervening strong definition on some path).
  bool paramEntryReaches(NodeId N, const std::string &Var) const;

  /// Total number of define-use arcs (size measure for the linearity
  /// experiment).
  size_t arcCount() const { return NumArcs; }

private:
  /// Deserialization shell: binds the procedure, leaves the state empty
  /// for deserialize() to fill in.
  struct RestoreTag {};
  ProcDataflow(const ProcCfg &Proc, RestoreTag) : Proc(Proc) {}

  void computeUsesDefs(const Module &Mod, const AliasAnalysis &Alias);
  void computeReachingDefs();

  const ProcCfg &Proc;
  std::vector<std::set<std::string>> Uses;
  std::vector<std::set<std::string>> CrossUses;
  std::vector<bool> NodeUsesUnknown;
  std::vector<std::vector<VarDef>> Defs;
  std::vector<std::set<std::string>> CrossDefs;

  /// Define-use arcs in CSR form, both directions: node I's arcs live in
  /// Du*Dat[Du*Off[I] .. Du*Off[I+1]). Two flat arrays per direction keep
  /// arc iteration sequential instead of chasing 2N per-node vectors.
  std::vector<size_t> DuSuccOff, DuPredOff;
  std::vector<DuArc> DuSuccDat, DuPredDat;

  /// Def-site variables (parameters + anything some node defines) interned
  /// to dense ids so the reaching-definitions solver can run over packed
  /// integer sites instead of (NodeId, std::string) pairs. Key references
  /// stay stable under unordered_map growth, so id -> name lookups hold
  /// pointers into this map.
  std::unordered_map<std::string, uint32_t> DefVarId;
  std::vector<std::vector<uint32_t>> EntryReaching; ///< Per node, sorted:
                                                    ///< interned params whose
                                                    ///< entry value reaches
                                                    ///< the node and is used
                                                    ///< there.
  size_t NumArcs = 0;
};

} // namespace closer

#endif // CLOSER_DATAFLOW_DEFUSE_H
