//===- Scheduler.h - Work-stealing scheduler for subtree parcels -*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exploration scheduler: per-worker Chase–Lev deques plus a wait-node
/// parking lot. Replaces the single mutex-protected work queue with
/// condition-variable broadcasts that every worker used to funnel through.
///
///  * Each worker owns a lock-free deque (ChaseLev.h). It pushes donations
///    and pops its next parcel at the bottom without synchronization; idle
///    workers steal from other deques' tops with one CAS.
///  * An idle worker parks on its wait node (ParkingLot.h). A donor wakes
///    exactly one parked worker per donation — a targeted O(1) unpark, not
///    a broadcast.
///  * Donation throttling is demand-driven: wantDonation() is true only
///    while more workers are parked than unclaimed parcels are queued
///    (two relaxed loads). This replaces the old fixed DonateBackoff
///    counter: a donor sheds work exactly while somebody is starving and
///    stops the moment the queues cover the sleepers, with no tuning knob.
///  * Termination detection counts live parcels, not idle workers: Live is
///    incremented per seed/donation and decremented when a worker finishes
///    processing a parcel (not when it pops one — a parcel being processed
///    can still donate children). Live == 0 therefore means no parcel is
///    queued anywhere *and* none is being processed, which is exactly
///    "the tree is exhausted". The old all-workers-idle-on-empty-queue
///    rule needed the queue and the idle count under one lock to be sound;
///    the parcel count stays sound with no lock at all, and in particular
///    cannot mistake "worker still expanding (and about to donate)" for
///    quiescence.
///
/// Missed-wakeup freedom: a donor pushes its parcel *before* it calls
/// unparkOne, and a worker enqueues its wait node *before* it rechecks the
/// deques (next() below). Both the idle list and node membership are
/// guarded by the lot mutex, so for any donor/parker pair one of the two
/// critical sections comes first: either the donor's unpark sees the
/// parked node (targeted wakeup), or the parker's recheck happens after
/// the donor's push (mutex ordering makes the push visible) and cancels.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_SCHED_SCHEDULER_H
#define CLOSER_SCHED_SCHEDULER_H

#include "sched/ChaseLev.h"
#include "sched/ParkingLot.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace closer {
namespace sched {

/// Per-worker scheduler traffic, written only by the owning worker thread
/// and read after the workers have joined.
struct WorkerCounters {
  uint64_t Steals = 0;    ///< Parcels obtained from another worker's deque.
  uint64_t Wakeups = 0;   ///< Targeted wakeups received while parked.
  uint64_t Donations = 0; ///< Parcels this worker published.
  uint64_t Parks = 0;     ///< Times this worker went to sleep.
};

/// Work-stealing scheduler over value-type work items. One instance per
/// parallel run; worker threads are identified by their index [0, N).
/// Items are seeded single-threadedly before the workers start, then flow
/// only through donate()/next().
template <typename Item> class Scheduler {
public:
  explicit Scheduler(int NumWorkers)
      : Lot(NumWorkers), N(NumWorkers) {
    Workers.reserve(static_cast<size_t>(NumWorkers));
    for (int W = 0; W != NumWorkers; ++W)
      Workers.push_back(std::make_unique<PerWorker>());
  }

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  ~Scheduler() {
    for (std::unique_ptr<PerWorker> &Wk : Workers)
      while (Item *P = Wk->Deque.pop())
        delete P;
  }

  int numWorkers() const { return N; }

  /// Pre-run seeding (single-threaded, before any worker thread starts):
  /// place \p I on worker \p W's deque.
  void seed(int W, Item I) {
    Live.fetch_add(1, std::memory_order_seq_cst);
    Unclaimed.fetch_add(1, std::memory_order_relaxed);
    Workers[static_cast<size_t>(W)]->Deque.push(new Item(std::move(I)));
  }

  /// Busy worker \p W publishes a parcel and wakes exactly one sleeper.
  /// The push precedes the unpark — the ordering the missed-wakeup proof
  /// above depends on.
  void donate(int W, Item I) {
    PerWorker &Me = *Workers[static_cast<size_t>(W)];
    Live.fetch_add(1, std::memory_order_seq_cst);
    Unclaimed.fetch_add(1, std::memory_order_relaxed);
    Me.Deque.push(new Item(std::move(I)));
    ++Me.Ctr.Donations;
    Lot.unparkOne(TokenWork);
  }

  /// Cheap hint polled by busy workers every backtrack: donate only while
  /// more workers are parked than parcels are queued. Stale reads merely
  /// add or delay a donation; they never affect which states get explored.
  bool wantDonation() const {
    return Lot.idleHint() > Unclaimed.load(std::memory_order_relaxed);
  }

  /// Worker \p W's main claim loop: pops its own deque, then sweeps the
  /// other deques stealing, then parks. Returns false when the run is over
  /// (stop requested, or every parcel fully processed). Every true return
  /// must be matched by a finishItem() call after the parcel's subtree is
  /// exhausted (or abandoned on stop).
  bool next(int W, Item &Out) {
    PerWorker &Me = *Workers[static_cast<size_t>(W)];
    for (;;) {
      if (Stop.load(std::memory_order_seq_cst) ||
          Drained.load(std::memory_order_seq_cst))
        return false;
      if (Live.load(std::memory_order_seq_cst) == 0) {
        declareDrained();
        return false;
      }
      if (Item *P = Me.Deque.pop()) {
        claim(P, Out);
        return true;
      }
      if (trySteal(W, Out))
        return true;
      // Going idle: enqueue the wait node first, *then* recheck (see the
      // missed-wakeup note in the file comment).
      Lot.beginPark(W);
      if (Stop.load(std::memory_order_seq_cst) ||
          Drained.load(std::memory_order_seq_cst) ||
          Live.load(std::memory_order_seq_cst) == 0 || anyQueued()) {
        if (Lot.cancelPark(W))
          ++Me.Ctr.Wakeups; // Raced an unpark; its token is consumed here.
        continue;
      }
      ++Me.Ctr.Parks;
      (void)Lot.completePark(W);
      ++Me.Ctr.Wakeups;
    }
  }

  /// The parcel claimed by the last next() has been fully processed (its
  /// subtree exhausted, or abandoned under a stop). The worker that retires
  /// the last live parcel declares the run drained and wakes everyone.
  void finishItem() {
    if (Live.fetch_sub(1, std::memory_order_seq_cst) == 1)
      declareDrained();
  }

  /// Cooperative stop: wake every parked worker (targeted unparks; the
  /// workers observe Stop and exit). Idempotent.
  void requestStop() {
    Stop.store(true, std::memory_order_seq_cst);
    Lot.unparkAll(TokenStop);
  }

  bool stopRequested() const {
    return Stop.load(std::memory_order_acquire);
  }

  /// Racy queued-parcel count for the progress monitor.
  size_t queuedHint() const {
    int64_t U = Unclaimed.load(std::memory_order_relaxed);
    return U > 0 ? static_cast<size_t>(U) : 0;
  }

  /// After the worker threads have joined: the parcels nobody claimed —
  /// the unexplored subtrees an interrupted run leaves behind.
  std::vector<Item> drainRemaining() {
    std::vector<Item> Out;
    for (std::unique_ptr<PerWorker> &Wk : Workers)
      while (Item *P = Wk->Deque.pop()) {
        Out.push_back(std::move(*P));
        delete P;
      }
    return Out;
  }

  /// Post-join counter access.
  const WorkerCounters &counters(int W) const {
    return Workers[static_cast<size_t>(W)]->Ctr;
  }

private:
  enum Token { TokenWork = 0, TokenStop = 1, TokenDrained = 2 };

  struct alignas(64) PerWorker {
    ChaseLevDeque<Item> Deque;
    WorkerCounters Ctr;
  };

  void claim(Item *P, Item &Out) {
    Unclaimed.fetch_sub(1, std::memory_order_relaxed);
    Out = std::move(*P);
    delete P;
  }

  bool trySteal(int W, Item &Out) {
    for (int D = 1; D < N; ++D) {
      PerWorker &Victim = *Workers[static_cast<size_t>((W + D) % N)];
      for (;;) {
        Item *P = nullptr;
        typename ChaseLevDeque<Item>::Steal R = Victim.Deque.steal(P);
        if (R == ChaseLevDeque<Item>::Steal::Stolen) {
          ++Workers[static_cast<size_t>(W)]->Ctr.Steals;
          claim(P, Out);
          return true;
        }
        if (R == ChaseLevDeque<Item>::Steal::Empty)
          break;
        // Lost a race; the victim may still hold parcels — retry it.
      }
    }
    return false;
  }

  bool anyQueued() const {
    for (const std::unique_ptr<PerWorker> &Wk : Workers)
      if (!Wk->Deque.emptyHint())
        return true;
    return false;
  }

  void declareDrained() {
    Drained.store(true, std::memory_order_seq_cst);
    Lot.unparkAll(TokenDrained);
  }

  ParkingLot Lot;
  const int N;
  std::vector<std::unique_ptr<PerWorker>> Workers;
  /// Parcels seeded or donated and not yet fully processed. The termination
  /// signal: 0 means queues empty and nobody mid-parcel.
  std::atomic<int64_t> Live{0};
  /// Parcels queued and not yet claimed — the donation-throttle hint.
  std::atomic<int64_t> Unclaimed{0};
  std::atomic<bool> Stop{false};
  std::atomic<bool> Drained{false};
};

} // namespace sched
} // namespace closer

#endif // CLOSER_SCHED_SCHEDULER_H
