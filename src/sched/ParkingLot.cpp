//===- ParkingLot.cpp - Wait-node parking with targeted wakeups ------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "sched/ParkingLot.h"

#include <algorithm>
#include <cassert>

using namespace closer;
using namespace closer::sched;

ParkingLot::ParkingLot(int NumWorkers) {
  Nodes.reserve(static_cast<size_t>(NumWorkers));
  for (int W = 0; W != NumWorkers; ++W)
    Nodes.push_back(std::make_unique<WaitNode>());
  IdleList.reserve(static_cast<size_t>(NumWorkers));
}

void ParkingLot::beginPark(int W) {
  WaitNode &N = *Nodes[static_cast<size_t>(W)];
  // The node is quiescent here: any previous park cycle either consumed its
  // wakeup in completePark or waited for the winner store in cancelPark.
  N.Winner.store(NoWinner, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(LotM);
  assert(!N.InList && "beginPark while already parked");
  N.InList = true;
  IdleList.push_back(W);
  Idle.store(static_cast<int>(IdleList.size()), std::memory_order_relaxed);
}

bool ParkingLot::cancelPark(int W) {
  WaitNode &N = *Nodes[static_cast<size_t>(W)];
  {
    std::lock_guard<std::mutex> Lock(LotM);
    if (N.InList) {
      // Clean cancel: nobody popped us, so nobody can deliver to this node.
      N.InList = false;
      IdleList.erase(std::find(IdleList.begin(), IdleList.end(), W));
      Idle.store(static_cast<int>(IdleList.size()),
                 std::memory_order_relaxed);
      return false;
    }
  }
  // An unparker popped our node and is committed to storing a winner. Wait
  // for that store so the node is quiescent before the next beginPark —
  // otherwise a delayed winner store could leak into a later park cycle and
  // wake it spuriously. The wait is bounded: the unparker is between its
  // pop and its notify, a handful of instructions.
  std::unique_lock<std::mutex> Lock(N.M);
  N.CV.wait(Lock, [&N] {
    return N.Winner.load(std::memory_order_relaxed) != NoWinner;
  });
  return true;
}

int ParkingLot::completePark(int W) {
  WaitNode &N = *Nodes[static_cast<size_t>(W)];
  std::unique_lock<std::mutex> Lock(N.M);
  N.CV.wait(Lock, [&N] {
    return N.Winner.load(std::memory_order_relaxed) != NoWinner;
  });
  return N.Winner.load(std::memory_order_relaxed);
}

int ParkingLot::unparkOne(int Token) {
  assert(Token >= 0 && "tokens must be non-negative");
  int W;
  {
    std::lock_guard<std::mutex> Lock(LotM);
    if (IdleList.empty())
      return -1;
    W = IdleList.back();
    IdleList.pop_back();
    Nodes[static_cast<size_t>(W)]->InList = false;
    Idle.store(static_cast<int>(IdleList.size()), std::memory_order_relaxed);
  }
  WaitNode &N = *Nodes[static_cast<size_t>(W)];
  {
    // The winner claim: we popped the node, so we are the only party that
    // may deliver to it. The CAS from NoWinner asserts exactly that.
    std::lock_guard<std::mutex> Lock(N.M);
    int Expected = NoWinner;
    bool Claimed = N.Winner.compare_exchange_strong(
        Expected, Token, std::memory_order_seq_cst);
    assert(Claimed && "wait node claimed twice");
    (void)Claimed;
  }
  N.CV.notify_one();
  return W;
}

int ParkingLot::unparkAll(int Token) {
  int Woken = 0;
  while (unparkOne(Token) >= 0)
    ++Woken;
  return Woken;
}
