//===- ParkingLot.h - Wait-node parking with targeted wakeups --*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parking lot for idle workers, built on per-worker wait nodes with a
/// winner flag (the classic select/wakeup pattern: each blocked party owns
/// a node; whoever claims the node's winner flag first delivers exactly one
/// wakeup there). Replaces condition-variable broadcasts: an unpark wakes
/// exactly the one worker it popped from the idle list — O(1) wakeups, no
/// thundering herd, and the waker knows *which* worker it woke.
///
/// Protocol (the order is load-bearing; see Scheduler.h for the matching
/// producer side):
///
///   worker:  beginPark(W)        — reset winner, enqueue node (idle list)
///            ... recheck for work ...
///            cancelPark(W)       — found some: leave the lot. If an
///                                  unparker already popped our node, wait
///                                  for its (imminent) winner store so the
///                                  node is quiescent before reuse.
///            completePark(W)     — found none: block until a winner claim.
///
///   waker:   unparkOne(Token)    — pop one node from the idle list, claim
///                                  its winner flag, notify that node only.
///
/// Exactly-once: a node is popped from the idle list at most once per
/// beginPark (list membership is mutex-guarded), and the winner flag is
/// claimed by a compare-and-swap from the empty state, so each parked
/// worker receives exactly one wakeup and each successful unparkOne wakes
/// exactly one worker.
///
/// The idle list is mutex-protected: parking is the cold path (the worker
/// is about to sleep), so a lock there costs nothing, while the hot-path
/// signal donors poll — idleHint() — stays a single relaxed load.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_SCHED_PARKINGLOT_H
#define CLOSER_SCHED_PARKINGLOT_H

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

namespace closer {
namespace sched {

class ParkingLot {
public:
  /// Winner-flag value while no wakeup has been delivered. Tokens passed to
  /// unparkOne/unparkAll must be >= 0.
  static constexpr int NoWinner = -1;

  explicit ParkingLot(int NumWorkers);

  /// Worker \p W announces it is about to sleep: resets its winner flag and
  /// enqueues its wait node on the idle list. Must be followed by a recheck
  /// for work and then exactly one of cancelPark()/completePark().
  void beginPark(int W);

  /// Worker \p W aborts the park (its recheck found work). Returns true
  /// when an unparker had already popped the node — the wakeup token is
  /// consumed here (the worker is awake and about to process work, which
  /// is what the token asked for).
  bool cancelPark(int W);

  /// Worker \p W blocks until a winner claim arrives; returns the token.
  int completePark(int W);

  /// Wakes exactly one parked worker with \p Token (>= 0). Returns the
  /// woken worker's index, or -1 when nobody was parked.
  int unparkOne(int Token);

  /// Drains the idle list with targeted unparks (a loop of unparkOne, not
  /// a broadcast). Returns the number of workers woken.
  int unparkAll(int Token);

  /// Racy count of currently parked workers: the donation-throttle hint
  /// busy workers poll every backtrack. A stale read only delays or adds a
  /// donation; it never affects which states get explored.
  int idleHint() const { return Idle.load(std::memory_order_relaxed); }

private:
  struct WaitNode {
    std::mutex M;
    std::condition_variable CV;
    /// NoWinner until a wakeup is delivered; then the waker's token.
    /// Written under M (so completePark's wait predicate is race-free) but
    /// atomic as well, so the claim itself is an explicit CAS from
    /// NoWinner — the exactly-once handoff the pattern is named for.
    std::atomic<int> Winner{NoWinner};
    /// Guarded by the lot mutex: present on the idle list?
    bool InList = false;
  };

  std::mutex LotM;                 ///< Guards IdleList and InList flags.
  std::vector<int> IdleList;       ///< Parked worker indices (LIFO).
  std::vector<std::unique_ptr<WaitNode>> Nodes;
  std::atomic<int> Idle{0};        ///< == IdleList.size(), relaxed mirror.
};

} // namespace sched
} // namespace closer

#endif // CLOSER_SCHED_PARKINGLOT_H
