//===- ChaseLev.h - Lock-free work-stealing deque --------------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Chase–Lev work-stealing deque [Chase & Lev, SPAA'05] of raw pointers.
/// One designated owner thread pushes and pops at the bottom (LIFO, so the
/// owner keeps working on the hottest subtree); any number of thief threads
/// steal from the top (FIFO, so thieves take the largest, coldest parcels)
/// with a single compare-and-swap.
///
/// Invariants:
///  * Top <= Bottom at every quiescent point; Bottom - Top is the size.
///  * Only the owner writes Bottom and slots; only a successful CAS on Top
///    removes an element from the top. The CAS is what makes the
///    owner-vs-thief race for the last element safe: exactly one side wins.
///  * The circular buffer only grows (never shrinks); retired buffers stay
///    alive until the deque is destroyed, so a stale thief that still holds
///    an old buffer pointer reads valid (if outdated) memory — its CAS then
///    fails and the read value is discarded. This sidesteps reclamation
///    without hazard pointers; growth is rare (seed items only) and the
///    memory held is a few pointers per retired generation.
///
/// This implementation deliberately uses sequentially consistent atomics on
/// Top and Bottom instead of the fence-optimized formulation from "Correct
/// and Efficient Work-Stealing for Weak Memory Models" (Lê et al., PPoPP'13):
/// ThreadSanitizer models atomic operations precisely but standalone fences
/// only approximately, and the Tsan gate over SchedulerTest is part of this
/// code's contract. The cost is a few extra ordered operations on a path
/// that executes once per work item, not per state.
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_SCHED_CHASELEV_H
#define CLOSER_SCHED_CHASELEV_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace closer {
namespace sched {

template <typename T> class ChaseLevDeque {
public:
  enum class Steal {
    Stolen, ///< Out holds the element.
    Empty,  ///< Nothing to steal.
    Lost,   ///< Lost a race with the owner or another thief; retrying is
            ///< reasonable (the deque may still be non-empty).
  };

  explicit ChaseLevDeque(size_t LogInitialCapacity = 6) {
    Buf.store(newBuffer(LogInitialCapacity), std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque &) = delete;
  ChaseLevDeque &operator=(const ChaseLevDeque &) = delete;

  ~ChaseLevDeque() {
    for (std::unique_ptr<Buffer> &B : Retired)
      B.reset();
    delete Buf.load(std::memory_order_relaxed);
  }

  /// Owner only: push one element at the bottom.
  void push(T *V) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t T_ = Top.load(std::memory_order_seq_cst);
    Buffer *A = Buf.load(std::memory_order_relaxed);
    if (B - T_ >= A->capacity())
      A = grow(A, T_, B);
    A->put(B, V);
    Bottom.store(B + 1, std::memory_order_seq_cst);
  }

  /// Owner only: pop the most recently pushed element. Returns nullptr when
  /// the deque is empty (or the last element was lost to a thief).
  T *pop() {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Buffer *A = Buf.load(std::memory_order_relaxed);
    Bottom.store(B, std::memory_order_seq_cst);
    int64_t T_ = Top.load(std::memory_order_seq_cst);
    if (T_ > B) {
      // Already empty: restore Bottom.
      Bottom.store(B + 1, std::memory_order_seq_cst);
      return nullptr;
    }
    T *V = A->get(B);
    if (T_ == B) {
      // Exactly one element left: race thieves for it via Top.
      if (!Top.compare_exchange_strong(T_, T_ + 1, std::memory_order_seq_cst,
                                       std::memory_order_seq_cst))
        V = nullptr; // A thief won.
      Bottom.store(B + 1, std::memory_order_seq_cst);
    }
    return V;
  }

  /// Thief: try to steal the oldest element.
  Steal steal(T *&Out) {
    Out = nullptr;
    int64_t T_ = Top.load(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_seq_cst);
    if (T_ >= B)
      return Steal::Empty;
    Buffer *A = Buf.load(std::memory_order_seq_cst);
    T *V = A->get(T_);
    if (!Top.compare_exchange_strong(T_, T_ + 1, std::memory_order_seq_cst,
                                     std::memory_order_seq_cst))
      return Steal::Lost;
    Out = V;
    return Steal::Stolen;
  }

  /// Racy size hint — callers use it only to decide whether scanning or
  /// donating is worth attempting; correctness never depends on it.
  int64_t sizeHint() const {
    int64_t B = Bottom.load(std::memory_order_seq_cst);
    int64_t T_ = Top.load(std::memory_order_seq_cst);
    return B > T_ ? B - T_ : 0;
  }

  bool emptyHint() const { return sizeHint() == 0; }

private:
  struct Buffer {
    explicit Buffer(size_t LogCap)
        : LogCap(LogCap), Slots(size_t{1} << LogCap) {}
    int64_t capacity() const { return int64_t{1} << LogCap; }
    T *get(int64_t I) const {
      return Slots[static_cast<size_t>(I) & (Slots.size() - 1)].load(
          std::memory_order_relaxed);
    }
    void put(int64_t I, T *V) {
      Slots[static_cast<size_t>(I) & (Slots.size() - 1)].store(
          V, std::memory_order_relaxed);
    }
    size_t LogCap;
    std::vector<std::atomic<T *>> Slots;
  };

  static Buffer *newBuffer(size_t LogCap) { return new Buffer(LogCap); }

  Buffer *grow(Buffer *Old, int64_t T_, int64_t B) {
    Buffer *New = newBuffer(Old->LogCap + 1);
    for (int64_t I = T_; I < B; ++I)
      New->put(I, Old->get(I));
    Buf.store(New, std::memory_order_seq_cst);
    Retired.emplace_back(Old); // Keep alive for stale thieves.
    return New;
  }

  std::atomic<int64_t> Top{0};
  std::atomic<int64_t> Bottom{0};
  std::atomic<Buffer *> Buf{nullptr};
  std::vector<std::unique_ptr<Buffer>> Retired; ///< Owner-only.
};

} // namespace sched
} // namespace closer

#endif // CLOSER_SCHED_CHASELEV_H
