# Empty compiler generated dependencies file for bench_por.
# This may be replaced when dependencies are built.
