file(REMOVE_RECURSE
  "CMakeFiles/bench_por.dir/bench_por.cpp.o"
  "CMakeFiles/bench_por.dir/bench_por.cpp.o.d"
  "bench_por"
  "bench_por.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_por.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
