# Empty compiler generated dependencies file for bench_statespace.
# This may be replaced when dependencies are built.
