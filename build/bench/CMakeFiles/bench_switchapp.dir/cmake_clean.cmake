file(REMOVE_RECURSE
  "CMakeFiles/bench_switchapp.dir/bench_switchapp.cpp.o"
  "CMakeFiles/bench_switchapp.dir/bench_switchapp.cpp.o.d"
  "bench_switchapp"
  "bench_switchapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_switchapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
