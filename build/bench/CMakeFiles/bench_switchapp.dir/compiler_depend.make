# Empty compiler generated dependencies file for bench_switchapp.
# This may be replaced when dependencies are built.
