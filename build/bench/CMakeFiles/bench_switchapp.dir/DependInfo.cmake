
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_switchapp.cpp" "bench/CMakeFiles/bench_switchapp.dir/bench_switchapp.cpp.o" "gcc" "bench/CMakeFiles/bench_switchapp.dir/bench_switchapp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/closing/CMakeFiles/closer_closing.dir/DependInfo.cmake"
  "/root/repo/build/src/explorer/CMakeFiles/closer_explorer.dir/DependInfo.cmake"
  "/root/repo/build/src/envgen/CMakeFiles/closer_envgen.dir/DependInfo.cmake"
  "/root/repo/build/src/switchapp/CMakeFiles/closer_switchapp.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/closer_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/closer_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/closer_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/closer_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/closer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
