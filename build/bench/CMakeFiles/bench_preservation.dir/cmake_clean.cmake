file(REMOVE_RECURSE
  "CMakeFiles/bench_preservation.dir/bench_preservation.cpp.o"
  "CMakeFiles/bench_preservation.dir/bench_preservation.cpp.o.d"
  "bench_preservation"
  "bench_preservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_preservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
