# Empty dependencies file for bench_preservation.
# This may be replaced when dependencies are built.
