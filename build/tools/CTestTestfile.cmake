# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_close_figure2 "/root/repo/build/tools/closer" "close" "/root/repo/examples/minic/figure2.mc")
set_tests_properties(cli_close_figure2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_partition_resource_manager "/root/repo/build/tools/closer" "partition" "/root/repo/examples/minic/resource_manager.mc")
set_tests_properties(cli_partition_resource_manager PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_explore_bounded_buffer "/root/repo/build/tools/closer" "explore" "/root/repo/examples/minic/bounded_buffer.mc" "--depth" "40")
set_tests_properties(cli_explore_bounded_buffer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_finds_lock_order_deadlock "/root/repo/build/tools/closer" "explore" "/root/repo/examples/minic/lock_order_bug.mc" "--stop-on-error")
set_tests_properties(cli_finds_lock_order_deadlock PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_cfg_listing "/root/repo/build/tools/closer" "cfg" "/root/repo/examples/minic/figure2.mc" "p")
set_tests_properties(cli_cfg_listing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dot_output "/root/repo/build/tools/closer" "dot" "/root/repo/examples/minic/figure2.mc" "p")
set_tests_properties(cli_dot_output PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_naive_close "/root/repo/build/tools/closer" "naive" "/root/repo/examples/minic/figure2.mc" "-D" "3")
set_tests_properties(cli_naive_close PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_replay_deadlock "/root/repo/build/tools/closer" "replay" "/root/repo/examples/minic/lock_order_bug.mc" "s0 s1")
set_tests_properties(cli_replay_deadlock PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_interface_inventory "/root/repo/build/tools/closer" "interface" "/root/repo/examples/minic/resource_manager.mc")
set_tests_properties(cli_interface_inventory PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
