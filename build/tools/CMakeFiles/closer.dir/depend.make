# Empty dependencies file for closer.
# This may be replaced when dependencies are built.
