file(REMOVE_RECURSE
  "CMakeFiles/closer.dir/closer_main.cpp.o"
  "CMakeFiles/closer.dir/closer_main.cpp.o.d"
  "closer"
  "closer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
