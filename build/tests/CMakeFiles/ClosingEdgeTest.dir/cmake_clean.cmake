file(REMOVE_RECURSE
  "CMakeFiles/ClosingEdgeTest.dir/ClosingEdgeTest.cpp.o"
  "CMakeFiles/ClosingEdgeTest.dir/ClosingEdgeTest.cpp.o.d"
  "ClosingEdgeTest"
  "ClosingEdgeTest.pdb"
  "ClosingEdgeTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ClosingEdgeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
