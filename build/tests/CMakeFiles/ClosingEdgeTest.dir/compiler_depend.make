# Empty compiler generated dependencies file for ClosingEdgeTest.
# This may be replaced when dependencies are built.
