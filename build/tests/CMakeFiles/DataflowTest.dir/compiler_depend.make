# Empty compiler generated dependencies file for DataflowTest.
# This may be replaced when dependencies are built.
