file(REMOVE_RECURSE
  "CMakeFiles/DataflowTest.dir/DataflowTest.cpp.o"
  "CMakeFiles/DataflowTest.dir/DataflowTest.cpp.o.d"
  "DataflowTest"
  "DataflowTest.pdb"
  "DataflowTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DataflowTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
