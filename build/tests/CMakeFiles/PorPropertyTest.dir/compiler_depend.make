# Empty compiler generated dependencies file for PorPropertyTest.
# This may be replaced when dependencies are built.
