file(REMOVE_RECURSE
  "CMakeFiles/PorPropertyTest.dir/PorPropertyTest.cpp.o"
  "CMakeFiles/PorPropertyTest.dir/PorPropertyTest.cpp.o.d"
  "PorPropertyTest"
  "PorPropertyTest.pdb"
  "PorPropertyTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PorPropertyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
