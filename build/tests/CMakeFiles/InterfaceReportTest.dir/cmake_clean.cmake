file(REMOVE_RECURSE
  "CMakeFiles/InterfaceReportTest.dir/InterfaceReportTest.cpp.o"
  "CMakeFiles/InterfaceReportTest.dir/InterfaceReportTest.cpp.o.d"
  "InterfaceReportTest"
  "InterfaceReportTest.pdb"
  "InterfaceReportTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/InterfaceReportTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
