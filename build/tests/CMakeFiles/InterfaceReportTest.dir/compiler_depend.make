# Empty compiler generated dependencies file for InterfaceReportTest.
# This may be replaced when dependencies are built.
