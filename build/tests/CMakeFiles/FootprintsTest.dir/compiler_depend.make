# Empty compiler generated dependencies file for FootprintsTest.
# This may be replaced when dependencies are built.
