file(REMOVE_RECURSE
  "CMakeFiles/FootprintsTest.dir/FootprintsTest.cpp.o"
  "CMakeFiles/FootprintsTest.dir/FootprintsTest.cpp.o.d"
  "FootprintsTest"
  "FootprintsTest.pdb"
  "FootprintsTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FootprintsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
