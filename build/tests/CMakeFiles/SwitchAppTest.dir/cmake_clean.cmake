file(REMOVE_RECURSE
  "CMakeFiles/SwitchAppTest.dir/SwitchAppTest.cpp.o"
  "CMakeFiles/SwitchAppTest.dir/SwitchAppTest.cpp.o.d"
  "SwitchAppTest"
  "SwitchAppTest.pdb"
  "SwitchAppTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SwitchAppTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
