# Empty dependencies file for SwitchAppTest.
# This may be replaced when dependencies are built.
