file(REMOVE_RECURSE
  "CMakeFiles/ExplorerTest.dir/ExplorerTest.cpp.o"
  "CMakeFiles/ExplorerTest.dir/ExplorerTest.cpp.o.d"
  "ExplorerTest"
  "ExplorerTest.pdb"
  "ExplorerTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ExplorerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
