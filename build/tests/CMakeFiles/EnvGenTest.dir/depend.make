# Empty dependencies file for EnvGenTest.
# This may be replaced when dependencies are built.
