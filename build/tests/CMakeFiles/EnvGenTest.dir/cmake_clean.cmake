file(REMOVE_RECURSE
  "CMakeFiles/EnvGenTest.dir/EnvGenTest.cpp.o"
  "CMakeFiles/EnvGenTest.dir/EnvGenTest.cpp.o.d"
  "EnvGenTest"
  "EnvGenTest.pdb"
  "EnvGenTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/EnvGenTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
