file(REMOVE_RECURSE
  "CMakeFiles/DomainPartitionTest.dir/DomainPartitionTest.cpp.o"
  "CMakeFiles/DomainPartitionTest.dir/DomainPartitionTest.cpp.o.d"
  "DomainPartitionTest"
  "DomainPartitionTest.pdb"
  "DomainPartitionTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DomainPartitionTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
