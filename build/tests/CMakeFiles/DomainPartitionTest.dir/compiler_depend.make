# Empty compiler generated dependencies file for DomainPartitionTest.
# This may be replaced when dependencies are built.
