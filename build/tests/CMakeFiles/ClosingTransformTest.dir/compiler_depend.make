# Empty compiler generated dependencies file for ClosingTransformTest.
# This may be replaced when dependencies are built.
