file(REMOVE_RECURSE
  "CMakeFiles/ClosingTransformTest.dir/ClosingTransformTest.cpp.o"
  "CMakeFiles/ClosingTransformTest.dir/ClosingTransformTest.cpp.o.d"
  "ClosingTransformTest"
  "ClosingTransformTest.pdb"
  "ClosingTransformTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ClosingTransformTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
