file(REMOVE_RECURSE
  "CMakeFiles/SearchBudgetTest.dir/SearchBudgetTest.cpp.o"
  "CMakeFiles/SearchBudgetTest.dir/SearchBudgetTest.cpp.o.d"
  "SearchBudgetTest"
  "SearchBudgetTest.pdb"
  "SearchBudgetTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SearchBudgetTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
