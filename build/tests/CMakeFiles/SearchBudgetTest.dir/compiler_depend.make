# Empty compiler generated dependencies file for SearchBudgetTest.
# This may be replaced when dependencies are built.
