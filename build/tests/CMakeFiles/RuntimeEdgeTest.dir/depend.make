# Empty dependencies file for RuntimeEdgeTest.
# This may be replaced when dependencies are built.
