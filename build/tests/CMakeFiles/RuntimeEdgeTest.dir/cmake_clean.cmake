file(REMOVE_RECURSE
  "CMakeFiles/RuntimeEdgeTest.dir/RuntimeEdgeTest.cpp.o"
  "CMakeFiles/RuntimeEdgeTest.dir/RuntimeEdgeTest.cpp.o.d"
  "RuntimeEdgeTest"
  "RuntimeEdgeTest.pdb"
  "RuntimeEdgeTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RuntimeEdgeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
