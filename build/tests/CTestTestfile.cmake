# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ClosingTransformTest[1]_include.cmake")
include("/root/repo/build/tests/RuntimeTest[1]_include.cmake")
include("/root/repo/build/tests/ExplorerTest[1]_include.cmake")
include("/root/repo/build/tests/EnvGenTest[1]_include.cmake")
include("/root/repo/build/tests/SwitchAppTest[1]_include.cmake")
include("/root/repo/build/tests/PropertyTest[1]_include.cmake")
include("/root/repo/build/tests/LexerTest[1]_include.cmake")
include("/root/repo/build/tests/ParserTest[1]_include.cmake")
include("/root/repo/build/tests/SemaTest[1]_include.cmake")
include("/root/repo/build/tests/CfgTest[1]_include.cmake")
include("/root/repo/build/tests/DataflowTest[1]_include.cmake")
include("/root/repo/build/tests/DomainPartitionTest[1]_include.cmake")
include("/root/repo/build/tests/FootprintsTest[1]_include.cmake")
include("/root/repo/build/tests/TraceTest[1]_include.cmake")
include("/root/repo/build/tests/PorPropertyTest[1]_include.cmake")
include("/root/repo/build/tests/IntegrationTest[1]_include.cmake")
include("/root/repo/build/tests/SupportTest[1]_include.cmake")
include("/root/repo/build/tests/SearchBudgetTest[1]_include.cmake")
include("/root/repo/build/tests/ReplayTest[1]_include.cmake")
include("/root/repo/build/tests/InterfaceReportTest[1]_include.cmake")
include("/root/repo/build/tests/RuntimeEdgeTest[1]_include.cmake")
include("/root/repo/build/tests/ClosingEdgeTest[1]_include.cmake")
