file(REMOVE_RECURSE
  "CMakeFiles/telephone_switch.dir/telephone_switch.cpp.o"
  "CMakeFiles/telephone_switch.dir/telephone_switch.cpp.o.d"
  "telephone_switch"
  "telephone_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telephone_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
