# Empty compiler generated dependencies file for telephone_switch.
# This may be replaced when dependencies are built.
