file(REMOVE_RECURSE
  "CMakeFiles/partial_env.dir/partial_env.cpp.o"
  "CMakeFiles/partial_env.dir/partial_env.cpp.o.d"
  "partial_env"
  "partial_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
