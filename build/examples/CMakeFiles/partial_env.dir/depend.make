# Empty dependencies file for partial_env.
# This may be replaced when dependencies are built.
