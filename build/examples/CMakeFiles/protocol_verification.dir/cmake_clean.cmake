file(REMOVE_RECURSE
  "CMakeFiles/protocol_verification.dir/protocol_verification.cpp.o"
  "CMakeFiles/protocol_verification.dir/protocol_verification.cpp.o.d"
  "protocol_verification"
  "protocol_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
