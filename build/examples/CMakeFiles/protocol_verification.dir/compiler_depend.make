# Empty compiler generated dependencies file for protocol_verification.
# This may be replaced when dependencies are built.
