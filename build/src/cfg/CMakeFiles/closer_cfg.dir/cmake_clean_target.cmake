file(REMOVE_RECURSE
  "libcloser_cfg.a"
)
