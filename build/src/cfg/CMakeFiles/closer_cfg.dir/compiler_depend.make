# Empty compiler generated dependencies file for closer_cfg.
# This may be replaced when dependencies are built.
