
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/Cfg.cpp" "src/cfg/CMakeFiles/closer_cfg.dir/Cfg.cpp.o" "gcc" "src/cfg/CMakeFiles/closer_cfg.dir/Cfg.cpp.o.d"
  "/root/repo/src/cfg/CfgBuilder.cpp" "src/cfg/CMakeFiles/closer_cfg.dir/CfgBuilder.cpp.o" "gcc" "src/cfg/CMakeFiles/closer_cfg.dir/CfgBuilder.cpp.o.d"
  "/root/repo/src/cfg/CfgPrinter.cpp" "src/cfg/CMakeFiles/closer_cfg.dir/CfgPrinter.cpp.o" "gcc" "src/cfg/CMakeFiles/closer_cfg.dir/CfgPrinter.cpp.o.d"
  "/root/repo/src/cfg/CfgVerifier.cpp" "src/cfg/CMakeFiles/closer_cfg.dir/CfgVerifier.cpp.o" "gcc" "src/cfg/CMakeFiles/closer_cfg.dir/CfgVerifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/closer_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/closer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
