file(REMOVE_RECURSE
  "CMakeFiles/closer_cfg.dir/Cfg.cpp.o"
  "CMakeFiles/closer_cfg.dir/Cfg.cpp.o.d"
  "CMakeFiles/closer_cfg.dir/CfgBuilder.cpp.o"
  "CMakeFiles/closer_cfg.dir/CfgBuilder.cpp.o.d"
  "CMakeFiles/closer_cfg.dir/CfgPrinter.cpp.o"
  "CMakeFiles/closer_cfg.dir/CfgPrinter.cpp.o.d"
  "CMakeFiles/closer_cfg.dir/CfgVerifier.cpp.o"
  "CMakeFiles/closer_cfg.dir/CfgVerifier.cpp.o.d"
  "libcloser_cfg.a"
  "libcloser_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closer_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
