# Empty compiler generated dependencies file for closer_runtime.
# This may be replaced when dependencies are built.
