file(REMOVE_RECURSE
  "libcloser_runtime.a"
)
