file(REMOVE_RECURSE
  "CMakeFiles/closer_runtime.dir/System.cpp.o"
  "CMakeFiles/closer_runtime.dir/System.cpp.o.d"
  "CMakeFiles/closer_runtime.dir/Trace.cpp.o"
  "CMakeFiles/closer_runtime.dir/Trace.cpp.o.d"
  "CMakeFiles/closer_runtime.dir/Value.cpp.o"
  "CMakeFiles/closer_runtime.dir/Value.cpp.o.d"
  "libcloser_runtime.a"
  "libcloser_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closer_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
