file(REMOVE_RECURSE
  "CMakeFiles/closer_dataflow.dir/AliasAnalysis.cpp.o"
  "CMakeFiles/closer_dataflow.dir/AliasAnalysis.cpp.o.d"
  "CMakeFiles/closer_dataflow.dir/DefUse.cpp.o"
  "CMakeFiles/closer_dataflow.dir/DefUse.cpp.o.d"
  "CMakeFiles/closer_dataflow.dir/EnvTaint.cpp.o"
  "CMakeFiles/closer_dataflow.dir/EnvTaint.cpp.o.d"
  "libcloser_dataflow.a"
  "libcloser_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closer_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
