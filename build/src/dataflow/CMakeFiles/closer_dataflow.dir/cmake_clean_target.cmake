file(REMOVE_RECURSE
  "libcloser_dataflow.a"
)
