# Empty dependencies file for closer_dataflow.
# This may be replaced when dependencies are built.
