file(REMOVE_RECURSE
  "CMakeFiles/closer_envgen.dir/NaiveClose.cpp.o"
  "CMakeFiles/closer_envgen.dir/NaiveClose.cpp.o.d"
  "libcloser_envgen.a"
  "libcloser_envgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closer_envgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
