# Empty compiler generated dependencies file for closer_envgen.
# This may be replaced when dependencies are built.
