file(REMOVE_RECURSE
  "libcloser_envgen.a"
)
