file(REMOVE_RECURSE
  "libcloser_closing.a"
)
