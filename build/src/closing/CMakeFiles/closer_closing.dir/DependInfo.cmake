
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/closing/ClosingTransform.cpp" "src/closing/CMakeFiles/closer_closing.dir/ClosingTransform.cpp.o" "gcc" "src/closing/CMakeFiles/closer_closing.dir/ClosingTransform.cpp.o.d"
  "/root/repo/src/closing/DomainPartition.cpp" "src/closing/CMakeFiles/closer_closing.dir/DomainPartition.cpp.o" "gcc" "src/closing/CMakeFiles/closer_closing.dir/DomainPartition.cpp.o.d"
  "/root/repo/src/closing/InterfaceReport.cpp" "src/closing/CMakeFiles/closer_closing.dir/InterfaceReport.cpp.o" "gcc" "src/closing/CMakeFiles/closer_closing.dir/InterfaceReport.cpp.o.d"
  "/root/repo/src/closing/Pipeline.cpp" "src/closing/CMakeFiles/closer_closing.dir/Pipeline.cpp.o" "gcc" "src/closing/CMakeFiles/closer_closing.dir/Pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/closer_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/closer_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/closer_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/closer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
