# Empty dependencies file for closer_closing.
# This may be replaced when dependencies are built.
