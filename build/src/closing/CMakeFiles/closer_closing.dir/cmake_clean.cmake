file(REMOVE_RECURSE
  "CMakeFiles/closer_closing.dir/ClosingTransform.cpp.o"
  "CMakeFiles/closer_closing.dir/ClosingTransform.cpp.o.d"
  "CMakeFiles/closer_closing.dir/DomainPartition.cpp.o"
  "CMakeFiles/closer_closing.dir/DomainPartition.cpp.o.d"
  "CMakeFiles/closer_closing.dir/InterfaceReport.cpp.o"
  "CMakeFiles/closer_closing.dir/InterfaceReport.cpp.o.d"
  "CMakeFiles/closer_closing.dir/Pipeline.cpp.o"
  "CMakeFiles/closer_closing.dir/Pipeline.cpp.o.d"
  "libcloser_closing.a"
  "libcloser_closing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closer_closing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
