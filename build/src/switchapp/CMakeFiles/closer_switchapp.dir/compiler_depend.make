# Empty compiler generated dependencies file for closer_switchapp.
# This may be replaced when dependencies are built.
