file(REMOVE_RECURSE
  "libcloser_switchapp.a"
)
