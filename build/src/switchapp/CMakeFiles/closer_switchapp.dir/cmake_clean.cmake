file(REMOVE_RECURSE
  "CMakeFiles/closer_switchapp.dir/SwitchApp.cpp.o"
  "CMakeFiles/closer_switchapp.dir/SwitchApp.cpp.o.d"
  "libcloser_switchapp.a"
  "libcloser_switchapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closer_switchapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
