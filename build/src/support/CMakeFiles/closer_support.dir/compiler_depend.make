# Empty compiler generated dependencies file for closer_support.
# This may be replaced when dependencies are built.
