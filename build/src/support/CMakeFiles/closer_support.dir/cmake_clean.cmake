file(REMOVE_RECURSE
  "CMakeFiles/closer_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/closer_support.dir/Diagnostics.cpp.o.d"
  "libcloser_support.a"
  "libcloser_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closer_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
