file(REMOVE_RECURSE
  "libcloser_support.a"
)
