file(REMOVE_RECURSE
  "libcloser_lang.a"
)
