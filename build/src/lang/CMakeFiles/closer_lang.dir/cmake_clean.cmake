file(REMOVE_RECURSE
  "CMakeFiles/closer_lang.dir/Ast.cpp.o"
  "CMakeFiles/closer_lang.dir/Ast.cpp.o.d"
  "CMakeFiles/closer_lang.dir/Builtins.cpp.o"
  "CMakeFiles/closer_lang.dir/Builtins.cpp.o.d"
  "CMakeFiles/closer_lang.dir/Lexer.cpp.o"
  "CMakeFiles/closer_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/closer_lang.dir/Parser.cpp.o"
  "CMakeFiles/closer_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/closer_lang.dir/PrettyPrinter.cpp.o"
  "CMakeFiles/closer_lang.dir/PrettyPrinter.cpp.o.d"
  "CMakeFiles/closer_lang.dir/Sema.cpp.o"
  "CMakeFiles/closer_lang.dir/Sema.cpp.o.d"
  "libcloser_lang.a"
  "libcloser_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closer_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
