# Empty dependencies file for closer_lang.
# This may be replaced when dependencies are built.
