file(REMOVE_RECURSE
  "CMakeFiles/closer_explorer.dir/Footprints.cpp.o"
  "CMakeFiles/closer_explorer.dir/Footprints.cpp.o.d"
  "CMakeFiles/closer_explorer.dir/Replay.cpp.o"
  "CMakeFiles/closer_explorer.dir/Replay.cpp.o.d"
  "CMakeFiles/closer_explorer.dir/Search.cpp.o"
  "CMakeFiles/closer_explorer.dir/Search.cpp.o.d"
  "libcloser_explorer.a"
  "libcloser_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closer_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
