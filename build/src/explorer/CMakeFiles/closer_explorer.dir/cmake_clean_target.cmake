file(REMOVE_RECURSE
  "libcloser_explorer.a"
)
