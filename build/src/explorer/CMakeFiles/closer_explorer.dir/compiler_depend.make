# Empty compiler generated dependencies file for closer_explorer.
# This may be replaced when dependencies are built.
