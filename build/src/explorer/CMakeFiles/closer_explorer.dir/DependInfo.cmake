
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explorer/Footprints.cpp" "src/explorer/CMakeFiles/closer_explorer.dir/Footprints.cpp.o" "gcc" "src/explorer/CMakeFiles/closer_explorer.dir/Footprints.cpp.o.d"
  "/root/repo/src/explorer/Replay.cpp" "src/explorer/CMakeFiles/closer_explorer.dir/Replay.cpp.o" "gcc" "src/explorer/CMakeFiles/closer_explorer.dir/Replay.cpp.o.d"
  "/root/repo/src/explorer/Search.cpp" "src/explorer/CMakeFiles/closer_explorer.dir/Search.cpp.o" "gcc" "src/explorer/CMakeFiles/closer_explorer.dir/Search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/closer_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/closer_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/closer_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/closer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
