//===- partial_env.cpp - Manual stubs plus automatic closing ----------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// The paper's intended methodology (§1): "a developer provides manually an
// implementation for a partial model of the environment, in order to
// capture more precisely certain areas of interest, and then applies our
// algorithm to close the remainder of the system."
//
// Here the system under test is a payment terminal. The developer cares
// about the *card reader* behavior, so they write a precise stub process
// for it (it follows the real insert/PIN/remove protocol). The *network
// gateway* side is left open — the transformation closes it.
//
//===----------------------------------------------------------------------===//

#include "closing/Pipeline.h"
#include "explorer/Search.h"

#include <cstdio>
#include <string>

using namespace closer;

int main() {
  // The system under test: reads card events, asks the bank gateway for
  // authorization (whose reply is environment data - left open).
  const char *SystemUnderTest = R"(
chan card[2];
chan outcome[4];

proc terminal() {
  var ev;
  var auth;
  var active = 0;
  ev = recv(card);
  while (ev != 'shutdown') {
    if (ev == 'insert') {
      active = 1;
      auth = env_input();     // Bank gateway reply: left to E_S.
      if (auth > 0)
        send(outcome, 'approved');
      else
        send(outcome, 'declined');
    }
    if (ev == 'remove') {
      VS_assert(active == 1); // Card can only be removed if present.
      active = 0;
    }
    ev = recv(card);
  }
}
)";

  // The developer's manual environment stub: a faithful card reader that
  // always inserts before removing. This is ordinary MiniC appended to the
  // program; the closing transformation leaves it untouched (it reads no
  // environment data).
  const char *CardReaderStub = R"(
proc card_reader() {
  var rounds;
  for (rounds = 0; rounds < 2; rounds = rounds + 1) {
    send(card, 'insert');
    send(card, 'remove');
  }
  send(card, 'shutdown');
}

process term = terminal();
process reader = card_reader();
)";

  std::string Combined = std::string(SystemUnderTest) + CardReaderStub;

  CloseResult R = closeSource(Combined);
  if (!R.ok()) {
    std::printf("closing failed:\n%s\n", R.Diags.str().c_str());
    return 1;
  }

  std::printf("=== partial-environment methodology ===\n");
  std::printf("manual stub:   card_reader (kept verbatim — %s)\n",
              R.Stats.ParamsRemoved == 0 ? "no parameters removed"
                                         : "unexpected!");
  std::printf("auto-closed:   bank gateway (%zu env call(s) eliminated, "
              "%zu toss(es) inserted)\n\n",
              R.Stats.EnvCallsRemoved, R.Stats.TossNodesInserted);

  SearchOptions Opts;
  Opts.MaxDepth = 40;
  Explorer Ex(*R.Closed, Opts);
  SearchStats Stats = Ex.run();
  std::printf("exploration: %s\n", Stats.str().c_str());

  if (Stats.AssertionViolations == 0)
    std::printf("\nthe active-card invariant holds for every gateway "
                "behavior,\ngiven the stubbed card-reader protocol.\n");
  else
    std::printf("\nfinding:\n%s", Ex.reports()[0].str().c_str());

  // Contrast: with a fully most-general card reader (no stub) the
  // VS_assert(active == 1) would be violated by a remove-before-insert
  // sequence. Show that too, by opening the card channel to the env.
  const char *NoStub = R"(
chan card[2];
chan outcome[4];

proc terminal() {
  var ev;
  var auth;
  var active = 0;
  var rounds;
  for (rounds = 0; rounds < 4; rounds = rounds + 1) {
    ev = env_input();
    if (ev == 1) {
      active = 1;
      auth = env_input();
      if (auth > 0)
        send(outcome, 'approved');
      else
        send(outcome, 'declined');
    }
    if (ev == 2) {
      VS_assert(active == 1);
      active = 0;
    }
  }
}

process term = terminal();
)";
  CloseResult R2 = closeSource(NoStub);
  if (!R2.ok()) {
    std::printf("closing failed:\n%s\n", R2.Diags.str().c_str());
    return 1;
  }
  Explorer Ex2(*R2.Closed, Opts);
  SearchStats Stats2 = Ex2.run();
  std::printf("\n=== same system, fully most-general environment ===\n");
  std::printf("exploration: %s\n", Stats2.str().c_str());
  std::printf("the unconstrained environment can remove a card that was "
              "never inserted —\nthe violation below is *possible* but the "
              "developer may deem it unrealistic;\nthat is exactly why the "
              "paper recommends partial manual stubs (§1, §3).\n");
  if (!Ex2.reports().empty())
    std::printf("\nfinding:\n%s", Ex2.reports()[0].str().c_str());
  return 0;
}
