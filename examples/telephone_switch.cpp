//===- telephone_switch.cpp - The 5ESS-style case study ---------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// Recreates the paper's §6 workflow on the synthetic call-processing
// application: generate a multi-process switch application that is open at
// its telephony interface, close it automatically, and use the explorer as
// a "lightweight testing and reverse-engineering platform" — first on the
// correct application, then on a variant with a seeded trunk-leak defect.
//
//===----------------------------------------------------------------------===//

#include "closing/Pipeline.h"
#include "explorer/Search.h"
#include "switchapp/SwitchApp.h"

#include <cstdio>

using namespace closer;

static void analyze(const char *Label, const SwitchAppConfig &Config,
                    size_t Depth, bool StopOnFirstError) {
  std::string Source = generateSwitchAppSource(Config);
  std::printf("--- %s ---\n", Label);
  std::printf("application: %d lines, %d trunks, %d events/line, "
              "%zu bytes of MiniC\n",
              Config.NumLines, Config.NumTrunks, Config.EventsPerLine,
              Source.size());

  CloseResult R = closeSource(Source);
  if (!R.ok()) {
    std::printf("closing failed:\n%s\n", R.Diags.str().c_str());
    return;
  }
  std::printf("closed automatically: %zu env calls removed, %zu tosses "
              "inserted, %zu nodes -> %zu nodes\n",
              R.Stats.EnvCallsRemoved, R.Stats.TossNodesInserted,
              R.Stats.NodesBefore, R.Stats.NodesAfter);

  SearchOptions Opts;
  Opts.MaxDepth = Depth;
  Opts.MaxRuns = 200000;
  Opts.StopOnFirstError = StopOnFirstError;
  Explorer Ex(*R.Closed, Opts);
  SearchStats Stats = Ex.run();
  std::printf("exploration: %s\n", Stats.str().c_str());

  if (Stats.Deadlocks || Stats.AssertionViolations) {
    std::printf("first finding:\n%s", Ex.reports()[0].str().c_str());
  } else if (Stats.Completed) {
    std::printf("no deadlocks or assertion violations up to depth %zu "
                "(exhaustive)\n",
                Depth);
  } else {
    std::printf("no deadlocks or assertion violations found within the "
                "run budget\n");
  }
  std::printf("\n");
}

int main() {
  std::printf("Telephone-switch case study (cf. paper section 6)\n");
  std::printf("Manually closing this application would mean simulating the "
              "rest of the switch;\nthe transformation closes it "
              "automatically instead.\n\n");

  SwitchAppConfig Correct;
  Correct.NumLines = 1;
  Correct.NumTrunks = 1;
  Correct.EventsPerLine = 1;
  analyze("correct application", Correct, 40, /*StopOnFirstError=*/false);

  SwitchAppConfig Buggy = Correct;
  Buggy.NumLines = 2;
  Buggy.EventsPerLine = 2;
  Buggy.WithForwarding = false;
  Buggy.WithRegistration = false;
  Buggy.SeedTrunkLeakBug = true;
  analyze("application with seeded trunk leak", Buggy, 60,
          /*StopOnFirstError=*/true);

  return 0;
}
