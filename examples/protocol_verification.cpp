//===- protocol_verification.cpp - Verifying a closed protocol --------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// Uses the VeriSoft-style explorer directly on a closed system: a bounded
// sliding-window-ish sender/receiver pair over a lossy link (loss modeled
// with VS_toss — the modeling-language nondeterminism of the paper's §2),
// plus a resource-ordering deadlock hunt. Demonstrates partial-order
// reduction and the stateless search.
//
//===----------------------------------------------------------------------===//

#include "closing/Pipeline.h"
#include "explorer/Search.h"

#include <cstdio>

using namespace closer;

int main() {
  // A closed nondeterministic system: the "link" process drops or delivers
  // each frame by VS_toss; the sender retransmits until acked. Correctness:
  // the receiver's sequence counter never skips (asserted).
  const char *Source = R"(
chan wire[1];
chan acks[1];
chan delivered[8];

proc sender() {
  var seq;
  var got;
  for (seq = 1; seq <= 2; seq = seq + 1) {
    got = 0;
    while (got == 0) {
      send(wire, seq);
      got = recv(acks);
    }
  }
  send(wire, 0);
}

proc link() {
  var frame;
  var drop;
  frame = recv(wire);
  while (frame != 0) {
    drop = VS_toss(1);
    if (drop == 1) {
      // Frame lost: sender sees a nack.
      send(acks, 0);
    } else {
      send(delivered, frame);
      send(acks, 1);
    }
    frame = recv(wire);
  }
  send(delivered, 0);
}

proc receiver() {
  var expect = 1;
  var frame;
  frame = recv(delivered);
  while (frame != 0) {
    VS_assert(frame == expect);
    expect = frame + 1;
    frame = recv(delivered);
  }
}

process s = sender();
process l = link();
process r = receiver();
)";

  DiagnosticEngine Diags;
  auto Mod = compileAndVerify(Source, Diags);
  if (!Mod) {
    std::printf("compile failed:\n%s\n", Diags.str().c_str());
    return 1;
  }

  std::printf("=== stop-and-wait protocol over a lossy link ===\n\n");

  SearchOptions Plain;
  Plain.MaxDepth = 40;
  Plain.UsePersistentSets = false;
  Plain.UseSleepSets = false;
  Explorer ExPlain(*Mod, Plain);
  SearchStats S1 = ExPlain.run();
  std::printf("full interleaving search:   %s\n", S1.str().c_str());

  SearchOptions Por;
  Por.MaxDepth = 40;
  Explorer ExPor(*Mod, Por);
  SearchStats S2 = ExPor.run();
  std::printf("with partial-order reduct.: %s\n", S2.str().c_str());

  if (S1.AssertionViolations == 0 && S2.AssertionViolations == 0)
    std::printf("\nprotocol verified: the receiver never sees an "
                "out-of-order frame,\nunder every loss pattern and "
                "interleaving (up to depth 40).\n");
  for (const ErrorReport &Rep : ExPor.reports())
    std::printf("finding:\n%s", Rep.str().c_str());

  return 0;
}
