//===- quickstart.cpp - Closing your first open program ---------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// The smallest end-to-end tour of the library:
//
//   1. write an *open* MiniC program (its process takes an `env` argument
//      and reads dialed digits with env_input());
//   2. close it automatically with the paper's transformation;
//   3. print the closed program (source and CFG form);
//   4. explore its full state space with the VeriSoft-style explorer.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgPrinter.h"
#include "closing/Pipeline.h"
#include "explorer/Search.h"

#include <cstdio>

using namespace closer;

int main() {
  // An open reactive program: a tiny "door controller". The environment
  // provides badge codes; the controller unlocks or buzzes, and a monitor
  // process audits the unlock count.
  const char *Source = R"(
chan events[4];

proc controller(master) {
  var badge;
  var tries;
  for (tries = 0; tries < 2; tries = tries + 1) {
    badge = env_input();
    if (badge == master)
      send(events, 'unlock');
    else
      send(events, 'buzz');
  }
  send(events, 'off');
}

proc monitor() {
  var ev;
  var unlocks = 0;
  ev = recv(events);
  while (ev != 'off') {
    if (ev == 'unlock')
      unlocks = unlocks + 1;
    VS_assert(unlocks <= 2);
    ev = recv(events);
  }
}

process ctrl = controller(env);
process mon = monitor();
)";

  std::printf("=== open program (MiniC) ===\n%s\n", Source);

  // Step 2: close it. closeSource runs parse -> sema -> CFG -> analysis ->
  // transformation -> verification.
  CloseResult R = closeSource(Source);
  if (!R.ok()) {
    std::printf("closing failed:\n%s\n", R.Diags.str().c_str());
    return 1;
  }

  std::printf("=== closing statistics ===\n");
  std::printf("  nodes: %zu -> %zu\n", R.Stats.NodesBefore,
              R.Stats.NodesAfter);
  std::printf("  env interface calls removed: %zu\n",
              R.Stats.EnvCallsRemoved);
  std::printf("  parameters removed:          %zu\n", R.Stats.ParamsRemoved);
  std::printf("  VS_toss conditionals added:  %zu\n",
              R.Stats.TossNodesInserted);

  std::printf("\n=== closed program (emitted source) ===\n%s\n",
              emitModuleSource(*R.Closed).c_str());

  std::printf("=== closed controller CFG ===\n%s\n",
              printCfg(*R.Closed->findProc("controller")).c_str());

  // Step 4: systematic state-space exploration.
  SearchOptions Opts;
  Opts.MaxDepth = 30;
  Explorer Ex(*R.Closed, Opts);
  SearchStats Stats = Ex.run();

  std::printf("=== exploration ===\n%s\n", Stats.str().c_str());
  for (const ErrorReport &Rep : Ex.reports())
    std::printf("\nreport:\n%s", Rep.str().c_str());

  std::printf("\nThe closed system covers every behavior of the open system "
              "under any environment,\nwithout enumerating badge codes: the "
              "badge test became a VS_toss choice.\n");
  return 0;
}
