//===- bench_figures.cpp - E1/E2: regenerate Figures 2 and 3 ----------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// Regenerates the paper's Figure 2 (procedure p and its closed form G'_p)
// and Figure 3 (procedure q — same closed form, optimal translation), then
// times the transformation.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "cfg/CfgPrinter.h"
#include "explorer/Search.h"

#include <benchmark/benchmark.h>

using namespace closer;

namespace {

const char *figure2() {
  return R"(
chan evens[16];
chan odds[16];

proc p(x) {
  var cnt = 0;
  var y;
  while (cnt < 10) {
    y = x % 2;
    if (y == 0)
      send(evens, cnt);
    else
      send(odds, cnt);
    cnt = cnt + 1;
  }
}

process main = p(env);
)";
}

const char *figure3() {
  return R"(
chan evens[16];
chan odds[16];

proc q(x) {
  var cnt = 0;
  var y;
  while (cnt < 10) {
    y = x % 2;
    if (y == 0)
      send(evens, cnt);
    else
      send(odds, cnt);
    x = x / 2;
    cnt = cnt + 1;
  }
}

process main = q(env);
)";
}

void printFigure(const char *Title, const char *Source) {
  std::printf("==================================================\n");
  std::printf("%s\n", Title);
  std::printf("==================================================\n");
  std::printf("--- original (open) ---\n%s\n", Source);
  CloseResult R = closeSource(Source);
  if (!R.ok()) {
    std::printf("closing failed:\n%s\n", R.Diags.str().c_str());
    return;
  }
  const ProcCfg &Orig = R.Open->Procs[0];
  const ProcCfg &Closed = R.Closed->Procs[0];
  std::printf("--- original control-flow graph ---\n%s\n",
              printCfg(Orig).c_str());
  std::printf("--- closed control-flow graph ---\n%s\n",
              printCfg(Closed).c_str());
  std::printf("--- closed program (source form) ---\n%s\n",
              emitModuleSource(*R.Closed).c_str());
  std::printf("statistics: nodes %zu -> %zu, toss nodes %zu, params "
              "removed %zu, statements eliminated %zu\n\n",
              R.Stats.NodesBefore, R.Stats.NodesAfter,
              R.Stats.TossNodesInserted, R.Stats.ParamsRemoved,
              R.Stats.NodesEliminated);
}

void BM_CloseFigure2(benchmark::State &State) {
  auto Mod = benchCompile(figure2());
  for (auto _ : State) {
    Module Closed = closeModule(*Mod);
    benchmark::DoNotOptimize(&Closed);
  }
}
BENCHMARK(BM_CloseFigure2);

void BM_CloseFigure3(benchmark::State &State) {
  auto Mod = benchCompile(figure3());
  for (auto _ : State) {
    Module Closed = closeModule(*Mod);
    benchmark::DoNotOptimize(&Closed);
  }
}
BENCHMARK(BM_CloseFigure3);

/// Exploration of the closed figure programs: 2^10 branch paths each.
void BM_ExploreClosedFigure(benchmark::State &State) {
  CloseResult R = closeSource(figure3());
  uint64_t Runs = 0;
  for (auto _ : State) {
    SearchOptions Opts;
    Opts.MaxDepth = 25;
    Explorer Ex(*R.Closed, Opts);
    SearchStats Stats = Ex.run();
    Runs = Stats.Runs;
  }
  State.counters["paths"] = static_cast<double>(Runs);
}
BENCHMARK(BM_ExploreClosedFigure);

} // namespace

int main(int argc, char **argv) {
  printFigure("Figure 2: procedure p -> G'_p (strict over-approximation)",
              figure2());
  printFigure("Figure 3: procedure q -> G'_q (optimal translation; "
              "identical to G'_p)",
              figure3());

  // Verify the headline claim in-line for the record.
  CloseResult Rp = closeSource(figure2());
  CloseResult Rq = closeSource(figure3());
  std::string Lp = printCfg(Rp.Closed->Procs[0]);
  std::string Lq = printCfg(Rq.Closed->Procs[0]);
  Lp.erase(0, Lp.find('\n'));
  Lq.erase(0, Lq.find('\n'));
  std::printf("close(p) == close(q) (modulo name): %s\n\n",
              Lp == Lq ? "YES (paper's claim reproduced)" : "NO (BUG)");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
