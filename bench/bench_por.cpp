//===- bench_por.cpp - E7: partial-order reduction effectiveness ------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// VeriSoft's state-less search is made tractable by persistent-set and
// sleep-set partial-order reduction ([God96], cited as the key enabler in
// §2). Two workload families:
//
//  * independent pairs (disjoint footprints): persistent sets collapse the
//    exponential interleaving product to a single order — expect states to
//    stay flat instead of exploding with the pair count;
//  * dining philosophers (cyclic conflicts): persistent sets cannot split
//    the processes, sleep sets still prune commuting schedules; deadlock
//    detection must survive the reduction.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "explorer/Search.h"

#include <benchmark/benchmark.h>

using namespace closer;

namespace {

SearchStats explore(const Module &Mod, bool Persistent, bool Sleep,
                    size_t Depth = 64, uint64_t MaxRuns = 2000000) {
  SearchOptions Opts;
  Opts.MaxDepth = Depth;
  Opts.MaxRuns = MaxRuns;
  Opts.UsePersistentSets = Persistent;
  Opts.UseSleepSets = Sleep;
  Explorer Ex(Mod, Opts);
  return Ex.run();
}

void reportRow(const char *Workload, const char *Mode,
               const SearchStats &Stats) {
  std::printf("%-22s %-18s %10llu %10llu %10llu %9llu %s\n", Workload, Mode,
              static_cast<unsigned long long>(Stats.StatesVisited),
              static_cast<unsigned long long>(Stats.Runs),
              static_cast<unsigned long long>(Stats.TreeTransitions),
              static_cast<unsigned long long>(Stats.Deadlocks),
              Stats.Completed ? "" : "(budget!)");
}

void BM_IndependentPairs(benchmark::State &State) {
  int Pairs = static_cast<int>(State.range(0));
  bool Por = State.range(1) != 0;
  auto Mod = benchCompile(independentPairsProgram(Pairs));
  SearchStats Stats;
  for (auto _ : State)
    Stats = explore(*Mod, Por, Por, 64, 300000);
  State.counters["pairs"] = Pairs;
  State.counters["por"] = Por;
  State.counters["states"] = static_cast<double>(Stats.StatesVisited);
  State.counters["paths"] = static_cast<double>(Stats.Runs);
}
BENCHMARK(BM_IndependentPairs)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({4, 1})
    ->Args({6, 1})
    ->Unit(benchmark::kMillisecond);

void BM_Philosophers(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  bool Por = State.range(1) != 0;
  auto Mod = benchCompile(philosophersProgram(N));
  SearchStats Stats;
  for (auto _ : State)
    Stats = explore(*Mod, Por, Por, 64, 300000);
  State.counters["philosophers"] = N;
  State.counters["por"] = Por;
  State.counters["states"] = static_cast<double>(Stats.StatesVisited);
  State.counters["deadlocks"] = static_cast<double>(Stats.Deadlocks);
}
BENCHMARK(BM_Philosophers)
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::printf("E7: partial-order reduction (persistent + sleep sets)\n\n");
  std::printf("%-22s %-18s %10s %10s %10s %9s\n", "workload", "mode",
              "states", "paths", "trans", "deadlocks");

  for (int Pairs = 2; Pairs <= 4; ++Pairs) {
    auto Mod = benchCompile(independentPairsProgram(Pairs));
    std::string Name = "pairs=" + std::to_string(Pairs);
    reportRow(Name.c_str(), "full",
              explore(*Mod, false, false, 64, 300000));
    reportRow(Name.c_str(), "sleep-only", explore(*Mod, false, true));
    reportRow(Name.c_str(), "persistent+sleep", explore(*Mod, true, true));
  }
  for (int N = 3; N <= 4; ++N) {
    auto Mod = benchCompile(philosophersProgram(N));
    std::string Name = "philosophers=" + std::to_string(N);
    reportRow(Name.c_str(), "full",
              explore(*Mod, false, false, 64, 300000));
    reportRow(Name.c_str(), "persistent+sleep", explore(*Mod, true, true));
  }
  std::printf("\nDeadlock counts must be nonzero in every philosophers row: "
              "the reduction\npreserves deadlocks while cutting states.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
