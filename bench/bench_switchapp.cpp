//===- bench_switchapp.cpp - E6: the call-processing case study -------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// The §6 claim: a large multi-process call-processing application can be
// closed completely automatically (manual closing is impractical) and then
// analyzed with VeriSoft. Sweeps the application size and reports, per
// configuration: source size, interface size eliminated, closing time, and
// exploration results (including whether the seeded trunk-leak defect is
// found).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "explorer/Search.h"
#include "switchapp/SwitchApp.h"

#include <benchmark/benchmark.h>
#include <chrono>

using namespace closer;

namespace {

void BM_CloseSwitchApp(benchmark::State &State) {
  SwitchAppConfig Config;
  Config.NumLines = static_cast<int>(State.range(0));
  Config.EventsPerLine = 3;
  Config.HandlerVariants = Config.NumLines; // One subscriber class per line.
  std::string Source = generateSwitchAppSource(Config);
  auto Mod = benchCompile(Source);
  ClosingStats Stats;
  for (auto _ : State) {
    ClosingStats Fresh;
    Module Closed = closeModule(*Mod, {}, &Fresh);
    benchmark::DoNotOptimize(&Closed);
    Stats = Fresh;
  }
  State.counters["lines"] = Config.NumLines;
  State.counters["src_bytes"] = static_cast<double>(Source.size());
  State.counters["nodes"] = static_cast<double>(Stats.NodesBefore);
  State.counters["env_calls_removed"] =
      static_cast<double>(Stats.EnvCallsRemoved);
  State.counters["tosses"] = static_cast<double>(Stats.TossNodesInserted);
}
BENCHMARK(BM_CloseSwitchApp)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ExploreClosedSwitchApp(benchmark::State &State) {
  SwitchAppConfig Config;
  Config.NumLines = static_cast<int>(State.range(0));
  Config.NumTrunks = 1;
  Config.EventsPerLine = 1;
  CloseResult R = closeSource(generateSwitchAppSource(Config));
  if (!R.ok())
    std::abort();
  SearchStats Stats;
  for (auto _ : State) {
    SearchOptions Opts;
    Opts.MaxDepth = 30;
    Opts.MaxRuns = 20000;
    Explorer Ex(*R.Closed, Opts);
    Stats = Ex.run();
  }
  State.counters["lines"] = Config.NumLines;
  State.counters["states"] = static_cast<double>(Stats.StatesVisited);
  State.counters["deadlocks"] = static_cast<double>(Stats.Deadlocks);
}
BENCHMARK(BM_ExploreClosedSwitchApp)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::printf("E6: automatic closing of the call-processing application\n\n");
  std::printf("%-8s %-10s %-8s %-8s %-8s %-10s %-8s %-10s %-10s\n", "lines",
              "src-bytes", "procs", "procsS", "nodes", "env-gone", "tosses",
              "close-ms", "closed?");
  for (int Lines : {1, 2, 4, 8, 16, 32}) {
    SwitchAppConfig Config;
    Config.NumLines = Lines;
    Config.EventsPerLine = 3;
    Config.HandlerVariants = Lines; // Code size scales with lines.
    std::string Source = generateSwitchAppSource(Config);
    auto Mod = benchCompile(Source);

    auto Start = std::chrono::steady_clock::now();
    ClosingStats Stats;
    Module Closed = closeModule(*Mod, {}, &Stats);
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
    EnvAnalysis After(Closed);
    std::printf("%-8d %-10zu %-8zu %-8zu %-8zu %-10zu %-8zu %-10.2f %-10s\n",
                Lines, Source.size(), Mod->Procs.size(),
                Mod->Processes.size(), Stats.NodesBefore,
                Stats.EnvCallsRemoved, Stats.TossNodesInserted, Ms,
                After.moduleIsClosed() ? "yes" : "NO");
  }

  std::printf("\nbug hunt: seeded trunk leak (2 lines, 1 trunk, 2 events)\n");
  SwitchAppConfig Buggy;
  Buggy.NumLines = 2;
  Buggy.NumTrunks = 1;
  Buggy.EventsPerLine = 2;
  Buggy.WithRegistration = false;
  Buggy.WithForwarding = false;
  Buggy.SeedTrunkLeakBug = true;
  CloseResult R = closeSource(generateSwitchAppSource(Buggy));
  SearchOptions Opts;
  Opts.MaxDepth = 60;
  Opts.StopOnFirstError = true;
  Explorer Ex(*R.Closed, Opts);
  SearchStats Stats = Ex.run();
  std::printf("search: %s\n", Stats.str().c_str());
  std::printf("defect %s\n\n", Stats.Deadlocks ? "FOUND (deadlock trace "
                                                 "recorded)"
                                               : "NOT FOUND");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
