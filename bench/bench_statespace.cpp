//===- bench_statespace.cpp - E3: naive env vs transformed state space ------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// Quantifies the paper's §3 argument: pairing an open system with an
// explicit most-general environment over an input domain of size D yields a
// state space that grows with D (and is infinite for the unrestricted
// environment), while the transformation's state space is independent of
// the input domain.
//
// Series reported (filter program, K = 3 environment reads):
//   naive(D)  for D in {2, 4, 8, ..., 1024}: explored states and paths
//   closed    : explored states and paths (one row, no D axis)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "envgen/NaiveClose.h"
#include "explorer/Search.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

using namespace closer;

namespace {

constexpr int FilterReads = 2;
constexpr uint64_t RunBudget = 400000;

SearchOptions exploreOptions() {
  SearchOptions Opts;
  Opts.MaxDepth = 16;
  Opts.MaxRuns = RunBudget; // The naive side explodes; cap and report.
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  return Opts;
}

/// Runs one exploration through the closer::explore() façade and reports
/// wall-clock seconds alongside the stats.
double timedExplore(const Module &Mod, const SearchOptions &Opts,
                    SearchStats &Out) {
  auto T0 = std::chrono::steady_clock::now();
  Out = explore(Mod, Opts).Stats;
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

SearchStats exploreStats(const Module &Mod) {
  return explore(Mod, exploreOptions()).Stats;
}

const char *execName(ExecMode M) {
  switch (M) {
  case ExecMode::Interp: return "interp";
  case ExecMode::Vm: return "vm";
  case ExecMode::Both: return "both";
  }
  return "?";
}

void emitExploreRecord(BenchJson &Json, const std::string &Config,
                       const SearchStats &Stats, const SearchOptions &Opts,
                       double Seconds) {
  Json.record(Config)
      .str("exec", execName(Opts.Exec))
      .count("checkpoint_interval", Opts.CheckpointInterval)
      .count("jobs", Opts.Jobs)
      .count("state_cache_bits", Opts.StateCacheBits)
      .count("states", Stats.StatesVisited)
      .count("paths", Stats.Runs)
      .count("tree_transitions", Stats.TreeTransitions)
      .count("transitions_executed", Stats.Transitions)
      .count("transitions_replayed", Stats.TransitionsReplayed)
      .count("transitions_restored", Stats.TransitionsRestored)
      .count("cache_hits", Stats.CacheHits)
      .count("cache_inserts", Stats.CacheInserts)
      .count("cache_saturated", Stats.CacheSaturated)
      .count("completed", Stats.Completed ? 1 : 0)
      .count("steals", Stats.Steals)
      .count("wakeups", Stats.Wakeups)
      .count("arena_bytes", Stats.ArenaBytes)
      .count("pool_fresh", Stats.PoolFresh)
      .num("seconds", Seconds)
      .num("states_per_sec", safeRate(Stats.StatesVisited, Seconds))
      .num("transitions_per_sec", safeRate(Stats.TreeTransitions, Seconds));
}

void BM_NaiveEnvironment(benchmark::State &State) {
  int64_t Domain = State.range(0);
  auto Open = benchCompile(filterProgram(FilterReads));
  Module Naive = naiveCloseModule(*Open, {Domain - 1});
  SearchStats Stats;
  for (auto _ : State)
    Stats = exploreStats(Naive);
  State.counters["domain"] = static_cast<double>(Domain);
  State.counters["states"] = static_cast<double>(Stats.StatesVisited);
  State.counters["paths"] = static_cast<double>(Stats.Runs);
  State.counters["transitions"] = static_cast<double>(Stats.TreeTransitions);
}
BENCHMARK(BM_NaiveEnvironment)->RangeMultiplier(4)->Range(2, 128);

void BM_TransformedClosed(benchmark::State &State) {
  CloseResult R = closeSource(filterProgram(FilterReads));
  if (!R.ok())
    std::abort();
  SearchStats Stats;
  for (auto _ : State)
    Stats = exploreStats(*R.Closed);
  State.counters["states"] = static_cast<double>(Stats.StatesVisited);
  State.counters["paths"] = static_cast<double>(Stats.Runs);
  State.counters["transitions"] = static_cast<double>(Stats.TreeTransitions);
}
BENCHMARK(BM_TransformedClosed);

/// Work-stealing scheduler series (steal_grid): the cached grid workload
/// at j=1 and j=min(nproc, 4) workers (j=2 on a single-core box, purely
/// for the counter plumbing — scripts/check.sh applies the speedup gate
/// only when real parallelism exists). Beyond throughput, the rows carry
/// the scheduler/allocator counters the scheduler layer introduced:
///
///  * steals / wakeups — total scheduler traffic, plus a per-worker steal
///    breakdown so load imbalance is visible, not just averaged away;
///  * arena_bytes / pool_fresh — upstream-allocator traffic. The
///    zero-steady-state-allocation contract says that once the snapshot
///    and vector pools warm up, expanding a state touches no global
///    allocator: fresh pool constructions are bounded by the DFS stack's
///    high-water mark (plus retained checkpoints), which is orders of
///    magnitude below the state count on this workload. Enforced here as
///    pool_fresh * 50 < states on the sequential row, not eyeballed.
///
/// Tree-shaped stats must agree between the rows (same determinism
/// contract as the cached_grid series). Returns nonzero on gate failure.
/// Also runnable standalone (`bench_statespace --steal-only`), which is
/// how scripts/check.sh drives it without paying for the full bench.
int runStealGridSeries(BenchJson &Json) {
  const int GridIters = 512;
  auto Grid = benchCompile(semGridProgram(GridIters));
  SearchOptions GridOpts;
  GridOpts.MaxDepth = uint64_t(1) << 24;
  GridOpts.MaxRuns = 0;
  GridOpts.UsePersistentSets = false;
  GridOpts.UseSleepSets = false;
  GridOpts.CheckpointInterval = 8;
  GridOpts.StateCacheBits = 23;

  unsigned HW = std::thread::hardware_concurrency();
  int JN = HW > 1 ? static_cast<int>(HW < 4 ? HW : 4) : 2;
  std::printf("steal_grid series: sem grid %d x %d, --state-cache=23 "
              "--checkpoint-interval 8, work-stealing scheduler\n\n",
              GridIters, GridIters);
  std::printf("%-18s %12s %10s %10s %12s %14s\n", "variant", "states",
              "steals", "wakeups", "pool-fresh", "states/sec");
  SearchStats SeqSteal;
  for (int Jobs : {1, JN}) {
    SearchOptions Opts = GridOpts;
    Opts.Jobs = static_cast<size_t>(Jobs);
    auto T0 = std::chrono::steady_clock::now();
    SearchResult R = explore(*Grid, Opts);
    auto T1 = std::chrono::steady_clock::now();
    double Sec = std::chrono::duration<double>(T1 - T0).count();
    const SearchStats &S = R.Stats;
    std::printf("steal j=%-9d %12llu %10llu %10llu %12llu %14.0f\n", Jobs,
                static_cast<unsigned long long>(S.StatesVisited),
                static_cast<unsigned long long>(S.Steals),
                static_cast<unsigned long long>(S.Wakeups),
                static_cast<unsigned long long>(S.PoolFresh),
                Sec > 0 ? static_cast<double>(S.StatesVisited) / Sec : 0);
    std::string ByWorker;
    for (size_t W = 0; W != R.Workers.size(); ++W)
      ByWorker += (W ? "," : "") + std::to_string(R.Workers[W].Steals);
    Json.record("steal_grid_j" + std::to_string(Jobs))
        .str("exec", execName(Opts.Exec))
        .count("checkpoint_interval", Opts.CheckpointInterval)
        .count("jobs", Opts.Jobs)
        .count("state_cache_bits", Opts.StateCacheBits)
        .count("states", S.StatesVisited)
        .count("tree_transitions", S.TreeTransitions)
        .count("cache_inserts", S.CacheInserts)
        .count("completed", S.Completed ? 1 : 0)
        .count("steals", S.Steals)
        .count("wakeups", S.Wakeups)
        .count("arena_bytes", S.ArenaBytes)
        .count("pool_fresh", S.PoolFresh)
        .str("steals_by_worker", ByWorker)
        .num("seconds", Sec)
        .num("states_per_sec", safeRate(S.StatesVisited, Sec));
    if (!S.Completed || S.CacheSaturated || S.DepthLimitHits) {
      std::fprintf(stderr, "steal grid run violated the determinism "
                           "contract preconditions!\n");
      return 1;
    }
    if (Jobs == 1) {
      SeqSteal = S;
      if (S.PoolFresh * 50 >= S.StatesVisited) {
        std::fprintf(stderr,
                     "steady-state allocation gate failed: pool_fresh=%llu "
                     "vs states=%llu — expansion is hitting the global "
                     "allocator\n",
                     static_cast<unsigned long long>(S.PoolFresh),
                     static_cast<unsigned long long>(S.StatesVisited));
        return 1;
      }
    } else if (S.StatesVisited != SeqSteal.StatesVisited ||
               S.TreeTransitions != SeqSteal.TreeTransitions ||
               S.CacheInserts != SeqSteal.CacheInserts) {
      std::fprintf(stderr, "steal grid tree stats diverged between jobs=1 "
                           "and jobs=%d!\n", JN);
      return 1;
    }
  }
  std::printf("\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  // `--steal-only`: run just the scheduler series and write its artifact —
  // the mode scripts/check.sh uses for the steal_grid gates.
  for (int A = 1; A < argc; ++A)
    if (std::string(argv[A]) == "--steal-only") {
      BenchJson Json;
      if (runStealGridSeries(Json))
        return 1;
      Json.write("BENCH_statespace_steal.json");
      return 0;
    }

  BenchJson Json;

  // Print the headline series as a table (the "figure" this regenerates).
  std::printf("E3: state-space size, naive most-general environment vs "
              "transformation\n");
  std::printf("workload: filter program, %d environment reads, full "
              "exploration (no POR)\n\n", FilterReads);
  std::printf("%-14s %12s %12s %14s\n", "variant", "states", "paths",
              "transitions");

  auto Open = benchCompile(filterProgram(FilterReads));
  for (int64_t Domain = 2; Domain <= 1024; Domain *= 2) {
    Module Naive = naiveCloseModule(*Open, {Domain - 1});
    SearchStats Stats;
    double Seconds = timedExplore(Naive, exploreOptions(), Stats);
    std::printf("naive D=%-6lld %12llu %12llu %14llu%s\n",
                static_cast<long long>(Domain),
                static_cast<unsigned long long>(Stats.StatesVisited),
                static_cast<unsigned long long>(Stats.Runs),
                static_cast<unsigned long long>(Stats.TreeTransitions),
                Stats.Completed ? "" : "  (run budget hit)");
    emitExploreRecord(Json, "naive_D" + std::to_string(Domain), Stats,
                      exploreOptions(), Seconds);
  }
  CloseResult R = closeSource(filterProgram(FilterReads));
  SearchStats Stats;
  double Seconds = timedExplore(*R.Closed, exploreOptions(), Stats);
  std::printf("%-14s %12llu %12llu %14llu\n", "closed (ours)",
              static_cast<unsigned long long>(Stats.StatesVisited),
              static_cast<unsigned long long>(Stats.Runs),
              static_cast<unsigned long long>(Stats.TreeTransitions));
  emitExploreRecord(Json, "closed", Stats, exploreOptions(), Seconds);
  std::printf("\nThe naive series grows as (D)^%d; the transformed program "
              "is domain-independent\n(2^%d branch paths, one per "
              "even/odd choice sequence).\n\n",
              FilterReads, FilterReads);

  // Checkpointed vs stateless backtracking on the deepest configuration:
  // two dining philosophers eating many meals build a state space of long
  // paths, so the stateless search's O(d^2) prefix re-execution dominates
  // and snapshot restoration pays off most. Tree-shaped stats must match
  // between the two rows; only executed/replayed/restored counts and wall
  // time may differ.
  std::printf("deep series: 2 philosophers x 6 meals, no POR — stateless "
              "(K=0)\nvs checkpointed (K=4) backtracking\n\n");
  auto Deep = benchCompile(philosophersProgram(2, 6));
  SearchOptions DeepOpts;
  DeepOpts.MaxDepth = 200;
  DeepOpts.UsePersistentSets = false;
  DeepOpts.UseSleepSets = false;
  std::printf("%-18s %12s %14s %12s %14s\n", "variant", "states",
              "transitions", "seconds", "states/sec");
  SearchStats Stateless;
  for (size_t K : {size_t{0}, size_t{4}}) {
    SearchOptions Opts = DeepOpts;
    Opts.CheckpointInterval = K;
    SearchStats S;
    double Sec = timedExplore(*Deep, Opts, S);
    std::printf("deep K=%-11zu %12llu %14llu %12.3f %14.0f\n", K,
                static_cast<unsigned long long>(S.StatesVisited),
                static_cast<unsigned long long>(S.Transitions), Sec,
                Sec > 0 ? static_cast<double>(S.StatesVisited) / Sec : 0);
    emitExploreRecord(Json, "deep_K" + std::to_string(K), S, Opts, Sec);
    if (K == 0)
      Stateless = S;
    else if (S.StatesVisited != Stateless.StatesVisited ||
             S.TreeTransitions != Stateless.TreeTransitions) {
      std::fprintf(stderr, "checkpointed tree stats diverged from "
                           "stateless!\n");
      return 1;
    }
  }
  std::printf("\n");

  // Concurrent state caching on the deep grid workload: Iters^2 distinct
  // states, each reachable along combinatorially many interleavings, so
  // the uncached search tree is exponential and only a visited-state cache
  // makes the workload feasible. One budget-capped uncached row records
  // that baseline; the cached rows run the same exploration to completion
  // sequentially and with 4 workers sharing the fingerprint table. The
  // determinism contract (ALGORITHM.md "Concurrent state caching") says
  // the tree-shaped stats of completed, unsaturated cached runs must not
  // depend on the job count — enforced here, not just eyeballed.
  const int GridIters = 512;
  std::printf("cached deep series: sem grid %d x %d (2 procs, shared "
              "semaphore), no POR\n--state-cache=23 --checkpoint-interval 8, "
              "sequential vs 4 workers\n\n",
              GridIters, GridIters);
  auto Grid = benchCompile(semGridProgram(GridIters));
  SearchOptions GridOpts;
  GridOpts.MaxDepth = uint64_t(1) << 24;
  GridOpts.MaxRuns = 0; // Run to exhaustion; the cache keeps it small.
  GridOpts.UsePersistentSets = false;
  GridOpts.UseSleepSets = false;
  GridOpts.CheckpointInterval = 8;
  std::printf("%-18s %12s %14s %12s %14s\n", "variant", "states",
              "cache-inserts", "seconds", "states/sec");
  {
    SearchOptions Opts = GridOpts;
    Opts.MaxRuns = 100000; // Uncached the tree is exponential: cap, report.
    SearchStats S;
    double Sec = timedExplore(*Grid, Opts, S);
    std::printf("grid uncached      %12llu %14s %12.3f %14.0f  (capped)\n",
                static_cast<unsigned long long>(S.StatesVisited), "-", Sec,
                Sec > 0 ? static_cast<double>(S.StatesVisited) / Sec : 0);
    emitExploreRecord(Json, "cached_grid_uncached_capped", S, Opts, Sec);
  }
  SearchStats SeqCached;
  for (int Jobs : {1, 4}) {
    SearchOptions Opts = GridOpts;
    Opts.StateCacheBits = 23;
    Opts.Jobs = Jobs;
    SearchStats S;
    double Sec = timedExplore(*Grid, Opts, S);
    std::printf("grid cached j=%-4d %12llu %14llu %12.3f %14.0f\n", Jobs,
                static_cast<unsigned long long>(S.StatesVisited),
                static_cast<unsigned long long>(S.CacheInserts), Sec,
                Sec > 0 ? static_cast<double>(S.StatesVisited) / Sec : 0);
    emitExploreRecord(Json, "cached_grid_j" + std::to_string(Jobs), S, Opts,
                      Sec);
    if (!S.Completed || S.CacheSaturated || S.DepthLimitHits) {
      std::fprintf(stderr, "cached grid run violated the determinism "
                           "contract preconditions!\n");
      return 1;
    }
    if (Jobs == 1)
      SeqCached = S;
    else if (S.StatesVisited != SeqCached.StatesVisited ||
             S.TreeTransitions != SeqCached.TreeTransitions ||
             S.CacheInserts != SeqCached.CacheInserts) {
      std::fprintf(stderr, "cached tree stats diverged between jobs=1 and "
                           "jobs=4!\n");
      return 1;
    }
  }
  std::printf("\n");

  // Transition-engine series: tree-walking interpreter vs direct-threaded
  // bytecode VM on identical workloads. The engines are interchangeable by
  // contract (ALGORITHM.md "Compiled transition execution"): every
  // tree-shaped stat must match bit-for-bit, asserted below on every bench
  // run, not just eyeballed. Two workloads bracket the engine's leverage:
  //
  //  * vm_deep — deep stateless search over transitions that carry real
  //    invisible computation (arithmetic blocks between visible ops, the
  //    shape of actual protocol handlers). Stateless backtracking
  //    re-executes prefixes, so wall time is dominated by transition
  //    evaluation and the engine difference shows at full strength.
  //  * vm_grid — the cached grid workload. Snapshot restore and
  //    fingerprinting dominate there; the rows document where the VM does
  //    *not* pay off, so the headline ratio can't be mistaken for a
  //    universal speedup.
  const int VmIters = 40, VmRounds = 30, VmGridIters = 256;
  std::printf("engine series: interpreter vs bytecode VM\nvm_deep: 2 "
              "workers x %d iterations, %d arithmetic rounds per "
              "transition, stateless, no POR\nvm_grid: sem grid %d x %d, "
              "--state-cache=23 --checkpoint-interval 8\n\n",
              VmIters, VmRounds, VmGridIters, VmGridIters);
  std::printf("%-18s %12s %14s %12s %16s\n", "variant", "states",
              "transitions", "seconds", "transitions/sec");
  auto EngineStatsDiverge = [](const SearchStats &A, const SearchStats &B) {
    return A.StatesVisited != B.StatesVisited || A.Runs != B.Runs ||
           A.TreeTransitions != B.TreeTransitions ||
           A.Transitions != B.Transitions || A.Deadlocks != B.Deadlocks ||
           A.Terminations != B.Terminations ||
           A.AssertionViolations != B.AssertionViolations ||
           A.Divergences != B.Divergences ||
           A.RuntimeErrors != B.RuntimeErrors ||
           A.DepthLimitHits != B.DepthLimitHits ||
           A.Completed != B.Completed;
  };
  double DeepRatio = 0;
  {
    auto DeepVm = benchCompile(vmComputeProgram(VmIters, VmRounds));
    SearchOptions Opts;
    Opts.MaxDepth = 400;
    Opts.MaxRuns = 4000;
    Opts.UsePersistentSets = false;
    Opts.UseSleepSets = false;
    Opts.CheckpointInterval = 0; // Stateless: replay goes through the engine.
    SearchStats InterpStats;
    double InterpSec = 0;
    for (ExecMode Mode : {ExecMode::Interp, ExecMode::Vm}) {
      Opts.Exec = Mode;
      SearchStats S;
      double Sec = timedExplore(*DeepVm, Opts, S);
      std::printf("vm_deep %-10s %12llu %14llu %12.3f %16.0f\n",
                  execName(Mode),
                  static_cast<unsigned long long>(S.StatesVisited),
                  static_cast<unsigned long long>(S.Transitions), Sec,
                  safeRate(S.TreeTransitions, Sec));
      emitExploreRecord(Json, std::string("vm_deep_") + execName(Mode), S,
                        Opts, Sec);
      if (Mode == ExecMode::Interp) {
        InterpStats = S;
        InterpSec = Sec;
      } else if (EngineStatsDiverge(S, InterpStats)) {
        std::fprintf(stderr, "vm_deep tree stats diverged between the "
                             "interpreter and the VM!\n");
        return 1;
      } else if (Sec > 0) {
        DeepRatio = InterpSec / Sec;
      }
    }
  }
  {
    auto GridVm = benchCompile(semGridProgram(VmGridIters));
    SearchOptions Opts = GridOpts;
    Opts.StateCacheBits = 23;
    SearchStats InterpStats;
    for (ExecMode Mode : {ExecMode::Interp, ExecMode::Vm}) {
      Opts.Exec = Mode;
      SearchStats S;
      double Sec = timedExplore(*GridVm, Opts, S);
      std::printf("vm_grid %-10s %12llu %14llu %12.3f %16.0f\n",
                  execName(Mode),
                  static_cast<unsigned long long>(S.StatesVisited),
                  static_cast<unsigned long long>(S.Transitions), Sec,
                  safeRate(S.TreeTransitions, Sec));
      emitExploreRecord(Json, std::string("vm_grid_") + execName(Mode), S,
                        Opts, Sec);
      if (Mode == ExecMode::Interp)
        InterpStats = S;
      else if (EngineStatsDiverge(S, InterpStats) ||
               S.CacheInserts != InterpStats.CacheInserts) {
        std::fprintf(stderr, "vm_grid tree stats diverged between the "
                             "interpreter and the VM!\n");
        return 1;
      }
    }
  }
  std::printf("\nvm_deep interpreter/VM wall-time ratio: %.2fx\n\n",
              DeepRatio);

  if (runStealGridSeries(Json))
    return 1;

  Json.write("BENCH_statespace.json");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
