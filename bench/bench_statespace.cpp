//===- bench_statespace.cpp - E3: naive env vs transformed state space ------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// Quantifies the paper's §3 argument: pairing an open system with an
// explicit most-general environment over an input domain of size D yields a
// state space that grows with D (and is infinite for the unrestricted
// environment), while the transformation's state space is independent of
// the input domain.
//
// Series reported (filter program, K = 3 environment reads):
//   naive(D)  for D in {2, 4, 8, ..., 1024}: explored states and paths
//   closed    : explored states and paths (one row, no D axis)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "envgen/NaiveClose.h"
#include "explorer/Search.h"

#include <benchmark/benchmark.h>

using namespace closer;

namespace {

constexpr int FilterReads = 2;
constexpr uint64_t RunBudget = 400000;

SearchStats explore(const Module &Mod) {
  SearchOptions Opts;
  Opts.MaxDepth = 16;
  Opts.MaxRuns = RunBudget; // The naive side explodes; cap and report.
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Explorer Ex(Mod, Opts);
  return Ex.run();
}

void BM_NaiveEnvironment(benchmark::State &State) {
  int64_t Domain = State.range(0);
  auto Open = benchCompile(filterProgram(FilterReads));
  Module Naive = naiveCloseModule(*Open, {Domain - 1});
  SearchStats Stats;
  for (auto _ : State)
    Stats = explore(Naive);
  State.counters["domain"] = static_cast<double>(Domain);
  State.counters["states"] = static_cast<double>(Stats.StatesVisited);
  State.counters["paths"] = static_cast<double>(Stats.Runs);
  State.counters["transitions"] = static_cast<double>(Stats.TreeTransitions);
}
BENCHMARK(BM_NaiveEnvironment)->RangeMultiplier(4)->Range(2, 128);

void BM_TransformedClosed(benchmark::State &State) {
  CloseResult R = closeSource(filterProgram(FilterReads));
  if (!R.ok())
    std::abort();
  SearchStats Stats;
  for (auto _ : State)
    Stats = explore(*R.Closed);
  State.counters["states"] = static_cast<double>(Stats.StatesVisited);
  State.counters["paths"] = static_cast<double>(Stats.Runs);
  State.counters["transitions"] = static_cast<double>(Stats.TreeTransitions);
}
BENCHMARK(BM_TransformedClosed);

} // namespace

int main(int argc, char **argv) {
  // Print the headline series as a table (the "figure" this regenerates).
  std::printf("E3: state-space size, naive most-general environment vs "
              "transformation\n");
  std::printf("workload: filter program, %d environment reads, full "
              "exploration (no POR)\n\n", FilterReads);
  std::printf("%-14s %12s %12s %14s\n", "variant", "states", "paths",
              "transitions");

  auto Open = benchCompile(filterProgram(FilterReads));
  for (int64_t Domain = 2; Domain <= 1024; Domain *= 2) {
    Module Naive = naiveCloseModule(*Open, {Domain - 1});
    SearchStats Stats = explore(Naive);
    std::printf("naive D=%-6lld %12llu %12llu %14llu%s\n",
                static_cast<long long>(Domain),
                static_cast<unsigned long long>(Stats.StatesVisited),
                static_cast<unsigned long long>(Stats.Runs),
                static_cast<unsigned long long>(Stats.TreeTransitions),
                Stats.Completed ? "" : "  (run budget hit)");
  }
  CloseResult R = closeSource(filterProgram(FilterReads));
  SearchStats Stats = explore(*R.Closed);
  std::printf("%-14s %12llu %12llu %14llu\n", "closed (ours)",
              static_cast<unsigned long long>(Stats.StatesVisited),
              static_cast<unsigned long long>(Stats.Runs),
              static_cast<unsigned long long>(Stats.TreeTransitions));
  std::printf("\nThe naive series grows as (D)^%d; the transformed program "
              "is domain-independent\n(2^%d branch paths, one per "
              "even/odd choice sequence).\n\n",
              FilterReads, FilterReads);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
