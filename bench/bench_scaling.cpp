//===- bench_scaling.cpp - E4: closing-time linearity ------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// The paper (§4): "The overall time complexity of the above algorithm is
// essentially linear in the size of G_j and G~_j since the transformation
// can be performed by a single traversal of both graphs." This benchmark
// sweeps program size and reports ns per (CFG node + define-use arc) — the
// ratio should stay flat.
//
// Two timings per size:
//   BM_AnalyzeAndClose: full pipeline cost (analysis + transformation);
//   BM_TransformOnly:   Figure 1 Steps 3-5 alone, given the analysis.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "cfg/CfgBuilder.h"
#include "cfg/CfgPrinter.h"
#include "dataflow/DefUse.h"
#include "explorer/Search.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "support/CorpusGen.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

using namespace closer;

namespace {

void BM_AnalyzeAndClose(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  auto Mod = benchCompile(scalingProgram(N));
  size_t Nodes = Mod->totalNodes();

  // Measure the define-use graph size once for the per-unit metric.
  EnvAnalysis Probe(*Mod);
  size_t DuArcs = 0;
  for (size_t P = 0; P != Mod->Procs.size(); ++P)
    DuArcs += Probe.dataflow(P).arcCount();

  for (auto _ : State) {
    Module Closed = closeModule(*Mod);
    benchmark::DoNotOptimize(&Closed);
  }
  State.counters["nodes"] = static_cast<double>(Nodes);
  State.counters["du_arcs"] = static_cast<double>(DuArcs);
  State.counters["ns_per_unit"] = benchmark::Counter(
      static_cast<double>(Nodes + DuArcs) * State.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_AnalyzeAndClose)
    ->RangeMultiplier(4)
    ->Range(128, 32768)
    ->Unit(benchmark::kMillisecond);

void BM_TransformOnly(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  auto Mod = benchCompile(scalingProgram(N));
  EnvAnalysis Analysis(*Mod);
  for (auto _ : State) {
    Module Closed = closeModule(*Mod, Analysis);
    benchmark::DoNotOptimize(&Closed);
  }
  State.counters["nodes"] = static_cast<double>(Mod->totalNodes());
  State.counters["ns_per_node"] = benchmark::Counter(
      static_cast<double>(Mod->totalNodes()) * State.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_TransformOnly)
    ->RangeMultiplier(4)
    ->Range(128, 32768)
    ->Unit(benchmark::kMillisecond);

void BM_FrontendCompile(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  std::string Src = scalingProgram(N);
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Mod = compileAndVerify(Src, Diags);
    benchmark::DoNotOptimize(Mod.get());
  }
  State.counters["source_bytes"] = static_cast<double>(Src.size());
}
BENCHMARK(BM_FrontendCompile)
    ->RangeMultiplier(4)
    ->Range(128, 32768)
    ->Unit(benchmark::kMillisecond);

void BM_ExploreJobs(benchmark::State &State) {
  // Speedup of the work-sharing parallel explorer over the same
  // state-space-heavy workload: dining philosophers without reduction.
  // The arg is the worker count; states_per_sec is the figure of merit
  // (it should scale with available cores — on a single-core machine all
  // job counts collapse to sequential throughput plus queue overhead).
  auto Mod = benchCompile(philosophersProgram(3, 2));
  SearchOptions Opts;
  Opts.MaxDepth = 14;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Opts.Jobs = static_cast<size_t>(State.range(0));

  uint64_t States = 0;
  for (auto _ : State) {
    SearchStats Stats = explore(*Mod, Opts).Stats;
    States = Stats.StatesVisited;
    benchmark::DoNotOptimize(&Stats);
  }
  State.counters["states"] = static_cast<double>(States);
  State.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(States) * State.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// Per-phase JSON trajectory
//===----------------------------------------------------------------------===//

/// One end-to-end run of the closing pipeline with every phase timed
/// separately, so a superlinear term is attributable to the phase that
/// grows, not just visible in the total.
struct PhaseProfile {
  // Phase wall times, seconds, pipeline order.
  double Parse = 0, Sema = 0, Lower = 0, Alias = 0, DefUse = 0, Taint = 0,
         Close = 0, Emit = 0;
  size_t Nodes = 0;
  size_t DuArcs = 0;

  double total() const {
    return Parse + Sema + Lower + Alias + DefUse + Taint + Close + Emit;
  }
  /// The closing pipeline proper — the analyses plus the Figure 1
  /// transform, i.e. what BM_AnalyzeAndClose times. Frontend and source
  /// emission are excluded: they are shared with every other tool mode
  /// and are not what the paper's linearity claim (§4) is about.
  double closing() const { return Alias + DefUse + Taint + Close; }
  /// Per-phase minimum of two runs — the usual min-of-reps noise filter,
  /// applied phase-wise (phases are independent measurements of the same
  /// deterministic work).
  void minWith(const PhaseProfile &O) {
    Parse = std::min(Parse, O.Parse);
    Sema = std::min(Sema, O.Sema);
    Lower = std::min(Lower, O.Lower);
    Alias = std::min(Alias, O.Alias);
    DefUse = std::min(DefUse, O.DefUse);
    Taint = std::min(Taint, O.Taint);
    Close = std::min(Close, O.Close);
    Emit = std::min(Emit, O.Emit);
  }
};

PhaseProfile profileClose(const std::string &Src) {
  using Clock = std::chrono::steady_clock;
  auto Sec = [](Clock::time_point A, Clock::time_point B) {
    return std::chrono::duration<double>(B - A).count();
  };
  PhaseProfile P;
  DiagnosticEngine Diags;

  auto T0 = Clock::now();
  auto AST = parseMiniC(Src, Diags);
  auto T1 = Clock::now();
  bool SemaOk = AST && checkProgram(*AST, Diags);
  auto T2 = Clock::now();
  std::unique_ptr<Module> Mod =
      SemaOk ? buildModule(*AST, Diags) : nullptr;
  auto T3 = Clock::now();
  if (!Mod) {
    std::fprintf(stderr, "bench workload failed to compile:\n%s\n",
                 Diags.str().c_str());
    std::abort();
  }
  AliasAnalysis Alias(*Mod);
  auto T4 = Clock::now();
  std::vector<std::unique_ptr<ProcDataflow>> Dataflows;
  std::vector<const ProcDataflow *> DataflowPtrs;
  for (const ProcCfg &Proc : Mod->Procs) {
    Dataflows.push_back(std::make_unique<ProcDataflow>(*Mod, Proc, Alias));
    DataflowPtrs.push_back(Dataflows.back().get());
  }
  auto T5 = Clock::now();
  EnvAnalysis Analysis(*Mod, Alias, DataflowPtrs);
  auto T6 = Clock::now();
  Module Closed = closeModule(*Mod, Analysis);
  auto T7 = Clock::now();
  std::string Out = emitModuleSource(Closed);
  auto T8 = Clock::now();
  benchmark::DoNotOptimize(Out.data());

  P.Parse = Sec(T0, T1);
  P.Sema = Sec(T1, T2);
  P.Lower = Sec(T2, T3);
  P.Alias = Sec(T3, T4);
  P.DefUse = Sec(T4, T5);
  P.Taint = Sec(T5, T6);
  P.Close = Sec(T6, T7);
  P.Emit = Sec(T7, T8);
  P.Nodes = Mod->totalNodes();
  for (const ProcDataflow *DF : DataflowPtrs)
    P.DuArcs += DF->arcCount();
  return P;
}

/// Emits one total row (config \p Name) plus one row per phase (config
/// "<Name>_<phase>"). The total row also carries `close_ns_per_unit`, the
/// closing-pipeline subtotal (alias + defuse + taint + close) — the series
/// scripts/check.sh gates for linearity. Gate shape, chosen from measured
/// behaviour: per-unit cost is flat (within noise) from N=8192 up — the
/// growing term this series originally exposed (still rising at N=8192) is
/// gone — while N=512 sits below the rest of the series because a ~500-stmt
/// module fits in cache between phases. Even the parse phase, a single
/// linear text scan, costs ~1.8x more per unit at N=131072 than at N=512 on
/// the same code, so a tight small-to-large ratio would gate the memory
/// hierarchy, not the algorithm. check.sh therefore asserts (a) the top
/// step N=32768 -> N=131072 stays within 1.3x (a superlinear term cannot
/// hide: it keeps growing where cache capacity is already exhausted) and
/// (b) the whole N=512 -> N=131072 envelope stays bounded.
void emitProfile(BenchJson &Json, const std::string &Name,
                 const PhaseProfile &P) {
  size_t Units = scalingUnits(P.Nodes, P.DuArcs);
  auto PerUnit = [Units](double Seconds) {
    return Units ? Seconds * 1e9 / static_cast<double>(Units) : 0;
  };
  Json.record(Name)
      .count("nodes", P.Nodes)
      .count("du_arcs", P.DuArcs)
      .num("seconds", P.total())
      .num("ns_per_unit", PerUnit(P.total()))
      .num("close_seconds", P.closing())
      .num("close_ns_per_unit", PerUnit(P.closing()));
  const std::pair<const char *, double> Phases[] = {
      {"parse", P.Parse}, {"sema", P.Sema},   {"lower", P.Lower},
      {"alias", P.Alias}, {"defuse", P.DefUse}, {"taint", P.Taint},
      {"close", P.Close}, {"emit", P.Emit}};
  for (const auto &[Phase, Seconds] : Phases)
    Json.record(Name + "_" + Phase)
        .num("seconds", Seconds)
        .num("ns_per_unit", PerUnit(Seconds));
}

} // namespace

int main(int argc, char **argv) {
  // `--json-only` writes BENCH_scaling.json and exits without the
  // google-benchmark suite — the fast path scripts/check.sh gates on.
  bool JsonOnly = false;
  for (int I = 1; I < argc; ++I)
    JsonOnly |= std::strcmp(argv[I], "--json-only") == 0;

  std::printf("E4: transformation cost vs program size (expect flat "
              "ns_per_unit — 'essentially linear', paper section 4)\n\n");

  // Machine-readable trajectory of the closing cost, phase by phase. The
  // single-procedure scaling series runs to ~1M generated nodes; the
  // multi-procedure corpus series stresses the interprocedural fixpoint.
  // Every size repeats and keeps the per-phase minimum (noise filter) —
  // min-of-reps at the large sizes too, because the gate below compares
  // large against small and a one-shot large sample carries scheduler
  // noise straight into the ratio.
  BenchJson Json;
  for (size_t N = 512; N <= 131072; N *= 4) {
    int Reps = N <= 8192 ? 5 : 3;
    std::string Src = scalingProgram(N);
    PhaseProfile Best = profileClose(Src);
    for (int R = 1; R < Reps; ++R)
      Best.minWith(profileClose(Src));
    emitProfile(Json, "close_N" + std::to_string(N), Best);
  }
  for (int Procs : {8, 32, 128}) {
    CorpusConfig Config;
    Config.Procs = Procs;
    Config.StmtsPerProc = 64;
    std::string Src = generateCorpusSource(Config);
    PhaseProfile Best = profileClose(Src);
    if (Procs <= 32)
      Best.minWith(profileClose(Src));
    emitProfile(Json, "corpus_P" + std::to_string(Procs), Best);
  }
  Json.write("BENCH_scaling.json");
  if (JsonOnly)
    return 0;

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
