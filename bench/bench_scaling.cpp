//===- bench_scaling.cpp - E4: closing-time linearity ------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// The paper (§4): "The overall time complexity of the above algorithm is
// essentially linear in the size of G_j and G~_j since the transformation
// can be performed by a single traversal of both graphs." This benchmark
// sweeps program size and reports ns per (CFG node + define-use arc) — the
// ratio should stay flat.
//
// Two timings per size:
//   BM_AnalyzeAndClose: full pipeline cost (analysis + transformation);
//   BM_TransformOnly:   Figure 1 Steps 3-5 alone, given the analysis.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "dataflow/DefUse.h"
#include "explorer/Search.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace closer;

namespace {

void BM_AnalyzeAndClose(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  auto Mod = benchCompile(scalingProgram(N));
  size_t Nodes = Mod->totalNodes();

  // Measure the define-use graph size once for the per-unit metric.
  EnvAnalysis Probe(*Mod);
  size_t DuArcs = 0;
  for (size_t P = 0; P != Mod->Procs.size(); ++P)
    DuArcs += Probe.dataflow(P).arcCount();

  for (auto _ : State) {
    Module Closed = closeModule(*Mod);
    benchmark::DoNotOptimize(&Closed);
  }
  State.counters["nodes"] = static_cast<double>(Nodes);
  State.counters["du_arcs"] = static_cast<double>(DuArcs);
  State.counters["ns_per_unit"] = benchmark::Counter(
      static_cast<double>(Nodes + DuArcs) * State.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_AnalyzeAndClose)
    ->RangeMultiplier(4)
    ->Range(128, 32768)
    ->Unit(benchmark::kMillisecond);

void BM_TransformOnly(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  auto Mod = benchCompile(scalingProgram(N));
  EnvAnalysis Analysis(*Mod);
  for (auto _ : State) {
    Module Closed = closeModule(*Mod, Analysis);
    benchmark::DoNotOptimize(&Closed);
  }
  State.counters["nodes"] = static_cast<double>(Mod->totalNodes());
  State.counters["ns_per_node"] = benchmark::Counter(
      static_cast<double>(Mod->totalNodes()) * State.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_TransformOnly)
    ->RangeMultiplier(4)
    ->Range(128, 32768)
    ->Unit(benchmark::kMillisecond);

void BM_FrontendCompile(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  std::string Src = scalingProgram(N);
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Mod = compileAndVerify(Src, Diags);
    benchmark::DoNotOptimize(Mod.get());
  }
  State.counters["source_bytes"] = static_cast<double>(Src.size());
}
BENCHMARK(BM_FrontendCompile)
    ->RangeMultiplier(4)
    ->Range(128, 32768)
    ->Unit(benchmark::kMillisecond);

void BM_ExploreJobs(benchmark::State &State) {
  // Speedup of the work-sharing parallel explorer over the same
  // state-space-heavy workload: dining philosophers without reduction.
  // The arg is the worker count; states_per_sec is the figure of merit
  // (it should scale with available cores — on a single-core machine all
  // job counts collapse to sequential throughput plus queue overhead).
  auto Mod = benchCompile(philosophersProgram(3, 2));
  SearchOptions Opts;
  Opts.MaxDepth = 14;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Opts.Jobs = static_cast<size_t>(State.range(0));

  uint64_t States = 0;
  for (auto _ : State) {
    SearchStats Stats = explore(*Mod, Opts).Stats;
    States = Stats.StatesVisited;
    benchmark::DoNotOptimize(&Stats);
  }
  State.counters["states"] = static_cast<double>(States);
  State.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(States) * State.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::printf("E4: transformation cost vs program size (expect flat "
              "ns_per_unit — 'essentially linear', paper section 4)\n\n");

  // Machine-readable trajectory of the closing cost (one timed pass per
  // size; the google-benchmark runs below remain the precise measurement).
  BenchJson Json;
  for (size_t N = 128; N <= 8192; N *= 4) {
    auto Mod = benchCompile(scalingProgram(N));
    EnvAnalysis Probe(*Mod);
    size_t DuArcs = 0;
    for (size_t P = 0; P != Mod->Procs.size(); ++P)
      DuArcs += Probe.dataflow(P).arcCount();
    auto T0 = std::chrono::steady_clock::now();
    Module Closed = closeModule(*Mod);
    auto T1 = std::chrono::steady_clock::now();
    double Seconds = std::chrono::duration<double>(T1 - T0).count();
    size_t Units = Mod->totalNodes() + DuArcs;
    Json.record("close_N" + std::to_string(N))
        .count("nodes", Mod->totalNodes())
        .count("du_arcs", DuArcs)
        .num("seconds", Seconds)
        .num("ns_per_unit", Units ? Seconds * 1e9 / Units : 0);
  }
  Json.write("BENCH_scaling.json");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
