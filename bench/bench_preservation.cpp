//===- bench_preservation.cpp - E5: error preservation under closing --------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// Theorem 7 in the large: across a corpus of randomized open programs,
// every deadlock and preserved-assertion violation detectable in S x E_S
// (naive closing over a small domain) is also detectable in the transformed
// program — while the transformed search is far cheaper. Reports aggregate
// detection counts and the cost ratio.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "envgen/NaiveClose.h"
#include "explorer/Search.h"
#include "../tests/RandomProgram.h"

#include <benchmark/benchmark.h>

using namespace closer;

namespace {

struct CorpusResult {
  unsigned Programs = 0;
  unsigned NaiveDeadlocky = 0;
  unsigned ClosedCaughtDeadlock = 0;
  unsigned NaiveViolating = 0;
  unsigned ClosedCaughtViolation = 0;
  /// Violating programs whose every assertion survived the transformation
  /// with its real argument (Theorem 7's precondition).
  unsigned NaiveViolatingPreserved = 0;
  unsigned ClosedCaughtViolationPreserved = 0;
  uint64_t NaiveStates = 0;
  uint64_t ClosedStates = 0;
};

/// True when every VS_assert in \p Mod kept its real (non-unknown) payload.
bool allAssertionsPreserved(const Module &Mod) {
  for (const ProcCfg &Proc : Mod.Procs)
    for (const CfgNode &Node : Proc.Nodes)
      if (Node.Kind == CfgNodeKind::Call &&
          Node.Builtin == BuiltinKind::VsAssert &&
          Node.Args[0]->Kind == ExprKind::Unknown)
        return false;
  return true;
}

SearchStats explore(const Module &Mod, uint64_t MaxRuns) {
  SearchOptions Opts;
  Opts.MaxDepth = 10;
  Opts.MaxRuns = MaxRuns;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Explorer Ex(Mod, Opts);
  return Ex.run();
}

CorpusResult runCorpus(unsigned Seeds, int64_t Domain) {
  CorpusResult Out;
  for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
    std::string Src = randomOpenProgram(Seed);
    DiagnosticEngine Diags;
    auto Open = compileAndVerify(Src, Diags);
    if (!Open)
      continue;
    ++Out.Programs;

    Module Naive = naiveCloseModule(*Open, {Domain - 1});
    SearchStats NaiveStats = explore(Naive, 30000);
    Out.NaiveStates += NaiveStats.StatesVisited;

    CloseResult R = closeSource(Src);
    if (!R.ok())
      continue;
    SearchStats ClosedStats = explore(*R.Closed, 60000);
    Out.ClosedStates += ClosedStats.StatesVisited;

    if (NaiveStats.Deadlocks) {
      ++Out.NaiveDeadlocky;
      if (ClosedStats.Deadlocks)
        ++Out.ClosedCaughtDeadlock;
    }
    if (NaiveStats.AssertionViolations) {
      ++Out.NaiveViolating;
      if (ClosedStats.AssertionViolations)
        ++Out.ClosedCaughtViolation;
      if (allAssertionsPreserved(*R.Closed)) {
        ++Out.NaiveViolatingPreserved;
        if (ClosedStats.AssertionViolations)
          ++Out.ClosedCaughtViolationPreserved;
      }
    }
  }
  return Out;
}

void BM_PreservationCorpus(benchmark::State &State) {
  CorpusResult R;
  for (auto _ : State)
    R = runCorpus(24, 3);
  State.counters["programs"] = R.Programs;
  State.counters["naive_deadlocky"] = R.NaiveDeadlocky;
  State.counters["closed_caught_deadlock"] = R.ClosedCaughtDeadlock;
  State.counters["naive_violating"] = R.NaiveViolating;
  State.counters["closed_caught_violation"] = R.ClosedCaughtViolation;
}
BENCHMARK(BM_PreservationCorpus)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::printf("E5: deadlock / assertion preservation across a random "
              "corpus (Theorem 7)\n\n");
  CorpusResult R = runCorpus(48, 3);
  std::printf("programs analyzed:                 %u\n", R.Programs);
  std::printf("open systems with deadlocks:       %u\n", R.NaiveDeadlocky);
  std::printf("  ... also found after closing:    %u\n",
              R.ClosedCaughtDeadlock);
  std::printf("open systems with violations:      %u\n", R.NaiveViolating);
  std::printf("  ... also found after closing:    %u\n",
              R.ClosedCaughtViolation);
  std::printf("  violating, all asserts preserved:%u\n",
              R.NaiveViolatingPreserved);
  std::printf("  ... also found after closing:    %u  (Theorem 7 requires "
              "equality on this pair)\n",
              R.ClosedCaughtViolationPreserved);
  std::printf("aggregate explored states, naive:  %llu\n",
              static_cast<unsigned long long>(R.NaiveStates));
  std::printf("aggregate explored states, closed: %llu\n\n",
              static_cast<unsigned long long>(R.ClosedStates));
  if (R.ClosedCaughtDeadlock < R.NaiveDeadlocky)
    std::printf("WARNING: a deadlock was lost — Theorem 7 violated?!\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
