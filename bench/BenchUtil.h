//===- BenchUtil.h - Shared workload builders for the benchmarks -*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#ifndef CLOSER_BENCH_BENCHUTIL_H
#define CLOSER_BENCH_BENCHUTIL_H

#include "closing/Pipeline.h"
#include "support/Json.h"
#include "support/Random.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace closer {

/// Minimal machine-readable benchmark output: flat records of named
/// numeric/string fields, written as a JSON array so the perf trajectory
/// can be tracked across PRs without scraping human-readable tables.
/// Serialization rides on the shared json::Value writer (the same one
/// behind `closer explore --stats-json`), keeping the historical one
/// compact record per line framing.
class BenchJson {
public:
  struct Record {
    json::Value Obj = json::Value::object();

    Record &num(const std::string &Key, double V) {
      // A sub-microsecond run can produce inf/nan rates; JSON has no
      // spelling for either, so clamp at the source.
      Obj.add(Key, std::isfinite(V) ? V : 0.0);
      return *this;
    }
    Record &count(const std::string &Key, uint64_t V) {
      Obj.add(Key, V);
      return *this;
    }
    Record &str(const std::string &Key, const std::string &V) {
      Obj.add(Key, V);
      return *this;
    }
  };

  Record &record(const std::string &Config) {
    Records.emplace_back();
    return Records.back().str("config", Config);
  }

  bool write(const std::string &Path) const {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", Path.c_str());
      return false;
    }
    std::fprintf(F, "[\n");
    for (size_t R = 0; R != Records.size(); ++R)
      std::fprintf(F, "  %s%s\n", Records[R].Obj.str().c_str(),
                   R + 1 != Records.size() ? "," : "");
    std::fprintf(F, "]\n");
    std::fclose(F);
    std::printf("wrote %s (%zu records)\n", Path.c_str(), Records.size());
    return true;
  }

private:
  std::vector<Record> Records;
};

/// Events-per-second that is always finite: zero-elapsed (sub-tick) runs
/// report 0 instead of inf/nan, so rates are safe to serialize and to
/// divide by each other.
inline double safeRate(uint64_t Count, double Seconds) {
  double R = Seconds > 0 ? static_cast<double>(Count) / Seconds : 0;
  return std::isfinite(R) ? R : 0;
}

/// Compiles or aborts (benchmarks must not measure broken inputs).
inline std::unique_ptr<Module> benchCompile(const std::string &Source) {
  DiagnosticEngine Diags;
  auto Mod = compileAndVerify(Source, Diags);
  if (!Mod) {
    std::fprintf(stderr, "bench workload failed to compile:\n%s\n",
                 Diags.str().c_str());
    std::abort();
  }
  return Mod;
}

/// The open "filter" program of experiment E3: reads K environment inputs
/// and routes each to the even or odd channel.
inline std::string filterProgram(int K) {
  std::string S;
  S += "chan evens[" + std::to_string(K + 1) + "];\n";
  S += "chan odds[" + std::to_string(K + 1) + "];\n";
  S += "proc filter() {\n";
  S += "  var i;\n";
  S += "  var x;\n";
  S += "  for (i = 0; i < " + std::to_string(K) + "; i = i + 1) {\n";
  S += "    x = env_input();\n";
  S += "    if (x % 2 == 0)\n";
  S += "      send(evens, i);\n";
  S += "    else\n";
  S += "      send(odds, i);\n";
  S += "  }\n";
  S += "}\n";
  S += "process m = filter();\n";
  return S;
}

/// Size unit of the E4 linearity metric: CFG nodes plus define-use arcs —
/// |G_j| + |G~_j|, the two graphs the paper's "single traversal" (§4)
/// walks, so linear closing means flat ns per unit. Nodes alone understate
/// the work on define-use-dense programs (arc count grows faster than node
/// count when many definitions stay live), which made earlier ns_per_node
/// readings look superlinear even for a linear transform. This is the
/// denominator the scripts/check.sh linearity gate asserts on.
inline size_t scalingUnits(size_t Nodes, size_t DuArcs) {
  return Nodes + DuArcs;
}

/// A synthetic open program with ~N statements for the linear-time
/// experiment E4. Mixes untainted arithmetic, environment inputs, tainted
/// and untainted conditionals, and visible operations, so the closing
/// algorithm exercises every step.
inline std::string scalingProgram(size_t N, uint64_t Seed = 7) {
  Rng R(Seed);
  std::string S;
  S += "chan c[8];\n";
  S += "proc work(x) {\n";
  for (int V = 0; V != 10; ++V)
    S += "  var v" + std::to_string(V) + " = " + std::to_string(V) + ";\n";
  auto Var = [&] { return "v" + std::to_string(R.below(10)); };
  for (size_t I = 0; I != N; ++I) {
    switch (R.below(8)) {
    case 0:
      S += "  " + Var() + " = env_input();\n";
      break;
    case 1: {
      std::string A = Var();
      S += "  if (" + A + " < " + Var() + ")\n";
      S += "    " + A + " = " + A + " + 1;\n";
      break;
    }
    case 2:
      S += "  send(c, " + Var() + ");\n";
      break;
    default:
      S += "  " + Var() + " = " + Var() + " * 3 + " +
           std::to_string(R.below(100)) + ";\n";
      break;
    }
  }
  S += "}\n";
  S += "process m = work(env);\n";
  return S;
}

/// Dining philosophers (E7): N philosophers, N fork semaphores, classic
/// left-then-right acquisition — deadlocks exist and dependencies are
/// cyclic, stressing sleep sets.
inline std::string philosophersProgram(int N, int Meals = 1) {
  std::string S;
  for (int I = 0; I != N; ++I)
    S += "sem fork" + std::to_string(I) + "(1);\n";
  S += "chan meals[" + std::to_string(N * Meals + 1) + "];\n";
  for (int I = 0; I != N; ++I) {
    int Left = I;
    int Right = (I + 1) % N;
    S += "proc phil" + std::to_string(I) + "() {\n";
    S += "  var m;\n";
    S += "  for (m = 0; m < " + std::to_string(Meals) + "; m = m + 1) {\n";
    S += "    sem_wait(fork" + std::to_string(Left) + ");\n";
    S += "    sem_wait(fork" + std::to_string(Right) + ");\n";
    S += "    send(meals, " + std::to_string(I) + ");\n";
    S += "    sem_signal(fork" + std::to_string(Right) + ");\n";
    S += "    sem_signal(fork" + std::to_string(Left) + ");\n";
    S += "  }\n";
    S += "}\n";
  }
  for (int I = 0; I != N; ++I)
    S += "process p" + std::to_string(I) + " = phil" + std::to_string(I) +
         "();\n";
  return S;
}

/// The transition-engine workload: two processes interleaving on one
/// semaphore, with a block of Rounds x 3 arithmetic statements of invisible
/// computation between visible operations (mixing *, %, + and - over three
/// accumulators, values bounded so no overflow fires). Philosophers-style
/// transitions are nearly empty — they benchmark explorer bookkeeping; this
/// one carries the per-transition evaluation work real handlers do, which
/// is what separates the bytecode VM from the tree-walking interpreter.
inline std::string vmComputeProgram(int Iters, int Rounds) {
  std::string S;
  S += "sem s(1);\n";
  S += "proc worker() {\n";
  S += "  var k;\n  var a;\n  var b;\n  var c;\n";
  S += "  a = 1; b = 2; c = 3;\n";
  S += "  for (k = 0; k < " + std::to_string(Iters) + "; k = k + 1) {\n";
  for (int R = 0; R != Rounds; ++R) {
    std::string I = std::to_string(R);
    S += "    a = (a * 3 + " + I + " - b % 17) % 8192;\n";
    S += "    b = (b + a % 29 + c * 2) % 8192;\n";
    S += "    c = (a + b - c) % 4096;\n";
  }
  S += "    sem_wait(s);\n";
  S += "    sem_signal(s);\n";
  S += "  }\n";
  S += "}\n";
  S += "process p0 = worker();\n";
  S += "process p1 = worker();\n";
  return S;
}

/// Two processes looping Iters times over wait/signal on one shared
/// semaphore: a deep "grid" state space of Iters^2 distinct states (the
/// loop-counter pair), every one reachable along combinatorially many
/// interleavings. Without a visited-state cache the search tree is
/// exponential in Iters; with one it collapses to the grid — the cached
/// deep-series workload.
inline std::string semGridProgram(int Iters) {
  std::string S;
  std::string N = std::to_string(Iters);
  S += "sem s(2);\n";
  for (const char *P : {"a", "b"}) {
    S += "proc " + std::string(P) + "() {\n";
    S += "  var k;\n";
    S += "  for (k = 0; k < " + N + "; k = k + 1) {\n";
    S += "    sem_wait(s);\n";
    S += "    sem_signal(s);\n";
    S += "  }\n";
    S += "}\n";
  }
  S += "process pa = a();\n";
  S += "process pb = b();\n";
  return S;
}

/// N independent producer/consumer pairs on disjoint channels (E7's
/// persistent-set showcase: footprints are disjoint across pairs).
inline std::string independentPairsProgram(int Pairs, int Msgs = 2) {
  std::string S;
  for (int I = 0; I != Pairs; ++I)
    S += "chan link" + std::to_string(I) + "[1];\n";
  for (int I = 0; I != Pairs; ++I) {
    std::string Ch = "link" + std::to_string(I);
    S += "proc prod" + std::to_string(I) + "() {\n";
    S += "  var k;\n";
    S += "  for (k = 0; k < " + std::to_string(Msgs) + "; k = k + 1)\n";
    S += "    send(" + Ch + ", k);\n";
    S += "}\n";
    S += "proc cons" + std::to_string(I) + "() {\n";
    S += "  var k;\n";
    S += "  var v;\n";
    S += "  for (k = 0; k < " + std::to_string(Msgs) + "; k = k + 1)\n";
    S += "    v = recv(" + Ch + ");\n";
    S += "}\n";
  }
  for (int I = 0; I != Pairs; ++I) {
    S += "process sp" + std::to_string(I) + " = prod" + std::to_string(I) +
         "();\n";
    S += "process sc" + std::to_string(I) + " = cons" + std::to_string(I) +
         "();\n";
  }
  return S;
}

} // namespace closer

#endif // CLOSER_BENCH_BENCHUTIL_H
