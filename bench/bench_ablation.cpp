//===- bench_ablation.cpp - E8: precision ablations --------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// Quantifies the precision discussion in the paper's §5:
//
//  * define-use flow sensitivity vs a coarse "ever tainted" analysis: how
//    many statements survive the transformation under each, and the effect
//    on state-space size;
//  * redundant-toss deduplication (the §5/§7 "temporal independence"
//    improvement sketched as future work): toss count and branching
//    factor with and without the dedup pass.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "closing/DomainPartition.h"
#include "envgen/NaiveClose.h"
#include "explorer/Search.h"

#include <benchmark/benchmark.h>

using namespace closer;

namespace {

/// A program where flow sensitivity matters: environment data flows into x
/// but is overwritten before the protocol phase, which a coarse analysis
/// cannot see.
const char *flowSensitiveWorkload() {
  return R"(
chan c[8];

proc main() {
  var x;
  var i;
  var acc = 0;
  x = env_input();
  if (x > 0)
    send(c, 'probe');
  else
    send(c, 'idle');
  x = 0;
  for (i = 0; i < 3; i = i + 1) {
    acc = acc + x + i;
    if (acc % 2 == 0)
      send(c, acc);
    else
      send(c, -acc);
  }
}

process m = main();
)";
}

/// The paper's "temporal independence" shape: one env-dependent test
/// appears in two places along a straight line; both closings insert
/// tosses, the dedup pass shares them.
const char *tossDedupWorkload() {
  return R"(
chan c[8];

proc main(x) {
  var y;
  y = x % 2;
  if (y == 0)
    send(c, 1);
  else
    send(c, 2);
  if (y == 0)
    send(c, 3);
  else
    send(c, 4);
}

process m = main(env);
)";
}

/// §7's resource manager: requests are classified into ranges only.
const char *resourceManagerWorkload() {
  return R"(
chan grants[8];

proc manager() {
  var req;
  var round;
  for (round = 0; round < 2; round = round + 1) {
    req = env_input();
    if (req < 10)
      send(grants, 'small');
    else {
      if (req < 100)
        send(grants, 'medium');
      else
        send(grants, 'large');
    }
  }
}

process m = manager();
)";
}

SearchStats explore(const Module &Mod) {
  SearchOptions Opts;
  Opts.MaxDepth = 20;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Explorer Ex(Mod, Opts);
  return Ex.run();
}

void BM_PreciseTaint(benchmark::State &State) {
  auto Mod = benchCompile(flowSensitiveWorkload());
  ClosingStats Stats;
  for (auto _ : State) {
    ClosingStats Fresh;
    Module Closed = closeModule(*Mod, {}, &Fresh);
    benchmark::DoNotOptimize(&Closed);
    Stats = Fresh;
  }
  State.counters["eliminated"] = static_cast<double>(Stats.NodesEliminated);
  State.counters["tosses"] = static_cast<double>(Stats.TossNodesInserted);
}
BENCHMARK(BM_PreciseTaint);

void BM_CoarseTaint(benchmark::State &State) {
  auto Mod = benchCompile(flowSensitiveWorkload());
  ClosingOptions Options;
  Options.Taint.CoarseMode = true;
  ClosingStats Stats;
  for (auto _ : State) {
    ClosingStats Fresh;
    Module Closed = closeModule(*Mod, Options, &Fresh);
    benchmark::DoNotOptimize(&Closed);
    Stats = Fresh;
  }
  State.counters["eliminated"] = static_cast<double>(Stats.NodesEliminated);
  State.counters["tosses"] = static_cast<double>(Stats.TossNodesInserted);
}
BENCHMARK(BM_CoarseTaint);

} // namespace

int main(int argc, char **argv) {
  std::printf("E8: precision ablations (paper section 5)\n\n");

  {
    std::printf("--- define-use flow sensitivity ---\n");
    auto Mod = benchCompile(flowSensitiveWorkload());
    ClosingStats Precise, Coarse;
    Module ClosedPrecise = closeModule(*Mod, {}, &Precise);
    ClosingOptions CoarseOpts;
    CoarseOpts.Taint.CoarseMode = true;
    Module ClosedCoarse = closeModule(*Mod, CoarseOpts, &Coarse);
    SearchStats SP = explore(ClosedPrecise);
    SearchStats SC = explore(ClosedCoarse);
    std::printf("%-22s %12s %12s %12s %12s\n", "mode", "eliminated",
                "tosses", "states", "paths");
    std::printf("%-22s %12zu %12zu %12llu %12llu\n", "precise (paper)",
                Precise.NodesEliminated, Precise.TossNodesInserted,
                static_cast<unsigned long long>(SP.StatesVisited),
                static_cast<unsigned long long>(SP.Runs));
    std::printf("%-22s %12zu %12zu %12llu %12llu\n", "coarse (ablation)",
                Coarse.NodesEliminated, Coarse.TossNodesInserted,
                static_cast<unsigned long long>(SC.StatesVisited),
                static_cast<unsigned long long>(SC.Runs));
    std::printf("\n");
  }

  {
    std::printf("--- redundant-toss deduplication ---\n");
    auto Mod = benchCompile(tossDedupWorkload());
    ClosingStats Plain, Dedup;
    Module ClosedPlain = closeModule(*Mod, {}, &Plain);
    ClosingOptions DedupOpts;
    DedupOpts.DedupTosses = true;
    Module ClosedDedup = closeModule(*Mod, DedupOpts, &Dedup);
    SearchStats SPlain = explore(ClosedPlain);
    SearchStats SDedup = explore(ClosedDedup);
    std::printf("%-22s %12s %12s %12s\n", "mode", "toss-nodes", "states",
                "paths");
    std::printf("%-22s %12zu %12llu %12llu\n", "per-arc (paper)",
                Plain.TossNodesInserted,
                static_cast<unsigned long long>(SPlain.StatesVisited),
                static_cast<unsigned long long>(SPlain.Runs));
    std::printf("%-22s %12zu %12llu %12llu\n", "deduplicated (7)",
                Dedup.TossNodesInserted,
                static_cast<unsigned long long>(SDedup.StatesVisited),
                static_cast<unsigned long long>(SDedup.Runs));
    std::printf("\nNote: sharing toss *nodes* does not merge the choices "
                "made at different visits;\nthe paths count is unchanged — "
                "the structural saving is in the graph, matching the\n"
                "paper's remark that eliminating semantically redundant "
                "tosses needs a deeper analysis.\n\n");
  }

  {
    std::printf("--- E9: input-domain partitioning (section 7 future "
                "work) ---\n");
    std::printf("workload: resource manager classifying requests into "
                "{<10, <100, >=100}\n");
    auto Mod = benchCompile(resourceManagerWorkload());

    // Naive explicit environment over a domain spanning both thresholds.
    Module Naive = naiveCloseModule(*Mod, {127});
    SearchStats SNaive = explore(Naive);

    // Standard Figure 1 closing: interface eliminated, branches tossed.
    Module Closed = closeModule(*Mod);
    SearchStats SClosed = explore(Closed);

    // Partitioned closing: interface simplified to 6 representatives,
    // classification logic preserved.
    PartitionStats PStats;
    Module Partitioned = partitionInputs(*Mod, {}, &PStats);
    SearchStats SPart = explore(Partitioned);

    std::printf("%-26s %12s %12s %10s\n", "mode", "states", "paths",
                "exact?");
    std::printf("%-26s %12llu %12llu %10s\n", "naive env (D=128)",
                static_cast<unsigned long long>(SNaive.StatesVisited),
                static_cast<unsigned long long>(SNaive.Runs), "yes");
    std::printf("%-26s %12llu %12llu %10s\n", "eliminated (Figure 1)",
                static_cast<unsigned long long>(SClosed.StatesVisited),
                static_cast<unsigned long long>(SClosed.Runs),
                "over-approx");
    std::printf("%-26s %12llu %12llu %10s\n", "partitioned (section 7)",
                static_cast<unsigned long long>(SPart.StatesVisited),
                static_cast<unsigned long long>(SPart.Runs), "yes");
    std::printf("\npartitioned %zu input(s) into %zu representatives: "
                "exact like the naive closing,\nnearly as small as the "
                "eliminated one — the trade-off section 7 anticipates.\n\n",
                PStats.InputsPartitioned, PStats.RepresentativesTotal);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
