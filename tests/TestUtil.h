//===- TestUtil.h - Shared helpers for the closer test suite ---*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#ifndef CLOSER_TESTS_TESTUTIL_H
#define CLOSER_TESTS_TESTUTIL_H

#include "cfg/CfgBuilder.h"
#include "cfg/CfgVerifier.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace closer {

/// Compiles MiniC source, failing the test with diagnostics on error.
inline std::unique_ptr<Module> mustCompile(const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<Module> Mod = compileMiniC(Source, Diags);
  EXPECT_TRUE(Mod != nullptr) << Diags.str();
  if (Mod) {
    EXPECT_TRUE(verifyModule(*Mod, Diags)) << Diags.str();
  }
  return Mod;
}

/// The paper's Figure 2 procedure p, in MiniC. The process argument `env`
/// opens the system: x is provided by the environment. The paper's
/// send('even', cnt) / send('odd', cnt) pair is modeled as two channels
/// carrying the (untainted) counter.
inline const char *figure2Source() {
  return R"(
chan evens[16];
chan odds[16];

proc p(x) {
  var cnt = 0;
  var y;
  while (cnt < 10) {
    y = x % 2;
    if (y == 0)
      send(evens, cnt);
    else
      send(odds, cnt);
    cnt = cnt + 1;
  }
}

process main = p(env);
)";
}

/// The paper's Figure 3 procedure q: same as p but x is shifted each
/// iteration, so the closed program is an optimal translation.
inline const char *figure3Source() {
  return R"(
chan evens[16];
chan odds[16];

proc q(x) {
  var cnt = 0;
  var y;
  while (cnt < 10) {
    y = x % 2;
    if (y == 0)
      send(evens, cnt);
    else
      send(odds, cnt);
    x = x / 2;
    cnt = cnt + 1;
  }
}

process main = q(env);
)";
}

} // namespace closer

#endif // CLOSER_TESTS_TESTUTIL_H
