//===- SemaTest.cpp - MiniC semantic-analysis tests --------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

bool semaOf(const std::string &Source, std::string *Errors = nullptr) {
  DiagnosticEngine Diags;
  auto Prog = parseMiniC(Source, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  if (!Prog)
    return false;
  bool Ok = checkProgram(*Prog, Diags);
  if (Errors)
    *Errors = Diags.str();
  return Ok;
}

void expectSemaError(const std::string &Source, const std::string &Fragment) {
  std::string Errors;
  bool Ok = semaOf(Source, &Errors);
  EXPECT_FALSE(Ok) << "expected a sema error mentioning '" << Fragment
                   << "'";
  EXPECT_NE(Errors.find(Fragment), std::string::npos)
      << "got errors:\n" << Errors;
}

TEST(SemaTest, ValidProgramPasses) {
  EXPECT_TRUE(semaOf(R"(
chan c[2];
sem s(1);
shared sv;
var g;

proc helper(a) { return a + g; }

proc main(x) {
  var v;
  v = helper(x);
  send(c, v);
  sem_wait(s);
  v = recv(c);
  write(sv, v);
  v = read(sv);
  sem_signal(s);
  VS_assert(v == v);
}

process m = main(env);
)"));
}

TEST(SemaTest, UndeclaredVariable) {
  expectSemaError("proc f() { x = 1; }", "undeclared");
}

TEST(SemaTest, RedeclarationInSameProcedure) {
  expectSemaError("proc f() { var x; var x; }", "redeclaration");
}

TEST(SemaTest, LocalMayNotShadowGlobal) {
  expectSemaError("var g;\nproc f() { var g; }", "redeclaration");
}

TEST(SemaTest, CommObjectUsedAsVariable) {
  expectSemaError("chan c[1];\nproc f() { var x; x = c; }",
                  "communication object");
}

TEST(SemaTest, AssignToCommObject) {
  expectSemaError("chan c[1];\nproc f() { c = 3; }", "builtins");
}

TEST(SemaTest, WrongObjectKindForBuiltin) {
  expectSemaError("sem s(1);\nproc f() { var x; x = recv(s); }",
                  "wrong communication-object kind");
}

TEST(SemaTest, BuiltinArity) {
  expectSemaError("chan c[1];\nproc f() { send(c); }", "expects 2");
}

TEST(SemaTest, ResultlessBuiltinInRhs) {
  expectSemaError("sem s(1);\nproc f() { var x; x = sem_wait(s); }",
                  "produces no value");
}

TEST(SemaTest, NestedCallsRejected) {
  expectSemaError("proc g(a) { return a; }\nproc f() { var x; x = g(g(1)); }",
                  "right-hand side");
}

TEST(SemaTest, CallArityChecked) {
  expectSemaError("proc g(a) { }\nproc f() { g(1, 2); }", "expects 1");
}

TEST(SemaTest, UndefinedProcedureCall) {
  expectSemaError("proc f() { nope(); }", "undefined procedure");
}

TEST(SemaTest, BreakOutsideLoop) {
  expectSemaError("proc f() { break; }", "outside");
}

TEST(SemaTest, ContinueOutsideLoop) {
  expectSemaError("proc f() { continue; }", "outside");
}

TEST(SemaTest, GotoUndefinedLabel) {
  expectSemaError("proc f() { goto nowhere; }", "undefined label");
}

TEST(SemaTest, DuplicateLabel) {
  expectSemaError("proc f() { L: ; L: ; }", "duplicate label");
}

TEST(SemaTest, DuplicateCaseValue) {
  expectSemaError(R"(
proc f() {
  var x = 0;
  switch (x) {
  case 1:
    ;
  case 1:
    ;
  }
}
)",
                  "duplicate case");
}

TEST(SemaTest, ArrayUsedWithoutIndex) {
  expectSemaError("proc f() { var a[2]; var x; x = a; }", "index");
}

TEST(SemaTest, IndexingNonArray) {
  expectSemaError("proc f() { var x; var y; y = x[0]; }", "not an array");
}

TEST(SemaTest, AddressOfCommObject) {
  expectSemaError("chan c[1];\nproc f() { var p; p = &c; }",
                  "address");
}

TEST(SemaTest, ProcessArityMismatch) {
  expectSemaError("proc f(a) { }\nprocess p = f();", "expects 1");
}

TEST(SemaTest, ProcessUndefinedProc) {
  expectSemaError("process p = ghost();", "undefined procedure");
}

TEST(SemaTest, DuplicateTopLevelNames) {
  expectSemaError("var x;\nchan x[1];\nproc f() { }", "redefinition");
  expectSemaError("proc f() { }\nproc f() { }", "redefinition");
}

TEST(SemaTest, BuiltinNameCollision) {
  expectSemaError("proc send(a) { }", "collides with a builtin");
}

TEST(SemaTest, DiscardedBuiltinResultWarnsButPasses) {
  std::string Errors;
  EXPECT_TRUE(semaOf("chan c[1];\nproc f() { recv(c); }", &Errors));
  EXPECT_NE(Errors.find("discarded"), std::string::npos) << Errors;
}

TEST(SemaTest, GlobalsVisibleInAllProcs) {
  EXPECT_TRUE(semaOf(R"(
var shared_counter = 0;
proc f() { shared_counter = shared_counter + 1; }
proc g() { shared_counter = 0; }
)"));
}

} // namespace
