//===- CliTest.cpp - Command-line parsing regression tests ------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// Regression tests for the driver's argument parsing, factored into
// support/CommandLine so it can be tested without spawning the binary.
// Historical bugs pinned here:
//  * a positional argument following a boolean flag was swallowed as the
//    flag's value (`closer explore --stop-on-error prog.mc` lost prog.mc);
//  * numeric flag values went through unchecked strtol, so `--depth foo`
//    silently meant 0 and `--max-runs 1e6` silently meant 1.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include "gtest/gtest.h"

#include <vector>

using namespace closer;

namespace {

const FlagSpec &spec() {
  static const FlagSpec S = {
      {"--stop-on-error", FlagArity::Bool},
      {"--no-por", FlagArity::Bool},
      {"--depth", FlagArity::Value},
      {"--max-runs", FlagArity::Value},
      {"--time-budget", FlagArity::Value},
      {"--stats-json", FlagArity::Value},
      {"-D", FlagArity::Value},
      {"--progress", FlagArity::OptionalValue},
  };
  return S;
}

Args parse(std::vector<const char *> Argv) {
  Argv.insert(Argv.begin(), {"closer", "explore"});
  return parseArgs(static_cast<int>(Argv.size()), Argv.data(), 2, spec());
}

TEST(CliTest, PositionalAfterBooleanFlagStaysPositional) {
  // The original parser treated every argument after any flag as that
  // flag's value, so the program name here vanished.
  Args A = parse({"--stop-on-error", "prog.mc"});
  EXPECT_TRUE(A.Error.empty()) << A.Error;
  ASSERT_EQ(A.Positional.size(), 1u);
  EXPECT_EQ(A.Positional[0], "prog.mc");
  EXPECT_TRUE(A.has("--stop-on-error"));
}

TEST(CliTest, RoundTripMixedFlagsAndPositionals) {
  Args A = parse({"prog.mc", "--depth", "40", "--no-por",
                  "--stats-json", "out.json", "--stop-on-error"});
  EXPECT_TRUE(A.Error.empty()) << A.Error;
  ASSERT_EQ(A.Positional.size(), 1u);
  EXPECT_EQ(A.Positional[0], "prog.mc");
  EXPECT_EQ(A.intOf("--depth", 0), 40);
  EXPECT_TRUE(A.has("--no-por"));
  EXPECT_TRUE(A.has("--stop-on-error"));
  EXPECT_EQ(A.strOf("--stats-json", ""), "out.json");
  EXPECT_TRUE(A.Error.empty()) << A.Error;
}

TEST(CliTest, EqualsSyntax) {
  Args A = parse({"prog.mc", "--depth=25", "--time-budget=1.5"});
  EXPECT_TRUE(A.Error.empty()) << A.Error;
  EXPECT_EQ(A.intOf("--depth", 0), 25);
  EXPECT_DOUBLE_EQ(A.secondsOf("--time-budget", 0), 1.5);
  EXPECT_TRUE(A.Error.empty()) << A.Error;
}

TEST(CliTest, RejectsNonNumericIntValue) {
  // Used to silently parse as 0 (strtol with no endptr check).
  Args A = parse({"prog.mc", "--depth", "foo"});
  EXPECT_TRUE(A.Error.empty());
  EXPECT_EQ(A.intOf("--depth", 60), 60); // Default returned on failure.
  EXPECT_FALSE(A.Error.empty());
  EXPECT_NE(A.Error.find("--depth"), std::string::npos) << A.Error;
}

TEST(CliTest, RejectsScientificNotationIntValue) {
  // Used to silently parse as 1 (strtol stops at 'e').
  Args A = parse({"prog.mc", "--max-runs", "1e6"});
  EXPECT_EQ(A.intOf("--max-runs", 7), 7);
  EXPECT_FALSE(A.Error.empty());
  EXPECT_NE(A.Error.find("1e6"), std::string::npos) << A.Error;
}

TEST(CliTest, RejectsTrailingGarbageAndOverflow) {
  {
    Args A = parse({"--depth", "12x"});
    A.intOf("--depth", 0);
    EXPECT_FALSE(A.Error.empty());
  }
  {
    Args A = parse({"--depth", "999999999999999999999999"});
    A.intOf("--depth", 0);
    EXPECT_FALSE(A.Error.empty());
  }
}

TEST(CliTest, SecondsRejectNegativeAndGarbage) {
  {
    Args A = parse({"--time-budget", "-3"});
    EXPECT_EQ(A.secondsOf("--time-budget", 0), 0);
    EXPECT_FALSE(A.Error.empty());
  }
  {
    Args A = parse({"--time-budget", "soon"});
    EXPECT_EQ(A.secondsOf("--time-budget", 0), 0);
    EXPECT_FALSE(A.Error.empty());
  }
}

TEST(CliTest, UnknownOptionDiagnosed) {
  Args A = parse({"prog.mc", "--frobnicate"});
  EXPECT_FALSE(A.Error.empty());
  EXPECT_NE(A.Error.find("--frobnicate"), std::string::npos) << A.Error;
}

TEST(CliTest, ValueFlagMissingValueDiagnosed) {
  Args A = parse({"prog.mc", "--depth"});
  EXPECT_FALSE(A.Error.empty());
  EXPECT_NE(A.Error.find("--depth"), std::string::npos) << A.Error;
}

TEST(CliTest, BooleanFlagWithValueDiagnosed) {
  Args A = parse({"--no-por=1", "prog.mc"});
  EXPECT_FALSE(A.Error.empty());
}

TEST(CliTest, OptionalValueNeverConsumesNextArg) {
  // `--progress prog.mc` must keep prog.mc positional; the interval can
  // only be attached with `=`.
  Args A = parse({"--progress", "prog.mc"});
  EXPECT_TRUE(A.Error.empty()) << A.Error;
  ASSERT_EQ(A.Positional.size(), 1u);
  EXPECT_EQ(A.Positional[0], "prog.mc");
  EXPECT_TRUE(A.has("--progress"));
  ASSERT_NE(A.value("--progress"), nullptr);
  EXPECT_TRUE(A.value("--progress")->empty()); // No attached interval.

  Args B = parse({"--progress=0.5", "prog.mc"});
  EXPECT_TRUE(B.Error.empty()) << B.Error;
  EXPECT_DOUBLE_EQ(B.secondsOf("--progress", 2.0), 0.5);
  ASSERT_EQ(B.Positional.size(), 1u);
}

TEST(CliTest, NegativeNumberIsAFlagValueNotAPositional) {
  // `-D -1` style: the value token may itself start with '-'.
  Args A = parse({"prog.mc", "-D", "3"});
  EXPECT_EQ(A.intOf("-D", 1), 3);
  EXPECT_TRUE(A.Error.empty()) << A.Error;
}

TEST(CliTest, FirstErrorWins) {
  Args A = parse({"--depth", "foo", "--max-runs", "bar"});
  A.intOf("--depth", 0);
  std::string First = A.Error;
  A.intOf("--max-runs", 0);
  EXPECT_EQ(A.Error, First);
}

TEST(CliTest, ParseLongAndDoubleHelpers) {
  long L = 0;
  EXPECT_TRUE(parseLong("42", L));
  EXPECT_EQ(L, 42);
  EXPECT_TRUE(parseLong("-7", L));
  EXPECT_EQ(L, -7);
  EXPECT_FALSE(parseLong("", L));
  EXPECT_FALSE(parseLong("1e6", L));
  EXPECT_FALSE(parseLong("0x10", L)); // Base 10 only.

  double D = 0;
  EXPECT_TRUE(parseDouble("1.5", D));
  EXPECT_DOUBLE_EQ(D, 1.5);
  EXPECT_FALSE(parseDouble("nan", D));
  EXPECT_FALSE(parseDouble("inf", D));
  EXPECT_FALSE(parseDouble("abc", D));
}

} // namespace
