//===- ObservabilityTest.cpp - Stats JSON / progress / graceful stop --------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// The explorer's observability surface:
//  * `--stats-json` artifacts reflect the in-memory SearchStats
//    field-for-field and carry the schema discriminator;
//  * `--progress` emits well-formed machine-scrapable stderr lines;
//  * a `--time-budget`-stopped run reports Interrupted=true and emits
//    resume prefixes that replay faithfully against the same program.
//
// The subprocess tests drive the real `closer` binary (CLOSER_BIN).
//
//===----------------------------------------------------------------------===//

#include "closing/Pipeline.h"
#include "explorer/Observability.h"
#include "explorer/Replay.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace closer;

namespace {

// ---------------------------------------------------------------------------
// In-process: statsToJson / runArtifactToJson.
// ---------------------------------------------------------------------------

TEST(ObservabilityTest, StatsJsonFieldForField) {
  SearchStats S;
  // Distinct value per field so a swapped key assignment cannot cancel out.
  S.Runs = 3;
  S.Transitions = 5;
  S.TreeTransitions = 7;
  S.TransitionsReplayed = 11;
  S.TransitionsRestored = 13;
  S.StatesVisited = 17;
  S.Deadlocks = 19;
  S.Terminations = 23;
  S.AssertionViolations = 29;
  S.Divergences = 31;
  S.RuntimeErrors = 37;
  S.DepthLimitHits = 41;
  S.SleepSetPrunes = 43;
  S.HashPrunes = 47;
  S.CacheHits = 67;
  S.CacheInserts = 71;
  S.CacheSaturated = 73;
  S.ReportsDropped = 53;
  S.Steals = 79;
  S.Wakeups = 83;
  S.ArenaBytes = 89;
  S.PoolFresh = 97;
  S.VisibleOpsCovered = 59;
  S.VisibleOpsTotal = 61;
  S.Completed = true;
  S.Interrupted = false;
  S.WallSeconds = 0.5;

  std::string J = statsToJson(S).str();
  auto field = [&](const std::string &KV) {
    EXPECT_NE(J.find(KV), std::string::npos) << KV << " missing in " << J;
  };
  field("\"runs\": 3");
  field("\"transitions\": 5");
  field("\"tree_transitions\": 7");
  field("\"transitions_replayed\": 11");
  field("\"transitions_restored\": 13");
  field("\"states_visited\": 17");
  field("\"deadlocks\": 19");
  field("\"terminations\": 23");
  field("\"assertion_violations\": 29");
  field("\"divergences\": 31");
  field("\"runtime_errors\": 37");
  field("\"depth_limit_hits\": 41");
  field("\"sleep_set_prunes\": 43");
  field("\"hash_prunes\": 47");
  field("\"cache_hits\": 67");
  field("\"cache_inserts\": 71");
  field("\"cache_saturated\": 73");
  field("\"reports_dropped\": 53");
  field("\"steals\": 79");
  field("\"wakeups\": 83");
  field("\"arena_bytes\": 89");
  field("\"pool_fresh\": 97");
  field("\"visible_ops_covered\": 59");
  field("\"visible_ops_total\": 61");
  field("\"completed\": true");
  field("\"interrupted\": false");
  field("\"wall_seconds\": 0.5");
}

// The bug-seeded two-philosopher shape: deadlock exists, small state space.
const char *DeadlockProgram = R"(
sem a(1);
sem b(1);
proc left() {
  sem_wait(a);
  sem_wait(b);
  sem_signal(b);
  sem_signal(a);
}
proc right() {
  sem_wait(b);
  sem_wait(a);
  sem_signal(a);
  sem_signal(b);
}
process l = left();
process r = right();
)";

TEST(ObservabilityTest, RunArtifactMatchesInMemoryStats) {
  DiagnosticEngine Diags;
  auto Mod = compileAndVerify(DeadlockProgram, Diags);
  ASSERT_TRUE(Mod) << Diags.str();

  SearchOptions Opts;
  Opts.MaxDepth = 30;
  SearchResult Result = explore(*Mod, Opts);
  const SearchStats &Stats = Result.Stats;
  EXPECT_TRUE(Stats.Completed);
  EXPECT_GT(Stats.Deadlocks, 0u);

  json::Value Root = runArtifactToJson(Result);
  // Compact mode nests sub-objects byte-identically to their standalone
  // serialization, so the artifact's "stats" member can be checked against
  // statsToJson of the in-memory result as a plain substring.
  std::string J = Root.str();
  EXPECT_NE(J.find(statsToJson(Stats).str()), std::string::npos) << J;
  EXPECT_NE(J.find("\"schema\": \"closer-explore-stats-v1\""),
            std::string::npos);
  EXPECT_NE(J.find("\"interrupted\": false"), std::string::npos);
  EXPECT_NE(J.find("\"kind\": \"deadlock\""), std::string::npos);
  // Reports carry the erroneous state's identity.
  EXPECT_NE(J.find("\"state_fingerprint\": "), std::string::npos);
  // Completed run: nothing to resume.
  EXPECT_NE(J.find("\"resume\": []"), std::string::npos);
  EXPECT_TRUE(Result.Resume.empty());

  // Per-worker breakdown: with the default Jobs=1 a single sequential
  // entry whose counters equal the total (only the aggregate carries the
  // run's wall clock).
  ASSERT_EQ(Result.Workers.size(), 1u);
  SearchStats Worker = Result.Workers[0];
  SearchStats Total = Stats;
  Worker.WallSeconds = Total.WallSeconds = 0;
  EXPECT_EQ(statsToJson(Worker).str(), statsToJson(Total).str());
}

// ---------------------------------------------------------------------------
// Subprocess tests against the real binary.
// ---------------------------------------------------------------------------

/// Producer/consumer pairs on disjoint channels: closed, error-free, and an
/// interleaving space far too large to exhaust in a test's time budget.
std::string bigWorkload(int Pairs, int Msgs) {
  std::string S;
  for (int I = 0; I != Pairs; ++I)
    S += "chan link" + std::to_string(I) + "[1];\n";
  for (int I = 0; I != Pairs; ++I) {
    std::string Ch = "link" + std::to_string(I);
    S += "proc prod" + std::to_string(I) + "() {\n";
    S += "  var k;\n";
    S += "  for (k = 0; k < " + std::to_string(Msgs) + "; k = k + 1)\n";
    S += "    send(" + Ch + ", k);\n";
    S += "}\n";
    S += "proc cons" + std::to_string(I) + "() {\n";
    S += "  var k;\n  var v;\n";
    S += "  for (k = 0; k < " + std::to_string(Msgs) + "; k = k + 1)\n";
    S += "    v = recv(" + Ch + ");\n";
    S += "}\n";
  }
  for (int I = 0; I != Pairs; ++I) {
    S += "process sp" + std::to_string(I) + " = prod" + std::to_string(I) +
         "();\n";
    S += "process sc" + std::to_string(I) + " = cons" + std::to_string(I) +
         "();\n";
  }
  return S;
}

std::string tempPath(const std::string &Suffix) {
  return "/tmp/closer_obs_" + std::to_string(::getpid()) + Suffix;
}

void writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path);
  ASSERT_TRUE(Out.good()) << Path;
  Out << Text;
}

std::string readAll(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Runs `Cmd` under /bin/sh, returning captured output per the caller's
/// redirections; aborts the test on popen failure.
std::string runCommand(const std::string &Cmd, int *ExitCode = nullptr) {
  std::FILE *P = ::popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr) << Cmd;
  if (!P)
    return "";
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int Status = ::pclose(P);
  if (ExitCode)
    *ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return Out;
}

TEST(ObservabilityTest, ProgressLinesAreWellFormed) {
  std::string Src = tempPath("_progress.mc");
  writeFile(Src, bigWorkload(4, 4));

  // Capture stderr only; progress must never pollute stdout.
  std::string Cmd = std::string(CLOSER_BIN) + " explore " + Src +
                    " --open --no-por --depth 60 --max-runs 100000000" +
                    " --time-budget 0.6 --progress=0.1 2>&1 >/dev/null";
  std::string Err = runCommand(Cmd);
  std::remove(Src.c_str());

  size_t Lines = 0;
  std::istringstream In(Err);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind("progress:", 0) != 0)
      continue;
    ++Lines;
    for (const char *Key :
         {" t=", " states=", " states/s=", " transitions=", " trans/s=",
          " depth=", " frontier=", " runs=", " reports="})
      EXPECT_NE(Line.find(Key), std::string::npos)
          << "missing '" << Key << "' in: " << Line;
  }
  EXPECT_GE(Lines, 2u) << Err;
}

TEST(ObservabilityTest, TimeBudgetStopsWithResumablePrefixes) {
  std::string Source = bigWorkload(4, 4);
  std::string Src = tempPath("_budget.mc");
  std::string Json = tempPath("_budget.json");
  writeFile(Src, Source);

  int Exit = -1;
  std::string Cmd = std::string(CLOSER_BIN) + " explore " + Src +
                    " --open --no-por --depth 60 --max-runs 100000000" +
                    " --time-budget 0.3 --jobs 2 --stats-json " + Json +
                    " 2>/dev/null";
  std::string Out = runCommand(Cmd, &Exit);
  std::remove(Src.c_str());
  EXPECT_EQ(Exit, 0) << Out; // Error-free workload: clean exit.

  // The human-readable output announces the interruption and resume lines.
  EXPECT_NE(Out.find("(interrupted)"), std::string::npos) << Out;
  EXPECT_NE(Out.find("replay: "), std::string::npos) << Out;

  std::string Artifact = readAll(Json);
  std::remove(Json.c_str());
  ASSERT_FALSE(Artifact.empty());
  EXPECT_NE(Artifact.find("\"schema\": \"closer-explore-stats-v1\""),
            std::string::npos);
  EXPECT_NE(Artifact.find("\"interrupted\": true"), std::string::npos);
  EXPECT_NE(Artifact.find("\"completed\": false"), std::string::npos);

  // Partial stats are real: a budget-stopped run still visited states.
  EXPECT_EQ(Artifact.find("\"states_visited\": 0,"), std::string::npos);

  // Every resume prefix must parse and replay faithfully against the same
  // program — that is what makes an interrupted run continuable.
  DiagnosticEngine Diags;
  auto Mod = compileAndVerify(Source, Diags);
  ASSERT_TRUE(Mod) << Diags.str();

  std::vector<std::string> Prefixes;
  std::istringstream In(Out);
  std::string Line;
  while (std::getline(In, Line))
    if (Line.rfind("replay: ", 0) == 0)
      Prefixes.push_back(Line.substr(8));
  ASSERT_FALSE(Prefixes.empty());

  size_t Checked = 0;
  for (const std::string &P : Prefixes) {
    if (Checked == 16) // Replaying thousands adds nothing.
      break;
    std::vector<ReplayStep> Steps;
    ASSERT_TRUE(parseReplay(P, Steps)) << P;
    ASSERT_FALSE(Steps.empty());
    ReplayResult R = replayChoices(*Mod, Steps, SystemOptions());
    EXPECT_TRUE(R.Faithful) << "prefix did not replay: " << P;
    ++Checked;
  }
  // Each printed prefix must also appear in the artifact's resume array.
  EXPECT_NE(Artifact.find("\"" + Prefixes.front() + "\""),
            std::string::npos);
}

TEST(ObservabilityTest, JobsZeroResolvesToHardwareConcurrency) {
  std::string Src = tempPath("_jobs0.mc");
  std::string Json = tempPath("_jobs0.json");
  writeFile(Src, bigWorkload(2, 1));

  int Exit = -1;
  std::string Cmd = std::string(CLOSER_BIN) + " explore " + Src +
                    " --open --depth 60 --jobs 0 --stats-json " + Json +
                    " 2>/dev/null";
  runCommand(Cmd, &Exit);
  std::remove(Src.c_str());
  EXPECT_EQ(Exit, 0);

  // The artifact reports the *resolved* worker count, never the literal 0:
  // that is the contract that makes `--jobs 0` runs reproducible.
  std::string Artifact = readAll(Json);
  std::remove(Json.c_str());
  EXPECT_EQ(Artifact.find("\"jobs\": 0"), std::string::npos) << Artifact;
  unsigned HW = std::thread::hardware_concurrency();
  std::string Want = "\"jobs\": " + std::to_string(HW ? HW : 1);
  EXPECT_NE(Artifact.find(Want), std::string::npos)
      << "expected " << Want << " in " << Artifact;
}

TEST(ObservabilityTest, NegativeJobsIsRejected) {
  std::string Src = tempPath("_jobsneg.mc");
  writeFile(Src, bigWorkload(2, 1));

  int Exit = -1;
  std::string Cmd = std::string(CLOSER_BIN) + " explore " + Src +
                    " --open --depth 60 --jobs -2 2>&1";
  std::string Out = runCommand(Cmd, &Exit);
  std::remove(Src.c_str());
  EXPECT_EQ(Exit, 1);
  EXPECT_NE(Out.find("--jobs"), std::string::npos) << Out;
}

TEST(ObservabilityTest, StatsJsonOnCompletedRunReportsCompletion) {
  std::string Src = tempPath("_done.mc");
  std::string Json = tempPath("_done.json");
  writeFile(Src, bigWorkload(2, 1));

  int Exit = -1;
  std::string Cmd = std::string(CLOSER_BIN) + " explore " + Src +
                    " --open --depth 60 --stats-json " + Json +
                    " 2>/dev/null";
  runCommand(Cmd, &Exit);
  std::remove(Src.c_str());
  EXPECT_EQ(Exit, 0);

  std::string Artifact = readAll(Json);
  std::remove(Json.c_str());
  EXPECT_NE(Artifact.find("\"completed\": true"), std::string::npos);
  EXPECT_NE(Artifact.find("\"interrupted\": false"), std::string::npos);
  EXPECT_NE(Artifact.find("\"resume\": []"), std::string::npos);
}

} // namespace
