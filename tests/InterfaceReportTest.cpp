//===- InterfaceReportTest.cpp - Interface-inventory tests -------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "closing/InterfaceReport.h"

#include "closing/Pipeline.h"
#include "switchapp/SwitchApp.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace closer;

namespace {

size_t countKind(const InterfaceReport &R, InterfacePoint::Kind K) {
  size_t N = 0;
  for (const InterfacePoint &P : R.Points)
    N += P.K == K;
  return N;
}

TEST(InterfaceReportTest, InventoriesAllEntryKinds) {
  auto Mod = mustCompile(R"(
chan data[2];

proc producer(mode) {
  var v;
  v = env_input();
  send(data, v + mode);
  env_output(v);
}

process p = producer(env);
)");
  InterfaceReport R = buildInterfaceReport(*Mod);
  EXPECT_FALSE(R.isClosed());
  EXPECT_EQ(countKind(R, InterfacePoint::Kind::EnvArg), 1u);
  EXPECT_EQ(countKind(R, InterfacePoint::Kind::EnvInputCall), 1u);
  EXPECT_EQ(countKind(R, InterfacePoint::Kind::EnvOutputCall), 1u);

  // The channel carries env data; the producer parameter is tainted.
  EXPECT_EQ(R.TaintedChannels, std::vector<std::string>{"data"});
  ASSERT_EQ(R.TaintedParams.size(), 1u);
  EXPECT_EQ(R.TaintedParams[0], "producer(mode)");
}

TEST(InterfaceReportTest, ClosedProgramReportsClean) {
  CloseResult R = closeSource(figure2Source());
  ASSERT_TRUE(R.ok());
  InterfaceReport Report = buildInterfaceReport(*R.Closed);
  EXPECT_TRUE(Report.isClosed());
  EXPECT_EQ(Report.NodesDependentOnEnv, 0u);
  EXPECT_NE(Report.str().find("(none: the program is closed)"),
            std::string::npos);
}

TEST(InterfaceReportTest, OpenFigure2Inventory) {
  auto Mod = mustCompile(figure2Source());
  InterfaceReport Report = buildInterfaceReport(*Mod);
  EXPECT_FALSE(Report.isClosed());
  EXPECT_EQ(countKind(Report, InterfacePoint::Kind::EnvArg), 1u);
  // y = x % 2 and the y == 0 test depend on the environment.
  EXPECT_EQ(Report.NodesDependentOnEnv, 2u);
  EXPECT_GT(Report.TotalNodes, Report.NodesDependentOnEnv);
}

TEST(InterfaceReportTest, SwitchAppInterfaceScalesWithFeatures) {
  SwitchAppConfig Small;
  Small.NumLines = 1;
  Small.WithForwarding = false;
  auto ModSmall = mustCompile(generateSwitchAppSource(Small));
  InterfaceReport RSmall = buildInterfaceReport(*ModSmall);

  SwitchAppConfig Big = Small;
  Big.WithForwarding = true;
  auto ModBig = mustCompile(generateSwitchAppSource(Big));
  InterfaceReport RBig = buildInterfaceReport(*ModBig);

  // Forwarding adds its own env consultation.
  EXPECT_GT(countKind(RBig, InterfacePoint::Kind::EnvInputCall),
            countKind(RSmall, InterfacePoint::Kind::EnvInputCall));
}

TEST(InterfaceReportTest, RenderingMentionsSpread) {
  auto Mod = mustCompile(R"(
shared sv;
var g;

proc writer() {
  var e;
  e = env_input();
  write(sv, e);
  g = e;
}

proc getter() {
  return g;
}

proc main() {
  var x;
  writer();
  x = getter();
}

process m = main();
)");
  InterfaceReport Report = buildInterfaceReport(*Mod);
  std::string Text = Report.str();
  EXPECT_NE(Text.find("tainted shared vars: sv"), std::string::npos) << Text;
  EXPECT_NE(Text.find("tainted globals: g"), std::string::npos) << Text;
  EXPECT_NE(Text.find("tainted returns: getter"), std::string::npos) << Text;
}

} // namespace
