//===- SwitchAppTest.cpp - Tests for the call-processing case study --------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "switchapp/SwitchApp.h"

#include "closing/Pipeline.h"
#include "explorer/Search.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

SwitchAppConfig tinyConfig() {
  SwitchAppConfig C;
  C.NumLines = 1;
  C.NumTrunks = 1;
  C.EventsPerLine = 1;
  return C;
}

TEST(SwitchAppTest, GeneratedSourceCompiles) {
  SwitchAppConfig C;
  C.NumLines = 4;
  C.EventsPerLine = 3;
  std::string Src = generateSwitchAppSource(C);
  auto Mod = mustCompile(Src);
  ASSERT_TRUE(Mod);
  // 4 line handlers + router + registration + handoff + forwarder.
  EXPECT_EQ(Mod->Processes.size(), 8u);
}

TEST(SwitchAppTest, FeatureTogglesChangeTopology) {
  SwitchAppConfig C = tinyConfig();
  C.WithRegistration = false;
  C.WithHandoff = false;
  C.WithForwarding = false;
  auto Mod = mustCompile(generateSwitchAppSource(C));
  ASSERT_TRUE(Mod);
  EXPECT_EQ(Mod->Processes.size(), 2u); // line handler + router.
  EXPECT_EQ(Mod->findComm("regs"), nullptr);
  EXPECT_EQ(Mod->findComm("hoffs"), nullptr);
}

TEST(SwitchAppTest, ClosesAutomatically) {
  SwitchAppConfig C;
  C.NumLines = 2;
  CloseResult R = closeSource(generateSwitchAppSource(C));
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_GT(R.Stats.EnvCallsRemoved, 0u);
  EXPECT_GT(R.Stats.TossNodesInserted, 0u);

  EnvAnalysis Analysis(*R.Closed);
  EXPECT_TRUE(Analysis.moduleIsClosed());

  // The line handler's event switch is gone; preserved logic remains in
  // the router (untainted message dispatch).
  const ProcCfg *Handler = R.Closed->findProc("line_handler");
  ASSERT_NE(Handler, nullptr);
  for (const CfgNode &Node : Handler->Nodes)
    EXPECT_NE(Node.Kind, CfgNodeKind::Switch)
        << "tainted event dispatch should be eliminated";
  const ProcCfg *Router = R.Closed->findProc("router");
  ASSERT_NE(Router, nullptr);
  bool RouterKeepsSwitch = false;
  for (const CfgNode &Node : Router->Nodes)
    RouterKeepsSwitch |= Node.Kind == CfgNodeKind::Switch;
  EXPECT_TRUE(RouterKeepsSwitch)
      << "untainted protocol dispatch must be preserved";
}

TEST(SwitchAppTest, BugFreeVariantHasNoDeadlocksUpToDepth) {
  SwitchAppConfig C = tinyConfig();
  CloseResult R = closeSource(generateSwitchAppSource(C));
  ASSERT_TRUE(R.ok()) << R.Diags.str();

  SearchOptions Opts;
  Opts.MaxDepth = 40;
  Explorer Ex(*R.Closed, Opts);
  SearchStats Stats = Ex.run();
  EXPECT_TRUE(Stats.Completed);
  EXPECT_EQ(Stats.Deadlocks, 0u) << (Ex.reports().empty()
                                         ? ""
                                         : Ex.reports()[0].str());
  EXPECT_EQ(Stats.AssertionViolations, 0u);
  EXPECT_GT(Stats.Terminations, 0u);
}

TEST(SwitchAppTest, SeededTrunkLeakIsFoundAfterClosing) {
  SwitchAppConfig C;
  C.NumLines = 2;
  C.NumTrunks = 1;
  C.EventsPerLine = 2;
  C.WithRegistration = false;
  C.WithForwarding = false;
  C.SeedTrunkLeakBug = true;
  CloseResult R = closeSource(generateSwitchAppSource(C));
  ASSERT_TRUE(R.ok()) << R.Diags.str();

  SearchOptions Opts;
  Opts.MaxDepth = 60;
  Opts.StopOnFirstError = true;
  Explorer Ex(*R.Closed, Opts);
  SearchStats Stats = Ex.run();
  EXPECT_GE(Stats.Deadlocks, 1u)
      << "the trunk leak must surface as a deadlock; stats: " << Stats.str();
  ASSERT_FALSE(Ex.reports().empty());
  EXPECT_EQ(Ex.reports()[0].Kind, ErrorReport::Type::Deadlock);
}

TEST(SwitchAppTest, PreservedAssertionsSurviveClosing) {
  SwitchAppConfig C = tinyConfig();
  CloseResult R = closeSource(generateSwitchAppSource(C));
  ASSERT_TRUE(R.ok()) << R.Diags.str();

  // The router and registration counters are environment-independent, so
  // their assertions must keep their real arguments.
  size_t PreservedAsserts = 0;
  for (const ProcCfg &Proc : R.Closed->Procs)
    for (const CfgNode &Node : Proc.Nodes)
      if (Node.Kind == CfgNodeKind::Call &&
          Node.Builtin == BuiltinKind::VsAssert &&
          Node.Args[0]->Kind != ExprKind::Unknown)
        ++PreservedAsserts;
  EXPECT_GE(PreservedAsserts, 3u);
}

TEST(SwitchAppTest, HandlerVariantsScaleCodeSize) {
  SwitchAppConfig One = tinyConfig();
  One.NumLines = 4;
  One.HandlerVariants = 1;
  auto ModOne = mustCompile(generateSwitchAppSource(One));

  SwitchAppConfig Four = One;
  Four.HandlerVariants = 4;
  auto ModFour = mustCompile(generateSwitchAppSource(Four));

  // Four subscriber classes mean four distinct handler procedures.
  EXPECT_EQ(ModFour->Procs.size(), ModOne->Procs.size() + 3);
  EXPECT_GT(ModFour->totalNodes(), ModOne->totalNodes());
  // Processes are assigned round-robin over the variants.
  EXPECT_NE(ModFour->Processes[0].ProcName, ModFour->Processes[1].ProcName);

  // Every variant closes fully.
  CloseResult R = closeSource(generateSwitchAppSource(Four));
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EnvAnalysis Analysis(*R.Closed);
  EXPECT_TRUE(Analysis.moduleIsClosed());
}

TEST(SwitchAppTest, VariantUsageAssertionsPreserved) {
  SwitchAppConfig C = tinyConfig();
  C.NumLines = 2;
  C.HandlerVariants = 2;
  CloseResult R = closeSource(generateSwitchAppSource(C));
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  // The per-class usage accounting is untainted, so its assertion keeps
  // its real argument in every handler variant.
  for (const ProcCfg &Proc : R.Closed->Procs) {
    if (Proc.Name.rfind("line_handler", 0) != 0)
      continue;
    bool SawRealAssert = false;
    for (const CfgNode &Node : Proc.Nodes)
      if (Node.Kind == CfgNodeKind::Call &&
          Node.Builtin == BuiltinKind::VsAssert)
        SawRealAssert |= Node.Args[0]->Kind != ExprKind::Unknown;
    EXPECT_TRUE(SawRealAssert) << Proc.Name;
  }
}

TEST(SwitchAppTest, ScalesToLargerConfigurations) {
  SwitchAppConfig C;
  C.NumLines = 12;
  C.EventsPerLine = 6;
  CloseResult R = closeSource(generateSwitchAppSource(C));
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_EQ(R.Closed->Processes.size(), 16u);
  // Interface fully eliminated even at scale.
  EnvAnalysis Analysis(*R.Closed);
  EXPECT_TRUE(Analysis.moduleIsClosed());
}

} // namespace
