//===- StealEquivalenceTest.cpp - Work-stealing vs sequential equivalence --===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// The scheduler-layer contract: moving exploration onto per-worker
// Chase–Lev deques with targeted wakeups must not change which tree gets
// explored. Every tree-shaped statistic and the error-report set must be
// bit-identical to the sequential explorer's across the full configuration
// matrix — job count x checkpoint interval x state cache x execution
// engine — because the work items partition the search tree exactly and
// none of those knobs may interact with the partition.
//
// The cached configurations carry one caveat the uncached ones do not:
// cross-path pruning makes the visit *order* worker-dependent, so the tree
// shape is only deterministic when the run completes without depth-limit
// truncation (a state first reached near the horizon in one order can be
// cache-pruned below it in another). The matrix programs are chosen and
// asserted to stay inside that regime.
//
// Also runs under ThreadSanitizer as part of the sanitizer gate.
//
//===----------------------------------------------------------------------===//

#include "explorer/ParallelSearch.h"

#include "RandomProgram.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace closer;

namespace {

#ifndef CLOSER_SOURCE_DIR
#define CLOSER_SOURCE_DIR "."
#endif

std::string readExample(const std::string &Name) {
  std::string Path = std::string(CLOSER_SOURCE_DIR) + "/examples/minic/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// The tree-shaped statistics (not replay effort, not the new scheduler
/// counters — Steals/Wakeups/ArenaBytes/PoolFresh legitimately vary with
/// scheduling and are deliberately absent here).
std::string treeShape(const SearchStats &S) {
  std::string Out;
  Out += "states=" + std::to_string(S.StatesVisited);
  Out += " tree-transitions=" + std::to_string(S.TreeTransitions);
  Out += " deadlocks=" + std::to_string(S.Deadlocks);
  Out += " terminations=" + std::to_string(S.Terminations);
  Out += " assertion-violations=" + std::to_string(S.AssertionViolations);
  Out += " divergences=" + std::to_string(S.Divergences);
  Out += " runtime-errors=" + std::to_string(S.RuntimeErrors);
  Out += " depth-limit-hits=" + std::to_string(S.DepthLimitHits);
  Out += " sleep-prunes=" + std::to_string(S.SleepSetPrunes);
  Out += " covered=" + std::to_string(S.VisibleOpsCovered);
  Out += S.Completed ? " complete" : " stopped";
  return Out;
}

std::vector<std::string> errorSet(const std::vector<ErrorReport> &Reports) {
  std::vector<std::string> Out;
  for (const ErrorReport &R : Reports)
    Out.push_back(std::to_string(static_cast<int>(R.Kind)) + ":" +
                  replayToString(R.Choices));
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// Report identity for cached runs: the erroneous state plus the error
/// details. A cached state is expanded by whichever worker inserts its
/// fingerprint first, so the representative trace varies with scheduling
/// while the (state, error) set does not — the same identity
/// StateCacheTest pins for the cache layer itself.
std::vector<std::string> stateErrorSet(const std::vector<ErrorReport> &Rs) {
  std::vector<std::string> Out;
  for (const ErrorReport &R : Rs)
    Out.push_back(std::to_string(static_cast<int>(R.Kind)) + ":" +
                  std::to_string(R.StateFp) + ":" +
                  std::to_string(static_cast<int>(R.Error.Kind)) + ":" +
                  std::to_string(R.Process));
  std::sort(Out.begin(), Out.end());
  return Out;
}

struct MatrixProgram {
  const char *Label;
  std::unique_ptr<Module> Mod;
  size_t MaxDepth;
};

std::vector<MatrixProgram> matrixPrograms() {
  std::vector<MatrixProgram> Out;
  {
    auto Mod = mustCompile(readExample("figure2.mc"));
    EXPECT_TRUE(Mod);
    if (Mod)
      Out.push_back({"figure2.mc", std::move(Mod), 12});
  }
  {
    auto Mod = mustCompile(randomOpenProgram(1003));
    EXPECT_TRUE(Mod);
    if (Mod)
      Out.push_back({"random-1003", std::move(Mod), 10});
  }
  return Out;
}

/// One cell of the matrix: run sequentially and with \p Jobs workers,
/// demand identical tree shape and report set.
void checkCell(const MatrixProgram &P, size_t Jobs, size_t Ckpt,
               bool Cached, ExecMode Exec) {
  std::string Label = std::string(P.Label) + " j" + std::to_string(Jobs) +
                      " ckpt" + std::to_string(Ckpt) +
                      (Cached ? " cache" : " nocache") +
                      (Exec == ExecMode::Vm ? " vm" : " interp");
  SearchOptions Opts;
  Opts.MaxDepth = P.MaxDepth;
  Opts.MaxReports = 4096;
  Opts.CheckpointInterval = Ckpt;
  Opts.Exec = Exec;
  if (Cached)
    Opts.StateCacheBits = 14;

  SearchOptions Seq = Opts;
  Seq.Jobs = 1;
  Explorer Sequential(*P.Mod, Seq);
  SearchStats SeqStats = Sequential.run();

  if (Cached) {
    // The determinism precondition for cached runs (see file comment). If
    // this trips, the matrix program outgrew its depth bound — raise it.
    ASSERT_TRUE(SeqStats.Completed) << Label;
    ASSERT_EQ(SeqStats.DepthLimitHits, 0u) << Label;
    ASSERT_EQ(SeqStats.CacheSaturated, 0u) << Label;
  }

  SearchOptions Par = Opts;
  Par.Jobs = Jobs;
  SearchResult Parallel = explore(*P.Mod, Par);

  EXPECT_EQ(treeShape(SeqStats), treeShape(Parallel.Stats)) << Label;
  if (Cached)
    EXPECT_EQ(stateErrorSet(Sequential.reports()),
              stateErrorSet(Parallel.Reports))
        << Label;
  else
    EXPECT_EQ(errorSet(Sequential.reports()), errorSet(Parallel.Reports))
        << Label;
}

TEST(StealEquivalenceTest, FullConfigurationMatrix) {
  std::vector<MatrixProgram> Programs = matrixPrograms();
  ASSERT_FALSE(Programs.empty());
  for (const MatrixProgram &P : Programs)
    for (size_t Jobs : {size_t{1}, size_t{2}, size_t{4}})
      for (size_t Ckpt : {size_t{0}, size_t{3}})
        for (bool Cached : {false, true})
          for (ExecMode Exec : {ExecMode::Interp, ExecMode::Vm})
            checkCell(P, Jobs, Ckpt, Cached, Exec);
}

TEST(StealEquivalenceTest, TerminationUnderHeavyDonation) {
  // Split depth 1 seeds one or two parcels for eight workers, so almost
  // every parcel the workers process arrives via donate() + targeted
  // wakeup while the rest of the pool is parked. Any flaw in the
  // Live-parcel termination protocol (a drained declaration racing a
  // donation, or a missed wakeup leaving a sleeper parked forever) shows
  // up here as a hang or a short tree. Repeat to give the races room.
  auto Mod = mustCompile(randomOpenProgram(1003));
  ASSERT_TRUE(Mod);

  SearchOptions Seq;
  Seq.MaxDepth = 10;
  Seq.MaxReports = 4096;
  Seq.Jobs = 1;
  Explorer Sequential(*Mod, Seq);
  SearchStats SeqStats = Sequential.run();
  std::string Want = treeShape(SeqStats);

  for (int Round = 0; Round != 20; ++Round) {
    SearchOptions Opts = Seq;
    Opts.Jobs = 8;
    Opts.SplitDepth = 1;
    SearchResult R = explore(*Mod, Opts);
    ASSERT_EQ(Want, treeShape(R.Stats)) << "round " << Round;
    ASSERT_EQ(errorSet(Sequential.reports()), errorSet(R.Reports))
        << "round " << Round;
  }
}

TEST(StealEquivalenceTest, SchedulerCountersAreObservedNotInvented) {
  // Sanity on the new counters: a sequential run reports no steals or
  // wakeups; a donation-heavy parallel run still sums to the same tree.
  auto Mod = mustCompile(randomOpenProgram(7));
  ASSERT_TRUE(Mod);
  SearchOptions Opts;
  Opts.MaxDepth = 10;
  Opts.MaxReports = 4096;
  Opts.Jobs = 1;
  SearchResult Seq = explore(*Mod, Opts);
  EXPECT_EQ(Seq.Stats.Steals, 0u);
  EXPECT_EQ(Seq.Stats.Wakeups, 0u);

  Opts.Jobs = 4;
  Opts.SplitDepth = 1;
  SearchResult Par = explore(*Mod, Opts);
  EXPECT_EQ(treeShape(Seq.Stats), treeShape(Par.Stats));
  // Steals/wakeups may be zero on a single-core box (workers rarely
  // overlap), so only the sequential side has a hard expectation.
}

} // namespace
