//===- RandomProgram.h - Random open-program generator ---------*- C++ -*-===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random *open* MiniC programs for property-based testing of the
/// closing transformation (Theorems 6/7, Lemma 5). Programs are valid by
/// construction and all loops are counter-bounded, so every execution
/// terminates (possibly blocked on communication — deadlocks are a feature,
/// not a bug, for these tests).
///
//===----------------------------------------------------------------------===//

#ifndef CLOSER_TESTS_RANDOMPROGRAM_H
#define CLOSER_TESTS_RANDOMPROGRAM_H

#include "support/Random.h"

#include <string>
#include <vector>

namespace closer {

struct RandomProgramConfig {
  uint64_t Seed = 1;
  int NumProcesses = 2;
  int NumChannels = 2;
  int NumSemaphores = 1;
  int StatementsPerProc = 6;
  int MaxNestingDepth = 2;
  bool WithEnvInputs = true;
  bool WithAssertions = true;
  bool WithHelperProc = true;
  /// Emit pointer statements (a dedicated pointer variable that always
  /// holds the address of some local, so dereferences never fault); the
  /// closing transformation then has to run the may-alias machinery.
  bool WithPointers = true;
};

class RandomProgramGenerator {
public:
  explicit RandomProgramGenerator(const RandomProgramConfig &Config)
      : Config(Config), R(Config.Seed) {}

  std::string generate() {
    Out.clear();
    for (int C = 0; C != Config.NumChannels; ++C)
      line("chan ch" + std::to_string(C) + "[" +
           std::to_string(1 + R.below(3)) + "];");
    for (int S = 0; S != Config.NumSemaphores; ++S)
      line("sem sm" + std::to_string(S) + "(" + std::to_string(R.below(2)) +
           ");");
    line("shared sv = 0;");
    line("");

    if (Config.WithHelperProc) {
      // A helper with data flow through parameter and return value.
      line("proc helper(h) {");
      line("  var t = h * 2;");
      line("  if (t > 4)");
      line("    t = t - 1;");
      line("  return t + 1;");
      line("}");
      line("");
    }

    for (int P = 0; P != Config.NumProcesses; ++P)
      emitProcessProc(P);

    for (int P = 0; P != Config.NumProcesses; ++P) {
      bool EnvArg = R.chance(1, 2);
      line("process inst" + std::to_string(P) + " = work" +
           std::to_string(P) + "(" +
           (EnvArg ? std::string("env")
                   : std::to_string(R.range(0, 5))) +
           ");");
    }
    return Out;
  }

private:
  void line(const std::string &Text) {
    Out += Text;
    Out += '\n';
  }

  std::string randomChan() {
    return "ch" + std::to_string(R.below(Config.NumChannels));
  }
  std::string randomSem() {
    return "sm" + std::to_string(R.below(Config.NumSemaphores));
  }

  /// A random expression over the declared locals (v0..v2) and parameter p.
  std::string randomExpr(int Depth = 0) {
    if (Depth >= 2 || R.chance(2, 5)) {
      switch (R.below(3)) {
      case 0:
        return std::to_string(R.range(0, 9));
      case 1:
        return "v" + std::to_string(R.below(3));
      default:
        return "p";
      }
    }
    static const char *Ops[] = {"+", "-", "*"};
    std::string Lhs = randomExpr(Depth + 1);
    std::string Rhs = randomExpr(Depth + 1);
    if (R.chance(1, 5))
      return "(" + Lhs + ") % " + std::to_string(R.range(2, 5));
    return "(" + Lhs + ") " + Ops[R.below(3)] + " (" + Rhs + ")";
  }

  std::string randomCond() {
    static const char *Cmp[] = {"<", "<=", ">", ">=", "==", "!="};
    return "(" + randomExpr(1) + ") " + Cmp[R.below(6)] + " (" +
           randomExpr(1) + ")";
  }

  void emitStmt(int Depth, std::string Pad) {
    switch (R.below(10)) {
    case 0: // Plain assignment.
    case 1:
      line(Pad + "v" + std::to_string(R.below(3)) + " = " + randomExpr() +
           ";");
      return;
    case 2: // Environment input.
      if (Config.WithEnvInputs) {
        line(Pad + "v" + std::to_string(R.below(3)) + " = env_input();");
        return;
      }
      [[fallthrough]];
    case 3: // Send.
      line(Pad + "send(" + randomChan() + ", " + randomExpr(1) + ");");
      return;
    case 4: // Receive.
      line(Pad + "v" + std::to_string(R.below(3)) + " = recv(" +
           randomChan() + ");");
      return;
    case 5: // Semaphore pulse.
      if (R.chance(1, 2)) {
        line(Pad + "sem_signal(" + randomSem() + ");");
      } else {
        line(Pad + "sem_wait(" + randomSem() + ");");
        line(Pad + "sem_signal(" + randomSem() + ");");
      }
      return;
    case 6: // Toss.
      line(Pad + "v" + std::to_string(R.below(3)) + " = VS_toss(" +
           std::to_string(R.range(1, 3)) + ");");
      return;
    case 7: // Conditional.
      if (Depth < Config.MaxNestingDepth) {
        line(Pad + "if (" + randomCond() + ") {");
        emitStmt(Depth + 1, Pad + "  ");
        line(Pad + "} else {");
        emitStmt(Depth + 1, Pad + "  ");
        line(Pad + "}");
        return;
      }
      [[fallthrough]];
    case 8: // Bounded loop.
      if (Depth < Config.MaxNestingDepth) {
        std::string I = "i" + std::to_string(Depth) + "_" +
                        std::to_string(LoopCounter++);
        line(Pad + "var " + I + ";");
        line(Pad + "for (" + I + " = 0; " + I + " < " +
             std::to_string(R.range(1, 3)) + "; " + I + " = " + I +
             " + 1) {");
        emitStmt(Depth + 1, Pad + "  ");
        line(Pad + "}");
        return;
      }
      [[fallthrough]];
    case 9: // Assertion, pointers, helper call, or shared-variable access.
      if (Config.WithAssertions && R.chance(1, 3)) {
        line(Pad + "VS_assert(" + randomCond() + ");");
        return;
      }
      if (Config.WithPointers && R.chance(1, 3)) {
        switch (R.below(3)) {
        case 0: // Retarget the pointer (always at a valid local).
          line(Pad + "ptr = &v" + std::to_string(R.below(3)) + ";");
          break;
        case 1: // Store through it.
          line(Pad + "*ptr = " + randomExpr(1) + ";");
          break;
        default: // Load through it.
          line(Pad + "v" + std::to_string(R.below(3)) + " = *ptr;");
          break;
        }
        return;
      }
      if (Config.WithHelperProc && R.chance(1, 3)) {
        line(Pad + "v" + std::to_string(R.below(3)) + " = helper(" +
             randomExpr(1) + ");");
        return;
      }
      if (R.chance(1, 2))
        line(Pad + "write(sv, " + randomExpr(1) + ");");
      else
        line(Pad + "v" + std::to_string(R.below(3)) + " = read(sv);");
      return;
    }
  }

  void emitProcessProc(int P) {
    line("proc work" + std::to_string(P) + "(p) {");
    line("  var v0 = 0;");
    line("  var v1 = 1;");
    line("  var v2 = 2;");
    if (Config.WithPointers) {
      line("  var ptr;");
      line("  ptr = &v0;");
    }
    for (int S = 0; S != Config.StatementsPerProc; ++S)
      emitStmt(0, "  ");
    line("}");
    line("");
  }

  RandomProgramConfig Config;
  Rng R;
  std::string Out;
  int LoopCounter = 0;
};

/// Convenience: generate the source for \p Seed. Seeds below 1000 use the
/// default shape; seeds in [1000, 2000) use a wider shape (three processes,
/// deeper nesting, no helper procedure) so the property suites cover more
/// than one program topology.
inline std::string randomOpenProgram(uint64_t Seed) {
  RandomProgramConfig C;
  C.Seed = Seed;
  if (Seed >= 1000 && Seed < 2000) {
    C.NumProcesses = 3;
    C.NumChannels = 3;
    C.StatementsPerProc = 5;
    C.MaxNestingDepth = 3;
    C.WithHelperProc = false;
  }
  return RandomProgramGenerator(C).generate();
}

} // namespace closer

#endif // CLOSER_TESTS_RANDOMPROGRAM_H
