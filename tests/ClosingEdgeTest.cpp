//===- ClosingEdgeTest.cpp - Closing-transformation edge cases ---------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "closing/ClosingTransform.h"

#include "cfg/CfgPrinter.h"
#include "closing/Pipeline.h"
#include "explorer/Search.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

size_t countKind(const ProcCfg &Proc, CfgNodeKind Kind) {
  size_t N = 0;
  for (const CfgNode &Node : Proc.Nodes)
    N += Node.Kind == Kind;
  return N;
}

TEST(ClosingEdgeTest, TaintedSwitchBecomesTossOverArms) {
  CloseResult R = closeSource(R"(
chan c[4];

proc main() {
  var ev;
  ev = env_input();
  switch (ev % 3) {
  case 0:
    send(c, 'a');
  case 1:
    send(c, 'b');
  default:
    send(c, 'z');
  }
}

process m = main();
)");
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  const ProcCfg &P = R.Closed->Procs[0];
  EXPECT_EQ(countKind(P, CfgNodeKind::Switch), 0u);
  ASSERT_EQ(countKind(P, CfgNodeKind::TossBranch), 1u);
  for (const CfgNode &Node : P.Nodes)
    if (Node.Kind == CfgNodeKind::TossBranch) {
      EXPECT_EQ(Node.TossBound, 2) << "three arms -> VS_toss(2)";
    }
}

TEST(ClosingEdgeTest, NestedTaintedBranchesCollapseToOneWideToss) {
  // Two nested eliminated tests with four distinct marked leaves: the
  // single control arc entering the region needs a 4-way toss.
  CloseResult R = closeSource(R"(
chan c[8];

proc main() {
  var a;
  var b;
  a = env_input();
  b = env_input();
  if (a > 0) {
    if (b > 0)
      send(c, 1);
    else
      send(c, 2);
  } else {
    if (b > 0)
      send(c, 3);
    else
      send(c, 4);
  }
}

process m = main();
)");
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  const ProcCfg &P = R.Closed->Procs[0];
  ASSERT_EQ(countKind(P, CfgNodeKind::TossBranch), 1u);
  for (const CfgNode &Node : P.Nodes)
    if (Node.Kind == CfgNodeKind::TossBranch) {
      EXPECT_EQ(Node.TossBound, 3);
    }
}

TEST(ClosingEdgeTest, TaintedArrayIndexEliminatesAccess) {
  CloseResult R = closeSource(R"(
chan c[4];

proc main() {
  var a[4];
  var i;
  var v;
  i = env_input();
  a[0] = 5;
  v = a[i % 4];
  if (v > 0)
    send(c, 1);
  else
    send(c, 0);
}

process m = main();
)");
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  const ProcCfg &P = R.Closed->Procs[0];
  // The read through the tainted index and the branch on it are gone.
  EXPECT_EQ(countKind(P, CfgNodeKind::Branch), 0u);
  EXPECT_EQ(countKind(P, CfgNodeKind::TossBranch), 1u);
  // The untainted write a[0] = 5 is preserved.
  bool KeptWrite = false;
  for (const CfgNode &Node : P.Nodes)
    if (Node.Kind == CfgNodeKind::Assign &&
        Node.Target->Kind == ExprKind::ArrayIndex)
      KeptWrite = true;
  EXPECT_TRUE(KeptWrite);
}

TEST(ClosingEdgeTest, TaintedTossBoundIsEliminated) {
  CloseResult R = closeSource(R"(
chan c[4];

proc main() {
  var n;
  var v;
  n = env_input();
  v = VS_toss(n);
  if (v > 0)
    send(c, 1);
  else
    send(c, 0);
}

process m = main();
)");
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  const ProcCfg &P = R.Closed->Procs[0];
  // The env-bounded toss call is gone; the downstream branch became a
  // two-way toss node.
  for (const CfgNode &Node : P.Nodes)
    EXPECT_FALSE(Node.Kind == CfgNodeKind::Call &&
                 Node.Builtin == BuiltinKind::VsToss);
  EXPECT_EQ(countKind(P, CfgNodeKind::TossBranch), 1u);
}

TEST(ClosingEdgeTest, UncalledDeadProcedureClosesWithoutProcesses) {
  CloseResult R = closeSource(R"(
chan c[2];

proc unused(x) {
  if (x > 0)
    send(c, 1);
  else
    send(c, 2);
}

proc main() {
  send(c, 0);
}

process m = main();
)");
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  // `unused` has no environment-bound parameters (never instantiated or
  // called), so it survives untouched.
  const ProcCfg *Unused = R.Closed->findProc("unused");
  ASSERT_NE(Unused, nullptr);
  EXPECT_EQ(Unused->Params.size(), 1u);
  EXPECT_EQ(countKind(*Unused, CfgNodeKind::Branch), 1u);
}

TEST(ClosingEdgeTest, RecursiveTaintedProcedure) {
  CloseResult R = closeSource(R"(
chan c[8];

proc walk(n, depth) {
  if (depth >= 2)
    return 0;
  if (n % 2 == 0)
    send(c, depth);
  else
    send(c, -depth);
  return walk(n / 2, depth + 1);
}

proc main() {
  var x;
  var r;
  x = env_input();
  r = walk(x, 0);
}

process m = main();
)");
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  const ProcCfg *Walk = R.Closed->findProc("walk");
  ASSERT_NE(Walk, nullptr);
  // n is env-bound (via main) and recursively re-bound: removed. depth is
  // internal (constants 0, depth+1): kept.
  ASSERT_EQ(Walk->Params.size(), 1u);
  EXPECT_EQ(Walk->Params[0], "depth");
  // The parity test became a toss; the depth guard survived.
  EXPECT_EQ(countKind(*Walk, CfgNodeKind::TossBranch), 1u);
  EXPECT_EQ(countKind(*Walk, CfgNodeKind::Branch), 1u);

  // Executable and bounded.
  SearchOptions Opts;
  Explorer Ex(*R.Closed, Opts);
  SearchStats Stats = Ex.run();
  EXPECT_TRUE(Stats.Completed);
  EXPECT_EQ(Stats.RuntimeErrors, 0u);
  EXPECT_GT(Stats.Terminations, 0u);
}

TEST(ClosingEdgeTest, EnvOutputOfUntaintedValueStillRemoved) {
  CloseResult R = closeSource(R"(
chan c[2];

proc main() {
  var ok = 7;
  env_output(ok);
  send(c, ok);
}

process m = main();
)");
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_EQ(R.Stats.EnvCallsRemoved, 1u);
  for (const ProcCfg &Proc : R.Closed->Procs)
    for (const CfgNode &Node : Proc.Nodes)
      EXPECT_FALSE(Node.Kind == CfgNodeKind::Call &&
                   Node.Builtin == BuiltinKind::EnvOutput);
  // The untainted send payload is intact.
  const ProcCfg &P = R.Closed->Procs[0];
  for (const CfgNode &Node : P.Nodes)
    if (Node.Kind == CfgNodeKind::Call && Node.Builtin == BuiltinKind::Send) {
      EXPECT_EQ(Node.Args[1]->Kind, ExprKind::VarRef);
    }
}

TEST(ClosingEdgeTest, WholeBodyEliminatedYieldsStartToReturn) {
  CloseResult R = closeSource(R"(
proc main() {
  var a;
  var b;
  a = env_input();
  b = a * 2;
  env_output(b);
}

process m = main();
)");
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  const ProcCfg &P = R.Closed->Procs[0];
  // Everything was environment-dependent: only Start and Return remain.
  ASSERT_EQ(P.Nodes.size(), 2u);
  EXPECT_EQ(P.Nodes[0].Kind, CfgNodeKind::Start);
  EXPECT_EQ(P.Nodes[1].Kind, CfgNodeKind::Return);
}

TEST(ClosingEdgeTest, MixedConstAndEnvInstantiationsRemoveParamEverywhere) {
  // One env instantiation taints the parameter for every instance; the
  // constant instantiation loses its (now meaningless) argument too —
  // exactly the conservatism the paper describes for Step 5.
  CloseResult R = closeSource(R"(
chan c[4];

proc worker(id) {
  if (id > 0)
    send(c, 1);
  else
    send(c, 2);
}

process w1 = worker(7);
process w2 = worker(env);
)");
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_TRUE(R.Closed->findProc("worker")->Params.empty());
  for (const ProcessDecl &Inst : R.Closed->Processes)
    EXPECT_TRUE(Inst.Args.empty());
  // Both processes now behave most-generally (toss).
  const ProcCfg &P = *R.Closed->findProc("worker");
  EXPECT_EQ(countKind(P, CfgNodeKind::TossBranch), 1u);
}

} // namespace
