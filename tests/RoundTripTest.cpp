//===- RoundTripTest.cpp - Pretty-printer round-trip properties -------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// emitModuleSource() is the bridge every multi-step workflow used to cross
// between `closer` invocations, so it must not distort programs:
//
//  * A module compiled from source contains no TossBranch nodes (the
//    surface language has no toss statement), so emit -> reparse must
//    reproduce identical CFG node / arc / toss counts.
//  * A closed module lowers TossBranch to `__tossN = VS_toss(k)` plus a
//    branch chain on emission, so one round changes the counts — but the
//    emitted form must be a fixpoint: emitting the reparse of an emission
//    reproduces the emission byte for byte.
//
//===----------------------------------------------------------------------===//

#include "closing/Pipeline.h"

#include "cfg/CfgPrinter.h"

#include "RandomProgram.h"
#include "TestUtil.h"

#include <fstream>
#include <sstream>

#ifndef CLOSER_SOURCE_DIR
#define CLOSER_SOURCE_DIR "."
#endif

namespace closer {
namespace {

const char *const ExampleNames[] = {"bounded_buffer.mc", "figure2.mc",
                                    "lock_order_bug.mc",
                                    "resource_manager.mc"};

std::string readExample(const std::string &Name) {
  std::string Path =
      std::string(CLOSER_SOURCE_DIR) + "/examples/minic/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

struct CfgCounts {
  size_t Procs = 0;
  size_t Nodes = 0;
  size_t Arcs = 0;
  size_t TossNodes = 0;

  bool operator==(const CfgCounts &O) const {
    return Procs == O.Procs && Nodes == O.Nodes && Arcs == O.Arcs &&
           TossNodes == O.TossNodes;
  }
};

CfgCounts countModule(const Module &Mod) {
  CfgCounts C;
  C.Procs = Mod.Procs.size();
  for (const ProcCfg &Proc : Mod.Procs)
    for (const CfgNode &Node : Proc.Nodes) {
      ++C.Nodes;
      C.Arcs += Node.Arcs.size();
      if (Node.Kind == CfgNodeKind::TossBranch)
        ++C.TossNodes;
    }
  return C;
}

void expectCountIdenticalRoundTrip(const std::string &Source,
                                   const std::string &Label) {
  std::unique_ptr<Module> Original = mustCompile(Source);
  ASSERT_TRUE(Original != nullptr) << Label;
  CfgCounts Before = countModule(*Original);
  ASSERT_EQ(Before.TossNodes, 0u)
      << Label << ": source-compiled modules cannot contain toss nodes";

  std::string Emitted = emitModuleSource(*Original);
  std::unique_ptr<Module> Reparsed = mustCompile(Emitted);
  ASSERT_TRUE(Reparsed != nullptr)
      << Label << ": emitted source does not reparse:\n"
      << Emitted;
  CfgCounts After = countModule(*Reparsed);
  EXPECT_TRUE(Before == After)
      << Label << ": procs " << Before.Procs << "->" << After.Procs
      << ", nodes " << Before.Nodes << "->" << After.Nodes << ", arcs "
      << Before.Arcs << "->" << After.Arcs << ", toss " << Before.TossNodes
      << "->" << After.TossNodes;
}

TEST(RoundTrip, ExamplesReparseWithIdenticalCounts) {
  for (const char *Name : ExampleNames)
    expectCountIdenticalRoundTrip(readExample(Name), Name);
}

TEST(RoundTrip, Figure2ReparsesWithIdenticalCounts) {
  expectCountIdenticalRoundTrip(figure2Source(), "figure2 (embedded)");
}

// Property over the random-program generator: whatever shape the program
// takes, emission never changes what the frontend builds from it.
TEST(RoundTrip, RandomProgramsReparseWithIdenticalCounts) {
  for (uint64_t Seed = 1; Seed <= 40; ++Seed)
    expectCountIdenticalRoundTrip(randomOpenProgram(Seed),
                                  "seed " + std::to_string(Seed));
}

// Closed modules carry TossBranch nodes, which emission lowers to
// `__tossN = VS_toss(k)` plus an if/else chain — so the first round is
// not count-identical by design. It must converge immediately, though:
// emitting the reparse of an emission is byte-identical to the emission.
void expectEmitFixpoint(const Module &Closed, const std::string &Label) {
  std::string S1 = emitModuleSource(Closed);
  std::unique_ptr<Module> M1 = mustCompile(S1);
  ASSERT_TRUE(M1 != nullptr) << Label;
  std::string S2 = emitModuleSource(*M1);
  std::unique_ptr<Module> M2 = mustCompile(S2);
  ASSERT_TRUE(M2 != nullptr) << Label;
  std::string S3 = emitModuleSource(*M2);
  EXPECT_EQ(S2, S3) << Label;
  // And the reparsed closed program keeps its counts from then on.
  EXPECT_TRUE(countModule(*M1) == countModule(*M2)) << Label;
}

TEST(RoundTrip, ClosedExamplesReachEmitFixpoint) {
  for (const char *Name : ExampleNames) {
    CompileResult R = compile(readExample(Name));
    ASSERT_TRUE(R.ok()) << Name << ": " << R.Diags.str();
    expectEmitFixpoint(*R.M, Name);
  }
}

TEST(RoundTrip, ClosedRandomProgramsReachEmitFixpoint) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    CompileResult R = compile(randomOpenProgram(Seed));
    ASSERT_TRUE(R.ok()) << "seed " << Seed << ": " << R.Diags.str();
    expectEmitFixpoint(*R.M, "seed " + std::to_string(Seed));
  }
}

} // namespace
} // namespace closer
