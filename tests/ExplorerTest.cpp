//===- ExplorerTest.cpp - Tests for the stateless explorer -----------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "explorer/Search.h"

#include "RandomProgram.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

SearchOptions plainOptions() {
  SearchOptions Opts;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  return Opts;
}

TEST(ExplorerTest, SingleProcessSingleRun) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  send(c, 1);
  send(c, 2);
}

process m = main();
)");
  Explorer Ex(*Mod, plainOptions());
  SearchStats Stats = Ex.run();
  EXPECT_TRUE(Stats.Completed);
  EXPECT_EQ(Stats.Runs, 1u);
  EXPECT_EQ(Stats.Terminations, 1u);
  EXPECT_EQ(Stats.Deadlocks, 0u);
  EXPECT_EQ(Stats.TreeTransitions, 2u);
}

TEST(ExplorerTest, TossExploresAllOutcomes) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x;
  x = VS_toss(2);
  send(c, x);
}

process m = main();
)");
  Explorer Ex(*Mod, plainOptions());
  SearchStats Stats = Ex.run();
  EXPECT_TRUE(Stats.Completed);
  EXPECT_EQ(Stats.Runs, 3u); // Outcomes 0, 1, 2.
  EXPECT_EQ(Stats.Terminations, 3u);

  Explorer Ex2(*Mod, plainOptions());
  std::vector<Trace> Traces = Ex2.collectTraces(10);
  ASSERT_EQ(Traces.size(), 3u);
}

TEST(ExplorerTest, InterleavingsWithoutReduction) {
  // Two fully independent processes, two sends each: C(4,2) = 6
  // interleavings without reduction.
  auto Mod = mustCompile(R"(
chan a[4];
chan b[4];

proc pa() {
  send(a, 1);
  send(a, 2);
}

proc pb() {
  send(b, 1);
  send(b, 2);
}

process x = pa();
process y = pb();
)");
  Explorer Ex(*Mod, plainOptions());
  SearchStats Stats = Ex.run();
  EXPECT_TRUE(Stats.Completed);
  EXPECT_EQ(Stats.Terminations, 6u);

  // With persistent sets the processes never interact: one interleaving.
  SearchOptions Por;
  Por.UsePersistentSets = true;
  Por.UseSleepSets = true;
  Explorer ExPor(*Mod, Por);
  SearchStats StatsPor = ExPor.run();
  EXPECT_TRUE(StatsPor.Completed);
  EXPECT_EQ(StatsPor.Terminations, 1u);
  EXPECT_LT(StatsPor.StatesVisited, Stats.StatesVisited);
}

TEST(ExplorerTest, SleepSetsPruneConflictFreeInterleavings) {
  // Both processes touch the same channel, so persistent sets cannot
  // separate them, but sleep sets still avoid re-exploring commuting
  // interleavings of the enqueue orderings... orderings differ here
  // (payloads interleave in the FIFO), so all distinct contents are still
  // reached — sleep sets must not lose any of them.
  auto Mod = mustCompile(R"(
chan c[8];

proc pa() {
  send(c, 'fromA');
}

proc pb() {
  send(c, 'fromB');
}

process x = pa();
process y = pb();
)");
  Explorer Plain(*Mod, plainOptions());
  SearchStats S1 = Plain.run();
  EXPECT_EQ(S1.Terminations, 2u); // A-then-B and B-then-A.

  SearchOptions WithSleep = plainOptions();
  WithSleep.UseSleepSets = true;
  Explorer Slept(*Mod, WithSleep);
  SearchStats S2 = Slept.run();
  // Dependent transitions: both orders must still be explored.
  EXPECT_EQ(S2.Terminations, 2u);
}

TEST(ExplorerTest, DeadlockFoundAndReported) {
  auto Mod = mustCompile(R"(
sem a(1);
sem b(1);
chan done[2];

proc left() {
  sem_wait(a);
  sem_wait(b);
  send(done, 1);
  sem_signal(b);
  sem_signal(a);
}

proc right() {
  sem_wait(b);
  sem_wait(a);
  send(done, 2);
  sem_signal(a);
  sem_signal(b);
}

process l = left();
process r = right();
)");
  Explorer Ex(*Mod, plainOptions());
  SearchStats Stats = Ex.run();
  EXPECT_TRUE(Stats.Completed);
  EXPECT_GE(Stats.Deadlocks, 1u);
  EXPECT_GE(Stats.Terminations, 1u);
  ASSERT_FALSE(Ex.reports().empty());
  EXPECT_EQ(Ex.reports()[0].Kind, ErrorReport::Type::Deadlock);

  // Partial-order reduction must preserve deadlock detection (Theorem in
  // [God96]; experiment E7's correctness side).
  SearchOptions Por;
  Explorer ExPor(*Mod, Por);
  SearchStats StatsPor = ExPor.run();
  EXPECT_TRUE(StatsPor.Completed);
  EXPECT_GE(StatsPor.Deadlocks, 1u);
}

TEST(ExplorerTest, AssertionViolationFoundOnlyOnBadPath) {
  auto Mod = mustCompile(R"(
proc main() {
  var x;
  x = VS_toss(3);
  VS_assert(x != 2);
}

process m = main();
)");
  Explorer Ex(*Mod, plainOptions());
  SearchStats Stats = Ex.run();
  EXPECT_TRUE(Stats.Completed);
  EXPECT_EQ(Stats.AssertionViolations, 1u);
  ASSERT_EQ(Ex.reports().size(), 1u);
  EXPECT_EQ(Ex.reports()[0].Kind, ErrorReport::Type::AssertionViolation);
}

TEST(ExplorerTest, StopOnFirstError) {
  auto Mod = mustCompile(R"(
proc main() {
  var x;
  x = VS_toss(9);
  VS_assert(x != 0);
}

process m = main();
)");
  SearchOptions Opts = plainOptions();
  Opts.StopOnFirstError = true;
  Explorer Ex(*Mod, Opts);
  SearchStats Stats = Ex.run();
  EXPECT_FALSE(Stats.Completed);
  EXPECT_EQ(Stats.AssertionViolations, 1u);
  EXPECT_EQ(Stats.Runs, 1u);
}

TEST(ExplorerTest, DepthBoundCutsSearch) {
  auto Mod = mustCompile(R"(
chan c[1];

proc pinger() {
  var i = 0;
  while (1) {
    send(c, i);
    i = i + 1;
  }
}

proc ponger() {
  var v;
  while (1)
    v = recv(c);
}

process a = pinger();
process b = ponger();
)");
  SearchOptions Opts = plainOptions();
  Opts.MaxDepth = 10;
  Explorer Ex(*Mod, Opts);
  SearchStats Stats = Ex.run();
  EXPECT_TRUE(Stats.Completed);
  EXPECT_GT(Stats.DepthLimitHits, 0u);
  EXPECT_EQ(Stats.Deadlocks, 0u);
}

TEST(ExplorerTest, StateHashingPrunesDiamonds) {
  // Two commuting increments onto disjoint shared variables produce
  // diamond-shaped state spaces; hashing collapses the join states.
  auto Mod = mustCompile(R"(
shared u = 0;
shared v = 0;
chan sync[2];

proc pa() {
  write(u, 1);
  write(v, 1);
}

proc pb() {
  write(u, 2);
  write(v, 2);
}

process x = pa();
process y = pb();
)");
  SearchOptions Plain = plainOptions();
  Explorer Ex(*Mod, Plain);
  SearchStats S1 = Ex.run();

  SearchOptions Hashed = plainOptions();
  Hashed.UseStateHashing = true;
  Explorer ExH(*Mod, Hashed);
  SearchStats S2 = ExH.run();
  EXPECT_GT(S2.HashPrunes, 0u);
  EXPECT_LT(S2.StatesVisited, S1.StatesVisited);
}

TEST(ExplorerTest, OpenModuleExploresEnvironmentChoices) {
  // Executing an open module directly: env_input ranges over the finite
  // domain [0, EnvDomainBound] — the naive most-general environment.
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x;
  x = env_input();
  send(c, x);
}

process m = main();
)");
  SearchOptions Opts = plainOptions();
  Opts.Runtime.EnvDomainBound = 4;
  Explorer Ex(*Mod, Opts);
  SearchStats Stats = Ex.run();
  EXPECT_TRUE(Stats.Completed);
  EXPECT_EQ(Stats.Terminations, 5u); // Domain {0..4}.
}

TEST(ExplorerTest, RuntimeErrorReportedWithTrace) {
  auto Mod = mustCompile(R"(
chan c[2];

proc main() {
  var x;
  send(c, 7);
  x = VS_toss(1);
  x = 10 / x;
}

process m = main();
)");
  Explorer Ex(*Mod, plainOptions());
  SearchStats Stats = Ex.run();
  EXPECT_TRUE(Stats.Completed);
  EXPECT_EQ(Stats.RuntimeErrors, 1u); // Only the x == 0 branch divides by 0.
  ASSERT_FALSE(Ex.reports().empty());
  const ErrorReport &R = Ex.reports()[0];
  EXPECT_EQ(R.Kind, ErrorReport::Type::RuntimeError);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::DivisionByZero);
  ASSERT_EQ(R.TraceToError.size(), 1u);
  EXPECT_EQ(R.TraceToError[0].Object, "c");
}

TEST(ExplorerTest, PersistentSetsSplitComponentsDynamically) {
  // Both processes touch the shared channel `sync` first, then work on
  // disjoint channels. The static whole-program footprints overlap, but
  // the *remaining* footprints become disjoint after the sync phase — the
  // persistent sets must start separating the processes mid-run.
  auto Mod = mustCompile(R"(
chan sync[2];
chan a[4];
chan b[4];

proc pa() {
  send(sync, 1);
  send(a, 1);
  send(a, 2);
  send(a, 3);
}

proc pb() {
  send(sync, 2);
  send(b, 1);
  send(b, 2);
  send(b, 3);
}

process x = pa();
process y = pb();
)");
  Explorer Plain(*Mod, plainOptions());
  SearchStats Full = Plain.run();

  SearchOptions Por;
  Explorer Reduced(*Mod, Por);
  SearchStats WithPor = Reduced.run();

  EXPECT_TRUE(Full.Completed);
  EXPECT_TRUE(WithPor.Completed);
  // The sync prefix still interleaves (2 orders) but the disjoint tails
  // collapse: far fewer states than the full product.
  EXPECT_LT(WithPor.StatesVisited * 4, Full.StatesVisited)
      << "full=" << Full.str() << "\npor=" << WithPor.str();
  EXPECT_EQ(WithPor.Deadlocks, Full.Deadlocks);
}

TEST(ExplorerTest, AssertOnlyProcessIsIndependentOfEverything) {
  // VS_assert touches no communication object, so a checker process never
  // constrains the reduction and its violation is still found.
  auto Mod = mustCompile(R"(
chan c[2];

proc worker() {
  send(c, 1);
  send(c, 2);
}

proc checker() {
  var x;
  x = VS_toss(1);
  VS_assert(x == 0);
}

process w = worker();
process k = checker();
)");
  SearchOptions Por;
  Explorer Ex(*Mod, Por);
  SearchStats Stats = Ex.run();
  EXPECT_TRUE(Stats.Completed);
  EXPECT_EQ(Stats.AssertionViolations, 1u);
}

TEST(ExplorerTest, MaxRunsBudget) {
  auto Mod = mustCompile(R"(
proc main() {
  var x;
  x = VS_toss(99);
}

process m = main();
)");
  SearchOptions Opts = plainOptions();
  Opts.MaxRuns = 10;
  Explorer Ex(*Mod, Opts);
  SearchStats Stats = Ex.run();
  EXPECT_FALSE(Stats.Completed);
  EXPECT_EQ(Stats.Runs, 10u);
}

TEST(ExplorerTest, SecondRunStartsFromCleanSlate) {
  // run() must fully re-initialize the traversal state: a second run on
  // the same Explorer reports exactly the same statistics and errors as
  // the first, not a continuation (or corruption) of the previous walk.
  auto Mod = mustCompile(R"(
proc main() {
  var x;
  x = VS_toss(3);
  VS_assert(x != 2);
}

process m = main();
)");
  Explorer Ex(*Mod, plainOptions());
  SearchStats First = Ex.run();
  std::string FirstStr = First.str();
  size_t FirstReports = Ex.reports().size();
  EXPECT_EQ(FirstReports, 1u);

  SearchStats Second = Ex.run();
  EXPECT_EQ(FirstStr, Second.str());
  EXPECT_EQ(FirstReports, Ex.reports().size());
}

TEST(ExplorerTest, SequentialSearchIsDeterministic) {
  // Two independent explorers over the same module must agree on every
  // statistic — the search order is a pure function of the module.
  for (uint64_t Seed : {3u, 1009u}) {
    auto Mod = mustCompile(randomOpenProgram(Seed));
    ASSERT_TRUE(Mod) << "seed " << Seed;
    SearchOptions Opts;
    Opts.MaxDepth = 10;
    Explorer A(*Mod, Opts);
    Explorer B(*Mod, Opts);
    std::string SA = A.run().str();
    std::string SB = B.run().str();
    EXPECT_EQ(SA, SB) << "seed " << Seed;
    EXPECT_EQ(A.reports().size(), B.reports().size()) << "seed " << Seed;
  }
}

} // namespace
