//===- ParserTest.cpp - MiniC parser tests -----------------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/PrettyPrinter.h"
#include "lang/Sema.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

std::unique_ptr<Program> parseOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto Prog = parseMiniC(Source, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
  return Prog;
}

void expectParseError(const std::string &Source) {
  DiagnosticEngine Diags;
  auto Prog = parseMiniC(Source, Diags);
  EXPECT_TRUE(Prog == nullptr) << "expected a parse error for:\n" << Source;
}

TEST(ParserTest, TopLevelDeclarations) {
  auto Prog = parseOk(R"(
chan c[5];
sem s(2);
shared sv = 7;
var g = 3;
var arr[4];

proc f(a, b) { }

process p1 = f(1, env);
)");
  ASSERT_EQ(Prog->Comms.size(), 3u);
  EXPECT_EQ(Prog->Comms[0].Kind, CommKind::Channel);
  EXPECT_EQ(Prog->Comms[0].Param, 5);
  EXPECT_EQ(Prog->Comms[1].Kind, CommKind::Semaphore);
  EXPECT_EQ(Prog->Comms[1].Param, 2);
  EXPECT_EQ(Prog->Comms[2].Kind, CommKind::SharedVar);
  EXPECT_EQ(Prog->Comms[2].Param, 7);

  ASSERT_EQ(Prog->Globals.size(), 2u);
  EXPECT_EQ(Prog->Globals[0].Init, 3);
  EXPECT_EQ(Prog->Globals[1].ArraySize, 4);

  ASSERT_EQ(Prog->Procs.size(), 1u);
  ASSERT_EQ(Prog->Procs[0].Params.size(), 2u);
  EXPECT_EQ(Prog->Procs[0].Params[1].Name, "b");

  ASSERT_EQ(Prog->Processes.size(), 1u);
  ASSERT_EQ(Prog->Processes[0].Args.size(), 2u);
  EXPECT_FALSE(Prog->Processes[0].Args[0].IsEnv);
  EXPECT_EQ(Prog->Processes[0].Args[0].Value, 1);
  EXPECT_TRUE(Prog->Processes[0].Args[1].IsEnv);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto Prog = parseOk(R"(
proc f() {
  var x;
  x = 1 + 2 * 3;
  x = (1 + 2) * 3;
  x = 1 < 2 && 3 == 4 || 5 != 6;
  x = -x + !x;
}
)");
  const Stmt *Body = Prog->Procs[0].Body.get();
  // x = 1 + 2 * 3 parses as 1 + (2 * 3).
  const Stmt *S1 = Body->Body[1].get();
  ASSERT_EQ(S1->Value->Kind, ExprKind::Binary);
  EXPECT_EQ(S1->Value->BOp, BinaryOp::Add);
  EXPECT_EQ(S1->Value->Rhs->BOp, BinaryOp::Mul);
  // (1 + 2) * 3 parses as (1 + 2) * 3.
  const Stmt *S2 = Body->Body[2].get();
  EXPECT_EQ(S2->Value->BOp, BinaryOp::Mul);
  // && binds tighter than ||.
  const Stmt *S3 = Body->Body[3].get();
  EXPECT_EQ(S3->Value->BOp, BinaryOp::Or);
  EXPECT_EQ(S3->Value->Lhs->BOp, BinaryOp::And);
}

TEST(ParserTest, PointerAndArraySyntax) {
  auto Prog = parseOk(R"(
proc f() {
  var x;
  var a[3];
  var p;
  p = &x;
  *p = 5;
  p = &a[2];
  a[x + 1] = *p;
  x = a[0];
}
)");
  const Stmt *Body = Prog->Procs[0].Body.get();
  const Stmt *AddrAssign = Body->Body[3].get();
  EXPECT_EQ(AddrAssign->Value->Kind, ExprKind::AddrOf);
  const Stmt *DerefStore = Body->Body[4].get();
  EXPECT_EQ(DerefStore->Target->Kind, ExprKind::Deref);
  const Stmt *ArrStore = Body->Body[6].get();
  EXPECT_EQ(ArrStore->Target->Kind, ExprKind::ArrayIndex);
  EXPECT_EQ(ArrStore->Value->Kind, ExprKind::Deref);
}

TEST(ParserTest, ControlFlowStatements) {
  auto Prog = parseOk(R"(
proc f() {
  var i;
  var x = 0;
  if (x) x = 1; else x = 2;
  while (x < 10) x = x + 1;
  for (i = 0; i < 3; i = i + 1) { x = x + i; }
  switch (x) {
  case 0:
    x = 10;
  case 1:
    x = 11;
    break;
  default:
    x = 12;
  }
  top:
  x = x - 1;
  if (x > 0) goto top;
  return;
}
)");
  ASSERT_EQ(Prog->Procs.size(), 1u);
  const std::vector<StmtPtr> &Body = Prog->Procs[0].Body->Body;
  EXPECT_EQ(Body[2]->Kind, StmtKind::If);
  EXPECT_EQ(Body[3]->Kind, StmtKind::While);
  EXPECT_EQ(Body[4]->Kind, StmtKind::For);
  EXPECT_EQ(Body[5]->Kind, StmtKind::Switch);
  EXPECT_EQ(Body[5]->Cases.size(), 2u);
  EXPECT_TRUE(Body[5]->HasDefault);
  EXPECT_EQ(Body[6]->Kind, StmtKind::Label);
  EXPECT_EQ(Body[6]->Name, "top");
}

TEST(ParserTest, CallsInStatementAndRhsPosition) {
  auto Prog = parseOk(R"(
chan c[1];

proc g(a) { return a; }

proc f() {
  var x;
  g(3);
  x = g(4);
  send(c, x);
  x = recv(c);
}
)");
  const std::vector<StmtPtr> &Body = Prog->Procs[1].Body->Body;
  EXPECT_EQ(Body[1]->Kind, StmtKind::ExprCall);
  EXPECT_EQ(Body[2]->Kind, StmtKind::Assign);
  EXPECT_EQ(Body[2]->Value->Kind, ExprKind::Call);
  EXPECT_EQ(Body[4]->Value->Name, "recv");
}

TEST(ParserTest, NegativeConstantsInDeclarations) {
  auto Prog = parseOk(R"(
shared sv = -3;
proc f(a) { }
process p = f(-7);
)");
  EXPECT_EQ(Prog->Comms[0].Param, -3);
  EXPECT_EQ(Prog->Processes[0].Args[0].Value, -7);
}

TEST(ParserTest, ForWithVarDeclInitAndEmptyClauses) {
  auto Prog = parseOk(R"(
proc f() {
  var s = 0;
  for (var j = 0; j < 2; j = j + 1)
    s = s + j;
  for (;;)
    break;
}
)");
  const std::vector<StmtPtr> &Body = Prog->Procs[0].Body->Body;
  EXPECT_EQ(Body[1]->InitStmt->Kind, StmtKind::VarDecl);
  EXPECT_EQ(Body[2]->InitStmt, nullptr);
  EXPECT_EQ(Body[2]->Cond, nullptr);
  EXPECT_EQ(Body[2]->StepStmt, nullptr);
}

TEST(ParserTest, ErrorRecoveryReportsMultipleProblems) {
  DiagnosticEngine Diags;
  auto Prog = parseMiniC(R"(
proc f() {
  var x = ;
  x = 3;
  y 4;
}
)", Diags);
  EXPECT_TRUE(Prog == nullptr);
  EXPECT_GE(Diags.errorCount(), 2u);
}

TEST(ParserTest, SyntaxErrors) {
  expectParseError("proc f( { }");
  expectParseError("chan c;");
  expectParseError("process p = ;");
  expectParseError("proc f() { if x) {} }");
  expectParseError("proc f() { switch (x) { foo: } }");
}

TEST(ParserTest, FuzzedInputNeverCrashes) {
  // The frontend must reject garbage gracefully: shuffled fragments of
  // real MiniC syntax, truncated at random points. No assertion in the
  // lexer/parser may fire and no invalid Program may escape.
  const char *Fragments[] = {
      "proc",   "process", "chan",  "sem",    "shared", "var",   "if",
      "else",   "while",   "for",   "switch", "case",   "default",
      "return", "break",   "goto",  "env",    "unknown", "x",    "y",
      "f",      "42",      "'atom'", "(",     ")",      "{",     "}",
      "[",      "]",       ";",     ",",      ":",      "=",     "==",
      "&&",     "||",      "&",     "*",      "+",      "-",     "/",
      "%",      "<",       ">",     "!",      "send",   "recv",
      "VS_toss", "VS_assert", "env_input",
  };
  Rng R(20260704);
  for (int Trial = 0; Trial != 500; ++Trial) {
    std::string Source;
    int Tokens = static_cast<int>(R.range(1, 60));
    for (int T = 0; T != Tokens; ++T) {
      Source += Fragments[R.below(std::size(Fragments))];
      Source += R.chance(1, 4) ? "\n" : " ";
    }
    DiagnosticEngine Diags;
    auto Prog = parseMiniC(Source, Diags);
    if (Prog) {
      // Whatever parsed must also survive sema without crashing.
      checkProgram(*Prog, Diags);
    }
  }
  SUCCEED();
}

TEST(ParserTest, DeeplyNestedExpressionsParse) {
  std::string Expr = "1";
  for (int I = 0; I != 200; ++I)
    Expr = "(" + Expr + " + 1)";
  std::string Source = "proc f() { var x; x = " + Expr + "; }";
  DiagnosticEngine Diags;
  auto Prog = parseMiniC(Source, Diags);
  EXPECT_TRUE(Prog != nullptr) << Diags.str();
}

TEST(ParserTest, PrettyPrintRoundTrip) {
  const char *Source = R"(
chan c[2];
sem s(1);
shared sv = 4;
var g = 1;

proc helper(a, b) {
  var t;
  t = a % (b + 1);
  if (t == 0 && a < b)
    return a;
  return b;
}

proc main(x) {
  var i;
  var acc = 0;
  for (i = 0; i < 4; i = i + 1) {
    acc = helper(acc, i);
    switch (acc % 3) {
    case 0:
      send(c, acc);
    case 1:
      sem_wait(s);
      sem_signal(s);
    default:
      write(sv, acc);
    }
  }
  while (acc > 0) {
    acc = acc - 1;
    if (acc == 2)
      continue;
    if (acc == 1)
      break;
  }
  VS_assert(acc >= 0);
}

process m = main(env);
)";
  auto Prog = parseOk(Source);
  std::string Printed = printProgram(*Prog);
  auto Reparsed = parseOk(Printed);
  std::string Printed2 = printProgram(*Reparsed);
  EXPECT_EQ(Printed, Printed2) << Printed;
}

} // namespace
