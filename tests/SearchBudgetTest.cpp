//===- SearchBudgetTest.cpp - Explorer budgets, replay, reports --------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "explorer/Search.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

const char *tossTree(int Width) {
  static std::string Src;
  Src = R"(
chan c[4];

proc main() {
  var a;
  var b;
  a = VS_toss()" +
        std::to_string(Width) + R"();
  b = VS_toss()" +
        std::to_string(Width) + R"();
  send(c, a);
}

process m = main();
)";
  return Src.c_str();
}

TEST(SearchBudgetTest, MaxStatesStopsSearch) {
  auto Mod = mustCompile(tossTree(9));
  SearchOptions Opts;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Opts.MaxStates = 20;
  Explorer Ex(*Mod, Opts);
  SearchStats Stats = Ex.run();
  EXPECT_FALSE(Stats.Completed);
  EXPECT_LE(Stats.StatesVisited, 20u);
}

TEST(SearchBudgetTest, ReportCapLimitsStoredReportsNotCounts) {
  auto Mod = mustCompile(R"(
proc main() {
  var x;
  x = VS_toss(9);
  VS_assert(x == 0);
}

process m = main();
)");
  SearchOptions Opts;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Opts.MaxReports = 3;
  Explorer Ex(*Mod, Opts);
  SearchStats Stats = Ex.run();
  EXPECT_EQ(Stats.AssertionViolations, 9u); // Outcomes 1..9 violate.
  EXPECT_EQ(Ex.reports().size(), 3u);       // Storage capped.
}

TEST(SearchBudgetTest, RunIsDeterministicAcrossInvocations) {
  auto Mod = mustCompile(tossTree(3));
  SearchOptions Opts;
  Explorer Ex1(*Mod, Opts);
  Explorer Ex2(*Mod, Opts);
  SearchStats A = Ex1.run();
  SearchStats B = Ex2.run();
  EXPECT_EQ(A.Runs, B.Runs);
  EXPECT_EQ(A.StatesVisited, B.StatesVisited);
  EXPECT_EQ(A.TreeTransitions, B.TreeTransitions);
  EXPECT_EQ(A.Transitions, B.Transitions);

  // Re-running on the same Explorer also reproduces the numbers (full
  // reset semantics).
  SearchStats C = Ex1.run();
  EXPECT_EQ(A.Runs, C.Runs);
  EXPECT_EQ(A.StatesVisited, C.StatesVisited);
}

TEST(SearchBudgetTest, StatsStringMentionsEveryCounter) {
  SearchStats Stats;
  Stats.Runs = 1;
  Stats.Completed = true;
  std::string Text = Stats.str();
  for (const char *Key :
       {"runs=", "states=", "transitions=", "deadlocks=", "terminations=",
        "assertion-violations=", "divergences=", "runtime-errors=",
        "sleep-prunes=", "hash-prunes=", "(complete)"})
    EXPECT_NE(Text.find(Key), std::string::npos) << Key;
}

TEST(SearchBudgetTest, DivergenceReportedDuringSearch) {
  auto Mod = mustCompile(R"(
chan c[1];

proc main() {
  var x;
  var spin;
  x = VS_toss(1);
  send(c, x);
  if (x == 1) {
    spin = 1;
    while (spin)
      spin = spin;
  }
}

process m = main();
)");
  SearchOptions Opts;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Opts.Runtime.InvisibleStepLimit = 200;
  Explorer Ex(*Mod, Opts);
  SearchStats Stats = Ex.run();
  EXPECT_EQ(Stats.Divergences, 1u);
  bool Found = false;
  for (const ErrorReport &R : Ex.reports())
    Found |= R.Kind == ErrorReport::Type::Divergence;
  EXPECT_TRUE(Found);
}

TEST(SearchBudgetTest, CoverageCountsExercisedVisibleOps) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x;
  x = VS_toss(1);
  if (x == 0)
    send(c, 'left');
  else
    send(c, 'right');
  VS_assert(x >= 0);
}

process m = main();
)");
  SearchOptions Opts;
  Explorer Ex(*Mod, Opts);
  SearchStats Stats = Ex.run();
  // Both sends and the assert are reachable and covered.
  EXPECT_EQ(Stats.VisibleOpsTotal, 3u);
  EXPECT_EQ(Stats.VisibleOpsCovered, 3u);
  EXPECT_TRUE(Ex.uncoveredVisibleOps().empty());
  EXPECT_NE(Stats.str().find("visible-op-coverage=3/3"), std::string::npos);
}

TEST(SearchBudgetTest, CoverageExposesUnreachableOps) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x = 1;
  if (x == 0)
    send(c, 'dead');
  else
    send(c, 'live');
}

process m = main();
)");
  Explorer Ex(*Mod, {});
  SearchStats Stats = Ex.run();
  EXPECT_EQ(Stats.VisibleOpsTotal, 2u);
  EXPECT_EQ(Stats.VisibleOpsCovered, 1u);
  auto Uncovered = Ex.uncoveredVisibleOps();
  ASSERT_EQ(Uncovered.size(), 1u);
  EXPECT_EQ(Uncovered[0].first, "main");
}

TEST(SearchBudgetTest, DepthBoundLimitsCoverage) {
  auto Mod = mustCompile(R"(
chan c[8];

proc main() {
  send(c, 1);
  send(c, 2);
  send(c, 3);
}

process m = main();
)");
  SearchOptions Shallow;
  Shallow.MaxDepth = 1;
  Explorer Ex(*Mod, Shallow);
  SearchStats Stats = Ex.run();
  EXPECT_EQ(Stats.VisibleOpsCovered, 1u);
  EXPECT_EQ(Ex.uncoveredVisibleOps().size(), 2u);
}

TEST(SearchBudgetTest, ErrorReportRenderingIsInformative) {
  auto Mod = mustCompile(R"(
sem a(1);
sem b(1);
chan done[1];

proc left() {
  sem_wait(a);
  sem_wait(b);
  send(done, 1);
}

proc right() {
  sem_wait(b);
  sem_wait(a);
  send(done, 2);
}

process l = left();
process r = right();
)");
  SearchOptions Opts;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Explorer Ex(*Mod, Opts);
  Ex.run();
  ASSERT_FALSE(Ex.reports().empty());
  std::string Text = Ex.reports()[0].str();
  EXPECT_NE(Text.find("deadlock"), std::string::npos) << Text;
  EXPECT_NE(Text.find("sem_wait"), std::string::npos) << Text;
  EXPECT_NE(Text.find("depth"), std::string::npos) << Text;
}

} // namespace
