//===- IntegrationTest.cpp - End-to-end pipeline on realistic apps ----------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// Whole-pipeline tests on hand-written reactive applications that combine
// language features the unit tests exercise in isolation: procedures with
// return values, pointers across frames, arrays, switch dispatch, every
// communication-object kind, and an open environment boundary.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgPrinter.h"
#include "closing/Pipeline.h"
#include "envgen/NaiveClose.h"
#include "explorer/Search.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace closer;

namespace {

/// An elevator controller: floor requests come from the environment, the
/// cabin logic is internal. Movement is structurally bounded (an untainted
/// step budget per request) so the closed over-approximation stays finite;
/// the preserved invariant is on the untainted request counter. Note the
/// shape: the *step budget* loop is a separate untainted conditional so
/// that closing the tainted `cur != goal` test cannot unbound the loop —
/// this is exactly the "write verification-friendly reactive code" guidance
/// the paper's methodology implies.
const char *elevatorSource() {
  return R"(
chan requests[2];
chan position[8];
shared floor = 0;

proc panel() {
  var k;
  var target;
  for (k = 0; k < 2; k = k + 1) {
    target = env_input();
    if (target > 0) {
      if (target < 4)
        send(requests, target);
      else
        send(requests, 3);
    } else {
      send(requests, 0);
    }
  }
}

proc move_one(cur, goal) {
  if (cur < goal)
    return cur + 1;
  if (cur > goal)
    return cur - 1;
  return cur;
}

proc cabin() {
  var goal;
  var cur = 0;
  var req;
  var step;
  var served = 0;
  for (req = 0; req < 2; req = req + 1) {
    goal = recv(requests);
    for (step = 0; step < 2; step = step + 1) {
      if (cur != goal) {
        cur = move_one(cur, goal);
        write(floor, cur);
        send(position, cur);
      }
    }
    served = served + 1;
    VS_assert(served <= 2);
  }
}

process pnl = panel();
process cab = cabin();
)";
}

/// An ATM: the card/PIN arrive from the environment; the vault and audit
/// logic are internal and use arrays and pointers.
const char *atmSource() {
  return R"(
chan audit[16];
sem vault(1);
var balances[4];

proc adjust(slot, delta) {
  var p;
  p = &balances[slot];
  *p = *p + delta;
  return *p;
}

proc atm() {
  var pin;
  var acct;
  var session;
  var newbal;
  for (session = 0; session < 2; session = session + 1) {
    pin = env_input();
    acct = session % 4;
    if (pin == 1234) {
      sem_wait(vault);
      newbal = adjust(acct, 10);
      send(audit, 'deposit');
      VS_assert(newbal >= 0);
      sem_signal(vault);
    } else {
      send(audit, 'rejected');
    }
  }
  send(audit, 'done');
}

proc auditor() {
  var ev;
  var deposits = 0;
  ev = recv(audit);
  while (ev != 'done') {
    if (ev == 'deposit')
      deposits = deposits + 1;
    VS_assert(deposits <= 2);
    ev = recv(audit);
  }
}

process machine = atm();
process log = auditor();
)";
}

void expectClosedAndExplorable(const char *Source, size_t Depth,
                               uint64_t ExpectAssertViolations = 0) {
  CloseResult R = closeSource(Source);
  ASSERT_TRUE(R.ok()) << R.Diags.str();

  EnvAnalysis Analysis(*R.Closed);
  EXPECT_TRUE(Analysis.moduleIsClosed());

  SearchOptions Opts;
  Opts.MaxDepth = Depth;
  Opts.MaxRuns = 400000;
  Explorer Ex(*R.Closed, Opts);
  SearchStats Stats = Ex.run();
  EXPECT_TRUE(Stats.Completed) << Stats.str();
  EXPECT_EQ(Stats.AssertionViolations, ExpectAssertViolations)
      << (Ex.reports().empty() ? Stats.str() : Ex.reports()[0].str());
  EXPECT_EQ(Stats.RuntimeErrors, 0u)
      << (Ex.reports().empty() ? Stats.str() : Ex.reports()[0].str());
  EXPECT_GT(Stats.Terminations, 0u);
}

TEST(IntegrationTest, ElevatorClosesAndVerifies) {
  expectClosedAndExplorable(elevatorSource(), 50);
}

TEST(IntegrationTest, ElevatorTraceInclusion) {
  auto Mod = mustCompile(elevatorSource());
  Module Naive = naiveCloseModule(*Mod, {5});

  SearchOptions Opts;
  Opts.MaxDepth = 18;
  Opts.MaxRuns = 60000;
  Explorer NaiveEx(Naive, Opts);
  std::vector<Trace> NaiveTraces = NaiveEx.collectTraces(48);
  ASSERT_FALSE(NaiveTraces.empty());

  CloseResult R = closeSource(elevatorSource());
  ASSERT_TRUE(R.ok());
  SearchOptions ClosedOpts = Opts;
  ClosedOpts.MaxRuns = 400000;
  Explorer ClosedEx(*R.Closed, ClosedOpts);
  std::vector<Trace> ClosedTraces = ClosedEx.collectTraces(60000);
  if (!ClosedEx.stats().Completed)
    GTEST_SKIP() << "closed-side search budget exhausted";

  for (const Trace &NT : NaiveTraces) {
    bool Covered = false;
    for (const Trace &CT : ClosedTraces)
      if (traceSubsumes(CT, NT)) {
        Covered = true;
        break;
      }
    EXPECT_TRUE(Covered) << traceToString(NT);
  }
}

TEST(IntegrationTest, AtmClosesAndVerifies) {
  expectClosedAndExplorable(atmSource(), 40);
}

TEST(IntegrationTest, AtmPinCheckBecomesToss) {
  CloseResult R = closeSource(atmSource());
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  const ProcCfg *Atm = R.Closed->findProc("atm");
  ASSERT_NE(Atm, nullptr);
  size_t Tosses = 0;
  for (const CfgNode &Node : Atm->Nodes)
    Tosses += Node.Kind == CfgNodeKind::TossBranch;
  EXPECT_EQ(Tosses, 1u) << printCfg(*Atm);
  // The internal vault arithmetic survives: adjust() is still called.
  bool CallsAdjust = false;
  for (const CfgNode &Node : Atm->Nodes)
    CallsAdjust |= Node.Kind == CfgNodeKind::Call && Node.Callee == "adjust";
  EXPECT_TRUE(CallsAdjust);
}

TEST(IntegrationTest, AtmAuditorInvariantViolableUnderFreeEnvironment) {
  // Strengthen the auditor: claim at most ONE deposit. Under the most
  // general environment (both sessions may present the right PIN) this is
  // violated — the closed system must find it.
  std::string Strict = atmSource();
  size_t Pos = Strict.find("deposits <= 2");
  ASSERT_NE(Pos, std::string::npos);
  Strict.replace(Pos, std::string("deposits <= 2").size(), "deposits <= 1");

  CloseResult R = closeSource(Strict);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  SearchOptions Opts;
  Opts.MaxDepth = 40;
  Explorer Ex(*R.Closed, Opts);
  SearchStats Stats = Ex.run();
  EXPECT_GT(Stats.AssertionViolations, 0u);
}

TEST(IntegrationTest, EmittedElevatorBehavesIdentically) {
  CloseResult R = closeSource(elevatorSource());
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  std::string Emitted = emitModuleSource(*R.Closed);

  DiagnosticEngine Diags;
  auto Reparsed = compileAndVerify(Emitted, Diags);
  ASSERT_TRUE(Reparsed) << Diags.str() << "\n" << Emitted;

  SearchOptions Opts;
  Opts.MaxDepth = 16;
  Explorer ExA(*R.Closed, Opts);
  Explorer ExB(*Reparsed, Opts);
  std::vector<Trace> A = ExA.collectTraces(4096);
  std::vector<Trace> B = ExB.collectTraces(4096);
  std::set<std::string> SA, SB;
  for (const Trace &T : A)
    SA.insert(traceToString(T));
  for (const Trace &T : B)
    SB.insert(traceToString(T));
  EXPECT_EQ(SA, SB);
}

TEST(IntegrationTest, PartialStubMethodology) {
  // The §1 methodology as a test: the same device with (a) a precise
  // manual stub that issues at most one 'step', and (b) the most general
  // environment. The invariant (an *untainted* step counter stays <= 1)
  // holds under the stub and is violated under the free environment —
  // showing why the paper recommends stubbing the realistic part and
  // auto-closing the rest.
  const char *Stubbed = R"(
chan cmds[4];
chan out[8];

proc device() {
  var c;
  var k;
  var steps = 0;
  for (k = 0; k < 3; k = k + 1) {
    c = recv(cmds);
    if (c == 'step') {
      steps = steps + 1;
      send(out, steps);
    }
  }
  VS_assert(steps <= 1);
}

proc driver() {
  send(cmds, 'step');
  send(cmds, 'idle');
  send(cmds, 'idle');
}

process dev = device();
process drv = driver();
)";
  CloseResult R = closeSource(Stubbed);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  SearchOptions Opts;
  Opts.MaxDepth = 20;
  Explorer Ex(*R.Closed, Opts);
  SearchStats Stats = Ex.run();
  EXPECT_EQ(Stats.AssertionViolations, 0u)
      << "the stubbed driver issues at most one step";

  const char *Unstubbed = R"(
chan out[8];

proc device() {
  var c;
  var k;
  var steps = 0;
  for (k = 0; k < 3; k = k + 1) {
    c = env_input();
    if (c == 1) {
      steps = steps + 1;
      send(out, steps);
    }
  }
  VS_assert(steps <= 1);
}

process dev = device();
)";
  CloseResult R2 = closeSource(Unstubbed);
  ASSERT_TRUE(R2.ok()) << R2.Diags.str();
  // The counter is untainted (only constants flow into it), so the
  // assertion is preserved even though the branch became a toss.
  const ProcCfg *Dev = R2.Closed->findProc("device");
  for (const CfgNode &Node : Dev->Nodes)
    if (Node.Kind == CfgNodeKind::Call &&
        Node.Builtin == BuiltinKind::VsAssert) {
      EXPECT_NE(Node.Args[0]->Kind, ExprKind::Unknown);
    }
  Explorer Ex2(*R2.Closed, Opts);
  SearchStats Stats2 = Ex2.run();
  EXPECT_GT(Stats2.AssertionViolations, 0u)
      << "the most general environment can step repeatedly";
}

} // namespace
