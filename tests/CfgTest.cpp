//===- CfgTest.cpp - CFG construction, verification, printing tests --------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"

#include "cfg/CfgPrinter.h"
#include "cfg/CfgVerifier.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

const ProcCfg &onlyProc(const Module &Mod) {
  EXPECT_EQ(Mod.Procs.size(), 1u);
  return Mod.Procs[0];
}

size_t countKind(const ProcCfg &Proc, CfgNodeKind Kind) {
  size_t N = 0;
  for (const CfgNode &Node : Proc.Nodes)
    N += Node.Kind == Kind;
  return N;
}

TEST(CfgTest, EmptyProcIsStartPlusReturn) {
  auto Mod = mustCompile("proc f() { }");
  const ProcCfg &P = onlyProc(*Mod);
  ASSERT_EQ(P.Nodes.size(), 2u);
  EXPECT_EQ(P.Nodes[0].Kind, CfgNodeKind::Start);
  EXPECT_EQ(P.Nodes[1].Kind, CfgNodeKind::Return);
  EXPECT_EQ(P.Nodes[0].Arcs[0].Target, 1u);
}

TEST(CfgTest, StraightLineChainsAlwaysArcs) {
  auto Mod = mustCompile(R"(
proc f() {
  var a = 1;
  var b;
  b = a + 1;
  a = b * 2;
}
)");
  const ProcCfg &P = onlyProc(*Mod);
  // Start, a=1, b=a+1, a=b*2, Return.
  ASSERT_EQ(P.Nodes.size(), 5u);
  for (size_t I = 0; I + 1 < P.Nodes.size(); ++I) {
    ASSERT_EQ(P.Nodes[I].Arcs.size(), 1u);
    EXPECT_EQ(P.Nodes[I].Arcs[0].Target, I + 1);
  }
  EXPECT_EQ(P.Locals.size(), 2u);
}

TEST(CfgTest, IfProducesBranchWithJoin) {
  auto Mod = mustCompile(R"(
proc f() {
  var x = 0;
  if (x < 1)
    x = 1;
  else
    x = 2;
  x = 3;
}
)");
  const ProcCfg &P = onlyProc(*Mod);
  EXPECT_EQ(countKind(P, CfgNodeKind::Branch), 1u);
  const CfgNode *Branch = nullptr;
  for (const CfgNode &N : P.Nodes)
    if (N.Kind == CfgNodeKind::Branch)
      Branch = &N;
  ASSERT_NE(Branch, nullptr);
  ASSERT_EQ(Branch->Arcs.size(), 2u);
  EXPECT_EQ(Branch->Arcs[0].Kind, ArcKind::IfTrue);
  EXPECT_EQ(Branch->Arcs[1].Kind, ArcKind::IfFalse);
  // Both arms converge on x = 3.
  NodeId ThenNext = P.node(Branch->Arcs[0].Target).Arcs[0].Target;
  NodeId ElseNext = P.node(Branch->Arcs[1].Target).Arcs[0].Target;
  EXPECT_EQ(ThenNext, ElseNext);
}

TEST(CfgTest, WhileHasBackEdge) {
  auto Mod = mustCompile(R"(
proc f() {
  var i = 0;
  while (i < 5)
    i = i + 1;
}
)");
  const ProcCfg &P = onlyProc(*Mod);
  const CfgNode *Branch = nullptr;
  NodeId BranchId = InvalidNode;
  for (size_t I = 0; I != P.Nodes.size(); ++I)
    if (P.Nodes[I].Kind == CfgNodeKind::Branch) {
      Branch = &P.Nodes[I];
      BranchId = static_cast<NodeId>(I);
    }
  ASSERT_NE(Branch, nullptr);
  // Body's single statement loops back to the condition.
  const CfgNode &Body = P.node(Branch->Arcs[0].Target);
  ASSERT_EQ(Body.Arcs.size(), 1u);
  EXPECT_EQ(Body.Arcs[0].Target, BranchId);
}

TEST(CfgTest, BreakAndContinueTargets) {
  auto Mod = mustCompile(R"(
chan c[1];

proc f() {
  var i;
  for (i = 0; i < 10; i = i + 1) {
    if (i == 2)
      continue;
    if (i == 5)
      break;
    send(c, i);
  }
  send(c, 99);
}
)");
  const ProcCfg &P = onlyProc(*Mod);
  DiagnosticEngine Diags;
  EXPECT_TRUE(verifyProc(*Mod, P, Diags)) << Diags.str();
  // There is exactly one loop-head branch plus two if branches.
  EXPECT_EQ(countKind(P, CfgNodeKind::Branch), 3u);
}

TEST(CfgTest, GotoForwardAndBackward) {
  auto Mod = mustCompile(R"(
chan c[1];

proc f() {
  var x = 0;
  goto skip;
  send(c, 1);
skip:
  x = x + 1;
  if (x < 3) goto back;
  return;
back:
  goto skip;
}
)");
  const ProcCfg &P = onlyProc(*Mod);
  DiagnosticEngine Diags;
  EXPECT_TRUE(verifyProc(*Mod, P, Diags)) << Diags.str();
  // send(c, 1) is unreachable and pruned.
  EXPECT_EQ(countKind(P, CfgNodeKind::Call), 0u);
}

TEST(CfgTest, ReturnValueLoweredThroughRetVal) {
  auto Mod = mustCompile("proc f(a) { return a + 1; }");
  const ProcCfg &P = onlyProc(*Mod);
  EXPECT_TRUE(P.isLocal(retValName()));
  bool SawRetValAssign = false;
  for (const CfgNode &N : P.Nodes)
    if (N.Kind == CfgNodeKind::Assign && N.Target->Kind == ExprKind::VarRef &&
        N.Target->Name == retValName())
      SawRetValAssign = true;
  EXPECT_TRUE(SawRetValAssign);
  for (const CfgNode &N : P.Nodes)
    if (N.Kind == CfgNodeKind::Return) {
      EXPECT_TRUE(!N.Value && !N.Target);
    }
}

TEST(CfgTest, SwitchArmsDoNotFallThrough) {
  auto Mod = mustCompile(R"(
chan c[4];

proc f(v) {
  switch (v) {
  case 0:
    send(c, 10);
  case 1:
    send(c, 11);
  }
  send(c, 99);
}
)");
  const ProcCfg &P = onlyProc(*Mod);
  const CfgNode *Switch = nullptr;
  for (const CfgNode &N : P.Nodes)
    if (N.Kind == CfgNodeKind::Switch)
      Switch = &N;
  ASSERT_NE(Switch, nullptr);
  ASSERT_EQ(Switch->Arcs.size(), 3u); // case 0, case 1, default.
  // Arm "case 0" leads to send(10) whose successor is send(99), not
  // send(11).
  const CfgNode &Arm0 = P.node(Switch->Arcs[0].Target);
  const CfgNode &Next = P.node(Arm0.Arcs[0].Target);
  ASSERT_EQ(Next.Kind, CfgNodeKind::Call);
  EXPECT_EQ(Next.Args[1]->IntValue, 99);
  // Default arc (no default arm) also goes to send(99).
  EXPECT_EQ(P.node(Switch->Arcs[2].Target).Args[1]->IntValue, 99);
}

TEST(CfgTest, DeadCodeAfterReturnIsPruned) {
  auto Mod = mustCompile(R"(
chan c[1];

proc f() {
  return;
  send(c, 1);
}
)");
  const ProcCfg &P = onlyProc(*Mod);
  EXPECT_EQ(countKind(P, CfgNodeKind::Call), 0u);
}

TEST(CfgTest, LabelOnlySelfLoopNormalizesToReturn) {
  auto Mod = mustCompile("proc f() { spin: goto spin; }");
  const ProcCfg &P = onlyProc(*Mod);
  EXPECT_EQ(countKind(P, CfgNodeKind::Return), 1u);
}

//===----------------------------------------------------------------------===//
// Printer / emitter
//===----------------------------------------------------------------------===//

TEST(CfgTest, ListingContainsNodesAndArcs) {
  auto Mod = mustCompile(R"(
chan c[1];

proc f(x) {
  if (x > 0)
    send(c, 1);
}
)");
  std::string Listing = printCfg(onlyProc(*Mod));
  EXPECT_NE(Listing.find("branch (x > 0)"), std::string::npos) << Listing;
  EXPECT_NE(Listing.find("send(c, 1)"), std::string::npos);
  EXPECT_NE(Listing.find("true ->"), std::string::npos);
  EXPECT_NE(Listing.find("false ->"), std::string::npos);
}

TEST(CfgTest, DotOutputIsWellFormed) {
  auto Mod = mustCompile("proc f() { var x = 1; }");
  std::string Dot = cfgToDot(onlyProc(*Mod));
  EXPECT_EQ(Dot.find("digraph"), 0u);
  EXPECT_NE(Dot.find("N0 ->"), std::string::npos);
  EXPECT_EQ(Dot.back(), '\n');
}

TEST(CfgTest, EmittedSourceRecompilesToIsomorphicCfg) {
  auto Mod = mustCompile(R"(
chan c[2];
sem s(1);

proc f(x) {
  var i;
  for (i = 0; i < x; i = i + 1) {
    sem_wait(s);
    switch (i % 3) {
    case 0:
      send(c, i);
    default:
      ;
    }
    sem_signal(s);
  }
}

process m = f(3);
)");
  std::string Emitted = emitModuleSource(*Mod);
  DiagnosticEngine Diags;
  auto Reparsed = compileMiniC(Emitted, Diags);
  ASSERT_TRUE(Reparsed) << Diags.str() << "\n" << Emitted;
  EXPECT_TRUE(verifyModule(*Reparsed, Diags)) << Diags.str();

  // Same number of visible operations and branch structure.
  const ProcCfg &A = *Mod->findProc("f");
  const ProcCfg &B = *Reparsed->findProc("f");
  EXPECT_EQ(countKind(A, CfgNodeKind::Call), countKind(B, CfgNodeKind::Call));
  EXPECT_EQ(countKind(A, CfgNodeKind::Switch),
            countKind(B, CfgNodeKind::Switch));
}

//===----------------------------------------------------------------------===//
// Verifier rejects malformed graphs
//===----------------------------------------------------------------------===//

TEST(CfgTest, VerifierCatchesBadArcShape) {
  auto Mod = mustCompile("proc f() { var x = 1; }");
  // Corrupt: give the assign node two arcs.
  ProcCfg &P = Mod->Procs[0];
  for (CfgNode &N : P.Nodes)
    if (N.Kind == CfgNodeKind::Assign)
      N.Arcs.push_back({ArcKind::Always, 0, 0});
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyProc(*Mod, P, Diags));
}

TEST(CfgTest, VerifierCatchesDanglingTarget) {
  auto Mod = mustCompile("proc f() { var x = 1; }");
  ProcCfg &P = Mod->Procs[0];
  P.Nodes[0].Arcs[0].Target = 99;
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyProc(*Mod, P, Diags));
}

TEST(CfgTest, VerifierCatchesUnknownVariable) {
  auto Mod = mustCompile("proc f() { var x = 1; }");
  ProcCfg &P = Mod->Procs[0];
  for (CfgNode &N : P.Nodes)
    if (N.Kind == CfgNodeKind::Assign)
      N.Value = Expr::varRef("ghost");
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyProc(*Mod, P, Diags));
}

TEST(CfgTest, VerifierCatchesIncompleteTossCoverage) {
  auto Mod = mustCompile("proc f() { var x = 1; }");
  ProcCfg &P = Mod->Procs[0];
  CfgNode Toss;
  Toss.Kind = CfgNodeKind::TossBranch;
  Toss.TossBound = 2;
  Toss.Arcs.push_back({ArcKind::TossEq, 0, 0});
  Toss.Arcs.push_back({ArcKind::TossEq, 1, 0});
  // Outcome 2 missing.
  P.Nodes.push_back(std::move(Toss));
  P.Nodes[0].Arcs[0].Target = static_cast<NodeId>(P.Nodes.size() - 1);
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyProc(*Mod, P, Diags));
}

} // namespace
