//===- RuntimeEdgeTest.cpp - Runtime semantics edge cases --------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "runtime/System.h"
#include "vm/Bytecode.h"
#include "vm/Vm.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

/// Runs to quiescence under the always-zero provider; returns the last
/// transition's result.
ExecResult runAll(System &Sys) {
  ZeroChoiceProvider Zero;
  ExecResult Last = Sys.reset(Zero);
  while (!Last.Error) {
    std::vector<int> Enabled = Sys.enabledProcesses();
    if (Enabled.empty())
      break;
    Last = Sys.executeTransition(Enabled.front(), Zero);
  }
  return Last;
}

int64_t lastPayload(const System &Sys) {
  EXPECT_FALSE(Sys.trace().empty());
  return Sys.trace().back().Payload.asInt();
}

TEST(RuntimeEdgeTest, DanglingPointerIntoPoppedFrameIsCaught) {
  auto Mod = mustCompile(R"(
var escape;
chan c[1];

proc leak() {
  var local = 5;
  var p;
  p = &local;
  escape = 1;
  stash(p);
}

proc stash(q) {
  gptr = q;
}

var gptr;

proc main() {
  var v;
  leak();
  v = *gptr;
  send(c, v);
}

process m = main();
)");
  System Sys(*Mod);
  ExecResult R = runAll(Sys);
  ASSERT_TRUE(R.Error);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::BadPointer);
}

TEST(RuntimeEdgeTest, PointerIntoGlobalOutlivesFrames) {
  auto Mod = mustCompile(R"(
var cell;
var gptr;
chan c[1];

proc setup() {
  gptr = &cell;
}

proc main() {
  var v;
  setup();
  *gptr = 99;
  v = *gptr;
  send(c, v);
}

process m = main();
)");
  System Sys(*Mod);
  ExecResult R = runAll(Sys);
  EXPECT_FALSE(R.Error) << R.Error.str();
  EXPECT_EQ(lastPayload(Sys), 99);
}

TEST(RuntimeEdgeTest, StackOverflowOnUnboundedRecursion) {
  auto Mod = mustCompile(R"(
proc spin(n) {
  return spin(n + 1);
}

proc main() {
  var v;
  v = spin(0);
}

process m = main();
)");
  SystemOptions Opts;
  Opts.StackLimit = 32;
  System Sys(*Mod, Opts);
  ZeroChoiceProvider Zero;
  ExecResult R = Sys.reset(Zero);
  ASSERT_TRUE(R.Error);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::StackOverflow);
}

TEST(RuntimeEdgeTest, ArithmeticSemantics) {
  auto Mod = mustCompile(R"(
chan c[16];

proc main() {
  send(c, -7 / 2);
  send(c, -7 % 2);
  send(c, !0);
  send(c, !5);
  send(c, -(3 - 8));
  send(c, (2 < 3) + (3 < 2));
  send(c, 1 && 0);
  send(c, 1 || 0);
}

process m = main();
)");
  System Sys(*Mod);
  runAll(Sys);
  const Trace &T = Sys.trace();
  ASSERT_EQ(T.size(), 8u);
  EXPECT_EQ(T[0].Payload.asInt(), -3); // C-style truncation.
  EXPECT_EQ(T[1].Payload.asInt(), -1);
  EXPECT_EQ(T[2].Payload.asInt(), 1);
  EXPECT_EQ(T[3].Payload.asInt(), 0);
  EXPECT_EQ(T[4].Payload.asInt(), 5);
  EXPECT_EQ(T[5].Payload.asInt(), 1);
  EXPECT_EQ(T[6].Payload.asInt(), 0);
  EXPECT_EQ(T[7].Payload.asInt(), 1);
}

TEST(RuntimeEdgeTest, PointerEqualityComparesTargets) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x;
  var y;
  var p;
  var q;
  p = &x;
  q = &x;
  send(c, p == q);
  q = &y;
  send(c, p == q);
  send(c, p != q);
}

process m = main();
)");
  System Sys(*Mod);
  runAll(Sys);
  const Trace &T = Sys.trace();
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].Payload.asInt(), 1);
  EXPECT_EQ(T[1].Payload.asInt(), 0);
  EXPECT_EQ(T[2].Payload.asInt(), 1);
}

TEST(RuntimeEdgeTest, PointerArithmeticIsAnError) {
  auto Mod = mustCompile(R"(
proc main() {
  var x;
  var p;
  var bad;
  p = &x;
  bad = p + 1;
}

process m = main();
)");
  System Sys(*Mod);
  ZeroChoiceProvider Zero;
  ExecResult R = Sys.reset(Zero);
  ASSERT_TRUE(R.Error);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::BadPointer);
}

TEST(RuntimeEdgeTest, UnknownPropagatesThroughArithmeticToPayloads) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var u = unknown;
  send(c, u + 1);
  send(c, u == 5);
}

process m = main();
)");
  System Sys(*Mod);
  ExecResult R = runAll(Sys);
  EXPECT_FALSE(R.Error) << R.Error.str();
  ASSERT_EQ(Sys.trace().size(), 2u);
  EXPECT_TRUE(Sys.trace()[0].Payload.isUnknown());
  EXPECT_TRUE(Sys.trace()[1].Payload.isUnknown());
}

TEST(RuntimeEdgeTest, UnknownArrayIndexIsAnError) {
  auto Mod = mustCompile(R"(
proc main() {
  var a[3];
  a[unknown] = 1;
}

process m = main();
)");
  System Sys(*Mod);
  ZeroChoiceProvider Zero;
  ExecResult R = Sys.reset(Zero);
  ASSERT_TRUE(R.Error);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::UnknownInControl);
}

TEST(RuntimeEdgeTest, NegativeTossBoundIsAnError) {
  auto Mod = mustCompile(R"(
proc main() {
  var v;
  var b = -2;
  v = VS_toss(b);
}

process m = main();
)");
  System Sys(*Mod);
  ZeroChoiceProvider Zero;
  ExecResult R = Sys.reset(Zero);
  ASSERT_TRUE(R.Error);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::BadTossBound);
}

TEST(RuntimeEdgeTest, ChannelCapacityBlocksExactly) {
  auto Mod = mustCompile(R"(
chan c[2];

proc main() {
  send(c, 1);
  send(c, 2);
  send(c, 3);
}

process m = main();
)");
  System Sys(*Mod);
  ZeroChoiceProvider Zero;
  Sys.reset(Zero);
  EXPECT_TRUE(Sys.processEnabled(0));
  Sys.executeTransition(0, Zero);
  EXPECT_TRUE(Sys.processEnabled(0));
  Sys.executeTransition(0, Zero);
  // Third send blocks: channel full.
  EXPECT_FALSE(Sys.processEnabled(0));
  EXPECT_EQ(Sys.classify(), GlobalStateKind::Deadlock);
}

TEST(RuntimeEdgeTest, SemaphoreCountsAboveOne) {
  auto Mod = mustCompile(R"(
sem s(2);
chan c[8];

proc main() {
  sem_wait(s);
  sem_wait(s);
  sem_signal(s);
  sem_wait(s);
  send(c, 'ok');
  sem_wait(s);
}

process m = main();
)");
  System Sys(*Mod);
  runAll(Sys);
  // The final wait blocks (count back to 0): classified deadlock. The
  // semaphore operations are themselves visible, so the trace holds the
  // three waits, the signal, and the send.
  EXPECT_EQ(Sys.classify(), GlobalStateKind::Deadlock);
  ASSERT_EQ(Sys.trace().size(), 5u);
  EXPECT_EQ(Sys.trace()[4].Op, BuiltinKind::Send);
  EXPECT_EQ(Sys.trace()[4].Payload.str(), "'ok'");
}

TEST(RuntimeEdgeTest, ArrayPassedByPointerElementwise) {
  auto Mod = mustCompile(R"(
chan c[4];

proc bump(p) {
  *p = *p + 100;
}

proc main() {
  var a[3];
  a[1] = 7;
  bump(&a[1]);
  send(c, a[1]);
}

process m = main();
)");
  System Sys(*Mod);
  ExecResult R = runAll(Sys);
  EXPECT_FALSE(R.Error) << R.Error.str();
  EXPECT_EQ(lastPayload(Sys), 107);
}

/// Runs \p Source to its first runtime error under the interpreter, then
/// again under the bytecode VM, and requires the identical deterministic
/// error from both: same kind, same message, same source location. This is
/// the contract that makes --exec=both a usable oracle — eval-semantics
/// edge cases (division by zero, signed overflow) are errors, never UB,
/// and never engine-dependent.
void expectErrorBothEngines(const std::string &Source, RunErrorKind Kind,
                            const std::string &Message) {
  auto Mod = mustCompile(Source);

  System Interp(*Mod);
  ExecResult RI = runAll(Interp);
  ASSERT_TRUE(RI.Error) << "interpreter ran clean, expected: " << Message;
  EXPECT_EQ(RI.Error.Kind, Kind);
  EXPECT_EQ(RI.Error.Message, Message);

  auto Code = vm::compileModule(*Mod);
  ASSERT_TRUE(Code);
  vm::Vm Engine(Code);
  System VmSys(*Mod);
  VmSys.setEngine(&Engine);
  ExecResult RV = runAll(VmSys);
  ASSERT_TRUE(RV.Error) << "VM ran clean, expected: " << Message;
  EXPECT_EQ(RV.Error.Kind, RI.Error.Kind);
  EXPECT_EQ(RV.Error.Message, RI.Error.Message);
  EXPECT_EQ(RV.Error.Loc.Line, RI.Error.Loc.Line);
  EXPECT_EQ(RV.Error.Loc.Column, RI.Error.Loc.Column);
}

TEST(RuntimeEdgeTest, DivisionByZeroLiteralDivisor) {
  // A literal divisor compiles to the VM's fused DivImm form; the zero
  // check must fire there exactly as in the two-register form.
  expectErrorBothEngines(R"(
proc main() {
  var x = 7;
  var v;
  v = x / 0;
}

process m = main();
)",
                         RunErrorKind::DivisionByZero, "division by zero");
}

TEST(RuntimeEdgeTest, DivisionByZeroComputedDivisor) {
  expectErrorBothEngines(R"(
proc main() {
  var x = 7;
  var y = 3;
  var v;
  v = x / (y - 3);
}

process m = main();
)",
                         RunErrorKind::DivisionByZero, "division by zero");
}

TEST(RuntimeEdgeTest, ModuloByZeroLiteralDivisor) {
  expectErrorBothEngines(R"(
proc main() {
  var x = 7;
  var v;
  v = x % 0;
}

process m = main();
)",
                         RunErrorKind::DivisionByZero, "modulo by zero");
}

TEST(RuntimeEdgeTest, ModuloByZeroComputedDivisor) {
  expectErrorBothEngines(R"(
proc main() {
  var x = 7;
  var y = 3;
  var v;
  v = x % (y - 3);
}

process m = main();
)",
                         RunErrorKind::DivisionByZero, "modulo by zero");
}

TEST(RuntimeEdgeTest, AdditionOverflowIsADeterministicError) {
  expectErrorBothEngines(R"(
proc main() {
  var big = 9223372036854775807;
  var v;
  v = big + 1;
}

process m = main();
)",
                         RunErrorKind::IntegerOverflow,
                         "signed integer overflow in '+'");
}

TEST(RuntimeEdgeTest, SubtractionOverflowIsADeterministicError) {
  // INT64_MIN spelled as (-INT64_MAX - 1): the literal itself fits.
  expectErrorBothEngines(R"(
proc main() {
  var small = -9223372036854775807 - 1;
  var v;
  v = small - 1;
}

process m = main();
)",
                         RunErrorKind::IntegerOverflow,
                         "signed integer overflow in '-'");
}

TEST(RuntimeEdgeTest, MultiplicationOverflowIsADeterministicError) {
  expectErrorBothEngines(R"(
proc main() {
  var a = 3037000500;
  var v;
  v = a * a;
}

process m = main();
)",
                         RunErrorKind::IntegerOverflow,
                         "signed integer overflow in '*'");
}

TEST(RuntimeEdgeTest, DivideMinByMinusOneOverflows) {
  expectErrorBothEngines(R"(
proc main() {
  var small = -9223372036854775807 - 1;
  var v;
  v = small / -1;
}

process m = main();
)",
                         RunErrorKind::IntegerOverflow,
                         "signed integer overflow in '/'");
}

TEST(RuntimeEdgeTest, ModuloMinByMinusOneOverflows) {
  expectErrorBothEngines(R"(
proc main() {
  var small = -9223372036854775807 - 1;
  var v;
  v = small % -1;
}

process m = main();
)",
                         RunErrorKind::IntegerOverflow,
                         "signed integer overflow in '%'");
}

TEST(RuntimeEdgeTest, NegatingMinOverflows) {
  expectErrorBothEngines(R"(
proc main() {
  var small = -9223372036854775807 - 1;
  var v;
  v = -small;
}

process m = main();
)",
                         RunErrorKind::IntegerOverflow,
                         "signed integer overflow in unary '-'");
}

TEST(RuntimeEdgeTest, NearOverflowBoundariesStayClean) {
  // The extremes themselves are representable: INT64_MAX + 0, INT64_MIN
  // preserved through division by 1, and INT64_MIN % -1's cousin
  // INT64_MIN % 1 == 0 all evaluate without error — the overflow checks
  // must not over-trigger at the boundary.
  auto Mod = mustCompile(R"(
chan c[8];

proc main() {
  var big = 9223372036854775807;
  var small = -9223372036854775807 - 1;
  send(c, big + 0);
  send(c, small / 1);
  send(c, small % 1);
  send(c, big - 9223372036854775807);
}

process m = main();
)");
  for (bool UseVm : {false, true}) {
    System Sys(*Mod);
    std::shared_ptr<const vm::CompiledModule> Code;
    std::unique_ptr<vm::Vm> Engine;
    if (UseVm) {
      Code = vm::compileModule(*Mod);
      Engine = std::make_unique<vm::Vm>(Code);
      Sys.setEngine(Engine.get());
    }
    ExecResult R = runAll(Sys);
    EXPECT_FALSE(R.Error) << R.Error.str();
    const Trace &T = Sys.trace();
    ASSERT_EQ(T.size(), 4u);
    EXPECT_EQ(T[0].Payload.asInt(), INT64_MAX);
    EXPECT_EQ(T[1].Payload.asInt(), INT64_MIN);
    EXPECT_EQ(T[2].Payload.asInt(), 0);
    EXPECT_EQ(T[3].Payload.asInt(), 0);
  }
}

TEST(RuntimeEdgeTest, DepthCountsTransitionsNotStatements) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var i;
  var acc = 0;
  for (i = 0; i < 10; i = i + 1)
    acc = acc + i;
  send(c, acc);
  send(c, acc * 2);
}

process m = main();
)");
  System Sys(*Mod);
  runAll(Sys);
  // 30+ invisible statements but only two transitions.
  EXPECT_EQ(Sys.depth(), 2u);
  EXPECT_EQ(lastPayload(Sys), 90);
}

} // namespace
