//===- RuntimeEdgeTest.cpp - Runtime semantics edge cases --------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "runtime/System.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

/// Runs to quiescence under the always-zero provider; returns the last
/// transition's result.
ExecResult runAll(System &Sys) {
  ZeroChoiceProvider Zero;
  ExecResult Last = Sys.reset(Zero);
  while (!Last.Error) {
    std::vector<int> Enabled = Sys.enabledProcesses();
    if (Enabled.empty())
      break;
    Last = Sys.executeTransition(Enabled.front(), Zero);
  }
  return Last;
}

int64_t lastPayload(const System &Sys) {
  EXPECT_FALSE(Sys.trace().empty());
  return Sys.trace().back().Payload.asInt();
}

TEST(RuntimeEdgeTest, DanglingPointerIntoPoppedFrameIsCaught) {
  auto Mod = mustCompile(R"(
var escape;
chan c[1];

proc leak() {
  var local = 5;
  var p;
  p = &local;
  escape = 1;
  stash(p);
}

proc stash(q) {
  gptr = q;
}

var gptr;

proc main() {
  var v;
  leak();
  v = *gptr;
  send(c, v);
}

process m = main();
)");
  System Sys(*Mod);
  ExecResult R = runAll(Sys);
  ASSERT_TRUE(R.Error);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::BadPointer);
}

TEST(RuntimeEdgeTest, PointerIntoGlobalOutlivesFrames) {
  auto Mod = mustCompile(R"(
var cell;
var gptr;
chan c[1];

proc setup() {
  gptr = &cell;
}

proc main() {
  var v;
  setup();
  *gptr = 99;
  v = *gptr;
  send(c, v);
}

process m = main();
)");
  System Sys(*Mod);
  ExecResult R = runAll(Sys);
  EXPECT_FALSE(R.Error) << R.Error.str();
  EXPECT_EQ(lastPayload(Sys), 99);
}

TEST(RuntimeEdgeTest, StackOverflowOnUnboundedRecursion) {
  auto Mod = mustCompile(R"(
proc spin(n) {
  return spin(n + 1);
}

proc main() {
  var v;
  v = spin(0);
}

process m = main();
)");
  SystemOptions Opts;
  Opts.StackLimit = 32;
  System Sys(*Mod, Opts);
  ZeroChoiceProvider Zero;
  ExecResult R = Sys.reset(Zero);
  ASSERT_TRUE(R.Error);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::StackOverflow);
}

TEST(RuntimeEdgeTest, ArithmeticSemantics) {
  auto Mod = mustCompile(R"(
chan c[16];

proc main() {
  send(c, -7 / 2);
  send(c, -7 % 2);
  send(c, !0);
  send(c, !5);
  send(c, -(3 - 8));
  send(c, (2 < 3) + (3 < 2));
  send(c, 1 && 0);
  send(c, 1 || 0);
}

process m = main();
)");
  System Sys(*Mod);
  runAll(Sys);
  const Trace &T = Sys.trace();
  ASSERT_EQ(T.size(), 8u);
  EXPECT_EQ(T[0].Payload.asInt(), -3); // C-style truncation.
  EXPECT_EQ(T[1].Payload.asInt(), -1);
  EXPECT_EQ(T[2].Payload.asInt(), 1);
  EXPECT_EQ(T[3].Payload.asInt(), 0);
  EXPECT_EQ(T[4].Payload.asInt(), 5);
  EXPECT_EQ(T[5].Payload.asInt(), 1);
  EXPECT_EQ(T[6].Payload.asInt(), 0);
  EXPECT_EQ(T[7].Payload.asInt(), 1);
}

TEST(RuntimeEdgeTest, PointerEqualityComparesTargets) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x;
  var y;
  var p;
  var q;
  p = &x;
  q = &x;
  send(c, p == q);
  q = &y;
  send(c, p == q);
  send(c, p != q);
}

process m = main();
)");
  System Sys(*Mod);
  runAll(Sys);
  const Trace &T = Sys.trace();
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].Payload.asInt(), 1);
  EXPECT_EQ(T[1].Payload.asInt(), 0);
  EXPECT_EQ(T[2].Payload.asInt(), 1);
}

TEST(RuntimeEdgeTest, PointerArithmeticIsAnError) {
  auto Mod = mustCompile(R"(
proc main() {
  var x;
  var p;
  var bad;
  p = &x;
  bad = p + 1;
}

process m = main();
)");
  System Sys(*Mod);
  ZeroChoiceProvider Zero;
  ExecResult R = Sys.reset(Zero);
  ASSERT_TRUE(R.Error);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::BadPointer);
}

TEST(RuntimeEdgeTest, UnknownPropagatesThroughArithmeticToPayloads) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var u = unknown;
  send(c, u + 1);
  send(c, u == 5);
}

process m = main();
)");
  System Sys(*Mod);
  ExecResult R = runAll(Sys);
  EXPECT_FALSE(R.Error) << R.Error.str();
  ASSERT_EQ(Sys.trace().size(), 2u);
  EXPECT_TRUE(Sys.trace()[0].Payload.isUnknown());
  EXPECT_TRUE(Sys.trace()[1].Payload.isUnknown());
}

TEST(RuntimeEdgeTest, UnknownArrayIndexIsAnError) {
  auto Mod = mustCompile(R"(
proc main() {
  var a[3];
  a[unknown] = 1;
}

process m = main();
)");
  System Sys(*Mod);
  ZeroChoiceProvider Zero;
  ExecResult R = Sys.reset(Zero);
  ASSERT_TRUE(R.Error);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::UnknownInControl);
}

TEST(RuntimeEdgeTest, NegativeTossBoundIsAnError) {
  auto Mod = mustCompile(R"(
proc main() {
  var v;
  var b = -2;
  v = VS_toss(b);
}

process m = main();
)");
  System Sys(*Mod);
  ZeroChoiceProvider Zero;
  ExecResult R = Sys.reset(Zero);
  ASSERT_TRUE(R.Error);
  EXPECT_EQ(R.Error.Kind, RunErrorKind::BadTossBound);
}

TEST(RuntimeEdgeTest, ChannelCapacityBlocksExactly) {
  auto Mod = mustCompile(R"(
chan c[2];

proc main() {
  send(c, 1);
  send(c, 2);
  send(c, 3);
}

process m = main();
)");
  System Sys(*Mod);
  ZeroChoiceProvider Zero;
  Sys.reset(Zero);
  EXPECT_TRUE(Sys.processEnabled(0));
  Sys.executeTransition(0, Zero);
  EXPECT_TRUE(Sys.processEnabled(0));
  Sys.executeTransition(0, Zero);
  // Third send blocks: channel full.
  EXPECT_FALSE(Sys.processEnabled(0));
  EXPECT_EQ(Sys.classify(), GlobalStateKind::Deadlock);
}

TEST(RuntimeEdgeTest, SemaphoreCountsAboveOne) {
  auto Mod = mustCompile(R"(
sem s(2);
chan c[8];

proc main() {
  sem_wait(s);
  sem_wait(s);
  sem_signal(s);
  sem_wait(s);
  send(c, 'ok');
  sem_wait(s);
}

process m = main();
)");
  System Sys(*Mod);
  runAll(Sys);
  // The final wait blocks (count back to 0): classified deadlock. The
  // semaphore operations are themselves visible, so the trace holds the
  // three waits, the signal, and the send.
  EXPECT_EQ(Sys.classify(), GlobalStateKind::Deadlock);
  ASSERT_EQ(Sys.trace().size(), 5u);
  EXPECT_EQ(Sys.trace()[4].Op, BuiltinKind::Send);
  EXPECT_EQ(Sys.trace()[4].Payload.str(), "'ok'");
}

TEST(RuntimeEdgeTest, ArrayPassedByPointerElementwise) {
  auto Mod = mustCompile(R"(
chan c[4];

proc bump(p) {
  *p = *p + 100;
}

proc main() {
  var a[3];
  a[1] = 7;
  bump(&a[1]);
  send(c, a[1]);
}

process m = main();
)");
  System Sys(*Mod);
  ExecResult R = runAll(Sys);
  EXPECT_FALSE(R.Error) << R.Error.str();
  EXPECT_EQ(lastPayload(Sys), 107);
}

TEST(RuntimeEdgeTest, DepthCountsTransitionsNotStatements) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var i;
  var acc = 0;
  for (i = 0; i < 10; i = i + 1)
    acc = acc + i;
  send(c, acc);
  send(c, acc * 2);
}

process m = main();
)");
  System Sys(*Mod);
  runAll(Sys);
  // 30+ invisible statements but only two transitions.
  EXPECT_EQ(Sys.depth(), 2u);
  EXPECT_EQ(lastPayload(Sys), 90);
}

} // namespace
