//===- ClosingTransformTest.cpp - Tests for the Figure 1 algorithm ---------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "closing/ClosingTransform.h"

#include "cfg/CfgPrinter.h"
#include "closing/Pipeline.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

/// Counts nodes of a given kind across a procedure.
size_t countKind(const ProcCfg &Proc, CfgNodeKind Kind) {
  size_t N = 0;
  for (const CfgNode &Node : Proc.Nodes)
    N += Node.Kind == Kind;
  return N;
}

/// True when some node references variable \p Name.
bool referencesVar(const Expr *E, const std::string &Name) {
  if (!E)
    return false;
  if ((E->Kind == ExprKind::VarRef || E->Kind == ExprKind::ArrayIndex) &&
      E->Name == Name)
    return true;
  if (referencesVar(E->Lhs.get(), Name) || referencesVar(E->Rhs.get(), Name))
    return true;
  for (const ExprPtr &Arg : E->Args)
    if (referencesVar(Arg.get(), Name))
      return true;
  return false;
}

bool procReferencesVar(const ProcCfg &Proc, const std::string &Name) {
  for (const CfgNode &Node : Proc.Nodes) {
    if (referencesVar(Node.Target.get(), Name) ||
        referencesVar(Node.Value.get(), Name))
      return true;
    for (const ExprPtr &Arg : Node.Args)
      if (referencesVar(Arg.get(), Name))
        return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Figure 2 (E1)
//===----------------------------------------------------------------------===//

TEST(ClosingTransformTest, Figure2Shape) {
  CloseResult R = closeSource(figure2Source());
  ASSERT_TRUE(R.ok()) << R.Diags.str();

  const ProcCfg *P = R.Closed->findProc("p");
  ASSERT_NE(P, nullptr);

  // Step 5: the environment-defined parameter x is removed.
  EXPECT_TRUE(P->Params.empty());
  EXPECT_EQ(R.Stats.ParamsRemoved, 1u);

  // The statements that depended on x are gone: y = x % 2 and the y == 0
  // test are eliminated; x is never referenced.
  EXPECT_FALSE(procReferencesVar(*P, "x"));
  EXPECT_FALSE(procReferencesVar(*P, "y"));

  // Exactly one VS_toss conditional replaces the eliminated test, choosing
  // between the two sends (the paper's G'_p).
  EXPECT_EQ(countKind(*P, CfgNodeKind::TossBranch), 1u);
  const CfgNode *Toss = nullptr;
  for (const CfgNode &Node : P->Nodes)
    if (Node.Kind == CfgNodeKind::TossBranch)
      Toss = &Node;
  ASSERT_NE(Toss, nullptr);
  EXPECT_EQ(Toss->TossBound, 1);
  ASSERT_EQ(Toss->Arcs.size(), 2u);
  // Both outcomes lead to send calls.
  for (const CfgArc &Arc : Toss->Arcs)
    EXPECT_EQ(P->node(Arc.Target).Kind, CfgNodeKind::Call);

  // The untainted loop counter survives: cnt = 0, cnt < 10, cnt = cnt + 1.
  EXPECT_TRUE(procReferencesVar(*P, "cnt"));
  EXPECT_EQ(countKind(*P, CfgNodeKind::Branch), 1u);

  // Both visible sends survive with their payloads intact (cnt untainted).
  size_t Sends = 0;
  for (const CfgNode &Node : P->Nodes)
    if (Node.Kind == CfgNodeKind::Call && Node.Builtin == BuiltinKind::Send) {
      ++Sends;
      ASSERT_EQ(Node.Args.size(), 2u);
      EXPECT_NE(Node.Args[1]->Kind, ExprKind::Unknown);
    }
  EXPECT_EQ(Sends, 2u);

  // The process instantiation no longer mentions env.
  ASSERT_EQ(R.Closed->Processes.size(), 1u);
  EXPECT_TRUE(R.Closed->Processes[0].Args.empty());
}

TEST(ClosingTransformTest, Figure2IsClosed) {
  CloseResult R = closeSource(figure2Source());
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EnvAnalysis Analysis(*R.Closed);
  EXPECT_TRUE(Analysis.moduleIsClosed());
}

//===----------------------------------------------------------------------===//
// Figure 3 (E2): q closes to the same program as p
//===----------------------------------------------------------------------===//

TEST(ClosingTransformTest, Figure3SameClosedProgramAsFigure2) {
  CloseResult Rp = closeSource(figure2Source());
  CloseResult Rq = closeSource(figure3Source());
  ASSERT_TRUE(Rp.ok()) << Rp.Diags.str();
  ASSERT_TRUE(Rq.ok()) << Rq.Diags.str();

  const ProcCfg *P = Rp.Closed->findProc("p");
  const ProcCfg *Q = Rq.Closed->findProc("q");
  ASSERT_NE(P, nullptr);
  ASSERT_NE(Q, nullptr);

  // "Note that G'_p and G'_q are equivalent; although p and q are
  // functionally distinct, the algorithm transforms each of them to the
  // same closed program." Compare the node listings modulo the procedure
  // name (ids are deterministic).
  std::string ListP = printCfg(*P);
  std::string ListQ = printCfg(*Q);
  ListP.erase(0, ListP.find('\n'));
  ListQ.erase(0, ListQ.find('\n'));
  EXPECT_EQ(ListP, ListQ) << "p':\n" << printCfg(*P) << "q':\n"
                          << printCfg(*Q);

  // x = x / 2 is eliminated from q as well.
  EXPECT_FALSE(procReferencesVar(*Q, "x"));
}

//===----------------------------------------------------------------------===//
// Marking (Step 3) unit checks
//===----------------------------------------------------------------------===//

TEST(ClosingTransformTest, MarkingRules) {
  auto Mod = mustCompile(R"(
chan c[2];

proc main(x) {
  var a = 1;
  var b;
  b = x + 1;
  send(c, a);
  env_output(a);
  return;
}

process m = main(env);
)");
  ASSERT_TRUE(Mod);
  EnvAnalysis Analysis(*Mod);

  const ProcCfg *P = Mod->findProc("main");
  ASSERT_NE(P, nullptr);
  size_t ProcIdx = static_cast<size_t>(Mod->procIndex("main"));

  for (size_t I = 0, E = P->Nodes.size(); I != E; ++I) {
    const CfgNode &Node = P->Nodes[I];
    bool Marked = isMarkedNode(*Mod, Analysis, ProcIdx, static_cast<NodeId>(I));
    switch (Node.Kind) {
    case CfgNodeKind::Start:
    case CfgNodeKind::Return:
      EXPECT_TRUE(Marked);
      break;
    case CfgNodeKind::Call:
      if (Node.Builtin == BuiltinKind::EnvOutput)
        EXPECT_FALSE(Marked) << "env_output is the interface";
      else
        EXPECT_TRUE(Marked) << "visible ops are preserved";
      break;
    case CfgNodeKind::Assign:
      // a = 1 is untainted and kept; b = x + 1 uses the env param.
      if (referencesVar(Node.Value.get(), "x"))
        EXPECT_FALSE(Marked);
      else
        EXPECT_TRUE(Marked);
      break;
    default:
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Idempotence and statistics
//===----------------------------------------------------------------------===//

TEST(ClosingTransformTest, ClosingIsIdempotent) {
  CloseResult R = closeSource(figure3Source());
  ASSERT_TRUE(R.ok()) << R.Diags.str();

  ClosingStats Stats2;
  Module Again = closeModule(*R.Closed, {}, &Stats2);
  EXPECT_EQ(Stats2.ParamsRemoved, 0u);
  EXPECT_EQ(Stats2.EnvCallsRemoved, 0u);
  EXPECT_EQ(printModule(Again), printModule(*R.Closed));
}

TEST(ClosingTransformTest, StatsAccounting) {
  CloseResult R = closeSource(figure2Source());
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_GT(R.Stats.NodesBefore, R.Stats.NodesAfter);
  EXPECT_EQ(R.Stats.TossNodesInserted, 1u);
  EXPECT_GE(R.Stats.NodesEliminated, 2u); // y = x % 2 and the y test.
}

//===----------------------------------------------------------------------===//
// Whole-program aspects: call chains, channels, returns
//===----------------------------------------------------------------------===//

TEST(ClosingTransformTest, TaintThroughCallChain) {
  auto Mod = mustCompile(R"(
chan c[2];

proc leaf(v) {
  if (v > 0)
    send(c, 1);
  else
    send(c, 2);
}

proc mid(w) {
  leaf(w + 1);
}

proc main(x) {
  mid(x);
}

process m = main(env);
)");
  ASSERT_TRUE(Mod);
  ClosingStats Stats;
  Module Closed = closeModule(*Mod, {}, &Stats);

  // All three parameters ride the same env value and are removed.
  EXPECT_TRUE(Closed.findProc("leaf")->Params.empty());
  EXPECT_TRUE(Closed.findProc("mid")->Params.empty());
  EXPECT_TRUE(Closed.findProc("main")->Params.empty());
  EXPECT_EQ(Stats.ParamsRemoved, 3u);

  // leaf's conditional became a toss over the two sends.
  const ProcCfg *Leaf = Closed.findProc("leaf");
  EXPECT_EQ(countKind(*Leaf, CfgNodeKind::TossBranch), 1u);
  EXPECT_EQ(countKind(*Leaf, CfgNodeKind::Branch), 0u);
}

TEST(ClosingTransformTest, TaintThroughChannelPayload) {
  auto Mod = mustCompile(R"(
chan data[2];
chan sink[2];

proc producer() {
  var v;
  v = env_input();
  send(data, v);
}

proc consumer() {
  var got;
  got = recv(data);
  if (got == 7)
    send(sink, 1);
  else
    send(sink, 0);
}

process a = producer();
process b = consumer();
)");
  ASSERT_TRUE(Mod);
  EnvAnalysis Analysis(*Mod);
  // The channel carries environment data.
  EXPECT_TRUE(Analysis.taint().TaintedChannels.count("data"));

  ClosingStats Stats;
  Module Closed = closeModule(*Mod, Analysis, {}, &Stats);

  // The producer's send now carries the unknown placeholder.
  const ProcCfg *Prod = Closed.findProc("producer");
  bool SawUnknownPayload = false;
  for (const CfgNode &Node : Prod->Nodes)
    if (Node.Kind == CfgNodeKind::Call && Node.Builtin == BuiltinKind::Send)
      SawUnknownPayload |= Node.Args[1]->Kind == ExprKind::Unknown;
  EXPECT_TRUE(SawUnknownPayload);
  EXPECT_GE(Stats.PayloadsSanitized, 1u);

  // The consumer's branch on the received value became a toss.
  const ProcCfg *Cons = Closed.findProc("consumer");
  EXPECT_EQ(countKind(*Cons, CfgNodeKind::TossBranch), 1u);
  EXPECT_EQ(countKind(*Cons, CfgNodeKind::Branch), 0u);

  // Result is closed.
  EnvAnalysis After(Closed);
  EXPECT_TRUE(After.moduleIsClosed());
}

TEST(ClosingTransformTest, TaintedReturnValue) {
  auto Mod = mustCompile(R"(
chan c[2];

proc getenv() {
  var v;
  v = env_input();
  return v;
}

proc main() {
  var r;
  r = getenv();
  if (r > 0)
    send(c, 1);
  else
    send(c, 0);
}

process m = main();
)");
  ASSERT_TRUE(Mod);
  EnvAnalysis Analysis(*Mod);
  int Idx = Mod->procIndex("getenv");
  ASSERT_GE(Idx, 0);
  EXPECT_TRUE(Analysis.taint().Procs[Idx].TaintedReturn);

  Module Closed = closeModule(*Mod, Analysis);
  const ProcCfg *Main = Closed.findProc("main");
  EXPECT_EQ(countKind(*Main, CfgNodeKind::TossBranch), 1u);
}

TEST(ClosingTransformTest, UntaintedProgramIsUnchangedObservably) {
  auto Src = R"(
chan c[2];

proc main() {
  var i;
  for (i = 0; i < 3; i = i + 1)
    send(c, i);
}

process m = main();
)";
  CloseResult R = closeSource(Src);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_EQ(R.Stats.ParamsRemoved, 0u);
  EXPECT_EQ(R.Stats.TossNodesInserted, 0u);
  EXPECT_EQ(R.Stats.NodesEliminated, 0u);
  EXPECT_EQ(printModule(*R.Closed), printModule(*R.Open));
}

TEST(ClosingTransformTest, AssertionPayloadNotPreservedWhenTainted) {
  auto Mod = mustCompile(R"(
proc main() {
  var v;
  var ok = 1;
  v = env_input();
  VS_assert(v);
  VS_assert(ok);
}

process m = main();
)");
  ASSERT_TRUE(Mod);
  Module Closed = closeModule(*Mod);
  const ProcCfg *Main = Closed.findProc("main");
  size_t UnknownAsserts = 0, RealAsserts = 0;
  for (const CfgNode &Node : Main->Nodes) {
    if (Node.Kind != CfgNodeKind::Call ||
        Node.Builtin != BuiltinKind::VsAssert)
      continue;
    if (Node.Args[0]->Kind == ExprKind::Unknown)
      ++UnknownAsserts;
    else
      ++RealAsserts;
  }
  EXPECT_EQ(UnknownAsserts, 1u); // VS_assert(v) is not preserved.
  EXPECT_EQ(RealAsserts, 1u);    // VS_assert(ok) is preserved.
}

//===----------------------------------------------------------------------===//
// Divergence elimination (|succ(a)| == 0)
//===----------------------------------------------------------------------===//

TEST(ClosingTransformTest, UnmarkedCycleDropsArc) {
  // The loop body is entirely environment-dependent and never reaches a
  // marked node; the true-arc of the (tainted) loop head disappears with
  // the whole loop, and control reaching the eliminated region halts.
  auto Mod = mustCompile(R"(
chan c[2];

proc main(x) {
  send(c, 1);
  while (x > 0)
    x = x + 1;
  send(c, 2);
}

process m = main(env);
)");
  ASSERT_TRUE(Mod);
  ClosingStats Stats;
  Module Closed = closeModule(*Mod, {}, &Stats);
  const ProcCfg *Main = Closed.findProc("main");

  // The while head (tainted branch) is gone.
  EXPECT_EQ(countKind(*Main, CfgNodeKind::Branch), 0u);
  // Both sends survive; after the first send control may reach the second
  // send (skipping the loop) — the diverging path is dropped, so no toss is
  // needed (succ(a) = {send#2}).
  size_t Sends = 0;
  for (const CfgNode &Node : Main->Nodes)
    Sends += Node.Kind == CfgNodeKind::Call &&
             Node.Builtin == BuiltinKind::Send;
  EXPECT_EQ(Sends, 2u);
}

} // namespace
