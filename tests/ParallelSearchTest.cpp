//===- ParallelSearchTest.cpp - Parallel vs sequential search equivalence --===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// The parallel explorer partitions the search tree into disjoint subtrees,
// so every tree-shaped statistic and the error-report set must be identical
// to the sequential explorer's, for any worker count and any scheduling.
//
//===----------------------------------------------------------------------===//

#include "explorer/ParallelSearch.h"

#include "RandomProgram.h"
#include "TestUtil.h"
#include "closing/Pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace closer;

namespace {

#ifndef CLOSER_SOURCE_DIR
#define CLOSER_SOURCE_DIR "."
#endif

std::string readExample(const std::string &Name) {
  std::string Path = std::string(CLOSER_SOURCE_DIR) + "/examples/minic/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// The statistics that describe the search tree itself (as opposed to the
/// replay effort, which legitimately differs between the sequential and
/// the parallel traversal).
std::string treeShape(const SearchStats &S) {
  std::string Out;
  Out += "states=" + std::to_string(S.StatesVisited);
  Out += " tree-transitions=" + std::to_string(S.TreeTransitions);
  Out += " deadlocks=" + std::to_string(S.Deadlocks);
  Out += " terminations=" + std::to_string(S.Terminations);
  Out += " assertion-violations=" + std::to_string(S.AssertionViolations);
  Out += " divergences=" + std::to_string(S.Divergences);
  Out += " runtime-errors=" + std::to_string(S.RuntimeErrors);
  Out += " depth-limit-hits=" + std::to_string(S.DepthLimitHits);
  Out += " sleep-prunes=" + std::to_string(S.SleepSetPrunes);
  Out += " covered=" + std::to_string(S.VisibleOpsCovered);
  Out += S.Completed ? " complete" : " stopped";
  return Out;
}

/// Order-independent fingerprint of the reported errors: kind plus the
/// replayable choice sequence identifies a report uniquely.
std::vector<std::string> errorSet(const std::vector<ErrorReport> &Reports) {
  std::vector<std::string> Out;
  for (const ErrorReport &R : Reports)
    Out.push_back(std::to_string(static_cast<int>(R.Kind)) + ":" +
                  replayToString(R.Choices));
  std::sort(Out.begin(), Out.end());
  return Out;
}

void expectParallelMatchesSequential(const Module &Mod, SearchOptions Opts,
                                     const std::string &Label) {
  Opts.MaxReports = 4096; // Compare full error sets, not truncations.

  SearchOptions Seq = Opts;
  Seq.Jobs = 1;
  Explorer Sequential(Mod, Seq);
  SearchStats SeqStats = Sequential.run();

  SearchResult Parallel = explore(Mod, Opts);

  EXPECT_EQ(treeShape(SeqStats), treeShape(Parallel.Stats)) << Label;
  EXPECT_EQ(errorSet(Sequential.reports()), errorSet(Parallel.Reports))
      << Label;
}

TEST(ParallelSearchTest, MatchesSequentialOnExamplePrograms) {
  for (const char *Name :
       {"figure2.mc", "lock_order_bug.mc", "bounded_buffer.mc",
        "resource_manager.mc"}) {
    std::string Source = readExample(Name);
    auto Mod = mustCompile(Source);
    ASSERT_TRUE(Mod) << Name;
    SearchOptions Opts;
    Opts.MaxDepth = 12;
    Opts.Jobs = 4;
    expectParallelMatchesSequential(*Mod, Opts, Name);
  }
}

TEST(ParallelSearchTest, MatchesSequentialWithoutReduction) {
  std::string Source = readExample("lock_order_bug.mc");
  auto Mod = mustCompile(Source);
  ASSERT_TRUE(Mod);
  SearchOptions Opts;
  Opts.MaxDepth = 12;
  Opts.Jobs = 4;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  expectParallelMatchesSequential(*Mod, Opts, "lock_order_bug.mc --no-por");
}

TEST(ParallelSearchTest, MatchesSequentialOnRandomPrograms) {
  for (uint64_t Seed : {7u, 21u, 1003u, 1017u}) {
    auto Mod = mustCompile(randomOpenProgram(Seed));
    ASSERT_TRUE(Mod) << "seed " << Seed;
    SearchOptions Opts;
    Opts.MaxDepth = 10;
    Opts.Jobs = 4;
    expectParallelMatchesSequential(*Mod, Opts,
                                    "seed " + std::to_string(Seed));
  }
}

TEST(ParallelSearchTest, ShallowSplitForcesWorkDonation) {
  // A split depth of 1 seeds far fewer items than workers, so progress
  // beyond the first items depends on the donation path re-splitting
  // subtrees onto the deque.
  auto Mod = mustCompile(randomOpenProgram(1003));
  ASSERT_TRUE(Mod);
  SearchOptions Opts;
  Opts.MaxDepth = 10;
  Opts.Jobs = 4;
  Opts.SplitDepth = 1;
  expectParallelMatchesSequential(*Mod, Opts, "split-depth 1");
}

TEST(ParallelSearchTest, SharedStateBudgetStopsAllWorkers) {
  auto Mod = mustCompile(randomOpenProgram(1003));
  ASSERT_TRUE(Mod);
  SearchOptions Opts;
  Opts.MaxDepth = 12;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Opts.Jobs = 4;
  Opts.MaxStates = 50;

  SearchResult R = explore(*Mod, Opts);
  const SearchStats &Stats = R.Stats;
  EXPECT_FALSE(Stats.Completed);
  // The budget is a global atomic; each worker can overshoot by at most
  // the one state it counts between two stop-flag checks.
  EXPECT_GE(Stats.StatesVisited, 50u);
  EXPECT_LE(Stats.StatesVisited, 50u + Opts.Jobs);
}

TEST(ParallelSearchTest, StopOnFirstErrorStopsParallelRun) {
  std::string Source = readExample("lock_order_bug.mc");
  auto Mod = mustCompile(Source);
  ASSERT_TRUE(Mod);
  SearchOptions Opts;
  Opts.MaxDepth = 16;
  Opts.Jobs = 4;
  Opts.StopOnFirstError = true;

  SearchResult R = explore(*Mod, Opts);
  EXPECT_GE(R.Stats.Deadlocks, 1u);
  EXPECT_GE(R.Reports.size(), 1u);
  EXPECT_FALSE(R.Stats.Completed);
}

TEST(ParallelSearchTest, NegativeTossBranchBoundIsReportedNotEnumerated) {
  // A malformed closed program: corrupt a TossBranch bound to a negative
  // value. Decision::optionCount() used to cast it straight to size_t,
  // wrapping into ~2^64 siblings; now the runtime reports it.
  CloseResult R = closeSource(figure2Source());
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  Module &Mod = *R.Closed;
  bool Corrupted = false;
  for (ProcCfg &Proc : Mod.Procs) {
    for (CfgNode &Node : Proc.Nodes) {
      if (Node.Kind == CfgNodeKind::TossBranch) {
        Node.TossBound = -2;
        Corrupted = true;
        break;
      }
    }
    if (Corrupted)
      break;
  }
  ASSERT_TRUE(Corrupted) << "closed figure2 should contain a toss branch";

  SearchOptions Opts;
  Opts.MaxDepth = 30;
  Explorer Ex(Mod, Opts);
  SearchStats Stats = Ex.run();
  EXPECT_GE(Stats.RuntimeErrors, 1u);
  bool SawBadBound = false;
  for (const ErrorReport &Rep : Ex.reports())
    if (Rep.Kind == ErrorReport::Type::RuntimeError &&
        Rep.Error.Kind == RunErrorKind::BadTossBound)
      SawBadBound = true;
  EXPECT_TRUE(SawBadBound);

  // And the parallel explorer agrees.
  SearchOptions Par = Opts;
  Par.Jobs = 2;
  expectParallelMatchesSequential(Mod, Par, "corrupted toss bound");
}

TEST(ParallelSearchTest, NegativeEnvDomainIsReportedNotEnumerated) {
  auto Mod = mustCompile(figure2Source()); // Open: env process argument.
  ASSERT_TRUE(Mod);
  SearchOptions Opts;
  Opts.MaxDepth = 20;
  Opts.Runtime.EnvDomainBound = -3;
  Explorer Ex(*Mod, Opts);
  SearchStats Stats = Ex.run();
  EXPECT_TRUE(Stats.Completed);
  EXPECT_GE(Stats.RuntimeErrors, 1u);
  // The bogus domain must not multiply the search: one run, one report.
  EXPECT_EQ(Stats.Runs, 1u);
}

TEST(ParallelSearchTest, DroppedReportsAreCounted) {
  // Four toss outcomes, each violating the assertion: 4 reports offered.
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x;
  x = VS_toss(3);
  VS_assert(x > 90);
  send(c, x);
}

process m = main();
)");
  ASSERT_TRUE(Mod);
  SearchOptions Opts;
  Opts.MaxReports = 2;
  Explorer Ex(*Mod, Opts);
  SearchStats Stats = Ex.run();
  EXPECT_EQ(Stats.AssertionViolations, 4u);
  EXPECT_EQ(Ex.reports().size(), 2u);
  EXPECT_EQ(Stats.ReportsDropped, 2u);
  EXPECT_NE(Stats.str().find("reports-dropped=2"), std::string::npos);
}

} // namespace
