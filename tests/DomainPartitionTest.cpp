//===- DomainPartitionTest.cpp - §7 input-domain partitioning tests --------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "closing/DomainPartition.h"

#include "cfg/CfgVerifier.h"
#include "closing/Pipeline.h"
#include "envgen/NaiveClose.h"
#include "explorer/Search.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

/// The paper's §7 motivating shape: a resource manager whose visible
/// behavior depends only on which range the request falls into.
const char *resourceManagerSource() {
  return R"(
chan grants[8];

proc manager() {
  var req;
  var round;
  for (round = 0; round < 2; round = round + 1) {
    req = env_input();
    if (req < 10)
      send(grants, 'small');
    else {
      if (req < 100)
        send(grants, 'medium');
      else
        send(grants, 'large');
    }
  }
}

process m = manager();
)";
}

TEST(DomainPartitionTest, PartitionsRangeClassifiedInput) {
  auto Mod = mustCompile(resourceManagerSource());
  PartitionStats Stats;
  Module Simplified = partitionInputs(*Mod, {}, &Stats);
  EXPECT_EQ(Stats.InputsPartitioned, 1u);
  EXPECT_EQ(Stats.InputsLeftOpen, 0u);
  // Thresholds {10, 100} -> representatives {9,10,11,99,100,101}.
  EXPECT_EQ(Stats.RepresentativesTotal, 6u);

  DiagnosticEngine Diags;
  EXPECT_TRUE(verifyModule(Simplified, Diags)) << Diags.str();

  // No environment interface remains, and the range tests are PRESERVED.
  EnvAnalysis Analysis(Simplified);
  EXPECT_TRUE(Analysis.moduleIsClosed());
  size_t Branches = 0;
  for (const CfgNode &Node : Simplified.Procs[0].Nodes)
    Branches += Node.Kind == CfgNodeKind::Branch;
  EXPECT_EQ(Branches, 3u); // Loop bound + both range tests.
}

TEST(DomainPartitionTest, PartitionedSystemIsExactNotOverApproximate) {
  // The standard closing over-approximates: it replaces the classification
  // with a free toss. Partitioning is exact for this program: its trace
  // set equals the naive closing over a domain that crosses both
  // thresholds.
  auto Mod = mustCompile(resourceManagerSource());
  Module Simplified = partitionInputs(*Mod);

  SearchOptions Opts;
  Opts.MaxDepth = 12;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;

  Explorer PartEx(Simplified, Opts);
  std::vector<Trace> PartTraces = PartEx.collectTraces(512);

  Module Naive = naiveCloseModule(*Mod, {127}); // Domain [0,127]: spans 10
                                                // and 100.
  Explorer NaiveEx(Naive, Opts);
  std::vector<Trace> NaiveTraces = NaiveEx.collectTraces(100000);

  auto Key = [](const std::vector<Trace> &Ts) {
    std::set<std::string> S;
    for (const Trace &T : Ts)
      S.insert(traceToString(T));
    return S;
  };
  // Same visible-behavior sets — but found with 6 representatives instead
  // of 128 values.
  EXPECT_EQ(Key(PartTraces), Key(NaiveTraces));
  EXPECT_LT(PartEx.stats().Runs, NaiveEx.stats().Runs / 10);
}

TEST(DomainPartitionTest, EnvProcessArgumentPartitioned) {
  auto Mod = mustCompile(R"(
chan out[4];

proc gate(threshold) {
  if (threshold >= 5)
    send(out, 'hi');
  else
    send(out, 'lo');
}

process g = gate(env);
)");
  PartitionStats Stats;
  Module Simplified = partitionInputs(*Mod, {}, &Stats);
  EXPECT_EQ(Stats.ParamsPartitioned, 1u);

  DiagnosticEngine Diags;
  ASSERT_TRUE(verifyModule(Simplified, Diags)) << Diags.str();
  EXPECT_TRUE(Simplified.findProc("gate")->Params.empty());
  EXPECT_TRUE(Simplified.Processes[0].Args.empty());

  EnvAnalysis Analysis(Simplified);
  EXPECT_TRUE(Analysis.moduleIsClosed());

  // Both classifications reachable.
  SearchOptions Opts;
  Explorer Ex(Simplified, Opts);
  std::vector<Trace> Traces = Ex.collectTraces(16);
  std::set<std::string> Payloads;
  for (const Trace &T : Traces)
    for (const VisibleEvent &E : T)
      Payloads.insert(E.Payload.str());
  EXPECT_TRUE(Payloads.count("'hi'"));
  EXPECT_TRUE(Payloads.count("'lo'"));
}

TEST(DomainPartitionTest, TwoPartitionableParamsInOneProc) {
  // Regression: removing partitioned params used erase() with indices
  // captured before the first removal, so the second partitioned param of
  // the same proc shifted down and the wrong slot was erased. Params at
  // indices 0 and 2 both partition here while index 1 must survive (its
  // value flows into a payload).
  auto Mod = mustCompile(R"(
chan c[4];
proc work(a, b, x) {
  if (a < 3)
    send(c, 1);
  b = b + 1;
  send(c, b);
  if (x < 7)
    send(c, 2);
}
process m = work(env, env, env);
)");
  PartitionStats Stats;
  Module Simplified = partitionInputs(*Mod, {}, &Stats);
  EXPECT_EQ(Stats.ParamsPartitioned, 2u);

  DiagnosticEngine Diags;
  ASSERT_TRUE(verifyModule(Simplified, Diags)) << Diags.str();

  // Exactly the un-partitionable middle param remains, in both the proc
  // signature and the instantiation.
  const ProcCfg *Work = Simplified.findProc("work");
  ASSERT_NE(Work, nullptr);
  ASSERT_EQ(Work->Params.size(), 1u);
  EXPECT_EQ(Work->Params[0], "b");
  ASSERT_EQ(Simplified.Processes[0].Args.size(), 1u);

  // All four classification outcomes stay reachable: {1 sent, not} x
  // {2 sent, not}.
  Module Closed = closeModule(Simplified);
  EnvAnalysis Analysis(Closed);
  EXPECT_TRUE(Analysis.moduleIsClosed());
  SearchOptions Opts;
  Explorer Ex(Closed, Opts);
  std::vector<Trace> Traces = Ex.collectTraces(256);
  std::set<std::pair<bool, bool>> Outcomes;
  for (const Trace &T : Traces) {
    bool SentOne = false, SentTwo = false;
    for (const VisibleEvent &E : T) {
      SentOne |= E.Payload.str() == "1";
      SentTwo |= E.Payload.str() == "2";
    }
    Outcomes.insert({SentOne, SentTwo});
  }
  EXPECT_EQ(Outcomes.size(), 4u);
}

TEST(DomainPartitionTest, ArithmeticUseDisqualifies) {
  auto Mod = mustCompile(R"(
chan out[4];

proc p() {
  var x;
  var y;
  x = env_input();
  y = x + 1;
  if (y > 3)
    send(out, 1);
  else
    send(out, 0);
}

process m = p();
)");
  PartitionStats Stats;
  Module Simplified = partitionInputs(*Mod, {}, &Stats);
  EXPECT_EQ(Stats.InputsPartitioned, 0u);
  EXPECT_EQ(Stats.InputsLeftOpen, 1u);
  // The pipeline still closes it the standard way.
  Module Closed = closeModule(Simplified);
  EnvAnalysis Analysis(Closed);
  EXPECT_TRUE(Analysis.moduleIsClosed());
}

TEST(DomainPartitionTest, EscapingUseDisqualifies) {
  auto Mod = mustCompile(R"(
chan out[4];

proc p() {
  var x;
  x = env_input();
  if (x == 7)
    send(out, 1);
  else
    send(out, x);
}

process m = p();
)");
  PartitionStats Stats;
  partitionInputs(*Mod, {}, &Stats);
  EXPECT_EQ(Stats.InputsPartitioned, 0u)
      << "the value escapes through the send payload";
}

TEST(DomainPartitionTest, VariableComparisonDisqualifies) {
  auto Mod = mustCompile(R"(
chan out[4];

proc p(limit) {
  var x;
  x = env_input();
  if (x < limit)
    send(out, 1);
  else
    send(out, 0);
}

process m = p(3);
)");
  PartitionStats Stats;
  partitionInputs(*Mod, {}, &Stats);
  EXPECT_EQ(Stats.InputsPartitioned, 0u);
}

TEST(DomainPartitionTest, AddressTakenDisqualifies) {
  auto Mod = mustCompile(R"(
chan out[4];

proc p() {
  var x;
  var q;
  q = &x;
  x = env_input();
  if (x == 0)
    send(out, 1);
  else
    send(out, 0);
}

process m = p();
)");
  PartitionStats Stats;
  partitionInputs(*Mod, {}, &Stats);
  EXPECT_EQ(Stats.InputsPartitioned, 0u);
}

TEST(DomainPartitionTest, RepresentativeCapLeavesInputOpen) {
  auto Mod = mustCompile(R"(
chan out[4];

proc p() {
  var x;
  x = env_input();
  if (x < 10) send(out, 0);
  if (x < 20) send(out, 1);
  if (x < 30) send(out, 2);
  if (x < 40) send(out, 3);
  if (x < 50) send(out, 4);
  if (x < 60) send(out, 5);
}

process m = p();
)");
  PartitionOptions Small;
  Small.MaxRepresentatives = 4;
  PartitionStats Stats;
  partitionInputs(*Mod, Small, &Stats);
  EXPECT_EQ(Stats.InputsPartitioned, 0u);
  EXPECT_EQ(Stats.InputsLeftOpen, 1u);

  PartitionStats Big;
  partitionInputs(*Mod, {}, &Big); // Default cap 16; 6 thresholds -> <= 18?
  // Thresholds {10..60}: reps = 3 per threshold, merged where adjacent.
  EXPECT_LE(Big.RepresentativesTotal, 18u);
}

TEST(DomainPartitionTest, MixedInstantiationLeavesParamAlone) {
  auto Mod = mustCompile(R"(
chan out[4];

proc gate(threshold) {
  if (threshold >= 5)
    send(out, 'hi');
  else
    send(out, 'lo');
}

process g1 = gate(env);
process g2 = gate(3);
)");
  PartitionStats Stats;
  Module Simplified = partitionInputs(*Mod, {}, &Stats);
  EXPECT_EQ(Stats.ParamsPartitioned, 0u)
      << "a constant instantiation must block parameter rewriting";
  EXPECT_EQ(Simplified.findProc("gate")->Params.size(), 1u);
}

TEST(DomainPartitionTest, ComposesWithStandardClosing) {
  // A program with one partitionable and one opaque input.
  auto Mod = mustCompile(R"(
chan out[8];

proc p() {
  var range;
  var blob;
  range = env_input();
  if (range < 42)
    send(out, 'low');
  else
    send(out, 'high');
  blob = env_input();
  env_output(blob * 3);
}

process m = p();
)");
  PartitionStats Stats;
  Module Simplified = partitionInputs(*Mod, {}, &Stats);
  EXPECT_EQ(Stats.InputsPartitioned, 1u);
  EXPECT_EQ(Stats.InputsLeftOpen, 1u);

  ClosingStats CStats;
  Module Closed = closeModule(Simplified, {}, &CStats);
  DiagnosticEngine Diags;
  ASSERT_TRUE(verifyModule(Closed, Diags)) << Diags.str();
  EnvAnalysis Analysis(Closed);
  EXPECT_TRUE(Analysis.moduleIsClosed());
  // The preserved range test survived the second stage.
  bool RangeBranch = false;
  for (const CfgNode &Node : Closed.Procs[0].Nodes)
    if (Node.Kind == CfgNodeKind::Branch)
      RangeBranch = true;
  EXPECT_TRUE(RangeBranch);
}

} // namespace
