//===- FootprintsTest.cpp - Static footprint analysis tests -----------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "explorer/Footprints.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

TEST(ObjSetTest, BasicOperations) {
  ObjSet A(130), B(130);
  A.set(0);
  A.set(64);
  A.set(129);
  EXPECT_TRUE(A.test(0));
  EXPECT_TRUE(A.test(64));
  EXPECT_TRUE(A.test(129));
  EXPECT_FALSE(A.test(1));
  EXPECT_FALSE(A.intersects(B));
  B.set(64);
  EXPECT_TRUE(A.intersects(B));
  EXPECT_FALSE(B.empty());
  EXPECT_TRUE(ObjSet(130).empty());

  ObjSet C(130);
  EXPECT_TRUE(C.unionWith(A));
  EXPECT_FALSE(C.unionWith(A)) << "second union must not grow";
  EXPECT_TRUE(C.test(129));
}

// Regression: every operation used to assume both operands were sized for
// the same object count; a default-constructed (zero-word) set or two sets
// from differently-sized modules read and wrote out of bounds.
TEST(ObjSetTest, MismatchedSizesNormalize) {
  ObjSet Small(1), Big(200);
  Big.set(130);
  Big.set(0);

  // Shorter set grows to cover the longer operand.
  EXPECT_TRUE(Small.unionWith(Big));
  EXPECT_TRUE(Small.test(130));
  EXPECT_TRUE(Small.test(0));
  EXPECT_FALSE(Small.unionWith(Big));

  // Intersection only consults the common prefix.
  ObjSet Tiny(1);
  EXPECT_FALSE(Tiny.intersects(Big));
  Tiny.set(0);
  EXPECT_TRUE(Tiny.intersects(Big));
  EXPECT_TRUE(Big.intersects(Tiny));
  ObjSet HighOnly(200);
  HighOnly.set(150);
  EXPECT_FALSE(HighOnly.intersects(Tiny));
  EXPECT_FALSE(Tiny.intersects(HighOnly));
}

TEST(ObjSetTest, DefaultConstructedSetIsUsable) {
  ObjSet D; // Zero words.
  EXPECT_TRUE(D.empty());
  EXPECT_FALSE(D.test(0));
  EXPECT_FALSE(D.test(500));

  ObjSet Big(100);
  Big.set(70);
  EXPECT_FALSE(D.intersects(Big));
  EXPECT_FALSE(Big.intersects(D));

  // set() beyond current capacity grows the set instead of corrupting
  // memory.
  D.set(70);
  EXPECT_TRUE(D.test(70));
  EXPECT_TRUE(D.intersects(Big));

  ObjSet E;
  EXPECT_TRUE(E.unionWith(Big));
  EXPECT_TRUE(E.test(70));
}

TEST(ObjSetTest, EqualityIgnoresTrailingZeroWords) {
  ObjSet A(10), B(500);
  A.set(3);
  B.set(3);
  EXPECT_TRUE(A == B);
  EXPECT_TRUE(B == A);
  B.set(400);
  EXPECT_FALSE(A == B);
  EXPECT_FALSE(B == A);

  ObjSet Empty1, Empty2(640);
  EXPECT_TRUE(Empty1 == Empty2);
}

TEST(FootprintsTest, SequentialAccessesShrinkOverTime) {
  auto Mod = mustCompile(R"(
chan a[1];
chan b[1];

proc main() {
  send(a, 1);
  send(b, 2);
}

process m = main();
)");
  FootprintAnalysis FA(*Mod);
  const ProcCfg &P = Mod->Procs[0];
  int AIdx = Mod->commIndex("a");
  int BIdx = Mod->commIndex("b");

  // At entry, both objects are in the future.
  const ObjSet &AtEntry = FA.objectsFrom(0, P.Entry);
  EXPECT_TRUE(AtEntry.test(AIdx));
  EXPECT_TRUE(AtEntry.test(BIdx));

  // After the first send (at the second send node), only b remains.
  for (size_t I = 0; I != P.Nodes.size(); ++I) {
    const CfgNode &Node = P.Nodes[I];
    if (Node.Kind == CfgNodeKind::Call && Node.Args.size() == 2 &&
        Node.Args[0]->Name == "b") {
      const ObjSet &AtB = FA.objectsFrom(0, static_cast<NodeId>(I));
      EXPECT_FALSE(AtB.test(AIdx));
      EXPECT_TRUE(AtB.test(BIdx));
    }
  }
}

TEST(FootprintsTest, LoopKeepsObjectsLive) {
  auto Mod = mustCompile(R"(
chan a[1];

proc main() {
  var i;
  for (i = 0; i < 3; i = i + 1)
    send(a, i);
}

process m = main();
)");
  FootprintAnalysis FA(*Mod);
  const ProcCfg &P = Mod->Procs[0];
  int AIdx = Mod->commIndex("a");
  // Inside the loop (at the send itself) the channel stays in the future
  // because of the back edge.
  for (size_t I = 0; I != P.Nodes.size(); ++I)
    if (P.Nodes[I].Kind == CfgNodeKind::Call) {
      EXPECT_TRUE(FA.objectsFrom(0, static_cast<NodeId>(I)).test(AIdx));
    }
}

TEST(FootprintsTest, CalleeObjectsIncludedAtCallSites) {
  auto Mod = mustCompile(R"(
chan deep[1];

proc helper() {
  send(deep, 1);
}

proc main() {
  helper();
}

process m = main();
)");
  FootprintAnalysis FA(*Mod);
  int MainIdx = Mod->procIndex("main");
  int DeepIdx = Mod->commIndex("deep");
  const ProcCfg &Main = *Mod->findProc("main");
  EXPECT_TRUE(FA.objectsFrom(MainIdx, Main.Entry).test(DeepIdx));
}

TEST(FootprintsTest, RecursionConverges) {
  auto Mod = mustCompile(R"(
chan c[1];

proc rec(n) {
  if (n > 0)
    rec(n - 1);
  else
    send(c, 0);
}

process m = rec(3);
)");
  FootprintAnalysis FA(*Mod);
  int RecIdx = Mod->procIndex("rec");
  EXPECT_TRUE(FA.objectsFrom(RecIdx, Mod->Procs[RecIdx].Entry)
                  .test(Mod->commIndex("c")));
}

TEST(FootprintsTest, ProcessFootprintUnionsFrames) {
  auto Mod = mustCompile(R"(
chan inner[1];
chan outer[1];

proc leaf() {
  send(inner, 1);
}

proc main() {
  leaf();
  send(outer, 2);
}

process m = main();
)");
  FootprintAnalysis FA(*Mod);
  int MainIdx = Mod->procIndex("main");
  int LeafIdx = Mod->procIndex("leaf");
  // Simulate a stack: main suspended at its call node, leaf at its send.
  NodeId CallNode = InvalidNode;
  const ProcCfg &Main = *Mod->findProc("main");
  for (size_t I = 0; I != Main.Nodes.size(); ++I)
    if (Main.Nodes[I].Kind == CfgNodeKind::Call &&
        Main.Nodes[I].Builtin == BuiltinKind::None)
      CallNode = static_cast<NodeId>(I);
  ASSERT_NE(CallNode, InvalidNode);

  ObjSet Fp = FA.processFootprint(
      {{MainIdx, CallNode}, {LeafIdx, Mod->Procs[LeafIdx].Entry}});
  EXPECT_TRUE(Fp.test(Mod->commIndex("inner")));
  EXPECT_TRUE(Fp.test(Mod->commIndex("outer")));
}

} // namespace
