//===- PorPropertyTest.cpp - POR soundness on random systems -----------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// The partial-order reduction must preserve deadlock detection ([God96]):
// for randomly generated closed systems, the reduced search finds a
// deadlock iff the full search does. Also cross-checks the state-hashing
// ablation (which additionally preserves deadlock existence because
// deadlock states are never pruned before classification).
//
//===----------------------------------------------------------------------===//

#include "closing/Pipeline.h"
#include "explorer/Search.h"
#include "RandomProgram.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

class PorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

SearchStats explore(const Module &Mod, bool Persistent, bool Sleep,
                    bool Hash = false) {
  SearchOptions Opts;
  Opts.MaxDepth = 14;
  Opts.MaxRuns = 150000;
  Opts.UsePersistentSets = Persistent;
  Opts.UseSleepSets = Sleep;
  Opts.UseStateHashing = Hash;
  Explorer Ex(Mod, Opts);
  return Ex.run();
}

/// Closes the seed's program; null when the full search cannot finish in
/// budget (those seeds cannot give a reliable ground truth).
std::unique_ptr<Module> closedSystemForSeed(uint64_t Seed,
                                            SearchStats &FullStats) {
  CloseResult R = closeSource(randomOpenProgram(Seed));
  if (!R.ok())
    return nullptr;
  FullStats = explore(*R.Closed, false, false);
  if (!FullStats.Completed)
    return nullptr;
  return std::move(R.Closed);
}

TEST_P(PorPropertyTest, PersistentSleepPreservesDeadlockExistence) {
  SearchStats Full;
  auto Mod = closedSystemForSeed(GetParam(), Full);
  if (!Mod)
    GTEST_SKIP() << "ground-truth search did not complete for this seed";

  SearchStats Reduced = explore(*Mod, true, true);
  ASSERT_TRUE(Reduced.Completed)
      << "reduced search must be no larger than the full one";
  EXPECT_EQ(Full.Deadlocks > 0, Reduced.Deadlocks > 0)
      << "full=" << Full.str() << "\nreduced=" << Reduced.str();
  EXPECT_LE(Reduced.StatesVisited, Full.StatesVisited);
}

TEST_P(PorPropertyTest, SleepSetsAloneAreExact) {
  SearchStats Full;
  auto Mod = closedSystemForSeed(GetParam(), Full);
  if (!Mod)
    GTEST_SKIP() << "ground-truth search did not complete for this seed";

  SearchStats Slept = explore(*Mod, false, true);
  ASSERT_TRUE(Slept.Completed);
  EXPECT_EQ(Full.Deadlocks > 0, Slept.Deadlocks > 0);
  // Sleep sets also preserve assertion-violation existence: they only
  // skip transitions covered by a commuting permutation, and VS_assert
  // is independent of everything.
  EXPECT_EQ(Full.AssertionViolations > 0, Slept.AssertionViolations > 0);
}

TEST_P(PorPropertyTest, HashingPreservesDeadlockExistence) {
  SearchStats Full;
  auto Mod = closedSystemForSeed(GetParam(), Full);
  if (!Mod)
    GTEST_SKIP() << "ground-truth search did not complete for this seed";

  SearchStats Hashed = explore(*Mod, false, false, /*Hash=*/true);
  ASSERT_TRUE(Hashed.Completed);
  EXPECT_EQ(Full.Deadlocks > 0, Hashed.Deadlocks > 0);
  EXPECT_LE(Hashed.StatesVisited, Full.StatesVisited);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PorPropertyTest,
                         ::testing::Range<uint64_t>(100, 124));

} // namespace
