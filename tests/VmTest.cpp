//===- VmTest.cpp - Bytecode VM: lowering, execution, differential gate -----===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// The bytecode execution contract:
//  * compileModule lowers every verified module, and the compiler fuses
//    literal operands into immediate-form instructions (flipping the
//    comparison when the literal is on the left);
//  * explore() produces bit-identical tree-shaped statistics and report
//    sets under --exec=interp, --exec=vm, and --exec=both, on the bundled
//    examples and on a random-program fuzz corpus driven through the
//    closing pipeline (the differential gate);
//  * the lower-bytecode pass hands its CompiledModule to
//    SearchOptions::VmCode so explore() need not recompile.
//
//===----------------------------------------------------------------------===//

#include "closing/Pipeline.h"
#include "explorer/Search.h"
#include "vm/Bytecode.h"
#include "vm/Vm.h"

#include "RandomProgram.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace closer;

namespace {

#ifndef CLOSER_SOURCE_DIR
#define CLOSER_SOURCE_DIR "."
#endif

std::string readExample(const std::string &Name) {
  std::string Path = std::string(CLOSER_SOURCE_DIR) + "/examples/minic/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// The engine-independent observables of a search: every tree-shaped
/// statistic plus the raw transition count (identical across engines for a
/// fixed checkpoint interval, since replay structure is engine-blind).
std::vector<uint64_t> treeShape(const SearchStats &S) {
  return {S.StatesVisited,
          S.Runs,
          S.TreeTransitions,
          S.Transitions,
          S.Deadlocks,
          S.Terminations,
          S.AssertionViolations,
          S.Divergences,
          S.RuntimeErrors,
          S.DepthLimitHits,
          S.SleepSetPrunes,
          static_cast<uint64_t>(S.Completed)};
}

/// Order-independent digest of the report set.
std::vector<std::string> reportSet(const std::vector<ErrorReport> &Reports) {
  std::vector<std::string> Out;
  for (const ErrorReport &R : Reports)
    Out.push_back(std::to_string(static_cast<int>(R.Kind)) + ":" +
                  std::to_string(R.StateFp) + ":" +
                  std::to_string(static_cast<int>(R.Error.Kind)) + ":" +
                  std::to_string(R.Process) + ":" +
                  std::to_string(R.Depth));
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// Runs the same search under all three exec modes and requires identical
/// observables. Both-mode additionally cross-checks every transition
/// internally (it aborts the process on divergence, so merely finishing is
/// already a strong statement).
void expectEnginesAgree(const Module &Mod, SearchOptions Opts,
                        const std::string &Label) {
  Opts.MaxReports = 4096;

  Opts.Exec = ExecMode::Interp;
  SearchResult I = explore(Mod, Opts);

  Opts.Exec = ExecMode::Vm;
  SearchResult V = explore(Mod, Opts);

  Opts.Exec = ExecMode::Both;
  SearchResult B = explore(Mod, Opts);

  EXPECT_EQ(treeShape(I.Stats), treeShape(V.Stats)) << Label << " (vm)";
  EXPECT_EQ(treeShape(I.Stats), treeShape(B.Stats)) << Label << " (both)";
  EXPECT_EQ(reportSet(I.Reports), reportSet(V.Reports)) << Label << " (vm)";
  EXPECT_EQ(reportSet(I.Reports), reportSet(B.Reports)) << Label << " (both)";
}

// ---------------------------------------------------------------------------
// Lowering unit tests.
// ---------------------------------------------------------------------------

TEST(VmTest, CompilesEveryBundledExample) {
  for (const char *Name : {"figure2.mc", "lock_order_bug.mc",
                           "bounded_buffer.mc", "resource_manager.mc"}) {
    auto Mod = mustCompile(readExample(Name));
    ASSERT_TRUE(Mod) << Name;
    auto Code = vm::compileModule(*Mod);
    ASSERT_TRUE(Code) << Name;
    EXPECT_GT(Code->instructionCount(), 0u) << Name;
    EXPECT_GT(Code->MaxRegs, 0u) << Name;
    EXPECT_EQ(Code->Procs.size(), Mod->Procs.size()) << Name;
    // Per-node entry tables must cover the whole CFG.
    for (size_t P = 0; P != Code->Procs.size(); ++P)
      EXPECT_EQ(Code->Procs[P].NodeOffset.size(), Mod->Procs[P].Nodes.size())
          << Name << " proc " << P;
  }
  // The paper's figure programs (test fixtures rather than example files),
  // both open and closed.
  for (const std::string &Source : {figure2Source(), figure3Source()}) {
    auto Open = mustCompile(Source);
    ASSERT_TRUE(Open);
    EXPECT_GT(vm::compileModule(*Open)->instructionCount(), 0u);
    CloseResult R = closeSource(Source);
    ASSERT_TRUE(R.ok()) << R.Diags.str();
    EXPECT_GT(vm::compileModule(*R.Closed)->instructionCount(), 0u);
  }
}

TEST(VmTest, LiteralOperandsFuseToImmediateForms) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x = 3;
  var v;
  v = x + 1;
  if (x < 10)
    v = v * 2;
  send(c, v);
}

process m = main();
)");
  auto Code = vm::compileModule(*Mod);
  ASSERT_TRUE(Code);
  std::string Dis = vm::disassemble(*Code);
  // RHS literals fuse directly.
  EXPECT_NE(Dis.find(" addi "), std::string::npos) << Dis;
  EXPECT_NE(Dis.find(" lti "), std::string::npos) << Dis;
  EXPECT_NE(Dis.find(" muli "), std::string::npos) << Dis;
}

TEST(VmTest, LeftLiteralComparisonFlipsItsImmediateForm) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x = 3;
  var v;
  v = 5 < x;
  v = v + (5 - x);
  send(c, v);
}

process m = main();
)");
  auto Code = vm::compileModule(*Mod);
  ASSERT_TRUE(Code);
  std::string Dis = vm::disassemble(*Code);
  // 5 < x becomes x > 5: the flipped immediate comparison.
  EXPECT_NE(Dis.find(" gti "), std::string::npos) << Dis;
  EXPECT_EQ(Dis.find(" lti "), std::string::npos) << Dis;
  // 5 - x is NOT commutative: it must stay a two-register subtract.
  EXPECT_NE(Dis.find(" sub "), std::string::npos) << Dis;
  EXPECT_EQ(Dis.find(" subi "), std::string::npos) << Dis;
}

// ---------------------------------------------------------------------------
// Engine-identity on the bundled examples.
// ---------------------------------------------------------------------------

TEST(VmTest, EnginesAgreeOnExamples) {
  for (const char *Name : {"figure2.mc", "lock_order_bug.mc",
                           "bounded_buffer.mc", "resource_manager.mc"}) {
    auto Mod = mustCompile(readExample(Name));
    ASSERT_TRUE(Mod) << Name;
    SearchOptions Opts;
    Opts.MaxDepth = 40;
    expectEnginesAgree(*Mod, Opts, Name);
  }
}

TEST(VmTest, EnginesAgreeOnClosedFigure2UnderPorAblations) {
  CloseResult R = closeSource(figure2Source());
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  for (bool Por : {true, false}) {
    SearchOptions Opts;
    Opts.MaxDepth = 60;
    Opts.UsePersistentSets = Por;
    Opts.UseSleepSets = Por;
    expectEnginesAgree(*R.Closed, Opts,
                       std::string("figure2 por=") + (Por ? "on" : "off"));
  }
}

TEST(VmTest, EnginesAgreeWithCheckpointingAndCaching) {
  auto Mod = mustCompile(readExample("bounded_buffer.mc"));
  ASSERT_TRUE(Mod);
  // Checkpointed replay and cached pruning both route through the engine
  // (restores re-execute prefixes under CheckpointInterval=0); each must
  // be engine-blind.
  for (size_t Interval : {size_t{0}, size_t{4}}) {
    SearchOptions Opts;
    Opts.MaxDepth = 400;
    Opts.CheckpointInterval = Interval;
    Opts.StateCacheBits = 18;
    expectEnginesAgree(*Mod, Opts,
                       "bounded_buffer interval=" + std::to_string(Interval));
  }
}

// ---------------------------------------------------------------------------
// The differential fuzz gate: random open programs through the closing
// pipeline, explored under the oracle.
// ---------------------------------------------------------------------------

TEST(VmTest, DifferentialFuzzGateOnClosedRandomPrograms) {
  // Seeds >= 1000 use the wider three-process shape.
  for (uint64_t Seed : {3u, 17u, 99u, 1003u, 1500u}) {
    std::string Label = "seed " + std::to_string(Seed);
    CloseResult R = closeSource(randomOpenProgram(Seed));
    ASSERT_TRUE(R.ok()) << Label << "\n" << R.Diags.str();
    SearchOptions Opts;
    Opts.MaxDepth = 60;
    expectEnginesAgree(*R.Closed, Opts, Label);
  }
}

TEST(VmTest, DifferentialFuzzGateOnOpenRandomPrograms) {
  // The open modules exercise the EnvVal path (environment inputs) that
  // closed modules replace with toss choices.
  for (uint64_t Seed : {5u, 42u, 1007u}) {
    std::string Label = "open seed " + std::to_string(Seed);
    auto Mod = mustCompile(randomOpenProgram(Seed));
    ASSERT_TRUE(Mod) << Label;
    SearchOptions Opts;
    Opts.MaxDepth = 40;
    expectEnginesAgree(*Mod, Opts, Label);
  }
}

// ---------------------------------------------------------------------------
// Pipeline integration: the lower-bytecode pass feeds VmCode.
// ---------------------------------------------------------------------------

TEST(VmTest, LowerBytecodePassProducesSharableCode) {
  PipelineOptions POpts;
  POpts.Passes = {"close", "lower-bytecode"};
  CompileResult C = compile(figure2Source(), POpts);
  ASSERT_TRUE(C.ok()) << C.Diags.str();
  ASSERT_TRUE(C.Bytecode);
  EXPECT_GT(C.Bytecode->instructionCount(), 0u);

  // Reuse the pass-produced code without recompiling, and require the same
  // observables as a from-scratch interpreter run.
  SearchOptions Interp;
  Interp.MaxDepth = 60;
  Interp.MaxReports = 4096;
  SearchResult RI = explore(*C.M, Interp);

  SearchOptions WithCode = Interp;
  WithCode.Exec = ExecMode::Vm;
  WithCode.VmCode = C.Bytecode;
  SearchResult RV = explore(*C.M, WithCode);

  EXPECT_EQ(treeShape(RI.Stats), treeShape(RV.Stats));
  EXPECT_EQ(reportSet(RI.Reports), reportSet(RV.Reports));
}

TEST(VmTest, PipelineWithoutLoweringLeavesBytecodeNull) {
  CompileResult C = compile(figure2Source());
  ASSERT_TRUE(C.ok()) << C.Diags.str();
  EXPECT_FALSE(C.Bytecode);
}

} // namespace
