//===- ReplayTest.cpp - Deterministic scenario replay tests ------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "explorer/Replay.h"

#include "explorer/Search.h"
#include "support/Random.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

TEST(ReplayTest, RoundTripSerialization) {
  std::vector<ReplayStep> Steps = {
      {ReplayStep::Kind::Env, 3},
      {ReplayStep::Kind::Sched, 1},
      {ReplayStep::Kind::Toss, 0},
      {ReplayStep::Kind::Sched, 0},
  };
  std::string Text = replayToString(Steps);
  EXPECT_EQ(Text, "e3 s1 t0 s0");

  std::vector<ReplayStep> Parsed;
  ASSERT_TRUE(parseReplay(Text, Parsed));
  ASSERT_EQ(Parsed.size(), Steps.size());
  for (size_t I = 0; I != Steps.size(); ++I) {
    EXPECT_EQ(Parsed[I].K, Steps[I].K);
    EXPECT_EQ(Parsed[I].Value, Steps[I].Value);
  }
}

TEST(ReplayTest, ParseRejectsGarbage) {
  std::vector<ReplayStep> Out;
  EXPECT_FALSE(parseReplay("x1", Out));
  EXPECT_FALSE(parseReplay("s", Out));
  EXPECT_FALSE(parseReplay("s1b", Out));
  EXPECT_TRUE(parseReplay("", Out));
  EXPECT_TRUE(Out.empty());
}

TEST(ReplayTest, DeadlockReportReplaysToTheSameDeadlock) {
  auto Mod = mustCompile(R"(
sem a(1);
sem b(1);
chan done[2];

proc left() {
  sem_wait(a);
  sem_wait(b);
  send(done, 1);
  sem_signal(b);
  sem_signal(a);
}

proc right() {
  sem_wait(b);
  sem_wait(a);
  send(done, 2);
  sem_signal(a);
  sem_signal(b);
}

process l = left();
process r = right();
)");
  SearchOptions Opts;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Explorer Ex(*Mod, Opts);
  Ex.run();
  ASSERT_FALSE(Ex.reports().empty());
  const ErrorReport &Rep = Ex.reports()[0];
  ASSERT_EQ(Rep.Kind, ErrorReport::Type::Deadlock);
  ASSERT_FALSE(Rep.Choices.empty());

  ReplayResult R = replayChoices(*Mod, Rep.Choices);
  EXPECT_TRUE(R.Faithful);
  EXPECT_EQ(R.Final, GlobalStateKind::Deadlock);
  EXPECT_EQ(traceToString(R.TraceOut), traceToString(Rep.TraceToError));
}

TEST(ReplayTest, AssertionReportReplaysToTheSameViolation) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x;
  x = VS_toss(3);
  send(c, x);
  VS_assert(x != 2);
}

process m = main();
)");
  SearchOptions Opts;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Explorer Ex(*Mod, Opts);
  Ex.run();
  ASSERT_EQ(Ex.reports().size(), 1u);
  const ErrorReport &Rep = Ex.reports()[0];

  ReplayResult R = replayChoices(*Mod, Rep.Choices);
  EXPECT_TRUE(R.Faithful);
  ASSERT_EQ(R.Violations.size(), 1u);
  // The offending toss outcome (2) is visible in the replayed trace.
  ASSERT_FALSE(R.TraceOut.empty());
  EXPECT_EQ(R.TraceOut[0].Payload, Value::makeInt(2));
}

TEST(ReplayTest, EnvChoicesReplayOnOpenModules) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x;
  x = env_input();
  send(c, x);
  VS_assert(x != 1);
}

process m = main();
)");
  SearchOptions Opts;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Opts.Runtime.EnvDomainBound = 3;
  Explorer Ex(*Mod, Opts);
  Ex.run();
  ASSERT_EQ(Ex.reports().size(), 1u);

  SystemOptions SysOpts;
  SysOpts.EnvDomainBound = 3;
  ReplayResult R = replayChoices(*Mod, Ex.reports()[0].Choices, SysOpts);
  EXPECT_TRUE(R.Faithful);
  EXPECT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.TraceOut[0].Payload, Value::makeInt(1));
}

TEST(ReplayTest, UnfaithfulWhenChoicesDoNotFit) {
  auto Mod = mustCompile(R"(
chan c[2];

proc main() {
  send(c, 1);
}

process m = main();
)");
  // Schedule a process that does not exist.
  ReplayResult R = replayChoices(*Mod, {{ReplayStep::Kind::Sched, 7}});
  EXPECT_FALSE(R.Faithful);

  // Toss step where a schedule is expected.
  ReplayResult R2 = replayChoices(*Mod, {{ReplayStep::Kind::Toss, 0}});
  EXPECT_FALSE(R2.Faithful);
}

TEST(ReplayTest, RoundTripRandomSequences) {
  // Property: toString then parse is the identity on any step sequence,
  // and the rendering is a fixed point of the round trip.
  Rng R(2026);
  for (int Trial = 0; Trial != 200; ++Trial) {
    std::vector<ReplayStep> Steps;
    size_t Len = R.below(24);
    for (size_t I = 0; I != Len; ++I) {
      ReplayStep S;
      switch (R.below(3)) {
      case 0: S.K = ReplayStep::Kind::Sched; break;
      case 1: S.K = ReplayStep::Kind::Toss; break;
      default: S.K = ReplayStep::Kind::Env; break;
      }
      S.Value = static_cast<int64_t>(R.below(1000));
      Steps.push_back(S);
    }
    std::string Text = replayToString(Steps);
    std::vector<ReplayStep> Parsed;
    ASSERT_TRUE(parseReplay(Text, Parsed)) << Text;
    ASSERT_EQ(Parsed.size(), Steps.size()) << Text;
    for (size_t I = 0; I != Steps.size(); ++I) {
      EXPECT_EQ(Parsed[I].K, Steps[I].K) << Text << " step " << I;
      EXPECT_EQ(Parsed[I].Value, Steps[I].Value) << Text << " step " << I;
    }
    EXPECT_EQ(replayToString(Parsed), Text);
  }
}

TEST(ReplayTest, ParseRejectsMalformedInputs) {
  for (const char *Bad :
       {"q3", "s1 x2", "t", "7", "s1 t", "e5 s", "s1s2"}) {
    std::vector<ReplayStep> Out;
    EXPECT_FALSE(parseReplay(Bad, Out)) << "accepted: " << Bad;
  }
}

TEST(ReplayTest, UnfaithfulOnMissingAndSurplusChoices) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x;
  send(c, 7);
  x = VS_toss(1);
  send(c, x);
}

process m = main();
)");
  // The full faithful sequence: schedule the only process, supply its
  // toss, schedule it again to completion.
  std::vector<ReplayStep> Full = {{ReplayStep::Kind::Sched, 0},
                                  {ReplayStep::Kind::Toss, 1},
                                  {ReplayStep::Kind::Sched, 0}};
  ReplayResult Ok = replayChoices(*Mod, Full);
  EXPECT_TRUE(Ok.Faithful);
  EXPECT_EQ(Ok.Final, GlobalStateKind::Termination);

  // Missing choice: the second transition consumes a toss mid-transition;
  // with the recording exhausted the replay cannot be faithful.
  ReplayResult Missing =
      replayChoices(*Mod, {{ReplayStep::Kind::Sched, 0}});
  EXPECT_FALSE(Missing.Faithful);

  // Surplus choice: a trailing schedule of an already-halted process is a
  // step the original run never took.
  std::vector<ReplayStep> Surplus = Full;
  Surplus.push_back({ReplayStep::Kind::Sched, 0});
  ReplayResult Extra = replayChoices(*Mod, Surplus);
  EXPECT_FALSE(Extra.Faithful);
}

TEST(ReplayTest, ReportRenderingIncludesReplayLine) {
  auto Mod = mustCompile(R"(
proc main() {
  var x;
  x = VS_toss(1);
  VS_assert(x == 0);
}

process m = main();
)");
  Explorer Ex(*Mod, {});
  Ex.run();
  ASSERT_FALSE(Ex.reports().empty());
  std::string Text = Ex.reports()[0].str();
  EXPECT_NE(Text.find("replay: "), std::string::npos) << Text;
}

} // namespace
